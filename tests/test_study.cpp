// Study subsystem tests: machine-family grid generation (deterministic
// names), StudyPlan lowering into one batched ExperimentPlan, crossover /
// scalability / bottleneck analysis on synthetic studies, deterministic
// exports across worker counts (the acceptance sweep), and the CSV/JSON
// round-trip parsers.
#include <gtest/gtest.h>

#include <stdexcept>
#include <string>
#include <vector>

#include "study/study.hpp"
#include "suite/suite.hpp"

namespace hpf90d {
namespace {

// --- machine families ---------------------------------------------------------

TEST(MachineFamily, GridNamesAreDeterministic) {
  study::MachineFamily fam("lat-bw", "ipsc860");
  fam.axis(study::Knob::Latency, {0.25, 1, 4}).axis(study::Knob::Bandwidth, {1, 2});
  EXPECT_EQ(fam.size(), 6u);

  const std::vector<study::MachinePoint> pts = fam.points();
  ASSERT_EQ(pts.size(), 6u);
  // earlier axes vary slowest; names embed knob=value pairs with %g
  EXPECT_EQ(pts[0].name, "lat-bw/latency=0.25+bandwidth=1");
  EXPECT_EQ(pts[1].name, "lat-bw/latency=0.25+bandwidth=2");
  EXPECT_EQ(pts[4].name, "lat-bw/latency=4+bandwidth=1");
  EXPECT_EQ(pts[5].name, "lat-bw/latency=4+bandwidth=2");
  EXPECT_DOUBLE_EQ(pts[1].params.latency_scale, 0.25);
  EXPECT_DOUBLE_EQ(pts[1].params.bandwidth_scale, 2.0);
  EXPECT_DOUBLE_EQ(pts[1].params.cpu_scale, 1.0);

  // regenerating yields the identical grid — the determinism contract
  const std::vector<study::MachinePoint> again = fam.points();
  for (std::size_t i = 0; i < pts.size(); ++i) EXPECT_EQ(pts[i].name, again[i].name);

  // re-setting an axis replaces its values but keeps its position
  fam.axis(study::Knob::Latency, {1});
  EXPECT_EQ(fam.size(), 2u);
  EXPECT_EQ(fam.points()[0].name, "lat-bw/latency=1+bandwidth=1");
}

TEST(MachineFamily, ValidatesAxesAndBase) {
  study::MachineFamily fam("bad");
  fam.axis(study::Knob::Latency, {});
  EXPECT_THROW(fam.validate(), std::invalid_argument);
  fam.axis(study::Knob::Latency, {0.0});
  EXPECT_THROW(fam.validate(), std::invalid_argument);
  fam.axis(study::Knob::Latency, {1.0});
  EXPECT_NO_THROW(fam.validate());

  api::MachineRegistry registry;
  study::MachineFamily unknown("u", "sp2");
  unknown.axis(study::Knob::Cpu, {2});
  EXPECT_THROW((void)unknown.register_into(registry), std::out_of_range);
}

TEST(MachineFamily, RegisterIntoProducesScaledDerivatives) {
  api::MachineRegistry registry;
  study::MachineFamily fam("f", "ipsc860");
  fam.axis(study::Knob::Latency, {0.5});
  const std::vector<std::string> names = fam.register_into(registry);
  ASSERT_EQ(names.size(), 1u);
  EXPECT_EQ(names[0], "f/latency=0.5");
  ASSERT_TRUE(registry.contains(names[0]));
  EXPECT_FALSE(registry.description(names[0]).empty());

  const machine::MachineModel& stock = registry.get("ipsc860", 4);
  const machine::MachineModel& scaled = registry.get(names[0], 4);
  EXPECT_DOUBLE_EQ(scaled.node().comm.latency_short,
                   0.5 * stock.node().comm.latency_short);
  EXPECT_DOUBLE_EQ(scaled.node().comm.per_byte, stock.node().comm.per_byte);

  // any registered machine works as the base — here the fat tree
  study::MachineFamily ft("ft", "fattree");
  ft.axis(study::Knob::Bandwidth, {2});
  const std::vector<std::string> ft_names = ft.register_into(registry);
  const machine::MachineModel& ft_stock = registry.get("fattree", 8);
  const machine::MachineModel& ft_scaled = registry.get(ft_names[0], 8);
  EXPECT_DOUBLE_EQ(ft_scaled.node().comm.per_byte, ft_stock.node().comm.per_byte / 2.0);
}

// --- study plans --------------------------------------------------------------

TEST(StudyPlan, LowersToOneBatchedPlanWithGeneratedMachineAxis) {
  api::Session session;
  const auto& app = suite::app("pi");

  study::StudyPlan plan("lowering check");
  plan.source(app.source)
      .add_reference_machine("ipsc860")
      .knob_axis(study::Knob::Latency, {0.25, 1, 4})
      .knob_axis(study::Knob::Bandwidth, {1, 2})
      .problems_from({256}, app.bindings)
      .nprocs({1, 4})
      .runs(0);

  // 1 reference + 3x2 family points, one variant, one problem, two nprocs
  EXPECT_EQ(plan.machine_count(), 7u);
  EXPECT_EQ(plan.point_count(), 14u);

  const api::ExperimentPlan lowered = plan.lower(session);
  EXPECT_EQ(lowered.point_count(), plan.point_count());
  ASSERT_EQ(lowered.machine_names().size(), 7u);
  EXPECT_EQ(lowered.machine_names()[0], "ipsc860");
  EXPECT_EQ(lowered.machine_names()[1], "lowering-check/latency=0.25+bandwidth=1");
  // lowering registered every family point — no manual register_whatif
  for (const auto& name : lowered.machine_names()) {
    EXPECT_TRUE(session.machines().contains(name)) << name;
  }
}

TEST(StudyPlan, KnoblessStudyFallsBackToBaseMachine) {
  api::Session session;
  study::StudyPlan plan("plain");
  plan.source(suite::app("pi").source).runs(0);
  EXPECT_FALSE(plan.has_knob_axes());
  const api::ExperimentPlan lowered = plan.lower(session);
  EXPECT_EQ(lowered.machine_names(), (std::vector<std::string>{"ipsc860"}));

  const study::StudyResult result = study::run_study(session, plan);
  ASSERT_EQ(result.report.records.size(), 1u);
  EXPECT_TRUE(result.machine_points.empty());
  EXPECT_EQ(result.params_for("ipsc860"), nullptr);
}

// --- analysis on synthetic studies --------------------------------------------

study::StudyResult synthetic_two_variant_study() {
  study::StudyResult s;
  s.title = "synthetic";
  const auto add = [&s](const char* m, const char* v, int np, double t) {
    api::RunRecord r;
    r.machine = m;
    r.variant = v;
    r.problem = "n=1";
    r.nprocs = np;
    r.comparison.estimated = t;
    s.report.records.push_back(std::move(r));
  };
  // variant A leads at P=1 and P=2, B overtakes at P=4
  add("m", "A", 1, 1.0);
  add("m", "B", 1, 2.0);
  add("m", "A", 2, 0.9);
  add("m", "B", 2, 1.0);
  add("m", "A", 4, 0.8);
  add("m", "B", 4, 0.5);
  return s;
}

TEST(StudyResult, DetectsVariantCrossoverAlongNprocs) {
  const study::StudyResult s = synthetic_two_variant_study();
  const std::vector<study::Crossover> flips = s.crossovers();
  ASSERT_EQ(flips.size(), 1u);
  const study::Crossover& x = flips[0];
  EXPECT_EQ(x.axis, "variant");
  EXPECT_EQ(x.a, "A");
  EXPECT_EQ(x.b, "B");
  EXPECT_EQ(x.context, "m");
  EXPECT_EQ(x.problem, "n=1");
  EXPECT_EQ(x.nprocs_before, 2);
  EXPECT_EQ(x.nprocs_after, 4);
  EXPECT_DOUBLE_EQ(x.a_before, 0.9);
  EXPECT_DOUBLE_EQ(x.b_after, 0.5);
  // the rendering names the winner on each side of the flip
  EXPECT_NE(x.str().find("A wins at P=2"), std::string::npos);
  EXPECT_NE(x.str().find("B wins at P=4"), std::string::npos);
}

TEST(StudyResult, CrossoverSpanningATieAnchorsAtDecisivePoints) {
  study::StudyResult s;
  const auto add = [&s](const char* v, int np, double t) {
    api::RunRecord r;
    r.machine = "m";
    r.variant = v;
    r.problem = "p";
    r.nprocs = np;
    r.comparison.estimated = t;
    s.report.records.push_back(std::move(r));
  };
  // A leads at P=1, dead heat at P=2, B leads at P=4: the flip is reported
  // between the two decisive points, never anchored at the tie
  add("A", 1, 1.0);
  add("B", 1, 2.0);
  add("A", 2, 1.5);
  add("B", 2, 1.5);
  add("A", 4, 2.0);
  add("B", 4, 1.0);
  const std::vector<study::Crossover> flips = s.crossovers();
  ASSERT_EQ(flips.size(), 1u);
  EXPECT_EQ(flips[0].nprocs_before, 1);
  EXPECT_EQ(flips[0].nprocs_after, 4);
  EXPECT_DOUBLE_EQ(flips[0].a_before, 1.0);
  EXPECT_NE(flips[0].str().find("A wins at P=1"), std::string::npos);
}

TEST(StudyResult, MonotoneOrderingHasNoCrossover) {
  study::StudyResult s = synthetic_two_variant_study();
  // make B strictly slower everywhere: ordering never flips
  for (auto& r : s.report.records) {
    if (r.variant == "B") r.comparison.estimated += 10.0;
  }
  EXPECT_TRUE(s.crossovers().empty());
}

TEST(StudyResult, DetectsMachineCrossover) {
  study::StudyResult s;
  const auto add = [&s](const char* m, int np, double t) {
    api::RunRecord r;
    r.machine = m;
    r.variant = "v";
    r.problem = "p";
    r.nprocs = np;
    r.comparison.estimated = t;
    s.report.records.push_back(std::move(r));
  };
  // the cluster's fast nodes win serially; the cube wins at scale
  add("cube", 1, 4.0);
  add("lan", 1, 2.0);
  add("cube", 8, 1.0);
  add("lan", 8, 3.0);
  const std::vector<study::Crossover> flips = s.crossovers();
  ASSERT_EQ(flips.size(), 1u);
  EXPECT_EQ(flips[0].axis, "machine");
  EXPECT_EQ(flips[0].a, "cube");
  EXPECT_EQ(flips[0].b, "lan");
  EXPECT_EQ(flips[0].context, "v");
}

TEST(StudyResult, ScalabilityCurvesRelativeToSmallestP) {
  study::StudyResult s;
  const auto add = [&s](int np, double t) {
    api::RunRecord r;
    r.machine = "m";
    r.variant = "v";
    r.problem = "p";
    r.nprocs = np;
    r.comparison.estimated = t;
    s.report.records.push_back(std::move(r));
  };
  add(1, 8.0);
  add(2, 4.0);
  add(8, 2.0);
  const std::vector<study::ScalabilityCurve> curves = s.scalability();
  ASSERT_EQ(curves.size(), 1u);
  ASSERT_EQ(curves[0].points.size(), 3u);
  EXPECT_DOUBLE_EQ(curves[0].points[0].speedup, 1.0);
  EXPECT_DOUBLE_EQ(curves[0].points[0].efficiency, 1.0);
  EXPECT_DOUBLE_EQ(curves[0].points[1].speedup, 2.0);
  EXPECT_DOUBLE_EQ(curves[0].points[1].efficiency, 1.0);  // perfect to P=2
  EXPECT_DOUBLE_EQ(curves[0].points[2].speedup, 4.0);
  EXPECT_DOUBLE_EQ(curves[0].points[2].efficiency, 0.5);  // 4x on 8x procs
}

TEST(StudyResult, BottleneckAttributionReadsThePhaseDecomposition) {
  study::StudyResult s;
  api::RunRecord r;
  r.machine = "m";
  r.variant = "v";
  r.problem = "p";
  r.nprocs = 4;
  r.comparison.estimated = 1.0;
  r.phases = api::PhaseBreakdown{0.2, 0.6, 0.1, 0.1};
  s.report.records.push_back(r);
  const std::vector<study::BottleneckRecord> b = s.bottlenecks();
  ASSERT_EQ(b.size(), 1u);
  EXPECT_STREQ(b[0].dominant(), "comm");
  EXPECT_DOUBLE_EQ(b[0].phases.dominant_fraction(), 0.6);
  EXPECT_NE(s.ascii().find("comm 60%"), std::string::npos);
}

// --- the acceptance sweep -----------------------------------------------------

study::StudyPlan acceptance_plan() {
  const auto& app = suite::app("laplace_bb");
  study::StudyPlan plan("acceptance study");
  plan.source(app.source)
      .knob_axis(study::Knob::Latency, {0.5, 2})
      .knob_axis(study::Knob::Bandwidth, {1, 2})
      .knob_axis(study::Knob::Cpu, {1, 2})
      .add_variant("(block,block)", suite::app("laplace_bb").directive_overrides, 2)
      .add_variant("(block,*)", suite::app("laplace_bx").directive_overrides)
      .problems_from({16}, app.bindings)
      .nprocs({2, 4})
      .runs(1);
  return plan;
}

TEST(Study, AcceptanceSweepRunsBatchedWithDeterministicExports) {
  // >= 3 knobs x >= 2 variants x >= 2 nprocs through ONE batched
  // Session::run, zero manual register_whatif calls, and byte-identical
  // exports for any worker count.
  const study::StudyPlan plan = acceptance_plan();
  EXPECT_EQ(plan.machine_count(), 8u);   // 2x2x2 knob grid
  EXPECT_EQ(plan.point_count(), 32u);    // x 2 variants x 1 problem x 2 nprocs

  std::vector<std::string> csvs, jsons, asciis;
  for (const int workers : {1, 4}) {
    api::Session session;
    api::RunOptions opts;
    opts.workers = workers;
    const study::StudyResult result = study::run_study(session, plan, opts);
    EXPECT_EQ(result.report.records.size(), 32u);
    EXPECT_EQ(result.machine_points.size(), 8u);
    csvs.push_back(result.csv());
    jsons.push_back(result.json());
    asciis.push_back(result.ascii());
  }
  EXPECT_EQ(csvs[0], csvs[1]);
  EXPECT_EQ(jsons[0], jsons[1]);
  EXPECT_EQ(asciis[0], asciis[1]);
}

TEST(Study, KnobSettingsAreRecoverablePerMachine) {
  api::Session session;
  const study::StudyPlan plan = acceptance_plan();
  const study::StudyResult result = study::run_study(session, plan);
  EXPECT_EQ(result.base_machine, "ipsc860");
  const machine::WhatIfParams* p =
      result.params_for("acceptance-study/latency=0.5+bandwidth=2+cpu=1");
  ASSERT_NE(p, nullptr);
  EXPECT_DOUBLE_EQ(p->latency_scale, 0.5);
  EXPECT_DOUBLE_EQ(p->bandwidth_scale, 2.0);
  EXPECT_DOUBLE_EQ(p->cpu_scale, 1.0);
  EXPECT_EQ(result.params_for("ipsc860"), nullptr);
}

// --- export round trips -------------------------------------------------------

study::StudyResult small_real_study() {
  api::Session session;
  const auto& app = suite::app("pi");
  study::StudyPlan plan("round trip");
  plan.source(app.source)
      .add_reference_machine("ipsc860")
      .knob_axis(study::Knob::Latency, {0.5, 2})
      .problems_from({256}, app.bindings)
      .nprocs({1, 2})
      .runs(1);
  return study::run_study(session, plan);
}

TEST(StudyResult, CsvRoundTripsByteIdentically) {
  const study::StudyResult result = small_real_study();
  const std::string csv = result.csv();
  const study::StudyResult parsed = study::StudyResult::from_csv(csv);
  EXPECT_EQ(parsed.title, result.title);
  EXPECT_EQ(parsed.base_machine, result.base_machine);
  ASSERT_EQ(parsed.machine_points.size(), result.machine_points.size());
  ASSERT_EQ(parsed.report.records.size(), result.report.records.size());
  for (std::size_t i = 0; i < result.report.records.size(); ++i) {
    const api::RunRecord& a = result.report.records[i];
    const api::RunRecord& b = parsed.report.records[i];
    EXPECT_EQ(a.comparison.estimated, b.comparison.estimated);
    EXPECT_EQ(a.comparison.measured_mean, b.comparison.measured_mean);
    EXPECT_EQ(a.phases.comm, b.phases.comm);
    EXPECT_EQ(a.phases.wait, b.phases.wait);
  }
  EXPECT_EQ(parsed.csv(), csv);  // byte-identical re-export
}

TEST(StudyResult, JsonRoundTripsByteIdentically) {
  const study::StudyResult result = small_real_study();
  const std::string json = result.json();
  const study::StudyResult parsed = study::StudyResult::from_json(json);
  EXPECT_EQ(parsed.title, result.title);
  ASSERT_EQ(parsed.machine_points.size(), result.machine_points.size());
  for (std::size_t i = 0; i < result.machine_points.size(); ++i) {
    EXPECT_EQ(parsed.machine_points[i].name, result.machine_points[i].name);
    EXPECT_EQ(parsed.machine_points[i].params.latency_scale,
              result.machine_points[i].params.latency_scale);
  }
  ASSERT_EQ(parsed.report.records.size(), result.report.records.size());
  EXPECT_EQ(parsed.json(), json);  // byte-identical re-export
}

TEST(StudyResult, ParsersRejectMalformedInput) {
  EXPECT_THROW((void)study::StudyResult::from_csv(""), std::invalid_argument);
  EXPECT_THROW((void)study::StudyResult::from_csv("machine,variant\n"),
               std::invalid_argument);
  // corrupted numeric cells surface as the documented invalid_argument:
  // trailing junk and out-of-range values alike
  const study::StudyResult tiny = small_real_study();
  std::string junk = tiny.csv();
  junk.replace(junk.rfind('\n', junk.size() - 2) + 1, std::string::npos,
               "m,v,p,4,1,12abc,0,0,0,0,0,0,0,0\n");
  EXPECT_THROW((void)study::StudyResult::from_csv(junk), std::invalid_argument);
  std::string huge = tiny.csv();
  huge.replace(huge.rfind('\n', huge.size() - 2) + 1, std::string::npos,
               "m,v,p,4,1,1e999999,0,0,0,0,0,0,0,0\n");
  EXPECT_THROW((void)study::StudyResult::from_csv(huge), std::invalid_argument);
  EXPECT_THROW((void)study::StudyResult::from_json(""), std::invalid_argument);
  EXPECT_THROW((void)study::StudyResult::from_json("{\"bogus\": 1}"),
               std::invalid_argument);
  EXPECT_THROW((void)study::StudyResult::from_json("{\"title\": \"x\"} trailing"),
               std::invalid_argument);
}

// --- weak-scaling axis --------------------------------------------------------

TEST(StudyPlan, WeakScalingAxisCouplesProblemSizeToNprocs) {
  api::Session session;
  const auto& app = suite::app("pi");
  study::StudyPlan plan("weak scaling");
  plan.source(app.source).add_reference_machine("ipsc860").nprocs({1, 4}).runs(0);
  plan.problems_scaled_by_nprocs({64}, app.bindings);
  // the scaled pairs replace the problems x nprocs cross product
  EXPECT_EQ(plan.point_count(), 2u);

  const study::StudyResult result = study::run_study(session, plan);
  ASSERT_EQ(result.report.records.size(), 2u);
  EXPECT_EQ(result.report.records[0].nprocs, 1);
  EXPECT_EQ(result.report.records[0].problem, "n=64");
  EXPECT_EQ(result.report.records[1].nprocs, 4);
  EXPECT_EQ(result.report.records[1].problem, "n=256");  // 64 * P at P=4
}

TEST(StudyPlan, WeakScalingAxisIsValidated) {
  const auto& app = suite::app("pi");
  study::StudyPlan unordered("bad");
  unordered.source(app.source);
  // the axis derives sizes from the swept nprocs: nprocs() must come first
  EXPECT_THROW(unordered.problems_scaled_by_nprocs({64}, app.bindings),
               std::invalid_argument);

  study::StudyPlan mixed("bad");
  mixed.source(app.source).nprocs({1, 2});
  mixed.add_problem("fixed", app.bindings(64));
  mixed.problems_scaled_by_nprocs({64}, app.bindings);
  EXPECT_THROW(mixed.validate(), std::invalid_argument);  // mutually exclusive
}

// --- study-vs-study diff ------------------------------------------------------

TEST(StudyDiff, IdenticalStudiesHaveIdenticalConclusions) {
  const study::StudyResult s = synthetic_two_variant_study();
  const study::StudyDiff d = s.diff(s);
  EXPECT_TRUE(d.identical_conclusions());
  EXPECT_NE(d.ascii().find("identical conclusions"), std::string::npos);
}

TEST(StudyDiff, ReportsLostCrossoverAndSignificantDeltas) {
  const study::StudyResult before = synthetic_two_variant_study();
  study::StudyResult after = before;
  // make B strictly slower everywhere: the P=4 overtake disappears
  for (auto& r : after.report.records) {
    if (r.variant == "B") r.comparison.estimated += 10.0;
  }
  const study::StudyDiff d = before.diff(after);
  EXPECT_TRUE(d.gained.empty());
  ASSERT_EQ(d.lost.size(), 1u);
  EXPECT_EQ(d.lost[0].a, "A");
  EXPECT_EQ(d.lost[0].b, "B");
  EXPECT_EQ(d.deltas.size(), 3u);  // every B point moved >= 5%
  EXPECT_EQ(d.only_in_before, 0u);
  EXPECT_FALSE(d.identical_conclusions());

  // the inverse diff reports the same flip as gained
  const study::StudyDiff inverse = after.diff(before);
  EXPECT_EQ(inverse.gained.size(), 1u);
  EXPECT_TRUE(inverse.lost.empty());
}

TEST(StudyDiff, DriftBelowThresholdIsQuiet) {
  const study::StudyResult before = synthetic_two_variant_study();
  study::StudyResult after = before;
  // 1% uniform drift: same crossover anchors, no significant deltas at 5%
  for (auto& r : after.report.records) r.comparison.estimated *= 1.01;
  EXPECT_TRUE(before.diff(after).identical_conclusions());
  EXPECT_FALSE(before.diff(after, 0.005).identical_conclusions());
}

TEST(StudyDiff, CountsUnmatchedPointsAndRendersDeterministically) {
  const study::StudyResult before = synthetic_two_variant_study();
  study::StudyResult after = before;
  after.report.records.pop_back();  // B@4 vanishes from the candidate
  const study::StudyDiff d = before.diff(after);
  EXPECT_EQ(d.only_in_before, 1u);
  EXPECT_EQ(d.only_in_after, 0u);
  EXPECT_EQ(d.lost.size(), 1u);  // and with it the overtake
  EXPECT_FALSE(d.identical_conclusions());
  EXPECT_EQ(d.ascii(), before.diff(after).ascii());
  const std::string csv = d.csv();
  EXPECT_EQ(csv.rfind("kind,", 0), 0u);
  EXPECT_NE(csv.find("crossover,lost,variant,A,B"), std::string::npos);
}

}  // namespace
}  // namespace hpf90d
