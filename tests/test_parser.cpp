// Parser unit tests: expression precedence, statements, constructs,
// declarations, sections, and syntax errors.
#include <gtest/gtest.h>

#include "hpf/parser.hpp"
#include "support/diagnostics.hpp"

namespace hpf90d::front {
namespace {

Program parse(std::string_view body) {
  std::string src = "program t\n" + std::string(body) + "\nend program t\n";
  return parse_program(src);
}

std::string expr_str(std::string_view text) { return parse_expression_text(text)->str(); }

TEST(Parser, ProgramNameParsed) {
  const Program p = parse("x = 1");
  EXPECT_EQ(p.name, "t");
}

TEST(Parser, MissingEndThrows) {
  EXPECT_THROW((void)parse_program("program t\nx = 1\n"), support::CompileError);
}

TEST(Parser, MulBindsTighterThanAdd) {
  EXPECT_EQ(expr_str("a + b * c"), "(a + (b * c))");
}

TEST(Parser, PowerIsRightAssociative) {
  EXPECT_EQ(expr_str("a ** b ** c"), "(a ** (b ** c))");
}

TEST(Parser, UnaryMinusAndPower) {
  EXPECT_EQ(expr_str("-a ** 2"), "(-(a ** 2))");
  EXPECT_EQ(expr_str("a ** -2"), "(a ** (-2))");
}

TEST(Parser, RelationalBelowAdditive) {
  EXPECT_EQ(expr_str("a + b .gt. c"), "((a + b) .gt. c)");
}

TEST(Parser, LogicalPrecedence) {
  EXPECT_EQ(expr_str("a .lt. b .and. c .gt. d .or. e .le. f"),
            "(((a .lt. b) .and. (c .gt. d)) .or. (e .le. f))");
}

TEST(Parser, NotBindsAboveAnd) {
  EXPECT_EQ(expr_str(".not. a .and. b"), "((.not. a) .and. b)");
}

TEST(Parser, ParenthesesOverride) {
  EXPECT_EQ(expr_str("(a + b) * c"), "((a + b) * c)");
}

TEST(Parser, CallArgumentsAndNesting) {
  EXPECT_EQ(expr_str("max(a, min(b, c))"), "max(a,min(b,c))");
}

TEST(Parser, SectionForms) {
  EXPECT_EQ(expr_str("a(1:n)"), "a(1:n)");
  EXPECT_EQ(expr_str("a(:)"), "a(:)");
  EXPECT_EQ(expr_str("a(2:n-1:2)"), "a(2:(n - 1):2)");
  EXPECT_EQ(expr_str("a(:, j)"), "a(:,j)");
  EXPECT_EQ(expr_str("a(:n)"), "a(:n)");
}

TEST(Parser, ScalarSubscriptsStayCalls) {
  // the parser cannot know arrays from intrinsics; scalar-subscript forms
  // become Call nodes for sema to re-classify
  const ExprPtr e = parse_expression_text("a(i, j)");
  EXPECT_EQ(e->kind, ExprKind::Call);
}

TEST(Parser, SectionFormsAreArrayRefs) {
  const ExprPtr e = parse_expression_text("a(1:n, j)");
  EXPECT_EQ(e->kind, ExprKind::ArrayRef);
  ASSERT_EQ(e->subs.size(), 2u);
  EXPECT_EQ(e->subs[0].kind, Subscript::Kind::Triplet);
  EXPECT_EQ(e->subs[1].kind, Subscript::Kind::Scalar);
}

TEST(Parser, Declarations) {
  const Program p = parse("real x(n), y\ninteger k\ndouble precision d(4,5)\nx(1) = 1.0");
  ASSERT_EQ(p.decls.size(), 3u);
  EXPECT_EQ(p.decls[0].items[0].name, "x");
  EXPECT_EQ(p.decls[0].items[0].dims.size(), 1u);
  EXPECT_EQ(p.decls[0].items[1].name, "y");
  EXPECT_EQ(p.decls[1].type, TypeBase::Integer);
  EXPECT_EQ(p.decls[2].type, TypeBase::Double);
  EXPECT_EQ(p.decls[2].items[0].dims.size(), 2u);
}

TEST(Parser, ParameterStatement) {
  const Program p = parse("parameter (n = 1024, m = 2*n)\nx = 1");
  ASSERT_EQ(p.parameters.size(), 2u);
  EXPECT_EQ(p.parameters[0].name, "n");
  EXPECT_EQ(p.parameters[1].value->str(), "(2 * n)");
}

TEST(Parser, ForallSingleStatement) {
  const Program p = parse("forall (i = 1:n) x(i) = 0.0");
  ASSERT_EQ(p.stmts.size(), 1u);
  const Stmt& s = *p.stmts[0];
  EXPECT_EQ(s.kind, StmtKind::Forall);
  ASSERT_EQ(s.forall_indices.size(), 1u);
  EXPECT_EQ(s.forall_indices[0].name, "i");
  EXPECT_EQ(s.body.size(), 1u);
  EXPECT_EQ(s.mask, nullptr);
}

TEST(Parser, ForallWithMask) {
  const Program p = parse("forall (i = 1:n, v(i) .gt. 0.0) x(i) = 1.0/v(i)");
  const Stmt& s = *p.stmts[0];
  ASSERT_NE(s.mask, nullptr);
  EXPECT_EQ(s.forall_indices.size(), 1u);
}

TEST(Parser, ForallMultiIndexAndStride) {
  const Program p = parse("forall (i = 1:n, j = 2:m:2) a(i,j) = 0.0");
  const Stmt& s = *p.stmts[0];
  ASSERT_EQ(s.forall_indices.size(), 2u);
  ASSERT_NE(s.forall_indices[1].stride, nullptr);
}

TEST(Parser, ForallConstruct) {
  const Program p = parse("forall (i = 1:n)\n  x(i) = 1.0\n  y(i) = 2.0\nend forall");
  const Stmt& s = *p.stmts[0];
  EXPECT_EQ(s.kind, StmtKind::Forall);
  EXPECT_EQ(s.body.size(), 2u);
}

TEST(Parser, WhereStatementAndConstruct) {
  const Program p1 = parse("where (v .gt. 0.0) x = 1.0/v");
  EXPECT_EQ(p1.stmts[0]->kind, StmtKind::Where);
  const Program p2 =
      parse("where (v .gt. 0.0)\n  x = 1.0\nelsewhere\n  x = 0.0\nend where");
  EXPECT_EQ(p2.stmts[0]->body.size(), 1u);
  EXPECT_EQ(p2.stmts[0]->else_body.size(), 1u);
}

TEST(Parser, DoLoopWithStep) {
  const Program p = parse("do i = 1, n, 2\n  x = x + 1\nend do");
  const Stmt& s = *p.stmts[0];
  EXPECT_EQ(s.kind, StmtKind::Do);
  EXPECT_EQ(s.do_var, "i");
  ASSERT_NE(s.do_step, nullptr);
}

TEST(Parser, EndDoSpellings) {
  EXPECT_NO_THROW((void)parse("do i = 1, 3\n  x = 1\nenddo"));
  EXPECT_NO_THROW((void)parse("do i = 1, 3\n  x = 1\nend do"));
}

TEST(Parser, DoWhile) {
  const Program p = parse("do while (x .lt. 10.0)\n  x = x + 1.0\nend do");
  EXPECT_EQ(p.stmts[0]->kind, StmtKind::DoWhile);
}

TEST(Parser, BlockIfElse) {
  const Program p = parse("if (x .gt. 0.0) then\n  y = 1\nelse\n  y = 2\nend if");
  const Stmt& s = *p.stmts[0];
  EXPECT_EQ(s.kind, StmtKind::If);
  EXPECT_EQ(s.body.size(), 1u);
  EXPECT_EQ(s.else_body.size(), 1u);
}

TEST(Parser, ElseIfChainsAsNestedIf) {
  const Program p = parse(
      "if (x .gt. 0.0) then\n  y = 1\nelseif (x .lt. 0.0) then\n  y = 2\nelse\n"
      "  y = 3\nend if");
  const Stmt& s = *p.stmts[0];
  ASSERT_EQ(s.else_body.size(), 1u);
  EXPECT_EQ(s.else_body[0]->kind, StmtKind::If);
  EXPECT_EQ(s.else_body[0]->else_body.size(), 1u);
}

TEST(Parser, LogicalIf) {
  const Program p = parse("if (x .gt. 0.0) y = 1");
  const Stmt& s = *p.stmts[0];
  EXPECT_EQ(s.kind, StmtKind::If);
  ASSERT_EQ(s.body.size(), 1u);
  EXPECT_TRUE(s.else_body.empty());
}

TEST(Parser, PrintStatement) {
  const Program p = parse("print *, x, y + 1");
  const Stmt& s = *p.stmts[0];
  EXPECT_EQ(s.kind, StmtKind::Print);
  EXPECT_EQ(s.print_args.size(), 2u);
}

TEST(Parser, DirectivesRecordedInProgram) {
  const Program p = parse_program(
      "program t\n!hpf$ template d(n)\nx = 1\nend program t\n");
  ASSERT_EQ(p.raw_directives.size(), 1u);
}

TEST(Parser, SyntaxErrorsThrow) {
  EXPECT_THROW((void)parse("forall i = 1:n) x(i) = 0"), support::CompileError);
  EXPECT_THROW((void)parse("do i = 1\n  x = 1\nend do"), support::CompileError);
  EXPECT_THROW((void)parse("x = "), support::CompileError);
  EXPECT_THROW((void)parse("x = (a + b"), support::CompileError);
}

TEST(Parser, StmtRoundTripText) {
  const Program p = parse("forall (i = 1:n) x(i) = y(i) + 1.0");
  const std::string s = p.stmts[0]->str();
  EXPECT_NE(s.find("forall (i=1:n)"), std::string::npos);
  EXPECT_NE(s.find("x(i) = (y(i) + 1.0)"), std::string::npos);
}

}  // namespace
}  // namespace hpf90d::front
