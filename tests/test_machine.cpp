// Machine module tests: hypercube topology (parameterized), SAG structure,
// iPSC/860 parameters, and communication cost-model properties.
#include <gtest/gtest.h>

#include "machine/comm_model.hpp"
#include "machine/fattree.hpp"
#include "machine/ipsc860.hpp"
#include "machine/paragon.hpp"
#include "machine/topology.hpp"
#include "machine/whatif.hpp"

namespace hpf90d::machine {
namespace {

TEST(Topology, GrayCodeNeighbours) {
  for (unsigned i = 0; i + 1 < 16; ++i) {
    const unsigned a = gray_code(i);
    const unsigned b = gray_code(i + 1);
    EXPECT_EQ(Hypercube::hops(static_cast<int>(a), static_cast<int>(b)), 1)
        << "gray(" << i << ")";
  }
}

TEST(Topology, NonPowerOfTwoRejected) {
  EXPECT_THROW(Hypercube(6), std::invalid_argument);
  EXPECT_THROW(Hypercube(0), std::invalid_argument);
}

class CubeParam : public ::testing::TestWithParam<int> {};

TEST_P(CubeParam, DimensionAndRoutes) {
  const int nodes = GetParam();
  Hypercube cube(nodes);
  EXPECT_EQ(1 << cube.dimension(), nodes);
  for (int a = 0; a < nodes; ++a) {
    for (int b = 0; b < nodes; ++b) {
      const auto path = cube.route(a, b);
      EXPECT_EQ(path.front(), a);
      EXPECT_EQ(path.back(), b);
      EXPECT_EQ(static_cast<int>(path.size()) - 1, Hypercube::hops(a, b));
      // every hop flips exactly one bit
      for (std::size_t h = 0; h + 1 < path.size(); ++h) {
        EXPECT_EQ(Hypercube::hops(path[h], path[h + 1]), 1);
        const int link = cube.link_index(path[h], path[h + 1]);
        EXPECT_GE(link, 0);
        EXPECT_LT(link, cube.link_count());
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, CubeParam, ::testing::Values(1, 2, 4, 8, 16));

TEST(Topology, GridEmbeddingKeepsNeighboursAdjacent) {
  Hypercube cube(8);
  const std::vector<int> shape{2, 4};
  // row neighbours and column neighbours must be cube neighbours
  for (int r = 0; r < 2; ++r) {
    for (int c = 0; c < 4; ++c) {
      const int self = cube.grid_to_node(r * 4 + c, shape);
      if (c + 1 < 4) {
        const int right = cube.grid_to_node(r * 4 + c + 1, shape);
        EXPECT_EQ(Hypercube::hops(self, right), 1);
      }
      if (r + 1 < 2) {
        const int down = cube.grid_to_node((r + 1) * 4 + c, shape);
        EXPECT_EQ(Hypercube::hops(self, down), 1);
      }
    }
  }
}

TEST(Topology, GridEmbeddingIsBijective) {
  Hypercube cube(8);
  const std::vector<int> shape{2, 4};
  std::vector<int> seen(8, 0);
  for (int p = 0; p < 8; ++p) seen[static_cast<std::size_t>(cube.grid_to_node(p, shape))]++;
  for (int s : seen) EXPECT_EQ(s, 1);
}

TEST(SAG, Ipsc860Decomposition) {
  const MachineModel m = make_ipsc860(8);
  EXPECT_EQ(m.max_nodes, 8);
  EXPECT_GE(m.sag.size(), 4u);
  EXPECT_GE(m.sag.find("i860 node"), 0);
  EXPECT_GE(m.sag.find("SRM host (80386)"), 0);
  // the node SAU hangs off the cube, the cube off the system root
  const int node = m.sag.find("i860 node");
  const int cube = m.sag.parent_of(node);
  EXPECT_EQ(m.sag.parent_of(cube), 0);
  EXPECT_NE(m.sag.str().find("i860 cube"), std::string::npos);
}

TEST(SAG, NodeParametersArePlausibleIpsc860) {
  const MachineModel m = make_ipsc860();
  const SAU& node = m.node();
  // 40 MHz node: flops cost tens of ns
  EXPECT_GT(node.proc.t_fadd, 10e-9);
  EXPECT_LT(node.proc.t_fadd, 1e-6);
  EXPECT_GT(node.proc.t_fdiv, node.proc.t_fmul);
  // published message latency ~75 us, bandwidth ~2.8 MB/s
  EXPECT_NEAR(node.comm.latency_short, 75e-6, 20e-6);
  EXPECT_NEAR(1.0 / node.comm.per_byte, 2.8e6, 0.5e6);
  EXPECT_EQ(node.mem.dcache_bytes, 8 * 1024);
  EXPECT_EQ(node.mem.icache_bytes, 4 * 1024);
  EXPECT_EQ(node.mem.main_memory_bytes, 8LL * 1024 * 1024);
  EXPECT_GT(node.proc.intrinsic("exp"), node.proc.t_fmul);
  // unknown intrinsics fall back to the call overhead
  EXPECT_DOUBLE_EQ(node.proc.intrinsic("nosuch"), node.proc.call_overhead);
}

TEST(SAG, ParagonDecomposition) {
  const MachineModel m = make_paragon(16);
  EXPECT_EQ(m.max_nodes, 16);
  EXPECT_GE(m.sag.size(), 4u);
  EXPECT_GE(m.sag.find("i860 XP node"), 0);
  EXPECT_GE(m.sag.find("service partition"), 0);
  const int node = m.sag.find("i860 XP node");
  const int mesh = m.sag.parent_of(node);
  EXPECT_EQ(m.sag.parent_of(mesh), 0);
  EXPECT_NE(m.sag.str().find("wormhole mesh"), std::string::npos);
}

TEST(SAG, ParagonIsTheCubesSuccessor) {
  // the generational deltas the what-if studies lean on: a faster clock,
  // bigger caches and memory, similar software message latency but an
  // order of magnitude more bandwidth with negligible routing cost
  const MachineModel cube_model = make_ipsc860();
  const MachineModel xp_model = make_paragon();
  const SAU& cube = cube_model.node();
  const SAU& xp = xp_model.node();
  EXPECT_LT(xp.proc.t_fadd, cube.proc.t_fadd);
  EXPECT_GT(xp.mem.dcache_bytes, cube.mem.dcache_bytes);
  EXPECT_GT(xp.mem.main_memory_bytes, cube.mem.main_memory_bytes);
  EXPECT_LT(xp.comm.latency_short, cube.comm.latency_short);
  EXPECT_GT(1.0 / xp.comm.per_byte, 10.0 / cube.comm.per_byte);
  EXPECT_LT(xp.comm.per_hop, cube.comm.per_hop / 10.0);
}

TEST(SAG, FatTreeDecomposition) {
  const MachineModel m = make_fattree(16);
  EXPECT_EQ(m.max_nodes, 16);
  // 16 nodes / radix-4 leaves => two switch tiers between root and node
  EXPECT_GE(m.sag.find("spine switch tier"), 0);
  EXPECT_GE(m.sag.find("leaf switch tier"), 0);
  const int node = m.sag.find("risc workstation");
  ASSERT_GE(node, 0);
  EXPECT_EQ(m.sag.parent_of(node), m.sag.find("leaf switch tier"));
  EXPECT_EQ(m.sag.parent_of(m.sag.find("leaf switch tier")),
            m.sag.find("spine switch tier"));
  EXPECT_NE(m.sag.str().find("fat-tree cluster"), std::string::npos);

  // a single-tier tree still names its leaf tier
  const MachineModel tiny = make_fattree(4);
  EXPECT_GE(tiny.sag.find("leaf switch tier"), 0);
}

TEST(SAG, FatTreeTiersAndBisectionFactor) {
  EXPECT_EQ(fattree_tiers(1, 4), 1);
  EXPECT_EQ(fattree_tiers(4, 4), 1);
  EXPECT_EQ(fattree_tiers(5, 4), 2);
  EXPECT_EQ(fattree_tiers(16, 4), 2);
  EXPECT_EQ(fattree_tiers(64, 4), 3);
  EXPECT_THROW(fattree_tiers(0, 4), std::invalid_argument);
  EXPECT_THROW(fattree_tiers(8, 1), std::invalid_argument);

  // default 2:1 taper: each extra tier halves the bisection bandwidth
  EXPECT_DOUBLE_EQ(fattree_bisection_factor(4), 1.0);
  EXPECT_DOUBLE_EQ(fattree_bisection_factor(16), 2.0);
  EXPECT_DOUBLE_EQ(fattree_bisection_factor(64), 4.0);
  FatTreeParams full;
  full.taper = 1.0;  // full-bisection tree: no contention at any size
  EXPECT_DOUBLE_EQ(fattree_bisection_factor(64, full), 1.0);
  FatTreeParams bad;
  bad.taper = 0.5;
  EXPECT_THROW(fattree_bisection_factor(64, bad), std::invalid_argument);
}

TEST(SAG, FatTreeCommCostsAreBisectionAware) {
  const MachineModel small = make_fattree(4);
  const MachineModel big = make_fattree(64);
  // bigger tree: more switch traversals in the setup, and the tapered spine
  // divides the effective per-byte bandwidth
  EXPECT_GT(big.node().comm.latency_short, small.node().comm.latency_short);
  EXPECT_DOUBLE_EQ(big.node().comm.per_byte, 4.0 * small.node().comm.per_byte);
  // a full-bisection build keeps the leaf-tier bandwidth at scale
  FatTreeParams full;
  full.taper = 1.0;
  EXPECT_DOUBLE_EQ(make_fattree(64, full).node().comm.per_byte,
                   small.node().comm.per_byte);
}

TEST(SAG, WhatIfAppliesToAnyBase) {
  // apply_whatif is base-agnostic: scaling the fat tree's latency must
  // leave its per-byte (bandwidth) costs untouched, and vice versa.
  WhatIfParams p;
  p.latency_scale = 0.5;
  const MachineModel base = make_fattree(16);
  const MachineModel scaled = apply_whatif(make_fattree(16), p);
  EXPECT_DOUBLE_EQ(scaled.node().comm.latency_short,
                   0.5 * base.node().comm.latency_short);
  EXPECT_DOUBLE_EQ(scaled.node().comm.per_byte, base.node().comm.per_byte);
  EXPECT_DOUBLE_EQ(scaled.node().proc.t_fadd, base.node().proc.t_fadd);
  WhatIfParams bad;
  bad.cpu_scale = -1;
  EXPECT_THROW((void)apply_whatif(make_fattree(4), bad), std::invalid_argument);
}

// --- communication model properties ------------------------------------------

class CommModelTest : public ::testing::Test {
 protected:
  MachineModel machine_ = make_ipsc860();
  CommModel model_{machine_.node().comm};
};

TEST_F(CommModelTest, PtpMonotoneInBytesAndHops) {
  EXPECT_LT(model_.ptp(10), model_.ptp(10000));
  EXPECT_LT(model_.ptp(1000, 1), model_.ptp(1000, 3));
}

TEST_F(CommModelTest, ShortMessagesCheaperSetup) {
  const auto& c = machine_.node().comm;
  EXPECT_NEAR(model_.ptp(50), c.latency_short + 50 * c.per_byte, 1e-12);
  EXPECT_NEAR(model_.ptp(5000), c.latency_long + 5000 * c.per_byte, 1e-12);
}

TEST_F(CommModelTest, StridedPackingCostsMore) {
  EXPECT_GT(model_.pack(1024, true), model_.pack(1024, false));
}

TEST_F(CommModelTest, ReduceScalesLogarithmically) {
  const double t2 = model_.reduce(2, 8, 0.0);
  const double t4 = model_.reduce(4, 8, 0.0);
  const double t8 = model_.reduce(8, 8, 0.0);
  EXPECT_NEAR(t4 / t2, 2.0, 0.01);
  EXPECT_NEAR(t8 / t2, 3.0, 0.01);
  EXPECT_DOUBLE_EQ(model_.reduce(1, 8, 0.0), 0.0);
}

TEST_F(CommModelTest, LinearCollectiveSlowerThanTree) {
  EXPECT_GT(model_.reduce(8, 8, 0.0, CollectiveAlgo::Linear),
            model_.reduce(8, 8, 0.0, CollectiveAlgo::RecursiveTree));
  EXPECT_GT(model_.bcast(8, 64, CollectiveAlgo::Linear),
            model_.bcast(8, 64, CollectiveAlgo::RecursiveTree));
}

TEST_F(CommModelTest, IrregularScalesWithCountAndProcs) {
  EXPECT_LT(model_.irregular(4, 100, 4), model_.irregular(4, 10000, 4));
  EXPECT_LT(model_.irregular(2, 1000, 4), model_.irregular(8, 1000, 4));
  // single processor: only index translation remains
  const auto& c = machine_.node().comm;
  EXPECT_NEAR(model_.irregular(1, 100, 4), 100 * c.per_element_index, 1e-12);
}

TEST_F(CommModelTest, RemapZeroOnOneProc) {
  EXPECT_DOUBLE_EQ(model_.remap(1, 1000, 4), 0.0);
  EXPECT_GT(model_.remap(4, 1000, 4), 0.0);
}

TEST_F(CommModelTest, OverlapExchangeIncludesPackBothSides) {
  const auto& c = machine_.node().comm;
  const double t = model_.overlap_exchange(1000, false);
  EXPECT_NEAR(t, 2 * model_.pack(1000, false) + model_.ptp(1000), 1e-12);
  (void)c;
}

}  // namespace
}  // namespace hpf90d::machine
