// End-to-end validation: the paper's §5.1 accuracy experiment as a test —
// predicted vs simulated-measured times across the suite, plus the §5.2
// directive-selection and performance-debugging use cases.
#include <gtest/gtest.h>

#include <chrono>

#include "core/aag.hpp"
#include "core/output.hpp"
#include "driver/framework.hpp"
#include "driver/report.hpp"
#include "suite/suite.hpp"

namespace hpf90d {
namespace {

driver::Framework& framework() {
  static driver::Framework fw;
  return fw;
}

compiler::CompiledProgram compile_app(const suite::BenchmarkApp& app) {
  return app.directive_overrides.empty()
             ? framework().compile(app.source)
             : framework().compile_with_directives(app.source, app.directive_overrides);
}

// Paper §5.1: "in the worst case, the interpreted performance is within 20%
// of the measured value". We assert a conservative 30% bound per point and
// a 22% bound for the regular applications.
class AccuracyEnvelope : public ::testing::TestWithParam<const char*> {};

TEST_P(AccuracyEnvelope, PredictionWithinPaperEnvelope) {
  const auto& app = suite::app(GetParam());
  auto prog = compile_app(app);
  const long long size = app.problem_sizes[app.problem_sizes.size() / 2];
  for (int nprocs : {1, 2, 4, 8}) {
    driver::ExperimentConfig cfg;
    cfg.nprocs = nprocs;
    cfg.bindings = app.bindings(size);
    cfg.runs = 2;
    const driver::Comparison cmp = framework().compare(prog, cfg);
    EXPECT_GT(cmp.estimated, 0.0);
    EXPECT_GT(cmp.measured_mean, 0.0);
    EXPECT_LT(cmp.abs_error_pct(), 30.0)
        << app.id << " n=" << size << " P=" << nprocs;
  }
}

INSTANTIATE_TEST_SUITE_P(Suite, AccuracyEnvelope,
                         ::testing::Values("lfk1", "lfk2", "lfk3", "lfk9", "lfk14",
                                           "lfk22", "pbs1", "pbs2", "pbs3", "pbs4",
                                           "pi", "finance", "laplace_bb",
                                           "laplace_bx", "laplace_xb"));

TEST(Accuracy, RegularAppsAreTight) {
  // the non-kernel applications predict within single-digit percent; the
  // LFK kernels are allowed their paper-sized errors elsewhere
  for (const char* id : {"pi", "pbs1", "pbs4", "finance"}) {
    const auto& app = suite::app(id);
    auto prog = compile_app(app);
    driver::ExperimentConfig cfg;
    cfg.nprocs = 4;
    cfg.bindings = app.bindings(app.problem_sizes.back());
    cfg.runs = 2;
    const driver::Comparison cmp = framework().compare(prog, cfg);
    EXPECT_LT(cmp.abs_error_pct(), 10.0) << id;
  }
  const auto& lfk3 = suite::app("lfk3");
  auto prog = compile_app(lfk3);
  driver::ExperimentConfig cfg;
  cfg.nprocs = 4;
  cfg.bindings = lfk3.bindings(lfk3.problem_sizes.back());
  cfg.runs = 2;
  EXPECT_LT(framework().compare(prog, cfg).abs_error_pct(), 13.0);
}

TEST(Accuracy, SweepAggregationMatchesTable2Shape) {
  // the compiler-taxing kernels must show larger max errors than the
  // regular applications (the paper's central observation)
  auto max_err = [&](const char* id) {
    const auto& app = suite::app(id);
    auto prog = compile_app(app);
    double worst = 0;
    for (long long size : {app.problem_sizes.front(), app.problem_sizes.back()}) {
      for (int nprocs : {1, 4}) {
        driver::ExperimentConfig cfg;
        cfg.nprocs = nprocs;
        cfg.bindings = app.bindings(size);
        cfg.runs = 2;
        worst = std::max(worst, framework().compare(prog, cfg).abs_error_pct());
      }
    }
    return worst;
  };
  EXPECT_GT(max_err("lfk2"), max_err("pi"));
  EXPECT_GT(max_err("lfk9"), max_err("pbs1"));
}

TEST(Report, AccuracyRowAggregation) {
  std::vector<driver::SweepPoint> sweep;
  driver::SweepPoint a;
  a.problem_size = 128;
  a.nprocs = 1;
  a.comparison.estimated = 1.1;
  a.comparison.measured_mean = 1.0;
  driver::SweepPoint b;
  b.problem_size = 4096;
  b.nprocs = 8;
  b.comparison.estimated = 0.99;
  b.comparison.measured_mean = 1.0;
  sweep = {a, b};
  const auto row = driver::AccuracyRow::from_sweep("X", sweep);
  EXPECT_NEAR(row.min_abs_error_pct, 1.0, 1e-9);
  EXPECT_NEAR(row.max_abs_error_pct, 10.0, 1e-6);
  EXPECT_EQ(row.sizes, "128 - 4096");
  EXPECT_EQ(row.procs, "1 - 8");
  EXPECT_EQ(row.points, 2);
}

// --- §5.2.1 directive selection -----------------------------------------------

TEST(DirectiveSelection, BlockStarWinsLaplaceAtScale) {
  // the paper selects (BLOCK,*) for the Laplace solver from the predicted
  // times; verify both the prediction and the simulated measurement agree
  const long long n = 128;
  double est[3], meas[3];
  const char* ids[3] = {"laplace_bb", "laplace_bx", "laplace_xb"};
  for (int k = 0; k < 3; ++k) {
    const auto& app = suite::app(ids[k]);
    auto prog = compile_app(app);
    driver::ExperimentConfig cfg;
    cfg.nprocs = 4;
    if (std::string(ids[k]) == "laplace_bb") cfg.grid_shape = std::vector<int>{2, 2};
    cfg.bindings = app.bindings(n);
    cfg.runs = 2;
    const auto cmp = framework().compare(prog, cfg);
    est[k] = cmp.estimated;
    meas[k] = cmp.measured_mean;
  }
  // (Blk,*) beats (*,Blk): its boundary slabs are contiguous rows
  EXPECT_LT(est[1], est[2]);
  EXPECT_LT(meas[1], meas[2]);
  // and the estimated ranking matches the measured ranking for the winner
  const int est_best = static_cast<int>(std::min_element(est, est + 3) - est);
  const int meas_best = static_cast<int>(std::min_element(meas, meas + 3) - meas);
  EXPECT_EQ(est_best, meas_best);
  EXPECT_EQ(est_best, 1);
}

// --- §5.2.2 performance debugging -----------------------------------------------

TEST(PerformanceDebugging, FinancialPhasesSeparate) {
  const auto& app = suite::app("finance");
  auto prog = compile_app(app);
  core::SynchronizedAAG saag(prog);
  driver::ExperimentConfig cfg;
  cfg.nprocs = 4;
  cfg.bindings = app.bindings(256);
  const auto pred = framework().predict(prog, cfg);
  core::OutputModule out(saag, pred);

  // phase 1 = the lattice do-loop (contains the shift comm); phase 2 = the
  // payoff foralls. Identify them via the AAG.
  core::AAUMetric phase1, phase2;
  for (const auto& aau : saag.aaus()) {
    if (aau.kind == core::AAUKind::Iter) phase1 = out.sub_aag(aau.id);
  }
  for (const auto& aau : saag.aaus()) {
    if (aau.kind == core::AAUKind::IterD && aau.parent == saag.root()) {
      const auto m = out.aau(aau.id);
      phase2.add(m);
    }
  }
  EXPECT_GT(phase1.comm, 0.0);          // phase 1 communicates (cshift)
  EXPECT_NEAR(phase2.comm, 0.0, 1e-12); // phase 2 requires no communication
  EXPECT_GT(phase2.comp, 0.0);
}

// --- §5.3 usability / cost-effectiveness ------------------------------------------

TEST(CostEffectiveness, InterpretationIsFasterThanSimulation) {
  const auto& app = suite::app("laplace_bx");
  auto prog = compile_app(app);
  driver::ExperimentConfig cfg;
  cfg.nprocs = 8;
  cfg.bindings = app.bindings(256);
  cfg.runs = 1;

  const auto t0 = std::chrono::steady_clock::now();
  (void)framework().predict(prog, cfg);
  const auto t1 = std::chrono::steady_clock::now();
  (void)framework().measure(prog, cfg);
  const auto t2 = std::chrono::steady_clock::now();
  // source-driven interpretation avoids element-level execution entirely
  EXPECT_LT((t1 - t0).count() * 5, (t2 - t1).count());
}

TEST(Framework, VaryingProblemSizeFromInterface) {
  // the framework varies sizes via bindings without editing source
  const auto& app = suite::app("pi");
  auto prog = compile_app(app);
  double prev = 0;
  for (long long n : {256LL, 1024LL, 4096LL}) {
    driver::ExperimentConfig cfg;
    cfg.nprocs = 4;
    cfg.bindings = app.bindings(n);
    const double t = framework().predict(prog, cfg).total;
    EXPECT_GT(t, prev);
    prev = t;
  }
}

TEST(Framework, Table1InventoryComplete) {
  const auto& apps = suite::validation_suite();
  EXPECT_EQ(apps.size(), 16u);
  int lfk = 0, pbs = 0;
  for (const auto& a : apps) {
    if (a.id.starts_with("lfk")) ++lfk;
    if (a.id.starts_with("pbs")) ++pbs;
  }
  EXPECT_EQ(lfk, 6);
  EXPECT_EQ(pbs, 4);
  EXPECT_EQ(suite::paper_system_sizes(), (std::vector<int>{1, 2, 4, 8}));
  EXPECT_THROW((void)suite::app("nope"), std::out_of_range);
}

TEST(Framework, WithinVarianceFlagComputed) {
  driver::Comparison cmp;
  cmp.estimated = 1.0;
  cmp.measured_mean = 1.0;
  cmp.measured_min = 0.99;
  cmp.measured_max = 1.01;
  cmp.measured_stddev = 0.01;
  EXPECT_TRUE(cmp.within_variance());
  cmp.estimated = 2.0;
  EXPECT_FALSE(cmp.within_variance());
}

}  // namespace
}  // namespace hpf90d
