// Experiment-session API tests: machine registry lookup (including the
// unknown-name error path), compilation/layout cache behaviour across an
// ExperimentPlan sweep, content-addressed layout sharing with externally
// owned programs, worker-pool determinism, RunReport CSV export/diff, and
// the driver::Framework compatibility shim.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <optional>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "api/api.hpp"
#include "driver/framework.hpp"
#include "machine/ipsc860.hpp"
#include "machine/whatif.hpp"
#include "suite/suite.hpp"

namespace hpf90d {
namespace {

// --- machine registry ---------------------------------------------------------

TEST(MachineRegistry, BuiltinsRegistered) {
  api::MachineRegistry registry;
  EXPECT_TRUE(registry.contains("ipsc860"));
  EXPECT_TRUE(registry.contains("paragon"));
  EXPECT_TRUE(registry.contains("cluster"));
  EXPECT_TRUE(registry.contains("fattree"));
  EXPECT_TRUE(registry.contains("whatif"));
  EXPECT_EQ(registry.names(), (std::vector<std::string>{"cluster", "fattree",
                                                        "ipsc860", "paragon", "whatif"}));
  EXPECT_FALSE(registry.description("ipsc860").empty());

  const machine::MachineModel& cube = registry.get("ipsc860", 8);
  EXPECT_EQ(cube.max_nodes, 8);
  // models are cached per (name, nodes): same reference back
  EXPECT_EQ(&cube, &registry.get("ipsc860", 8));
  EXPECT_NE(&cube, &registry.get("ipsc860", 4));
}

TEST(MachineRegistry, UnknownNameListsRegistered) {
  api::MachineRegistry registry;
  EXPECT_FALSE(registry.contains("sp2"));
  try {
    (void)registry.get("sp2");
    FAIL() << "expected std::out_of_range";
  } catch (const std::out_of_range& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("sp2"), std::string::npos);
    EXPECT_NE(msg.find("ipsc860"), std::string::npos);
    EXPECT_NE(msg.find("cluster"), std::string::npos);
  }
  EXPECT_THROW((void)registry.get("ipsc860", 0), std::invalid_argument);
}

TEST(MachineRegistry, CustomMachineRegistersAndReplaces) {
  api::MachineRegistry registry;
  registry.register_machine(
      "slowcube", [](int nodes) {
        machine::MachineModel m = machine::make_ipsc860(nodes);
        return m;
      },
      "a re-badged cube");
  EXPECT_TRUE(registry.contains("slowcube"));
  EXPECT_EQ(registry.description("slowcube"), "a re-badged cube");
  EXPECT_EQ(registry.get("slowcube", 4).max_nodes, 4);
  // re-registering drops cached instances built from the old factory
  registry.register_machine("slowcube",
                            [](int nodes) { return machine::make_ipsc860(2 * nodes); });
  EXPECT_EQ(registry.get("slowcube", 4).max_nodes, 8);
}

TEST(MachineRegistry, FactoryMayComposeFromRegistry) {
  // a user factory may call back into the registry (the lock is recursive)
  api::MachineRegistry registry;
  registry.register_machine("composed", [&registry](int nodes) {
    machine::MachineModel m = registry.get("ipsc860", nodes);
    m.sag.replace_unit(0, machine::SAU{});
    return m;
  });
  EXPECT_EQ(registry.get("composed", 4).max_nodes, 4);
}

TEST(MachineRegistry, WhatIfKnobsScaleTheCube) {
  api::MachineRegistry registry;
  // unity knobs reproduce the calibrated cube's parameters
  const auto& stock = registry.get("ipsc860", 4);
  const auto& unity = registry.get("whatif", 4);
  EXPECT_DOUBLE_EQ(unity.node().comm.latency_short, stock.node().comm.latency_short);
  EXPECT_DOUBLE_EQ(unity.node().proc.t_fadd, stock.node().proc.t_fadd);

  machine::WhatIfParams params;
  params.latency_scale = 0.25;
  params.bandwidth_scale = 2.0;
  params.cpu_scale = 4.0;
  registry.register_whatif("dream_cube", params, "what the cube could be");
  const auto& dream = registry.get("dream_cube", 4);
  EXPECT_DOUBLE_EQ(dream.node().comm.latency_short,
                   0.25 * stock.node().comm.latency_short);
  EXPECT_DOUBLE_EQ(dream.node().comm.per_byte, stock.node().comm.per_byte / 2.0);
  EXPECT_DOUBLE_EQ(dream.node().proc.t_fadd, stock.node().proc.t_fadd / 4.0);

  machine::WhatIfParams bad;
  bad.latency_scale = 0;
  EXPECT_THROW(registry.register_whatif("bad", bad), std::invalid_argument);
}

TEST(MachineRegistry, WhatIfSweepTellsTheDesignStory) {
  // paper section 7: evaluate a design change by interpretation alone — a
  // cube with 4x the communication latency must predict slower comm-bound
  // runs, and a latency-free-ish cube faster ones.
  api::Session session;
  machine::WhatIfParams slow;
  slow.latency_scale = 4.0;
  session.machines().register_whatif("slow_net", slow);
  machine::WhatIfParams fast;
  fast.latency_scale = 0.1;
  session.machines().register_whatif("fast_net", fast);

  const auto& app = suite::app("laplace_bx");
  api::ExperimentPlan plan("what-if latency");
  plan.source(app.source)
      .machines({"fast_net", "ipsc860", "slow_net"})
      .nprocs({4})
      .add_variant(app.name, app.directive_overrides)
      .add_problem("n=64", app.bindings(64))
      .runs(0);
  const api::RunReport report = session.run(plan);
  ASSERT_EQ(report.records.size(), 3u);
  const double fast_t = report.records[0].comparison.estimated;
  const double stock_t = report.records[1].comparison.estimated;
  const double slow_t = report.records[2].comparison.estimated;
  EXPECT_LT(fast_t, stock_t);
  EXPECT_LT(stock_t, slow_t);
}

TEST(MachineRegistry, ParagonOutrunsTheCube) {
  // The Paragon XP/S builtin: same interpretation methodology, next-
  // generation SAG. Faster nodes and an order of magnitude more link
  // bandwidth must predict a faster comm-bound Laplace run than the cube.
  api::Session session;
  const auto& app = suite::app("laplace_bx");
  api::ExperimentPlan plan("generational comparison");
  plan.source(app.source)
      .machines({"ipsc860", "paragon"})
      .nprocs({4})
      .add_variant(app.name, app.directive_overrides)
      .add_problem("n=64", app.bindings(64))
      .runs(0);
  const api::RunReport report = session.run(plan);
  ASSERT_EQ(report.records.size(), 2u);
  const double cube_t = report.records[0].comparison.estimated;
  const double paragon_t = report.records[1].comparison.estimated;
  EXPECT_GT(paragon_t, 0.0);
  EXPECT_LT(paragon_t, cube_t);
}

// --- session caches -----------------------------------------------------------

TEST(Session, CompilationIsMemoized) {
  api::Session session;
  const auto& app = suite::app("pi");
  const auto a = session.compile(app.source);
  const auto b = session.compile(app.source);
  EXPECT_EQ(a.get(), b.get());  // the same shared program
  EXPECT_EQ(session.cache_stats().compile_misses, 1u);
  EXPECT_EQ(session.cache_stats().compile_hits, 1u);

  // different compiler options are a different cache entry
  compiler::CompilerOptions copts;
  copts.message_vectorization = false;
  const auto c = session.compile(app.source, copts);
  EXPECT_NE(a.get(), c.get());
  EXPECT_EQ(session.cache_stats().compile_misses, 2u);

  // so are directive overrides
  const auto& lap = suite::app("laplace_bx");
  const auto d = session.compile_with_directives(lap.source, lap.directive_overrides);
  const auto e = session.compile_with_directives(lap.source, lap.directive_overrides);
  EXPECT_EQ(d.get(), e.get());
  EXPECT_EQ(session.cached_programs(), 3u);
}

TEST(Session, LayoutsAreMemoizedPerConfiguration) {
  api::Session session;
  const auto& app = suite::app("pi");
  const auto prog = session.compile(app.source);

  api::RunConfig cfg;
  cfg.nprocs = 4;
  cfg.bindings = app.bindings(256);
  cfg.runs = 1;

  const double t1 = session.predict(prog, cfg).total;
  EXPECT_EQ(session.cache_stats().layout_misses, 1u);
  EXPECT_EQ(session.cache_stats().layout_hits, 0u);

  // same configuration again: prediction identical, layout reused
  const double t2 = session.predict(prog, cfg).total;
  EXPECT_EQ(t1, t2);
  EXPECT_EQ(session.cache_stats().layout_hits, 1u);

  // measurement of the same configuration also reuses the layout
  (void)session.measure(prog, cfg);
  EXPECT_EQ(session.cache_stats().layout_hits, 2u);
  EXPECT_EQ(session.cache_stats().layout_misses, 1u);

  // a different processor count is a different layout
  cfg.nprocs = 8;
  (void)session.predict(prog, cfg);
  EXPECT_EQ(session.cache_stats().layout_misses, 2u);

  session.clear_caches();
  EXPECT_EQ(session.cached_programs(), 0u);
  EXPECT_EQ(session.cached_layouts(), 0u);
}

TEST(Session, LayoutCacheIsContentAddressed) {
  // Two externally owned programs compiled from the same source are
  // structurally identical, so they share one content-addressed layout
  // entry — no session-owned handle involved at all.
  api::Session session;
  const auto& app = suite::app("laplace_bx");
  const compiler::CompiledProgram ext1 =
      compiler::compile_with_directives(app.source, app.directive_overrides);
  const compiler::CompiledProgram ext2 =
      compiler::compile_with_directives(app.source, app.directive_overrides);

  api::RunConfig cfg;
  cfg.nprocs = 4;
  cfg.bindings = app.bindings(64);

  const double t1 = session.predict(ext1, cfg).total;
  EXPECT_EQ(session.cache_stats().layout_misses, 1u);
  const double t2 = session.predict(ext2, cfg).total;
  EXPECT_EQ(session.cache_stats().layout_misses, 1u);
  EXPECT_EQ(session.cache_stats().layout_hits, 1u);
  EXPECT_EQ(t1, t2);

  // a session-owned handle of the same source hits the same entry
  const auto owned = session.compile_with_directives(app.source, app.directive_overrides);
  EXPECT_EQ(session.predict(owned, cfg).total, t1);
  EXPECT_EQ(session.cache_stats().layout_misses, 1u);
  EXPECT_EQ(session.cache_stats().layout_hits, 2u);

  // different bindings are a different configuration
  cfg.bindings = app.bindings(128);
  (void)session.predict(ext1, cfg);
  EXPECT_EQ(session.cache_stats().layout_misses, 2u);
}

TEST(Session, LayoutEntriesSurviveProgramEviction) {
  api::Session session;
  const auto& app = suite::app("pi");
  api::RunConfig cfg;
  cfg.nprocs = 4;
  cfg.bindings = app.bindings(256);

  {
    const auto prog = session.compile(app.source);
    (void)session.predict(prog, cfg);
  }
  EXPECT_EQ(session.cache_stats().layout_misses, 1u);

  // evict every program; layouts are self-contained and stay usable
  session.clear_program_cache();
  EXPECT_EQ(session.cached_programs(), 0u);
  EXPECT_EQ(session.cached_layouts(), 1u);

  // a freshly compiled external program still hits the surviving entry
  const compiler::CompiledProgram ext = compiler::compile(app.source);
  (void)session.predict(ext, cfg);
  EXPECT_EQ(session.cache_stats().layout_misses, 1u);
  EXPECT_GE(session.cache_stats().layout_hits, 1u);
}

TEST(Session, FrameworkSweepHitsTheLayoutCache) {
  // The driver::Framework path hands in externally owned programs; with
  // content-addressed keys a repeated sweep must be layout-cache-served.
  driver::Framework framework;
  const auto& app = suite::app("pi");
  const auto prog = framework.compile(app.source);

  driver::ExperimentConfig cfg;
  cfg.nprocs = 4;
  cfg.bindings = app.bindings(256);
  cfg.runs = 1;

  std::size_t hits_after_first = 0;
  for (int sweep = 0; sweep < 2; ++sweep) {
    for (int np : {1, 2, 4}) {
      cfg.nprocs = np;
      (void)framework.compare(prog, cfg);
    }
    if (sweep == 0) hits_after_first = framework.session().cache_stats().layout_hits;
  }
  const api::CacheStats stats = framework.session().cache_stats();
  EXPECT_EQ(stats.layout_misses, 3u);  // one per processor count
  EXPECT_GT(stats.layout_hits, hits_after_first);  // second sweep fully served
  EXPECT_GT(stats.layout_hits, 0u);
}

// --- parallel execution -------------------------------------------------------

api::ExperimentPlan determinism_plan() {
  const auto& app = suite::app("laplace_bb");
  api::ExperimentPlan plan("determinism");
  plan.source(app.source)
      .machines({"ipsc860", "cluster"})
      .nprocs({1, 2, 4})
      .add_variant("(block,block)", suite::app("laplace_bb").directive_overrides, 2)
      .add_variant("(block,*)", suite::app("laplace_bx").directive_overrides)
      .problems_from({16, 32}, app.bindings)
      .runs(2);
  return plan;
}

TEST(Session, RunReportIsIdenticalForAnyWorkerCount) {
  const api::ExperimentPlan plan = determinism_plan();

  api::Session serial_session;
  api::RunOptions serial;
  serial.workers = 1;
  const api::RunReport a = serial_session.run(plan, serial);

  api::Session parallel_session;
  api::RunOptions pool;
  pool.workers = 8;
  const api::RunReport b = parallel_session.run(plan, pool);

  // records, ordering, and every estimate/measurement agree byte-for-byte
  EXPECT_EQ(a.csv(), b.csv());
  ASSERT_EQ(a.records.size(), b.records.size());
  for (std::size_t i = 0; i < a.records.size(); ++i) {
    EXPECT_EQ(a.records[i].comparison.estimated, b.records[i].comparison.estimated);
    EXPECT_EQ(a.records[i].comparison.measured_mean,
              b.records[i].comparison.measured_mean);
    EXPECT_EQ(a.records[i].comparison.measured_stddev,
              b.records[i].comparison.measured_stddev);
  }
  // cache statistics are deterministic too: entries are built under their
  // shard lock, so every unique key misses exactly once
  EXPECT_EQ(a.cache.compile_hits, b.cache.compile_hits);
  EXPECT_EQ(a.cache.compile_misses, b.cache.compile_misses);
  EXPECT_EQ(a.cache.layout_hits, b.cache.layout_hits);
  EXPECT_EQ(a.cache.layout_misses, b.cache.layout_misses);
}

TEST(Session, ArenaAndLegacyPathsProduceIdenticalReports) {
  // RunOptions::reuse_engines toggles between the per-worker EngineArena
  // hot path and PR 2's per-point engine construction. The records must be
  // byte-identical across the four (path, workers) combinations; only the
  // cache call pattern differs (the arena path shares one layout lookup
  // between prediction and measurement).
  const api::ExperimentPlan plan = determinism_plan();

  std::vector<api::RunReport> reports;
  for (const bool arenas : {true, false}) {
    for (const int workers : {1, 4}) {
      api::Session session;
      api::RunOptions opts;
      opts.workers = workers;
      opts.reuse_engines = arenas;
      reports.push_back(session.run(plan, opts));
    }
  }
  for (std::size_t i = 1; i < reports.size(); ++i) {
    EXPECT_EQ(reports[0].csv(), reports[i].csv());
    // the per-phase decomposition is part of the determinism contract too
    ASSERT_EQ(reports[0].records.size(), reports[i].records.size());
    for (std::size_t r = 0; r < reports[0].records.size(); ++r) {
      EXPECT_EQ(reports[0].records[r].phases.comp, reports[i].records[r].phases.comp);
      EXPECT_EQ(reports[0].records[r].phases.comm, reports[i].records[r].phases.comm);
      EXPECT_EQ(reports[0].records[r].phases.wait, reports[i].records[r].phases.wait);
    }
  }
}

TEST(Session, CacheStatsAreDeterministicAcrossWorkerCountsWithArenas) {
  const api::ExperimentPlan plan = determinism_plan();
  std::optional<api::CacheStats> first;
  for (const int workers : {1, 2, 8}) {
    api::Session session;
    api::RunOptions opts;
    opts.workers = workers;
    const api::RunReport report = session.run(plan, opts);
    if (!first) {
      first = report.cache;
      // every unique key misses exactly once; the remaining lookups hit
      EXPECT_GT(first->layout_misses, 0u);
      EXPECT_EQ(first->layout_evictions, 0u);  // unbounded by default
      continue;
    }
    EXPECT_EQ(report.cache.compile_hits, first->compile_hits);
    EXPECT_EQ(report.cache.compile_misses, first->compile_misses);
    EXPECT_EQ(report.cache.layout_hits, first->layout_hits);
    EXPECT_EQ(report.cache.layout_misses, first->layout_misses);
    EXPECT_EQ(report.cache.layout_evictions, first->layout_evictions);
  }
}

TEST(Session, LayoutCacheCapacityBoundsResidencyAndCountsEvictions) {
  api::Session session;
  const auto& app = suite::app("pi");
  api::ExperimentPlan plan("bounded sweep");
  plan.source(app.source)
      .nprocs({1, 2, 4, 8})
      .problems_from({16, 64, 256}, app.bindings)
      .runs(0);
  // 12 distinct layouts through a 4-entry store: residency stays bounded
  // and the overflow surfaces as evictions in the run's cache stats.
  api::RunOptions opts;
  opts.workers = 1;
  opts.layout_cache_capacity = 4;
  const api::RunReport report = session.run(plan, opts);
  EXPECT_EQ(session.layout_cache_capacity(), 4u);
  EXPECT_EQ(report.cache.layout_misses, 12u);
  EXPECT_EQ(report.cache.layout_evictions, 8u);
  EXPECT_LE(session.cached_layouts(), 4u);
  // the run's cache stats record the *effective* capacity (satisfying the
  // RunOptions doc: applied before the sweep), and the ascii footer shows it
  EXPECT_EQ(report.cache.layout_capacity, 4u);
  EXPECT_NE(report.ascii().find("(cap 4)"), std::string::npos);

  // capacity 0 lifts the bound: a re-run re-misses the evicted entries but
  // evicts nothing, and the records are identical to the bounded run
  api::RunOptions unbounded;
  unbounded.workers = 1;
  unbounded.layout_cache_capacity = 0;
  const api::RunReport again = session.run(plan, unbounded);
  EXPECT_EQ(again.cache.layout_evictions, 0u);
  EXPECT_EQ(session.cached_layouts(), 12u);
  EXPECT_EQ(report.csv(), again.csv());
}

TEST(RunReport, DiffCoversMeasuredMeansWithSignificance) {
  api::Session session;
  const auto& app = suite::app("pi");
  api::ExperimentPlan plan("measured diff");
  plan.source(app.source).nprocs({1, 2}).problems_from({256}, app.bindings).runs(2);
  const api::RunReport before = session.run(plan);

  // identical runs: measured deltas are zero and nothing is significant
  const api::ReportDiff same = api::RunReport::diff(before, session.run(plan));
  ASSERT_EQ(same.records.size(), 2u);
  for (const auto& r : same.records) {
    EXPECT_TRUE(r.measured);
    EXPECT_EQ(r.measured_delta(), 0.0);
    EXPECT_FALSE(r.significant());
  }

  // a 3-sigma mean shift flags significance; a sub-sigma wiggle does not
  api::RunReport after = before;
  auto& shifted = after.records[0].comparison;
  shifted.measured_mean += 3.0 * (shifted.measured_stddev + 1e-6);
  auto& wiggled = after.records[1].comparison;
  wiggled.measured_mean += 0.1 * wiggled.measured_stddev;
  const api::ReportDiff diff = api::RunReport::diff(before, after);
  ASSERT_EQ(diff.records.size(), 2u);
  EXPECT_TRUE(diff.records[0].significant());
  EXPECT_GT(diff.records[0].measured_delta(), 0.0);
  EXPECT_FALSE(diff.records[1].significant());

  // renderings carry the measured column and the significance marker
  EXPECT_NE(diff.ascii().find("measured%"), std::string::npos);
  EXPECT_NE(diff.ascii().find("significant measured shift"), std::string::npos);
  EXPECT_NE(diff.csv().find("measured_delta_pct"), std::string::npos);

  // predict-only points stay out of the significance machinery
  api::ExperimentPlan predict_only("predict only");
  predict_only.source(app.source).nprocs({1, 2}).problems_from({256}, app.bindings).runs(0);
  const api::RunReport estimates = session.run(predict_only);
  const api::ReportDiff none = api::RunReport::diff(estimates, estimates);
  for (const auto& r : none.records) {
    EXPECT_FALSE(r.measured);
    EXPECT_FALSE(r.significant());
  }
}

TEST(Session, ConcurrentSessionUseIsSafe) {
  // ThreadSanitizer smoke: many threads compile the same sources and
  // predict overlapping configurations through one session.
  api::Session session;
  const auto& pi = suite::app("pi");
  const auto& lap = suite::app("laplace_bx");

  std::atomic<int> failures{0};
  const auto hammer = [&](int tid) {
    try {
      for (int round = 0; round < 3; ++round) {
        const auto prog = tid % 2 == 0
                              ? session.compile(pi.source)
                              : session.compile_with_directives(lap.source,
                                                                lap.directive_overrides);
        api::RunConfig cfg;
        cfg.nprocs = 1 << (tid % 3);
        cfg.bindings = tid % 2 == 0 ? pi.bindings(256) : lap.bindings(32);
        if (session.predict(prog, cfg).total <= 0) ++failures;
        (void)session.machine(tid % 2 == 0 ? "ipsc860" : "cluster");
      }
    } catch (...) {
      ++failures;
    }
  };
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) threads.emplace_back(hammer, t);
  for (auto& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(session.cached_programs(), 2u);
}

// --- experiment plans ---------------------------------------------------------

TEST(ExperimentPlan, DefaultsAndValidation) {
  api::ExperimentPlan plan("p");
  EXPECT_THROW(plan.validate(), std::invalid_argument);  // no source

  plan.source("program p\nend program p\n");
  EXPECT_NO_THROW(plan.validate());
  EXPECT_EQ(plan.machine_names(), (std::vector<std::string>{"ipsc860"}));
  EXPECT_EQ(plan.nprocs_list(), (std::vector<int>{1}));
  EXPECT_EQ(plan.variants().size(), 1u);
  EXPECT_EQ(plan.problems().size(), 1u);
  EXPECT_EQ(plan.point_count(), 1u);

  plan.nprocs({0});
  EXPECT_THROW(plan.validate(), std::invalid_argument);
  plan.nprocs({1, 2});

  plan.add_variant("v", {});
  plan.add_variant("v", {});
  EXPECT_THROW(plan.validate(), std::invalid_argument);  // duplicate variant
}

TEST(ExperimentPlan, SweepRunsBatchedWithCacheHits) {
  // the acceptance sweep: 2 machines x 3 nprocs x 2 directive variants
  api::Session session;
  const auto& app = suite::app("laplace_bb");

  api::ExperimentPlan plan("laplace acceptance sweep");
  plan.source(app.source)
      .machines({"ipsc860", "cluster"})
      .nprocs({1, 2, 4})
      .add_variant("(block,block)", suite::app("laplace_bb").directive_overrides, 2)
      .add_variant("(block,*)", suite::app("laplace_bx").directive_overrides)
      .add_problem("n=16", app.bindings(16))
      .runs(1);

  EXPECT_EQ(plan.point_count(), 12u);
  const api::RunReport report = session.run(plan);
  ASSERT_EQ(report.records.size(), 12u);

  for (const auto& r : report.records) {
    EXPECT_GT(r.comparison.estimated, 0.0);
    EXPECT_TRUE(r.measured);
    EXPECT_GT(r.comparison.measured_mean, 0.0);
  }
  // each variant compiles once; the second machine reuses both programs
  EXPECT_EQ(report.cache.compile_misses, 2u);
  EXPECT_GE(report.cache.compile_hits, 1u);
  // layouts are machine-independent: the cluster points reuse every layout,
  // and each point's measurement reuses its prediction's layout
  EXPECT_GE(report.cache.layout_hits, report.cache.layout_misses);
  EXPECT_GT(report.wall_seconds, 0.0);

  // the ascii rendering mentions every variant and the cache footer
  const std::string text = report.ascii();
  EXPECT_NE(text.find("(block,*)"), std::string::npos);
  EXPECT_NE(text.find("compile cache"), std::string::npos);

  // a second identical run is fully cache-served
  const api::RunReport again = session.run(plan);
  EXPECT_EQ(again.cache.compile_misses, 0u);
  EXPECT_EQ(again.cache.layout_misses, 0u);
  EXPECT_EQ(again.records.size(), 12u);
  for (std::size_t i = 0; i < again.records.size(); ++i) {
    EXPECT_EQ(again.records[i].comparison.estimated,
              report.records[i].comparison.estimated);
  }
}

TEST(ExperimentPlan, UnknownMachineFailsBeforeRunning) {
  api::Session session;
  api::ExperimentPlan plan("bad machine");
  plan.source(suite::app("pi").source).machines({"sp2"});
  EXPECT_THROW((void)session.run(plan), std::out_of_range);
}

TEST(ExperimentPlan, PredictOnlySweep) {
  api::Session session;
  api::ExperimentPlan plan("predict only");
  plan.source(suite::app("pi").source).nprocs({1, 4}).runs(0);
  const api::RunReport report = session.run(plan);
  ASSERT_EQ(report.records.size(), 2u);
  for (const auto& r : report.records) {
    EXPECT_FALSE(r.measured);
    EXPECT_GT(r.comparison.estimated, 0.0);
    EXPECT_EQ(r.comparison.measured_mean, 0.0);
    // every record carries the predicted per-phase decomposition
    EXPECT_GT(r.phases.total(), 0.0);
  }
  // on one processor the categories partition the whole predicted time
  EXPECT_NEAR(report.records[0].phases.total(), report.records[0].comparison.estimated,
              1e-12 + 1e-9 * report.records[0].comparison.estimated);
  EXPECT_EQ(report.worst_error_pct(), 0.0);
  ASSERT_NE(report.best_estimated(), nullptr);
  EXPECT_EQ(report.best_estimated()->nprocs, 4);  // pi scales on the cube
}

TEST(ExperimentPlan, ProblemsFromGeneratesLabelledCases) {
  const auto& app = suite::app("pi");
  api::ExperimentPlan plan("generated problems");
  plan.source(app.source).problems_from({16, 256}, app.bindings);
  ASSERT_EQ(plan.problems().size(), 2u);
  EXPECT_EQ(plan.problems()[0].name, "n=16");
  EXPECT_EQ(plan.problems()[1].name, "n=256");
  EXPECT_EQ(plan.problems()[0].bindings.get("n"), app.bindings(16).get("n"));

  api::ExperimentPlan custom("custom prefix");
  custom.source(app.source).problems_from({8}, app.bindings, "particles=");
  EXPECT_EQ(custom.problems()[0].name, "particles=8");

  EXPECT_THROW(plan.problems_from({1}, nullptr), std::invalid_argument);
}

// --- run report export --------------------------------------------------------

TEST(RunReport, CsvRoundTrip) {
  api::Session session;
  const auto& app = suite::app("pi");
  api::ExperimentPlan plan("csv round trip");
  plan.source(app.source)
      .machines({"ipsc860", "cluster"})
      .nprocs({1, 2})
      .add_problem("n=256", app.bindings(256))
      .runs(1);
  const api::RunReport report = session.run(plan);

  const std::string csv = report.csv();
  const api::RunReport parsed = api::RunReport::from_csv(csv);
  ASSERT_EQ(parsed.records.size(), report.records.size());
  for (std::size_t i = 0; i < report.records.size(); ++i) {
    const auto& a = report.records[i];
    const auto& b = parsed.records[i];
    EXPECT_EQ(a.machine, b.machine);
    EXPECT_EQ(a.variant, b.variant);
    EXPECT_EQ(a.problem, b.problem);
    EXPECT_EQ(a.nprocs, b.nprocs);
    EXPECT_EQ(a.measured, b.measured);
    // %.17g round-trips doubles exactly
    EXPECT_EQ(a.comparison.estimated, b.comparison.estimated);
    EXPECT_EQ(a.comparison.measured_mean, b.comparison.measured_mean);
    EXPECT_EQ(a.comparison.measured_min, b.comparison.measured_min);
    EXPECT_EQ(a.comparison.measured_max, b.comparison.measured_max);
    EXPECT_EQ(a.comparison.measured_stddev, b.comparison.measured_stddev);
  }
  // and the re-exported CSV is byte-identical
  EXPECT_EQ(parsed.csv(), csv);
}

TEST(RunReport, CsvRejectsMalformedInput) {
  EXPECT_THROW((void)api::RunReport::from_csv(""), std::invalid_argument);
  EXPECT_THROW((void)api::RunReport::from_csv("bogus,header\n"), std::invalid_argument);
  const std::string good = api::RunReport{}.csv();
  EXPECT_THROW((void)api::RunReport::from_csv(good + "short,row\n"),
               std::invalid_argument);
  EXPECT_NO_THROW((void)api::RunReport::from_csv(good));
}

TEST(RunReport, DiffTracksPerPointEstimatedDeltas) {
  api::Session session;
  const auto& app = suite::app("pi");
  api::ExperimentPlan plan("diff base");
  plan.source(app.source).nprocs({1, 4}).problems_from({256}, app.bindings).runs(0);
  const api::RunReport before = session.run(plan);

  // identical runs diff to zero everywhere
  const api::ReportDiff same = api::RunReport::diff(before, session.run(plan));
  ASSERT_EQ(same.records.size(), 2u);
  EXPECT_EQ(same.worst_delta_pct(), 0.0);
  EXPECT_EQ(same.only_before, 0u);
  EXPECT_EQ(same.only_after, 0u);

  // a perturbed copy shows signed per-point deltas
  api::RunReport after = before;
  after.records[0].comparison.estimated *= 1.10;  // 10% regression
  after.records[1].comparison.estimated *= 0.50;  // 2x improvement
  const api::ReportDiff diff = api::RunReport::diff(before, after);
  ASSERT_EQ(diff.records.size(), 2u);
  EXPECT_NEAR(diff.records[0].delta_pct(), 10.0, 1e-9);
  EXPECT_NEAR(diff.records[1].delta_pct(), -50.0, 1e-9);
  EXPECT_GT(diff.records[0].delta(), 0.0);
  EXPECT_LT(diff.records[1].delta(), 0.0);
  EXPECT_NEAR(diff.worst_delta_pct(), 50.0, 1e-9);

  // csv export carries the header and one row per matched point
  const std::string csv = diff.csv();
  EXPECT_NE(csv.find("estimated_before"), std::string::npos);
  EXPECT_EQ(std::count(csv.begin(), csv.end(), '\n'), 3);
  EXPECT_NE(diff.ascii().find("worst delta"), std::string::npos);

  // unmatched points are counted, not diffed
  after.records.pop_back();
  api::RunRecord extra;
  extra.machine = "cluster";
  extra.variant = "v";
  extra.problem = "n=1";
  extra.nprocs = 2;
  after.records.push_back(extra);
  const api::ReportDiff partial = api::RunReport::diff(before, after);
  EXPECT_EQ(partial.records.size(), 1u);
  EXPECT_EQ(partial.only_before, 1u);
  EXPECT_EQ(partial.only_after, 1u);

  // duplicate keys (possible in hand-edited CSVs) are consumed pairwise;
  // the surplus is counted, never silently dropped
  api::RunReport dup = before;
  dup.records.push_back(before.records[0]);
  const api::ReportDiff surplus = api::RunReport::diff(before, dup);
  EXPECT_EQ(surplus.records.size(), 2u);
  EXPECT_EQ(surplus.only_after, 1u);
  const api::ReportDiff deficit = api::RunReport::diff(dup, before);
  EXPECT_EQ(deficit.records.size(), 2u);
  EXPECT_EQ(deficit.only_before, 1u);
}

// --- driver::Framework compatibility shim -------------------------------------

TEST(FrameworkShim, MatchesSessionResults) {
  driver::Framework framework;
  api::Session session;
  const auto& app = suite::app("pi");

  auto legacy_prog = framework.compile(app.source);
  const auto prog = session.compile(app.source);

  driver::ExperimentConfig cfg;  // = api::RunConfig
  cfg.nprocs = 4;
  cfg.bindings = app.bindings(256);
  cfg.runs = 2;

  const driver::Comparison a = framework.compare(legacy_prog, cfg);
  const api::Comparison b = session.compare(prog, cfg);
  EXPECT_EQ(a.estimated, b.estimated);
  EXPECT_EQ(a.measured_mean, b.measured_mean);
  EXPECT_EQ(a.measured_stddev, b.measured_stddev);

  // the machine field is pinned to the cube by the shim
  EXPECT_EQ(framework.machine().max_nodes, 8);
}

}  // namespace
}  // namespace hpf90d
