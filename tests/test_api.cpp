// Experiment-session API tests: machine registry lookup (including the
// unknown-name error path), compilation/layout cache behaviour across an
// ExperimentPlan sweep, RunReport CSV export round-trip, and the
// driver::Framework compatibility shim.
#include <gtest/gtest.h>

#include <stdexcept>

#include "api/api.hpp"
#include "driver/framework.hpp"
#include "machine/ipsc860.hpp"
#include "suite/suite.hpp"

namespace hpf90d {
namespace {

// --- machine registry ---------------------------------------------------------

TEST(MachineRegistry, BuiltinsRegistered) {
  api::MachineRegistry registry;
  EXPECT_TRUE(registry.contains("ipsc860"));
  EXPECT_TRUE(registry.contains("cluster"));
  EXPECT_EQ(registry.names(), (std::vector<std::string>{"cluster", "ipsc860"}));
  EXPECT_FALSE(registry.description("ipsc860").empty());

  const machine::MachineModel& cube = registry.get("ipsc860", 8);
  EXPECT_EQ(cube.max_nodes, 8);
  // models are cached per (name, nodes): same reference back
  EXPECT_EQ(&cube, &registry.get("ipsc860", 8));
  EXPECT_NE(&cube, &registry.get("ipsc860", 4));
}

TEST(MachineRegistry, UnknownNameListsRegistered) {
  api::MachineRegistry registry;
  EXPECT_FALSE(registry.contains("paragon"));
  try {
    (void)registry.get("paragon");
    FAIL() << "expected std::out_of_range";
  } catch (const std::out_of_range& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("paragon"), std::string::npos);
    EXPECT_NE(msg.find("ipsc860"), std::string::npos);
    EXPECT_NE(msg.find("cluster"), std::string::npos);
  }
  EXPECT_THROW((void)registry.get("ipsc860", 0), std::invalid_argument);
}

TEST(MachineRegistry, CustomMachineRegistersAndReplaces) {
  api::MachineRegistry registry;
  registry.register_machine(
      "slowcube", [](int nodes) {
        machine::MachineModel m = machine::make_ipsc860(nodes);
        return m;
      },
      "a re-badged cube");
  EXPECT_TRUE(registry.contains("slowcube"));
  EXPECT_EQ(registry.description("slowcube"), "a re-badged cube");
  EXPECT_EQ(registry.get("slowcube", 4).max_nodes, 4);
  // re-registering drops cached instances built from the old factory
  registry.register_machine("slowcube",
                            [](int nodes) { return machine::make_ipsc860(2 * nodes); });
  EXPECT_EQ(registry.get("slowcube", 4).max_nodes, 8);
}

// --- session caches -----------------------------------------------------------

TEST(Session, CompilationIsMemoized) {
  api::Session session;
  const auto& app = suite::app("pi");
  const auto a = session.compile(app.source);
  const auto b = session.compile(app.source);
  EXPECT_EQ(a.get(), b.get());  // the same shared program
  EXPECT_EQ(session.cache_stats().compile_misses, 1u);
  EXPECT_EQ(session.cache_stats().compile_hits, 1u);

  // different compiler options are a different cache entry
  compiler::CompilerOptions copts;
  copts.message_vectorization = false;
  const auto c = session.compile(app.source, copts);
  EXPECT_NE(a.get(), c.get());
  EXPECT_EQ(session.cache_stats().compile_misses, 2u);

  // so are directive overrides
  const auto& lap = suite::app("laplace_bx");
  const auto d = session.compile_with_directives(lap.source, lap.directive_overrides);
  const auto e = session.compile_with_directives(lap.source, lap.directive_overrides);
  EXPECT_EQ(d.get(), e.get());
  EXPECT_EQ(session.cached_programs(), 3u);
}

TEST(Session, LayoutsAreMemoizedPerConfiguration) {
  api::Session session;
  const auto& app = suite::app("pi");
  const auto prog = session.compile(app.source);

  api::RunConfig cfg;
  cfg.nprocs = 4;
  cfg.bindings = app.bindings(256);
  cfg.runs = 1;

  const double t1 = session.predict(prog, cfg).total;
  EXPECT_EQ(session.cache_stats().layout_misses, 1u);
  EXPECT_EQ(session.cache_stats().layout_hits, 0u);

  // same configuration again: prediction identical, layout reused
  const double t2 = session.predict(prog, cfg).total;
  EXPECT_EQ(t1, t2);
  EXPECT_EQ(session.cache_stats().layout_hits, 1u);

  // measurement of the same configuration also reuses the layout
  (void)session.measure(prog, cfg);
  EXPECT_EQ(session.cache_stats().layout_hits, 2u);
  EXPECT_EQ(session.cache_stats().layout_misses, 1u);

  // a different processor count is a different layout
  cfg.nprocs = 8;
  (void)session.predict(prog, cfg);
  EXPECT_EQ(session.cache_stats().layout_misses, 2u);

  session.clear_caches();
  EXPECT_EQ(session.cached_programs(), 0u);
  EXPECT_EQ(session.cached_layouts(), 0u);
}

// --- experiment plans ---------------------------------------------------------

TEST(ExperimentPlan, DefaultsAndValidation) {
  api::ExperimentPlan plan("p");
  EXPECT_THROW(plan.validate(), std::invalid_argument);  // no source

  plan.source("program p\nend program p\n");
  EXPECT_NO_THROW(plan.validate());
  EXPECT_EQ(plan.machine_names(), (std::vector<std::string>{"ipsc860"}));
  EXPECT_EQ(plan.nprocs_list(), (std::vector<int>{1}));
  EXPECT_EQ(plan.variants().size(), 1u);
  EXPECT_EQ(plan.problems().size(), 1u);
  EXPECT_EQ(plan.point_count(), 1u);

  plan.nprocs({0});
  EXPECT_THROW(plan.validate(), std::invalid_argument);
  plan.nprocs({1, 2});

  plan.add_variant("v", {});
  plan.add_variant("v", {});
  EXPECT_THROW(plan.validate(), std::invalid_argument);  // duplicate variant
}

TEST(ExperimentPlan, SweepRunsBatchedWithCacheHits) {
  // the acceptance sweep: 2 machines x 3 nprocs x 2 directive variants
  api::Session session;
  const auto& app = suite::app("laplace_bb");

  api::ExperimentPlan plan("laplace acceptance sweep");
  plan.source(app.source)
      .machines({"ipsc860", "cluster"})
      .nprocs({1, 2, 4})
      .add_variant("(block,block)", suite::app("laplace_bb").directive_overrides, 2)
      .add_variant("(block,*)", suite::app("laplace_bx").directive_overrides)
      .add_problem("n=16", app.bindings(16))
      .runs(1);

  EXPECT_EQ(plan.point_count(), 12u);
  const api::RunReport report = session.run(plan);
  ASSERT_EQ(report.records.size(), 12u);

  for (const auto& r : report.records) {
    EXPECT_GT(r.comparison.estimated, 0.0);
    EXPECT_TRUE(r.measured);
    EXPECT_GT(r.comparison.measured_mean, 0.0);
  }
  // each variant compiles once; the second machine reuses both programs
  EXPECT_EQ(report.cache.compile_misses, 2u);
  EXPECT_GE(report.cache.compile_hits, 1u);
  // layouts are machine-independent: the cluster points reuse every layout,
  // and each point's measurement reuses its prediction's layout
  EXPECT_GE(report.cache.layout_hits, report.cache.layout_misses);
  EXPECT_GT(report.wall_seconds, 0.0);

  // the ascii rendering mentions every variant and the cache footer
  const std::string text = report.ascii();
  EXPECT_NE(text.find("(block,*)"), std::string::npos);
  EXPECT_NE(text.find("compile cache"), std::string::npos);

  // a second identical run is fully cache-served
  const api::RunReport again = session.run(plan);
  EXPECT_EQ(again.cache.compile_misses, 0u);
  EXPECT_EQ(again.cache.layout_misses, 0u);
  EXPECT_EQ(again.records.size(), 12u);
  for (std::size_t i = 0; i < again.records.size(); ++i) {
    EXPECT_EQ(again.records[i].comparison.estimated,
              report.records[i].comparison.estimated);
  }
}

TEST(ExperimentPlan, UnknownMachineFailsBeforeRunning) {
  api::Session session;
  api::ExperimentPlan plan("bad machine");
  plan.source(suite::app("pi").source).machines({"paragon"});
  EXPECT_THROW((void)session.run(plan), std::out_of_range);
}

TEST(ExperimentPlan, PredictOnlySweep) {
  api::Session session;
  api::ExperimentPlan plan("predict only");
  plan.source(suite::app("pi").source).nprocs({1, 4}).runs(0);
  const api::RunReport report = session.run(plan);
  ASSERT_EQ(report.records.size(), 2u);
  for (const auto& r : report.records) {
    EXPECT_FALSE(r.measured);
    EXPECT_GT(r.comparison.estimated, 0.0);
    EXPECT_EQ(r.comparison.measured_mean, 0.0);
  }
  EXPECT_EQ(report.worst_error_pct(), 0.0);
  ASSERT_NE(report.best_estimated(), nullptr);
  EXPECT_EQ(report.best_estimated()->nprocs, 4);  // pi scales on the cube
}

// --- run report export --------------------------------------------------------

TEST(RunReport, CsvRoundTrip) {
  api::Session session;
  const auto& app = suite::app("pi");
  api::ExperimentPlan plan("csv round trip");
  plan.source(app.source)
      .machines({"ipsc860", "cluster"})
      .nprocs({1, 2})
      .add_problem("n=256", app.bindings(256))
      .runs(1);
  const api::RunReport report = session.run(plan);

  const std::string csv = report.csv();
  const api::RunReport parsed = api::RunReport::from_csv(csv);
  ASSERT_EQ(parsed.records.size(), report.records.size());
  for (std::size_t i = 0; i < report.records.size(); ++i) {
    const auto& a = report.records[i];
    const auto& b = parsed.records[i];
    EXPECT_EQ(a.machine, b.machine);
    EXPECT_EQ(a.variant, b.variant);
    EXPECT_EQ(a.problem, b.problem);
    EXPECT_EQ(a.nprocs, b.nprocs);
    EXPECT_EQ(a.measured, b.measured);
    // %.17g round-trips doubles exactly
    EXPECT_EQ(a.comparison.estimated, b.comparison.estimated);
    EXPECT_EQ(a.comparison.measured_mean, b.comparison.measured_mean);
    EXPECT_EQ(a.comparison.measured_min, b.comparison.measured_min);
    EXPECT_EQ(a.comparison.measured_max, b.comparison.measured_max);
    EXPECT_EQ(a.comparison.measured_stddev, b.comparison.measured_stddev);
  }
  // and the re-exported CSV is byte-identical
  EXPECT_EQ(parsed.csv(), csv);
}

TEST(RunReport, CsvRejectsMalformedInput) {
  EXPECT_THROW((void)api::RunReport::from_csv(""), std::invalid_argument);
  EXPECT_THROW((void)api::RunReport::from_csv("bogus,header\n"), std::invalid_argument);
  const std::string good = api::RunReport{}.csv();
  EXPECT_THROW((void)api::RunReport::from_csv(good + "short,row\n"),
               std::invalid_argument);
  EXPECT_NO_THROW((void)api::RunReport::from_csv(good));
}

// --- driver::Framework compatibility shim -------------------------------------

TEST(FrameworkShim, MatchesSessionResults) {
  driver::Framework framework;
  api::Session session;
  const auto& app = suite::app("pi");

  auto legacy_prog = framework.compile(app.source);
  const auto prog = session.compile(app.source);

  driver::ExperimentConfig cfg;  // = api::RunConfig
  cfg.nprocs = 4;
  cfg.bindings = app.bindings(256);
  cfg.runs = 2;

  const driver::Comparison a = framework.compare(legacy_prog, cfg);
  const api::Comparison b = session.compare(prog, cfg);
  EXPECT_EQ(a.estimated, b.estimated);
  EXPECT_EQ(a.measured_mean, b.measured_mean);
  EXPECT_EQ(a.measured_stddev, b.measured_stddev);

  // the machine field is pinned to the cube by the shim
  EXPECT_EQ(framework.machine().max_nodes, 8);
}

}  // namespace
}  // namespace hpf90d
