// Compiler middle-end tests: normalization, communication detection,
// lowering structure for the suite programs, op counting, F77 codegen.
#include <gtest/gtest.h>

#include "compiler/codegen_f77.hpp"
#include "compiler/opcount.hpp"
#include "compiler/pipeline.hpp"
#include "hpf/parser.hpp"
#include "suite/suite.hpp"
#include "support/diagnostics.hpp"

namespace hpf90d {
namespace {

using compiler::CompiledProgram;
using compiler::SpmdKind;
using compiler::SpmdNode;

CompiledProgram comp(std::string_view src) { return compiler::compile(src); }

int count_kind(const SpmdNode& n, SpmdKind k) {
  int c = n.kind == k ? 1 : 0;
  for (const auto& ch : n.children) c += count_kind(*ch, k);
  for (const auto& ch : n.else_children) c += count_kind(*ch, k);
  return c;
}

const SpmdNode* find_kind(const SpmdNode& n, SpmdKind k) {
  if (n.kind == k) return &n;
  for (const auto& ch : n.children) {
    if (const SpmdNode* f = find_kind(*ch, k)) return f;
  }
  for (const auto& ch : n.else_children) {
    if (const SpmdNode* f = find_kind(*ch, k)) return f;
  }
  return nullptr;
}

constexpr const char* kHeader = R"f90(
program t
  parameter (n = 64)
  real a(n), b(n), c(n)
!hpf$ template d(n)
!hpf$ align a(i) with d(i)
!hpf$ align b(i) with d(i)
!hpf$ align c(i) with d(i)
!hpf$ distribute d(block)
)f90";

CompiledProgram comp_body(std::string_view body) {
  return comp(std::string(kHeader) + std::string(body) + "\nend program t\n");
}

TEST(Pipeline, NodeOpCountsAreHoistedIntoTheCompiledProgram) {
  const auto p = comp_body("a = b*c + 1.0");
  // the pipeline prices every node once at compile time
  ASSERT_EQ(p.node_ops.size(), static_cast<std::size_t>(p.node_count));
  const SpmdNode* loop = find_kind(*p.root, SpmdKind::LocalLoop);
  ASSERT_NE(loop, nullptr);
  const compiler::NodeOpCounts& ops = p.node_ops[static_cast<std::size_t>(loop->id)];
  // the hoisted body counts match an on-demand recount of the assignment
  const compiler::OpCounts fresh = compiler::count_assignment(*loop->lhs, *loop->rhs);
  EXPECT_EQ(ops.body.fadd, fresh.fadd);
  EXPECT_EQ(ops.body.fmul, fresh.fmul);
  EXPECT_EQ(ops.body.loads, fresh.loads);
  EXPECT_EQ(ops.body.stores, fresh.stores);
  EXPECT_GT(ops.body.fmul, 0);
  // no mask: the condition counts are zero
  EXPECT_EQ(ops.cond.total_flops(), 0);
  // collect_node_ops reproduces the table (the hand-built-program fallback)
  const auto again = compiler::collect_node_ops(p);
  ASSERT_EQ(again.size(), p.node_ops.size());
  for (std::size_t i = 0; i < again.size(); ++i) {
    EXPECT_EQ(again[i].body.total_flops(), p.node_ops[i].body.total_flops());
    EXPECT_EQ(again[i].body.loads, p.node_ops[i].body.loads);
  }
}

TEST(Pipeline, MaskedLoopCondCountsAreHoisted) {
  const auto p = comp_body("where (b .gt. 0.0) a = 1.0/b");
  const SpmdNode* loop = find_kind(*p.root, SpmdKind::LocalLoop);
  ASSERT_NE(loop, nullptr);
  ASSERT_NE(loop->mask, nullptr);
  const compiler::NodeOpCounts& ops = p.node_ops[static_cast<std::size_t>(loop->id)];
  const compiler::OpCounts fresh = compiler::count_expr(*loop->mask);
  EXPECT_EQ(ops.cond.fadd, fresh.fadd);
  EXPECT_EQ(ops.cond.loads, fresh.loads);
  EXPECT_GT(ops.cond.loads, 0);
}

TEST(Normalize, ArrayAssignmentBecomesForallLoop) {
  auto p = comp_body("a = b");
  EXPECT_EQ(count_kind(*p.root, SpmdKind::LocalLoop), 1);
  EXPECT_EQ(count_kind(*p.root, SpmdKind::OverlapComm), 0);
}

TEST(Normalize, SectionAssignmentRespectsBounds) {
  auto p = comp_body("a(2:n-1) = b(1:n-2)");
  const SpmdNode* loop = find_kind(*p.root, SpmdKind::LocalLoop);
  ASSERT_NE(loop, nullptr);
  EXPECT_EQ(loop->space[0].lo->str(), "2");
  // reading b at i-1 relative to the loop index => one overlap exchange
  EXPECT_EQ(count_kind(*p.root, SpmdKind::OverlapComm), 1);
}

TEST(Normalize, WhereBecomesMaskedLoop) {
  auto p = comp_body("where (b .gt. 0.0) a = 1.0/b");
  const SpmdNode* loop = find_kind(*p.root, SpmdKind::LocalLoop);
  ASSERT_NE(loop, nullptr);
  ASSERT_NE(loop->mask, nullptr);
}

TEST(Normalize, WhereElsewhereProducesTwoLoops) {
  auto p = comp_body("where (b .gt. 0.0)\n  a = 1.0\nelsewhere\n  a = 0.0\nend where");
  EXPECT_EQ(count_kind(*p.root, SpmdKind::LocalLoop), 2);
}

TEST(CommDetect, AlignedReadNeedsNoComm) {
  auto p = comp_body("forall (i = 1:n) a(i) = b(i) + c(i)");
  EXPECT_EQ(count_kind(*p.root, SpmdKind::OverlapComm), 0);
  EXPECT_EQ(count_kind(*p.root, SpmdKind::GatherComm), 0);
}

TEST(CommDetect, ShiftedReadIsOverlap) {
  auto p = comp_body("forall (i = 2:n-1) a(i) = b(i-1) + b(i+1)");
  EXPECT_EQ(count_kind(*p.root, SpmdKind::OverlapComm), 2);  // both directions
}

TEST(CommDetect, SameDirectionOffsetsMerge) {
  auto p = comp_body("forall (i = 1:n-11) a(i) = b(i+10) + b(i+11)");
  EXPECT_EQ(count_kind(*p.root, SpmdKind::OverlapComm), 1);
  const SpmdNode* comm = find_kind(*p.root, SpmdKind::OverlapComm);
  EXPECT_EQ(comm->comm_offset, 11);  // widest wins (message vectorization)
}

TEST(CommDetect, NonUnitStrideIsRemapGather) {
  auto p = comp_body("forall (i = 1:n/2) a(i) = b(2*i)");
  const SpmdNode* g = find_kind(*p.root, SpmdKind::GatherComm);
  ASSERT_NE(g, nullptr);
  EXPECT_EQ(g->gather_pattern, compiler::GatherPattern::Remap);
}

TEST(CommDetect, VectorSubscriptIsIrregularGather) {
  auto p = comp(std::string(kHeader) +
                "  integer ix(n)\n"
                "!hpf$ align ix(i) with d(i)\n"
                "  forall (i = 1:n) a(i) = b(ix(i))\nend program t\n");
  const SpmdNode* g = find_kind(*p.root, SpmdKind::GatherComm);
  ASSERT_NE(g, nullptr);
  EXPECT_EQ(g->gather_pattern, compiler::GatherPattern::Irregular);
}

TEST(CommDetect, VectorSubscriptedStoreScatters) {
  auto p = comp(std::string(kHeader) +
                "  integer ix(n)\n"
                "!hpf$ align ix(i) with d(i)\n"
                "  forall (i = 1:n) a(ix(i)) = b(i)\nend program t\n");
  EXPECT_EQ(count_kind(*p.root, SpmdKind::ScatterComm), 1);
}

TEST(CommDetect, ReplicatedArrayReadIsLocal) {
  auto p = comp(std::string(kHeader) + "  real r(n)\n"
                "  forall (i = 1:n) a(i) = r(i)\nend program t\n");
  EXPECT_EQ(count_kind(*p.root, SpmdKind::GatherComm), 0);
  EXPECT_EQ(count_kind(*p.root, SpmdKind::OverlapComm), 0);
}

TEST(Lower, FullReductionBecomesReduceNode) {
  auto p = comp_body("x = sum(a*b)");
  EXPECT_EQ(count_kind(*p.root, SpmdKind::Reduce), 1);
  const SpmdNode* r = find_kind(*p.root, SpmdKind::Reduce);
  EXPECT_EQ(r->reduce_op, "sum");
  EXPECT_GE(r->home_symbol, 0);
}

TEST(Lower, NestedReductionsBothExtracted) {
  auto p = comp_body("x = sum(a) + product(b)");
  EXPECT_EQ(count_kind(*p.root, SpmdKind::Reduce), 2);
}

TEST(Lower, CshiftMakesTempAndComm) {
  auto p = comp_body("a = cshift(b, 1)");
  EXPECT_EQ(count_kind(*p.root, SpmdKind::CShiftComm), 1);
  const SpmdNode* s = find_kind(*p.root, SpmdKind::CShiftComm);
  EXPECT_GE(s->comm_temp, 0);
  ASSERT_EQ(p.temp_aliases.size(), 1u);
  EXPECT_EQ(p.temp_aliases[0].first, s->comm_temp);
}

TEST(Lower, DimReductionBecomesInnerLoop) {
  auto p = comp(R"f90(
program t
  parameter (n = 32, m = 8)
  real a(n,m), q(n)
!hpf$ template d(n)
!hpf$ align a(i,j) with d(i)
!hpf$ align q(i) with d(i)
!hpf$ distribute d(block)
  q = product(a, 2)
end program t
)f90");
  const SpmdNode* loop = find_kind(*p.root, SpmdKind::LocalLoop);
  ASSERT_NE(loop, nullptr);
  ASSERT_TRUE(loop->inner.has_value());
  EXPECT_EQ(loop->inner->op, "product");
}

TEST(Lower, LaplaceHasFourOverlapsPerSweep) {
  const auto& app = suite::app("laplace_bb");
  auto p = compiler::compile_with_directives(app.source, app.directive_overrides);
  EXPECT_EQ(count_kind(*p.root, SpmdKind::OverlapComm), 4);
  EXPECT_EQ(count_kind(*p.root, SpmdKind::DoLoop), 1);
}

TEST(Lower, Lfk2HasRemapAndScatter) {
  auto p = comp(suite::app("lfk2").source);
  EXPECT_GE(count_kind(*p.root, SpmdKind::GatherComm), 2);
  EXPECT_EQ(count_kind(*p.root, SpmdKind::ScatterComm), 1);
}

TEST(Lower, InvariantCommFlaggedInsideLoop) {
  // z is read (shifted) but never written inside the do loop
  auto p = comp_body("do it = 1, 4\n  forall (i = 1:n-1) a(i) = b(i+1)\nend do");
  const SpmdNode* comm = find_kind(*p.root, SpmdKind::OverlapComm);
  ASSERT_NE(comm, nullptr);
  EXPECT_TRUE(comm->comm_src_invariant);
}

TEST(Lower, DependentCommNotFlagged) {
  auto p = comp_body("do it = 1, 4\n  forall (i = 1:n-1) a(i) = a(i+1)\nend do");
  const SpmdNode* comm = find_kind(*p.root, SpmdKind::OverlapComm);
  ASSERT_NE(comm, nullptr);
  EXPECT_FALSE(comm->comm_src_invariant);
}

TEST(Lower, EverySuiteProgramCompiles) {
  for (const auto& app : suite::validation_suite()) {
    EXPECT_NO_THROW({
      auto p = app.directive_overrides.empty()
                   ? compiler::compile(app.source)
                   : compiler::compile_with_directives(app.source,
                                                       app.directive_overrides);
      EXPECT_GT(p.node_count, 1) << app.id;
    }) << app.id;
  }
}

TEST(Lower, NodeIdsAreDenseAndUnique) {
  auto p = comp(suite::app("finance").source);
  std::vector<int> seen(static_cast<std::size_t>(p.node_count), 0);
  std::function<void(const SpmdNode&)> visit = [&](const SpmdNode& n) {
    ASSERT_GE(n.id, 0);
    ASSERT_LT(n.id, p.node_count);
    seen[static_cast<std::size_t>(n.id)]++;
    for (const auto& c : n.children) visit(*c);
    for (const auto& c : n.else_children) visit(*c);
  };
  visit(*p.root);
  for (int s : seen) EXPECT_EQ(s, 1);
}

TEST(DirectiveOverride, ReplacesDistributeAndProcessors) {
  const auto& app = suite::app("laplace_bx");
  auto p = compiler::compile_with_directives(app.source, app.directive_overrides);
  ASSERT_EQ(p.directives.distributes.size(), 1u);
  EXPECT_EQ(p.directives.distributes[0].pattern[1], front::DistKind::Collapsed);
  ASSERT_EQ(p.directives.processors.size(), 1u);
  EXPECT_EQ(p.directives.processors[0].extents.size(), 1u);
}

TEST(OpCount, CountsMatchExpressionStructure) {
  auto prog = front::parse_program(
      "program t\nreal v(8)\nx = v(1)*v(2) + exp(v(3))/2.0\nend program t\n");
  (void)front::analyze(prog);
  const compiler::OpCounts ops = compiler::count_expr(*prog.stmts[0]->rhs);
  EXPECT_EQ(ops.fmul, 1);
  EXPECT_EQ(ops.fadd, 1);
  EXPECT_EQ(ops.fdiv, 1);
  EXPECT_EQ(ops.loads, 3);
  EXPECT_EQ(ops.intrinsics.at("exp"), 1);
  EXPECT_GT(ops.depth, 2);
}

TEST(OpCount, AssignmentAddsStore) {
  auto prog = front::parse_program(
      "program t\nreal v(8)\nv(2) = 1.0\nend program t\n");
  (void)front::analyze(prog);
  const compiler::OpCounts ops =
      compiler::count_assignment(*prog.stmts[0]->lhs, *prog.stmts[0]->rhs);
  EXPECT_EQ(ops.stores, 1);
  EXPECT_EQ(ops.loads, 0);
}

TEST(CodegenF77, EmitsCommCallsAndLoops) {
  const auto& app = suite::app("laplace_bb");
  auto p = compiler::compile_with_directives(app.source, app.directive_overrides);
  const std::string f77 = compiler::codegen_f77(p);
  EXPECT_NE(f77.find("call exchange_overlap"), std::string::npos);
  EXPECT_NE(f77.find("do "), std::string::npos);
  EXPECT_NE(f77.find("program laplace_node"), std::string::npos);
}

TEST(CodegenF77, EmitsCollectiveCalls) {
  auto p = comp(suite::app("pi").source);
  const std::string f77 = compiler::codegen_f77(p);
  EXPECT_NE(f77.find("call gsum"), std::string::npos);
  EXPECT_NE(f77.find("mynode()"), std::string::npos);
}

TEST(MessageVectorizationOption, RecordedOnCommNodes) {
  compiler::CompilerOptions opts;
  opts.message_vectorization = false;
  auto p = compiler::compile(std::string(kHeader) +
                                 "  forall (i = 2:n) a(i) = b(i-1)\nend program t\n",
                             opts);
  const SpmdNode* comm = find_kind(*p.root, SpmdKind::OverlapComm);
  ASSERT_NE(comm, nullptr);
  EXPECT_TRUE(comm->per_element);
}

}  // namespace
}  // namespace hpf90d
