// HPF directive parsing and two-level data-mapping resolution tests,
// including parameterized ownership sweeps over BLOCK and CYCLIC.
#include <gtest/gtest.h>

#include "compiler/mapping.hpp"
#include "hpf/directives.hpp"
#include "hpf/parser.hpp"
#include "hpf/sema.hpp"
#include "support/diagnostics.hpp"

namespace hpf90d {
namespace {

front::DirectiveSet parse_dirs(std::initializer_list<const char*> lines) {
  std::vector<front::RawDirective> raw;
  std::uint32_t ln = 1;
  for (const char* l : lines) raw.push_back({{ln++, 1}, l});
  return front::parse_directives(raw);
}

TEST(Directives, Processors) {
  auto d = parse_dirs({" processors p(2, 4)"});
  ASSERT_EQ(d.processors.size(), 1u);
  EXPECT_EQ(d.processors[0].name, "p");
  EXPECT_EQ(d.processors[0].extents.size(), 2u);
}

TEST(Directives, TemplateWithExpressionExtent) {
  auto d = parse_dirs({" template t(n+11, 2*m)"});
  ASSERT_EQ(d.templates.size(), 1u);
  EXPECT_EQ(d.templates[0].extents[0]->str(), "(n + 11)");
  EXPECT_EQ(d.templates[0].extents[1]->str(), "(2 * m)");
}

TEST(Directives, AlignWithOffsetsAndPermutation) {
  auto d = parse_dirs({" align a(i, j) with t(j+1, i-2)"});
  ASSERT_EQ(d.aligns.size(), 1u);
  const auto& al = d.aligns[0];
  EXPECT_EQ(al.target_subs[0].dummy, 1);
  EXPECT_EQ(al.target_subs[0].offset, 1);
  EXPECT_EQ(al.target_subs[1].dummy, 0);
  EXPECT_EQ(al.target_subs[1].offset, -2);
}

TEST(Directives, AlignStarReplicates) {
  auto d = parse_dirs({" align v(i) with t(i, *)"});
  EXPECT_TRUE(d.aligns[0].target_subs[1].star);
}

TEST(Directives, DistributePatterns) {
  auto d = parse_dirs({" distribute t(block, *) onto p", " distribute s(cyclic)"});
  ASSERT_EQ(d.distributes.size(), 2u);
  EXPECT_EQ(d.distributes[0].pattern[0], front::DistKind::Block);
  EXPECT_EQ(d.distributes[0].pattern[1], front::DistKind::Collapsed);
  EXPECT_EQ(d.distributes[0].onto, "p");
  EXPECT_EQ(d.distributes[1].pattern[0], front::DistKind::Cyclic);
}

TEST(Directives, UnknownDirectiveThrows) {
  EXPECT_THROW((void)parse_dirs({" realign a with b"}), support::CompileError);
}

TEST(Directives, AlignUnknownDummyThrows) {
  EXPECT_THROW((void)parse_dirs({" align a(i) with t(k)"}), support::CompileError);
}

// --- ProcGrid ----------------------------------------------------------------

TEST(ProcGrid, FactorizationMatchesPaperGrids) {
  EXPECT_EQ(compiler::ProcGrid::factorized(4, 2).shape, (std::vector<int>{2, 2}));
  EXPECT_EQ(compiler::ProcGrid::factorized(8, 2).shape, (std::vector<int>{2, 4}));
  EXPECT_EQ(compiler::ProcGrid::factorized(2, 2).shape, (std::vector<int>{1, 2}));
  EXPECT_EQ(compiler::ProcGrid::factorized(8, 1).shape, (std::vector<int>{8}));
}

TEST(ProcGrid, LinearCoordsRoundTrip) {
  compiler::ProcGrid g;
  g.shape = {2, 4};
  for (int p = 0; p < g.total(); ++p) {
    const auto c = g.coords(p);
    EXPECT_EQ(g.linear(c), p);
  }
}

// --- DimDist ownership: parameterized over (extent, procs) ---------------------

class BlockOwnership : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(BlockOwnership, PartitionIsCompleteAndDisjoint) {
  const auto [extent, nprocs] = GetParam();
  compiler::DimDist d;
  d.kind = front::DistKind::Block;
  d.grid_dim = 0;
  d.nprocs = nprocs;
  d.extent = extent;
  d.tmpl_extent = extent;
  d.block = (extent + nprocs - 1) / nprocs;

  long long total = 0;
  for (int c = 0; c < nprocs; ++c) {
    const auto r = d.owned_range(c);
    total += r.count();
    EXPECT_EQ(d.local_count(c), r.count());
    for (long long g = r.lo; g <= r.hi; ++g) EXPECT_EQ(d.owner_coord(g), c);
  }
  EXPECT_EQ(total, extent);
}

INSTANTIATE_TEST_SUITE_P(Sweep, BlockOwnership,
                         ::testing::Combine(::testing::Values(1, 7, 16, 100, 1024),
                                            ::testing::Values(1, 2, 4, 8)));

class CyclicOwnership : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(CyclicOwnership, CountsSumToExtentAndOwnershipIsModular) {
  const auto [extent, nprocs] = GetParam();
  compiler::DimDist d;
  d.kind = front::DistKind::Cyclic;
  d.grid_dim = 0;
  d.nprocs = nprocs;
  d.extent = extent;
  d.tmpl_extent = extent;

  long long total = 0;
  for (int c = 0; c < nprocs; ++c) total += d.local_count(c);
  EXPECT_EQ(total, extent);
  for (long long g = 1; g <= extent; ++g) {
    EXPECT_EQ(d.owner_coord(g), static_cast<int>((g - 1) % nprocs));
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, CyclicOwnership,
                         ::testing::Combine(::testing::Values(5, 16, 33),
                                            ::testing::Values(1, 2, 4, 8)));

TEST(DimDist, AlignOffsetShiftsOwnership) {
  compiler::DimDist d;
  d.kind = front::DistKind::Block;
  d.grid_dim = 0;
  d.nprocs = 4;
  d.extent = 14;       // array is shorter than the template
  d.tmpl_extent = 16;  // template index = array index + 2
  d.align_offset = 2;
  d.block = 4;
  // array index 1 -> template 3 -> coord 0; array index 3 -> template 5 -> coord 1
  EXPECT_EQ(d.owner_coord(1), 0);
  EXPECT_EQ(d.owner_coord(3), 1);
  long long total = 0;
  for (int c = 0; c < 4; ++c) total += d.local_count(c);
  EXPECT_EQ(total, 14);
}

// --- DataLayout end-to-end ------------------------------------------------------

struct LayoutFixture {
  front::Program prog;
  front::SymbolTable symbols;
  front::DirectiveSet directives;
};

LayoutFixture make_fixture(const char* src) {
  LayoutFixture f{front::parse_program(src), {}, {}};
  f.symbols = front::analyze(f.prog);
  f.directives = front::parse_directives(f.prog.raw_directives);
  return f;
}

constexpr const char* kLaplaceSrc = R"f90(
program l
  parameter (n = 16)
  real u(n,n)
!hpf$ processors p(2,2)
!hpf$ template d(n,n)
!hpf$ align u(i,j) with d(i,j)
!hpf$ distribute d(block,block)
  u(1,1) = 0.0
end program l
)f90";

TEST(DataLayout, BlockBlockOwnership) {
  auto f = make_fixture(kLaplaceSrc);
  compiler::LayoutOptions opts;
  opts.nprocs = 4;
  compiler::DataLayout layout(f.directives, f.symbols, {}, opts);
  const compiler::ArrayMap* map = layout.map_for(f.symbols.find("u"));
  ASSERT_NE(map, nullptr);
  EXPECT_EQ(layout.grid().shape, (std::vector<int>{2, 2}));
  const long long i00[2] = {1, 1};
  const long long i01[2] = {1, 16};
  const long long i10[2] = {16, 1};
  const long long i11[2] = {16, 16};
  EXPECT_EQ(map->owner(layout.grid(), i00), 0);
  EXPECT_EQ(map->owner(layout.grid(), i01), 1);
  EXPECT_EQ(map->owner(layout.grid(), i10), 2);
  EXPECT_EQ(map->owner(layout.grid(), i11), 3);
  // every processor owns an 8x8 block
  for (int p = 0; p < 4; ++p) EXPECT_EQ(map->local_elements(layout.grid(), p), 64);
}

TEST(DataLayout, CollapsedDimStaysLocal) {
  auto f = make_fixture(R"f90(
program l
  parameter (n = 16)
  real a(n, 4)
!hpf$ template d(n)
!hpf$ align a(i,j) with d(i)
!hpf$ distribute d(block)
  a(1,1) = 0.0
end program l
)f90");
  compiler::LayoutOptions opts;
  opts.nprocs = 4;
  compiler::DataLayout layout(f.directives, f.symbols, {}, opts);
  const compiler::ArrayMap* map = layout.map_for(f.symbols.find("a"));
  ASSERT_NE(map, nullptr);
  EXPECT_EQ(map->dims[1].kind, front::DistKind::Collapsed);
  for (int p = 0; p < 4; ++p) EXPECT_EQ(map->local_elements(layout.grid(), p), 16);
}

TEST(DataLayout, BindingOverridesParameterExtent) {
  auto f = make_fixture(kLaplaceSrc);
  front::Bindings b;
  b.set_int("n", 64);
  compiler::LayoutOptions opts;
  opts.nprocs = 4;
  compiler::DataLayout layout(f.directives, f.symbols, b, opts);
  const compiler::ArrayMap* map = layout.map_for(f.symbols.find("u"));
  EXPECT_EQ(map->dims[0].extent, 64);
  EXPECT_EQ(map->total_elements(), 64 * 64);
}

TEST(DataLayout, GridShapeOverride) {
  auto f = make_fixture(kLaplaceSrc);
  compiler::LayoutOptions opts;
  opts.nprocs = 8;
  opts.grid_shape = std::vector<int>{2, 4};
  compiler::DataLayout layout(f.directives, f.symbols, {}, opts);
  EXPECT_EQ(layout.grid().shape, (std::vector<int>{2, 4}));
  compiler::LayoutOptions bad = opts;
  bad.grid_shape = std::vector<int>{3, 2};
  EXPECT_THROW((compiler::DataLayout(f.directives, f.symbols, {}, bad)),
               support::CompileError);
}

TEST(DataLayout, UnmappedSymbolReturnsNull) {
  auto f = make_fixture(kLaplaceSrc);
  compiler::LayoutOptions opts;
  opts.nprocs = 4;
  compiler::DataLayout layout(f.directives, f.symbols, {}, opts);
  EXPECT_EQ(layout.map_for(f.symbols.find("n")), nullptr);
}

TEST(DataLayout, OwnershipPictureShowsGrid) {
  auto f = make_fixture(kLaplaceSrc);
  compiler::LayoutOptions opts;
  opts.nprocs = 4;
  compiler::DataLayout layout(f.directives, f.symbols, {}, opts);
  const std::string pic = layout.ownership_picture(f.symbols.find("u"), 4, 4);
  EXPECT_NE(pic.find("P1"), std::string::npos);
  EXPECT_NE(pic.find("P4"), std::string::npos);
}

// --- layout serialization (the artifact store's payload) ----------------------

TEST(DataLayout, SerializeRoundTripsExactly) {
  auto f = make_fixture(kLaplaceSrc);
  compiler::LayoutOptions opts;
  opts.nprocs = 4;
  compiler::DataLayout layout(f.directives, f.symbols, {}, opts);
  const std::string text = compiler::serialize_layout(layout);
  const compiler::DataLayout back = compiler::deserialize_layout(text);
  // the serialized form is a fixpoint: re-serializing is byte-identical
  EXPECT_EQ(compiler::serialize_layout(back), text);
  // and the rebuilt layout answers queries like the original
  EXPECT_EQ(back.grid().shape, layout.grid().shape);
  EXPECT_EQ(back.nprocs(), layout.nprocs());
  const int u = f.symbols.find("u");
  EXPECT_EQ(back.ownership_picture(u, 4, 4), layout.ownership_picture(u, 4, 4));
}

TEST(DataLayout, DeserializeRejectsMalformedText) {
  EXPECT_THROW((void)compiler::deserialize_layout(""), std::invalid_argument);
  EXPECT_THROW((void)compiler::deserialize_layout("layout 99\n"), std::invalid_argument);
  auto f = make_fixture(kLaplaceSrc);
  compiler::LayoutOptions opts;
  opts.nprocs = 4;
  compiler::DataLayout layout(f.directives, f.symbols, {}, opts);
  const std::string good = compiler::serialize_layout(layout);
  EXPECT_THROW((void)compiler::deserialize_layout(good.substr(0, good.size() / 2)),
               std::invalid_argument);
}

}  // namespace
}  // namespace hpf90d
