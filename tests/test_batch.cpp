// Oracle tests for the lockstep batch interpreter: for every batch size —
// including the degenerate scalar setting and a whole-sweep batch — and
// every worker count, Session::run must produce a RunReport whose ASCII and
// CSV exports are byte-identical to the scalar path's, on all registered
// machines, with measurement enabled, and in the presence of divergent
// lanes (binding-dependent DO trip counts, masked loops, per-lane critical
// variables steering branches). The batch telemetry itself must stay out
// of the exports. CI also runs this binary under ThreadSanitizer.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "api/api.hpp"
#include "study/study.hpp"
#include "suite/suite.hpp"

namespace hpf90d {
namespace {

// The settings the oracle sweeps: batch sizes 1 (scalar), 4, 64, and "the
// whole sweep in one chunk cap", crossed with serial and pooled workers.
const std::vector<int> kWorkerCounts = {1, 4};

std::vector<int> batch_sizes(std::size_t point_count) {
  return {1, 8, 64, static_cast<int>(point_count)};
}

/// Runs the plan at (batch_size, workers) on a fresh session and returns
/// the exports. wall_seconds is the one legitimately nondeterministic
/// field in ascii(), so it is zeroed before rendering.
struct Exports {
  std::string ascii;
  std::string csv;
  api::BatchStats batch;
};

Exports run_once(const api::ExperimentPlan& plan, int batch_size, int workers,
                 bool compact_lanes = true, bool speculate = false,
                 bool order = false) {
  api::Session session;
  api::RunOptions opts;
  opts.workers = workers;
  opts.batch_size = batch_size;
  opts.compact_lanes = compact_lanes;
  opts.speculate_branches = speculate;
  opts.order_points = order;
  api::RunReport report = session.run(plan, opts);
  report.wall_seconds = 0.0;
  return Exports{report.ascii(), report.csv(), report.batch};
}

void expect_oracle(const api::ExperimentPlan& plan, std::size_t point_count,
                   bool expect_divergence = false) {
  const Exports baseline = run_once(plan, /*batch_size=*/1, /*workers=*/1);
  EXPECT_EQ(baseline.batch.batched_points, 0u);
  EXPECT_EQ(baseline.batch.scalar_points, point_count);

  bool saw_batched = false;
  bool saw_evicted = false;
  bool saw_recovered = false;
  for (const int batch : batch_sizes(point_count)) {
    for (const int workers : kWorkerCounts) {
      for (const bool compact : {true, false}) {
        const Exports e = run_once(plan, batch, workers, compact);
        EXPECT_EQ(e.ascii, baseline.ascii)
            << "ascii diverged at batch_size=" << batch << " workers=" << workers
            << " compact=" << compact;
        EXPECT_EQ(e.csv, baseline.csv)
            << "csv diverged at batch_size=" << batch << " workers=" << workers
            << " compact=" << compact;
        // every point is accounted for exactly once: priced lockstep, priced
        // by the scalar engine, or evicted mid-batch and finally priced scalar
        EXPECT_EQ(
            e.batch.batched_points + e.batch.scalar_points + e.batch.replayed_points,
            point_count);
        if (e.batch.batched_points > 0) saw_batched = true;
        if (e.batch.evicted_lanes > 0) saw_evicted = true;
        // a divergent lane is recovered either way: re-batched into a
        // lockstep refill window (compaction) or replayed by the scalar
        // engine (compaction off / unmatched keys / failure evictions)
        if (e.batch.replayed_points > 0 || e.batch.refilled_lanes > 0)
          saw_recovered = true;
      }
    }
  }
  EXPECT_TRUE(saw_batched) << "no setting ever took the lockstep path";
  if (expect_divergence) {
    EXPECT_TRUE(saw_evicted) << "expected divergent lanes to be evicted";
    EXPECT_TRUE(saw_recovered)
        << "expected evicted lanes to be refilled or replayed";
  }
}

// --- the full-surface oracle --------------------------------------------------

TEST(BatchOracle, AllRegisteredMachinesMeasuredSweep) {
  // Every registered machine x 4 processor counts x 3 problem sizes, with
  // measurement on (runs > 0), so the oracle covers predict + measure +
  // record assembly end to end.
  const suite::BenchmarkApp& app = suite::app("pi");
  api::ExperimentPlan plan("batch oracle: all machines");
  plan.source(app.source)
      .machines({"cluster", "fattree", "ipsc860", "paragon", "whatif"})
      .nprocs({1, 2, 4, 8})
      .problems_from({16, 64, 256}, app.bindings)
      .runs(2);
  expect_oracle(plan, 5u * 4u * 3u);
}

TEST(BatchOracle, DirectiveVariantsSplitChunksDeterministically) {
  // Chunks never span variants: consecutive points agree on the compiled
  // program. Two Laplace distributions exercise that boundary.
  const suite::BenchmarkApp& app = suite::app("laplace_bb");
  api::ExperimentPlan plan("batch oracle: variants");
  plan.source(app.source)
      .machines({"ipsc860", "paragon"})
      .nprocs({2, 4})
      .add_variant("(block,block)", {"distribute d(block,block)"}, 2)
      .add_variant("(block,*)", {"distribute d(block,*)"})
      .problems_from({8, 16}, app.bindings)
      .runs(0);
  expect_oracle(plan, 2u * 2u * 2u * 2u);
}

// --- divergence ---------------------------------------------------------------

TEST(BatchOracle, BindingDependentDoTripsForceReplay) {
  // The outer DO trip count is a per-problem binding: lanes from different
  // problems disagree at the first size-dependent scalar loop and are
  // evicted — then either re-batched by key (compaction) or replayed by
  // the scalar engine — and must reproduce the scalar report byte for
  // byte either way.
  static const char* const source = R"f90(
program levels
  parameter (n = 1024)
  real v(n)
!hpf$ template d(n)
!hpf$ align v(i) with d(i)
!hpf$ distribute d(block)
  forall (i = 1:n) v(i) = real(i)
  do it = 1, nlev
    forall (i = 1:n) v(i) = v(i)*0.5 + 1.0
  end do
end program levels
)f90";
  api::ExperimentPlan plan("batch oracle: divergent do");
  plan.source(source).machines({"ipsc860"}).nprocs({1, 2, 4});
  for (const long long nlev : {2, 3, 5, 8}) {
    front::Bindings b;
    b.set_int("nlev", nlev);
    plan.add_problem("nlev=" + std::to_string(nlev), b);
  }
  plan.runs(2);
  expect_oracle(plan, 3u * 4u, /*expect_divergence=*/true);
}

TEST(BatchOracle, PerLaneCriticalVariableSteersBranchesAndMasks) {
  // `w` is a critical variable bound per problem: it steers an IF both
  // ways across lanes (branch divergence) and feeds a masked local loop
  // and a data-dependent DO WHILE (condition divergence). All three evict
  // lanes mid-walk.
  static const char* const source = R"f90(
program masked
  parameter (n = 512)
  real v(n)
  real w, acc
!hpf$ template d(n)
!hpf$ align v(i) with d(i)
!hpf$ distribute d(block)
  forall (i = 1:n) v(i) = real(i)*w
  forall (i = 1:n, v(i) .gt. 64.0) v(i) = v(i)*0.5
  if (w .gt. 2.0) then
    forall (i = 1:n) v(i) = v(i) + 1.0
  else
    forall (i = 1:n) v(i) = v(i) - 1.0
  end if
  acc = w
  do while (acc .gt. 1.0)
    acc = acc*0.5
    forall (i = 1:n) v(i) = v(i)*acc
  end do
end program masked
)f90";
  api::ExperimentPlan plan("batch oracle: per-lane critical");
  plan.source(source).machines({"ipsc860", "cluster"}).nprocs({1, 4});
  for (const double w : {0.5, 2.5, 7.0}) {
    front::Bindings b;
    b.set("w", w);
    plan.add_problem("w=" + std::to_string(w), b);
  }
  plan.runs(2);
  expect_oracle(plan, 2u * 2u * 3u, /*expect_divergence=*/true);
}

// --- re-compaction -----------------------------------------------------------

TEST(BatchOracle, ForcedDivergenceRefillsLanesWithoutScalarReplay) {
  // 4 nlev groups x 4 system sizes, the whole sweep in one batch: the
  // binding-dependent DO evicts 12 of the 16 lanes at once. Every nlev
  // group still holds 4 lanes, so keyed re-compaction re-batches all of
  // them into lockstep refill windows and nothing falls back to the scalar
  // engine; with compaction off every evicted lane is replayed scalar.
  static const char* const source = R"f90(
program levels
  parameter (n = 1024)
  real v(n)
!hpf$ template d(n)
!hpf$ align v(i) with d(i)
!hpf$ distribute d(block)
  forall (i = 1:n) v(i) = real(i)
  do it = 1, nlev
    forall (i = 1:n) v(i) = v(i)*0.5 + 1.0
  end do
end program levels
)f90";
  api::ExperimentPlan plan("batch oracle: occupancy");
  plan.source(source).machines({"ipsc860"}).nprocs({1, 2, 4, 8});
  for (const long long nlev : {2, 3, 5, 8}) {
    front::Bindings b;
    b.set_int("nlev", nlev);
    plan.add_problem("nlev=" + std::to_string(nlev), b);
  }
  plan.runs(2);
  const std::size_t points = 4u * 4u;

  const Exports compacted =
      run_once(plan, /*batch_size=*/static_cast<int>(points), /*workers=*/1,
               /*compact_lanes=*/true);
  EXPECT_GT(compacted.batch.evicted_lanes, 0u);
  EXPECT_GT(compacted.batch.refilled_lanes, 0u);
  EXPECT_EQ(compacted.batch.replayed_points, 0u)
      << "keyed refill should leave no lane to the scalar replay";
  EXPECT_EQ(compacted.batch.batched_points + compacted.batch.scalar_points, points);

  const Exports replayed =
      run_once(plan, /*batch_size=*/static_cast<int>(points), /*workers=*/1,
               /*compact_lanes=*/false);
  EXPECT_EQ(replayed.batch.refilled_lanes, 0u);
  EXPECT_GT(replayed.batch.replayed_points, 0u);
  // every lockstep visit — fresh window or keyed refill — keeps at least a
  // full nlev group (4 lanes) active; scalar replay would price 1 at a time
  EXPECT_GT(compacted.batch.mean_lanes_per_visit(), 3.0);
  // and the exports agree byte for byte regardless
  EXPECT_EQ(compacted.ascii, replayed.ascii);
  EXPECT_EQ(compacted.csv, replayed.csv);
}

TEST(BatchOracle, MultiRoundRecompactionStaysDeterministic) {
  // Two sequential binding-dependent DOs: lanes regroup by the first trip
  // count, then the refill windows themselves diverge at the second DO and
  // need a second compaction round. Every (na, nb) subgroup still spans the
  // 3 system sizes, so both rounds re-batch cleanly, and the exports must
  // stay byte-identical across batch size, workers, and compaction.
  static const char* const source = R"f90(
program levels2
  parameter (n = 512)
  real v(n)
!hpf$ template d(n)
!hpf$ align v(i) with d(i)
!hpf$ distribute d(block)
  forall (i = 1:n) v(i) = real(i)
  do it = 1, na
    forall (i = 1:n) v(i) = v(i)*0.5 + 1.0
  end do
  do jt = 1, nb
    forall (i = 1:n) v(i) = v(i)*0.25 + 2.0
  end do
end program levels2
)f90";
  api::ExperimentPlan plan("batch oracle: two-site divergence");
  plan.source(source).machines({"ipsc860"}).nprocs({1, 2, 4});
  for (const long long na : {2, 5}) {
    for (const long long nb : {3, 7}) {
      front::Bindings b;
      b.set_int("na", na);
      b.set_int("nb", nb);
      plan.add_problem("na=" + std::to_string(na) + ",nb=" + std::to_string(nb), b);
    }
  }
  plan.runs(2);
  const std::size_t points = 2u * 2u * 3u;
  expect_oracle(plan, points, /*expect_divergence=*/true);

  // with the whole sweep in one batch, both divergence rounds resolve via
  // refill windows: nothing is left for the scalar replay
  const Exports e = run_once(plan, /*batch_size=*/static_cast<int>(points),
                             /*workers=*/1, /*compact_lanes=*/true);
  EXPECT_GT(e.batch.refilled_lanes, 0u);
  EXPECT_EQ(e.batch.replayed_points, 0u);
}

// --- cross-chunk session divergence pool --------------------------------------

TEST(BatchOracle, CrossChunkPoolPairsLoneLanesFromDifferentChunks) {
  // 258 single-nprocs points of one (machine, variant) group: the 256-point
  // chunk granule splits them into two chunks. Exactly one point per chunk
  // carries nlev = 9 (the rest nlev = 2), so each chunk evicts one LONE
  // rebatchable lane its own re-compaction cannot pair. Pre-pool both
  // would replay scalar; with the session-wide divergence pool the two
  // equal-key lanes meet after the chunk barrier and re-enter lockstep
  // TOGETHER — zero scalar replays — and the exports stay byte-identical
  // to the scalar path, deterministically for every worker count.
  static const char* const source = R"f90(
program pooled
  parameter (n = 512)
  real v(n)
!hpf$ template d(n)
!hpf$ align v(i) with d(i)
!hpf$ distribute d(block)
  forall (i = 1:n) v(i) = real(i)
  do it = 1, nlev
    forall (i = 1:n) v(i) = v(i)*0.5 + 1.0
  end do
end program pooled
)f90";
  constexpr std::size_t kPoints = 258;  // chunk granule 256 -> two chunks
  api::ExperimentPlan plan("batch oracle: cross-chunk pool");
  plan.source(source).machines({"ipsc860"}).nprocs({1});
  for (std::size_t i = 0; i < kPoints; ++i) {
    front::Bindings b;
    // one divergent point per chunk: 10 in the first, 257 in the second
    b.set_int("nlev", (i == 10 || i == 257) ? 9 : 2);
    b.set("pad", static_cast<double>(i));  // distinct bindings per point
    plan.add_problem("p" + std::to_string(i), b);
  }
  plan.runs(1);

  const Exports baseline = run_once(plan, /*batch_size=*/1, /*workers=*/1);
  EXPECT_EQ(baseline.batch.pooled_lanes, 0u);

  const Exports serial = run_once(plan, /*batch_size=*/64, /*workers=*/1);
  EXPECT_EQ(serial.ascii, baseline.ascii);
  EXPECT_EQ(serial.csv, baseline.csv);
  EXPECT_EQ(serial.batch.pooled_lanes, 2u)
      << "each chunk should export exactly its lone divergent lane";
  EXPECT_EQ(serial.batch.replayed_points, 0u)
      << "the pooled pair should re-enter lockstep, not replay scalar";
  EXPECT_EQ(serial.batch.batched_points, kPoints);
  EXPECT_GT(serial.batch.refilled_lanes, 0u);

  // The drain is serial and canonically ordered, so telemetry — not just
  // the payload — is identical under concurrent chunk execution.
  const Exports pooled = run_once(plan, /*batch_size=*/64, /*workers=*/4);
  EXPECT_EQ(pooled.ascii, baseline.ascii);
  EXPECT_EQ(pooled.csv, baseline.csv);
  EXPECT_EQ(pooled.batch.pooled_lanes, serial.batch.pooled_lanes);
  EXPECT_EQ(pooled.batch.replayed_points, serial.batch.replayed_points);
  EXPECT_EQ(pooled.batch.batched_points, serial.batch.batched_points);
  EXPECT_EQ(pooled.batch.refilled_lanes, serial.batch.refilled_lanes);
  EXPECT_EQ(pooled.batch.evicted_lanes, serial.batch.evicted_lanes);

  // Compaction off: no pool, both lone lanes replay scalar — still
  // byte-identical.
  const Exports nopool = run_once(plan, /*batch_size=*/64, /*workers=*/1,
                                  /*compact_lanes=*/false);
  EXPECT_EQ(nopool.batch.pooled_lanes, 0u);
  EXPECT_GT(nopool.batch.replayed_points, 0u);
  EXPECT_EQ(nopool.ascii, baseline.ascii);
  EXPECT_EQ(nopool.csv, baseline.csv);
}

// --- divergence-aware plan ordering -------------------------------------------

TEST(BatchOracle, OrderPointsGroupsInterleavedDivergenceAxis) {
  // The plan interleaves a divergence axis (nlev, a critical loop bound)
  // with a benign axis (w, a value-only coefficient): plan order alternates
  // nlev = 2, 7, 2, 7, ... so every unsorted lockstep window mixes both
  // trip counts and must evict. order_points sorts each segment by the
  // critical-variable signature, making nlev groups lane neighbours: at
  // batch_size 4 the ordered run stays fully lockstep with ZERO evictions
  // while the unsorted run evicts every window — and the report payload is
  // byte-identical between them, for every batch size and worker count.
  static const char* const source = R"f90(
program ordered
  parameter (n = 512)
  real v(n)
  real w
!hpf$ template d(n)
!hpf$ align v(i) with d(i)
!hpf$ distribute d(block)
  forall (i = 1:n) v(i) = real(i)*w
  do it = 1, nlev
    forall (i = 1:n) v(i) = v(i)*0.5 + 1.0
  end do
end program ordered
)f90";
  api::ExperimentPlan plan("batch oracle: ordered sweep");
  plan.source(source).machines({"ipsc860"}).nprocs({1, 2});
  for (const double w : {1.0, 2.0}) {
    for (const long long nlev : {2, 7}) {
      front::Bindings b;
      b.set("w", w);
      b.set_int("nlev", nlev);
      plan.add_problem("w=" + std::to_string(w) + ",nlev=" + std::to_string(nlev),
                       b);
    }
  }
  plan.runs(2);
  const std::size_t points = 2u * 2u * 2u;

  const Exports baseline = run_once(plan, /*batch_size=*/1, /*workers=*/1);

  // Byte-identity across ordering x batch size x workers.
  for (const int batch : batch_sizes(points)) {
    for (const int workers : kWorkerCounts) {
      for (const bool order : {false, true}) {
        const Exports e = run_once(plan, batch, workers, /*compact_lanes=*/true,
                                   /*speculate=*/false, order);
        EXPECT_EQ(e.ascii, baseline.ascii)
            << "ascii diverged at batch_size=" << batch << " workers=" << workers
            << " order=" << order;
        EXPECT_EQ(e.csv, baseline.csv)
            << "csv diverged at batch_size=" << batch << " workers=" << workers
            << " order=" << order;
      }
    }
  }

  // Telemetry: at a window size matching the group size, ordering turns an
  // every-window eviction pattern into pure lockstep.
  const Exports unsorted = run_once(plan, /*batch_size=*/4, /*workers=*/1,
                                    /*compact_lanes=*/true, /*speculate=*/false,
                                    /*order=*/false);
  const Exports ordered = run_once(plan, /*batch_size=*/4, /*workers=*/1,
                                   /*compact_lanes=*/true, /*speculate=*/false,
                                   /*order=*/true);
  EXPECT_GT(unsorted.batch.evicted_lanes, 0u)
      << "the interleaved plan should diverge without ordering";
  EXPECT_EQ(ordered.batch.evicted_lanes, 0u)
      << "signature ordering should make every window uniform";
  EXPECT_EQ(ordered.batch.batched_points, points);
}

TEST(BatchOracle, OrderPointsKeepsMeasurementAndScaledPlansIdentical) {
  // Ordering must compose with measurement (records carry measured stats
  // assembled after the reorder) and with weak-scaling plans (problem and
  // nprocs coupled). The payload stays byte-identical with ordering on.
  const suite::BenchmarkApp& app = suite::app("pi");
  api::ExperimentPlan plan("batch oracle: ordered scaled");
  plan.source(app.source).machines({"ipsc860", "cluster"});
  std::vector<api::ScaledCase> cases;
  for (const auto& [size, np] : std::vector<std::pair<long long, int>>{
           {16, 1}, {64, 2}, {16, 4}, {64, 8}}) {
    api::ScaledCase sc;
    sc.problem.name = "n=" + std::to_string(size);
    sc.problem.bindings = app.bindings(size);
    sc.nprocs = np;
    cases.push_back(std::move(sc));
  }
  plan.scaled_cases(std::move(cases));
  plan.runs(3);
  const Exports baseline = run_once(plan, /*batch_size=*/1, /*workers=*/1);
  for (const int workers : kWorkerCounts) {
    const Exports e = run_once(plan, /*batch_size=*/64, workers,
                               /*compact_lanes=*/true, /*speculate=*/false,
                               /*order=*/true);
    EXPECT_EQ(e.ascii, baseline.ascii) << "workers=" << workers;
    EXPECT_EQ(e.csv, baseline.csv) << "workers=" << workers;
  }
}

// --- speculative both-sides IF -----------------------------------------------

TEST(BatchOracle, SpeculativeIfPricesBothArmsWithoutEviction) {
  // `w` steers a cheap loop-free-armed IF both ways across lanes; the arms
  // write DIFFERENT masked arrays, so mispricing either subset would show
  // up in the estimates. With speculate_branches on, the batch engine walks
  // both arms with per-lane subsets instead of evicting the minority: the
  // exports must stay byte-identical to the scalar path and to the
  // non-speculated batch run, and the IF must stop evicting entirely.
  static const char* const source = R"f90(
program specif
  parameter (n = 512)
  real a(n), b(n)
  real w
!hpf$ template d(n)
!hpf$ align a(i) with d(i)
!hpf$ align b(i) with d(i)
!hpf$ distribute d(block)
  forall (i = 1:n) a(i) = real(i)*w
  forall (i = 1:n) b(i) = real(i) + w
  if (w .gt. 2.0) then
    forall (i = 1:n, a(i) .gt. 32.0) a(i) = a(i)*0.5
  else
    forall (i = 1:n, b(i) .gt. 16.0) b(i) = b(i)*0.25
  end if
end program specif
)f90";
  api::ExperimentPlan plan("batch oracle: speculative if");
  plan.source(source).machines({"ipsc860", "cluster"}).nprocs({1, 4});
  for (const double w : {0.5, 1.5, 2.5, 7.0}) {
    front::Bindings b;
    b.set("w", w);
    plan.add_problem("w=" + std::to_string(w), b);
  }
  plan.runs(2);
  const std::size_t points = 2u * 2u * 4u;

  const Exports baseline = run_once(plan, /*batch_size=*/1, /*workers=*/1);
  EXPECT_EQ(baseline.batch.scalar_points, points);
  EXPECT_EQ(baseline.batch.speculated_branches, 0u);

  // Without speculation the IF splits every window and evicts the minority.
  const Exports evicting = run_once(plan, /*batch_size=*/static_cast<int>(points),
                                    /*workers=*/1, /*compact_lanes=*/true,
                                    /*speculate=*/false);
  EXPECT_GT(evicting.batch.evicted_lanes, 0u);
  EXPECT_EQ(evicting.batch.speculated_branches, 0u);
  EXPECT_EQ(evicting.ascii, baseline.ascii);
  EXPECT_EQ(evicting.csv, baseline.csv);

  // With speculation the IF is the only divergence site, so no lane ever
  // leaves lockstep — and the payload is unchanged byte for byte.
  bool saw_speculated = false;
  for (const int batch : batch_sizes(points)) {
    for (const int workers : kWorkerCounts) {
      const Exports e = run_once(plan, batch, workers, /*compact_lanes=*/true,
                                 /*speculate=*/true);
      EXPECT_EQ(e.ascii, baseline.ascii)
          << "ascii diverged at batch_size=" << batch << " workers=" << workers;
      EXPECT_EQ(e.csv, baseline.csv)
          << "csv diverged at batch_size=" << batch << " workers=" << workers;
      if (batch > 1) {
        EXPECT_EQ(e.batch.evicted_lanes, 0u)
            << "speculation should keep every lane in lockstep";
        if (e.batch.speculated_branches > 0) saw_speculated = true;
        EXPECT_EQ(e.batch.speculated_lanes >= e.batch.speculated_branches, true);
      }
    }
  }
  EXPECT_TRUE(saw_speculated) << "no setting ever speculated the IF";
}

TEST(BatchOracle, SpeculationSkipsLoopArmsAndComposesWithRefill) {
  // The first IF's else-arm contains a binding-dependent DO, so it is not
  // speculatable (arm cost unbounded): those lanes must still evict and
  // refill by divergence key. The second IF is cheap and speculates. The
  // two mechanisms compose in one program and the exports stay
  // byte-identical to the scalar path throughout.
  static const char* const source = R"f90(
program mixed
  parameter (n = 256)
  real v(n)
  real u, w
!hpf$ template d(n)
!hpf$ align v(i) with d(i)
!hpf$ distribute d(block)
  forall (i = 1:n) v(i) = real(i)
  if (u .gt. 4.0) then
    forall (i = 1:n) v(i) = v(i) + 1.0
  else
    do it = 1, nlev
      forall (i = 1:n) v(i) = v(i)*0.5 + 1.0
    end do
  end if
  if (w .gt. 2.0) then
    forall (i = 1:n) v(i) = v(i)*2.0
  else
    forall (i = 1:n) v(i) = v(i)*3.0
  end if
end program mixed
)f90";
  // u splits the loop-armed IF; w splits the cheap IF. Every u group holds
  // both w values, so the windows the first IF produces — the survivors AND
  // the keyed refill of its evictees — still disagree at the second IF.
  api::ExperimentPlan plan("batch oracle: mixed speculation");
  plan.source(source).machines({"ipsc860"}).nprocs({1, 2, 4});
  for (const double u : {1.0, 9.0}) {
    for (const double w : {0.5, 3.0}) {
      front::Bindings b;
      b.set("u", u);
      b.set("w", w);
      b.set_int("nlev", 3);
      plan.add_problem("u=" + std::to_string(u) + ",w=" + std::to_string(w), b);
    }
  }
  plan.runs(2);
  const std::size_t points = 2u * 2u * 3u;

  const Exports baseline = run_once(plan, /*batch_size=*/1, /*workers=*/1);
  for (const int batch : batch_sizes(points)) {
    for (const int workers : kWorkerCounts) {
      for (const bool speculate : {false, true}) {
        const Exports e = run_once(plan, batch, workers, /*compact_lanes=*/true,
                                   speculate);
        EXPECT_EQ(e.ascii, baseline.ascii)
            << "ascii diverged at batch_size=" << batch << " workers=" << workers
            << " speculate=" << speculate;
        EXPECT_EQ(e.csv, baseline.csv)
            << "csv diverged at batch_size=" << batch << " workers=" << workers
            << " speculate=" << speculate;
      }
    }
  }
  // Whole-sweep batch, speculation on: the loop-armed IF still evicts (and
  // refills), while the cheap IF speculates instead of evicting again.
  const Exports e = run_once(plan, static_cast<int>(points), /*workers=*/1,
                             /*compact_lanes=*/true, /*speculate=*/true);
  EXPECT_GT(e.batch.evicted_lanes, 0u);
  EXPECT_GT(e.batch.speculated_branches, 0u);
}

// --- telemetry stays out of the exports ---------------------------------------

TEST(BatchOracle, TelemetryExcludedFromExportsAndCsvRoundTrips) {
  const suite::BenchmarkApp& app = suite::app("pi");
  api::ExperimentPlan plan("batch oracle: telemetry");
  plan.source(app.source).nprocs({1, 2, 4, 8}).problems_from({16, 64}, app.bindings).runs(0);

  const Exports batched = run_once(plan, /*batch_size=*/8, /*workers=*/1);
  EXPECT_GT(batched.batch.batched_points, 0u);
  EXPECT_GT(batched.batch.ir_visits, 0u);
  EXPECT_GT(batched.batch.mean_lanes_per_visit(), 1.0);
  // the counters are real but invisible: exports match the scalar run
  const Exports scalar = run_once(plan, /*batch_size=*/1, /*workers=*/1);
  EXPECT_EQ(batched.ascii, scalar.ascii);
  EXPECT_EQ(batched.csv, scalar.csv);
  // and the CSV still round-trips through the parser
  const api::RunReport parsed = api::RunReport::from_csv(batched.csv);
  EXPECT_EQ(parsed.records.size(), 8u);
  EXPECT_EQ(parsed.batch.batched_points, 0u);  // telemetry is not serialized
}

// --- studies ------------------------------------------------------------------

TEST(BatchOracle, StudyExportsByteIdenticalAcrossBatchSizes) {
  // A design study lowers to one batched Session::run over generated
  // what-if machines; its CSV/JSON/ASCII exports must not depend on the
  // batch size or worker count either.
  const suite::BenchmarkApp& app = suite::app("pi");
  study::StudyPlan plan("batch oracle: study");
  plan.source(app.source)
      .base_machine("ipsc860")
      .knob_axis(study::Knob::Latency, {0.5, 2.0})
      .knob_axis(study::Knob::Bandwidth, {1.0, 4.0})
      .nprocs({2, 4})
      .problems_from({32, 128}, app.bindings)
      .runs(0);

  std::vector<std::string> csvs, jsons, asciis;
  for (const int batch : {1, 4, 64}) {
    for (const int workers : kWorkerCounts) {
      api::Session session;
      api::RunOptions opts;
      opts.workers = workers;
      opts.batch_size = batch;
      const study::StudyResult result = study::run_study(session, plan, opts);
      csvs.push_back(result.csv());
      jsons.push_back(result.json());
      asciis.push_back(result.ascii());
    }
  }
  for (std::size_t i = 1; i < csvs.size(); ++i) {
    EXPECT_EQ(csvs[i], csvs[0]) << "study csv diverged at setting " << i;
    EXPECT_EQ(jsons[i], jsons[0]) << "study json diverged at setting " << i;
    EXPECT_EQ(asciis[i], asciis[0]) << "study ascii diverged at setting " << i;
  }
}

}  // namespace
}  // namespace hpf90d
