// Oracle tests for the lockstep batch interpreter: for every batch size —
// including the degenerate scalar setting and a whole-sweep batch — and
// every worker count, Session::run must produce a RunReport whose ASCII and
// CSV exports are byte-identical to the scalar path's, on all registered
// machines, with measurement enabled, and in the presence of divergent
// lanes (binding-dependent DO trip counts, masked loops, per-lane critical
// variables steering branches). The batch telemetry itself must stay out
// of the exports. CI also runs this binary under ThreadSanitizer.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "api/api.hpp"
#include "study/study.hpp"
#include "suite/suite.hpp"

namespace hpf90d {
namespace {

// The settings the oracle sweeps: batch sizes 1 (scalar), 4, 64, and "the
// whole sweep in one chunk cap", crossed with serial and pooled workers.
const std::vector<int> kWorkerCounts = {1, 4};

std::vector<int> batch_sizes(std::size_t point_count) {
  return {1, 8, 64, static_cast<int>(point_count)};
}

/// Runs the plan at (batch_size, workers) on a fresh session and returns
/// the exports. wall_seconds is the one legitimately nondeterministic
/// field in ascii(), so it is zeroed before rendering.
struct Exports {
  std::string ascii;
  std::string csv;
  api::BatchStats batch;
};

Exports run_once(const api::ExperimentPlan& plan, int batch_size, int workers,
                 bool compact_lanes = true) {
  api::Session session;
  api::RunOptions opts;
  opts.workers = workers;
  opts.batch_size = batch_size;
  opts.compact_lanes = compact_lanes;
  api::RunReport report = session.run(plan, opts);
  report.wall_seconds = 0.0;
  return Exports{report.ascii(), report.csv(), report.batch};
}

void expect_oracle(const api::ExperimentPlan& plan, std::size_t point_count,
                   bool expect_divergence = false) {
  const Exports baseline = run_once(plan, /*batch_size=*/1, /*workers=*/1);
  EXPECT_EQ(baseline.batch.batched_points, 0u);
  EXPECT_EQ(baseline.batch.scalar_points, point_count);

  bool saw_batched = false;
  bool saw_evicted = false;
  bool saw_recovered = false;
  for (const int batch : batch_sizes(point_count)) {
    for (const int workers : kWorkerCounts) {
      for (const bool compact : {true, false}) {
        const Exports e = run_once(plan, batch, workers, compact);
        EXPECT_EQ(e.ascii, baseline.ascii)
            << "ascii diverged at batch_size=" << batch << " workers=" << workers
            << " compact=" << compact;
        EXPECT_EQ(e.csv, baseline.csv)
            << "csv diverged at batch_size=" << batch << " workers=" << workers
            << " compact=" << compact;
        // every point is accounted for exactly once: priced lockstep, priced
        // by the scalar engine, or evicted mid-batch and finally priced scalar
        EXPECT_EQ(
            e.batch.batched_points + e.batch.scalar_points + e.batch.replayed_points,
            point_count);
        if (e.batch.batched_points > 0) saw_batched = true;
        if (e.batch.evicted_lanes > 0) saw_evicted = true;
        // a divergent lane is recovered either way: re-batched into a
        // lockstep refill window (compaction) or replayed by the scalar
        // engine (compaction off / unmatched keys / failure evictions)
        if (e.batch.replayed_points > 0 || e.batch.refilled_lanes > 0)
          saw_recovered = true;
      }
    }
  }
  EXPECT_TRUE(saw_batched) << "no setting ever took the lockstep path";
  if (expect_divergence) {
    EXPECT_TRUE(saw_evicted) << "expected divergent lanes to be evicted";
    EXPECT_TRUE(saw_recovered)
        << "expected evicted lanes to be refilled or replayed";
  }
}

// --- the full-surface oracle --------------------------------------------------

TEST(BatchOracle, AllRegisteredMachinesMeasuredSweep) {
  // Every registered machine x 4 processor counts x 3 problem sizes, with
  // measurement on (runs > 0), so the oracle covers predict + measure +
  // record assembly end to end.
  const suite::BenchmarkApp& app = suite::app("pi");
  api::ExperimentPlan plan("batch oracle: all machines");
  plan.source(app.source)
      .machines({"cluster", "fattree", "ipsc860", "paragon", "whatif"})
      .nprocs({1, 2, 4, 8})
      .problems_from({16, 64, 256}, app.bindings)
      .runs(2);
  expect_oracle(plan, 5u * 4u * 3u);
}

TEST(BatchOracle, DirectiveVariantsSplitChunksDeterministically) {
  // Chunks never span variants: consecutive points agree on the compiled
  // program. Two Laplace distributions exercise that boundary.
  const suite::BenchmarkApp& app = suite::app("laplace_bb");
  api::ExperimentPlan plan("batch oracle: variants");
  plan.source(app.source)
      .machines({"ipsc860", "paragon"})
      .nprocs({2, 4})
      .add_variant("(block,block)", {"distribute d(block,block)"}, 2)
      .add_variant("(block,*)", {"distribute d(block,*)"})
      .problems_from({8, 16}, app.bindings)
      .runs(0);
  expect_oracle(plan, 2u * 2u * 2u * 2u);
}

// --- divergence ---------------------------------------------------------------

TEST(BatchOracle, BindingDependentDoTripsForceReplay) {
  // The outer DO trip count is a per-problem binding: lanes from different
  // problems disagree at the first size-dependent scalar loop and are
  // evicted — then either re-batched by key (compaction) or replayed by
  // the scalar engine — and must reproduce the scalar report byte for
  // byte either way.
  static const char* const source = R"f90(
program levels
  parameter (n = 1024)
  real v(n)
!hpf$ template d(n)
!hpf$ align v(i) with d(i)
!hpf$ distribute d(block)
  forall (i = 1:n) v(i) = real(i)
  do it = 1, nlev
    forall (i = 1:n) v(i) = v(i)*0.5 + 1.0
  end do
end program levels
)f90";
  api::ExperimentPlan plan("batch oracle: divergent do");
  plan.source(source).machines({"ipsc860"}).nprocs({1, 2, 4});
  for (const long long nlev : {2, 3, 5, 8}) {
    front::Bindings b;
    b.set_int("nlev", nlev);
    plan.add_problem("nlev=" + std::to_string(nlev), b);
  }
  plan.runs(2);
  expect_oracle(plan, 3u * 4u, /*expect_divergence=*/true);
}

TEST(BatchOracle, PerLaneCriticalVariableSteersBranchesAndMasks) {
  // `w` is a critical variable bound per problem: it steers an IF both
  // ways across lanes (branch divergence) and feeds a masked local loop
  // and a data-dependent DO WHILE (condition divergence). All three evict
  // lanes mid-walk.
  static const char* const source = R"f90(
program masked
  parameter (n = 512)
  real v(n)
  real w, acc
!hpf$ template d(n)
!hpf$ align v(i) with d(i)
!hpf$ distribute d(block)
  forall (i = 1:n) v(i) = real(i)*w
  forall (i = 1:n, v(i) .gt. 64.0) v(i) = v(i)*0.5
  if (w .gt. 2.0) then
    forall (i = 1:n) v(i) = v(i) + 1.0
  else
    forall (i = 1:n) v(i) = v(i) - 1.0
  end if
  acc = w
  do while (acc .gt. 1.0)
    acc = acc*0.5
    forall (i = 1:n) v(i) = v(i)*acc
  end do
end program masked
)f90";
  api::ExperimentPlan plan("batch oracle: per-lane critical");
  plan.source(source).machines({"ipsc860", "cluster"}).nprocs({1, 4});
  for (const double w : {0.5, 2.5, 7.0}) {
    front::Bindings b;
    b.set("w", w);
    plan.add_problem("w=" + std::to_string(w), b);
  }
  plan.runs(2);
  expect_oracle(plan, 2u * 2u * 3u, /*expect_divergence=*/true);
}

// --- re-compaction -----------------------------------------------------------

TEST(BatchOracle, ForcedDivergenceRefillsLanesWithoutScalarReplay) {
  // 4 nlev groups x 4 system sizes, the whole sweep in one batch: the
  // binding-dependent DO evicts 12 of the 16 lanes at once. Every nlev
  // group still holds 4 lanes, so keyed re-compaction re-batches all of
  // them into lockstep refill windows and nothing falls back to the scalar
  // engine; with compaction off every evicted lane is replayed scalar.
  static const char* const source = R"f90(
program levels
  parameter (n = 1024)
  real v(n)
!hpf$ template d(n)
!hpf$ align v(i) with d(i)
!hpf$ distribute d(block)
  forall (i = 1:n) v(i) = real(i)
  do it = 1, nlev
    forall (i = 1:n) v(i) = v(i)*0.5 + 1.0
  end do
end program levels
)f90";
  api::ExperimentPlan plan("batch oracle: occupancy");
  plan.source(source).machines({"ipsc860"}).nprocs({1, 2, 4, 8});
  for (const long long nlev : {2, 3, 5, 8}) {
    front::Bindings b;
    b.set_int("nlev", nlev);
    plan.add_problem("nlev=" + std::to_string(nlev), b);
  }
  plan.runs(2);
  const std::size_t points = 4u * 4u;

  const Exports compacted =
      run_once(plan, /*batch_size=*/static_cast<int>(points), /*workers=*/1,
               /*compact_lanes=*/true);
  EXPECT_GT(compacted.batch.evicted_lanes, 0u);
  EXPECT_GT(compacted.batch.refilled_lanes, 0u);
  EXPECT_EQ(compacted.batch.replayed_points, 0u)
      << "keyed refill should leave no lane to the scalar replay";
  EXPECT_EQ(compacted.batch.batched_points + compacted.batch.scalar_points, points);

  const Exports replayed =
      run_once(plan, /*batch_size=*/static_cast<int>(points), /*workers=*/1,
               /*compact_lanes=*/false);
  EXPECT_EQ(replayed.batch.refilled_lanes, 0u);
  EXPECT_GT(replayed.batch.replayed_points, 0u);
  // every lockstep visit — fresh window or keyed refill — keeps at least a
  // full nlev group (4 lanes) active; scalar replay would price 1 at a time
  EXPECT_GT(compacted.batch.mean_lanes_per_visit(), 3.0);
  // and the exports agree byte for byte regardless
  EXPECT_EQ(compacted.ascii, replayed.ascii);
  EXPECT_EQ(compacted.csv, replayed.csv);
}

TEST(BatchOracle, MultiRoundRecompactionStaysDeterministic) {
  // Two sequential binding-dependent DOs: lanes regroup by the first trip
  // count, then the refill windows themselves diverge at the second DO and
  // need a second compaction round. Every (na, nb) subgroup still spans the
  // 3 system sizes, so both rounds re-batch cleanly, and the exports must
  // stay byte-identical across batch size, workers, and compaction.
  static const char* const source = R"f90(
program levels2
  parameter (n = 512)
  real v(n)
!hpf$ template d(n)
!hpf$ align v(i) with d(i)
!hpf$ distribute d(block)
  forall (i = 1:n) v(i) = real(i)
  do it = 1, na
    forall (i = 1:n) v(i) = v(i)*0.5 + 1.0
  end do
  do jt = 1, nb
    forall (i = 1:n) v(i) = v(i)*0.25 + 2.0
  end do
end program levels2
)f90";
  api::ExperimentPlan plan("batch oracle: two-site divergence");
  plan.source(source).machines({"ipsc860"}).nprocs({1, 2, 4});
  for (const long long na : {2, 5}) {
    for (const long long nb : {3, 7}) {
      front::Bindings b;
      b.set_int("na", na);
      b.set_int("nb", nb);
      plan.add_problem("na=" + std::to_string(na) + ",nb=" + std::to_string(nb), b);
    }
  }
  plan.runs(2);
  const std::size_t points = 2u * 2u * 3u;
  expect_oracle(plan, points, /*expect_divergence=*/true);

  // with the whole sweep in one batch, both divergence rounds resolve via
  // refill windows: nothing is left for the scalar replay
  const Exports e = run_once(plan, /*batch_size=*/static_cast<int>(points),
                             /*workers=*/1, /*compact_lanes=*/true);
  EXPECT_GT(e.batch.refilled_lanes, 0u);
  EXPECT_EQ(e.batch.replayed_points, 0u);
}

// --- telemetry stays out of the exports ---------------------------------------

TEST(BatchOracle, TelemetryExcludedFromExportsAndCsvRoundTrips) {
  const suite::BenchmarkApp& app = suite::app("pi");
  api::ExperimentPlan plan("batch oracle: telemetry");
  plan.source(app.source).nprocs({1, 2, 4, 8}).problems_from({16, 64}, app.bindings).runs(0);

  const Exports batched = run_once(plan, /*batch_size=*/8, /*workers=*/1);
  EXPECT_GT(batched.batch.batched_points, 0u);
  EXPECT_GT(batched.batch.ir_visits, 0u);
  EXPECT_GT(batched.batch.mean_lanes_per_visit(), 1.0);
  // the counters are real but invisible: exports match the scalar run
  const Exports scalar = run_once(plan, /*batch_size=*/1, /*workers=*/1);
  EXPECT_EQ(batched.ascii, scalar.ascii);
  EXPECT_EQ(batched.csv, scalar.csv);
  // and the CSV still round-trips through the parser
  const api::RunReport parsed = api::RunReport::from_csv(batched.csv);
  EXPECT_EQ(parsed.records.size(), 8u);
  EXPECT_EQ(parsed.batch.batched_points, 0u);  // telemetry is not serialized
}

// --- studies ------------------------------------------------------------------

TEST(BatchOracle, StudyExportsByteIdenticalAcrossBatchSizes) {
  // A design study lowers to one batched Session::run over generated
  // what-if machines; its CSV/JSON/ASCII exports must not depend on the
  // batch size or worker count either.
  const suite::BenchmarkApp& app = suite::app("pi");
  study::StudyPlan plan("batch oracle: study");
  plan.source(app.source)
      .base_machine("ipsc860")
      .knob_axis(study::Knob::Latency, {0.5, 2.0})
      .knob_axis(study::Knob::Bandwidth, {1.0, 4.0})
      .nprocs({2, 4})
      .problems_from({32, 128}, app.bindings)
      .runs(0);

  std::vector<std::string> csvs, jsons, asciis;
  for (const int batch : {1, 4, 64}) {
    for (const int workers : kWorkerCounts) {
      api::Session session;
      api::RunOptions opts;
      opts.workers = workers;
      opts.batch_size = batch;
      const study::StudyResult result = study::run_study(session, plan, opts);
      csvs.push_back(result.csv());
      jsons.push_back(result.json());
      asciis.push_back(result.ascii());
    }
  }
  for (std::size_t i = 1; i < csvs.size(); ++i) {
    EXPECT_EQ(csvs[i], csvs[0]) << "study csv diverged at setting " << i;
    EXPECT_EQ(jsons[i], jsons[0]) << "study json diverged at setting " << i;
    EXPECT_EQ(asciis[i], asciis[0]) << "study ascii diverged at setting " << i;
  }
}

}  // namespace
}  // namespace hpf90d
