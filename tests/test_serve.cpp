// Experiment-service tests: wire framing (round trip, truncation, hostile
// headers), plan/outcome codec fixpoints, multi-tenant job-queue fairness
// and cancellation, artifact-store persistence, and the daemon end to end
// over a Unix-domain socket — byte-identical served reports (vs local
// runs, across concurrent tenants, and across a kill/restart with a warm
// artifact spill), plus protocol-abuse resilience.
#include <gtest/gtest.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <atomic>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "api/api.hpp"
#include "compiler/mapping.hpp"
#include "compiler/pipeline.hpp"
#include "serve/artifact_store.hpp"
#include "serve/client.hpp"
#include "serve/job_queue.hpp"
#include "serve/plan_codec.hpp"
#include "serve/server.hpp"
#include "serve/wire.hpp"
#include "study/study_plan.hpp"

namespace hpf90d {
namespace {

namespace fs = std::filesystem;

constexpr const char* kLaplace = R"f90(
program laplace
  parameter (n = 64)
  real u(n,n), unew(n,n)
!hpf$ template d(n,n)
!hpf$ align u(i,j) with d(i,j)
!hpf$ align unew(i,j) with d(i,j)
!hpf$ distribute d(block,*)
  forall (i = 2:n-1, j = 2:n-1) &
    unew(i,j) = 0.25*(u(i-1,j) + u(i+1,j) + u(i,j-1) + u(i,j+1))
  forall (i = 2:n-1, j = 2:n-1) u(i,j) = unew(i,j)
end program laplace
)f90";

/// Unique per-test scratch path under the system temp dir.
std::string scratch_path(const std::string& tag) {
  static std::atomic<int> seq{0};
  return (fs::temp_directory_path() /
          ("hpf90d-serve-" + std::to_string(::getpid()) + "-" + tag + "-" +
           std::to_string(seq.fetch_add(1))))
      .string();
}

api::ExperimentPlan small_plan(const std::string& title = "serve test plan") {
  api::ExperimentPlan plan(title);
  plan.source(kLaplace)
      .nprocs({1, 2, 4})
      .add_variant("(block,*)", {"distribute d(block,*)"}, 1)
      .runs(2);
  return plan;
}

int connect_unix(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  EXPECT_EQ(::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr), 0);
  return fd;
}

/// RAII server + cleanup of socket/artifact scratch.
struct ServerFixture {
  explicit ServerFixture(std::string artifact_dir = "",
                         serve::ServerOptions base = {}) {
    options = base;
    options.socket_path = scratch_path("sock") + ".sock";
    options.artifact_dir = std::move(artifact_dir);
    server = std::make_unique<serve::ExperimentServer>(options);
    server->start();
  }
  ~ServerFixture() {
    server->stop();
    std::error_code ec;
    fs::remove(options.socket_path, ec);
  }
  serve::ServerOptions options;
  std::unique_ptr<serve::ExperimentServer> server;
};

// --- wire framing -------------------------------------------------------------

TEST(Wire, FrameRoundTripsArbitraryBytes) {
  serve::Frame frame;
  frame.type = serve::MsgType::SubmitPlan;
  frame.payload = std::string("bin\0ary\n\tdata", 13);
  const std::string bytes = serve::encode_frame(frame);
  ASSERT_EQ(bytes.size(), serve::kHeaderSize + 13);
  std::size_t offset = 0;
  const auto decoded = serve::decode_frame(bytes, offset);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->type, serve::MsgType::SubmitPlan);
  EXPECT_EQ(decoded->payload, frame.payload);
  EXPECT_EQ(offset, bytes.size());
}

TEST(Wire, TruncatedBufferReportsNeedMoreBytes) {
  const std::string bytes =
      serve::encode_frame({serve::MsgType::Hello, "tenant-name"});
  // every strict prefix is "incomplete", never an error
  for (std::size_t n = 0; n < bytes.size(); ++n) {
    std::size_t offset = 0;
    EXPECT_FALSE(serve::decode_frame(std::string_view(bytes).substr(0, n), offset)
                     .has_value())
        << "prefix length " << n;
    EXPECT_EQ(offset, 0u);
  }
}

TEST(Wire, BadMagicRejected) {
  std::string bytes = serve::encode_frame({serve::MsgType::Hello, "x"});
  bytes[0] = 'X';
  std::size_t offset = 0;
  EXPECT_THROW((void)serve::decode_frame(bytes, offset), serve::WireError);
}

TEST(Wire, BadVersionRejected) {
  std::string bytes = serve::encode_frame({serve::MsgType::Hello, "x"});
  bytes[4] = 0x7f;  // version LSB
  std::size_t offset = 0;
  EXPECT_THROW((void)serve::decode_frame(bytes, offset), serve::WireError);
}

TEST(Wire, OversizedLengthFieldRejected) {
  std::string bytes = serve::encode_frame({serve::MsgType::Hello, ""});
  bytes[8] = bytes[9] = bytes[10] = bytes[11] = static_cast<char>(0xff);
  std::size_t offset = 0;
  EXPECT_THROW((void)serve::decode_frame(bytes, offset), serve::WireError);
}

TEST(Wire, TwoFramesDecodeBackToBack) {
  const std::string bytes = serve::encode_frame({serve::MsgType::Hello, "a"}) +
                            serve::encode_frame({serve::MsgType::Stats, ""});
  std::size_t offset = 0;
  const auto first = serve::decode_frame(bytes, offset);
  const auto second = serve::decode_frame(bytes, offset);
  ASSERT_TRUE(first && second);
  EXPECT_EQ(first->type, serve::MsgType::Hello);
  EXPECT_EQ(second->type, serve::MsgType::Stats);
  EXPECT_EQ(offset, bytes.size());
}

TEST(Wire, SocketRoundTripAndGarbageRejection) {
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  serve::write_frame(fds[0], {serve::MsgType::HelloAck, "banner"});
  const serve::Frame got = serve::read_frame(fds[1], 1000);
  EXPECT_EQ(got.type, serve::MsgType::HelloAck);
  EXPECT_EQ(got.payload, "banner");

  // junk bytes instead of a header: protocol violation, not a hang
  ASSERT_EQ(::send(fds[0], "not a frame.", 12, 0), 12);
  EXPECT_THROW((void)serve::read_frame(fds[1], 1000), serve::WireError);
  ::close(fds[0]);
  ::close(fds[1]);
}

// --- plan codec ---------------------------------------------------------------

TEST(PlanCodec, PlanRoundTripIsAFixpoint) {
  api::ExperimentPlan plan("codec, title\nwith hostile bytes");
  plan.source(kLaplace)
      .machines({"ipsc860", "paragon"})
      .nprocs({1, 2, 4, 8})
      .add_variant("(block,block)", {"distribute d(block,block)"}, 2)
      .add_variant("plain", {}, std::nullopt)
      .runs(5);
  front::Bindings b;
  b.set_int("n", 128);
  b.set("mask__prob", 0.375);
  plan.add_problem("n=128, tricky", b);
  sim::SimOptions so;
  so.seed = 0xdeadbeef12345678ULL;
  so.noise = false;
  plan.sim_options(so);

  const std::string once = serve::encode_plan(plan);
  const api::ExperimentPlan decoded = serve::decode_plan(once);
  EXPECT_EQ(serve::encode_plan(decoded), once);
  EXPECT_EQ(decoded.title(), plan.title());
  EXPECT_EQ(decoded.machine_names(), plan.machine_names());
  EXPECT_EQ(decoded.nprocs_list(), plan.nprocs_list());
  ASSERT_EQ(decoded.variants().size(), 2u);
  EXPECT_EQ(decoded.variants()[0].overrides, plan.variants()[0].overrides);
  EXPECT_EQ(decoded.variants()[0].grid_rank, plan.variants()[0].grid_rank);
  ASSERT_EQ(decoded.problems().size(), 1u);
  EXPECT_EQ(decoded.problems()[0].name, "n=128, tricky");
  EXPECT_EQ(decoded.problems()[0].bindings.get("mask__prob"), 0.375);
  EXPECT_EQ(decoded.sim_opts().seed, so.seed);
  EXPECT_FALSE(decoded.sim_opts().noise);
  EXPECT_EQ(decoded.measure_runs(), 5);
}

TEST(PlanCodec, ScaledAxisRoundTrips) {
  api::ExperimentPlan plan("weak scaling");
  plan.source(kLaplace).nprocs({1, 4});
  plan.problems_scaled_by_nprocs({64}, [](long long scaled) {
    front::Bindings b;
    b.set_int("n", scaled);
    return b;
  });
  const std::string once = serve::encode_plan(plan);
  const api::ExperimentPlan decoded = serve::decode_plan(once);
  EXPECT_EQ(serve::encode_plan(decoded), once);
  ASSERT_TRUE(decoded.scaled_by_nprocs());
  ASSERT_EQ(decoded.scaled_cases_list().size(), 2u);
  EXPECT_EQ(decoded.scaled_cases_list()[0].problem.name, "n=64");
  EXPECT_EQ(decoded.scaled_cases_list()[0].nprocs, 1);
  EXPECT_EQ(decoded.scaled_cases_list()[1].problem.name, "n=256");
  EXPECT_EQ(decoded.scaled_cases_list()[1].nprocs, 4);
  EXPECT_EQ(decoded.scaled_cases_list()[1].problem.bindings.get("n"), 256.0);
}

TEST(PlanCodec, StudyRoundTripIsAFixpoint) {
  study::StudyPlan plan("what-if latency study");
  plan.source(kLaplace)
      .base_machine("fattree")
      .knob_axis(study::Knob::Latency, {0.25, 1.0, 4.0})
      .knob_axis(study::Knob::Cpu, {0.5, 2.0})
      .add_reference_machine("ipsc860")
      .nprocs({1, 2, 4})
      .runs(0);
  const std::string once = serve::encode_study(plan);
  const study::StudyPlan decoded = serve::decode_study(once);
  EXPECT_EQ(serve::encode_study(decoded), once);
  EXPECT_EQ(decoded.base(), "fattree");
  ASSERT_EQ(decoded.family().axes().size(), 2u);
  EXPECT_EQ(decoded.family().axes()[1].values, (std::vector<double>{0.5, 2.0}));
  EXPECT_EQ(decoded.reference_machines(), (std::vector<std::string>{"ipsc860"}));
  EXPECT_EQ(decoded.inner().measure_runs(), 0);
}

TEST(PlanCodec, MalformedPayloadsRejected) {
  EXPECT_THROW((void)serve::decode_plan(""), serve::CodecError);
  EXPECT_THROW((void)serve::decode_plan("hpf90d-plan 9\n"), serve::CodecError);
  EXPECT_THROW((void)serve::decode_plan("not a plan at all"), serve::CodecError);
  const std::string good = serve::encode_plan(small_plan());
  // chopping anywhere inside the payload must throw, never crash
  for (std::size_t n = 1; n < good.size(); n += 17) {
    EXPECT_THROW((void)serve::decode_plan(good.substr(0, n)), serve::CodecError);
  }
  EXPECT_THROW((void)serve::decode_outcome("garbage"), serve::CodecError);
  EXPECT_THROW((void)serve::decode_stats("garbage"), serve::CodecError);
}

TEST(PlanCodec, OutcomeAndStatsRoundTrip) {
  serve::JobOutcome outcome;
  outcome.state = "done";
  outcome.is_study = true;
  outcome.title = "t";
  outcome.wall_seconds = 0.125;
  outcome.cache.compile_hits = 3;
  outcome.cache.layout_spill_hits = 7;
  outcome.body_csv = "a,b\n1,2\n";
  const serve::JobOutcome back = serve::decode_outcome(serve::encode_outcome(outcome));
  EXPECT_EQ(back.state, "done");
  EXPECT_TRUE(back.is_study);
  EXPECT_EQ(back.wall_seconds, 0.125);
  EXPECT_EQ(back.cache.compile_hits, 3u);
  EXPECT_EQ(back.cache.layout_spill_hits, 7u);
  EXPECT_EQ(back.body_csv, outcome.body_csv);

  serve::ServerStats stats;
  stats.cache.layout_misses = 11;
  stats.warmed_programs = 2;
  stats.jobs_done = 5;
  stats.spill_layouts_stored = 9;
  stats.jobs_coalesced = 3;
  stats.points_batched = 4000;
  stats.points_scalar = 17;
  stats.points_replayed = 2;
  stats.batch_ir_visits = 1250;
  stats.batch_lane_visits = 70000;
  stats.lanes_evicted = 21;
  stats.lanes_refilled = 19;
  stats.simd_stripes = 8750;
  stats.lanes_pooled = 5;
  stats.branches_speculated = 13;
  stats.lanes_speculated = 104;
  stats.queue_depth = 6;
  stats.jobs_running = 2;
  stats.slow_jobs = 1;
  stats.spill_dir_bytes = 123456789;
  stats.spill_dir_files = 42;
  const serve::ServerStats s2 = serve::decode_stats(serve::encode_stats(stats));
  EXPECT_EQ(s2.cache.layout_misses, 11u);
  EXPECT_EQ(s2.warmed_programs, 2u);
  EXPECT_EQ(s2.jobs_done, 5u);
  EXPECT_EQ(s2.spill_layouts_stored, 9u);
  EXPECT_EQ(s2.jobs_coalesced, 3u);
  EXPECT_EQ(s2.points_batched, 4000u);
  EXPECT_EQ(s2.points_scalar, 17u);
  EXPECT_EQ(s2.points_replayed, 2u);
  EXPECT_EQ(s2.batch_ir_visits, 1250u);
  EXPECT_EQ(s2.batch_lane_visits, 70000u);
  EXPECT_EQ(s2.lanes_evicted, 21u);
  EXPECT_EQ(s2.lanes_refilled, 19u);
  EXPECT_EQ(s2.simd_stripes, 8750u);
  EXPECT_EQ(s2.lanes_pooled, 5u);
  EXPECT_EQ(s2.branches_speculated, 13u);
  EXPECT_EQ(s2.lanes_speculated, 104u);
  EXPECT_EQ(s2.mean_lanes_per_visit(), 56.0);
  EXPECT_EQ(s2.queue_depth, 6u);
  EXPECT_EQ(s2.jobs_running, 2u);
  EXPECT_EQ(s2.slow_jobs, 1u);
  EXPECT_EQ(s2.spill_dir_bytes, 123456789u);
  EXPECT_EQ(s2.spill_dir_files, 42u);
  // encode∘decode is a fixpoint: re-encoding the decoded stats reproduces
  // the payload byte for byte
  EXPECT_EQ(serve::encode_stats(s2), serve::encode_stats(stats));
}

TEST(PlanCodec, StatsCodecIsStrictAboutVersionAndBatchLine) {
  const std::string good = serve::encode_stats(serve::ServerStats{});
  EXPECT_EQ(good.rfind("hpf90d-stats 5\n", 0), 0u);
  EXPECT_NE(good.find("\nbatch "), std::string::npos);
  EXPECT_NE(good.find("\nqueue "), std::string::npos);
  EXPECT_NE(good.find("\nspilldir "), std::string::npos);

  // older headers (v1: no batch line, v2/v3: narrower batch lines, v4: no
  // pool/speculation counters) are different wire formats — a version
  // mismatch is a hard error, never a best-effort parse
  for (const char* old : {"stats 1", "stats 2", "stats 3", "stats 4"}) {
    std::string stale = good;
    stale.replace(stale.find("stats 5"), 7, old);
    EXPECT_THROW((void)serve::decode_stats(stale), serve::CodecError);
  }

  // a batch line with missing or extra fields must throw, never misparse
  const std::size_t pos = good.find("\nbatch ");
  const std::size_t eol = good.find('\n', pos + 1);
  std::string missing = good;
  missing.replace(pos, eol - pos, "\nbatch 1 2 3 4 5 6 7 8 9");
  EXPECT_THROW((void)serve::decode_stats(missing), serve::CodecError);
  std::string extra = good;
  extra.replace(pos, eol - pos, "\nbatch 1 2 3 4 5 6 7 8 9 10 11 12 13");
  EXPECT_THROW((void)serve::decode_stats(extra), serve::CodecError);
}

TEST(PlanCodec, StatsV4LinesRejectMalformedFields) {
  const std::string good = serve::encode_stats(serve::ServerStats{});
  const auto mutate_line = [&good](const char* tag, const std::string& repl) {
    std::string out = good;
    const std::size_t pos = out.find(tag);
    EXPECT_NE(pos, std::string::npos) << tag;
    const std::size_t eol = out.find('\n', pos + 1);
    out.replace(pos, eol - pos, repl);
    return out;
  };
  // wrong arity, non-numeric fields, and a renamed keyword all throw
  EXPECT_THROW((void)serve::decode_stats(mutate_line("\nqueue ", "\nqueue 1 2")),
               serve::CodecError);
  EXPECT_THROW((void)serve::decode_stats(mutate_line("\nqueue ", "\nqueue 1 2 3 4")),
               serve::CodecError);
  EXPECT_THROW((void)serve::decode_stats(mutate_line("\nqueue ", "\nqueue a b c")),
               serve::CodecError);
  EXPECT_THROW(
      (void)serve::decode_stats(mutate_line("\nspilldir ", "\nspilldir 1")),
      serve::CodecError);
  EXPECT_THROW(
      (void)serve::decode_stats(mutate_line("\nspilldir ", "\nspilldir -1 2")),
      serve::CodecError);
  EXPECT_THROW(
      (void)serve::decode_stats(mutate_line("\nspilldir ", "\nqueue2 1 2")),
      serve::CodecError);
}

// --- job queue ----------------------------------------------------------------

TEST(JobQueue, FifoWithinOneTenant) {
  serve::JobQueue queue(/*tenant_inflight=*/8);
  const auto a = queue.submit("t", false, "1");
  const auto b = queue.submit("t", false, "2");
  const auto c = queue.submit("t", false, "3");
  EXPECT_EQ(queue.pop()->id, a);
  EXPECT_EQ(queue.pop()->id, b);
  EXPECT_EQ(queue.pop()->id, c);
}

TEST(JobQueue, RoundRobinAcrossTenants) {
  serve::JobQueue queue(/*tenant_inflight=*/8);
  (void)queue.submit("a", false, "a1");
  (void)queue.submit("a", false, "a2");
  (void)queue.submit("b", false, "b1");
  (void)queue.submit("b", false, "b2");
  (void)queue.submit("c", false, "c1");
  std::vector<std::string> order;
  for (int i = 0; i < 5; ++i) order.push_back(queue.pop()->payload);
  EXPECT_EQ(order, (std::vector<std::string>{"a1", "b1", "c1", "a2", "b2"}));
}

TEST(JobQueue, InflightCapSkipsSaturatedTenant) {
  serve::JobQueue queue(/*tenant_inflight=*/1);
  const auto a1 = queue.submit("a", false, "a1");
  const auto a2 = queue.submit("a", false, "a2");
  const auto b1 = queue.submit("b", false, "b1");
  EXPECT_EQ(queue.pop()->id, a1);
  // tenant a is at its cap: b runs next even though a2 was queued earlier
  EXPECT_EQ(queue.pop()->id, b1);
  queue.complete(a1, serve::JobState::Done, "ok");
  EXPECT_EQ(queue.pop()->id, a2);
  EXPECT_EQ(queue.status(a1), serve::JobState::Done);
}

TEST(JobQueue, CancelQueuedNotRunning) {
  serve::JobQueue queue;
  const auto a = queue.submit("t", false, "a");
  const auto b = queue.submit("t", false, "b");
  EXPECT_TRUE(queue.cancel(b));
  EXPECT_EQ(queue.status(b), serve::JobState::Cancelled);
  EXPECT_EQ(queue.pop()->id, a);
  EXPECT_FALSE(queue.cancel(a));  // running: not preemptible
  EXPECT_FALSE(queue.cancel(9999));
  const auto cancelled = queue.wait(b);
  ASSERT_TRUE(cancelled.has_value());
  EXPECT_EQ(cancelled->state, serve::JobState::Cancelled);
}

TEST(JobQueue, BackpressureThrowsWhenTenantQueueFull) {
  serve::JobQueue queue(/*tenant_inflight=*/1, /*tenant_queued=*/2);
  (void)queue.submit("t", false, "1");
  (void)queue.submit("t", false, "2");
  EXPECT_THROW((void)queue.submit("t", false, "3"), std::runtime_error);
  (void)queue.submit("other", false, "ok");  // other tenants unaffected
}

TEST(JobQueue, WaitBlocksUntilTerminalAndShutdownWakes) {
  serve::JobQueue queue;
  const auto id = queue.submit("t", false, "job");
  std::thread worker([&] {
    const auto job = queue.pop();
    ASSERT_TRUE(job.has_value());
    queue.complete(job->id, serve::JobState::Done, "the result");
  });
  const auto done = queue.wait(id);
  worker.join();
  ASSERT_TRUE(done.has_value());
  EXPECT_EQ(done->state, serve::JobState::Done);
  EXPECT_EQ(done->result, "the result");

  queue.shutdown();
  EXPECT_FALSE(queue.pop().has_value());
  EXPECT_FALSE(queue.wait(12345).has_value());
}

// --- artifact store -----------------------------------------------------------

TEST(ArtifactStore, PersistsProgramsAndSurvivesCorruptFiles) {
  const std::string root = scratch_path("store");
  {
    serve::ArtifactStore store(root);
    api::ProgramRecipe recipe;
    recipe.source = kLaplace;
    recipe.overrides = {"distribute d(block,block)"};
    recipe.options.message_vectorization = false;
    store.store_program("prog-key-1", recipe);
    EXPECT_EQ(store.programs_stored(), 1u);
  }
  {
    serve::ArtifactStore store(root);  // fresh instance: reads from disk
    const auto recipes = store.load_programs();
    ASSERT_EQ(recipes.size(), 1u);
    EXPECT_EQ(recipes[0].source, kLaplace);
    EXPECT_EQ(recipes[0].overrides,
              (std::vector<std::string>{"distribute d(block,block)"}));
    EXPECT_FALSE(recipes[0].options.message_vectorization);
  }
  // corrupt every artifact: loads degrade to misses / skips, not throws
  for (const auto& entry : fs::recursive_directory_iterator(root)) {
    if (entry.is_regular_file()) {
      std::ofstream(entry.path(), std::ios::trunc) << "corrupted";
    }
  }
  serve::ArtifactStore store(root);
  EXPECT_TRUE(store.load_programs().empty());
  EXPECT_FALSE(store.load_layout("prog-key-1").has_value());
  fs::remove_all(root);
}

TEST(ArtifactStore, LayoutRoundTripsThroughDisk) {
  const std::string root = scratch_path("store");
  const compiler::CompiledProgram prog = compiler::compile(kLaplace);
  compiler::LayoutOptions lo;
  lo.nprocs = 4;
  const compiler::DataLayout layout(prog.directives, prog.symbols, front::Bindings{}, lo);
  {
    serve::ArtifactStore store(root);
    store.store_layout("layout-key", layout);
  }
  serve::ArtifactStore store(root);
  const auto loaded = store.load_layout("layout-key");
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(compiler::serialize_layout(*loaded), compiler::serialize_layout(layout));
  EXPECT_FALSE(store.load_layout("some-other-key").has_value());
  fs::remove_all(root);
}

// --- daemon end to end --------------------------------------------------------

TEST(ExperimentServer, ServedReportMatchesLocalRunByteForByte) {
  ServerFixture fixture;
  serve::ServeClient client(fixture.options.socket_path, "tenant-1");
  client.connect();
  const api::ExperimentPlan plan = small_plan();
  const std::uint64_t id = client.submit(plan);
  const serve::JobResult result = client.wait(id);
  ASSERT_TRUE(result.ok()) << result.error;
  EXPECT_EQ(client.status(id), "done");

  api::Session local;
  const api::RunReport direct = local.run(plan);
  EXPECT_EQ(result.report.csv(), direct.csv());
  EXPECT_EQ(result.report.title, direct.title);
  EXPECT_GT(result.report.records.size(), 0u);
}

TEST(ExperimentServer, ServedStudyMatchesLocalRunByteForByte) {
  ServerFixture fixture;
  serve::ServeClient client(fixture.options.socket_path, "tenant-1");
  client.connect();
  study::StudyPlan plan("served study");
  plan.source(kLaplace)
      .knob_axis(study::Knob::Latency, {0.5, 2.0})
      .add_reference_machine("ipsc860")
      .nprocs({1, 4})
      .runs(0);
  const serve::JobResult result = client.wait(client.submit(plan));
  ASSERT_TRUE(result.ok()) << result.error;
  ASSERT_TRUE(result.is_study);

  api::Session local;
  const study::StudyResult direct = study::run_study(local, plan);
  EXPECT_EQ(result.study.csv(), direct.csv());
  EXPECT_EQ(result.study.machine_points.size(), direct.machine_points.size());
}

TEST(ExperimentServer, TwoConcurrentTenantsGetByteIdenticalReports) {
  ServerFixture fixture;
  const api::ExperimentPlan plan = small_plan("two tenants");
  std::string csv_a, csv_b;
  std::thread ta([&] {
    serve::ServeClient client(fixture.options.socket_path, "alice");
    client.connect();
    const serve::JobResult r = client.wait(client.submit(plan));
    ASSERT_TRUE(r.ok()) << r.error;
    csv_a = r.report.csv();
  });
  std::thread tb([&] {
    serve::ServeClient client(fixture.options.socket_path, "bob");
    client.connect();
    const serve::JobResult r = client.wait(client.submit(plan));
    ASSERT_TRUE(r.ok()) << r.error;
    csv_b = r.report.csv();
  });
  ta.join();
  tb.join();
  api::Session local;
  const std::string direct = local.run(plan).csv();
  EXPECT_EQ(csv_a, direct);
  EXPECT_EQ(csv_b, direct);
}

TEST(ExperimentServer, MalformedPlanFailsTheJobNotTheDaemon) {
  ServerFixture fixture;
  const int fd = connect_unix(fixture.options.socket_path);
  serve::write_frame(fd, {serve::MsgType::Hello, "abuser"});
  (void)serve::read_frame(fd, 2000);
  serve::write_frame(fd, {serve::MsgType::SubmitPlan, "this is not a plan"});
  const serve::Frame submitted = serve::read_frame(fd, 2000);
  ASSERT_EQ(submitted.type, serve::MsgType::Submitted);
  serve::write_frame(fd, {serve::MsgType::Wait, submitted.payload});
  const serve::Frame result = serve::read_frame(fd, 10000);
  ASSERT_EQ(result.type, serve::MsgType::Result);
  const serve::JobOutcome outcome = serve::decode_outcome(result.payload);
  EXPECT_EQ(outcome.state, "failed");
  EXPECT_FALSE(outcome.error.empty());
  ::close(fd);

  // the daemon still serves well-formed tenants
  serve::ServeClient client(fixture.options.socket_path, "good-tenant");
  client.connect();
  const serve::JobResult ok = client.wait(client.submit(small_plan()));
  EXPECT_TRUE(ok.ok()) << ok.error;
}

TEST(ExperimentServer, GarbageBytesDropTheConnectionOnly) {
  ServerFixture fixture;
  const int fd = connect_unix(fixture.options.socket_path);
  ASSERT_GT(::send(fd, "\xde\xad\xbe\xef garbage, not a frame header", 36, 0), 0);
  ::close(fd);

  serve::ServeClient client(fixture.options.socket_path, "tenant");
  client.connect();  // daemon is alive and answering
  const serve::ServerStats stats = client.stats();
  EXPECT_EQ(stats.jobs_failed, 0u);
}

TEST(ExperimentServer, CancelQueuedJobThroughTheProtocol) {
  serve::ServerOptions base;
  base.executors = 1;  // one lane: the second job queues behind the first
  ServerFixture fixture("", base);
  serve::ServeClient client(fixture.options.socket_path, "tenant");
  client.connect();
  api::ExperimentPlan busy = small_plan("busy");
  busy.nprocs({1, 2, 4, 8}).runs(3);
  const std::uint64_t first = client.submit(busy);
  const std::uint64_t second = client.submit(small_plan("victim"));
  EXPECT_TRUE(client.cancel(second));
  const serve::JobResult cancelled = client.wait(second);
  EXPECT_EQ(cancelled.state, "cancelled");
  const serve::JobResult done = client.wait(first);
  EXPECT_TRUE(done.ok()) << done.error;
  EXPECT_FALSE(client.cancel(first));  // terminal: "late"
}

TEST(ExperimentServer, RestartWithArtifactStoreServesWarmByteIdentical) {
  const std::string artifacts = scratch_path("warm");
  const std::string socket = scratch_path("warmsock") + ".sock";
  const api::ExperimentPlan plan = small_plan("restart determinism");

  std::string cold_csv;
  {
    serve::ServerOptions options;
    options.socket_path = socket;
    options.artifact_dir = artifacts;
    serve::ExperimentServer server(options);
    server.start();
    serve::ServeClient client(socket, "tenant");
    client.connect();
    const serve::JobResult cold = client.wait(client.submit(plan));
    ASSERT_TRUE(cold.ok()) << cold.error;
    cold_csv = cold.report.csv();
    EXPECT_EQ(cold.report.cache.layout_spill_hits, 0u);
    EXPECT_GT(cold.report.cache.compile_misses, 0u);
    server.stop();  // the "kill": in-memory caches die with the process
  }
  {
    serve::ExperimentServer server([&] {
      serve::ServerOptions options;
      options.socket_path = socket;
      options.artifact_dir = artifacts;
      return options;
    }());
    server.start();
    EXPECT_GT(server.warmed_programs(), 0u);
    serve::ServeClient client(socket, "tenant");
    client.connect();
    const serve::JobResult warm = client.wait(client.submit(plan));
    ASSERT_TRUE(warm.ok()) << warm.error;
    // byte-identical report, served from warm artifacts: every layout
    // miss answered by the spill, every compile a hit on a warmed recipe
    EXPECT_EQ(warm.report.csv(), cold_csv);
    EXPECT_GT(warm.report.cache.layout_spill_hits, 0u);
    EXPECT_EQ(warm.report.cache.compile_misses, 0u);
    server.stop();
  }
  fs::remove_all(artifacts);
}

TEST(ExperimentServer, ConcurrentClientStress) {
  serve::ServerOptions base;
  base.executors = 4;
  base.tenant_inflight = 2;
  ServerFixture fixture("", base);
  api::Session local;
  const std::string expected = local.run(small_plan("stress")).csv();

  constexpr int kClients = 4;
  constexpr int kJobsEach = 3;
  std::atomic<int> mismatches{0};
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      serve::ServeClient client(fixture.options.socket_path,
                                "tenant-" + std::to_string(c));
      client.connect();
      std::vector<std::uint64_t> ids;
      ids.reserve(kJobsEach);
      for (int j = 0; j < kJobsEach; ++j) {
        ids.push_back(client.submit(small_plan("stress")));
      }
      for (const std::uint64_t id : ids) {
        const serve::JobResult r = client.wait(id);
        if (!r.ok() || r.report.csv() != expected) mismatches.fetch_add(1);
      }
    });
  }
  for (auto& t : clients) t.join();
  EXPECT_EQ(mismatches.load(), 0);
  const serve::ServerStats stats = fixture.server->stats();
  EXPECT_EQ(stats.jobs_done, static_cast<std::size_t>(kClients * kJobsEach));
}

TEST(ExperimentServer, BatchTelemetrySurfacesThroughTheStatsEndpoint) {
  ServerFixture fixture;
  serve::ServeClient client(fixture.options.socket_path, "tenant");
  client.connect();
  api::ExperimentPlan plan = small_plan("telemetry");
  plan.nprocs({1, 2, 4, 8});
  const serve::JobResult r = client.wait(client.submit(plan));
  ASSERT_TRUE(r.ok()) << r.error;

  // the daemon runs sweeps batched by default; its lockstep effectiveness
  // is visible over the wire, and all points are accounted for
  const serve::ServerStats stats = client.stats();
  EXPECT_GT(stats.points_batched, 0u);
  EXPECT_EQ(stats.points_batched + stats.points_scalar + stats.points_replayed, 4u);
  EXPECT_GT(stats.batch_ir_visits, 0u);
  EXPECT_GT(stats.mean_lanes_per_visit(), 1.0);
  // the vectorized cost evaluator ran (8-lane stripes), and eviction /
  // refill totals stay consistent
  EXPECT_GT(stats.simd_stripes, 0u);
  EXPECT_LE(stats.lanes_refilled, stats.lanes_evicted);
}

TEST(ExperimentServer, StatsStreamOnChangePushesOnlyWhenCountersMove) {
  ServerFixture fixture;
  serve::ServeClient client(fixture.options.socket_path, "tenant");
  client.connect();

  // idle daemon: a plain stream delivers every sample, a changed-mode
  // stream collapses the burst to the first snapshot
  const auto plain = client.stats_stream(4, 1);
  EXPECT_EQ(plain.size(), 4u);
  const auto quiet = client.stats_stream(4, 1, /*on_change=*/true);
  ASSERT_EQ(quiet.size(), 1u);
  EXPECT_EQ(quiet[0].jobs_done, 0u);

  // activity between samples surfaces: running a job moves the watched
  // counters, so a later changed-mode burst starts from the new state
  api::ExperimentPlan plan = small_plan("stream-change");
  plan.nprocs({1, 2});
  const serve::JobResult r = client.wait(client.submit(plan));
  ASSERT_TRUE(r.ok()) << r.error;
  const auto after = client.stats_stream(3, 1, /*on_change=*/true);
  ASSERT_GE(after.size(), 1u);
  EXPECT_EQ(after[0].jobs_done, 1u);
  EXPECT_GT(after[0].points_batched + after[0].points_scalar, 0u);

  // bounds are still enforced in changed mode, and the connection
  // survives a rejected request
  {
    serve::ServeClient raw(fixture.options.socket_path, "tenant");
    raw.connect();
    EXPECT_THROW((void)raw.stats_stream(2, 70000, true), std::runtime_error);
    EXPECT_EQ(raw.stats_stream(1, 0, true).size(), 1u);
  }
}

TEST(ExperimentServer, IdenticalInflightJobsCoalesceToOneExecution) {
  serve::ServerOptions base;
  base.executors = 2;  // a follower can pop while the leader executes
  ServerFixture fixture("", base);
  serve::ServeClient client(fixture.options.socket_path, "tenant-a");
  client.connect();
  serve::ServeClient other(fixture.options.socket_path, "tenant-b");
  other.connect();

  // a heavy plan keeps the leader busy long enough that the back-to-back
  // identical submissions (same payload bytes = same content address) are
  // all in flight together
  api::ExperimentPlan heavy = small_plan("coalesce");
  heavy.nprocs({1, 2, 4, 8}).problems_from({32, 48, 64, 96, 128}, [](long long n) {
    front::Bindings b;
    b.set_int("n", n);
    return b;
  });
  heavy.runs(3);
  const std::uint64_t a = client.submit(heavy);
  const std::uint64_t b = other.submit(heavy);
  const serve::JobResult ra = client.wait(a);
  const serve::JobResult rb = other.wait(b);
  ASSERT_TRUE(ra.ok()) << ra.error;
  ASSERT_TRUE(rb.ok()) << rb.error;
  EXPECT_EQ(ra.report.csv(), rb.report.csv());

  const serve::ServerStats stats = fixture.server->stats();
  EXPECT_EQ(stats.jobs_done, 2u);
  // both tenants got an answer, but the sweep priced one tenant's points:
  // the follower shared the leader's execution
  if (stats.jobs_coalesced == 1u) {
    EXPECT_EQ(stats.points_batched + stats.points_scalar + stats.points_replayed,
              4u * 5u);
  } else {
    // the leader finished before the follower was popped (slow machine):
    // both executed, independently and identically
    EXPECT_EQ(stats.jobs_coalesced, 0u);
    EXPECT_EQ(stats.points_batched + stats.points_scalar + stats.points_replayed,
              2u * 4u * 5u);
  }
}

}  // namespace
}  // namespace hpf90d
