// Observability tests: span ring bounds and Chrome trace export, metrics
// registry semantics and deterministic Prometheus exposition, RunReport
// JSON round trip, report byte-identity with tracing on vs off, the
// daemon's METRICS / STATS_STREAM endpoints and slow-job log, client
// reconnection across a daemon restart, and concurrent stats/metrics
// polling (CI runs this binary under ThreadSanitizer).
#include <gtest/gtest.h>
#include <unistd.h>

#include <atomic>
#include <filesystem>
#include <memory>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "api/api.hpp"
#include "obs/metrics.hpp"
#include "obs/obs.hpp"
#include "serve/client.hpp"
#include "serve/plan_codec.hpp"
#include "serve/server.hpp"
#include "serve/wire.hpp"

namespace hpf90d {
namespace {

namespace fs = std::filesystem;

constexpr const char* kLaplace = R"f90(
program laplace
  parameter (n = 64)
  real u(n,n), unew(n,n)
!hpf$ template d(n,n)
!hpf$ align u(i,j) with d(i,j)
!hpf$ align unew(i,j) with d(i,j)
!hpf$ distribute d(block,*)
  forall (i = 2:n-1, j = 2:n-1) &
    unew(i,j) = 0.25*(u(i-1,j) + u(i+1,j) + u(i,j-1) + u(i,j+1))
  forall (i = 2:n-1, j = 2:n-1) u(i,j) = unew(i,j)
end program laplace
)f90";

std::string scratch_path(const std::string& tag) {
  static std::atomic<int> seq{0};
  return (fs::temp_directory_path() /
          ("hpf90d-obs-" + std::to_string(::getpid()) + "-" + tag + "-" +
           std::to_string(seq.fetch_add(1))))
      .string();
}

api::ExperimentPlan small_plan(const std::string& title = "obs test plan") {
  api::ExperimentPlan plan(title);
  plan.source(kLaplace)
      .nprocs({1, 2, 4})
      .add_variant("(block,*)", {"distribute d(block,*)"}, 1)
      .runs(2);
  return plan;
}

/// RAII daemon on a scratch socket (same shape as test_serve's fixture).
struct ServerFixture {
  explicit ServerFixture(serve::ServerOptions base = {}) {
    options = base;
    options.socket_path = scratch_path("sock") + ".sock";
    server = std::make_unique<serve::ExperimentServer>(options);
    server->start();
  }
  ~ServerFixture() {
    server->stop();
    std::error_code ec;
    fs::remove(options.socket_path, ec);
  }
  serve::ServerOptions options;
  std::unique_ptr<serve::ExperimentServer> server;
};

// --- spans and the tracer ring ------------------------------------------------

TEST(ObsSpan, NullSinkIsANoOp) {
  // the disabled path must be safe anywhere, at any nesting depth
  const obs::Span outer(nullptr, obs::Phase::Compile, 7);
  const obs::Span inner(nullptr, obs::Phase::LockstepWindow);
  SUCCEED();
}

TEST(ObsSpan, RecordsPhaseArgAndDuration) {
  obs::Tracer tracer(16);
  {
    obs::Span span(&tracer, obs::Phase::LayoutBuild, 3);
    span.set_arg(9);
  }
  const auto spans = tracer.snapshot();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(spans[0].phase, obs::Phase::LayoutBuild);
  EXPECT_EQ(spans[0].arg, 9u);
  EXPECT_GT(spans[0].start_ns, 0u);
  EXPECT_NE(spans[0].thread, 0u);
  EXPECT_EQ(tracer.recorded(), 1u);
  EXPECT_EQ(tracer.dropped(), 0u);
}

TEST(ObsTracer, RingOverwritesOldestAtFixedCapacity) {
  obs::Tracer tracer(8);
  for (std::uint64_t i = 0; i < 20; ++i) {
    tracer.record({obs::Phase::Compile, 1, i + 1, 1, i});
  }
  EXPECT_EQ(tracer.capacity(), 8u);
  EXPECT_EQ(tracer.recorded(), 20u);
  EXPECT_EQ(tracer.dropped(), 12u);
  const auto spans = tracer.snapshot();
  ASSERT_EQ(spans.size(), 8u);
  for (std::size_t i = 0; i < spans.size(); ++i) {
    EXPECT_EQ(spans[i].arg, 12u + i) << "ring must retain the newest, oldest first";
  }
  tracer.clear();
  EXPECT_TRUE(tracer.snapshot().empty());
  EXPECT_EQ(tracer.recorded(), 0u);
}

TEST(ObsTracer, ChromeTraceJsonListsSpansWithPhaseNames) {
  obs::Tracer tracer(8);
  tracer.record({obs::Phase::LockstepWindow, 5, 2000, 3000, 64});
  tracer.record({obs::Phase::ScalarReplay, 5, 6000, 1000, 2});
  const std::string json = tracer.chrome_trace_json();
  EXPECT_EQ(json.rfind("{\"traceEvents\":[", 0), 0u);
  EXPECT_NE(json.find("\"name\":\"lockstep_window\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"scalar_replay\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  // microsecond timebase: 2000ns -> ts 2.000, 3000ns -> dur 3.000
  EXPECT_NE(json.find("\"ts\":2.000,"), std::string::npos);
  EXPECT_NE(json.find("\"dur\":3.000,"), std::string::npos);
  // deterministic given equal ring contents
  EXPECT_EQ(json, tracer.chrome_trace_json());
}

TEST(ObsTracer, ConcurrentRecordingStaysBounded) {
  obs::Tracer tracer(64);
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&tracer, t] {
      for (std::uint64_t i = 0; i < 500; ++i) {
        const obs::Span span(&tracer, obs::Phase::MeasureBatch,
                             static_cast<std::uint64_t>(t) * 1000 + i);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(tracer.recorded(), 2000u);
  EXPECT_EQ(tracer.snapshot().size(), 64u);
  EXPECT_EQ(tracer.dropped(), 2000u - 64u);
}

// --- metrics registry ---------------------------------------------------------

TEST(ObsMetrics, InstrumentsHoldValues) {
  obs::Registry reg;
  auto& c = reg.counter("hpf90d_test_total", "a counter");
  c.add();
  c.add(41);
  EXPECT_EQ(c.value(), 42u);
  auto& g = reg.gauge("hpf90d_test_depth", "a gauge");
  g.set(2.5);
  EXPECT_EQ(g.value(), 2.5);
  auto& h = reg.histogram("hpf90d_test_seconds", "a histogram", {0.1, 1.0, 10.0});
  h.observe(0.05);
  h.observe(0.5);
  h.observe(5.0);
  h.observe(50.0);
  EXPECT_EQ(h.count(), 4u);
  EXPECT_DOUBLE_EQ(h.sum(), 55.55);
  EXPECT_EQ(h.bucket(0), 1u);  // cumulative: <= 0.1
  EXPECT_EQ(h.bucket(1), 2u);  // <= 1.0
  EXPECT_EQ(h.bucket(2), 3u);  // <= 10.0 (50.0 only in +Inf)
}

TEST(ObsMetrics, RegistrationIsIdempotentAndKindStrict) {
  obs::Registry reg;
  auto& a = reg.counter("hpf90d_jobs_total", "jobs");
  auto& b = reg.counter("hpf90d_jobs_total", "different help text");
  EXPECT_EQ(&a, &b) << "same name+kind must return the same instrument";
  EXPECT_THROW((void)reg.gauge("hpf90d_jobs_total", "oops"), std::logic_error);
  EXPECT_THROW((void)reg.histogram("hpf90d_jobs_total", "oops", {1.0}),
               std::logic_error);
}

TEST(ObsMetrics, PrometheusExpositionIsDeterministicAndSorted) {
  obs::Registry reg;
  // registered out of name order on purpose: exposition sorts
  reg.gauge("hpf90d_zz_depth", "last").set(3);
  reg.counter("hpf90d_aa_total", "first").add(7);
  auto& h = reg.histogram("hpf90d_mm_seconds", "middle", {0.5, 2.0});
  h.observe(0.25);
  h.observe(1.0);

  const std::string text = reg.prometheus();
  EXPECT_EQ(text, reg.prometheus()) << "equal state must render byte-identically";

  EXPECT_NE(text.find("# HELP hpf90d_aa_total first\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE hpf90d_aa_total counter\n"), std::string::npos);
  EXPECT_NE(text.find("hpf90d_aa_total 7\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE hpf90d_mm_seconds histogram\n"), std::string::npos);
  EXPECT_NE(text.find("hpf90d_mm_seconds_bucket{le=\"0.5\"} 1\n"), std::string::npos);
  EXPECT_NE(text.find("hpf90d_mm_seconds_bucket{le=\"2\"} 2\n"), std::string::npos);
  EXPECT_NE(text.find("hpf90d_mm_seconds_bucket{le=\"+Inf\"} 2\n"), std::string::npos);
  EXPECT_NE(text.find("hpf90d_mm_seconds_sum 1.25\n"), std::string::npos);
  EXPECT_NE(text.find("hpf90d_mm_seconds_count 2\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE hpf90d_zz_depth gauge\n"), std::string::npos);
  EXPECT_NE(text.find("hpf90d_zz_depth 3\n"), std::string::npos);
  EXPECT_LT(text.find("hpf90d_aa_total"), text.find("hpf90d_mm_seconds"));
  EXPECT_LT(text.find("hpf90d_mm_seconds"), text.find("hpf90d_zz_depth"));
}

TEST(ObsMetrics, LabeledChildrenRenderSortedAndCanonicalized) {
  obs::Registry reg;
  // the unlabeled sample and labeled children coexist in one family
  reg.counter("hpf90d_jobs", "jobs").add(10);
  reg.counter("hpf90d_jobs", "jobs", {{"tenant", "beta"}, {"state", "done"}}).add(2);
  reg.counter("hpf90d_jobs", "jobs", {{"tenant", "alpha"}, {"state", "done"}}).add(3);
  // label order in the call is irrelevant: canonicalization sorts by key,
  // so this resolves to the existing {state,tenant} child
  reg.counter("hpf90d_jobs", "jobs", {{"state", "done"}, {"tenant", "beta"}}).add(1);
  // values with quotes/backslashes/newlines are escaped, not corrupted
  reg.gauge("hpf90d_weird", "w", {{"k", "a\"b\\c\nd"}}).set(1);

  const std::string text = reg.prometheus();
  EXPECT_EQ(text, reg.prometheus());
  EXPECT_NE(text.find("hpf90d_jobs 10\n"), std::string::npos);
  EXPECT_NE(text.find("hpf90d_jobs{state=\"done\",tenant=\"alpha\"} 3\n"),
            std::string::npos);
  EXPECT_NE(text.find("hpf90d_jobs{state=\"done\",tenant=\"beta\"} 3\n"),
            std::string::npos);
  EXPECT_NE(text.find("hpf90d_weird{k=\"a\\\"b\\\\c\\nd\"} 1\n"), std::string::npos);
  // one HELP/TYPE block per family, unlabeled sample first, children in
  // label-block order
  EXPECT_EQ(text.find("# TYPE hpf90d_jobs counter"),
            text.rfind("# TYPE hpf90d_jobs counter"));
  EXPECT_LT(text.find("hpf90d_jobs 10"), text.find("{state=\"done\",tenant=\"alpha\"}"));
  EXPECT_LT(text.find("tenant=\"alpha\""), text.find("tenant=\"beta\""));
  // kind strictness applies to the family, labeled or not
  EXPECT_THROW((void)reg.gauge("hpf90d_jobs", "oops", {{"tenant", "x"}}),
               std::logic_error);
}

TEST(ObsMetrics, LabelCardinalityCollapsesIntoOverflowChild) {
  obs::Registry reg;
  for (std::size_t i = 0; i < obs::Registry::kMaxChildren + 50; ++i) {
    reg.counter("hpf90d_fan", "f", {{"tenant", "t" + std::to_string(i)}}).add();
  }
  // the cap holds: kMaxChildren distinct children plus one overflow child
  // absorbing everything past it
  const std::string text = reg.prometheus();
  std::size_t samples = 0;
  for (std::size_t pos = text.find("hpf90d_fan{"); pos != std::string::npos;
       pos = text.find("hpf90d_fan{", pos + 1)) {
    ++samples;
  }
  EXPECT_EQ(samples, obs::Registry::kMaxChildren + 1);
  EXPECT_NE(text.find("hpf90d_fan{tenant=\"_overflow\"} 50\n"), std::string::npos);
  // a label set that landed before the cap still resolves to its own child
  reg.counter("hpf90d_fan", "f", {{"tenant", "t0"}}).add();
  EXPECT_NE(reg.prometheus().find("hpf90d_fan{tenant=\"t0\"} 2\n"), std::string::npos);
}

TEST(ObsMetrics, ConcurrentUpdatesAreExact) {
  obs::Registry reg;
  auto& c = reg.counter("hpf90d_c_total", "c");
  auto& h = reg.histogram("hpf90d_h_seconds", "h", {1.0});
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 10000; ++i) {
        c.add();
        h.observe(0.5);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(c.value(), 40000u);
  EXPECT_EQ(h.count(), 40000u);
  EXPECT_DOUBLE_EQ(h.sum(), 20000.0);
}

// --- RunReport JSON -----------------------------------------------------------

api::RunReport sample_report() {
  api::RunReport report;
  report.title = "json \"quoted\"\ttitle";
  report.wall_seconds = 0.03125;
  report.cache = {3, 1, 10, 2, 1, 1, 8};
  report.batch.batched_points = 5;
  report.batch.scalar_points = 1;
  report.batch.replayed_points = 2;
  report.batch.ir_visits = 400;
  report.batch.lane_visits = 1600;
  report.batch.evicted_lanes = 3;
  report.batch.refilled_lanes = 2;
  report.batch.pooled_lanes = 1;
  report.batch.simd_stripes = 200;
  report.batch.speculated_branches = 4;
  report.batch.speculated_lanes = 48;
  api::RunRecord r;
  r.machine = "ipsc860";
  r.variant = "(block,*)";
  r.problem = "n=64";
  r.nprocs = 4;
  r.measured = true;
  r.comparison = {0.125, 0.13, 0.12, 0.14, 0.005};
  r.phases = {0.08, 0.03, 0.01, 0.005};
  report.records.push_back(r);
  r.machine = "paragon";
  r.nprocs = 8;
  r.measured = false;
  r.comparison = {0.25, 0, 0, 0, 0};
  r.phases = {0.2, 0.04, 0.01, 0};
  report.records.push_back(r);
  return report;
}

TEST(RunReportJson, RoundTripsEveryField) {
  const api::RunReport report = sample_report();
  const std::string text = report.json();
  const api::RunReport back = api::RunReport::from_json(text);

  EXPECT_EQ(back.title, report.title);
  EXPECT_EQ(back.wall_seconds, report.wall_seconds);
  EXPECT_EQ(back.cache.compile_hits, 3u);
  EXPECT_EQ(back.cache.layout_spill_hits, 1u);
  EXPECT_EQ(back.cache.layout_capacity, 8u);
  EXPECT_EQ(back.batch.batched_points, 5u);
  EXPECT_EQ(back.batch.ir_visits, 400u);
  EXPECT_EQ(back.batch.lane_visits, 1600u);
  EXPECT_EQ(back.batch.simd_stripes, 200u);
  EXPECT_EQ(back.batch.pooled_lanes, 1u);
  EXPECT_EQ(back.batch.speculated_branches, 4u);
  EXPECT_EQ(back.batch.speculated_lanes, 48u);
  ASSERT_EQ(back.records.size(), 2u);
  EXPECT_EQ(back.records[0].machine, "ipsc860");
  EXPECT_EQ(back.records[0].variant, "(block,*)");
  EXPECT_EQ(back.records[0].nprocs, 4);
  EXPECT_TRUE(back.records[0].measured);
  EXPECT_EQ(back.records[0].comparison.estimated, 0.125);
  EXPECT_EQ(back.records[0].comparison.measured_stddev, 0.005);
  EXPECT_EQ(back.records[0].phases.comp, 0.08);
  EXPECT_EQ(back.records[0].phases.wait, 0.005);
  EXPECT_FALSE(back.records[1].measured);
  EXPECT_EQ(back.records[1].machine, "paragon");

  // json ∘ from_json is a fixpoint on emitted documents
  EXPECT_EQ(back.json(), text);
  // and the batch telemetry survives (unlike the CSV export, which
  // deliberately excludes it)
  EXPECT_EQ(api::RunReport::from_csv(report.csv()).batch.ir_visits, 0u);
}

TEST(RunReportJson, EmptyReportRoundTrips) {
  const api::RunReport empty;
  const api::RunReport back = api::RunReport::from_json(empty.json());
  EXPECT_TRUE(back.records.empty());
  EXPECT_EQ(back.json(), empty.json());
}

TEST(RunReportJson, MalformedInputThrows) {
  const std::string good = sample_report().json();
  EXPECT_THROW((void)api::RunReport::from_json(""), std::invalid_argument);
  EXPECT_THROW((void)api::RunReport::from_json("not json"), std::invalid_argument);
  // truncation anywhere must throw, never misparse
  for (std::size_t n = 1; n < good.size() - 1; n += 23) {
    EXPECT_THROW((void)api::RunReport::from_json(good.substr(0, n)),
                 std::invalid_argument)
        << "prefix length " << n;
  }
  // trailing bytes are rejected
  EXPECT_THROW((void)api::RunReport::from_json(good + "x"), std::invalid_argument);
  // schema drift (a renamed key) is a hard error, not a zero-fill
  std::string renamed = good;
  renamed.replace(renamed.find("\"wall_seconds\""), 14, "\"wall_secondz\"");
  EXPECT_THROW((void)api::RunReport::from_json(renamed), std::invalid_argument);
}

// --- tracing must not perturb results -----------------------------------------

TEST(ObsSession, TracedRunReportIsByteIdenticalToUntraced) {
  const api::ExperimentPlan plan = small_plan("trace identity");

  api::Session plain_session;
  const api::RunReport plain = plain_session.run(plan);

  obs::Tracer tracer;
  obs::Registry registry;
  api::Session traced_session;
  traced_session.set_trace_sink(&tracer);
  api::RunOptions options;
  options.metrics = &registry;
  api::RunReport traced = traced_session.run(plan, options);

  // wall_seconds is host wall time — nondeterministic between any two
  // runs, traced or not — so normalize it; everything else must match.
  api::RunReport plain_n = plain;
  plain_n.wall_seconds = 0;
  traced.wall_seconds = 0;
  EXPECT_EQ(traced.ascii(), plain_n.ascii());
  EXPECT_EQ(traced.csv(), plain_n.csv());
  EXPECT_EQ(traced.json(), plain_n.json());

  // ...but the side channels saw the run
  EXPECT_GT(tracer.recorded(), 0u);
  const std::string text = registry.prometheus();
  EXPECT_NE(text.find("hpf90d_run_points_total 3\n"), std::string::npos) << text;
  bool saw_compile = false;
  for (const auto& span : tracer.snapshot()) {
    saw_compile = saw_compile || span.phase == obs::Phase::Compile;
  }
  EXPECT_TRUE(saw_compile);
}

TEST(ObsSession, RunScopedSinkOverridesSessionSink) {
  obs::Tracer session_ring(64);
  obs::Tracer run_ring(64);
  api::Session session;
  session.set_trace_sink(&session_ring);
  api::RunOptions options;
  options.trace = &run_ring;
  (void)session.run(small_plan("override"), options);
  EXPECT_GT(run_ring.recorded(), 0u);
}

// --- daemon telemetry ---------------------------------------------------------

TEST(ServeObs, MetricsEndpointServesPrometheusText) {
  serve::ServerOptions base;
  base.slow_job_ms = 1;  // any real sweep takes >= 1ms
  ServerFixture fixture(base);
  serve::ServeClient client(fixture.options.socket_path, "tenant-a");
  client.connect();
  const std::uint64_t id = client.submit(small_plan());
  ASSERT_TRUE(client.wait(id).ok());

  const std::string text = client.metrics();
  EXPECT_NE(text.find("# TYPE hpf90d_queue_depth gauge"), std::string::npos);
  EXPECT_NE(text.find("hpf90d_queue_depth 0\n"), std::string::npos);
  EXPECT_NE(text.find("hpf90d_jobs_done 1\n"), std::string::npos);
  EXPECT_NE(text.find("hpf90d_lockstep_occupancy"), std::string::npos);
  EXPECT_NE(text.find("hpf90d_spill_hit_ratio"), std::string::npos);
  EXPECT_NE(text.find("hpf90d_job_wall_seconds_count 1\n"), std::string::npos);
  // per-tenant terminal-state counters render as labeled children
  EXPECT_NE(text.find("hpf90d_tenant_jobs{state=\"done\",tenant=\"tenant-a\"} 1\n"),
            std::string::npos);
  EXPECT_NE(text.find("hpf90d_lanes_pooled"), std::string::npos);
  EXPECT_NE(text.find("hpf90d_branches_speculated"), std::string::npos);
  // idle daemon state renders identically on a second scrape
  EXPECT_EQ(client.metrics(), text);

  // the daemon's own tracer saw the job and the queue wait
  const auto spans = fixture.server->tracer().snapshot();
  bool saw_execute = false, saw_wait = false;
  for (const auto& span : spans) {
    saw_execute = saw_execute || span.phase == obs::Phase::JobExecute;
    saw_wait = saw_wait || span.phase == obs::Phase::QueueWait;
  }
  EXPECT_TRUE(saw_execute);
  EXPECT_TRUE(saw_wait);

  // slow-job log: threshold 1ms catches the sweep
  const auto slow = fixture.server->slow_jobs();
  ASSERT_FALSE(slow.empty());
  EXPECT_EQ(slow.back().id, id);
  EXPECT_EQ(slow.back().tenant, "tenant-a");
  EXPECT_GT(slow.back().wall_seconds, 0.0);
  const serve::ServerStats stats = client.stats();
  EXPECT_EQ(stats.slow_jobs, slow.size());
  EXPECT_EQ(stats.queue_depth, 0u);
  EXPECT_EQ(stats.jobs_running, 0u);
}

TEST(ServeObs, StatsStreamDeliversRequestedSnapshots) {
  ServerFixture fixture;
  serve::ServeClient client(fixture.options.socket_path, "tenant-s");
  client.connect();
  const auto snapshots = client.stats_stream(3, 5);
  ASSERT_EQ(snapshots.size(), 3u);
  for (const auto& s : snapshots) EXPECT_EQ(s.jobs_submitted, 0u);
  // bounds are enforced server-side
  EXPECT_THROW((void)client.stats_stream(0, 5), std::runtime_error);
  EXPECT_THROW((void)client.stats_stream(5000, 5), std::runtime_error);
  EXPECT_THROW((void)client.stats_stream(2, 60000), std::runtime_error);
  // the connection survives a rejected request
  EXPECT_EQ(client.stats_stream(1, 0).size(), 1u);
}

TEST(ServeObs, SpillDirUsageIsReported) {
  const std::string dir = scratch_path("artifacts");
  {
    serve::ServerOptions base;
    ServerFixture fixture{[&] {
      serve::ServerOptions o = base;
      o.artifact_dir = dir;
      return o;
    }()};
    serve::ServeClient client(fixture.options.socket_path, "tenant-d");
    client.connect();
    const std::uint64_t id = client.submit(small_plan());
    ASSERT_TRUE(client.wait(id).ok());
    const serve::ServerStats stats = client.stats();
    EXPECT_GT(stats.spill_dir_files, 0u);
    EXPECT_GT(stats.spill_dir_bytes, 0u);
  }
  std::error_code ec;
  fs::remove_all(dir, ec);
}

TEST(ServeObs, ClientReconnectsAcrossDaemonRestart) {
  serve::ServerOptions options;
  options.socket_path = scratch_path("sock") + ".sock";
  auto server = std::make_unique<serve::ExperimentServer>(options);
  server->start();

  serve::ServeClient client(options.socket_path, "tenant-r");
  client.set_retry({5, 10});
  client.connect();
  const std::uint64_t id = client.submit(small_plan());
  ASSERT_TRUE(client.wait(id).ok());

  // kill the daemon; the client's socket is now dead
  server->stop();
  server = std::make_unique<serve::ExperimentServer>(options);
  server->start();

  // retrying requests transparently re-handshake on a fresh socket
  const serve::ServerStats stats = client.stats();
  EXPECT_EQ(stats.jobs_submitted, 0u) << "restarted daemon starts from zero";
  const std::uint64_t id2 = client.submit(small_plan());
  EXPECT_TRUE(client.wait(id2).ok());

  server->stop();
  std::error_code ec;
  fs::remove(options.socket_path, ec);
}

TEST(ServeObs, ConnectRetriesUntilTheDaemonIsUp) {
  serve::ServerOptions options;
  options.socket_path = scratch_path("sock") + ".sock";
  serve::ExperimentServer server(options);

  std::thread late_start([&server] {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    server.start();
  });
  serve::ServeClient client(options.socket_path, "tenant-l");
  client.set_retry({8, 40});
  client.connect();  // throws if every attempt fails
  EXPECT_TRUE(client.connected());
  late_start.join();
  server.stop();
  std::error_code ec;
  fs::remove(options.socket_path, ec);

  // fail-fast policy still fails fast when nothing ever listens
  serve::ServeClient lonely(scratch_path("nowhere") + ".sock", "tenant-n");
  lonely.set_retry({1, 1});
  EXPECT_THROW(lonely.connect(), serve::WireError);
}

TEST(ServeObs, ConcurrentStatsAndMetricsPollsAreRaceFree) {
  // TSan target: pollers scrape stats/metrics/trace snapshots while jobs
  // execute and the tracer ring wraps
  serve::ServerOptions base;
  base.executors = 2;
  base.trace_capacity = 32;  // force ring wrap-around under load
  base.slow_job_ms = 1;
  ServerFixture fixture(base);

  std::atomic<bool> done{false};
  std::vector<std::thread> pollers;
  for (int t = 0; t < 3; ++t) {
    pollers.emplace_back([&fixture, &done] {
      serve::ServeClient poll(fixture.options.socket_path, "poller");
      poll.connect();
      while (!done.load()) {
        (void)poll.stats();
        (void)poll.metrics();
        (void)fixture.server->tracer().snapshot();
        (void)fixture.server->slow_jobs();
      }
    });
  }

  std::vector<std::thread> submitters;
  for (int t = 0; t < 2; ++t) {
    submitters.emplace_back([&fixture, t] {
      serve::ServeClient client(fixture.options.socket_path,
                                "tenant-" + std::to_string(t));
      client.connect();
      for (int i = 0; i < 3; ++i) {
        const std::uint64_t id =
            client.submit(small_plan("plan " + std::to_string(t * 10 + i)));
        ASSERT_TRUE(client.wait(id).ok());
      }
    });
  }
  for (auto& th : submitters) th.join();
  done.store(true);
  for (auto& th : pollers) th.join();

  const serve::ServerStats stats = fixture.server->stats();
  EXPECT_EQ(stats.jobs_done, 6u);
  EXPECT_GT(fixture.server->tracer().recorded(), 0u);
}

}  // namespace
}  // namespace hpf90d
