// Simulator tests: storage semantics, network contention, noise
// determinism, and functional correctness of simulated programs (the
// environment's "functional interpreter" role).
#include <gtest/gtest.h>

#include <cmath>

#include "compiler/pipeline.hpp"
#include "machine/ipsc860.hpp"
#include "sim/network.hpp"
#include "sim/simulator.hpp"
#include "sim/values.hpp"
#include "suite/suite.hpp"
#include "support/diagnostics.hpp"

namespace hpf90d {
namespace {

compiler::CompiledProgram comp(std::string_view src) { return compiler::compile(src); }

struct SimFixture {
  machine::MachineModel machine = machine::make_ipsc860();

  sim::MeasuredResult run(const compiler::CompiledProgram& prog, int nprocs,
                          const front::Bindings& bindings = {}, int runs = 2) {
    sim::Simulator simulator(machine);
    compiler::LayoutOptions lo;
    lo.nprocs = nprocs;
    return simulator.measure(prog, bindings, lo, {}, runs);
  }
};

// --- Storage -----------------------------------------------------------------

constexpr const char* kTiny = R"f90(
program t
  parameter (n = 8)
  real v(n), w(n)
!hpf$ template d(n)
!hpf$ align v(i) with d(i)
!hpf$ align w(i) with d(i)
!hpf$ distribute d(block)
  v(1) = 0.0
end program t
)f90";

TEST(Storage, RowMajorOffsets) {
  auto prog = comp(R"f90(
program t
  parameter (n = 4, m = 3)
  real a(n,m)
!hpf$ template d(n)
!hpf$ align a(i,j) with d(i)
!hpf$ distribute d(block)
  a(1,1) = 0.0
end program t
)f90");
  const compiler::DataLayout layout =
      compiler::make_layout(prog, {}, compiler::LayoutOptions{1, {}});
  sim::Storage storage(prog.symbols, layout);
  const int a = prog.symbols.find("a");
  const long long i11[2] = {1, 1};
  const long long i12[2] = {1, 2};
  const long long i21[2] = {2, 1};
  EXPECT_EQ(storage.offset(a, i11), 0u);
  EXPECT_EQ(storage.offset(a, i12), 1u);   // last dim contiguous
  EXPECT_EQ(storage.offset(a, i21), 3u);   // row stride = m
}

TEST(Storage, OutOfBoundsThrows) {
  auto prog = comp(kTiny);
  const compiler::DataLayout layout =
      compiler::make_layout(prog, {}, compiler::LayoutOptions{1, {}});
  sim::Storage storage(prog.symbols, layout);
  const int v = prog.symbols.find("v");
  const long long bad[1] = {9};
  const long long zero[1] = {0};
  EXPECT_THROW((void)storage.load(v, bad), support::CompileError);
  EXPECT_THROW((void)storage.load(v, zero), support::CompileError);
}

TEST(Storage, DefaultFillIsNearUnity) {
  auto prog = comp(kTiny);
  const compiler::DataLayout layout =
      compiler::make_layout(prog, {}, compiler::LayoutOptions{1, {}});
  sim::Storage storage(prog.symbols, layout);
  const int v = prog.symbols.find("v");
  for (long long i = 1; i <= 8; ++i) {
    const long long idx[1] = {i};
    const double x = storage.load(v, idx);
    EXPECT_GT(x, 0.85);
    EXPECT_LT(x, 1.15);
  }
}

TEST(Storage, CshiftSemanticsMatchFortran) {
  auto prog = comp(kTiny);
  const compiler::DataLayout layout =
      compiler::make_layout(prog, {}, compiler::LayoutOptions{1, {}});
  sim::Storage storage(prog.symbols, layout);
  const int v = prog.symbols.find("v");
  const int w = prog.symbols.find("w");
  for (long long i = 1; i <= 8; ++i) {
    const long long idx[1] = {i};
    storage.store(v, idx, static_cast<double>(i));
  }
  storage.cshift_into(w, v, 0, 1);  // w(i) = v(1 + mod(i-1+1, 8))
  const long long one[1] = {1};
  const long long eight[1] = {8};
  EXPECT_DOUBLE_EQ(storage.load(w, one), 2.0);
  EXPECT_DOUBLE_EQ(storage.load(w, eight), 1.0);  // wraps around
  storage.cshift_into(w, v, 0, -1);
  EXPECT_DOUBLE_EQ(storage.load(w, one), 8.0);
}

// --- network --------------------------------------------------------------------

TEST(Network, ContentionSerializesSharedLinks) {
  const machine::MachineModel m = machine::make_ipsc860();
  const std::vector<int> shape{8};
  sim::NoiseModel quiet(1, false);

  sim::SimNetwork contended(8, shape, m.node().comm, sim::SimNetworkOptions{true});
  sim::SimNetwork free_net(8, shape, m.node().comm, sim::SimNetworkOptions{false});

  // two messages crossing the same cube links at the same time
  const double a1 = contended.send(0, 7, 4096, 0.0, quiet);
  const double a2 = contended.send(0, 7, 4096, 0.0, quiet);
  const double b1 = free_net.send(0, 7, 4096, 0.0, quiet);
  const double b2 = free_net.send(0, 7, 4096, 0.0, quiet);
  EXPECT_GT(a2, a1);             // queued behind the first
  EXPECT_DOUBLE_EQ(b1, b2);      // contention off: independent
}

TEST(Network, SameNodeIsFree) {
  const machine::MachineModel m = machine::make_ipsc860();
  const std::vector<int> shape{4};
  sim::NoiseModel quiet(1, false);
  sim::SimNetwork net(4, shape, m.node().comm, {});
  EXPECT_DOUBLE_EQ(net.send(2, 2, 1000, 5.0, quiet), 5.0);
}

TEST(Network, MoreHopsTakeLonger) {
  const machine::MachineModel m = machine::make_ipsc860();
  const std::vector<int> shape{8};
  sim::NoiseModel quiet(1, false);
  sim::SimNetwork net(8, shape, m.node().comm, {});
  const int far = net.hops_between(0, 5);
  const int near = net.hops_between(0, 1);
  EXPECT_GT(far, near);
  sim::SimNetwork net2(8, shape, m.node().comm, {});
  const double t_near = net.send(0, 1, 1000, 0.0, quiet);
  const double t_far = net2.send(0, 5, 1000, 0.0, quiet);
  EXPECT_GT(t_far, t_near);
}

// --- noise ----------------------------------------------------------------------

TEST(Noise, DeterministicPerSeed) {
  sim::NoiseModel a(123, true), b(123, true), c(456, true);
  const double fa = a.compute_factor();
  EXPECT_DOUBLE_EQ(fa, b.compute_factor());
  bool differs = false;
  sim::NoiseModel a2(123, true);
  for (int i = 0; i < 16; ++i) {
    differs = differs || std::abs(a2.compute_factor() - c.compute_factor()) > 1e-12;
  }
  EXPECT_TRUE(differs);
}

TEST(Noise, DisabledIsExactlyUnity) {
  sim::NoiseModel off(1, false);
  for (int i = 0; i < 8; ++i) {
    EXPECT_DOUBLE_EQ(off.compute_factor(), 1.0);
    EXPECT_DOUBLE_EQ(off.comm_factor(), 1.0);
    EXPECT_DOUBLE_EQ(off.startup_skew(), 0.0);
  }
}

// --- functional execution ---------------------------------------------------------

TEST(Executor, PiProgramComputesPi) {
  SimFixture f;
  auto prog = comp(suite::app("pi").source);
  for (int p : {1, 4}) {
    const auto r = f.run(prog, p);
    ASSERT_TRUE(r.detail.printed.contains("pival"));
    EXPECT_NEAR(r.detail.printed.at("pival"), M_PI, 1e-4) << "P=" << p;
  }
}

TEST(Executor, ResultsIndependentOfProcessorCount) {
  SimFixture f;
  auto prog = comp(suite::app("pbs3").source);
  const double s1 = f.run(prog, 1).detail.printed.at("s");
  const double s8 = f.run(prog, 8).detail.printed.at("s");
  EXPECT_NEAR(s1, s8, 1e-9 * std::abs(s1));
}

TEST(Executor, Pbs4SumOfReciprocals) {
  SimFixture f;
  auto prog = comp(suite::app("pbs4").source);
  front::Bindings b;
  b.set_int("n", 128);
  const double r = f.run(prog, 2, b).detail.printed.at("r");
  // x(i) = 1 + i/n in [1,2] => sum(1/x) in [n/2, n]
  EXPECT_GT(r, 64.0);
  EXPECT_LT(r, 128.0);
}

TEST(Executor, LaplaceBoundaryPropagates) {
  SimFixture f;
  const auto& app = suite::app("laplace_bb");
  auto prog = compiler::compile_with_directives(app.source, app.directive_overrides);
  front::Bindings b;
  b.set_int("n", 16);  // boundary heat reaches the centre within 10 sweeps
  const auto r = f.run(prog, 4, b);
  // interior starts at 0, boundaries at 1; after sweeps the centre is
  // strictly between
  const double centre = r.detail.printed.at("u((n / 2),(n / 2))");
  EXPECT_GT(centre, 0.0);
  EXPECT_LT(centre, 1.0);
}

TEST(Executor, FinanceLatticeGrowsByU) {
  SimFixture f;
  auto prog = comp(suite::app("finance").source);
  const auto r = f.run(prog, 2);
  // after nstep multiplications by u=1.01: s = 50*1.01^16, payoff-discounted
  const double expected = (50.0 * std::pow(1.01, 16) - 50.0) * 0.95;
  EXPECT_NEAR(r.detail.printed.at("w(1)"), expected, 1e-6 * expected);
}

TEST(Executor, DeterministicGivenSeed) {
  SimFixture f;
  auto prog = comp(suite::app("lfk22").source);
  front::Bindings b;
  b.set_int("n", 128);
  const auto r1 = f.run(prog, 4, b, 1);
  const auto r2 = f.run(prog, 4, b, 1);
  EXPECT_DOUBLE_EQ(r1.stats.mean, r2.stats.mean);
}

TEST(Executor, NoiseCreatesVarianceAcrossRuns) {
  SimFixture f;
  auto prog = comp(suite::app("lfk1").source);
  front::Bindings b;
  b.set_int("n", 512);
  sim::Simulator simulator(f.machine);
  compiler::LayoutOptions lo;
  lo.nprocs = 4;
  const auto r = simulator.measure(prog, b, lo, {}, 5);
  EXPECT_EQ(r.stats.samples.size(), 5u);
  EXPECT_GT(r.stats.stddev, 0.0);
  EXPECT_LT(r.stats.stddev / r.stats.mean, 0.05);  // small, paper-like
  EXPECT_LE(r.stats.min, r.stats.mean);
  EXPECT_GE(r.stats.max, r.stats.mean);
}

TEST(Executor, MoreProcessorsReduceLargeProblemTime) {
  SimFixture f;
  auto prog = comp(suite::app("lfk9").source);
  front::Bindings b;
  b.set_int("n", 4096);
  const double t1 = f.run(prog, 1, b).stats.mean;
  const double t8 = f.run(prog, 8, b).stats.mean;
  EXPECT_LT(t8, t1);
  // speedup may exceed P when per-processor working sets start fitting in
  // the 8 KB D-cache; it stays within a sane envelope
  EXPECT_GT(t8, t1 / 16.0);
}

TEST(Executor, MaskedForallCountsOnlyTrueIterations) {
  SimFixture f;
  auto masked = comp(R"f90(
program t
  parameter (n = 2048)
  real v(n), w(n)
!hpf$ template d(n)
!hpf$ align v(i) with d(i)
!hpf$ align w(i) with d(i)
!hpf$ distribute d(block)
  forall (i = 1:n) v(i) = real(i)
  forall (i = 1:n, v(i) .gt. real(n)) w(i) = v(i)*2.0 + 1.0
end program t
)f90");
  auto full = comp(R"f90(
program t
  parameter (n = 2048)
  real v(n), w(n)
!hpf$ template d(n)
!hpf$ align v(i) with d(i)
!hpf$ align w(i) with d(i)
!hpf$ distribute d(block)
  forall (i = 1:n) v(i) = real(i)
  forall (i = 1:n, v(i) .gt. 0.0) w(i) = v(i)*2.0 + 1.0
end program t
)f90");
  // mask never true (v <= n) vs always true: the all-true variant is slower
  const double t_masked = f.run(masked, 1).stats.mean;
  const double t_full = f.run(full, 1).stats.mean;
  EXPECT_LT(t_masked, t_full);
}

TEST(Executor, WhileLoopTripLimitGuards) {
  SimFixture f;
  auto prog = comp(R"f90(
program t
  x = 1.0
  do while (x .gt. 0.0)
    x = x + 1.0
  end do
end program t
)f90");
  sim::Simulator simulator(f.machine);
  compiler::LayoutOptions lo;
  lo.nprocs = 1;
  sim::SimOptions so;
  so.max_while_trips = 100;
  EXPECT_THROW((void)simulator.measure(prog, {}, lo, so, 1), support::CompileError);
}

TEST(Executor, RunIntoMatchesRunBitForBit) {
  SimFixture f;
  const auto& app = suite::app("laplace_bb");
  auto prog = comp(app.source);
  compiler::LayoutOptions lo;
  lo.nprocs = 4;
  const compiler::DataLayout layout(prog.directives, prog.symbols, app.bindings(32), lo);
  sim::SimOptions so;

  sim::Executor fresh(prog, layout, f.machine, so, app.bindings(32));
  const sim::SimResult reference = fresh.run();

  // a reused arena with stale contents from another program must produce
  // the identical result after rebind + run_into
  sim::Executor arena;
  arena.rebind(prog, layout, f.machine, so, app.bindings(32));
  sim::SimResult out;
  arena.run_into(out);
  arena.rebind(prog, layout, f.machine, so, app.bindings(32));
  arena.run_into(out);  // second fill reuses out's buffers
  EXPECT_EQ(out.total, reference.total);
  EXPECT_EQ(out.proc_clock, reference.proc_clock);
  EXPECT_EQ(out.comp, reference.comp);
  EXPECT_EQ(out.comm, reference.comm);
  EXPECT_EQ(out.overhead, reference.overhead);
  EXPECT_EQ(out.printed, reference.printed);
  EXPECT_EQ(out.scalars, reference.scalars);
  ASSERT_EQ(out.per_node.size(), reference.per_node.size());
  for (std::size_t i = 0; i < out.per_node.size(); ++i) {
    EXPECT_EQ(out.per_node[i].total(), reference.per_node[i].total()) << i;
    EXPECT_EQ(out.per_node[i].visits, reference.per_node[i].visits) << i;
  }
}

TEST(Executor, MeasureIntoMatchesMeasureBitForBit) {
  SimFixture f;
  const auto& app = suite::app("pi");
  auto prog = comp(app.source);
  compiler::LayoutOptions lo;
  lo.nprocs = 4;
  const compiler::DataLayout layout(prog.directives, prog.symbols, app.bindings(256), lo);
  sim::Simulator simulator(f.machine);
  const sim::MeasuredResult reference =
      simulator.measure(prog, app.bindings(256), layout, {}, 3);

  sim::Executor arena;
  sim::MeasuredResult out;
  out.stats.samples.assign(17, -1.0);  // stale contents must be discarded
  simulator.measure_into(prog, app.bindings(256), layout, {}, 3, arena, out);
  EXPECT_EQ(out.stats.mean, reference.stats.mean);
  EXPECT_EQ(out.stats.min, reference.stats.min);
  EXPECT_EQ(out.stats.max, reference.stats.max);
  EXPECT_EQ(out.stats.stddev, reference.stats.stddev);
  EXPECT_EQ(out.stats.samples, reference.stats.samples);
  EXPECT_EQ(out.detail.total, reference.detail.total);
  EXPECT_EQ(out.detail.printed, reference.detail.printed);
}

TEST(Executor, ScalarsReportedForValidation) {
  SimFixture f;
  auto prog = comp(suite::app("lfk2").source);
  const auto r = f.run(prog, 2, suite::app("lfk2").bindings(128));
  // after the level loop ii has halved log2(128)=7 times: 128 -> 1
  ASSERT_TRUE(r.detail.scalars.contains("ii"));
  EXPECT_DOUBLE_EQ(r.detail.scalars.at("ii"), 1.0);
}

}  // namespace
}  // namespace hpf90d
