// Core interpretation framework tests: AAG/SAAG abstraction, critical
// variables, interpretation functions, engine behaviour, output module.
#include <gtest/gtest.h>

#include "compiler/pipeline.hpp"
#include "core/aag.hpp"
#include "core/critical.hpp"
#include "core/engine.hpp"
#include "core/output.hpp"
#include "machine/ipsc860.hpp"
#include "suite/suite.hpp"
#include "support/diagnostics.hpp"

namespace hpf90d {
namespace {

struct CoreFixture {
  machine::MachineModel machine = machine::make_ipsc860();

  core::PredictionResult predict(const compiler::CompiledProgram& prog, int nprocs,
                                 const front::Bindings& bindings = {},
                                 core::PredictOptions options = {}) {
    compiler::LayoutOptions lo;
    lo.nprocs = nprocs;
    return core::predict(prog, bindings, lo, machine, options);
  }
};

TEST(AAG, ClassifiesSuiteConstructs) {
  auto prog = compiler::compile(suite::app("pi").source);
  core::SynchronizedAAG saag(prog);
  int iter_d = 0, reduct = 0, io = 0, seq = 0;
  for (const auto& aau : saag.aaus()) {
    switch (aau.kind) {
      case core::AAUKind::IterD: ++iter_d; break;
      case core::AAUKind::Reduct: ++reduct; break;
      case core::AAUKind::IO: ++io; break;
      case core::AAUKind::Seq: ++seq; break;
      default: break;
    }
  }
  EXPECT_EQ(iter_d, 1);
  EXPECT_EQ(reduct, 1);
  EXPECT_EQ(io, 1);
  EXPECT_GE(seq, 2);  // program + scalar assigns
}

TEST(AAG, MaskedForallIsCondtD) {
  auto prog = compiler::compile(R"f90(
program t
  parameter (n = 32)
  real v(n)
!hpf$ template d(n)
!hpf$ align v(i) with d(i)
!hpf$ distribute d(block)
  forall (i = 1:n, v(i) .gt. 0.0) v(i) = 1.0/v(i)
end program t
)f90");
  core::SynchronizedAAG saag(prog);
  bool found = false;
  for (const auto& aau : saag.aaus()) {
    found = found || aau.kind == core::AAUKind::CondtD;
  }
  EXPECT_TRUE(found);
}

TEST(AAG, CommTableListsEveryCommAau) {
  const auto& app = suite::app("laplace_bb");
  auto prog = compiler::compile_with_directives(app.source, app.directive_overrides);
  core::SynchronizedAAG saag(prog);
  EXPECT_EQ(saag.comm_table().size(), 4u);  // the four overlap exchanges
  for (const auto& entry : saag.comm_table()) {
    EXPECT_EQ(entry.pattern, "nearest neighbour");
    EXPECT_GE(entry.array_symbol, 0);
  }
}

TEST(AAG, SyncEdgesConnectComputePhases) {
  auto prog = compiler::compile(suite::app("nbody").source);
  core::SynchronizedAAG saag(prog);
  EXPECT_FALSE(saag.sync_edges().empty());
  for (const auto& e : saag.sync_edges()) {
    EXPECT_GE(e.comm, 0);
  }
}

TEST(AAG, PerLineIndexAndSubtree) {
  auto prog = compiler::compile(suite::app("pi").source);
  core::SynchronizedAAG saag(prog);
  // line 11 of the pi source holds the forall
  bool any_line = false;
  for (const auto& aau : saag.aaus()) {
    if (aau.loc.valid()) {
      EXPECT_FALSE(saag.aaus_on_line(aau.loc.line).empty());
      any_line = true;
    }
  }
  EXPECT_TRUE(any_line);
  const auto whole = saag.subtree(saag.root());
  EXPECT_EQ(whole.size(), saag.aaus().size());
}

// --- critical variables -------------------------------------------------------

TEST(Critical, ParametersResolveByTracing) {
  auto prog = compiler::compile(suite::app("lfk1").source);
  const auto report = core::analyze_critical(prog, {});
  EXPECT_TRUE(report.complete());
  // n and niter steer control flow
  EXPECT_NE(std::find(report.critical.begin(), report.critical.end(), "n"),
            report.critical.end());
  EXPECT_NE(std::find(report.critical.begin(), report.critical.end(), "niter"),
            report.critical.end());
}

TEST(Critical, ScalarDefinitionPathsTraced) {
  // LFK2's ii/ipnt/ipntp are computed scalars feeding loop bounds
  auto prog = compiler::compile(suite::app("lfk2").source);
  const auto report = core::analyze_critical(prog, {});
  EXPECT_TRUE(report.complete());
  EXPECT_NE(std::find(report.traced.begin(), report.traced.end(), "ii"),
            report.traced.end());
}

TEST(Critical, DataDependentBoundRequiresBinding) {
  auto prog = compiler::compile(R"f90(
program t
  parameter (n = 32)
  real v(n)
  integer k
!hpf$ template d(n)
!hpf$ align v(i) with d(i)
!hpf$ distribute d(block)
  k = int(sum(v))
  forall (i = 1:k) v(i) = 0.0
end program t
)f90");
  const auto report = core::analyze_critical(prog, {});
  EXPECT_FALSE(report.complete());
  EXPECT_EQ(report.unresolved, std::vector<std::string>{"k"});

  front::Bindings b;
  b.set_int("k", 16);
  const auto bound = core::analyze_critical(prog, b);
  EXPECT_TRUE(bound.complete());
  EXPECT_EQ(bound.bound, std::vector<std::string>{"k"});
}

TEST(Critical, PredictThrowsOnUnresolved) {
  CoreFixture f;
  auto prog = compiler::compile(R"f90(
program t
  parameter (n = 32)
  real v(n)
  integer k
!hpf$ template d(n)
!hpf$ align v(i) with d(i)
!hpf$ distribute d(block)
  k = int(sum(v))
  forall (i = 1:k) v(i) = 0.0
end program t
)f90");
  EXPECT_THROW((void)f.predict(prog, 2), support::CompileError);
  front::Bindings b;
  b.set_int("k", 16);
  EXPECT_NO_THROW((void)f.predict(prog, 2, b));
}

// --- interpretation functions ----------------------------------------------------

TEST(InterpFn, IterDScalesLinearlyInIterations) {
  const machine::MachineModel m = machine::make_ipsc860();
  core::InterpretationFunctions fn(m.node());
  compiler::OpCounts ops;
  ops.fadd = 2;
  ops.fmul = 1;
  ops.loads = 2;
  ops.stores = 1;
  const auto e1 = fn.iter_d(ops, 100, 4, 1 << 20);
  const auto e2 = fn.iter_d(ops, 200, 4, 1 << 20);
  EXPECT_NEAR(e2.comp, 2.0 * e1.comp, 1e-12);
  EXPECT_GT(e1.overhead, 0.0);
}

TEST(InterpFn, MaskProbabilityScalesBody) {
  const machine::MachineModel m = machine::make_ipsc860();
  core::InterpretationFunctions fn(m.node());
  compiler::OpCounts body;
  body.fmul = 4;
  body.loads = 4;
  compiler::OpCounts mask;
  mask.fadd = 1;
  const auto full = fn.condt_d(body, mask, 1.0, 1000, 4, 1 << 20);
  const auto half = fn.condt_d(body, mask, 0.5, 1000, 4, 1 << 20);
  const auto none = fn.condt_d(body, mask, 0.0, 1000, 4, 1 << 20);
  EXPECT_GT(full.comp, half.comp);
  EXPECT_GT(half.comp, none.comp);
  EXPECT_GT(none.comp, 0.0);  // mask evaluation itself is charged
}

TEST(InterpFn, MemoryHeuristicCapacityDiscount) {
  const machine::MachineModel m = machine::make_ipsc860();
  core::InterpretationFunctions fn(m.node());
  const double in_cache = fn.memory_per_iteration(4, 4, 4 * 1024);
  const double out_of_cache = fn.memory_per_iteration(4, 4, 1 << 22);
  EXPECT_LT(in_cache, out_of_cache);
}

// --- engine ------------------------------------------------------------------------

TEST(Engine, PredictionScalesWithProblemSize) {
  CoreFixture f;
  auto prog = compiler::compile(suite::app("lfk22").source);
  front::Bindings small, big;
  small.set_int("n", 256);
  big.set_int("n", 4096);
  const double t_small = f.predict(prog, 1, small).total;
  const double t_big = f.predict(prog, 1, big).total;
  EXPECT_NEAR(t_big / t_small, 16.0, 2.0);
}

TEST(Engine, ParallelSpeedupOnComputeBoundKernel) {
  CoreFixture f;
  auto prog = compiler::compile(suite::app("lfk9").source);
  front::Bindings b;
  b.set_int("n", 4096);
  const double t1 = f.predict(prog, 1, b).total;
  const double t8 = f.predict(prog, 8, b).total;
  EXPECT_GT(t1 / t8, 4.0);
  EXPECT_LT(t1 / t8, 8.5);
}

TEST(Engine, CommChargedOnlyWhenDistributed) {
  CoreFixture f;
  const auto& app = suite::app("laplace_bb");
  auto prog = compiler::compile_with_directives(app.source, app.directive_overrides);
  const auto p1 = f.predict(prog, 1);
  const auto p4 = f.predict(prog, 4);
  // at P=1 only the host print communicates; the P=4 boundary exchanges
  // add substantially on top of that fixed cost
  EXPECT_GT(p4.comm, p1.comm + 500e-6);
}

TEST(Engine, MaskProbabilityBindingHonoured) {
  CoreFixture f;
  auto prog = compiler::compile(R"f90(
program t
  parameter (n = 4096)
  real v(n)
!hpf$ template d(n)
!hpf$ align v(i) with d(i)
!hpf$ distribute d(block)
  forall (i = 1:n, v(i) .gt. 0.0) v(i) = v(i)*2.0
end program t
)f90");
  front::Bindings all, none;
  all.set("mask__prob", 1.0);
  none.set("mask__prob", 0.0);
  EXPECT_GT(f.predict(prog, 1, all).total, f.predict(prog, 1, none).total);
}

TEST(Engine, WaitTimeAppearsOnImbalancedLoops) {
  CoreFixture f;
  // iteration space covers only the first half of the template: the upper
  // processors idle until the reduction synchronizes
  auto prog = compiler::compile(R"f90(
program t
  parameter (n = 4096)
  real v(n)
  real q
!hpf$ template d(n)
!hpf$ align v(i) with d(i)
!hpf$ distribute d(block)
  forall (i = 1:n/2) v(i) = real(i)*2.0
  q = sum(v)
  print *, q
end program t
)f90");
  const auto pred = f.predict(prog, 4);
  EXPECT_GT(pred.wait, 0.0);
}

TEST(Engine, TraceRecordsEventsWhenEnabled) {
  CoreFixture f;
  auto prog = compiler::compile(suite::app("pi").source);
  core::PredictOptions opts;
  opts.trace = true;
  const auto pred = f.predict(prog, 4, {}, opts);
  EXPECT_FALSE(pred.trace.empty());
  for (const auto& ev : pred.trace) {
    EXPECT_LE(ev.t_begin, ev.t_end);
    EXPECT_GE(ev.proc, 0);
    EXPECT_LT(ev.proc, 4);
  }
}

TEST(Engine, PerAauMetricsSumToTotals) {
  CoreFixture f;
  auto prog = compiler::compile(suite::app("finance").source);
  const auto pred = f.predict(prog, 4);
  double comp = 0, comm = 0;
  for (const auto& m : pred.per_aau) {
    comp += m.comp;
    comm += m.comm;
  }
  EXPECT_NEAR(comp, pred.comp, 1e-12);
  EXPECT_NEAR(comm, pred.comm, 1e-12);
}

// --- output module -------------------------------------------------------------------

TEST(Output, ProfileContainsBreakdownAndTopAaus) {
  CoreFixture f;
  auto prog = compiler::compile(suite::app("pi").source);
  core::SynchronizedAAG saag(prog);
  const auto pred = f.predict(prog, 4);
  core::OutputModule out(saag, pred);
  const std::string profile = out.profile();
  EXPECT_NE(profile.find("computation:"), std::string::npos);
  EXPECT_NE(profile.find("communication:"), std::string::npos);
  EXPECT_NE(profile.find("sum reduction"), std::string::npos);
}

TEST(Output, WholeProgramEqualsSubAagOfRoot) {
  CoreFixture f;
  auto prog = compiler::compile(suite::app("finance").source);
  core::SynchronizedAAG saag(prog);
  const auto pred = f.predict(prog, 4);
  core::OutputModule out(saag, pred);
  const auto whole = out.whole_program();
  const auto root = out.sub_aag(saag.root());
  EXPECT_NEAR(whole.total(), root.total(), 1e-12);
}

TEST(Output, LineQueryReturnsWork) {
  CoreFixture f;
  auto prog = compiler::compile(suite::app("pi").source);
  core::SynchronizedAAG saag(prog);
  const auto pred = f.predict(prog, 2);
  core::OutputModule out(saag, pred);
  // find the forall's line and expect nonzero computation there
  for (const auto& aau : saag.aaus()) {
    if (aau.kind == core::AAUKind::IterD) {
      EXPECT_GT(out.line(aau.loc.line).comp, 0.0);
    }
  }
}

TEST(Output, ParagraphTraceFormat) {
  CoreFixture f;
  auto prog = compiler::compile(suite::app("pi").source);
  core::SynchronizedAAG saag(prog);
  core::PredictOptions opts;
  opts.trace = true;
  const auto pred = f.predict(prog, 2, {}, opts);
  core::OutputModule out(saag, pred);
  const std::string trace = out.paragraph_trace();
  EXPECT_NE(trace.find("-3 "), std::string::npos);   // compute begin
  EXPECT_NE(trace.find("-21 "), std::string::npos);  // comm begin
}

}  // namespace
}  // namespace hpf90d
