// Support-library and reporting tests: diagnostics, text utilities, table
// rendering, series rendering, F77 round-trips, and the cluster machine
// abstraction (§7 extension).
#include <gtest/gtest.h>

#include "core/engine.hpp"
#include "compiler/pipeline.hpp"
#include "driver/report.hpp"
#include "machine/cluster.hpp"
#include "machine/ipsc860.hpp"
#include "suite/suite.hpp"
#include "support/diagnostics.hpp"
#include "support/table.hpp"
#include "support/text.hpp"

namespace hpf90d {
namespace {

TEST(Diagnostics, LocationsRender) {
  support::SourceLoc loc{12, 7};
  EXPECT_EQ(loc.str(), "12:7");
  EXPECT_EQ(support::SourceLoc{}.str(), "<unknown>");
  EXPECT_FALSE(support::SourceLoc{}.valid());
}

TEST(Diagnostics, EngineCollectsAndChecks) {
  support::DiagnosticEngine diags;
  diags.warning({1, 1}, "w");
  EXPECT_FALSE(diags.has_errors());
  EXPECT_NO_THROW(diags.check("stage"));
  diags.error({2, 3}, "boom");
  diags.error({4, 5}, "again");
  EXPECT_EQ(diags.error_count(), 2u);
  EXPECT_THROW(diags.check("stage"), support::CompileError);
  EXPECT_NE(diags.str().find("2:3: error: boom"), std::string::npos);
  EXPECT_NE(diags.str().find("warning: w"), std::string::npos);
}

TEST(Diagnostics, CompileErrorCarriesLocation) {
  support::CompileError err(support::SourceLoc{9, 2}, "bad");
  EXPECT_EQ(err.loc().line, 9u);
  EXPECT_NE(std::string(err.what()).find("9:2"), std::string::npos);
}

TEST(Text, CaseFolding) {
  EXPECT_EQ(support::to_lower("ForAll"), "forall");
  EXPECT_EQ(support::to_upper("block"), "BLOCK");
  EXPECT_TRUE(support::iequals("CSHIFT", "cshift"));
  EXPECT_FALSE(support::iequals("a", "ab"));
}

TEST(Text, TrimAndSplit) {
  EXPECT_EQ(support::trim("  x y \t"), "x y");
  const auto parts = support::split("a,b,,c", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[2], "");
  EXPECT_TRUE(support::starts_with_ci("!HPF$ align", "!hpf$"));
}

TEST(Text, Formatters) {
  EXPECT_EQ(support::format_seconds(1.5), "1.500 s");
  EXPECT_EQ(support::format_seconds(2.5e-3), "2.500 ms");
  EXPECT_EQ(support::format_seconds(7.0e-6), "7.0 us");
  EXPECT_EQ(support::format_bytes(512), "512 B");
  EXPECT_EQ(support::format_bytes(2048), "2.00 KB");
  EXPECT_EQ(support::strfmt("%d-%s", 4, "x"), "4-x");
}

TEST(Table, AlignmentAndRules) {
  support::TextTable t({"name", "value"});
  t.add_row({"alpha", "1.25"});
  t.add_rule();
  t.add_row({"a-very-long-name", "9"});
  const std::string s = t.str();
  // numeric cells right-aligned, text cells left-aligned
  EXPECT_NE(s.find("| alpha            |"), std::string::npos);
  EXPECT_NE(s.find("|  1.25 |"), std::string::npos);
  EXPECT_EQ(t.rows(), 2u);
  // a rule appears between the two data rows (4 rules total)
  std::size_t rules = 0, pos = 0;
  while ((pos = s.find("+-", pos)) != std::string::npos) {
    ++rules;
    pos += 2;
  }
  EXPECT_GE(rules, 4u);
}

TEST(Report, SeriesRendering) {
  driver::Comparison cmp;
  cmp.estimated = 0.5;
  cmp.measured_mean = 0.4;
  const std::string s = driver::render_series("ttl", {{64, cmp}});
  EXPECT_NE(s.find("# ttl"), std::string::npos);
  EXPECT_NE(s.find("0.500000"), std::string::npos);
  EXPECT_NE(s.find("25.00"), std::string::npos);  // 25% error
}

// --- §7 extension: second machine abstraction ---------------------------------

TEST(Cluster, DecompositionAndParameters) {
  const machine::MachineModel lan = machine::make_cluster(8);
  EXPECT_GE(lan.sag.find("sparc workstation"), 0);
  EXPECT_GE(lan.sag.find("ethernet segment"), 0);
  // cluster node is faster, network much slower than the cube
  const machine::MachineModel cube = machine::make_ipsc860();
  EXPECT_LT(lan.node().proc.t_fadd, cube.node().proc.t_fadd);
  EXPECT_GT(lan.node().comm.latency_short, 10 * cube.node().comm.latency_short);
}

TEST(Cluster, ChangesTheScalingStory) {
  const auto& app = suite::app("laplace_bx");
  auto prog = compiler::compile_with_directives(app.source, app.directive_overrides);
  const machine::MachineModel cube = machine::make_ipsc860();
  const machine::MachineModel lan = machine::make_cluster();
  const front::Bindings b = app.bindings(64);

  compiler::LayoutOptions p1;
  p1.nprocs = 1;
  compiler::LayoutOptions p8;
  p8.nprocs = 8;

  const double cube1 = core::predict(prog, b, p1, cube).total;
  const double cube8 = core::predict(prog, b, p8, cube).total;
  const double lan1 = core::predict(prog, b, p1, lan).total;
  const double lan8 = core::predict(prog, b, p8, lan).total;

  EXPECT_LT(lan1, cube1);                      // faster node wins serially
  EXPECT_LT(cube8, cube1);                     // the cube scales at n=64
  EXPECT_GT(lan8 / lan1, cube8 / cube1);       // the LAN scales far worse
}

TEST(Cluster, SameProgramSameAnswerDifferentTime) {
  // interpretation is machine-parameterized only: swapping the SAG never
  // touches the program or its abstraction
  auto prog = compiler::compile(suite::app("pi").source);
  const machine::MachineModel cube = machine::make_ipsc860();
  const machine::MachineModel lan = machine::make_cluster();
  compiler::LayoutOptions lo;
  lo.nprocs = 4;
  const auto a = core::predict(prog, {}, lo, cube);
  const auto b = core::predict(prog, {}, lo, lan);
  EXPECT_EQ(a.per_aau.size(), b.per_aau.size());
  EXPECT_NE(a.total, b.total);
}

}  // namespace
}  // namespace hpf90d
