// Lexer unit tests: tokens, literals, continuation lines, directive
// collection, dot-operators, and error handling.
#include <gtest/gtest.h>

#include "hpf/lexer.hpp"
#include "support/diagnostics.hpp"

namespace hpf90d::front {
namespace {

std::vector<Token> toks(std::string_view src) { return lex_source(src).tokens; }

TEST(Lexer, EmptySourceYieldsEof) {
  const auto t = toks("");
  ASSERT_EQ(t.size(), 1u);
  EXPECT_EQ(t[0].kind, TokenKind::Eof);
}

TEST(Lexer, IdentifiersAreLowerCased) {
  const auto t = toks("Program LFK1");
  EXPECT_EQ(t[0].text, "program");
  EXPECT_EQ(t[1].text, "lfk1");
}

TEST(Lexer, IntegerLiteralValue) {
  const auto t = toks("4096");
  EXPECT_EQ(t[0].kind, TokenKind::IntLiteral);
  EXPECT_EQ(t[0].int_value, 4096);
  EXPECT_DOUBLE_EQ(t[0].real_value, 4096.0);
}

TEST(Lexer, RealLiteralForms) {
  const auto t = toks("1.5 0.5e-3 2e10 1.d0 .25");
  ASSERT_GE(t.size(), 5u);
  EXPECT_EQ(t[0].kind, TokenKind::RealLiteral);
  EXPECT_DOUBLE_EQ(t[0].real_value, 1.5);
  EXPECT_DOUBLE_EQ(t[1].real_value, 0.5e-3);
  EXPECT_DOUBLE_EQ(t[2].real_value, 2e10);
  EXPECT_DOUBLE_EQ(t[3].real_value, 1.0);  // Fortran d-exponent
  EXPECT_DOUBLE_EQ(t[4].real_value, 0.25);
}

TEST(Lexer, DotOperators) {
  const auto t = toks("a .lt. b .and. .not. c .or. d .ge. e");
  EXPECT_EQ(t[1].kind, TokenKind::Lt);
  EXPECT_EQ(t[3].kind, TokenKind::And);
  EXPECT_EQ(t[4].kind, TokenKind::Not);
  EXPECT_EQ(t[6].kind, TokenKind::Or);
  EXPECT_EQ(t[8].kind, TokenKind::Ge);
}

TEST(Lexer, LogicalLiterals) {
  const auto t = toks(".true. .false.");
  EXPECT_EQ(t[0].kind, TokenKind::TrueLiteral);
  EXPECT_EQ(t[1].kind, TokenKind::FalseLiteral);
}

TEST(Lexer, SymbolicRelationalOperators) {
  const auto t = toks("a < b <= c > d >= e == f /= g");
  EXPECT_EQ(t[1].kind, TokenKind::Lt);
  EXPECT_EQ(t[3].kind, TokenKind::Le);
  EXPECT_EQ(t[5].kind, TokenKind::Gt);
  EXPECT_EQ(t[7].kind, TokenKind::Ge);
  EXPECT_EQ(t[9].kind, TokenKind::Eq);
  EXPECT_EQ(t[11].kind, TokenKind::Ne);
}

TEST(Lexer, PowerVersusStar) {
  const auto t = toks("a ** b * c");
  EXPECT_EQ(t[1].kind, TokenKind::Power);
  EXPECT_EQ(t[3].kind, TokenKind::Star);
}

TEST(Lexer, DoubleColon) {
  const auto t = toks("real :: x");
  EXPECT_EQ(t[1].kind, TokenKind::DoubleColon);
}

TEST(Lexer, CommentsAreSkipped) {
  const auto t = toks("x = 1 ! trailing comment\n! full line comment\ny = 2");
  // x = 1 EOL y = 2 EOL EOF
  ASSERT_EQ(t.size(), 9u);
  EXPECT_EQ(t[3].kind, TokenKind::Eol);
  EXPECT_EQ(t[4].text, "y");
}

TEST(Lexer, ContinuationJoinsLines) {
  const auto t = toks("x = a + &\n    b");
  // single statement: x = a + b EOL EOF
  std::size_t eols = 0;
  for (const auto& tok : t) {
    if (tok.kind == TokenKind::Eol) ++eols;
  }
  EXPECT_EQ(eols, 1u);
}

TEST(Lexer, ContinuationWithLeadingAmpersand) {
  const auto t = toks("x = a + &\n  & b");
  std::size_t eols = 0;
  for (const auto& tok : t) {
    if (tok.kind == TokenKind::Eol) ++eols;
  }
  EXPECT_EQ(eols, 1u);
  // 'b' must appear as an identifier
  bool saw_b = false;
  for (const auto& tok : t) saw_b = saw_b || tok.is_word("b");
  EXPECT_TRUE(saw_b);
}

TEST(Lexer, DirectiveLinesAreCollectedNotTokenized) {
  const LexResult r = lex_source("x = 1\n!hpf$ distribute t(block)\ny = 2");
  ASSERT_EQ(r.directives.size(), 1u);
  EXPECT_EQ(r.directives[0].text, " distribute t(block)");
  for (const auto& tok : r.tokens) {
    EXPECT_FALSE(tok.is_word("distribute"));
  }
}

TEST(Lexer, ChpfSentinelAccepted) {
  const LexResult r = lex_source("chpf$ processors p(4)\n");
  ASSERT_EQ(r.directives.size(), 1u);
}

TEST(Lexer, DirectiveLocationTracksLine) {
  const LexResult r = lex_source("x = 1\n\n!hpf$ template t(n)\n");
  ASSERT_EQ(r.directives.size(), 1u);
  EXPECT_EQ(r.directives[0].loc.line, 3u);
}

TEST(Lexer, UnknownCharacterThrows) {
  EXPECT_THROW((void)lex_source("x = #"), support::CompileError);
}

TEST(Lexer, MalformedDotOperatorThrows) {
  EXPECT_THROW((void)lex_source("a .bogus. b"), support::CompileError);
}

TEST(Lexer, SourceLocationsAreOneBased) {
  const auto t = toks("  x = 1");
  EXPECT_EQ(t[0].loc.line, 1u);
  EXPECT_EQ(t[0].loc.column, 3u);
}

TEST(Lexer, DotBetweenDigitsIsRealNotOperator) {
  const auto t = toks("1.and.x");  // `1.` would be malformed real + and
  // Fortran tokenization subtlety: digit '.' followed by letters is a
  // dot-operator boundary; we expect Int(1) And Ident(x)
  EXPECT_EQ(t[0].kind, TokenKind::IntLiteral);
  EXPECT_EQ(t[1].kind, TokenKind::And);
  EXPECT_EQ(t[2].text, "x");
}

TEST(Lexer, LexLineProducesEolAndEof) {
  const auto t = lex_line("block , *", support::SourceLoc{7, 1});
  ASSERT_GE(t.size(), 5u);
  EXPECT_EQ(t[0].text, "block");
  EXPECT_EQ(t[t.size() - 2].kind, TokenKind::Eol);
  EXPECT_EQ(t.back().kind, TokenKind::Eof);
  EXPECT_EQ(t[0].loc.line, 7u);
}

}  // namespace
}  // namespace hpf90d::front
