// LayoutStore semantics: exact LRU eviction order, the capacity-0
// unbounded default, per-entry once-build behaviour (single-flight for one
// key, parallel builds for distinct keys — the property that replaced PR
// 2's build-under-shard-lock serialization), and failed-build retry.
#include <gtest/gtest.h>

#include <atomic>
#include <latch>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "api/layout_store.hpp"
#include "compiler/pipeline.hpp"
#include "suite/suite.hpp"

namespace hpf90d {
namespace {

/// A real (tiny) DataLayout to populate entries with; the store's behaviour
/// under test is key-driven, so every entry can share one shape.
compiler::DataLayout tiny_layout() {
  static const compiler::CompiledProgram prog =
      compiler::compile(suite::app("pi").source);
  compiler::LayoutOptions lo;
  lo.nprocs = 1;
  return compiler::make_layout(prog, suite::app("pi").bindings(16), lo);
}

TEST(LayoutStore, CapacityZeroIsUnbounded) {
  api::LayoutStore store;  // default capacity 0
  for (int i = 0; i < 100; ++i) {
    (void)store.get_or_build("key" + std::to_string(i), tiny_layout);
  }
  EXPECT_EQ(store.size(), 100u);
  EXPECT_EQ(store.counters().misses, 100u);
  EXPECT_EQ(store.counters().hits, 0u);
  EXPECT_EQ(store.counters().evictions, 0u);
}

TEST(LayoutStore, EvictsInExactLruOrder) {
  api::LayoutStore store(2);
  (void)store.get_or_build("a", tiny_layout);
  (void)store.get_or_build("b", tiny_layout);
  EXPECT_EQ(store.size(), 2u);

  // touching "a" promotes it, so inserting "c" must evict "b", not "a"
  (void)store.get_or_build("a", tiny_layout);
  (void)store.get_or_build("c", tiny_layout);
  EXPECT_EQ(store.size(), 2u);
  EXPECT_EQ(store.counters().evictions, 1u);

  api::LayoutStore::Counters before = store.counters();
  (void)store.get_or_build("a", tiny_layout);  // still resident: hit
  EXPECT_EQ(store.counters().hits, before.hits + 1);
  before = store.counters();
  (void)store.get_or_build("b", tiny_layout);  // evicted: re-miss
  EXPECT_EQ(store.counters().misses, before.misses + 1);
}

TEST(LayoutStore, ShrinkingCapacityEvictsColdestImmediately) {
  api::LayoutStore store;
  for (const char* k : {"a", "b", "c", "d", "e"}) (void)store.get_or_build(k, tiny_layout);
  (void)store.get_or_build("a", tiny_layout);  // promote "a" over b..e

  store.set_capacity(2);
  EXPECT_EQ(store.size(), 2u);
  EXPECT_EQ(store.counters().evictions, 3u);
  // the survivors are the two hottest: "e" and the re-touched "a"
  api::LayoutStore::Counters before = store.counters();
  (void)store.get_or_build("a", tiny_layout);
  (void)store.get_or_build("e", tiny_layout);
  EXPECT_EQ(store.counters().hits, before.hits + 2);
  EXPECT_EQ(store.counters().misses, before.misses);
}

TEST(LayoutStore, EvictedEntriesStayAliveForHolders) {
  api::LayoutStore store(1);
  const api::LayoutStore::LayoutPtr held = store.get_or_build("a", tiny_layout);
  (void)store.get_or_build("b", tiny_layout);  // evicts "a"
  EXPECT_EQ(store.counters().evictions, 1u);
  EXPECT_EQ(held->nprocs(), 1);  // the shared_ptr keeps the layout valid
}

TEST(LayoutStore, SingleFlightPerKey) {
  api::LayoutStore store;
  std::atomic<int> builds{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&] {
      (void)store.get_or_build("shared", [&] {
        ++builds;
        return tiny_layout();
      });
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(builds.load(), 1);
  EXPECT_EQ(store.counters().misses, 1u);
  EXPECT_EQ(store.counters().hits, 7u);
}

TEST(LayoutStore, DistinctKeysBuildConcurrently) {
  // Every builder waits until all four are in flight at once: if builds
  // were serialized (PR 2 built entries under the shard lock), the latch
  // would never open. This is also the ThreadSanitizer exercise for the
  // insert-placeholder/build-outside locking discipline.
  constexpr int kBuilders = 4;
  api::LayoutStore store;
  std::latch in_flight(kBuilders);
  std::vector<std::thread> threads;
  for (int t = 0; t < kBuilders; ++t) {
    threads.emplace_back([&, t] {
      (void)store.get_or_build("key" + std::to_string(t), [&] {
        in_flight.arrive_and_wait();
        return tiny_layout();
      });
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(store.size(), static_cast<std::size_t>(kBuilders));
  EXPECT_EQ(store.counters().misses, static_cast<std::size_t>(kBuilders));
}

TEST(LayoutStore, FailedBuildPropagatesAndRetries) {
  api::LayoutStore store;
  EXPECT_THROW((void)store.get_or_build(
                   "bad", []() -> compiler::DataLayout {
                     throw std::runtime_error("boom");
                   }),
               std::runtime_error);
  EXPECT_EQ(store.size(), 0u);  // the placeholder is withdrawn
  // the key is buildable again afterwards
  (void)store.get_or_build("bad", tiny_layout);
  EXPECT_EQ(store.size(), 1u);
  EXPECT_EQ(store.counters().misses, 2u);
}

TEST(LayoutStore, ClearDropsEverything) {
  api::LayoutStore store;
  (void)store.get_or_build("a", tiny_layout);
  (void)store.get_or_build("b", tiny_layout);
  store.clear();
  EXPECT_EQ(store.size(), 0u);
  (void)store.get_or_build("a", tiny_layout);
  EXPECT_EQ(store.counters().misses, 3u);
}

}  // namespace
}  // namespace hpf90d
