// Semantic analysis + constant folding + scalar evaluation tests.
#include <gtest/gtest.h>

#include "compiler/eval.hpp"
#include "hpf/fold.hpp"
#include "hpf/parser.hpp"
#include "hpf/sema.hpp"
#include "support/diagnostics.hpp"

namespace hpf90d {
namespace {

using front::Program;
using front::SymbolTable;

struct Analyzed {
  Program prog;
  SymbolTable symbols;
};

Analyzed analyze_body(std::string_view body) {
  Analyzed a{front::parse_program("program t\n" + std::string(body) +
                                  "\nend program t\n"),
             {}};
  a.symbols = front::analyze(a.prog);
  return a;
}

TEST(Sema, ImplicitTypingRule) {
  auto a = analyze_body("k = 1\nx = 2.0");
  EXPECT_EQ(a.symbols.at(a.symbols.find("k")).type, front::TypeBase::Integer);
  EXPECT_EQ(a.symbols.at(a.symbols.find("x")).type, front::TypeBase::Real);
}

TEST(Sema, ArrayCallDisambiguation) {
  auto a = analyze_body("real v(10)\nx = v(3) + max(1.0, 2.0)");
  const front::Expr& rhs = *a.prog.stmts[0]->rhs;
  EXPECT_EQ(rhs.args[0]->kind, front::ExprKind::ArrayRef);
  EXPECT_EQ(rhs.args[1]->kind, front::ExprKind::Call);
}

TEST(Sema, WrongSubscriptCountThrows) {
  EXPECT_THROW((void)analyze_body("real v(10)\nx = v(1, 2)"), support::CompileError);
}

TEST(Sema, UndeclaredArrayThrows) {
  EXPECT_THROW((void)analyze_body("x = q(1:5)"), support::CompileError);
}

TEST(Sema, RankAnnotation) {
  auto a = analyze_body("real a(4,5)\nreal b(4,5)\nb = a");
  EXPECT_EQ(a.prog.stmts[0]->lhs->rank, 2);
  EXPECT_EQ(a.prog.stmts[0]->rhs->rank, 2);
}

TEST(Sema, NonConformableAssignThrows) {
  EXPECT_THROW((void)analyze_body("real a(4,5)\nreal b(4)\nb = a"),
               support::CompileError);
}

TEST(Sema, NonConformableBinaryThrows) {
  EXPECT_THROW((void)analyze_body("real a(4,5)\nreal b(4)\nx = sum(a + b)"),
               support::CompileError);
}

TEST(Sema, TypePromotion) {
  auto a = analyze_body("double precision d\nk = 1\nx = d + k");
  EXPECT_EQ(a.prog.stmts[1]->rhs->type, front::TypeBase::Double);
}

TEST(Sema, ReductionRankRules) {
  auto a = analyze_body("real a(4,5)\nreal p(4)\nx = sum(a)\np = sum(a, 2)");
  EXPECT_EQ(a.prog.stmts[0]->rhs->rank, 0);
  EXPECT_EQ(a.prog.stmts[1]->rhs->rank, 1);
}

TEST(Sema, MaxlocRequiresRank1) {
  EXPECT_NO_THROW((void)analyze_body("real v(9)\nk = maxloc(v)"));
  EXPECT_THROW((void)analyze_body("real a(3,3)\nk = maxloc(a)"), support::CompileError);
}

TEST(Sema, CshiftTyping) {
  auto a = analyze_body("real v(8)\nreal w(8)\nw = cshift(v, 1)");
  EXPECT_EQ(a.prog.stmts[0]->rhs->rank, 1);
}

TEST(Sema, ForallMaskMustBeLogical) {
  EXPECT_THROW((void)analyze_body("real v(8)\nforall (i = 1:8, v(i)) v(i) = 0.0"),
               support::CompileError);
  EXPECT_NO_THROW(
      (void)analyze_body("real v(8)\nforall (i = 1:8, v(i) .gt. 0.0) v(i) = 0.0"));
}

TEST(Sema, IfConditionMustBeScalarLogical) {
  EXPECT_THROW((void)analyze_body("real v(8)\nif (v .gt. 0.0) then\nx = 1\nend if"),
               support::CompileError);
}

TEST(Sema, IntrinsicArgCountChecked) {
  EXPECT_THROW((void)analyze_body("x = exp(1.0, 2.0)"), support::CompileError);
  EXPECT_THROW((void)analyze_body("x = mod(1)"), support::CompileError);
}

TEST(Sema, VectorSubscriptAccepted) {
  auto a = analyze_body("real e(8)\ninteger ix(8)\nreal v(8)\n"
                        "forall (i = 1:8) v(i) = e(ix(i))");
  SUCCEED();
}

TEST(Sema, VectorSubscriptMustBeInteger) {
  EXPECT_THROW((void)analyze_body("real e(8)\nreal rx(8)\nreal v(8)\n"
                                  "forall (i = 1:8) v(i) = e(rx(i))"),
               support::CompileError);
}

TEST(Sema, ParameterConstantsFolded) {
  auto a = analyze_body("parameter (n = 16, m = n*2)\nreal v(m)\nv(1) = 0.0");
  const front::Symbol& m = a.symbols.at(a.symbols.find("m"));
  ASSERT_TRUE(m.const_value.has_value());
  EXPECT_DOUBLE_EQ(*m.const_value, 32.0);
}

TEST(Sema, DuplicateDeclarationThrows) {
  EXPECT_THROW((void)analyze_body("real x\nreal x\nx = 1.0"), support::CompileError);
}

// --- fold ------------------------------------------------------------------

TEST(Fold, IntegerDivisionTruncates) {
  front::Bindings env;
  EXPECT_EQ(front::fold_int(*front::parse_expression_text("7/2"), env), 3);
  EXPECT_EQ(front::fold_int(*front::parse_expression_text("(0-7)/2"), env), -3);
}

TEST(Fold, MixedDivisionIsReal) {
  front::Bindings env;
  EXPECT_DOUBLE_EQ(front::fold_scalar(*front::parse_expression_text("7.0/2"), env), 3.5);
}

TEST(Fold, BindingsResolveNames) {
  front::Bindings env;
  env.set_int("n", 128);
  EXPECT_EQ(front::fold_int(*front::parse_expression_text("2*n + 1"), env), 257);
}

TEST(Fold, UnresolvedNameReturnsNullopt) {
  front::Bindings env;
  EXPECT_FALSE(front::try_fold(*front::parse_expression_text("n + 1"), env).has_value());
  EXPECT_THROW((void)front::fold_scalar(*front::parse_expression_text("n + 1"), env),
               support::CompileError);
}

TEST(Fold, IntrinsicFolding) {
  front::Bindings env;
  EXPECT_DOUBLE_EQ(front::fold_scalar(*front::parse_expression_text("sqrt(9.0)"), env), 3.0);
  EXPECT_EQ(front::fold_int(*front::parse_expression_text("mod(10, 3)"), env), 1);
  EXPECT_EQ(front::fold_int(*front::parse_expression_text("max(2, 7, 5)"), env), 7);
  EXPECT_EQ(front::fold_int(*front::parse_expression_text("int(3.9)"), env), 3);
}

TEST(Fold, BindingsMergePrecedence) {
  front::Bindings a, b;
  a.set_int("n", 1);
  b.set_int("n", 2);
  a.merge(b);
  EXPECT_DOUBLE_EQ(*a.get("n"), 2.0);
}

// --- scalar evaluation --------------------------------------------------------

TEST(Eval, SeededEnvironmentResolvesParams) {
  auto a = analyze_body("parameter (n = 64)\nk = n/2");
  compiler::ScalarEnv env(a.symbols.size());
  front::Bindings none;
  compiler::seed_environment(env, a.symbols, none);
  EXPECT_DOUBLE_EQ(
      compiler::eval_scalar(*a.prog.stmts[0]->rhs, env, nullptr, a.symbols), 32.0);
}

TEST(Eval, BindingOverridesParameter) {
  auto a = analyze_body("parameter (n = 64)\nk = n");
  compiler::ScalarEnv env(a.symbols.size());
  front::Bindings b;
  b.set_int("n", 256);
  compiler::seed_environment(env, a.symbols, b);
  EXPECT_DOUBLE_EQ(
      compiler::eval_scalar(*a.prog.stmts[0]->rhs, env, nullptr, a.symbols), 256.0);
}

TEST(Eval, ArrayAccessWithoutAccessorThrows) {
  auto a = analyze_body("real v(4)\nx = v(2)");
  compiler::ScalarEnv env(a.symbols.size());
  front::Bindings none;
  compiler::seed_environment(env, a.symbols, none);
  EXPECT_THROW((void)compiler::eval_scalar(*a.prog.stmts[0]->rhs, env, nullptr,
                                           a.symbols),
               support::CompileError);
  EXPECT_FALSE(compiler::try_eval_scalar(*a.prog.stmts[0]->rhs, env, nullptr,
                                         a.symbols)
                   .has_value());
}

TEST(Eval, IntegerSemanticsInEval) {
  auto a = analyze_body("i = 7\nj = 2\nk = i/j");
  compiler::ScalarEnv env(a.symbols.size());
  env.define(a.symbols.find("i"), 7);
  env.define(a.symbols.find("j"), 2);
  EXPECT_DOUBLE_EQ(
      compiler::eval_scalar(*a.prog.stmts[2]->rhs, env, nullptr, a.symbols), 3.0);
}

}  // namespace
}  // namespace hpf90d
