// hpf90d_served — the experiment service daemon.
//
//   hpf90d_served --socket /tmp/hpf90d.sock [--artifacts DIR]
//                 [--executors N] [--job-workers N] [--max-nodes N]
//                 [--tenant-inflight N] [--tenant-queue N]
//                 [--slow-job-ms N] [--no-trace] [--trace-capacity N]
//                 [--trace FILE]
//
// Runs until SIGINT/SIGTERM or a client Shutdown frame. With --artifacts
// the daemon persists compiled-program recipes and data layouts under DIR
// and warm-starts from them on the next launch, so a restart keeps
// serving previously-seen plans with hot caches.
//
// Observability: tracing is on by default (a bounded span ring; --no-trace
// disables it, --trace-capacity resizes it). --trace FILE (or the
// HPF90D_TRACE environment variable) writes the ring as Chrome trace_event
// JSON at shutdown — open it in chrome://tracing or Perfetto.
// --slow-job-ms N logs jobs whose sweep takes >= N ms (client-visible via
// STATS; see the README's Observability section).
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>

#include "serve/server.hpp"

namespace {

volatile std::sig_atomic_t g_signalled = 0;

void on_signal(int) { g_signalled = 1; }

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s --socket PATH [--artifacts DIR] [--executors N]\n"
               "          [--job-workers N] [--max-nodes N] [--tenant-inflight N]\n"
               "          [--tenant-queue N] [--slow-job-ms N] [--no-trace]\n"
               "          [--trace-capacity N] [--trace FILE]\n",
               argv0);
  return 2;
}

/// Writes the daemon's span ring as Chrome trace_event JSON.
void dump_trace(hpf90d::serve::ExperimentServer& server, const std::string& path) {
  std::FILE* out = std::fopen(path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "hpf90d_served: cannot write trace to %s\n", path.c_str());
    return;
  }
  const std::string json = server.tracer().chrome_trace_json();
  std::fwrite(json.data(), 1, json.size(), out);
  std::fclose(out);
  std::printf("hpf90d_served: wrote %zu spans to %s (%llu dropped by ring bound)\n",
              server.tracer().snapshot().size(), path.c_str(),
              static_cast<unsigned long long>(server.tracer().dropped()));
}

}  // namespace

int main(int argc, char** argv) {
  hpf90d::serve::ServerOptions options;
  std::string trace_path;
  if (const char* env = std::getenv("HPF90D_TRACE")) trace_path = env;
  for (int i = 1; i < argc; ++i) {
    const auto next = [&]() -> const char* {
      if (i + 1 >= argc) return nullptr;
      return argv[++i];
    };
    if (std::strcmp(argv[i], "--socket") == 0) {
      const char* v = next();
      if (v == nullptr) return usage(argv[0]);
      options.socket_path = v;
    } else if (std::strcmp(argv[i], "--artifacts") == 0) {
      const char* v = next();
      if (v == nullptr) return usage(argv[0]);
      options.artifact_dir = v;
    } else if (std::strcmp(argv[i], "--executors") == 0) {
      const char* v = next();
      if (v == nullptr) return usage(argv[0]);
      options.executors = std::atoi(v);
    } else if (std::strcmp(argv[i], "--job-workers") == 0) {
      const char* v = next();
      if (v == nullptr) return usage(argv[0]);
      options.job_workers = std::atoi(v);
    } else if (std::strcmp(argv[i], "--max-nodes") == 0) {
      const char* v = next();
      if (v == nullptr) return usage(argv[0]);
      options.max_nodes = std::atoi(v);
    } else if (std::strcmp(argv[i], "--tenant-inflight") == 0) {
      const char* v = next();
      if (v == nullptr) return usage(argv[0]);
      options.tenant_inflight = static_cast<std::size_t>(std::atoll(v));
    } else if (std::strcmp(argv[i], "--tenant-queue") == 0) {
      const char* v = next();
      if (v == nullptr) return usage(argv[0]);
      options.tenant_queued = static_cast<std::size_t>(std::atoll(v));
    } else if (std::strcmp(argv[i], "--slow-job-ms") == 0) {
      const char* v = next();
      if (v == nullptr) return usage(argv[0]);
      options.slow_job_ms = std::atoi(v);
    } else if (std::strcmp(argv[i], "--no-trace") == 0) {
      options.trace = false;
    } else if (std::strcmp(argv[i], "--trace-capacity") == 0) {
      const char* v = next();
      if (v == nullptr) return usage(argv[0]);
      options.trace_capacity = static_cast<std::size_t>(std::atoll(v));
    } else if (std::strcmp(argv[i], "--trace") == 0) {
      const char* v = next();
      if (v == nullptr) return usage(argv[0]);
      trace_path = v;
    } else {
      return usage(argv[0]);
    }
  }
  if (options.socket_path.empty()) return usage(argv[0]);
  if (!trace_path.empty()) options.trace = true;  // a requested dump implies tracing

  std::signal(SIGINT, on_signal);
  std::signal(SIGTERM, on_signal);

  try {
    hpf90d::serve::ExperimentServer server(options);
    server.start();
    std::printf("hpf90d_served: listening on %s (%zu programs warmed)\n",
                options.socket_path.c_str(), server.warmed_programs());
    std::fflush(stdout);
    while (g_signalled == 0 && !server.stop_requested()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(100));
    }
    server.stop();  // joins executors first, so the dump sees final spans
    if (!trace_path.empty()) dump_trace(server, trace_path);
    std::printf("hpf90d_served: stopped\n");
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "hpf90d_served: %s\n", e.what());
    return 1;
  }
}
