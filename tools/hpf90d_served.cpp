// hpf90d_served — the experiment service daemon.
//
//   hpf90d_served --socket /tmp/hpf90d.sock [--artifacts DIR]
//                 [--executors N] [--job-workers N] [--max-nodes N]
//                 [--tenant-inflight N] [--tenant-queue N]
//
// Runs until SIGINT/SIGTERM or a client Shutdown frame. With --artifacts
// the daemon persists compiled-program recipes and data layouts under DIR
// and warm-starts from them on the next launch, so a restart keeps
// serving previously-seen plans with hot caches.
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <thread>

#include "serve/server.hpp"

namespace {

volatile std::sig_atomic_t g_signalled = 0;

void on_signal(int) { g_signalled = 1; }

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s --socket PATH [--artifacts DIR] [--executors N]\n"
               "          [--job-workers N] [--max-nodes N] [--tenant-inflight N]\n"
               "          [--tenant-queue N]\n",
               argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  hpf90d::serve::ServerOptions options;
  for (int i = 1; i < argc; ++i) {
    const auto next = [&]() -> const char* {
      if (i + 1 >= argc) return nullptr;
      return argv[++i];
    };
    if (std::strcmp(argv[i], "--socket") == 0) {
      const char* v = next();
      if (v == nullptr) return usage(argv[0]);
      options.socket_path = v;
    } else if (std::strcmp(argv[i], "--artifacts") == 0) {
      const char* v = next();
      if (v == nullptr) return usage(argv[0]);
      options.artifact_dir = v;
    } else if (std::strcmp(argv[i], "--executors") == 0) {
      const char* v = next();
      if (v == nullptr) return usage(argv[0]);
      options.executors = std::atoi(v);
    } else if (std::strcmp(argv[i], "--job-workers") == 0) {
      const char* v = next();
      if (v == nullptr) return usage(argv[0]);
      options.job_workers = std::atoi(v);
    } else if (std::strcmp(argv[i], "--max-nodes") == 0) {
      const char* v = next();
      if (v == nullptr) return usage(argv[0]);
      options.max_nodes = std::atoi(v);
    } else if (std::strcmp(argv[i], "--tenant-inflight") == 0) {
      const char* v = next();
      if (v == nullptr) return usage(argv[0]);
      options.tenant_inflight = static_cast<std::size_t>(std::atoll(v));
    } else if (std::strcmp(argv[i], "--tenant-queue") == 0) {
      const char* v = next();
      if (v == nullptr) return usage(argv[0]);
      options.tenant_queued = static_cast<std::size_t>(std::atoll(v));
    } else {
      return usage(argv[0]);
    }
  }
  if (options.socket_path.empty()) return usage(argv[0]);

  std::signal(SIGINT, on_signal);
  std::signal(SIGTERM, on_signal);

  try {
    hpf90d::serve::ExperimentServer server(options);
    server.start();
    std::printf("hpf90d_served: listening on %s (%zu programs warmed)\n",
                options.socket_path.c_str(), server.warmed_programs());
    std::fflush(stdout);
    while (g_signalled == 0 && !server.stop_requested()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(100));
    }
    server.stop();
    std::printf("hpf90d_served: stopped\n");
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "hpf90d_served: %s\n", e.what());
    return 1;
  }
}
