// hpf90d_studycheck — the golden-study regression gate.
//
// Runs a fixed canonical design study (the paper's §7 Laplace latency x
// bandwidth what-if) and compares it against a committed golden artifact
// with StudyResult::diff: the gate fails when any crossover conclusion
// flips, any point moves by more than the threshold, or the point sets
// disagree. Small platform-dependent float drift below the threshold
// passes — the artifact pins the study's *conclusions*, not its bytes.
//
//   hpf90d_studycheck --check golden.csv [--threshold 0.05] [--speculate] [--order]
//   hpf90d_studycheck --write golden.csv     (regenerate the artifact)
//
// --speculate / --order run the study with RunOptions::speculate_branches
// / RunOptions::order_points on. Both are pure execution strategies — the
// report is byte-identical by construction — so checking against a golden
// artifact produced without them is exactly the point: any drift they
// introduce fails the gate.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "study/study.hpp"
#include "suite/suite.hpp"

namespace {

using namespace hpf90d;

/// The canonical study. Any change here must ship with a regenerated
/// golden artifact (run with --write).
study::StudyResult run_canonical_study(const api::RunOptions& opts) {
  const auto& app = suite::app("laplace_bb");
  api::Session session;
  study::StudyPlan plan("golden: laplace latency/bandwidth what-if");
  plan.source(app.source)
      .add_reference_machine("ipsc860")
      .knob_axis(study::Knob::Latency, {0.25, 1, 4})
      .knob_axis(study::Knob::Bandwidth, {1, 4})
      .add_variant("block-block", suite::app("laplace_bb").directive_overrides, 2)
      .add_variant("block-star", suite::app("laplace_bx").directive_overrides)
      .problems_from({32, 64}, app.bindings)
      .nprocs({2, 4, 8})
      .runs(0);
  return study::run_study(session, plan, opts);
}

}  // namespace

int main(int argc, char** argv) {
  const char* path = nullptr;
  bool write = false;
  double threshold = 0.05;
  api::RunOptions opts;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--write") == 0 && i + 1 < argc) {
      write = true;
      path = argv[++i];
    } else if (std::strcmp(argv[i], "--check") == 0 && i + 1 < argc) {
      path = argv[++i];
    } else if (std::strcmp(argv[i], "--threshold") == 0 && i + 1 < argc) {
      threshold = std::atof(argv[++i]);
    } else if (std::strcmp(argv[i], "--speculate") == 0) {
      opts.speculate_branches = true;
    } else if (std::strcmp(argv[i], "--order") == 0) {
      opts.order_points = true;
    } else {
      std::fprintf(stderr,
                   "usage: %s --check golden.csv [--threshold 0.05] [--speculate] "
                   "[--order] | --write golden.csv\n",
                   argv[0]);
      return 2;
    }
  }
  if (path == nullptr) {
    std::fprintf(stderr, "missing --check/--write <path>\n");
    return 2;
  }

  const study::StudyResult current = run_canonical_study(opts);

  if (write) {
    std::ofstream out(path, std::ios::binary);
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", path);
      return 2;
    }
    out << current.csv();
    std::printf("wrote golden study artifact: %s (%zu records)\n", path,
                current.report.records.size());
    return 0;
  }

  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "cannot read golden artifact %s\n", path);
    return 2;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  const study::StudyResult golden = study::StudyResult::from_csv(buf.str());

  const study::StudyDiff diff = golden.diff(current, threshold);
  std::printf("%s\n", diff.ascii().c_str());
  if (!diff.identical_conclusions()) {
    std::fprintf(stderr,
                 "golden study gate FAILED: conclusions changed "
                 "(gained=%zu lost=%zu deltas=%zu only_before=%zu only_after=%zu)\n",
                 diff.gained.size(), diff.lost.size(), diff.deltas.size(),
                 diff.only_in_before, diff.only_in_after);
    return 1;
  }
  std::printf("golden study gate passed: conclusions identical at threshold %g\n",
              threshold);
  return 0;
}
