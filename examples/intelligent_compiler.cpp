// intelligent_compiler.cpp — prototype of the paper's §7 future work: "an
// intelligent HPF/Fortran 90D compiler based on the source based
// interpretation model ... to automatically evaluate directives and
// transformation choices and optimize the application at compile time."
//
// The driver enumerates candidate PROCESSORS/DISTRIBUTE combinations for a
// program, interprets each, and picks the fastest — an automatic version of
// the §5.2.1 experiment.
#include <cstdio>

#include "driver/framework.hpp"
#include "suite/suite.hpp"
#include "support/text.hpp"

int main() {
  using namespace hpf90d;
  driver::Framework framework;
  const auto& app = suite::app("laplace_bb");  // base source; directives replaced

  struct Candidate {
    const char* name;
    std::vector<std::string> directives;
    std::optional<std::vector<int>> grid;
  };
  const Candidate candidates[] = {
      {"(block,block) on 2x2", {"processors p(2,2)", "distribute d(block,block)"},
       std::vector<int>{2, 2}},
      {"(block,*)    on 4", {"processors p(4)", "distribute d(block,*)"}, {}},
      {"(*,block)    on 4", {"processors p(4)", "distribute d(*,block)"}, {}},
      {"(cyclic,*)   on 4", {"processors p(4)", "distribute d(cyclic,*)"}, {}},
  };

  std::printf("Intelligent compiler prototype: automatic directive search\n");
  std::printf("application: Laplace solver, n=128, P=4\n\n");

  double best_time = 1e300;
  const Candidate* best = nullptr;
  for (const auto& cand : candidates) {
    auto prog = framework.compile_with_directives(app.source, cand.directives);
    driver::ExperimentConfig cfg;
    cfg.nprocs = 4;
    cfg.grid_shape = cand.grid;
    cfg.bindings = app.bindings(128);
    const double t = framework.predict(prog, cfg).total;
    std::printf("  %-22s -> interpreted %s\n", cand.name,
                support::format_seconds(t).c_str());
    if (t < best_time) {
      best_time = t;
      best = &cand;
    }
  }
  std::printf("\ncompiler selects: %s (%s)\n", best->name,
              support::format_seconds(best_time).c_str());
  return 0;
}
