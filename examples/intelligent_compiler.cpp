// intelligent_compiler.cpp — prototype of the paper's §7 future work: "an
// intelligent HPF/Fortran 90D compiler based on the source based
// interpretation model ... to automatically evaluate directives and
// transformation choices and optimize the application at compile time."
//
// The candidate PROCESSORS/DISTRIBUTE combinations become directive
// variants of one ExperimentPlan; the session interprets each (predict-only)
// and the fastest record wins — an automatic version of the §5.2.1
// experiment.
#include <cstdio>

#include "api/api.hpp"
#include "suite/suite.hpp"
#include "support/text.hpp"

int main() {
  using namespace hpf90d;
  api::Session session;
  const auto& app = suite::app("laplace_bb");  // base source; directives replaced

  std::printf("Intelligent compiler prototype: automatic directive search\n");
  std::printf("application: Laplace solver, n=128, P=4\n\n");

  api::ExperimentPlan plan("automatic directive search");
  plan.source(app.source)
      .nprocs({4})
      .add_variant("(block,block) on 2x2",
                   {"processors p(2,2)", "distribute d(block,block)"}, 2)
      .add_variant("(block,*)    on 4", {"processors p(4)", "distribute d(block,*)"})
      .add_variant("(*,block)    on 4", {"processors p(4)", "distribute d(*,block)"})
      .add_variant("(cyclic,*)   on 4", {"processors p(4)", "distribute d(cyclic,*)"})
      .add_problem("n=128", app.bindings(128))
      .runs(0);
  const api::RunReport report = session.run(plan);

  for (const auto& r : report.records) {
    std::printf("  %-22s -> interpreted %s\n", r.variant.c_str(),
                support::format_seconds(r.comparison.estimated).c_str());
  }
  const api::RunRecord* best = report.best_estimated();
  std::printf("\ncompiler selects: %s (%s)\n", best->variant.c_str(),
              support::format_seconds(best->comparison.estimated).c_str());
  std::printf("(%zu candidates interpreted in %.3f s of tool time)\n",
              report.records.size(), report.wall_seconds);
  return 0;
}
