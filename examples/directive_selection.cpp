// directive_selection.cpp — the paper's §5.2.1 use case: select the best
// DISTRIBUTE directive for the Laplace solver from interpreted performance,
// without ever "running" on the machine. One ExperimentPlan sweeps the three
// candidate distributions across problem sizes; the winner is reported and a
// final simulated measurement confirms the choice.
#include <cstdio>
#include <map>

#include "api/api.hpp"
#include "suite/suite.hpp"
#include "support/text.hpp"

namespace {

struct Candidate {
  const char* label;   // plan variant name
  const char* app_id;  // suite id carrying the directive overrides
  std::optional<int> grid_rank;
};

constexpr int kNprocs = 4;

const Candidate kCandidates[] = {
    {"(Block,Block)", "laplace_bb", 2},
    {"(Block,*)", "laplace_bx", std::nullopt},
    {"(*,Block)", "laplace_xb", std::nullopt},
};

}  // namespace

int main() {
  using namespace hpf90d;
  api::Session session;
  const auto& base = suite::app("laplace_bb");  // the variants share one source

  std::printf("Directive selection for the Laplace solver (P=%d)\n\n", kNprocs);

  api::ExperimentPlan plan("Laplace directive selection");
  plan.source(base.source)
      .nprocs({kNprocs})
      .runs(0);  // predict-only: the interactive experimentation mode
  for (const Candidate& c : kCandidates) {
    plan.add_variant(c.label, suite::app(c.app_id).directive_overrides, c.grid_rank);
  }
  plan.problems_from({16, 64, 128, 256}, base.bindings);
  const api::RunReport report = session.run(plan);
  std::printf("%s\n", report.ascii().c_str());

  std::map<std::string, double> totals;
  for (const auto& r : report.records) totals[r.variant] += r.comparison.estimated;
  const auto best_candidate = std::min_element(
      std::begin(kCandidates), std::end(kCandidates),
      [&](const Candidate& a, const Candidate& b) {
        return totals.at(a.label) < totals.at(b.label);
      });
  std::printf("recommended DISTRIBUTE directive: %s\n", best_candidate->label);

  // confirm on the simulated machine, the way a developer would double-check
  const auto& app = suite::app(best_candidate->app_id);
  const auto prog = session.compile_with_directives(app.source, app.directive_overrides);
  api::RunConfig cfg;
  cfg.nprocs = kNprocs;
  if (best_candidate->grid_rank) {
    cfg.grid_shape = compiler::ProcGrid::factorized(kNprocs, *best_candidate->grid_rank).shape;
  }
  cfg.bindings = app.bindings(256);
  const api::Comparison cmp = session.compare(prog, cfg);
  std::printf("confirmation at n=256: estimated %s, measured %s (error %.2f%%)\n",
              support::format_seconds(cmp.estimated).c_str(),
              support::format_seconds(cmp.measured_mean).c_str(), cmp.abs_error_pct());
  std::printf("(session caches: %zu programs, %zu layouts; compile %zu hit / %zu miss)\n",
              session.cached_programs(), session.cached_layouts(),
              session.cache_stats().compile_hits, session.cache_stats().compile_misses);
  return 0;
}
