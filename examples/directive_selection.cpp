// directive_selection.cpp — the paper's §5.2.1 use case: select the best
// DISTRIBUTE directive for the Laplace solver from interpreted performance,
// without ever "running" on the machine. The three candidate distributions
// are evaluated across problem sizes and the winner is reported; a final
// simulated measurement confirms the choice.
#include <cstdio>

#include "driver/framework.hpp"
#include "suite/suite.hpp"
#include "support/text.hpp"

int main() {
  using namespace hpf90d;
  driver::Framework framework;

  const char* ids[3] = {"laplace_bb", "laplace_bx", "laplace_xb"};
  const int nprocs = 4;

  std::printf("Directive selection for the Laplace solver (P=%d)\n\n", nprocs);
  std::printf("%8s  %16s  %16s  %16s\n", "size", "(Block,Block)", "(Block,*)",
              "(*,Block)");

  double totals[3] = {0, 0, 0};
  for (long long n : {16LL, 64LL, 128LL, 256LL}) {
    double est[3];
    for (int k = 0; k < 3; ++k) {
      const auto& app = suite::app(ids[k]);
      auto prog = framework.compile_with_directives(app.source, app.directive_overrides);
      driver::ExperimentConfig cfg;
      cfg.nprocs = nprocs;
      if (k == 0) cfg.grid_shape = std::vector<int>{2, 2};
      cfg.bindings = app.bindings(n);
      est[k] = framework.predict(prog, cfg).total;
      totals[k] += est[k];
    }
    std::printf("%8lld  %16s  %16s  %16s\n", n,
                support::format_seconds(est[0]).c_str(),
                support::format_seconds(est[1]).c_str(),
                support::format_seconds(est[2]).c_str());
  }

  const int best = static_cast<int>(std::min_element(totals, totals + 3) - totals);
  const char* names[3] = {"(Block,Block)", "(Block,*)", "(*,Block)"};
  std::printf("\nrecommended DISTRIBUTE directive: %s\n", names[best]);

  // confirm on the simulated machine, the way a developer would double-check
  const auto& app = suite::app(ids[best]);
  auto prog = framework.compile_with_directives(app.source, app.directive_overrides);
  driver::ExperimentConfig cfg;
  cfg.nprocs = nprocs;
  if (best == 0) cfg.grid_shape = std::vector<int>{2, 2};
  cfg.bindings = app.bindings(256);
  const auto cmp = framework.compare(prog, cfg);
  std::printf("confirmation at n=256: estimated %s, measured %s (error %.2f%%)\n",
              support::format_seconds(cmp.estimated).c_str(),
              support::format_seconds(cmp.measured_mean).c_str(), cmp.abs_error_pct());
  return 0;
}
