// machine_comparison.cpp — the paper's §7 "system design evaluation tool"
// direction: evaluate the same HPF application on two registered machine
// abstractions (iPSC/860 cube vs an Ethernet workstation cluster) purely by
// interpretation, with one ExperimentPlan sweeping both machines, and
// compare the scaling stories: the cluster's faster nodes win on raw time,
// but its millisecond message latency costs it parallel efficiency.
#include <cstdio>

#include "api/api.hpp"
#include "suite/suite.hpp"

int main() {
  using namespace hpf90d;
  const auto& app = suite::app("laplace_bx");

  api::Session session;
  std::printf("System design evaluation: Laplace (Block,*), n=256\n\n");
  std::printf("registered machines:\n");
  for (const auto& name : session.machines().names()) {
    std::printf("  %-8s  %s\n", name.c_str(),
                session.machines().description(name).c_str());
  }
  std::printf("\nmachine decompositions:\n%s\n%s\n",
              session.machine("ipsc860").sag.str().c_str(),
              session.machine("cluster").sag.str().c_str());

  // predict-only sweep (runs(0)): both machines, four system sizes
  api::ExperimentPlan plan("Laplace (Block,*) across machines");
  plan.source(app.source)
      .machines({"ipsc860", "cluster"})
      .nprocs({1, 2, 4, 8})
      .add_variant("(block,*)", app.directive_overrides)
      .add_problem("n=256", app.bindings(256))
      .runs(0);
  const api::RunReport report = session.run(plan);
  std::printf("%s\n", report.ascii().c_str());

  // relative speedups tell the design story
  auto estimated = [&](const std::string& machine, int p) {
    for (const auto& r : report.records) {
      if (r.machine == machine && r.nprocs == p) return r.comparison.estimated;
    }
    return 0.0;
  };
  const double su_cube = estimated("ipsc860", 1) / estimated("ipsc860", 8);
  const double su_lan = estimated("cluster", 1) / estimated("cluster", 8);
  std::printf("speedup at P=8: cube %.2fx, cluster %.2fx\n", su_cube, su_lan);
  std::printf("(the cluster's faster nodes win outright at this size, but its\n"
              " millisecond message latency costs it parallel efficiency --\n"
              " the design question the paper's SAG methodology answers without\n"
              " porting a line of code)\n");
  return 0;
}
