// machine_comparison.cpp — the paper's §7 "system design evaluation tool"
// direction: evaluate the same HPF application on two machine abstractions
// (iPSC/860 cube vs an Ethernet workstation cluster) purely by
// interpretation, and compare the scaling stories: the cluster's faster
// nodes win on raw time, but its millisecond message latency costs it
// parallel efficiency relative to the cube.
#include <cstdio>

#include "compiler/pipeline.hpp"
#include "core/engine.hpp"
#include "machine/cluster.hpp"
#include "machine/ipsc860.hpp"
#include "suite/suite.hpp"
#include "support/text.hpp"

int main() {
  using namespace hpf90d;
  const auto& app = suite::app("laplace_bx");
  auto prog = compiler::compile_with_directives(app.source, app.directive_overrides);

  const machine::MachineModel cube = machine::make_ipsc860();
  const machine::MachineModel lan = machine::make_cluster();

  std::printf("System design evaluation: Laplace (Block,*), n=256\n\n");
  std::printf("machine decompositions:\n%s\n%s\n", cube.sag.str().c_str(),
              lan.sag.str().c_str());

  std::printf("%6s  %18s  %18s\n", "procs", "iPSC/860 cube", "ethernet cluster");
  for (int p : {1, 2, 4, 8}) {
    compiler::LayoutOptions lo;
    lo.nprocs = p;
    const front::Bindings b = app.bindings(256);
    const double t_cube = core::predict(prog, b, lo, cube).total;
    const double t_lan = core::predict(prog, b, lo, lan).total;
    std::printf("%6d  %18s  %18s\n", p, support::format_seconds(t_cube).c_str(),
                support::format_seconds(t_lan).c_str());
  }
  // relative speedups tell the design story
  compiler::LayoutOptions l1, l8;
  l1.nprocs = 1;
  l8.nprocs = 8;
  const front::Bindings b = app.bindings(256);
  const double su_cube = core::predict(prog, b, l1, cube).total /
                         core::predict(prog, b, l8, cube).total;
  const double su_lan = core::predict(prog, b, l1, lan).total /
                        core::predict(prog, b, l8, lan).total;
  std::printf("\nspeedup at P=8: cube %.2fx, cluster %.2fx\n", su_cube, su_lan);
  std::printf("(the cluster's faster nodes win outright at this size, but its\n"
              " millisecond message latency costs it parallel efficiency --\n"
              " the design question the paper's SAG methodology answers without\n"
              " porting a line of code)\n");
  return 0;
}
