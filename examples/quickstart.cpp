// quickstart.cpp — minimal end-to-end use of the framework: compile an HPF
// program, predict its performance on the iPSC/860 abstraction, "measure"
// it on the simulated cube, and print the comparison plus the performance
// profile (the workflow of paper §4).
#include <cstdio>

#include "core/aag.hpp"
#include "core/output.hpp"
#include "driver/framework.hpp"
#include "support/text.hpp"

namespace {

constexpr const char* kSource = R"f90(
program quickstart
  parameter (n = 4096)
  real f(n)
  real h, pival
!hpf$ template d(n)
!hpf$ align f(i) with d(i)
!hpf$ distribute d(block)
  h = 1.0/real(n)
  forall (i = 1:n) f(i) = 4.0/(1.0 + ((real(i) - 0.5)*h)*((real(i) - 0.5)*h))
  pival = h*sum(f)
  print *, pival
end program quickstart
)f90";

}  // namespace

int main() {
  using namespace hpf90d;

  driver::Framework framework;

  // Phase 1: compilation (parse, partition, sequentialize, detect
  // communication, emit the loosely synchronous SPMD program).
  const compiler::CompiledProgram prog = framework.compile(kSource);
  std::printf("== SPMD node program (IR) ==\n%s\n", prog.str().c_str());

  // Abstraction parse: AAG / SAAG.
  const core::SynchronizedAAG saag(prog);
  std::printf("== Synchronized Application Abstraction Graph ==\n%s\n",
              saag.str().c_str());

  for (const int nprocs : {1, 2, 4, 8}) {
    driver::ExperimentConfig config;
    config.nprocs = nprocs;
    const driver::Comparison cmp = framework.compare(prog, config);
    std::printf("P=%d  estimated %-12s measured %-12s error %.2f%%\n", nprocs,
                support::format_seconds(cmp.estimated).c_str(),
                support::format_seconds(cmp.measured_mean).c_str(),
                cmp.abs_error_pct());
  }

  // Interpretation profile on 4 processors.
  driver::ExperimentConfig config;
  config.nprocs = 4;
  const core::PredictionResult pred = framework.predict(prog, config);
  const core::OutputModule output(saag, pred);
  std::printf("\n== Interpreted performance profile (P=4) ==\n%s\n",
              output.profile().c_str());

  // Functional check: the simulated program really computes pi.
  const sim::MeasuredResult meas = framework.measure(prog, config);
  const auto it = meas.detail.printed.find("pival");
  if (it != meas.detail.printed.end()) {
    std::printf("simulated program printed pival = %.6f\n", it->second);
  }
  return 0;
}
