// quickstart.cpp — minimal end-to-end use of the experiment-session API:
// compile an HPF program once, sweep processor counts through an
// ExperimentPlan (predicted vs "measured" on the simulated iPSC/860), and
// print the run report plus the performance profile (the workflow of paper
// §4, batched as in §5.2).
#include <cstdio>

#include "api/api.hpp"
#include "core/aag.hpp"
#include "core/output.hpp"

namespace {

constexpr const char* kSource = R"f90(
program quickstart
  parameter (n = 4096)
  real f(n)
  real h, pival
!hpf$ template d(n)
!hpf$ align f(i) with d(i)
!hpf$ distribute d(block)
  h = 1.0/real(n)
  forall (i = 1:n) f(i) = 4.0/(1.0 + ((real(i) - 0.5)*h)*((real(i) - 0.5)*h))
  pival = h*sum(f)
  print *, pival
end program quickstart
)f90";

}  // namespace

int main() {
  using namespace hpf90d;

  api::Session session;

  // Phase 1: compilation (parse, partition, sequentialize, detect
  // communication, emit the loosely synchronous SPMD program). The handle
  // is memoized: the plan below reuses it without recompiling.
  const api::Session::ProgramHandle prog = session.compile(kSource);
  std::printf("== SPMD node program (IR) ==\n%s\n", prog->str().c_str());

  // Abstraction parse: AAG / SAAG.
  const core::SynchronizedAAG saag(*prog);
  std::printf("== Synchronized Application Abstraction Graph ==\n%s\n",
              saag.str().c_str());

  // One declarative sweep replaces the config-per-call loop.
  api::ExperimentPlan plan("quickstart: pi quadrature on the cube");
  plan.source(kSource).nprocs({1, 2, 4, 8});
  const api::RunReport report = session.run(plan);
  std::printf("%s\n", report.ascii().c_str());

  // Interpretation profile on 4 processors.
  api::RunConfig config;
  config.nprocs = 4;
  const core::PredictionResult pred = session.predict(prog, config);
  const core::OutputModule output(saag, pred);
  std::printf("== Interpreted performance profile (P=4) ==\n%s\n",
              output.profile().c_str());

  // Functional check: the simulated program really computes pi.
  const sim::MeasuredResult meas = session.measure(prog, config);
  const auto it = meas.detail.printed.find("pival");
  if (it != meas.detail.printed.end()) {
    std::printf("simulated program printed pival = %.6f\n", it->second);
  }
  return 0;
}
