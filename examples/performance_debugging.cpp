// performance_debugging.cpp — the paper's §5.2.2 use case: use the
// framework's output module to analyze where the stock option pricing
// model spends its time, per AAU, per source line, and per phase — without
// a running application. Also dumps a ParaGraph-style interpretation trace.
#include <cstdio>

#include "api/api.hpp"
#include "core/aag.hpp"
#include "core/output.hpp"
#include "suite/suite.hpp"
#include "support/text.hpp"

int main() {
  using namespace hpf90d;
  api::Session session;
  const auto& app = suite::app("finance");
  const auto prog = session.compile(app.source);

  // abstraction parse
  core::SynchronizedAAG saag(*prog);
  std::printf("== SAAG for the financial model ==\n%s\n", saag.str().c_str());

  std::printf("== communication table ==\n");
  for (const auto& entry : saag.comm_table()) {
    std::printf("  AAU %d: %-34s pattern: %s\n", entry.aau, entry.operation.c_str(),
                entry.pattern.c_str());
  }

  // interpretation parse with tracing on
  api::RunConfig cfg;
  cfg.nprocs = 4;
  cfg.bindings = app.bindings(256);
  cfg.predict.trace = true;
  const auto pred = session.predict(prog, cfg);
  core::OutputModule out(saag, pred);

  std::printf("\n== performance profile ==\n%s\n", out.profile().c_str());

  // per-source-line queries (the "metrics associated with a particular
  // line" interface)
  std::printf("== per-line metrics ==\n");
  for (std::uint32_t line = 1; line <= 30; ++line) {
    const auto m = out.line(line);
    if (m.total() > 0) {
      std::printf("  line %2u: comp %-10s comm %-10s ovhd %s\n", line,
                  support::format_seconds(m.comp).c_str(),
                  support::format_seconds(m.comm).c_str(),
                  support::format_seconds(m.overhead).c_str());
    }
  }

  // ParaGraph trace (first events)
  const std::string trace = out.paragraph_trace();
  std::printf("\n== ParaGraph trace (head) ==\n");
  std::size_t shown = 0, pos = 0;
  while (shown < 12 && pos < trace.size()) {
    const std::size_t eol = trace.find('\n', pos);
    std::printf("%s\n", trace.substr(pos, eol - pos).c_str());
    pos = eol + 1;
    ++shown;
  }
  std::printf("... (%zu bytes total)\n", trace.size());
  return 0;
}
