// serve_client.cpp — the experiment service end to end.
//
// Connects to a running hpf90d_served daemon (HPF90D_SOCKET, default
// /tmp/hpf90d-serve-example.sock); when none is listening, hosts an
// in-process ExperimentServer on that socket so the example is
// self-contained (CI smoke-runs every example with no daemon around).
// Two tenants then submit the same Laplace sweep concurrently, and the
// example verifies the served reports are byte-identical to each other
// and to a direct local Session::run of the same plan — the service's
// core determinism claim.
//
// Environment:
//   HPF90D_SOCKET       socket path (also where the fallback server binds)
//   HPF90D_ARTIFACTS    artifact spill dir for the fallback server
//   HPF90D_EXPECT_WARM  "1" = fail unless the daemon answered from a warm
//                       spill (layout_spill_hits > 0); CI's restart check
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <thread>

#include "api/api.hpp"
#include "serve/client.hpp"
#include "serve/server.hpp"

namespace {

constexpr const char* kSource = R"f90(
program laplace
  parameter (n = 256)
  real u(n,n), unew(n,n)
!hpf$ template d(n,n)
!hpf$ align u(i,j) with d(i,j)
!hpf$ align unew(i,j) with d(i,j)
!hpf$ distribute d(block,*)
  forall (i = 2:n-1, j = 2:n-1) &
    unew(i,j) = 0.25*(u(i-1,j) + u(i+1,j) + u(i,j-1) + u(i,j+1))
  forall (i = 2:n-1, j = 2:n-1) u(i,j) = unew(i,j)
end program laplace
)f90";

hpf90d::api::ExperimentPlan make_plan() {
  hpf90d::api::ExperimentPlan plan("serve example: laplace directive sweep");
  plan.source(kSource)
      .nprocs({1, 2, 4, 8})
      .add_variant("(block,*)", {"distribute d(block,*)"}, 1)
      .add_variant("(block,block)", {"distribute d(block,block)"}, 2)
      .runs(2);
  return plan;
}

const char* env_or(const char* name, const char* fallback) {
  const char* v = std::getenv(name);
  return v != nullptr && *v != '\0' ? v : fallback;
}

}  // namespace

int main() {
  using namespace hpf90d;

  const char* socket_path = env_or("HPF90D_SOCKET", "/tmp/hpf90d-serve-example.sock");
  const bool expect_warm = std::strcmp(env_or("HPF90D_EXPECT_WARM", "0"), "1") == 0;

  // Prefer an already-running daemon; otherwise self-host.
  std::unique_ptr<serve::ExperimentServer> fallback;
  {
    serve::ServeClient probe(socket_path, "probe");
    try {
      probe.connect();
      std::printf("connected to a running daemon at %s\n", socket_path);
    } catch (const serve::WireError&) {
      serve::ServerOptions options;
      options.socket_path = socket_path;
      options.artifact_dir = env_or("HPF90D_ARTIFACTS", "");
      options.executors = 2;
      fallback = std::make_unique<serve::ExperimentServer>(options);
      fallback->start();
      std::printf("no daemon at %s; hosting one in-process (%zu programs warmed)\n",
                  socket_path, fallback->warmed_programs());
    }
  }

  const api::ExperimentPlan plan = make_plan();

  // Two tenants submit the same sweep concurrently.
  serve::ServeClient alice(socket_path, "alice");
  serve::ServeClient bob(socket_path, "bob");
  alice.connect();
  bob.connect();
  const std::uint64_t job_a = alice.submit(plan);
  const std::uint64_t job_b = bob.submit(plan);
  serve::JobResult result_a, result_b;
  std::thread bob_waits([&] { result_b = bob.wait(job_b); });
  result_a = alice.wait(job_a);
  bob_waits.join();

  if (!result_a.ok() || !result_b.ok()) {
    std::fprintf(stderr, "served job failed: %s / %s\n", result_a.error.c_str(),
                 result_b.error.c_str());
    return 1;
  }
  std::printf("%s\n", result_a.report.ascii().c_str());

  // Determinism: both tenants and a direct local run agree byte for byte.
  api::Session local;
  const api::RunReport direct = local.run(plan);
  if (result_a.report.csv() != result_b.report.csv() ||
      result_a.report.csv() != direct.csv()) {
    std::fprintf(stderr, "served reports are not byte-identical to a local run\n");
    return 1;
  }
  std::printf("tenant reports are byte-identical to a local Session::run\n");

  const serve::ServerStats stats = alice.stats();
  std::printf(
      "server: %zu jobs done | compile %zu hit / %zu miss | layout %zu hit / %zu "
      "miss / %zu from spill | %zu programs warmed\n",
      stats.jobs_done, stats.cache.compile_hits, stats.cache.compile_misses,
      stats.cache.layout_hits, stats.cache.layout_misses,
      stats.cache.layout_spill_hits, stats.warmed_programs);

  if (expect_warm && stats.cache.layout_spill_hits == 0) {
    std::fprintf(stderr,
                 "HPF90D_EXPECT_WARM=1 but no layout was served from the spill\n");
    return 1;
  }

  alice.close();
  bob.close();
  if (fallback) fallback->stop();
  return 0;
}
