// design_study.cpp — the paper's §7 headline use case as a declarative
// study: "what if the cube's interconnect had a quarter of the latency, or
// four times the bandwidth?" One StudyPlan sweeps a latency x bandwidth
// knob grid over the calibrated iPSC/860 (stock cube kept as the
// reference), two Laplace distributions, and two system sizes — lowered
// into a single batched Session::run with every what-if machine registered
// automatically. The result reads off as a what-if table, crossovers,
// scalability, and bottleneck attribution, and exports deterministically
// (CSV/JSON) as a committable artifact.
#include <cstdio>

#include "study/study.hpp"
#include "suite/suite.hpp"

int main() {
  using namespace hpf90d;
  const auto& app = suite::app("laplace_bb");

  api::Session session;
  study::StudyPlan plan("Laplace latency/bandwidth what-if");
  plan.source(app.source)
      .add_reference_machine("ipsc860")  // the stock testbed as the baseline
      .knob_axis(study::Knob::Latency, {0.25, 1, 4})
      .knob_axis(study::Knob::Bandwidth, {1, 4})
      .add_variant("(block,block)", suite::app("laplace_bb").directive_overrides, 2)
      .add_variant("(block,*)", suite::app("laplace_bx").directive_overrides)
      .problems_from({64}, app.bindings)
      .nprocs({4, 8})
      .runs(0);  // predict-only: the §7 interactive mode

  std::printf("Design study: %zu machines x 2 variants x 2 system sizes = %zu points\n",
              plan.machine_count(), plan.point_count());
  std::printf("(3x2 knob grid over the cube, zero manual machine registrations)\n\n");

  const study::StudyResult result = study::run_study(session, plan);
  std::printf("%s\n", result.ascii().c_str());

  // the §7-style what-if table: latency/bandwidth knobs vs predicted time
  std::printf("what-if knobs per generated machine:\n");
  for (const auto& pt : result.machine_points) {
    std::printf("  %-55s latency x%-5.3g bandwidth x%-5.3g\n", pt.name.c_str(),
                pt.params.latency_scale, pt.params.bandwidth_scale);
  }

  std::printf("\nCSV export (first lines):\n");
  const std::string csv = result.csv();
  std::size_t shown = 0, pos = 0;
  while (shown < 5 && pos < csv.size()) {
    const std::size_t eol = csv.find('\n', pos);
    std::printf("  %s\n", csv.substr(pos, eol - pos).c_str());
    pos = eol + 1;
    ++shown;
  }
  std::printf("  ... (%zu records; byte-identical for any worker count)\n",
              result.report.records.size());
  return 0;
}
