// intrinsics.hpp — registry of the Fortran 90 / HPF intrinsics supported by
// the subset. The paper's framework parameterizes the "HPF parallel
// intrinsic library" (cshift, tshift, sum, product, maxloc, ...) via
// benchmarking runs; this registry is the compile-time side: classification
// and typing rules. Cost parameters live in machine/sau.hpp.
#pragma once

#include <optional>
#include <string_view>

#include "hpf/ast.hpp"

namespace hpf90d::front {

enum class IntrinsicKind {
  Elemental,   // exp, sqrt, abs, ... applied element-wise; rank preserved
  Reduction,   // sum, product, maxval, minval; full or dim reduction
  Location,    // maxloc, minloc — index of extremum (rank-1 arrays)
  Shift,       // cshift, eoshift, tshift — nearest-neighbour comm
  Inquiry,     // size — resolved at interpretation time, no runtime cost
};

/// How the result type derives from the argument types.
enum class ResultTyping { SameAsArg, ForceReal, ForceDouble, ForceInteger, ForceLogical };

struct IntrinsicInfo {
  std::string_view name;
  IntrinsicKind kind;
  int min_args;
  int max_args;
  ResultTyping typing;
};

/// Looks up an intrinsic by (lower-case) name; nullopt if `name` is not an
/// intrinsic of the subset.
[[nodiscard]] std::optional<IntrinsicInfo> find_intrinsic(std::string_view name);

/// True when `name` denotes a full/dim reduction (sum, product, maxval,
/// minval) — these lower to partial local reductions plus a recursive
/// combining collective.
[[nodiscard]] bool is_reduction_intrinsic(std::string_view name);

}  // namespace hpf90d::front
