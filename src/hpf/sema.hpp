// sema.hpp — semantic analysis for the HPF/Fortran 90D subset: symbol table
// construction, implicit typing, name resolution (including the array-ref vs
// intrinsic-call ambiguity), and type/rank annotation of every expression.
#pragma once

#include <deque>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "hpf/ast.hpp"

namespace hpf90d::front {

enum class SymbolKind {
  Scalar,       // declared or implicitly typed scalar variable
  Array,        // declared array
  Param,        // PARAMETER constant
  LoopIndex,    // forall index or do-loop variable (integer scalar)
};

struct Symbol {
  std::string name;  // canonical lower case
  SymbolKind kind = SymbolKind::Scalar;
  TypeBase type = TypeBase::Real;
  std::vector<ExprPtr> dims;              // Array: extent expressions
  ExprPtr param_value;                    // Param: defining expression
  std::optional<double> const_value;      // Param: eagerly folded when possible
  SourceLoc loc;

  [[nodiscard]] int rank() const noexcept { return static_cast<int>(dims.size()); }
};

class SymbolTable {
 public:
  /// Adds a symbol; throws on duplicates.
  int add(Symbol sym);

  [[nodiscard]] int find(std::string_view name) const;  // -1 if absent
  [[nodiscard]] bool contains(std::string_view name) const { return find(name) >= 0; }
  [[nodiscard]] const Symbol& at(int index) const { return symbols_.at(static_cast<std::size_t>(index)); }
  [[nodiscard]] Symbol& at(int index) { return symbols_.at(static_cast<std::size_t>(index)); }
  [[nodiscard]] std::size_t size() const noexcept { return symbols_.size(); }

  /// Deque, not vector: Symbol references stay valid while later pipeline
  /// stages add compiler temporaries.
  [[nodiscard]] const std::deque<Symbol>& symbols() const noexcept { return symbols_; }

 private:
  std::deque<Symbol> symbols_;
  std::unordered_map<std::string, int> index_;
};

/// Runs semantic analysis over `prog` in place:
///  * builds the symbol table (declarations, parameters, implicit typing:
///    names starting i–n are INTEGER, others REAL),
///  * re-classifies parser Call nodes whose name is a declared array into
///    ArrayRef nodes (validating subscript counts),
///  * resolves every name to a symbol index and annotates type and rank,
///  * checks conformability of assignments, masks, and forall headers.
/// Throws support::CompileError on the first unrecoverable problem.
[[nodiscard]] SymbolTable analyze(Program& prog);

}  // namespace hpf90d::front
