// lexer.hpp — lexer for the HPF/Fortran 90D subset.
//
// The lexer is line oriented (Fortran statements end at end-of-line unless
// continued with a trailing `&`). Comment lines beginning with `!HPF$` or
// `CHPF$` are *directive* lines: they are not tokenized into the main stream
// but collected separately for the directive parser (see directives.hpp),
// mirroring how the NPAC compiler front end treats them.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "hpf/token.hpp"
#include "support/diagnostics.hpp"

namespace hpf90d::front {

/// A raw `!HPF$` directive line with its location, handed to the directive
/// parser after lexing.
struct DirectiveLine {
  support::SourceLoc loc;
  std::string text;  // text after the !HPF$ sentinel, original spelling
};

struct LexResult {
  std::vector<Token> tokens;          // always terminated by Eof
  std::vector<DirectiveLine> directives;
};

/// Tokenizes a whole source file. Throws support::CompileError on malformed
/// input (bad characters, unterminated dot-operators, malformed numbers).
[[nodiscard]] LexResult lex_source(std::string_view source);

/// Tokenizes a single logical line (used by the directive parser); no
/// directive collection, no continuation handling.
[[nodiscard]] std::vector<Token> lex_line(std::string_view line,
                                          support::SourceLoc base_loc);

}  // namespace hpf90d::front
