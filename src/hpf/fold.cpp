#include "hpf/fold.hpp"

#include <cmath>

#include "support/diagnostics.hpp"

namespace hpf90d::front {

using support::CompileError;

void Bindings::set(std::string name, double value) {
  map_[std::move(name)] = value;
}

void Bindings::set_int(std::string name, long long value) {
  map_[std::move(name)] = static_cast<double>(value);
}

std::optional<double> Bindings::get(std::string_view name) const {
  const auto it = map_.find(name);
  if (it == map_.end()) return std::nullopt;
  return it->second;
}

bool Bindings::contains(std::string_view name) const {
  return map_.find(name) != map_.end();
}

void Bindings::merge(const Bindings& other) {
  for (const auto& [k, v] : other.map_) map_[k] = v;
}

namespace {

/// Value plus integer-ness so that Fortran integer division/mod semantics
/// can be applied without depending on sema annotations.
struct FoldValue {
  double value = 0.0;
  bool is_int = false;
};

std::optional<FoldValue> fold_rec(const Expr& e, const Bindings& env);

std::optional<FoldValue> fold_call(const Expr& e, const Bindings& env) {
  // Only elemental intrinsics of scalar arguments fold.
  std::vector<FoldValue> argv;
  argv.reserve(e.args.size());
  for (const auto& a : e.args) {
    auto v = fold_rec(*a, env);
    if (!v) return std::nullopt;
    argv.push_back(*v);
  }
  const std::string& n = e.name;
  auto real1 = [&](double (*fn)(double)) -> std::optional<FoldValue> {
    if (argv.size() != 1) return std::nullopt;
    return FoldValue{fn(argv[0].value), false};
  };
  if (n == "exp") return real1([](double x) { return std::exp(x); });
  if (n == "log") return real1([](double x) { return std::log(x); });
  if (n == "sqrt") return real1([](double x) { return std::sqrt(x); });
  if (n == "sin") return real1([](double x) { return std::sin(x); });
  if (n == "cos") return real1([](double x) { return std::cos(x); });
  if (n == "atan") return real1([](double x) { return std::atan(x); });
  if (n == "abs" && argv.size() == 1) {
    return FoldValue{std::fabs(argv[0].value), argv[0].is_int};
  }
  if ((n == "real" || n == "float" || n == "dble") && argv.size() == 1) {
    return FoldValue{argv[0].value, false};
  }
  if (n == "int" && argv.size() == 1) {
    return FoldValue{std::trunc(argv[0].value), true};
  }
  if (n == "nint" && argv.size() == 1) {
    return FoldValue{std::nearbyint(argv[0].value), true};
  }
  if (n == "mod" && argv.size() == 2) {
    if (argv[0].is_int && argv[1].is_int) {
      const long long a = static_cast<long long>(argv[0].value);
      const long long b = static_cast<long long>(argv[1].value);
      if (b == 0) return std::nullopt;
      return FoldValue{static_cast<double>(a % b), true};
    }
    return FoldValue{std::fmod(argv[0].value, argv[1].value), false};
  }
  if ((n == "min" || n == "max") && argv.size() >= 2) {
    FoldValue acc = argv[0];
    for (std::size_t i = 1; i < argv.size(); ++i) {
      acc.value = n == "min" ? std::min(acc.value, argv[i].value)
                             : std::max(acc.value, argv[i].value);
      acc.is_int = acc.is_int && argv[i].is_int;
    }
    return acc;
  }
  return std::nullopt;
}

std::optional<FoldValue> fold_rec(const Expr& e, const Bindings& env) {
  switch (e.kind) {
    case ExprKind::IntLit:
      return FoldValue{static_cast<double>(e.int_value), true};
    case ExprKind::RealLit:
      return FoldValue{e.real_value, false};
    case ExprKind::LogicalLit:
      return FoldValue{e.bool_value ? 1.0 : 0.0, true};
    case ExprKind::Var: {
      const auto v = env.get(e.name);
      if (!v) return std::nullopt;
      // Integer-ness of bindings: treat integral values bound to names as
      // integers; this matches Fortran implicit typing for the loop-bound /
      // extent contexts where folding is used.
      return FoldValue{*v, std::nearbyint(*v) == *v};
    }
    case ExprKind::ArrayRef:
      return std::nullopt;  // array-valued: not scalar-foldable
    case ExprKind::Unary: {
      auto v = fold_rec(*e.args[0], env);
      if (!v) return std::nullopt;
      switch (e.un_op) {
        case UnOp::Neg: return FoldValue{-v->value, v->is_int};
        case UnOp::Plus: return v;
        case UnOp::Not: return FoldValue{v->value == 0.0 ? 1.0 : 0.0, true};
      }
      return std::nullopt;
    }
    case ExprKind::Binary: {
      auto a = fold_rec(*e.args[0], env);
      auto b = fold_rec(*e.args[1], env);
      if (!a || !b) return std::nullopt;
      const bool ii = a->is_int && b->is_int;
      switch (e.bin_op) {
        case BinOp::Add: return FoldValue{a->value + b->value, ii};
        case BinOp::Sub: return FoldValue{a->value - b->value, ii};
        case BinOp::Mul: return FoldValue{a->value * b->value, ii};
        case BinOp::Div:
          if (ii) {
            const long long bi = static_cast<long long>(b->value);
            if (bi == 0) return std::nullopt;
            const long long ai = static_cast<long long>(a->value);
            return FoldValue{static_cast<double>(ai / bi), true};  // truncating
          }
          return FoldValue{a->value / b->value, false};
        case BinOp::Pow:
          if (ii && b->value >= 0) {
            return FoldValue{std::pow(a->value, b->value), true};
          }
          return FoldValue{std::pow(a->value, b->value), false};
        case BinOp::Lt: return FoldValue{a->value < b->value ? 1.0 : 0.0, true};
        case BinOp::Le: return FoldValue{a->value <= b->value ? 1.0 : 0.0, true};
        case BinOp::Gt: return FoldValue{a->value > b->value ? 1.0 : 0.0, true};
        case BinOp::Ge: return FoldValue{a->value >= b->value ? 1.0 : 0.0, true};
        case BinOp::Eq: return FoldValue{a->value == b->value ? 1.0 : 0.0, true};
        case BinOp::Ne: return FoldValue{a->value != b->value ? 1.0 : 0.0, true};
        case BinOp::And:
          return FoldValue{(a->value != 0.0 && b->value != 0.0) ? 1.0 : 0.0, true};
        case BinOp::Or:
          return FoldValue{(a->value != 0.0 || b->value != 0.0) ? 1.0 : 0.0, true};
      }
      return std::nullopt;
    }
    case ExprKind::Call:
      return fold_call(e, env);
  }
  return std::nullopt;
}

/// Finds the first unresolvable name for error messages.
std::string first_unresolved(const Expr& e, const Bindings& env) {
  switch (e.kind) {
    case ExprKind::Var:
      if (!env.contains(e.name)) return e.name;
      return {};
    case ExprKind::ArrayRef:
      return e.name + "(...)";
    default:
      for (const auto& a : e.args) {
        std::string s = first_unresolved(*a, env);
        if (!s.empty()) return s;
      }
      return {};
  }
}

}  // namespace

std::optional<double> try_fold(const Expr& e, const Bindings& env) {
  const auto v = fold_rec(e, env);
  if (!v) return std::nullopt;
  return v->value;
}

double fold_scalar(const Expr& e, const Bindings& env) {
  const auto v = try_fold(e, env);
  if (!v) {
    const std::string missing = first_unresolved(e, env);
    throw CompileError(e.loc, "cannot evaluate '" + e.str() + "'" +
                                  (missing.empty() ? std::string{}
                                                   : " (unresolved: " + missing + ")"));
  }
  return *v;
}

long long fold_int(const Expr& e, const Bindings& env) {
  const double v = fold_scalar(e, env);
  const double r = std::nearbyint(v);
  if (std::fabs(v - r) > 1e-6) {
    throw CompileError(e.loc, "expected integer value from '" + e.str() + "', got " +
                                  std::to_string(v));
  }
  return static_cast<long long>(r);
}

}  // namespace hpf90d::front
