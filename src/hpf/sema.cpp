#include "hpf/sema.hpp"

#include <algorithm>

#include "hpf/fold.hpp"
#include "hpf/intrinsics.hpp"
#include "support/diagnostics.hpp"

namespace hpf90d::front {

using support::CompileError;

int SymbolTable::add(Symbol sym) {
  if (index_.contains(sym.name)) {
    throw CompileError(sym.loc, "duplicate declaration of '" + sym.name + "'");
  }
  const int id = static_cast<int>(symbols_.size());
  index_.emplace(sym.name, id);
  symbols_.push_back(std::move(sym));
  return id;
}

int SymbolTable::find(std::string_view name) const {
  const auto it = index_.find(std::string(name));
  return it == index_.end() ? -1 : it->second;
}

namespace {

TypeBase implicit_type(std::string_view name) {
  const char c = name.empty() ? 'x' : name.front();
  return (c >= 'i' && c <= 'n') ? TypeBase::Integer : TypeBase::Real;
}

/// Numeric type promotion following Fortran rules within the subset.
TypeBase promote(TypeBase a, TypeBase b) {
  if (a == TypeBase::Double || b == TypeBase::Double) return TypeBase::Double;
  if (a == TypeBase::Real || b == TypeBase::Real) return TypeBase::Real;
  if (a == TypeBase::Logical && b == TypeBase::Logical) return TypeBase::Logical;
  return TypeBase::Integer;
}

bool is_numeric(TypeBase t) { return t != TypeBase::Logical; }

class Analyzer {
 public:
  explicit Analyzer(Program& prog) : prog_(prog) {}

  SymbolTable run() {
    register_parameters();
    register_declarations();
    for (auto& stmt : prog_.stmts) analyze_stmt(*stmt);
    return std::move(table_);
  }

 private:
  void register_parameters() {
    Bindings env;
    for (auto& p : prog_.parameters) {
      Symbol sym;
      sym.name = p.name;
      sym.kind = SymbolKind::Param;
      sym.type = implicit_type(p.name);
      sym.loc = p.loc;
      sym.param_value = p.value->clone();
      if (const auto v = try_fold(*p.value, env)) {
        sym.const_value = *v;
        env.set(p.name, *v);
      }
      table_.add(std::move(sym));
    }
  }

  void register_declarations() {
    for (auto& decl : prog_.decls) {
      for (auto& item : decl.items) {
        const int existing = table_.find(item.name);
        if (existing >= 0) {
          // A declared type for an already-registered PARAMETER adjusts its
          // type (e.g. `integer n` + `parameter (n=...)` in either order).
          Symbol& sym = table_.at(existing);
          if (sym.kind == SymbolKind::Param && item.dims.empty()) {
            sym.type = decl.type;
            continue;
          }
          throw CompileError(item.loc, "duplicate declaration of '" + item.name + "'");
        }
        Symbol sym;
        sym.name = item.name;
        sym.kind = item.dims.empty() ? SymbolKind::Scalar : SymbolKind::Array;
        sym.type = decl.type;
        sym.loc = item.loc;
        for (auto& d : item.dims) sym.dims.push_back(d->clone());
        table_.add(std::move(sym));
      }
    }
    // Annotate array extent expressions (they reference parameters or
    // scalars); later stages clone them into iteration bounds and evaluate
    // them against the scalar environment.
    for (std::size_t i = 0; i < table_.size(); ++i) {
      // note: analyze_expr may auto-declare implicit scalars, growing the
      // table — re-index on every access instead of holding a reference
      const std::size_t ndims = table_.at(static_cast<int>(i)).dims.size();
      for (std::size_t d = 0; d < ndims; ++d) {
        analyze_expr(*table_.at(static_cast<int>(i)).dims[d]);
      }
    }
  }

  int ensure_scalar_symbol(const std::string& name, SourceLoc loc, SymbolKind kind) {
    const int found = table_.find(name);
    if (found >= 0) {
      const Symbol& sym = table_.at(found);
      if (sym.kind == SymbolKind::Array) {
        throw CompileError(loc, "'" + name + "' is an array; scalar expected");
      }
      return found;
    }
    Symbol sym;
    sym.name = name;
    sym.kind = kind;
    sym.type = kind == SymbolKind::LoopIndex ? TypeBase::Integer : implicit_type(name);
    sym.loc = loc;
    return table_.add(std::move(sym));
  }

  // -- statements ---------------------------------------------------------
  void analyze_stmt(Stmt& stmt) {
    switch (stmt.kind) {
      case StmtKind::Assign: {
        analyze_expr(*stmt.lhs);
        analyze_expr(*stmt.rhs);
        if (stmt.lhs->kind == ExprKind::Call) {
          throw CompileError(stmt.loc, "cannot assign to intrinsic '" + stmt.lhs->name + "'");
        }
        const int lr = stmt.lhs->rank;
        const int rr = stmt.rhs->rank;
        if (rr != 0 && lr != rr) {
          throw CompileError(stmt.loc,
                             "non-conformable assignment: lhs rank " + std::to_string(lr) +
                                 ", rhs rank " + std::to_string(rr));
        }
        break;
      }
      case StmtKind::Forall: {
        for (auto& idx : stmt.forall_indices) {
          idx.symbol = ensure_scalar_symbol(idx.name, stmt.loc, SymbolKind::LoopIndex);
          analyze_expr(*idx.lo);
          analyze_expr(*idx.hi);
          if (idx.stride) analyze_expr(*idx.stride);
        }
        if (stmt.mask) {
          analyze_expr(*stmt.mask);
          if (stmt.mask->type != TypeBase::Logical) {
            throw CompileError(stmt.mask->loc, "forall mask must be LOGICAL");
          }
        }
        for (auto& s : stmt.body) {
          if (s->kind != StmtKind::Assign && s->kind != StmtKind::Where) {
            throw CompileError(s->loc, "forall body may contain only assignments");
          }
          analyze_stmt(*s);
        }
        break;
      }
      case StmtKind::Where: {
        analyze_expr(*stmt.mask);
        if (stmt.mask->type != TypeBase::Logical || stmt.mask->rank == 0) {
          throw CompileError(stmt.mask->loc, "where mask must be a LOGICAL array");
        }
        for (auto& s : stmt.body) analyze_stmt(*s);
        for (auto& s : stmt.else_body) analyze_stmt(*s);
        break;
      }
      case StmtKind::Do: {
        stmt.do_symbol = ensure_scalar_symbol(stmt.do_var, stmt.loc, SymbolKind::LoopIndex);
        analyze_expr(*stmt.do_lo);
        analyze_expr(*stmt.do_hi);
        if (stmt.do_step) analyze_expr(*stmt.do_step);
        for (auto& s : stmt.body) analyze_stmt(*s);
        break;
      }
      case StmtKind::DoWhile: {
        analyze_expr(*stmt.mask);
        if (stmt.mask->type != TypeBase::Logical) {
          throw CompileError(stmt.mask->loc, "do while condition must be LOGICAL");
        }
        for (auto& s : stmt.body) analyze_stmt(*s);
        break;
      }
      case StmtKind::If: {
        analyze_expr(*stmt.mask);
        if (stmt.mask->type != TypeBase::Logical || stmt.mask->rank != 0) {
          throw CompileError(stmt.mask->loc, "if condition must be scalar LOGICAL");
        }
        for (auto& s : stmt.body) analyze_stmt(*s);
        for (auto& s : stmt.else_body) analyze_stmt(*s);
        break;
      }
      case StmtKind::Print: {
        for (auto& e : stmt.print_args) analyze_expr(*e);
        break;
      }
    }
  }

  // -- expressions ----------------------------------------------------------
  void analyze_expr(Expr& e) {
    switch (e.kind) {
      case ExprKind::IntLit:
        e.type = TypeBase::Integer;
        e.rank = 0;
        break;
      case ExprKind::RealLit:
        e.type = TypeBase::Real;
        e.rank = 0;
        break;
      case ExprKind::LogicalLit:
        e.type = TypeBase::Logical;
        e.rank = 0;
        break;
      case ExprKind::Var:
        analyze_var(e);
        break;
      case ExprKind::ArrayRef:
        analyze_array_ref(e);
        break;
      case ExprKind::Unary: {
        analyze_expr(*e.args[0]);
        e.rank = e.args[0]->rank;
        if (e.un_op == UnOp::Not) {
          if (e.args[0]->type != TypeBase::Logical) {
            throw CompileError(e.loc, ".not. requires a LOGICAL operand");
          }
          e.type = TypeBase::Logical;
        } else {
          if (!is_numeric(e.args[0]->type)) {
            throw CompileError(e.loc, "unary +/- requires a numeric operand");
          }
          e.type = e.args[0]->type;
        }
        break;
      }
      case ExprKind::Binary:
        analyze_binary(e);
        break;
      case ExprKind::Call:
        analyze_call(e);
        break;
    }
  }

  void analyze_var(Expr& e) {
    int id = table_.find(e.name);
    if (id < 0) {
      if (find_intrinsic(e.name)) {
        throw CompileError(e.loc, "intrinsic '" + e.name + "' used without arguments");
      }
      id = ensure_scalar_symbol(e.name, e.loc, SymbolKind::Scalar);
    }
    const Symbol& sym = table_.at(id);
    e.symbol = id;
    e.type = sym.type;
    e.rank = sym.kind == SymbolKind::Array ? sym.rank() : 0;
  }

  void analyze_array_ref(Expr& e) {
    const int id = table_.find(e.name);
    if (id < 0) {
      throw CompileError(e.loc, "use of undeclared array '" + e.name + "'");
    }
    const Symbol& sym = table_.at(id);
    if (sym.kind != SymbolKind::Array) {
      throw CompileError(e.loc, "'" + e.name + "' is not an array");
    }
    if (static_cast<int>(e.subs.size()) != sym.rank()) {
      throw CompileError(e.loc, "'" + e.name + "' has rank " + std::to_string(sym.rank()) +
                                    " but " + std::to_string(e.subs.size()) +
                                    " subscripts were given");
    }
    e.symbol = id;
    e.type = sym.type;
    int rank = 0;
    for (auto& sub : e.subs) {
      switch (sub.kind) {
        case Subscript::Kind::Scalar:
          analyze_expr(*sub.scalar);
          if (sub.scalar->type != TypeBase::Integer) {
            throw CompileError(sub.scalar->loc, "subscript must be INTEGER");
          }
          if (sub.scalar->rank != 0) {
            // vector subscript — irregular access (e.g. the PIC kernel's
            // gather)
            rank = std::max(rank, sub.scalar->rank);
          }
          break;
        case Subscript::Kind::All:
          ++rank;
          break;
        case Subscript::Kind::Triplet:
          if (sub.lo) analyze_expr(*sub.lo);
          if (sub.hi) analyze_expr(*sub.hi);
          if (sub.stride) analyze_expr(*sub.stride);
          ++rank;
          break;
      }
    }
    e.rank = rank;
  }

  void analyze_binary(Expr& e) {
    analyze_expr(*e.args[0]);
    analyze_expr(*e.args[1]);
    const Expr& a = *e.args[0];
    const Expr& b = *e.args[1];
    if (a.rank != 0 && b.rank != 0 && a.rank != b.rank) {
      throw CompileError(e.loc, "non-conformable operands (ranks " +
                                    std::to_string(a.rank) + " and " +
                                    std::to_string(b.rank) + ")");
    }
    e.rank = std::max(a.rank, b.rank);
    switch (e.bin_op) {
      case BinOp::Add:
      case BinOp::Sub:
      case BinOp::Mul:
      case BinOp::Div:
      case BinOp::Pow:
        if (!is_numeric(a.type) || !is_numeric(b.type)) {
          throw CompileError(e.loc, "arithmetic on LOGICAL operand");
        }
        e.type = promote(a.type, b.type);
        break;
      case BinOp::Lt:
      case BinOp::Le:
      case BinOp::Gt:
      case BinOp::Ge:
      case BinOp::Eq:
      case BinOp::Ne:
        e.type = TypeBase::Logical;
        break;
      case BinOp::And:
      case BinOp::Or:
        if (a.type != TypeBase::Logical || b.type != TypeBase::Logical) {
          throw CompileError(e.loc, ".and./.or. require LOGICAL operands");
        }
        e.type = TypeBase::Logical;
        break;
    }
  }

  void analyze_call(Expr& e) {
    // Parser produced Call for `name(scalar-args...)`; decide array vs
    // intrinsic by symbol lookup (declared arrays shadow intrinsics).
    const int id = table_.find(e.name);
    if (id >= 0 && table_.at(id).kind == SymbolKind::Array) {
      // convert to ArrayRef with scalar subscripts
      e.kind = ExprKind::ArrayRef;
      e.subs.reserve(e.args.size());
      for (auto& a : e.args) {
        Subscript sub;
        sub.kind = Subscript::Kind::Scalar;
        sub.scalar = std::move(a);
        e.subs.push_back(std::move(sub));
      }
      e.args.clear();
      analyze_array_ref(e);
      return;
    }
    const auto info = find_intrinsic(e.name);
    if (!info) {
      throw CompileError(e.loc, "unknown function or undeclared array '" + e.name + "'");
    }
    const int argc = static_cast<int>(e.args.size());
    if (argc < info->min_args || argc > info->max_args) {
      throw CompileError(e.loc, "intrinsic '" + e.name + "' takes " +
                                    std::to_string(info->min_args) + ".." +
                                    std::to_string(info->max_args) + " arguments");
    }
    for (auto& a : e.args) analyze_expr(*a);

    switch (info->kind) {
      case IntrinsicKind::Elemental: {
        int rank = 0;
        TypeBase t = e.args[0]->type;
        for (const auto& a : e.args) {
          if (a->rank != 0) {
            if (rank != 0 && a->rank != rank) {
              throw CompileError(e.loc, "non-conformable elemental arguments");
            }
            rank = a->rank;
          }
          t = promote(t, a->type);
        }
        e.rank = rank;
        e.type = t;
        break;
      }
      case IntrinsicKind::Reduction: {
        if (e.args[0]->rank == 0) {
          throw CompileError(e.loc, "'" + e.name + "' requires an array argument");
        }
        const bool has_dim = argc == 2;
        if (has_dim && e.args[1]->rank != 0) {
          throw CompileError(e.loc, "DIM argument must be scalar");
        }
        e.rank = has_dim ? e.args[0]->rank - 1 : 0;
        e.type = e.args[0]->type;
        break;
      }
      case IntrinsicKind::Location: {
        if (e.args[0]->rank != 1) {
          throw CompileError(e.loc, "'" + e.name + "' supports rank-1 arrays only");
        }
        e.rank = 0;
        e.type = TypeBase::Integer;
        break;
      }
      case IntrinsicKind::Shift: {
        if (e.args[0]->rank == 0) {
          throw CompileError(e.loc, "'" + e.name + "' requires an array argument");
        }
        if (e.args[1]->rank != 0) {
          throw CompileError(e.loc, "shift amount must be scalar");
        }
        e.rank = e.args[0]->rank;
        e.type = e.args[0]->type;
        break;
      }
      case IntrinsicKind::Inquiry: {
        e.rank = 0;
        e.type = TypeBase::Integer;
        break;
      }
    }
    switch (info->typing) {
      case ResultTyping::SameAsArg: break;
      case ResultTyping::ForceReal: e.type = TypeBase::Real; break;
      case ResultTyping::ForceDouble: e.type = TypeBase::Double; break;
      case ResultTyping::ForceInteger: e.type = TypeBase::Integer; break;
      case ResultTyping::ForceLogical: e.type = TypeBase::Logical; break;
    }
  }

  Program& prog_;
  SymbolTable table_;
};

}  // namespace

SymbolTable analyze(Program& prog) {
  Analyzer analyzer(prog);
  return analyzer.run();
}

}  // namespace hpf90d::front
