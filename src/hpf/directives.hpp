// directives.hpp — structured form of the HPF mapping directives.
//
// HPF adopts a two-level mapping: arrays are ALIGNed with an abstract index
// space (TEMPLATE), and templates are DISTRIBUTEd onto a rectilinear
// arrangement of abstract PROCESSORS (paper §2). This module parses the raw
// `!HPF$` lines collected by the lexer into that structure; the compiler's
// mapping module (compiler/mapping.hpp) resolves it into concrete ownership
// functions once extents and the machine configuration are known.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "hpf/ast.hpp"

namespace hpf90d::front {

/// `!HPF$ PROCESSORS p(e1[,e2])` — abstract processor arrangement.
struct ProcessorsDirective {
  std::string name;
  std::vector<ExprPtr> extents;  // may reference PARAMETER names
  SourceLoc loc;
};

/// `!HPF$ TEMPLATE t(e1[,e2])`.
struct TemplateDirective {
  std::string name;
  std::vector<ExprPtr> extents;
  SourceLoc loc;
};

/// One target subscript of an ALIGN: either a dummy index (+ constant
/// offset) or `*` (replicate along that template dimension).
struct AlignTargetSub {
  int dummy = -1;          // position in AlignDirective::dummies; -1 for '*'
  long long offset = 0;    // e.g. ALIGN a(i) WITH t(i+1) -> offset 1
  bool star = false;
};

/// `!HPF$ ALIGN a(i,j) WITH t(j,i+1)`.
struct AlignDirective {
  std::string array;
  std::vector<std::string> dummies;  // source dummy index names
  std::string target;                // template (or array) aligned with
  std::vector<AlignTargetSub> target_subs;
  SourceLoc loc;
};

enum class DistKind {
  Block,      // BLOCK
  Cyclic,     // CYCLIC
  Collapsed,  // '*' — dimension not distributed
};

[[nodiscard]] std::string_view dist_kind_name(DistKind k) noexcept;

/// `!HPF$ DISTRIBUTE t(BLOCK,*) [ONTO p]`.
struct DistributeDirective {
  std::string target;  // template or array name
  std::vector<DistKind> pattern;
  std::string onto;  // empty = default processors arrangement
  SourceLoc loc;
};

struct DirectiveSet {
  std::vector<ProcessorsDirective> processors;
  std::vector<TemplateDirective> templates;
  std::vector<AlignDirective> aligns;
  std::vector<DistributeDirective> distributes;
};

/// Parses every raw directive line. Throws support::CompileError on
/// malformed directives or unsupported directive kinds.
[[nodiscard]] DirectiveSet parse_directives(const std::vector<RawDirective>& raw);

}  // namespace hpf90d::front
