#include "hpf/ast.hpp"

#include <sstream>

namespace hpf90d::front {

std::string_view type_base_name(TypeBase t) noexcept {
  switch (t) {
    case TypeBase::Integer: return "integer";
    case TypeBase::Real: return "real";
    case TypeBase::Double: return "double precision";
    case TypeBase::Logical: return "logical";
  }
  return "?";
}

int type_size_bytes(TypeBase t) noexcept {
  switch (t) {
    case TypeBase::Integer: return 4;
    case TypeBase::Real: return 4;
    case TypeBase::Double: return 8;
    case TypeBase::Logical: return 4;
  }
  return 4;
}

std::string_view binop_spelling(BinOp op) noexcept {
  switch (op) {
    case BinOp::Add: return "+";
    case BinOp::Sub: return "-";
    case BinOp::Mul: return "*";
    case BinOp::Div: return "/";
    case BinOp::Pow: return "**";
    case BinOp::Lt: return ".lt.";
    case BinOp::Le: return ".le.";
    case BinOp::Gt: return ".gt.";
    case BinOp::Ge: return ".ge.";
    case BinOp::Eq: return ".eq.";
    case BinOp::Ne: return ".ne.";
    case BinOp::And: return ".and.";
    case BinOp::Or: return ".or.";
  }
  return "?";
}

Subscript Subscript::clone() const {
  Subscript s;
  s.kind = kind;
  if (scalar) s.scalar = scalar->clone();
  if (lo) s.lo = lo->clone();
  if (hi) s.hi = hi->clone();
  if (stride) s.stride = stride->clone();
  return s;
}

ExprPtr Expr::clone() const {
  auto out = std::make_unique<Expr>();
  out->kind = kind;
  out->loc = loc;
  out->int_value = int_value;
  out->real_value = real_value;
  out->bool_value = bool_value;
  out->name = name;
  out->symbol = symbol;
  out->bin_op = bin_op;
  out->un_op = un_op;
  out->type = type;
  out->rank = rank;
  out->args.reserve(args.size());
  for (const auto& a : args) out->args.push_back(a->clone());
  out->subs.reserve(subs.size());
  for (const auto& s : subs) out->subs.push_back(s.clone());
  return out;
}

namespace {
void render_subscript(std::ostringstream& os, const Subscript& s) {
  switch (s.kind) {
    case Subscript::Kind::Scalar:
      os << s.scalar->str();
      break;
    case Subscript::Kind::All:
      os << ':';
      break;
    case Subscript::Kind::Triplet:
      if (s.lo) os << s.lo->str();
      os << ':';
      if (s.hi) os << s.hi->str();
      if (s.stride) os << ':' << s.stride->str();
      break;
  }
}
}  // namespace

std::string Expr::str() const {
  std::ostringstream os;
  switch (kind) {
    case ExprKind::IntLit:
      os << int_value;
      break;
    case ExprKind::RealLit: {
      std::ostringstream tmp;
      tmp << real_value;
      std::string t = tmp.str();
      os << t;
      if (t.find('.') == std::string::npos && t.find('e') == std::string::npos &&
          t.find("inf") == std::string::npos && t.find("nan") == std::string::npos) {
        os << ".0";
      }
      break;
    }
    case ExprKind::LogicalLit:
      os << (bool_value ? ".true." : ".false.");
      break;
    case ExprKind::Var:
      os << name;
      break;
    case ExprKind::ArrayRef: {
      os << name << '(';
      for (std::size_t i = 0; i < subs.size(); ++i) {
        if (i) os << ',';
        render_subscript(os, subs[i]);
      }
      os << ')';
      break;
    }
    case ExprKind::Binary:
      os << '(' << args[0]->str() << ' ' << binop_spelling(bin_op) << ' '
         << args[1]->str() << ')';
      break;
    case ExprKind::Unary:
      os << (un_op == UnOp::Neg ? "(-" : un_op == UnOp::Not ? "(.not. " : "(+")
         << args[0]->str() << ')';
      break;
    case ExprKind::Call: {
      os << name << '(';
      for (std::size_t i = 0; i < args.size(); ++i) {
        if (i) os << ',';
        os << args[i]->str();
      }
      os << ')';
      break;
    }
  }
  return os.str();
}

ExprPtr make_int_lit(long long v, SourceLoc loc) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::IntLit;
  e->loc = loc;
  e->int_value = v;
  e->real_value = static_cast<double>(v);
  e->type = TypeBase::Integer;
  return e;
}

ExprPtr make_real_lit(double v, SourceLoc loc) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::RealLit;
  e->loc = loc;
  e->real_value = v;
  e->type = TypeBase::Real;
  return e;
}

ExprPtr make_var(std::string name, SourceLoc loc) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::Var;
  e->loc = loc;
  e->name = std::move(name);
  return e;
}

ExprPtr make_binary(BinOp op, ExprPtr lhs, ExprPtr rhs) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::Binary;
  e->loc = lhs->loc;
  e->bin_op = op;
  e->args.push_back(std::move(lhs));
  e->args.push_back(std::move(rhs));
  return e;
}

ExprPtr make_unary(UnOp op, ExprPtr operand) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::Unary;
  e->loc = operand->loc;
  e->un_op = op;
  e->args.push_back(std::move(operand));
  return e;
}

ForallIndex ForallIndex::clone() const {
  ForallIndex out;
  out.name = name;
  out.symbol = symbol;
  out.lo = lo->clone();
  out.hi = hi->clone();
  if (stride) out.stride = stride->clone();
  return out;
}

StmtPtr Stmt::clone() const {
  auto out = std::make_unique<Stmt>();
  out->kind = kind;
  out->loc = loc;
  if (lhs) out->lhs = lhs->clone();
  if (rhs) out->rhs = rhs->clone();
  out->forall_indices.reserve(forall_indices.size());
  for (const auto& fi : forall_indices) out->forall_indices.push_back(fi.clone());
  if (mask) out->mask = mask->clone();
  out->do_var = do_var;
  out->do_symbol = do_symbol;
  if (do_lo) out->do_lo = do_lo->clone();
  if (do_hi) out->do_hi = do_hi->clone();
  if (do_step) out->do_step = do_step->clone();
  out->body.reserve(body.size());
  for (const auto& s : body) out->body.push_back(s->clone());
  out->else_body.reserve(else_body.size());
  for (const auto& s : else_body) out->else_body.push_back(s->clone());
  out->print_args.reserve(print_args.size());
  for (const auto& e : print_args) out->print_args.push_back(e->clone());
  return out;
}

std::string Stmt::str(int indent) const {
  const std::string pad(static_cast<std::size_t>(indent) * 2, ' ');
  std::ostringstream os;
  switch (kind) {
    case StmtKind::Assign:
      os << pad << lhs->str() << " = " << rhs->str() << '\n';
      break;
    case StmtKind::Forall: {
      os << pad << "forall (";
      for (std::size_t i = 0; i < forall_indices.size(); ++i) {
        if (i) os << ", ";
        const auto& fi = forall_indices[i];
        os << fi.name << '=' << fi.lo->str() << ':' << fi.hi->str();
        if (fi.stride) os << ':' << fi.stride->str();
      }
      if (mask) os << ", " << mask->str();
      os << ")\n";
      for (const auto& s : body) os << s->str(indent + 1);
      os << pad << "end forall\n";
      break;
    }
    case StmtKind::Where:
      os << pad << "where (" << mask->str() << ")\n";
      for (const auto& s : body) os << s->str(indent + 1);
      if (!else_body.empty()) {
        os << pad << "elsewhere\n";
        for (const auto& s : else_body) os << s->str(indent + 1);
      }
      os << pad << "end where\n";
      break;
    case StmtKind::Do:
      os << pad << "do " << do_var << " = " << do_lo->str() << ", " << do_hi->str();
      if (do_step) os << ", " << do_step->str();
      os << '\n';
      for (const auto& s : body) os << s->str(indent + 1);
      os << pad << "end do\n";
      break;
    case StmtKind::DoWhile:
      os << pad << "do while (" << mask->str() << ")\n";
      for (const auto& s : body) os << s->str(indent + 1);
      os << pad << "end do\n";
      break;
    case StmtKind::If:
      os << pad << "if (" << mask->str() << ") then\n";
      for (const auto& s : body) os << s->str(indent + 1);
      if (!else_body.empty()) {
        os << pad << "else\n";
        for (const auto& s : else_body) os << s->str(indent + 1);
      }
      os << pad << "end if\n";
      break;
    case StmtKind::Print:
      os << pad << "print *";
      for (const auto& e : print_args) os << ", " << e->str();
      os << '\n';
      break;
  }
  return os.str();
}

std::string Program::str() const {
  std::ostringstream os;
  os << "program " << name << '\n';
  for (const auto& d : decls) {
    os << "  " << type_base_name(d.type) << ' ';
    for (std::size_t i = 0; i < d.items.size(); ++i) {
      if (i) os << ", ";
      os << d.items[i].name;
      if (!d.items[i].dims.empty()) {
        os << '(';
        for (std::size_t k = 0; k < d.items[i].dims.size(); ++k) {
          if (k) os << ',';
          os << d.items[i].dims[k]->str();
        }
        os << ')';
      }
    }
    os << '\n';
  }
  for (const auto& p : parameters) {
    os << "  parameter (" << p.name << " = " << p.value->str() << ")\n";
  }
  for (const auto& rd : raw_directives) os << "!hpf$" << rd.text << '\n';
  for (const auto& s : stmts) os << s->str(1);
  os << "end program " << name << '\n';
  return os.str();
}

}  // namespace hpf90d::front
