// parser.hpp — recursive-descent parser for the HPF/Fortran 90D subset.
//
// Grammar covered (the subset the NPAC validation suite exercises):
//   program        ::= PROGRAM name EOL { decl | parameter | stmt } END [PROGRAM [name]]
//   decl           ::= type-spec item {, item}
//   type-spec      ::= INTEGER | REAL | DOUBLE PRECISION | LOGICAL
//   item           ::= name [ '(' dim {, dim} ')' ]
//   parameter      ::= PARAMETER '(' name '=' expr {, name '=' expr} ')'
//   stmt           ::= assignment | forall | where | do | do-while | if | print
//   forall         ::= FORALL '(' index {, index} [, mask] ')' ( assignment | EOL body END FORALL )
//   where          ::= WHERE '(' mask ')' ( assignment | EOL body [ELSEWHERE body] END WHERE )
//   do             ::= DO name '=' expr ',' expr [',' expr] EOL body END DO
//   do-while       ::= DO WHILE '(' expr ')' EOL body END DO
//   if             ::= IF '(' expr ')' ( stmt | THEN EOL body [ELSE body] END IF )
//   print          ::= PRINT '*' {, expr}
//
// HPF directives are parsed separately from the DirectiveLine list collected
// by the lexer (see directives.hpp).
#pragma once

#include <string_view>

#include "hpf/ast.hpp"
#include "hpf/lexer.hpp"

namespace hpf90d::front {

/// Parses a complete source file (lexes it first). Throws
/// support::CompileError on syntax errors.
[[nodiscard]] Program parse_program(std::string_view source);

/// Parses a single expression from text (used by tests and by the critical
/// variable resolver for user-supplied bindings).
[[nodiscard]] ExprPtr parse_expression_text(std::string_view text);

}  // namespace hpf90d::front
