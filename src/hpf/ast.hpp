// ast.hpp — abstract syntax tree for the HPF/Fortran 90D subset.
//
// The tree is deliberately a small set of tagged structs rather than a deep
// class hierarchy: every later stage (normalization, partitioning,
// communication detection, abstraction, functional simulation) walks it
// generically, and the tag + children representation keeps those walks
// simple and fast.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "support/diagnostics.hpp"

namespace hpf90d::front {

using support::SourceLoc;

// ---------------------------------------------------------------------------
// Types
// ---------------------------------------------------------------------------

enum class TypeBase { Integer, Real, Double, Logical };

[[nodiscard]] std::string_view type_base_name(TypeBase t) noexcept;

/// Element size in bytes on the modelled machine (iPSC/860 conventions:
/// INTEGER*4, REAL*4, DOUBLE PRECISION*8, LOGICAL*4).
[[nodiscard]] int type_size_bytes(TypeBase t) noexcept;

// ---------------------------------------------------------------------------
// Expressions
// ---------------------------------------------------------------------------

enum class ExprKind {
  IntLit,
  RealLit,
  LogicalLit,
  Var,       // scalar variable or whole-array name (rank decided by sema)
  ArrayRef,  // a(subscripts...) — element reference or section
  Binary,
  Unary,
  Call,      // intrinsic function call (user functions are out of subset)
};

enum class BinOp { Add, Sub, Mul, Div, Pow, Lt, Le, Gt, Ge, Eq, Ne, And, Or };
enum class UnOp { Neg, Plus, Not };

[[nodiscard]] std::string_view binop_spelling(BinOp op) noexcept;

struct Expr;
using ExprPtr = std::unique_ptr<Expr>;

/// One subscript position of an ArrayRef: either a scalar expression, a
/// section triplet `lo:hi[:stride]`, or a bare `:` (whole extent).
struct Subscript {
  enum class Kind { Scalar, Triplet, All } kind = Kind::Scalar;
  ExprPtr scalar;          // Kind::Scalar
  ExprPtr lo, hi, stride;  // Kind::Triplet; any may be null (default bound)

  [[nodiscard]] Subscript clone() const;
};

struct Expr {
  ExprKind kind = ExprKind::IntLit;
  SourceLoc loc;

  // literals
  long long int_value = 0;
  double real_value = 0.0;
  bool bool_value = false;

  // Var / ArrayRef / Call
  std::string name;   // canonical lower case
  int symbol = -1;    // index into the program symbol table (set by sema)

  BinOp bin_op = BinOp::Add;
  UnOp un_op = UnOp::Neg;

  std::vector<ExprPtr> args;        // Binary: [lhs,rhs]; Unary: [operand]; Call: args
  std::vector<Subscript> subs;      // ArrayRef subscripts

  // Filled in by sema:
  TypeBase type = TypeBase::Real;
  int rank = 0;  // 0 = scalar expression

  [[nodiscard]] ExprPtr clone() const;
  [[nodiscard]] std::string str() const;  // round-trippable Fortran-ish text
};

[[nodiscard]] ExprPtr make_int_lit(long long v, SourceLoc loc = {});
[[nodiscard]] ExprPtr make_real_lit(double v, SourceLoc loc = {});
[[nodiscard]] ExprPtr make_var(std::string name, SourceLoc loc = {});
[[nodiscard]] ExprPtr make_binary(BinOp op, ExprPtr lhs, ExprPtr rhs);
[[nodiscard]] ExprPtr make_unary(UnOp op, ExprPtr operand);

// ---------------------------------------------------------------------------
// Statements
// ---------------------------------------------------------------------------

enum class StmtKind {
  Assign,   // scalar or array assignment
  Forall,   // forall statement or construct
  Where,    // where statement or construct
  Do,       // counted do loop
  DoWhile,  // do while loop
  If,       // block or logical if
  Print,    // print *, ...   (host I/O)
};

struct Stmt;
using StmtPtr = std::unique_ptr<Stmt>;

/// One index of a forall header: `name = lo : hi [: stride]`.
struct ForallIndex {
  std::string name;
  int symbol = -1;
  ExprPtr lo, hi, stride;  // stride may be null (defaults to 1)

  [[nodiscard]] ForallIndex clone() const;
};

struct Stmt {
  StmtKind kind = StmtKind::Assign;
  SourceLoc loc;

  // Assign
  ExprPtr lhs;
  ExprPtr rhs;

  // Forall
  std::vector<ForallIndex> forall_indices;
  ExprPtr mask;  // Forall / Where mask; If / DoWhile condition

  // Do
  std::string do_var;
  int do_symbol = -1;
  ExprPtr do_lo, do_hi, do_step;  // step may be null

  // Bodies: Forall/Where/Do/DoWhile use `body`; If uses `body` (then) and
  // `else_body`; Where uses `body` (where-true) and `else_body` (elsewhere).
  std::vector<StmtPtr> body;
  std::vector<StmtPtr> else_body;

  // Print
  std::vector<ExprPtr> print_args;

  [[nodiscard]] StmtPtr clone() const;
  [[nodiscard]] std::string str(int indent = 0) const;
};

// ---------------------------------------------------------------------------
// Declarations & program unit
// ---------------------------------------------------------------------------

/// One declared entity: `real x(n,m)` produces name "x" with two dimension
/// extent expressions. Scalars have no dims.
struct DeclItem {
  std::string name;
  std::vector<ExprPtr> dims;
  SourceLoc loc;
};

struct Declaration {
  TypeBase type = TypeBase::Real;
  std::vector<DeclItem> items;
};

/// `parameter (name = constant-expr)`.
struct ParameterDef {
  std::string name;
  ExprPtr value;
  SourceLoc loc;
};

/// A raw directive line (the directive parser structures these later; the
/// raw form is kept so tools can re-emit or override directives textually).
struct RawDirective {
  SourceLoc loc;
  std::string text;
};

struct Program {
  std::string name;
  std::vector<Declaration> decls;
  std::vector<ParameterDef> parameters;
  std::vector<RawDirective> raw_directives;
  std::vector<StmtPtr> stmts;

  [[nodiscard]] std::string str() const;
};

}  // namespace hpf90d::front
