#include "hpf/lexer.hpp"

#include <cctype>
#include <cstdlib>

#include "support/text.hpp"

namespace hpf90d::front {

using support::CompileError;
using support::SourceLoc;

std::string_view token_kind_name(TokenKind kind) noexcept {
  switch (kind) {
    case TokenKind::Eof: return "end of file";
    case TokenKind::Eol: return "end of line";
    case TokenKind::Identifier: return "identifier";
    case TokenKind::IntLiteral: return "integer literal";
    case TokenKind::RealLiteral: return "real literal";
    case TokenKind::TrueLiteral: return ".true.";
    case TokenKind::FalseLiteral: return ".false.";
    case TokenKind::LParen: return "'('";
    case TokenKind::RParen: return "')'";
    case TokenKind::Comma: return "','";
    case TokenKind::Colon: return "':'";
    case TokenKind::DoubleColon: return "'::'";
    case TokenKind::Assign: return "'='";
    case TokenKind::Plus: return "'+'";
    case TokenKind::Minus: return "'-'";
    case TokenKind::Star: return "'*'";
    case TokenKind::Slash: return "'/'";
    case TokenKind::Power: return "'**'";
    case TokenKind::Lt: return "'<'";
    case TokenKind::Le: return "'<='";
    case TokenKind::Gt: return "'>'";
    case TokenKind::Ge: return "'>='";
    case TokenKind::Eq: return "'=='";
    case TokenKind::Ne: return "'/='";
    case TokenKind::And: return "'.and.'";
    case TokenKind::Or: return "'.or.'";
    case TokenKind::Not: return "'.not.'";
  }
  return "?";
}

namespace {

/// Character-level scanner over one line.
class LineScanner {
 public:
  LineScanner(std::string_view line, SourceLoc base, std::vector<Token>& out)
      : line_(line), base_(base), out_(out) {}

  /// Returns true if the line ends with a continuation marker `&`.
  bool run() {
    while (true) {
      skip_spaces();
      if (done()) return false;
      if (peek() == '!') return false;  // trailing comment
      if (peek() == '&' && is_last_nonspace()) return true;
      scan_token();
    }
  }

 private:
  [[nodiscard]] bool done() const noexcept { return pos_ >= line_.size(); }
  [[nodiscard]] char peek(std::size_t ahead = 0) const noexcept {
    return pos_ + ahead < line_.size() ? line_[pos_ + ahead] : '\0';
  }
  char advance() noexcept { return line_[pos_++]; }
  [[nodiscard]] SourceLoc loc_here() const noexcept {
    return SourceLoc{base_.line, static_cast<std::uint32_t>(pos_ + 1)};
  }
  void skip_spaces() noexcept {
    while (!done() && (peek() == ' ' || peek() == '\t' || peek() == '\r')) ++pos_;
  }
  [[nodiscard]] bool is_last_nonspace() const noexcept {
    for (std::size_t i = pos_ + 1; i < line_.size(); ++i) {
      const char c = line_[i];
      if (c == '!') break;
      if (c != ' ' && c != '\t' && c != '\r') return false;
    }
    return true;
  }

  void push(TokenKind kind, SourceLoc loc, std::string text = {}) {
    Token tok;
    tok.kind = kind;
    tok.loc = loc;
    tok.text = std::move(text);
    out_.push_back(std::move(tok));
  }

  void scan_token() {
    const SourceLoc loc = loc_here();
    const char c = peek();
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '.' && std::isdigit(static_cast<unsigned char>(peek(1))))) {
      scan_number(loc);
      return;
    }
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      scan_identifier(loc);
      return;
    }
    if (c == '.') {
      scan_dot_operator(loc);
      return;
    }
    scan_symbol(loc);
  }

  void scan_number(SourceLoc loc) {
    const std::size_t start = pos_;
    bool is_real = false;
    while (std::isdigit(static_cast<unsigned char>(peek()))) advance();
    // A '.' begins a fraction unless it starts a dot-operator like
    // `1.and.`; `1.d0` / `1.e5` exponent forms are fractions.
    auto dot_starts_fraction = [&] {
      if (peek() != '.') return false;
      const char c1 = peek(1);
      if (!std::isalpha(static_cast<unsigned char>(c1))) return true;
      if (c1 != 'd' && c1 != 'D' && c1 != 'e' && c1 != 'E') return false;
      const char c2 = peek(2);
      const char c3 = (c2 == '+' || c2 == '-') ? peek(3) : c2;
      return std::isdigit(static_cast<unsigned char>(c3)) != 0;
    };
    if (dot_starts_fraction()) {
      is_real = true;
      advance();
      while (std::isdigit(static_cast<unsigned char>(peek()))) advance();
    }
    char expo = peek();
    if (expo == 'e' || expo == 'E' || expo == 'd' || expo == 'D') {
      const char sign = peek(1);
      const char digit = (sign == '+' || sign == '-') ? peek(2) : sign;
      if (std::isdigit(static_cast<unsigned char>(digit))) {
        is_real = true;
        advance();  // e/d
        if (sign == '+' || sign == '-') advance();
        while (std::isdigit(static_cast<unsigned char>(peek()))) advance();
      }
    }
    std::string text(line_.substr(start, pos_ - start));
    if (is_real) {
      // Fortran double-precision exponent letter 'd' is not valid for strtod.
      std::string cxx_text = text;
      for (char& ch : cxx_text) {
        if (ch == 'd' || ch == 'D') ch = 'e';
      }
      Token tok;
      tok.kind = TokenKind::RealLiteral;
      tok.loc = loc;
      tok.text = std::move(text);
      tok.real_value = std::strtod(cxx_text.c_str(), nullptr);
      out_.push_back(std::move(tok));
    } else {
      Token tok;
      tok.kind = TokenKind::IntLiteral;
      tok.loc = loc;
      tok.int_value = std::strtoll(text.c_str(), nullptr, 10);
      tok.real_value = static_cast<double>(tok.int_value);
      tok.text = std::move(text);
      out_.push_back(std::move(tok));
    }
  }

  void scan_identifier(SourceLoc loc) {
    const std::size_t start = pos_;
    while (std::isalnum(static_cast<unsigned char>(peek())) || peek() == '_') advance();
    push(TokenKind::Identifier, loc,
         support::to_lower(line_.substr(start, pos_ - start)));
  }

  void scan_dot_operator(SourceLoc loc) {
    // `.xxx.` forms: relational / logical operators and logical literals.
    const std::size_t start = pos_;
    advance();  // '.'
    std::string word;
    while (std::isalpha(static_cast<unsigned char>(peek()))) {
      word += static_cast<char>(std::tolower(static_cast<unsigned char>(advance())));
    }
    if (peek() != '.') {
      throw CompileError(loc, "malformed dot-operator starting at '" +
                                  std::string(line_.substr(start, pos_ - start)) + "'");
    }
    advance();  // trailing '.'
    if (word == "lt") push(TokenKind::Lt, loc);
    else if (word == "le") push(TokenKind::Le, loc);
    else if (word == "gt") push(TokenKind::Gt, loc);
    else if (word == "ge") push(TokenKind::Ge, loc);
    else if (word == "eq") push(TokenKind::Eq, loc);
    else if (word == "ne") push(TokenKind::Ne, loc);
    else if (word == "and") push(TokenKind::And, loc);
    else if (word == "or") push(TokenKind::Or, loc);
    else if (word == "not") push(TokenKind::Not, loc);
    else if (word == "true") push(TokenKind::TrueLiteral, loc);
    else if (word == "false") push(TokenKind::FalseLiteral, loc);
    else throw CompileError(loc, "unknown dot-operator '." + word + ".'");
  }

  void scan_symbol(SourceLoc loc) {
    const char c = advance();
    switch (c) {
      case '(': push(TokenKind::LParen, loc); return;
      case ')': push(TokenKind::RParen, loc); return;
      case ',': push(TokenKind::Comma, loc); return;
      case ':':
        if (peek() == ':') { advance(); push(TokenKind::DoubleColon, loc); }
        else push(TokenKind::Colon, loc);
        return;
      case '+': push(TokenKind::Plus, loc); return;
      case '-': push(TokenKind::Minus, loc); return;
      case '*':
        if (peek() == '*') { advance(); push(TokenKind::Power, loc); }
        else push(TokenKind::Star, loc);
        return;
      case '/':
        if (peek() == '=') { advance(); push(TokenKind::Ne, loc); }
        else push(TokenKind::Slash, loc);
        return;
      case '=':
        if (peek() == '=') { advance(); push(TokenKind::Eq, loc); }
        else push(TokenKind::Assign, loc);
        return;
      case '<':
        if (peek() == '=') { advance(); push(TokenKind::Le, loc); }
        else push(TokenKind::Lt, loc);
        return;
      case '>':
        if (peek() == '=') { advance(); push(TokenKind::Ge, loc); }
        else push(TokenKind::Gt, loc);
        return;
      default:
        throw CompileError(loc, std::string("unexpected character '") + c + "'");
    }
  }

  std::string_view line_;
  SourceLoc base_;
  std::vector<Token>& out_;
  std::size_t pos_ = 0;
};

/// True for a directive sentinel at the start of a (trimmed) line.
bool is_directive_line(std::string_view trimmed, std::string_view& payload) {
  for (std::string_view sentinel : {"!hpf$", "chpf$", "!hpf90d$"}) {
    if (support::starts_with_ci(trimmed, sentinel)) {
      payload = trimmed.substr(sentinel.size());
      return true;
    }
  }
  return false;
}

}  // namespace

LexResult lex_source(std::string_view source) {
  LexResult result;
  std::uint32_t line_no = 0;
  bool continuing = false;  // previous line ended with '&'

  std::size_t pos = 0;
  while (pos <= source.size()) {
    std::size_t eol = source.find('\n', pos);
    if (eol == std::string_view::npos) eol = source.size();
    std::string_view line = source.substr(pos, eol - pos);
    ++line_no;

    const std::string_view trimmed = support::trim(line);
    std::string_view payload;
    if (is_directive_line(trimmed, payload)) {
      result.directives.push_back(
          DirectiveLine{SourceLoc{line_no, 1}, std::string(payload)});
    } else if (!trimmed.empty() && trimmed[0] != '!') {
      // A continued statement swallows the Eol of the previous line.
      std::string_view body = line;
      if (continuing) {
        std::string_view t = support::trim(body);
        if (!t.empty() && t[0] == '&') {
          // optional leading '&' on continuation lines
          const std::size_t amp = body.find('&');
          body = body.substr(amp + 1);
        }
      }
      LineScanner scanner(body, SourceLoc{line_no, 1}, result.tokens);
      const bool wants_continuation = scanner.run();
      if (wants_continuation) {
        continuing = true;
      } else {
        Token eol_tok;
        eol_tok.kind = TokenKind::Eol;
        eol_tok.loc = SourceLoc{line_no, static_cast<std::uint32_t>(line.size() + 1)};
        result.tokens.push_back(eol_tok);
        continuing = false;
      }
    }
    // blank/comment lines produce no tokens at all

    if (eol == source.size()) break;
    pos = eol + 1;
  }

  Token eof;
  eof.kind = TokenKind::Eof;
  eof.loc = SourceLoc{line_no, 1};
  result.tokens.push_back(eof);
  return result;
}

std::vector<Token> lex_line(std::string_view line, SourceLoc base_loc) {
  std::vector<Token> tokens;
  LineScanner scanner(line, base_loc, tokens);
  (void)scanner.run();
  Token eol;
  eol.kind = TokenKind::Eol;
  eol.loc = base_loc;
  tokens.push_back(eol);
  Token eof;
  eof.kind = TokenKind::Eof;
  eof.loc = base_loc;
  tokens.push_back(eof);
  return tokens;
}

}  // namespace hpf90d::front
