// token.hpp — token kinds for the HPF/Fortran 90D subset lexer.
#pragma once

#include <string>
#include <string_view>

#include "support/diagnostics.hpp"

namespace hpf90d::front {

enum class TokenKind {
  // end markers
  Eof,
  Eol,  // Fortran is line oriented; statement boundaries matter

  // literals & names
  Identifier,
  IntLiteral,
  RealLiteral,
  TrueLiteral,   // .true.
  FalseLiteral,  // .false.

  // punctuation
  LParen,
  RParen,
  Comma,
  Colon,
  DoubleColon,
  Assign,  // =

  // arithmetic
  Plus,
  Minus,
  Star,
  Slash,
  Power,  // **

  // relational (both F77 dot-form and F90 symbolic form map here)
  Lt,
  Le,
  Gt,
  Ge,
  Eq,
  Ne,

  // logical
  And,
  Or,
  Not,
};

[[nodiscard]] std::string_view token_kind_name(TokenKind kind) noexcept;

struct Token {
  TokenKind kind = TokenKind::Eof;
  support::SourceLoc loc;
  std::string text;       // identifier text (lower-cased) or literal spelling
  long long int_value = 0;
  double real_value = 0.0;

  [[nodiscard]] bool is(TokenKind k) const noexcept { return kind == k; }
  /// True when this token is the identifier `word` (case already folded).
  [[nodiscard]] bool is_word(std::string_view word) const noexcept {
    return kind == TokenKind::Identifier && text == word;
  }
};

}  // namespace hpf90d::front
