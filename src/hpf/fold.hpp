// fold.hpp — scalar constant evaluation of AST expressions against a set of
// name→value bindings. Used wherever the pipeline needs a concrete number
// from source text: PARAMETER definitions, template/array extents, forall
// and do-loop bounds in the predictor, and critical-variable resolution.
#pragma once

#include <map>
#include <optional>
#include <string>

#include "hpf/ast.hpp"

namespace hpf90d::front {

/// Name → scalar value environment. Names are canonical lower case. Values
/// are stored as double; integer semantics (truncating division, mod) are
/// applied based on the expression's inferred types.
class Bindings {
 public:
  Bindings() = default;

  void set(std::string name, double value);
  void set_int(std::string name, long long value);
  [[nodiscard]] std::optional<double> get(std::string_view name) const;
  [[nodiscard]] bool contains(std::string_view name) const;

  /// Merges `other` over *this (entries in `other` win).
  void merge(const Bindings& other);

  [[nodiscard]] const std::map<std::string, double, std::less<>>& values() const {
    return map_;
  }

 private:
  std::map<std::string, double, std::less<>> map_;
};

/// Evaluates a scalar expression. Returns nullopt when the expression
/// references a name absent from `env`, contains an array-valued term, or
/// uses a non-foldable intrinsic.
[[nodiscard]] std::optional<double> try_fold(const Expr& e, const Bindings& env);

/// Like try_fold but throws support::CompileError naming the unresolved
/// symbol — used where a value is mandatory (extents, loop bounds).
[[nodiscard]] double fold_scalar(const Expr& e, const Bindings& env);

/// Folds and truncates to a (checked) integer; throws when non-integral by
/// more than rounding noise or unresolvable.
[[nodiscard]] long long fold_int(const Expr& e, const Bindings& env);

}  // namespace hpf90d::front
