#include "hpf/directives.hpp"

#include "hpf/lexer.hpp"
#include "hpf/parser.hpp"
#include "support/diagnostics.hpp"

namespace hpf90d::front {

using support::CompileError;

std::string_view dist_kind_name(DistKind k) noexcept {
  switch (k) {
    case DistKind::Block: return "BLOCK";
    case DistKind::Cyclic: return "CYCLIC";
    case DistKind::Collapsed: return "*";
  }
  return "?";
}

namespace {

/// Cursor over one directive line's tokens.
class DirectiveParser {
 public:
  DirectiveParser(const RawDirective& raw, DirectiveSet& out)
      : raw_(raw), tokens_(lex_line(raw.text, raw.loc)), out_(out) {}

  void parse() {
    if (at_word("processors")) {
      parse_processors();
    } else if (at_word("template")) {
      parse_template();
    } else if (at_word("align")) {
      parse_align();
    } else if (at_word("distribute")) {
      parse_distribute();
    } else {
      throw CompileError(raw_.loc, "unsupported HPF directive: '" + raw_.text + "'");
    }
  }

 private:
  [[nodiscard]] const Token& peek(std::size_t ahead = 0) const {
    const std::size_t i = pos_ + ahead;
    return i < tokens_.size() ? tokens_[i] : tokens_.back();
  }
  const Token& advance() { return tokens_[pos_ < tokens_.size() - 1 ? pos_++ : pos_]; }
  [[nodiscard]] bool at(TokenKind k) const { return peek().kind == k; }
  [[nodiscard]] bool at_word(std::string_view w) const { return peek().is_word(w); }
  void expect(TokenKind k, std::string_view what) {
    if (!at(k)) throw CompileError(peek().loc, "directive: expected " + std::string(what));
    advance();
  }
  std::string expect_name(std::string_view what) {
    if (!at(TokenKind::Identifier)) {
      throw CompileError(peek().loc, "directive: expected " + std::string(what));
    }
    return advance().text;
  }

  /// Parses a scalar expression from the remaining tokens of this line up
  /// to the next ',' or ')' at depth 0. Extents are simple (names,
  /// integers, small arithmetic), so a sub-parse over the slice suffices.
  ExprPtr parse_extent() {
    std::size_t depth = 0;
    std::size_t end = pos_;
    while (end < tokens_.size()) {
      const TokenKind k = tokens_[end].kind;
      if (k == TokenKind::LParen) ++depth;
      if (k == TokenKind::RParen) {
        if (depth == 0) break;
        --depth;
      }
      if (k == TokenKind::Comma && depth == 0) break;
      if (k == TokenKind::Eol || k == TokenKind::Eof) break;
      ++end;
    }
    std::string text;
    for (std::size_t i = pos_; i < end; ++i) {
      const Token& t = tokens_[i];
      switch (t.kind) {
        case TokenKind::Identifier: text += t.text; break;
        case TokenKind::IntLiteral:
        case TokenKind::RealLiteral: text += t.text; break;
        case TokenKind::Plus: text += '+'; break;
        case TokenKind::Minus: text += '-'; break;
        case TokenKind::Star: text += '*'; break;
        case TokenKind::Slash: text += '/'; break;
        case TokenKind::Power: text += "**"; break;
        case TokenKind::LParen: text += '('; break;
        case TokenKind::RParen: text += ')'; break;
        default:
          throw CompileError(t.loc, "directive: unexpected token in extent");
      }
    }
    pos_ = end;
    if (text.empty()) throw CompileError(peek().loc, "directive: empty extent");
    ExprPtr e = parse_expression_text(text);
    e->loc = raw_.loc;
    return e;
  }

  void parse_processors() {
    advance();  // processors
    ProcessorsDirective d;
    d.loc = raw_.loc;
    d.name = expect_name("processors arrangement name");
    expect(TokenKind::LParen, "'('");
    while (true) {
      d.extents.push_back(parse_extent());
      if (at(TokenKind::Comma)) {
        advance();
        continue;
      }
      break;
    }
    expect(TokenKind::RParen, "')'");
    out_.processors.push_back(std::move(d));
  }

  void parse_template() {
    advance();  // template
    TemplateDirective d;
    d.loc = raw_.loc;
    d.name = expect_name("template name");
    expect(TokenKind::LParen, "'('");
    while (true) {
      d.extents.push_back(parse_extent());
      if (at(TokenKind::Comma)) {
        advance();
        continue;
      }
      break;
    }
    expect(TokenKind::RParen, "')'");
    out_.templates.push_back(std::move(d));
  }

  void parse_align() {
    advance();  // align
    AlignDirective d;
    d.loc = raw_.loc;
    d.array = expect_name("aligned array name");
    expect(TokenKind::LParen, "'('");
    while (true) {
      d.dummies.push_back(expect_name("align dummy index"));
      if (at(TokenKind::Comma)) {
        advance();
        continue;
      }
      break;
    }
    expect(TokenKind::RParen, "')'");
    if (!at_word("with")) {
      throw CompileError(peek().loc, "directive: expected WITH in ALIGN");
    }
    advance();
    d.target = expect_name("align target name");
    expect(TokenKind::LParen, "'('");
    while (true) {
      d.target_subs.push_back(parse_align_target_sub(d));
      if (at(TokenKind::Comma)) {
        advance();
        continue;
      }
      break;
    }
    expect(TokenKind::RParen, "')'");
    out_.aligns.push_back(std::move(d));
  }

  AlignTargetSub parse_align_target_sub(const AlignDirective& d) {
    AlignTargetSub sub;
    if (at(TokenKind::Star)) {
      advance();
      sub.star = true;
      return sub;
    }
    const std::string name = expect_name("align target subscript");
    for (std::size_t i = 0; i < d.dummies.size(); ++i) {
      if (d.dummies[i] == name) {
        sub.dummy = static_cast<int>(i);
        break;
      }
    }
    if (sub.dummy < 0) {
      throw CompileError(raw_.loc, "ALIGN target subscript '" + name +
                                       "' is not a dummy of the source");
    }
    if (at(TokenKind::Plus) || at(TokenKind::Minus)) {
      const bool neg = at(TokenKind::Minus);
      advance();
      if (!at(TokenKind::IntLiteral)) {
        throw CompileError(peek().loc, "ALIGN offset must be an integer literal");
      }
      sub.offset = advance().int_value * (neg ? -1 : 1);
    }
    return sub;
  }

  void parse_distribute() {
    advance();  // distribute
    DistributeDirective d;
    d.loc = raw_.loc;
    d.target = expect_name("distribute target");
    expect(TokenKind::LParen, "'('");
    while (true) {
      if (at(TokenKind::Star)) {
        advance();
        d.pattern.push_back(DistKind::Collapsed);
      } else if (at_word("block")) {
        advance();
        d.pattern.push_back(DistKind::Block);
      } else if (at_word("cyclic")) {
        advance();
        d.pattern.push_back(DistKind::Cyclic);
      } else {
        throw CompileError(peek().loc,
                           "DISTRIBUTE pattern must be BLOCK, CYCLIC, or '*'");
      }
      if (at(TokenKind::Comma)) {
        advance();
        continue;
      }
      break;
    }
    expect(TokenKind::RParen, "')'");
    if (at_word("onto")) {
      advance();
      d.onto = expect_name("processors arrangement name");
    }
    out_.distributes.push_back(std::move(d));
  }

  const RawDirective& raw_;
  std::vector<Token> tokens_;
  DirectiveSet& out_;
  std::size_t pos_ = 0;
};

}  // namespace

DirectiveSet parse_directives(const std::vector<RawDirective>& raw) {
  DirectiveSet out;
  for (const auto& line : raw) {
    DirectiveParser parser(line, out);
    parser.parse();
  }
  return out;
}

}  // namespace hpf90d::front
