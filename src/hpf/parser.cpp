#include "hpf/parser.hpp"

#include <array>
#include <optional>

#include "support/text.hpp"

namespace hpf90d::front {

using support::CompileError;
using support::SourceLoc;

namespace {

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Program parse_program_unit(std::vector<DirectiveLine> directives) {
    Program prog;
    for (const auto& d : directives) {
      prog.raw_directives.push_back(RawDirective{d.loc, d.text});
    }
    skip_eols();
    expect_word("program");
    prog.name = expect_identifier("program name");
    expect(TokenKind::Eol);

    while (!at_word("end")) {
      if (at(TokenKind::Eof)) {
        throw CompileError(peek().loc, "missing 'end program'");
      }
      if (at_decl_start()) {
        prog.decls.push_back(parse_declaration());
      } else if (at_word("parameter")) {
        parse_parameter(prog);
      } else {
        prog.stmts.push_back(parse_statement());
      }
      skip_eols();
    }
    expect_word("end");
    if (at_word("program")) {
      advance();
      if (at(TokenKind::Identifier)) advance();  // optional trailing name
    }
    return prog;
  }

  ExprPtr parse_single_expression() {
    ExprPtr e = parse_expr();
    if (!at(TokenKind::Eol) && !at(TokenKind::Eof)) {
      throw CompileError(peek().loc, "trailing tokens after expression");
    }
    return e;
  }

 private:
  // -- token cursor -----------------------------------------------------
  [[nodiscard]] const Token& peek(std::size_t ahead = 0) const {
    const std::size_t i = pos_ + ahead;
    return i < tokens_.size() ? tokens_[i] : tokens_.back();
  }
  const Token& advance() { return tokens_[pos_ < tokens_.size() - 1 ? pos_++ : pos_]; }
  [[nodiscard]] bool at(TokenKind k) const { return peek().kind == k; }
  [[nodiscard]] bool at_word(std::string_view w) const { return peek().is_word(w); }

  void expect(TokenKind k) {
    if (!at(k)) {
      throw CompileError(peek().loc, std::string("expected ") +
                                         std::string(token_kind_name(k)) +
                                         ", found '" + peek().text + "'");
    }
    advance();
  }
  void expect_word(std::string_view w) {
    if (!at_word(w)) {
      throw CompileError(peek().loc, "expected '" + std::string(w) + "', found '" +
                                         peek().text + "'");
    }
    advance();
  }
  std::string expect_identifier(std::string_view what) {
    if (!at(TokenKind::Identifier)) {
      throw CompileError(peek().loc, "expected " + std::string(what));
    }
    return advance().text;
  }
  void skip_eols() {
    while (at(TokenKind::Eol)) advance();
  }

  // -- declarations -----------------------------------------------------
  [[nodiscard]] bool at_decl_start() const {
    return at_word("integer") || at_word("real") || at_word("logical") ||
           (at_word("double") && peek(1).is_word("precision"));
  }

  Declaration parse_declaration() {
    Declaration decl;
    if (at_word("double")) {
      advance();
      expect_word("precision");
      decl.type = TypeBase::Double;
    } else if (at_word("integer")) {
      advance();
      decl.type = TypeBase::Integer;
    } else if (at_word("real")) {
      advance();
      decl.type = TypeBase::Real;
    } else {
      expect_word("logical");
      decl.type = TypeBase::Logical;
    }
    if (at(TokenKind::DoubleColon)) advance();  // optional F90 `::`

    while (true) {
      DeclItem item;
      item.loc = peek().loc;
      item.name = expect_identifier("declared name");
      if (at(TokenKind::LParen)) {
        advance();
        while (true) {
          item.dims.push_back(parse_expr());
          if (at(TokenKind::Comma)) {
            advance();
            continue;
          }
          break;
        }
        expect(TokenKind::RParen);
      }
      decl.items.push_back(std::move(item));
      if (at(TokenKind::Comma)) {
        advance();
        continue;
      }
      break;
    }
    expect(TokenKind::Eol);
    return decl;
  }

  void parse_parameter(Program& prog) {
    expect_word("parameter");
    expect(TokenKind::LParen);
    while (true) {
      ParameterDef def;
      def.loc = peek().loc;
      def.name = expect_identifier("parameter name");
      expect(TokenKind::Assign);
      def.value = parse_expr();
      prog.parameters.push_back(std::move(def));
      if (at(TokenKind::Comma)) {
        advance();
        continue;
      }
      break;
    }
    expect(TokenKind::RParen);
    expect(TokenKind::Eol);
  }

  // -- statements ---------------------------------------------------------
  StmtPtr parse_statement() {
    if (at_word("forall")) return parse_forall();
    if (at_word("where")) return parse_where();
    if (at_word("do")) return parse_do();
    if (at_word("if")) return parse_if();
    if (at_word("print")) return parse_print();
    return parse_assignment();
  }

  StmtPtr parse_assignment() {
    auto stmt = std::make_unique<Stmt>();
    stmt->kind = StmtKind::Assign;
    stmt->loc = peek().loc;
    stmt->lhs = parse_primary();  // variable or array-ref only
    if (stmt->lhs->kind != ExprKind::Var && stmt->lhs->kind != ExprKind::ArrayRef &&
        stmt->lhs->kind != ExprKind::Call) {
      throw CompileError(stmt->loc, "assignment target must be a variable or array element/section");
    }
    expect(TokenKind::Assign);
    stmt->rhs = parse_expr();
    expect(TokenKind::Eol);
    return stmt;
  }

  /// Parses an assignment without requiring EOL (single-statement forms).
  StmtPtr parse_inline_assignment() {
    auto stmt = std::make_unique<Stmt>();
    stmt->kind = StmtKind::Assign;
    stmt->loc = peek().loc;
    stmt->lhs = parse_primary();
    expect(TokenKind::Assign);
    stmt->rhs = parse_expr();
    return stmt;
  }

  StmtPtr parse_forall() {
    auto stmt = std::make_unique<Stmt>();
    stmt->kind = StmtKind::Forall;
    stmt->loc = peek().loc;
    expect_word("forall");
    expect(TokenKind::LParen);

    // index specs first; a trailing element that is not `name = lo:hi` is the mask
    while (true) {
      if (at(TokenKind::Identifier) && peek(1).is(TokenKind::Assign)) {
        ForallIndex idx;
        idx.name = advance().text;
        expect(TokenKind::Assign);
        idx.lo = parse_expr();
        expect(TokenKind::Colon);
        idx.hi = parse_expr();
        if (at(TokenKind::Colon)) {
          advance();
          idx.stride = parse_expr();
        }
        stmt->forall_indices.push_back(std::move(idx));
      } else {
        stmt->mask = parse_expr();
        break;
      }
      if (at(TokenKind::Comma)) {
        advance();
        continue;
      }
      break;
    }
    expect(TokenKind::RParen);
    if (stmt->forall_indices.empty()) {
      throw CompileError(stmt->loc, "forall requires at least one index spec");
    }

    if (at(TokenKind::Eol)) {
      // construct form
      advance();
      skip_eols();
      while (!at_end_of("forall")) {
        stmt->body.push_back(parse_statement());
        skip_eols();
      }
      consume_end_of("forall");
    } else {
      stmt->body.push_back(parse_inline_assignment());
      expect(TokenKind::Eol);
    }
    return stmt;
  }

  StmtPtr parse_where() {
    auto stmt = std::make_unique<Stmt>();
    stmt->kind = StmtKind::Where;
    stmt->loc = peek().loc;
    expect_word("where");
    expect(TokenKind::LParen);
    stmt->mask = parse_expr();
    expect(TokenKind::RParen);

    if (at(TokenKind::Eol)) {
      advance();
      skip_eols();
      while (!at_end_of("where") && !at_word("elsewhere")) {
        stmt->body.push_back(parse_statement());
        skip_eols();
      }
      if (at_word("elsewhere")) {
        advance();
        expect(TokenKind::Eol);
        skip_eols();
        while (!at_end_of("where")) {
          stmt->else_body.push_back(parse_statement());
          skip_eols();
        }
      }
      consume_end_of("where");
    } else {
      stmt->body.push_back(parse_inline_assignment());
      expect(TokenKind::Eol);
    }
    return stmt;
  }

  StmtPtr parse_do() {
    auto stmt = std::make_unique<Stmt>();
    stmt->loc = peek().loc;
    expect_word("do");
    if (at_word("while")) {
      advance();
      stmt->kind = StmtKind::DoWhile;
      expect(TokenKind::LParen);
      stmt->mask = parse_expr();
      expect(TokenKind::RParen);
    } else {
      stmt->kind = StmtKind::Do;
      stmt->do_var = expect_identifier("do loop variable");
      expect(TokenKind::Assign);
      stmt->do_lo = parse_expr();
      expect(TokenKind::Comma);
      stmt->do_hi = parse_expr();
      if (at(TokenKind::Comma)) {
        advance();
        stmt->do_step = parse_expr();
      }
    }
    expect(TokenKind::Eol);
    skip_eols();
    while (!at_end_of("do")) {
      stmt->body.push_back(parse_statement());
      skip_eols();
    }
    consume_end_of("do");
    return stmt;
  }

  StmtPtr parse_if() {
    auto stmt = std::make_unique<Stmt>();
    stmt->kind = StmtKind::If;
    stmt->loc = peek().loc;
    expect_word("if");
    expect(TokenKind::LParen);
    stmt->mask = parse_expr();
    expect(TokenKind::RParen);

    if (at_word("then")) {
      advance();
      expect(TokenKind::Eol);
      skip_eols();
      while (!at_end_of("if") && !at_word("else") && !at_word("elseif")) {
        stmt->body.push_back(parse_statement());
        skip_eols();
      }
      if (at_word("elseif")) {
        // treat `elseif (c) then` as `else` + nested if
        advance();
        auto nested = std::make_unique<Stmt>();
        nested->kind = StmtKind::If;
        nested->loc = peek().loc;
        expect(TokenKind::LParen);
        nested->mask = parse_expr();
        expect(TokenKind::RParen);
        expect_word("then");
        expect(TokenKind::Eol);
        skip_eols();
        while (!at_end_of("if") && !at_word("else")) {
          nested->body.push_back(parse_statement());
          skip_eols();
        }
        if (at_word("else")) {
          advance();
          expect(TokenKind::Eol);
          skip_eols();
          while (!at_end_of("if")) {
            nested->else_body.push_back(parse_statement());
            skip_eols();
          }
        }
        consume_end_of("if");
        stmt->else_body.push_back(std::move(nested));
        return stmt;
      }
      if (at_word("else")) {
        advance();
        expect(TokenKind::Eol);
        skip_eols();
        while (!at_end_of("if")) {
          stmt->else_body.push_back(parse_statement());
          skip_eols();
        }
      }
      consume_end_of("if");
    } else {
      // logical if: one inline statement
      if (at_word("print")) {
        stmt->body.push_back(parse_print_tail(/*consume_eol=*/true));
      } else {
        stmt->body.push_back(parse_inline_assignment());
        expect(TokenKind::Eol);
      }
    }
    return stmt;
  }

  StmtPtr parse_print() {
    expect_word("print");
    return parse_print_tail(/*consume_eol=*/true);
  }

  StmtPtr parse_print_tail(bool consume_eol) {
    auto stmt = std::make_unique<Stmt>();
    stmt->kind = StmtKind::Print;
    stmt->loc = peek().loc;
    if (at_word("print")) advance();  // when called from logical-if path
    expect(TokenKind::Star);
    while (at(TokenKind::Comma)) {
      advance();
      stmt->print_args.push_back(parse_expr());
    }
    if (consume_eol) expect(TokenKind::Eol);
    return stmt;
  }

  // `end do`, `enddo`, `end forall`, `endforall`, ...
  [[nodiscard]] bool at_end_of(std::string_view what) const {
    if (peek().is_word(std::string("end") + std::string(what))) return true;
    return at_word("end") && peek(1).is_word(what);
  }
  void consume_end_of(std::string_view what) {
    if (peek().is_word(std::string("end") + std::string(what))) {
      advance();
    } else {
      expect_word("end");
      expect_word(what);
    }
    if (!at(TokenKind::Eof)) expect(TokenKind::Eol);
  }

  // -- expressions --------------------------------------------------------
  // precedence (low→high): .or. | .and. | .not. | relational | +- | */ | unary | ** | primary
  ExprPtr parse_expr() { return parse_or(); }

  ExprPtr parse_or() {
    ExprPtr lhs = parse_and();
    while (at(TokenKind::Or)) {
      advance();
      lhs = make_binary(BinOp::Or, std::move(lhs), parse_and());
    }
    return lhs;
  }

  ExprPtr parse_and() {
    ExprPtr lhs = parse_not();
    while (at(TokenKind::And)) {
      advance();
      lhs = make_binary(BinOp::And, std::move(lhs), parse_not());
    }
    return lhs;
  }

  ExprPtr parse_not() {
    if (at(TokenKind::Not)) {
      const SourceLoc loc = peek().loc;
      advance();
      auto e = make_unary(UnOp::Not, parse_not());
      e->loc = loc;
      return e;
    }
    return parse_relational();
  }

  ExprPtr parse_relational() {
    ExprPtr lhs = parse_additive();
    const TokenKind k = peek().kind;
    std::optional<BinOp> op;
    switch (k) {
      case TokenKind::Lt: op = BinOp::Lt; break;
      case TokenKind::Le: op = BinOp::Le; break;
      case TokenKind::Gt: op = BinOp::Gt; break;
      case TokenKind::Ge: op = BinOp::Ge; break;
      case TokenKind::Eq: op = BinOp::Eq; break;
      case TokenKind::Ne: op = BinOp::Ne; break;
      default: break;
    }
    if (op) {
      advance();
      lhs = make_binary(*op, std::move(lhs), parse_additive());
    }
    return lhs;
  }

  ExprPtr parse_additive() {
    ExprPtr lhs = parse_multiplicative();
    while (at(TokenKind::Plus) || at(TokenKind::Minus)) {
      const BinOp op = at(TokenKind::Plus) ? BinOp::Add : BinOp::Sub;
      advance();
      lhs = make_binary(op, std::move(lhs), parse_multiplicative());
    }
    return lhs;
  }

  ExprPtr parse_multiplicative() {
    ExprPtr lhs = parse_unary();
    while (at(TokenKind::Star) || at(TokenKind::Slash)) {
      const BinOp op = at(TokenKind::Star) ? BinOp::Mul : BinOp::Div;
      advance();
      lhs = make_binary(op, std::move(lhs), parse_unary());
    }
    return lhs;
  }

  ExprPtr parse_unary() {
    if (at(TokenKind::Minus)) {
      const SourceLoc loc = peek().loc;
      advance();
      auto e = make_unary(UnOp::Neg, parse_unary());
      e->loc = loc;
      return e;
    }
    if (at(TokenKind::Plus)) {
      advance();
      return parse_unary();
    }
    return parse_power();
  }

  ExprPtr parse_power() {
    ExprPtr base = parse_primary();
    if (at(TokenKind::Power)) {
      advance();
      // right-associative; exponent may itself be unary (e.g. x**-2)
      return make_binary(BinOp::Pow, std::move(base), parse_unary());
    }
    return base;
  }

  ExprPtr parse_primary() {
    const Token& tok = peek();
    switch (tok.kind) {
      case TokenKind::IntLiteral: {
        auto e = make_int_lit(tok.int_value, tok.loc);
        advance();
        return e;
      }
      case TokenKind::RealLiteral: {
        auto e = make_real_lit(tok.real_value, tok.loc);
        advance();
        return e;
      }
      case TokenKind::TrueLiteral:
      case TokenKind::FalseLiteral: {
        auto e = std::make_unique<Expr>();
        e->kind = ExprKind::LogicalLit;
        e->loc = tok.loc;
        e->bool_value = tok.kind == TokenKind::TrueLiteral;
        e->type = TypeBase::Logical;
        advance();
        return e;
      }
      case TokenKind::LParen: {
        advance();
        ExprPtr inner = parse_expr();
        expect(TokenKind::RParen);
        return inner;
      }
      case TokenKind::Identifier: {
        std::string name = tok.text;
        const SourceLoc loc = tok.loc;
        advance();
        if (!at(TokenKind::LParen)) return make_var(std::move(name), loc);
        return parse_ref_or_call(std::move(name), loc);
      }
      default:
        throw CompileError(tok.loc, "expected expression, found " +
                                        std::string(token_kind_name(tok.kind)));
    }
  }

  /// Parses `name( ... )`. Produces an ArrayRef when any argument position
  /// uses section syntax; otherwise a Call node that sema re-classifies as
  /// an array element reference or intrinsic call.
  ExprPtr parse_ref_or_call(std::string name, SourceLoc loc) {
    expect(TokenKind::LParen);
    std::vector<Subscript> subs;
    bool has_section = false;
    while (true) {
      Subscript sub = parse_subscript();
      has_section = has_section || sub.kind != Subscript::Kind::Scalar;
      subs.push_back(std::move(sub));
      if (at(TokenKind::Comma)) {
        advance();
        continue;
      }
      break;
    }
    expect(TokenKind::RParen);

    auto e = std::make_unique<Expr>();
    e->loc = loc;
    e->name = std::move(name);
    if (has_section) {
      e->kind = ExprKind::ArrayRef;
      e->subs = std::move(subs);
    } else {
      e->kind = ExprKind::Call;
      e->args.reserve(subs.size());
      for (auto& s : subs) e->args.push_back(std::move(s.scalar));
    }
    return e;
  }

  Subscript parse_subscript() {
    Subscript sub;
    // leading ':' — no lower bound
    if (at(TokenKind::Colon)) {
      advance();
      if (at(TokenKind::Comma) || at(TokenKind::RParen)) {
        sub.kind = Subscript::Kind::All;
        return sub;
      }
      sub.kind = Subscript::Kind::Triplet;
      sub.hi = parse_expr();
      if (at(TokenKind::Colon)) {
        advance();
        sub.stride = parse_expr();
      }
      return sub;
    }
    ExprPtr first = parse_expr();
    if (!at(TokenKind::Colon)) {
      sub.kind = Subscript::Kind::Scalar;
      sub.scalar = std::move(first);
      return sub;
    }
    advance();  // ':'
    sub.kind = Subscript::Kind::Triplet;
    sub.lo = std::move(first);
    if (!at(TokenKind::Comma) && !at(TokenKind::RParen) && !at(TokenKind::Colon)) {
      sub.hi = parse_expr();
    }
    if (at(TokenKind::Colon)) {
      advance();
      sub.stride = parse_expr();
    }
    return sub;
  }

  std::vector<Token> tokens_;
  std::size_t pos_ = 0;
};

}  // namespace

Program parse_program(std::string_view source) {
  LexResult lexed = lex_source(source);
  Parser parser(std::move(lexed.tokens));
  return parser.parse_program_unit(std::move(lexed.directives));
}

ExprPtr parse_expression_text(std::string_view text) {
  std::vector<Token> tokens = lex_line(text, SourceLoc{1, 1});
  Parser parser(std::move(tokens));
  return parser.parse_single_expression();
}

}  // namespace hpf90d::front
