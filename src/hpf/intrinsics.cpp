#include "hpf/intrinsics.hpp"

#include <array>

namespace hpf90d::front {

namespace {
constexpr std::array<IntrinsicInfo, 25> kIntrinsics = {{
    // elemental math
    {"exp", IntrinsicKind::Elemental, 1, 1, ResultTyping::SameAsArg},
    {"log", IntrinsicKind::Elemental, 1, 1, ResultTyping::SameAsArg},
    {"sqrt", IntrinsicKind::Elemental, 1, 1, ResultTyping::SameAsArg},
    {"abs", IntrinsicKind::Elemental, 1, 1, ResultTyping::SameAsArg},
    {"sin", IntrinsicKind::Elemental, 1, 1, ResultTyping::SameAsArg},
    {"cos", IntrinsicKind::Elemental, 1, 1, ResultTyping::SameAsArg},
    {"atan", IntrinsicKind::Elemental, 1, 1, ResultTyping::SameAsArg},
    {"mod", IntrinsicKind::Elemental, 2, 2, ResultTyping::SameAsArg},
    {"min", IntrinsicKind::Elemental, 2, 8, ResultTyping::SameAsArg},
    {"max", IntrinsicKind::Elemental, 2, 8, ResultTyping::SameAsArg},
    {"sign", IntrinsicKind::Elemental, 2, 2, ResultTyping::SameAsArg},
    {"merge", IntrinsicKind::Elemental, 3, 3, ResultTyping::SameAsArg},
    // type conversion (elemental)
    {"real", IntrinsicKind::Elemental, 1, 1, ResultTyping::ForceReal},
    {"float", IntrinsicKind::Elemental, 1, 1, ResultTyping::ForceReal},
    {"dble", IntrinsicKind::Elemental, 1, 1, ResultTyping::ForceDouble},
    {"int", IntrinsicKind::Elemental, 1, 1, ResultTyping::ForceInteger},
    {"nint", IntrinsicKind::Elemental, 1, 1, ResultTyping::ForceInteger},
    // reductions
    {"sum", IntrinsicKind::Reduction, 1, 2, ResultTyping::SameAsArg},
    {"product", IntrinsicKind::Reduction, 1, 2, ResultTyping::SameAsArg},
    {"maxval", IntrinsicKind::Reduction, 1, 2, ResultTyping::SameAsArg},
    {"minval", IntrinsicKind::Reduction, 1, 2, ResultTyping::SameAsArg},
    {"maxloc", IntrinsicKind::Location, 1, 1, ResultTyping::ForceInteger},
    // shifts (tshift is the NPAC shift-to-temporary variant of cshift)
    {"cshift", IntrinsicKind::Shift, 2, 3, ResultTyping::SameAsArg},
    {"tshift", IntrinsicKind::Shift, 2, 3, ResultTyping::SameAsArg},
    // inquiry
    {"size", IntrinsicKind::Inquiry, 1, 2, ResultTyping::ForceInteger},
}};
}  // namespace

std::optional<IntrinsicInfo> find_intrinsic(std::string_view name) {
  for (const auto& info : kIntrinsics) {
    if (info.name == name) return info;
  }
  return std::nullopt;
}

bool is_reduction_intrinsic(std::string_view name) {
  const auto info = find_intrinsic(name);
  return info && (info->kind == IntrinsicKind::Reduction ||
                  info->kind == IntrinsicKind::Location);
}

}  // namespace hpf90d::front
