#include "obs/obs.hpp"

#include <chrono>
#include <functional>
#include <thread>

#include "support/text.hpp"

namespace hpf90d::obs {

const char* phase_name(Phase phase) noexcept {
  switch (phase) {
    case Phase::Compile: return "compile";
    case Phase::LayoutBuild: return "layout_build";
    case Phase::SpillLoad: return "spill_load";
    case Phase::SpillStore: return "spill_store";
    case Phase::ChunkSchedule: return "chunk_schedule";
    case Phase::LockstepWindow: return "lockstep_window";
    case Phase::ScalarReplay: return "scalar_replay";
    case Phase::MeasureBatch: return "measure_batch";
    case Phase::QueueWait: return "queue_wait";
    case Phase::JobExecute: return "job_execute";
  }
  return "unknown";
}

std::uint64_t now_ns() noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

namespace {

/// Stable small tag for the calling thread (trace rows are grouped by it).
std::uint32_t thread_tag() noexcept {
  const std::size_t h = std::hash<std::thread::id>{}(std::this_thread::get_id());
  return static_cast<std::uint32_t>(h ^ (h >> 32));
}

}  // namespace

void Span::finish() noexcept {
  SpanRecord rec;
  rec.phase = phase_;
  rec.thread = thread_tag();
  rec.start_ns = start_ns_;
  const std::uint64_t end = now_ns();
  rec.dur_ns = end > start_ns_ ? end - start_ns_ : 0;
  rec.arg = arg_;
  sink_->record(rec);
}

Tracer::Tracer(std::size_t capacity) : capacity_(capacity == 0 ? 1 : capacity) {
  ring_.reserve(capacity_);
}

void Tracer::record(const SpanRecord& span) noexcept {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (ring_.size() < capacity_) {
    ring_.push_back(span);
  } else {
    ring_[next_] = span;
    next_ = (next_ + 1) % capacity_;
  }
  ++recorded_;
}

std::vector<SpanRecord> Tracer::snapshot() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::vector<SpanRecord> out;
  out.reserve(ring_.size());
  // ring_[next_..) holds the oldest retained spans once the ring wrapped
  for (std::size_t i = 0; i < ring_.size(); ++i) {
    out.push_back(ring_[(next_ + i) % ring_.size()]);
  }
  return out;
}

std::uint64_t Tracer::recorded() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return recorded_;
}

std::uint64_t Tracer::dropped() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return recorded_ - ring_.size();
}

void Tracer::clear() {
  const std::lock_guard<std::mutex> lock(mutex_);
  ring_.clear();
  next_ = 0;
  recorded_ = 0;
}

std::string Tracer::chrome_trace_json() const {
  const std::vector<SpanRecord> spans = snapshot();
  // Chrome's trace_event format: an array of complete ("X") events with
  // microsecond timestamps. pid is fixed (one process), tid groups rows.
  std::string out = "{\"traceEvents\":[";
  bool first = true;
  for (const SpanRecord& s : spans) {
    if (!first) out += ',';
    first = false;
    out += support::strfmt(
        "{\"name\":\"%s\",\"ph\":\"X\",\"pid\":1,\"tid\":%u,"
        "\"ts\":%.3f,\"dur\":%.3f,\"args\":{\"arg\":%llu}}",
        phase_name(s.phase), s.thread, static_cast<double>(s.start_ns) / 1e3,
        static_cast<double>(s.dur_ns) / 1e3,
        static_cast<unsigned long long>(s.arg));
  }
  out += "]}";
  return out;
}

}  // namespace hpf90d::obs
