#include "obs/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "support/text.hpp"

namespace hpf90d::obs {

namespace {

/// Prometheus sample value: integers render bare (no ".0"), everything
/// else as %.17g — both deterministic for equal inputs.
std::string pnum(double v) {
  if (std::isfinite(v) && v == std::floor(v) && std::abs(v) < 1e15) {
    return support::strfmt("%lld", static_cast<long long>(v));
  }
  return support::strfmt("%.17g", v);
}

}  // namespace

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
  std::sort(bounds_.begin(), bounds_.end());
  bounds_.erase(std::unique(bounds_.begin(), bounds_.end()), bounds_.end());
  buckets_ = std::make_unique<std::atomic<std::uint64_t>[]>(bounds_.size());
  for (std::size_t i = 0; i < bounds_.size(); ++i) buckets_[i].store(0);
}

void Histogram::observe(double v) noexcept {
  // Non-cumulative per-bound counts stored; exposition accumulates. Only
  // the first bound >= v is incremented, so observe is O(log n) + one add.
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), v);
  if (it != bounds_.end()) {
    buckets_[static_cast<std::size_t>(it - bounds_.begin())].fetch_add(
        1, std::memory_order_relaxed);
  }
  count_.fetch_add(1, std::memory_order_relaxed);
  // relaxed CAS loop: contended sums lose no updates, order is irrelevant
  double cur = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(cur, cur + v, std::memory_order_relaxed)) {
  }
}

std::uint64_t Histogram::bucket(std::size_t i) const noexcept {
  std::uint64_t cum = 0;
  for (std::size_t j = 0; j <= i && j < bounds_.size(); ++j) {
    cum += buckets_[j].load(std::memory_order_relaxed);
  }
  return cum;
}

double Histogram::sum() const noexcept { return sum_.load(std::memory_order_relaxed); }

Counter& Registry::counter(const std::string& name, std::string help) {
  const std::lock_guard<std::mutex> lock(mutex_);
  auto it = metrics_.find(name);
  if (it == metrics_.end()) {
    Entry e;
    e.kind = Kind::Counter;
    e.help = std::move(help);
    e.counter = std::make_unique<Counter>();
    it = metrics_.emplace(name, std::move(e)).first;
  } else if (it->second.kind != Kind::Counter) {
    throw std::logic_error("obs::Registry: " + name + " already registered as another kind");
  }
  return *it->second.counter;
}

Gauge& Registry::gauge(const std::string& name, std::string help) {
  const std::lock_guard<std::mutex> lock(mutex_);
  auto it = metrics_.find(name);
  if (it == metrics_.end()) {
    Entry e;
    e.kind = Kind::Gauge;
    e.help = std::move(help);
    e.gauge = std::make_unique<Gauge>();
    it = metrics_.emplace(name, std::move(e)).first;
  } else if (it->second.kind != Kind::Gauge) {
    throw std::logic_error("obs::Registry: " + name + " already registered as another kind");
  }
  return *it->second.gauge;
}

Histogram& Registry::histogram(const std::string& name, std::string help,
                               std::vector<double> bounds) {
  const std::lock_guard<std::mutex> lock(mutex_);
  auto it = metrics_.find(name);
  if (it == metrics_.end()) {
    Entry e;
    e.kind = Kind::Histogram;
    e.help = std::move(help);
    e.histogram = std::make_unique<Histogram>(std::move(bounds));
    it = metrics_.emplace(name, std::move(e)).first;
  } else if (it->second.kind != Kind::Histogram) {
    throw std::logic_error("obs::Registry: " + name + " already registered as another kind");
  }
  return *it->second.histogram;
}

std::string Registry::prometheus() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::string out;
  // std::map iterates sorted by name — the exposition order contract.
  for (const auto& [name, e] : metrics_) {
    out += "# HELP " + name + ' ' + e.help + '\n';
    switch (e.kind) {
      case Kind::Counter:
        out += "# TYPE " + name + " counter\n";
        out += name + ' ' + pnum(static_cast<double>(e.counter->value())) + '\n';
        break;
      case Kind::Gauge:
        out += "# TYPE " + name + " gauge\n";
        out += name + ' ' + pnum(e.gauge->value()) + '\n';
        break;
      case Kind::Histogram: {
        out += "# TYPE " + name + " histogram\n";
        const Histogram& h = *e.histogram;
        for (std::size_t i = 0; i < h.bounds().size(); ++i) {
          out += name + "_bucket{le=\"" + pnum(h.bounds()[i]) + "\"} " +
                 pnum(static_cast<double>(h.bucket(i))) + '\n';
        }
        out += name + "_bucket{le=\"+Inf\"} " +
               pnum(static_cast<double>(h.count())) + '\n';
        out += name + "_sum " + pnum(h.sum()) + '\n';
        out += name + "_count " + pnum(static_cast<double>(h.count())) + '\n';
        break;
      }
    }
  }
  return out;
}

}  // namespace hpf90d::obs
