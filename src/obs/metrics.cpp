#include "obs/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "support/text.hpp"

namespace hpf90d::obs {

namespace {

/// Prometheus sample value: integers render bare (no ".0"), everything
/// else as %.17g — both deterministic for equal inputs.
std::string pnum(double v) {
  if (std::isfinite(v) && v == std::floor(v) && std::abs(v) < 1e15) {
    return support::strfmt("%lld", static_cast<long long>(v));
  }
  return support::strfmt("%.17g", v);
}

/// Prometheus label-value escaping: backslash, double quote, newline.
std::string escape_label(const std::string& v) {
  std::string out;
  out.reserve(v.size());
  for (const char c : v) {
    if (c == '\\') out += "\\\\";
    else if (c == '"') out += "\\\"";
    else if (c == '\n') out += "\\n";
    else out += c;
  }
  return out;
}

/// Canonical label block: pairs sorted by key, values escaped, rendered
/// as {k="v",k2="v2"} ("" for an empty set). Doubles as the child map key,
/// so two spellings of the same label set share one instrument.
std::string label_block(const obs::Labels& labels) {
  if (labels.empty()) return {};
  obs::Labels sorted = labels;
  std::sort(sorted.begin(), sorted.end());
  std::string out = "{";
  for (std::size_t i = 0; i < sorted.size(); ++i) {
    if (i > 0) out += ',';
    out += sorted[i].first + "=\"" + escape_label(sorted[i].second) + '"';
  }
  out += '}';
  return out;
}

/// The overflow child's block: same keys, every value "_overflow".
std::string overflow_block(const obs::Labels& labels) {
  obs::Labels capped = labels;
  for (auto& kv : capped) kv.second = "_overflow";
  return label_block(capped);
}

}  // namespace

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
  std::sort(bounds_.begin(), bounds_.end());
  bounds_.erase(std::unique(bounds_.begin(), bounds_.end()), bounds_.end());
  buckets_ = std::make_unique<std::atomic<std::uint64_t>[]>(bounds_.size());
  for (std::size_t i = 0; i < bounds_.size(); ++i) buckets_[i].store(0);
}

void Histogram::observe(double v) noexcept {
  // Non-cumulative per-bound counts stored; exposition accumulates. Only
  // the first bound >= v is incremented, so observe is O(log n) + one add.
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), v);
  if (it != bounds_.end()) {
    buckets_[static_cast<std::size_t>(it - bounds_.begin())].fetch_add(
        1, std::memory_order_relaxed);
  }
  count_.fetch_add(1, std::memory_order_relaxed);
  // relaxed CAS loop: contended sums lose no updates, order is irrelevant
  double cur = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(cur, cur + v, std::memory_order_relaxed)) {
  }
}

std::uint64_t Histogram::bucket(std::size_t i) const noexcept {
  std::uint64_t cum = 0;
  for (std::size_t j = 0; j <= i && j < bounds_.size(); ++j) {
    cum += buckets_[j].load(std::memory_order_relaxed);
  }
  return cum;
}

double Histogram::sum() const noexcept { return sum_.load(std::memory_order_relaxed); }

Registry::Entry& Registry::family(const std::string& name, std::string&& help,
                                  Kind kind) {
  auto it = metrics_.find(name);
  if (it == metrics_.end()) {
    Entry e;
    e.kind = kind;
    e.help = std::move(help);
    it = metrics_.emplace(name, std::move(e)).first;
  } else if (it->second.kind != kind) {
    throw std::logic_error("obs::Registry: " + name + " already registered as another kind");
  }
  return it->second;
}

Counter& Registry::counter(const std::string& name, std::string help,
                           const Labels& labels) {
  const std::lock_guard<std::mutex> lock(mutex_);
  Entry& e = family(name, std::move(help), Kind::Counter);
  std::string block = label_block(labels);
  auto child = e.counters.find(block);
  if (child == e.counters.end()) {
    // fixed-cardinality bound: a new label set past the cap lands on the
    // shared overflow child instead of growing the family
    if (!block.empty() && e.counters.size() >= kMaxChildren) {
      block = overflow_block(labels);
      child = e.counters.find(block);
    }
    if (child == e.counters.end()) {
      child = e.counters.emplace(std::move(block), std::make_unique<Counter>()).first;
    }
  }
  return *child->second;
}

Gauge& Registry::gauge(const std::string& name, std::string help,
                       const Labels& labels) {
  const std::lock_guard<std::mutex> lock(mutex_);
  Entry& e = family(name, std::move(help), Kind::Gauge);
  std::string block = label_block(labels);
  auto child = e.gauges.find(block);
  if (child == e.gauges.end()) {
    if (!block.empty() && e.gauges.size() >= kMaxChildren) {
      block = overflow_block(labels);
      child = e.gauges.find(block);
    }
    if (child == e.gauges.end()) {
      child = e.gauges.emplace(std::move(block), std::make_unique<Gauge>()).first;
    }
  }
  return *child->second;
}

Histogram& Registry::histogram(const std::string& name, std::string help,
                               std::vector<double> bounds) {
  const std::lock_guard<std::mutex> lock(mutex_);
  Entry& e = family(name, std::move(help), Kind::Histogram);
  if (!e.histogram) e.histogram = std::make_unique<Histogram>(std::move(bounds));
  return *e.histogram;
}

std::string Registry::prometheus() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::string out;
  // std::map iterates sorted by name — the exposition order contract.
  for (const auto& [name, e] : metrics_) {
    out += "# HELP " + name + ' ' + e.help + '\n';
    switch (e.kind) {
      case Kind::Counter:
        out += "# TYPE " + name + " counter\n";
        // map order: the unlabeled sample ("") first, then children
        // sorted by label block
        for (const auto& [block, c] : e.counters) {
          out += name + block + ' ' + pnum(static_cast<double>(c->value())) + '\n';
        }
        break;
      case Kind::Gauge:
        out += "# TYPE " + name + " gauge\n";
        for (const auto& [block, g] : e.gauges) {
          out += name + block + ' ' + pnum(g->value()) + '\n';
        }
        break;
      case Kind::Histogram: {
        out += "# TYPE " + name + " histogram\n";
        const Histogram& h = *e.histogram;
        for (std::size_t i = 0; i < h.bounds().size(); ++i) {
          out += name + "_bucket{le=\"" + pnum(h.bounds()[i]) + "\"} " +
                 pnum(static_cast<double>(h.bucket(i))) + '\n';
        }
        out += name + "_bucket{le=\"+Inf\"} " +
               pnum(static_cast<double>(h.count())) + '\n';
        out += name + "_sum " + pnum(h.sum()) + '\n';
        out += name + "_count " + pnum(static_cast<double>(h.count())) + '\n';
        break;
      }
    }
  }
  return out;
}

}  // namespace hpf90d::obs
