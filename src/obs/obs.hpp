// obs.hpp — tracing spans for the framework's own runtime.
//
// The paper's tool explains where an HPF program spends its time; this
// module explains where *we* spend ours. Every interesting unit of work —
// a compilation, a layout build, a lockstep window, a scalar replay, a
// daemon job — can open an RAII Span against a nullable Sink. With no sink
// attached (the default everywhere) a Span is two pointer-sized stores and
// one well-predicted branch: no clock is read, no allocation happens, and
// every report stays byte-identical to the untraced run. With a sink the
// span is clocked on construction and recorded on destruction.
//
// The stock sink is Tracer: a bounded in-memory ring of SpanRecords
// (oldest spans overwritten, never unbounded growth) that snapshots into a
// Chrome trace_event JSON export — load it in chrome://tracing or Perfetto
// to see a sweep's compile/layout/lockstep/replay timeline per thread.
//
// Thread safety: Sink::record must be callable from any thread. Tracer
// serializes on one mutex; a span is recorded once at end-of-scope, never
// per IR node, so the lock is far off every hot path.
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace hpf90d::obs {

/// The traced units of work, one per subsystem that owns a measurable
/// phase. Kept intentionally coarse: spans mark work a human would look
/// for in a timeline, not individual IR visits.
enum class Phase : std::uint8_t {
  Compile,         // compiler pipeline, source -> CompiledProgram
  LayoutBuild,     // make_layout on a layout-store miss
  SpillLoad,       // artifact-spill probe answering a layout miss
  SpillStore,      // write-through of a freshly built layout
  ChunkSchedule,   // Session::run flattening + chunk partition
  LockstepWindow,  // one BatchEngine lockstep walk (arg = lanes)
  ScalarReplay,    // scalar replays of evicted lanes (arg = points)
  MeasureBatch,    // batched simulated measurement (arg = lanes)
  QueueWait,       // daemon job waiting in the tenant queue (arg = job id)
  JobExecute,      // daemon job running through Session::run (arg = job id)
};

/// Number of Phase values (for per-phase tables).
constexpr std::size_t kPhaseCount = static_cast<std::size_t>(Phase::JobExecute) + 1;

/// Stable lower-case name ("compile", "lockstep_window", ...), used by the
/// trace export and the daemon's per-phase metrics.
[[nodiscard]] const char* phase_name(Phase phase) noexcept;

/// One completed span. Timestamps are steady-clock nanoseconds (relative
/// times are meaningful; the absolute origin is the process clock).
struct SpanRecord {
  Phase phase = Phase::Compile;
  std::uint32_t thread = 0;   // stable per-thread tag (hashed thread id)
  std::uint64_t start_ns = 0;
  std::uint64_t dur_ns = 0;
  std::uint64_t arg = 0;      // phase-specific payload (lanes, points, job id)
};

/// Destination for completed spans. Implementations must tolerate
/// concurrent record() calls from many threads.
class Sink {
 public:
  virtual ~Sink() = default;
  virtual void record(const SpanRecord& span) noexcept = 0;
};

/// Steady-clock nanoseconds (the span timebase).
[[nodiscard]] std::uint64_t now_ns() noexcept;

/// RAII span: clocks itself on construction and records into the sink on
/// destruction. A null sink disables everything — the constructor is then
/// a branch and two stores, so spans can sit permanently on warm paths.
class Span {
 public:
  explicit Span(Sink* sink, Phase phase, std::uint64_t arg = 0) noexcept
      : sink_(sink), phase_(phase), arg_(arg) {
    if (sink_ != nullptr) start_ns_ = now_ns();
  }
  ~Span() {
    if (sink_ != nullptr) finish();
  }

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  /// Updates the payload before the span closes (e.g. a lane count known
  /// only after the walk).
  void set_arg(std::uint64_t arg) noexcept { arg_ = arg; }

 private:
  void finish() noexcept;

  Sink* sink_;
  Phase phase_;
  std::uint64_t arg_;
  std::uint64_t start_ns_ = 0;
};

/// Bounded in-memory span ring. Capacity is fixed at construction; once
/// full, new spans overwrite the oldest (`dropped()` counts the
/// casualties), so a long-lived daemon can leave tracing on forever at a
/// fixed memory cost.
class Tracer : public Sink {
 public:
  explicit Tracer(std::size_t capacity = 1 << 14);

  void record(const SpanRecord& span) noexcept override;

  /// The retained spans, oldest first.
  [[nodiscard]] std::vector<SpanRecord> snapshot() const;

  /// Lifetime spans seen / spans overwritten by ring wrap-around.
  [[nodiscard]] std::uint64_t recorded() const;
  [[nodiscard]] std::uint64_t dropped() const;
  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }

  /// Chrome trace_event JSON ("X" complete events, microsecond timebase):
  /// load in chrome://tracing / Perfetto. Deterministic given the ring
  /// contents (spans render oldest first).
  [[nodiscard]] std::string chrome_trace_json() const;

  void clear();

 private:
  const std::size_t capacity_;
  mutable std::mutex mutex_;
  std::vector<SpanRecord> ring_;  // circular once size() == capacity_
  std::size_t next_ = 0;          // overwrite cursor
  std::uint64_t recorded_ = 0;
};

}  // namespace hpf90d::obs
