// metrics.hpp — typed metrics registry with Prometheus text exposition.
//
// The daemon (and any embedder) needs live numbers, not just end-of-run
// report footers: queue depth, per-phase wall-time distributions, lockstep
// occupancy, spill hit ratios. A Registry owns named Counters, Gauges and
// Histograms; every instrument is lock-free to update (atomics only) and
// the registry renders a deterministic Prometheus text exposition —
// metrics sorted by name, fixed number formatting — so two snapshots of
// equal state are byte-identical and tests can assert on the text.
//
// Registration (counter()/gauge()/histogram()) takes a mutex and is meant
// for startup; updates (add/set/observe) never lock. Returned references
// are stable for the registry's lifetime.
//
// Counters and gauges optionally carry a label set (e.g. {tenant="a",
// state="done"}): children of one family share HELP/TYPE and render
// sorted by their canonical label block, so the exposition stays
// deterministic. Label sets are meant to be small and fixed-cardinality;
// the registry enforces the bound — once a family has kMaxChildren
// distinct label sets, further *new* sets all collapse into one overflow
// child (every value replaced by "_overflow") instead of growing without
// bound or throwing on a hot path.
//
// Counter semantics are Prometheus-monotonic: they only increase, and a
// daemon restart resets them to zero (scrapers handle resets via rate()).
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace hpf90d::obs {

/// One child's label set: (key, value) pairs. Order is irrelevant — the
/// registry canonicalizes by sorting on key — and values may hold
/// arbitrary bytes (quoted/escaped in the exposition).
using Labels = std::vector<std::pair<std::string, std::string>>;

/// Monotonically increasing integer (resets only with its registry).
class Counter {
 public:
  void add(std::uint64_t n = 1) noexcept { value_.fetch_add(n, std::memory_order_relaxed); }
  [[nodiscard]] std::uint64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Instantaneous value, settable from any thread.
class Gauge {
 public:
  void set(double v) noexcept { value_.store(v, std::memory_order_relaxed); }
  [[nodiscard]] double value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<double> value_{0.0};
};

/// Cumulative histogram over fixed bucket upper bounds (+Inf implicit).
/// observe() is wait-free (one fetch_add per bucket walk + CAS-free sum
/// accumulation via compare_exchange on a relaxed double).
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds);

  void observe(double v) noexcept;

  [[nodiscard]] const std::vector<double>& bounds() const noexcept { return bounds_; }
  /// Cumulative count for bucket i (observations <= bounds()[i]).
  [[nodiscard]] std::uint64_t bucket(std::size_t i) const noexcept;
  [[nodiscard]] std::uint64_t count() const noexcept {
    return count_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] double sum() const noexcept;

 private:
  std::vector<double> bounds_;  // sorted ascending
  std::unique_ptr<std::atomic<std::uint64_t>[]> buckets_;  // per-bound counts
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

/// Named instruments + deterministic exposition. Names must match
/// Prometheus conventions ([a-zA-Z_:][a-zA-Z0-9_:]*); the registry does
/// not validate, it trusts its (in-process) callers.
class Registry {
 public:
  /// Distinct label sets one family can hold before new sets collapse
  /// into the shared overflow child.
  static constexpr std::size_t kMaxChildren = 64;

  /// Idempotent: a second registration of the same (name, labels) returns
  /// the existing instrument (help text of the first registration wins).
  /// Registering one name as two different kinds throws std::logic_error.
  /// The default (empty) label set is the conventional unlabeled sample;
  /// it coexists with labeled children of the same family. Histograms are
  /// always unlabeled.
  Counter& counter(const std::string& name, std::string help,
                   const Labels& labels = {});
  Gauge& gauge(const std::string& name, std::string help,
               const Labels& labels = {});
  Histogram& histogram(const std::string& name, std::string help,
                       std::vector<double> bounds);

  /// Prometheus text exposition (version 0.0.4): HELP/TYPE comments, then
  /// samples. Metrics render sorted by name, children of a family by
  /// their canonical label block; numbers use %.17g (integers render as
  /// integers), so equal state always renders byte-identically.
  [[nodiscard]] std::string prometheus() const;

 private:
  enum class Kind { Counter, Gauge, Histogram };
  struct Entry {
    Kind kind;
    std::string help;
    // children keyed by rendered label block ("" = the unlabeled sample);
    // map order is the exposition order
    std::map<std::string, std::unique_ptr<Counter>> counters;
    std::map<std::string, std::unique_ptr<Gauge>> gauges;
    std::unique_ptr<Histogram> histogram;
  };

  Entry& family(const std::string& name, std::string&& help, Kind kind);

  mutable std::mutex mutex_;
  std::map<std::string, Entry> metrics_;
};

}  // namespace hpf90d::obs
