// comm_analysis.hpp — communication detection (paper §4.1 step 4).
//
// Given a normalized forall (iteration space + element-wise assignment), the
// analysis applies the owner-computes rule to the LHS and classifies every
// RHS reference to a distributed array relative to the LHS home:
//
//   * aligned, same index + same net offset      -> no communication
//   * same index, constant offset delta          -> OverlapComm (ghost exchange;
//                                                   the forall's "first
//                                                   communication level")
//   * loop-invariant subscript on a distributed
//     dim (e.g. a(i,1))                          -> SliceBroadcast
//   * affine non-unit / transposed index         -> GatherComm(Remap)
//   * vector subscript (a(ix(k)))                -> GatherComm(Irregular)
//   * vector-subscripted LHS                     -> ScatterComm after the loop
//
// Only structure is decided here; message volumes depend on extents and the
// processor grid and are evaluated at interpretation / simulation time.
#pragma once

#include <map>
#include <vector>

#include "compiler/spmd_ir.hpp"
#include "hpf/directives.hpp"
#include "hpf/sema.hpp"

namespace hpf90d::compiler {

/// Structural (extent-free) mapping of one array dimension.
struct StructDim {
  front::DistKind kind = front::DistKind::Collapsed;
  int tmpl_dim = -1;        // aligned template dimension
  long long offset = 0;     // align offset
  std::string tmpl;         // template name
};

/// Array symbol -> per-dimension structural mapping (only arrays with
/// ALIGN directives appear; everything else is replicated).
using StructuralMaps = std::map<int, std::vector<StructDim>>;

[[nodiscard]] StructuralMaps build_structural_maps(const front::DirectiveSet& directives,
                                                   const front::SymbolTable& symbols);

struct CommRequirement {
  enum class Type { Overlap, Gather, Scatter, SliceBroadcast };
  Type type = Type::Overlap;
  int array = -1;
  int dim = 0;              // array dimension (0-based)
  long long offset = 0;     // Overlap: signed ghost offset
  GatherPattern pattern = GatherPattern::Irregular;
  std::string note;
};

/// Owner-computes partition derived from the LHS.
struct LoopPartition {
  int home_symbol = -1;                    // -1: replicated computation
  std::vector<int> home_driver;            // per home-array dim: space pos or -1
  std::vector<long long> home_driver_offset;
};

struct CommAnalysis {
  LoopPartition partition;
  std::vector<CommRequirement> pre;   // executed before the local loop
  std::vector<CommRequirement> post;  // executed after the local loop
};

/// Analyzes one normalized forall body assignment. `inner_arg` is the
/// argument of a dim-reduction (may be null); `inner_symbol` its index.
[[nodiscard]] CommAnalysis analyze_forall(
    const std::vector<IterIndex>& space, const front::Expr& lhs, const front::Expr* rhs,
    const front::Expr* mask, const front::Expr* inner_arg, int inner_symbol,
    const StructuralMaps& maps, const front::SymbolTable& symbols);

}  // namespace hpf90d::compiler
