#include "compiler/serialize.hpp"

#include <cstdlib>
#include <stdexcept>

#include "support/text.hpp"

namespace hpf90d::compiler {

namespace {

constexpr std::string_view kLayoutHeader = "hpf90d-layout 1";
constexpr std::string_view kRecipeHeader = "hpf90d-recipe 1";

/// Cursor over the line-oriented serialized form. Fields within a line are
/// tab-separated; identifiers and %.17g numbers never contain tabs, and
/// source text travels length-prefixed, so no escaping is needed.
class LineReader {
 public:
  explicit LineReader(std::string_view text) : text_(text) {}

  [[nodiscard]] std::string_view next_line() {
    if (pos_ > text_.size()) {
      throw std::invalid_argument("layout/recipe deserialize: unexpected end of input");
    }
    std::size_t eol = text_.find('\n', pos_);
    if (eol == std::string_view::npos) eol = text_.size();
    const std::string_view line = text_.substr(pos_, eol - pos_);
    pos_ = eol + 1;
    return line;
  }

  /// Raw byte access for length-prefixed payloads (recipe source text).
  [[nodiscard]] std::string_view take_bytes(std::size_t n) {
    if (pos_ + n > text_.size()) {
      throw std::invalid_argument("layout/recipe deserialize: truncated payload");
    }
    const std::string_view bytes = text_.substr(pos_, n);
    pos_ += n;
    // consume the newline the writer appends after the payload
    if (pos_ < text_.size() && text_[pos_] == '\n') ++pos_;
    return bytes;
  }

  [[nodiscard]] bool at_end() const noexcept { return pos_ >= text_.size(); }

 private:
  std::string_view text_;
  std::size_t pos_ = 0;
};

std::vector<std::string> fields_of(std::string_view line, std::size_t expect,
                                   std::string_view what) {
  const auto cells = support::split(line, '\t');
  if (cells.size() != expect) {
    throw std::invalid_argument("layout/recipe deserialize: bad " + std::string(what) +
                                " line: " + std::string(line));
  }
  return cells;
}

long long to_ll(const std::string& s) { return std::strtoll(s.c_str(), nullptr, 10); }
double to_d(const std::string& s) { return std::strtod(s.c_str(), nullptr); }

}  // namespace

std::string serialize_layout(const DataLayout& layout) {
  std::string out(kLayoutHeader);
  out += '\n';

  out += support::strfmt("grid\t%d", layout.grid_.rank());
  for (const int s : layout.grid_.shape) out += support::strfmt("\t%d", s);
  out += '\n';

  out += support::strfmt("env\t%zu\n", layout.env_.values().size());
  for (const auto& [name, value] : layout.env_.values()) {
    out += name;
    out += support::strfmt("\t%.17g\n", value);
  }

  out += support::strfmt("templates\t%zu\n", layout.template_names_.size());
  for (const auto& name : layout.template_names_) {
    out += name;
    out += '\n';
  }

  out += support::strfmt("extents\t%zu\n", layout.extents_.size());
  for (const auto& se : layout.extents_) {
    out += se.name;
    out += support::strfmt("\t%d\t%zu", se.dims ? 1 : 0,
                           se.dims ? se.dims->size() : std::size_t{0});
    if (se.dims) {
      for (const long long d : *se.dims) out += support::strfmt("\t%lld", d);
    }
    out += '\n';
  }

  out += support::strfmt("maps\t%zu\n", layout.maps_.size());
  for (const auto& m : layout.maps_) {
    out += support::strfmt("map\t%d\t", m.symbol);
    out += m.name;
    out += support::strfmt("\t%d\t%zu\n", m.template_id, m.dims.size());
    for (const auto& d : m.dims) {
      out += support::strfmt("dim\t%d\t%d\t%d\t%lld\t%lld\t%lld\t%lld\n",
                             static_cast<int>(d.kind), d.grid_dim, d.nprocs, d.extent,
                             d.align_offset, d.tmpl_extent, d.block);
    }
  }
  out += "end\n";
  return out;
}

DataLayout deserialize_layout(std::string_view text) {
  LineReader in(text);
  if (in.next_line() != kLayoutHeader) {
    throw std::invalid_argument(
        "deserialize_layout: missing or mismatched header (expected \"" +
        std::string(kLayoutHeader) + "\")");
  }
  DataLayout layout;

  {
    const auto grid = support::split(in.next_line(), '\t');
    if (grid.size() < 2 || grid[0] != "grid") {
      throw std::invalid_argument("deserialize_layout: bad grid line");
    }
    const std::size_t rank = static_cast<std::size_t>(to_ll(grid[1]));
    if (grid.size() != rank + 2) {
      throw std::invalid_argument("deserialize_layout: grid rank mismatch");
    }
    for (std::size_t d = 0; d < rank; ++d) {
      layout.grid_.shape.push_back(static_cast<int>(to_ll(grid[d + 2])));
    }
  }

  {
    const auto head = fields_of(in.next_line(), 2, "env");
    if (head[0] != "env") throw std::invalid_argument("deserialize_layout: bad env line");
    const std::size_t n = static_cast<std::size_t>(to_ll(head[1]));
    for (std::size_t i = 0; i < n; ++i) {
      const auto cells = fields_of(in.next_line(), 2, "env entry");
      layout.env_.set(cells[0], to_d(cells[1]));
    }
  }

  {
    const auto head = fields_of(in.next_line(), 2, "templates");
    if (head[0] != "templates") {
      throw std::invalid_argument("deserialize_layout: bad templates line");
    }
    const std::size_t n = static_cast<std::size_t>(to_ll(head[1]));
    for (std::size_t i = 0; i < n; ++i) {
      layout.template_names_.emplace_back(in.next_line());
    }
  }

  {
    const auto head = fields_of(in.next_line(), 2, "extents");
    if (head[0] != "extents") {
      throw std::invalid_argument("deserialize_layout: bad extents line");
    }
    const std::size_t n = static_cast<std::size_t>(to_ll(head[1]));
    layout.extents_.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      const auto cells = support::split(in.next_line(), '\t');
      if (cells.size() < 3) {
        throw std::invalid_argument("deserialize_layout: bad extent entry");
      }
      DataLayout::SymbolExtents se;
      se.name = cells[0];
      const bool resolved = to_ll(cells[1]) != 0;
      const std::size_t rank = static_cast<std::size_t>(to_ll(cells[2]));
      if (cells.size() != rank + 3) {
        throw std::invalid_argument("deserialize_layout: extent rank mismatch");
      }
      if (resolved) {
        std::vector<long long> dims;
        dims.reserve(rank);
        for (std::size_t d = 0; d < rank; ++d) dims.push_back(to_ll(cells[d + 3]));
        se.dims = std::move(dims);
      }
      layout.extents_.push_back(std::move(se));
    }
  }

  {
    const auto head = fields_of(in.next_line(), 2, "maps");
    if (head[0] != "maps") throw std::invalid_argument("deserialize_layout: bad maps line");
    const std::size_t n = static_cast<std::size_t>(to_ll(head[1]));
    layout.maps_.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      const auto cells = fields_of(in.next_line(), 5, "map");
      if (cells[0] != "map") throw std::invalid_argument("deserialize_layout: bad map entry");
      ArrayMap m;
      m.symbol = static_cast<int>(to_ll(cells[1]));
      m.name = cells[2];
      m.template_id = static_cast<int>(to_ll(cells[3]));
      const std::size_t ndims = static_cast<std::size_t>(to_ll(cells[4]));
      m.dims.reserve(ndims);
      for (std::size_t d = 0; d < ndims; ++d) {
        const auto dim = fields_of(in.next_line(), 8, "dim");
        if (dim[0] != "dim") throw std::invalid_argument("deserialize_layout: bad dim entry");
        DimDist dd;
        dd.kind = static_cast<front::DistKind>(to_ll(dim[1]));
        dd.grid_dim = static_cast<int>(to_ll(dim[2]));
        dd.nprocs = static_cast<int>(to_ll(dim[3]));
        dd.extent = to_ll(dim[4]);
        dd.align_offset = to_ll(dim[5]);
        dd.tmpl_extent = to_ll(dim[6]);
        dd.block = to_ll(dim[7]);
        m.dims.push_back(dd);
      }
      layout.maps_.push_back(std::move(m));
    }
  }

  if (in.next_line() != "end") {
    throw std::invalid_argument("deserialize_layout: missing end marker");
  }
  if (layout.grid_.shape.empty()) {
    throw std::invalid_argument("deserialize_layout: empty processor grid");
  }
  layout.rebuild_derived_tables();
  return layout;
}

std::string serialize_recipe(std::string_view source,
                             const std::vector<std::string>& overrides,
                             const CompilerOptions& options) {
  std::string out(kRecipeHeader);
  out += '\n';
  out += support::strfmt("options\t%d\t%.17g\n", options.message_vectorization ? 1 : 0,
                         options.default_mask_probability);
  out += support::strfmt("overrides\t%zu\n", overrides.size());
  for (const auto& o : overrides) {
    out += support::strfmt("override\t%zu\n", o.size());
    out += o;
    out += '\n';
  }
  out += support::strfmt("source\t%zu\n", source.size());
  out += source;
  out += '\n';
  return out;
}

ParsedRecipe deserialize_recipe(std::string_view text) {
  LineReader in(text);
  if (in.next_line() != kRecipeHeader) {
    throw std::invalid_argument(
        "deserialize_recipe: missing or mismatched header (expected \"" +
        std::string(kRecipeHeader) + "\")");
  }
  ParsedRecipe recipe;
  {
    const auto cells = fields_of(in.next_line(), 3, "options");
    if (cells[0] != "options") {
      throw std::invalid_argument("deserialize_recipe: bad options line");
    }
    recipe.options.message_vectorization = to_ll(cells[1]) != 0;
    recipe.options.default_mask_probability = to_d(cells[2]);
  }
  {
    const auto head = fields_of(in.next_line(), 2, "overrides");
    if (head[0] != "overrides") {
      throw std::invalid_argument("deserialize_recipe: bad overrides line");
    }
    const std::size_t n = static_cast<std::size_t>(to_ll(head[1]));
    for (std::size_t i = 0; i < n; ++i) {
      const auto cells = fields_of(in.next_line(), 2, "override");
      if (cells[0] != "override") {
        throw std::invalid_argument("deserialize_recipe: bad override entry");
      }
      recipe.overrides.emplace_back(
          in.take_bytes(static_cast<std::size_t>(to_ll(cells[1]))));
    }
  }
  {
    const auto head = fields_of(in.next_line(), 2, "source");
    if (head[0] != "source") {
      throw std::invalid_argument("deserialize_recipe: bad source line");
    }
    recipe.source = in.take_bytes(static_cast<std::size_t>(to_ll(head[1])));
  }
  return recipe;
}

}  // namespace hpf90d::compiler
