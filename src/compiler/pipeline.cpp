#include "compiler/pipeline.hpp"

#include <atomic>
#include <cstdint>
#include <cstring>

#include "compiler/lower.hpp"
#include "compiler/normalize.hpp"
#include "hpf/directives.hpp"
#include "hpf/parser.hpp"
#include "hpf/sema.hpp"
#include "support/text.hpp"

namespace hpf90d::compiler {

namespace {

/// Monotonic CompiledProgram::compile_id source (0 is reserved for
/// hand-built programs).
std::uint64_t next_compile_id() {
  static std::atomic<std::uint64_t> next{0};
  return ++next;
}

/// The compact structure key appended to every layout fingerprint: fnv1a64
/// of the structure text plus its length (a collision needs same-length
/// structures — the same posture as the session's program key).
std::string digest_of(const std::string& sf) {
  return support::strfmt("%016llx:%zu",
                         static_cast<unsigned long long>(support::fnv1a64(sf)),
                         sf.size());
}

}  // namespace

CompiledProgram compile(std::string_view source, const CompilerOptions& options) {
  front::Program ast = front::parse_program(source);
  front::SymbolTable symbols = front::analyze(ast);
  front::DirectiveSet directives = front::parse_directives(ast.raw_directives);
  normalize(ast, symbols);
  std::string name = ast.name;
  CompiledProgram prog = lower_program(std::move(name), std::move(ast),
                                       std::move(symbols), std::move(directives), options);
  prog.structure_fingerprint = structure_fingerprint(prog);
  prog.structure_digest = digest_of(prog.structure_fingerprint);
  prog.compile_id = next_compile_id();
  return prog;
}

CompiledProgram compile_with_directives(std::string_view source,
                                        const std::vector<std::string>& directive_overrides,
                                        const CompilerOptions& options) {
  front::Program ast = front::parse_program(source);
  front::SymbolTable symbols = front::analyze(ast);

  // Which directive kinds do the overrides provide?
  auto kind_of = [](std::string_view text) -> std::string {
    const std::string_view t = support::trim(text);
    const std::size_t sp = t.find_first_of(" \t(");
    return support::to_lower(t.substr(0, sp));
  };
  std::vector<std::string> override_kinds;
  for (const auto& o : directive_overrides) override_kinds.push_back(kind_of(o));

  std::vector<front::RawDirective> merged;
  for (const auto& raw : ast.raw_directives) {
    const std::string k = kind_of(raw.text);
    bool replaced = false;
    for (const auto& ok : override_kinds) {
      if (k == ok) {
        replaced = true;
        break;
      }
    }
    if (!replaced) merged.push_back(front::RawDirective{raw.loc, raw.text});
  }
  for (const auto& o : directive_overrides) {
    merged.push_back(front::RawDirective{{}, " " + o});
  }
  ast.raw_directives.clear();
  for (const auto& m : merged) ast.raw_directives.push_back(m);

  front::DirectiveSet directives = front::parse_directives(ast.raw_directives);
  normalize(ast, symbols);
  std::string name = ast.name;
  CompiledProgram prog = lower_program(std::move(name), std::move(ast),
                                       std::move(symbols), std::move(directives), options);
  prog.structure_fingerprint = structure_fingerprint(prog);
  prog.structure_digest = digest_of(prog.structure_fingerprint);
  prog.compile_id = next_compile_id();
  return prog;
}

DataLayout make_layout(const CompiledProgram& prog, const front::Bindings& bindings,
                       const LayoutOptions& options) {
  DataLayout layout(prog.directives, prog.symbols, bindings, options);
  for (const auto& [temp, like] : prog.temp_aliases) {
    layout.add_alias(temp, like, prog.symbols.at(temp).name);
  }
  return layout;
}

namespace {

/// Serializes one expression for the fingerprint. Expr::str() renders
/// round-trippable Fortran-ish text, which captures the structure (names,
/// operators, literals) that extent resolution depends on.
void fp_expr(std::string& out, const front::ExprPtr& e) {
  out += e ? e->str() : std::string("~");
  out += '\x1e';
}

}  // namespace

std::string structure_fingerprint(const CompiledProgram& prog) {
  std::string fp;
  fp.reserve(512);

  // directives
  for (const auto& p : prog.directives.processors) {
    fp += "proc:" + p.name + '\x1f';
    for (const auto& e : p.extents) fp_expr(fp, e);
  }
  for (const auto& t : prog.directives.templates) {
    fp += "tmpl:" + t.name + '\x1f';
    for (const auto& e : t.extents) fp_expr(fp, e);
  }
  for (const auto& a : prog.directives.aligns) {
    fp += "align:" + a.array + '\x1f' + a.target + '\x1f';
    for (const auto& d : a.dummies) fp += d + ",";
    for (const auto& s : a.target_subs) {
      fp += support::strfmt("(%d%+lld%d)", s.dummy, s.offset, s.star ? 1 : 0);
    }
    fp += '\x1e';
  }
  for (const auto& d : prog.directives.distributes) {
    fp += "dist:" + d.target + '\x1f' + d.onto + '\x1f';
    for (const auto k : d.pattern) fp += front::dist_kind_name(k);
    fp += '\x1e';
  }
  fp += '\x1d';

  // symbols: ids are positional, so the table is serialized in order.
  // Kind, type, and extent expressions cover everything the layout snapshot
  // resolves; PARAMETER defining expressions cover the extent environment.
  for (const auto& sym : prog.symbols.symbols()) {
    fp += sym.name;
    fp += support::strfmt(":%d:%d:", static_cast<int>(sym.kind),
                          static_cast<int>(sym.type));
    for (const auto& d : sym.dims) fp_expr(fp, d);
    if (sym.param_value) fp_expr(fp, sym.param_value);
    fp += '\x1e';
  }
  fp += '\x1d';

  // shift-temporary aliases replayed by make_layout
  for (const auto& [temp, like] : prog.temp_aliases) {
    fp += support::strfmt("%d~%d;", temp, like);
  }
  return fp;
}

namespace {
/// Sink feeding fingerprint bytes into a caller-owned string.
struct StringSink {
  std::string& out;
  void put(char c) { out += c; }
  void put(const char* p, std::size_t n) { out.append(p, n); }
};

/// Sink feeding the same bytes into two FNV-1a style streams (different
/// offset basis and multiplier), never materializing them.
struct DigestSink {
  std::uint64_t a = 14695981039346656037ULL;  // FNV-1a 64 offset basis
  std::uint64_t b = 14695981039346656037ULL ^ 0x9e3779b97f4a7c15ULL;
  void put(char c) {
    const auto x = static_cast<unsigned char>(c);
    a = (a ^ x) * 1099511628211ULL;        // FNV-1a 64 prime
    b = (b ^ x) * 0x9e3779b97f4a7c15ULL;   // odd golden-ratio multiplier
  }
  void put(const char* p, std::size_t n) {
    for (std::size_t i = 0; i < n; ++i) put(p[i]);
  }
};

/// Feeds a decimal integer without the std::to_string temporary (the
/// layout key is built once per sweep point; the hot path reuses one
/// caller-owned buffer — or no buffer at all, for the digest sink).
template <class Sink>
void feed_int(Sink& out, long long v) {
  char buf[24];
  char* p = buf + sizeof buf;
  const bool neg = v < 0;
  unsigned long long u = neg ? 0ULL - static_cast<unsigned long long>(v)
                             : static_cast<unsigned long long>(v);
  do {
    *--p = static_cast<char>('0' + (u % 10));
    u /= 10;
  } while (u != 0);
  if (neg) *--p = '-';
  out.put(p, static_cast<std::size_t>(buf + sizeof buf - p));
}

/// The (program, bindings) prefix of the fingerprint byte sequence. The
/// prefix deliberately comes BEFORE the layout options so a sweep can
/// capture the digest state once per problem (layout_fingerprint_prefix)
/// and finish it per nprocs point — the fingerprint format is internal
/// (spill addresses re-key on a format change and degrade to misses).
template <class Sink>
void feed_layout_prefix(Sink& fp, const CompiledProgram& prog,
                        const front::Bindings& bindings) {
  // bindings (map iteration is name-sorted, so the order is canonical);
  // values render as their raw IEEE bit pattern in fixed-width hex — exact
  // without a decimal round-trip, and far cheaper than %.17g on what is
  // the layout-key hot path of every sweep point
  for (const auto& [name, value] : bindings.values()) {
    fp.put(name.data(), name.size());
    fp.put('=');
    std::uint64_t bits = 0;
    std::memcpy(&bits, &value, sizeof bits);
    char hex[16];
    for (int i = 15; i >= 0; --i) {
      hex[i] = "0123456789abcdef"[bits & 0xF];
      bits >>= 4;
    }
    fp.put(hex, sizeof hex);
    fp.put('\x1e');
  }
  fp.put('\x1d');

  // program structure, compacted to a 64-bit digest plus length (the
  // program key's collision posture: a collision needs same-length
  // structures) — embedding the full structure text would make every
  // layout lookup hash and compare hundreds of bytes per sweep point. The
  // digest string is precomputed by the pipeline; only hand-built programs
  // that never went through compile() pay for it here.
  if (!prog.structure_digest.empty()) {
    fp.put(prog.structure_digest.data(), prog.structure_digest.size());
  } else if (!prog.structure_fingerprint.empty()) {
    const std::string d = digest_of(prog.structure_fingerprint);
    fp.put(d.data(), d.size());
  } else {
    const std::string d = digest_of(structure_fingerprint(prog));
    fp.put(d.data(), d.size());
  }
}

/// The layout-options suffix of the fingerprint byte sequence.
template <class Sink>
void feed_layout_options(Sink& fp, const LayoutOptions& options) {
  fp.put("\x1dP=", 3);
  feed_int(fp, options.nprocs);
  if (options.grid_shape) {
    fp.put(":g", 2);
    for (int s : *options.grid_shape) {
      feed_int(fp, s);
      fp.put('x');
    }
  }
}

/// The one definition of the fingerprint byte sequence: both the string
/// key and its streaming digest are produced from this template, which is
/// what guarantees layout_fingerprint_digest == layout_digest_of(
/// layout_fingerprint(...)) byte for byte.
template <class Sink>
void feed_fingerprint(Sink& fp, const CompiledProgram& prog,
                      const front::Bindings& bindings, const LayoutOptions& options) {
  feed_layout_prefix(fp, prog, bindings);
  feed_layout_options(fp, options);
}
}  // namespace

void layout_fingerprint_into(std::string& fp, const CompiledProgram& prog,
                             const front::Bindings& bindings,
                             const LayoutOptions& options) {
  fp.clear();
  if (fp.capacity() < 128) fp.reserve(prog.structure_fingerprint.size() + 128);
  StringSink sink{fp};
  feed_fingerprint(sink, prog, bindings, options);
}

LayoutDigest layout_fingerprint_digest(const CompiledProgram& prog,
                                       const front::Bindings& bindings,
                                       const LayoutOptions& options) {
  DigestSink sink;
  feed_fingerprint(sink, prog, bindings, options);
  return LayoutDigest{sink.a, sink.b};
}

LayoutDigest layout_digest_of(std::string_view fingerprint) {
  DigestSink sink;
  sink.put(fingerprint.data(), fingerprint.size());
  return LayoutDigest{sink.a, sink.b};
}

LayoutDigestState layout_fingerprint_prefix(const CompiledProgram& prog,
                                            const front::Bindings& bindings) {
  DigestSink sink;
  feed_layout_prefix(sink, prog, bindings);
  return LayoutDigestState{sink.a, sink.b};
}

LayoutDigest layout_fingerprint_finish(const LayoutDigestState& state,
                                       const LayoutOptions& options) {
  DigestSink sink;
  sink.a = state.a;
  sink.b = state.b;
  feed_layout_options(sink, options);
  return LayoutDigest{sink.a, sink.b};
}

std::string layout_fingerprint(const CompiledProgram& prog,
                               const front::Bindings& bindings,
                               const LayoutOptions& options) {
  std::string fp;
  layout_fingerprint_into(fp, prog, bindings, options);
  return fp;
}

}  // namespace hpf90d::compiler
