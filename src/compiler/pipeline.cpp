#include "compiler/pipeline.hpp"

#include "compiler/lower.hpp"
#include "compiler/normalize.hpp"
#include "hpf/directives.hpp"
#include "hpf/parser.hpp"
#include "hpf/sema.hpp"
#include "support/text.hpp"

namespace hpf90d::compiler {

CompiledProgram compile(std::string_view source, const CompilerOptions& options) {
  front::Program ast = front::parse_program(source);
  front::SymbolTable symbols = front::analyze(ast);
  front::DirectiveSet directives = front::parse_directives(ast.raw_directives);
  normalize(ast, symbols);
  std::string name = ast.name;
  return lower_program(std::move(name), std::move(ast), std::move(symbols),
                       std::move(directives), options);
}

CompiledProgram compile_with_directives(std::string_view source,
                                        const std::vector<std::string>& directive_overrides,
                                        const CompilerOptions& options) {
  front::Program ast = front::parse_program(source);
  front::SymbolTable symbols = front::analyze(ast);

  // Which directive kinds do the overrides provide?
  auto kind_of = [](std::string_view text) -> std::string {
    const std::string_view t = support::trim(text);
    const std::size_t sp = t.find_first_of(" \t(");
    return support::to_lower(t.substr(0, sp));
  };
  std::vector<std::string> override_kinds;
  for (const auto& o : directive_overrides) override_kinds.push_back(kind_of(o));

  std::vector<front::RawDirective> merged;
  for (const auto& raw : ast.raw_directives) {
    const std::string k = kind_of(raw.text);
    bool replaced = false;
    for (const auto& ok : override_kinds) {
      if (k == ok) {
        replaced = true;
        break;
      }
    }
    if (!replaced) merged.push_back(front::RawDirective{raw.loc, raw.text});
  }
  for (const auto& o : directive_overrides) {
    merged.push_back(front::RawDirective{{}, " " + o});
  }
  ast.raw_directives.clear();
  for (const auto& m : merged) ast.raw_directives.push_back(m);

  front::DirectiveSet directives = front::parse_directives(ast.raw_directives);
  normalize(ast, symbols);
  std::string name = ast.name;
  return lower_program(std::move(name), std::move(ast), std::move(symbols),
                       std::move(directives), options);
}

DataLayout make_layout(const CompiledProgram& prog, const front::Bindings& bindings,
                       const LayoutOptions& options) {
  DataLayout layout(prog.directives, prog.symbols, bindings, options);
  for (const auto& [temp, like] : prog.temp_aliases) {
    layout.add_alias(temp, like, prog.symbols.at(temp).name);
  }
  return layout;
}

}  // namespace hpf90d::compiler
