#include "compiler/opcount.hpp"

#include <algorithm>

#include "compiler/spmd_ir.hpp"
#include "hpf/intrinsics.hpp"

namespace hpf90d::compiler {

using front::Expr;
using front::ExprKind;
using front::TypeBase;

void OpCounts::add(const OpCounts& other) {
  fadd += other.fadd;
  fmul += other.fmul;
  fdiv += other.fdiv;
  fpow += other.fpow;
  iops += other.iops;
  loads += other.loads;
  stores += other.stores;
  for (const auto& [name, n] : other.intrinsics) intrinsics[name] += n;
  depth = std::max(depth, other.depth);
}

namespace {

bool is_float(TypeBase t) { return t == TypeBase::Real || t == TypeBase::Double; }

void count_rec(const Expr& e, OpCounts& out, int& depth) {
  switch (e.kind) {
    case ExprKind::IntLit:
    case ExprKind::RealLit:
    case ExprKind::LogicalLit:
    case ExprKind::Var:
      depth = 0;  // literals and scalars are register operands
      return;
    case ExprKind::ArrayRef: {
      int sub_depth = 0;
      for (const auto& sub : e.subs) {
        if (sub.kind == front::Subscript::Kind::Scalar) {
          int d = 0;
          count_rec(*sub.scalar, out, d);
          sub_depth = std::max(sub_depth, d);
        }
        out.iops += 1;  // address arithmetic per dimension
      }
      out.loads += 1;
      depth = sub_depth + 1;  // load latency on the chain
      return;
    }
    case ExprKind::Unary: {
      int d = 0;
      count_rec(*e.args[0], out, d);
      if (e.un_op == front::UnOp::Neg) {
        if (is_float(e.type)) ++out.fadd; else ++out.iops;
      }
      depth = d + 1;
      return;
    }
    case ExprKind::Binary: {
      int dl = 0, dr = 0;
      count_rec(*e.args[0], out, dl);
      count_rec(*e.args[1], out, dr);
      const bool f = is_float(e.type) ||
                     is_float(e.args[0]->type) || is_float(e.args[1]->type);
      switch (e.bin_op) {
        case front::BinOp::Add:
        case front::BinOp::Sub:
          f ? ++out.fadd : ++out.iops;
          break;
        case front::BinOp::Mul:
          f ? ++out.fmul : ++out.iops;
          break;
        case front::BinOp::Div:
          f ? ++out.fdiv : ++out.iops;
          break;
        case front::BinOp::Pow:
          ++out.fpow;
          break;
        case front::BinOp::Lt:
        case front::BinOp::Le:
        case front::BinOp::Gt:
        case front::BinOp::Ge:
        case front::BinOp::Eq:
        case front::BinOp::Ne:
          f ? ++out.fadd : ++out.iops;  // compare ~ subtract
          break;
        case front::BinOp::And:
        case front::BinOp::Or:
          ++out.iops;
          break;
      }
      depth = std::max(dl, dr) + 1;
      return;
    }
    case ExprKind::Call: {
      const auto info = front::find_intrinsic(e.name);
      int dmax = 0;
      for (const auto& a : e.args) {
        int d = 0;
        count_rec(*a, out, d);
        dmax = std::max(dmax, d);
      }
      if (info && info->kind == front::IntrinsicKind::Elemental) {
        // cheap conversions fold into the pipeline; transcendental calls
        // are charged by name so the SAU can price them individually
        if (e.name == "real" || e.name == "float" || e.name == "dble" ||
            e.name == "int" || e.name == "nint") {
          ++out.iops;
          depth = dmax + 1;
        } else if (e.name == "abs" || e.name == "min" || e.name == "max" ||
                   e.name == "sign" || e.name == "merge") {
          ++out.fadd;
          depth = dmax + 1;
        } else {
          ++out.intrinsics[e.name];
          depth = dmax + 8;  // library call: long latency on the chain
        }
      } else {
        // reductions / shifts are lowered to dedicated SPMD nodes before
        // cost interpretation; if one is still embedded treat it as a
        // single element access
        out.loads += 1;
        depth = dmax + 1;
      }
      return;
    }
  }
}

}  // namespace

OpCounts count_expr(const Expr& e) {
  OpCounts out;
  int depth = 0;
  count_rec(e, out, depth);
  out.depth = depth;
  return out;
}

OpCounts count_assignment(const Expr& lhs, const Expr& rhs) {
  OpCounts out = count_expr(rhs);
  if (lhs.kind == ExprKind::ArrayRef) {
    OpCounts addr;
    int d = 0;
    for (const auto& sub : lhs.subs) {
      if (sub.kind == front::Subscript::Kind::Scalar) count_rec(*sub.scalar, addr, d);
      addr.iops += 1;
    }
    addr.loads = 0;  // LHS address math only
    out.add(addr);
  }
  out.stores += 1;
  out.depth += 1;
  return out;
}

void count_array_refs(const front::Expr& e, long long& count) {
  if (e.kind == ExprKind::ArrayRef) ++count;
  for (const auto& a : e.args) count_array_refs(*a, count);
  for (const auto& s : e.subs) {
    if (s.scalar) count_array_refs(*s.scalar, count);
  }
}

namespace {

void node_ops_rec(const SpmdNode& n, std::vector<NodeOpCounts>& out) {
  if (n.id >= 0 && static_cast<std::size_t>(n.id) < out.size()) {
    NodeOpCounts& slot = out[static_cast<std::size_t>(n.id)];
    switch (n.kind) {
      case SpmdKind::ScalarAssign:
        slot.body = count_expr(*n.rhs);
        break;
      case SpmdKind::LocalLoop:
        if (n.inner) {
          slot.body = count_expr(*n.inner->arg);
          slot.body.fadd += 1;  // accumulate
        } else {
          slot.body = count_assignment(*n.lhs, *n.rhs);
        }
        break;
      case SpmdKind::Reduce:
        slot.body = count_expr(*n.reduce_arg);
        slot.body.fadd += 1;
        break;
      default:
        break;
    }
    if (n.mask) slot.cond = count_expr(*n.mask);
    if (n.rhs) count_array_refs(*n.rhs, slot.ws_arrays);
    if (n.inner) count_array_refs(*n.inner->arg, slot.ws_arrays);
    if (n.reduce_arg) count_array_refs(*n.reduce_arg, slot.ws_arrays);
  }
  for (const auto& c : n.children) node_ops_rec(*c, out);
  for (const auto& c : n.else_children) node_ops_rec(*c, out);
}

}  // namespace

std::vector<NodeOpCounts> collect_node_ops(const CompiledProgram& prog) {
  std::vector<NodeOpCounts> out(static_cast<std::size_t>(prog.node_count));
  if (prog.root) node_ops_rec(*prog.root, out);
  return out;
}

void compute_node_ops(CompiledProgram& prog) { prog.node_ops = collect_node_ops(prog); }

}  // namespace hpf90d::compiler
