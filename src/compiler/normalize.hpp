// normalize.hpp — canonicalization of parallel constructs.
//
// Phase 1 of the paper's framework transforms array assignment statements
// and where statements "into equivalent forall statements with no loss of
// information" (§4.1 step 1). After normalization every data-parallel
// operation in the program is a forall whose body contains only
// scalar-subscripted assignments (shift/reduction intrinsics remain as
// atomic terms for the lowerer to extract).
#pragma once

#include "hpf/ast.hpp"
#include "hpf/sema.hpp"

namespace hpf90d::compiler {

/// Rewrites `prog` in place:
///  * `a(l:h) = expr` / `a = expr` (rank >= 1)  ->  forall
///  * `where (mask) a = b [elsewhere a = c]`    ->  masked forall(s)
///  * whole-array names in element context      ->  explicit full sections
/// New forall index symbols (`i__1`, `i__2`, ...) are registered in
/// `symbols`. Throws support::CompileError on constructs outside the subset
/// (e.g. sections whose strides cannot be matched).
void normalize(front::Program& prog, front::SymbolTable& symbols);

/// Rewrites every rank>0 term of `e` elementwise under `indices` (one per
/// result dimension): non-scalar dimension j of each array term is replaced
/// by a scalar subscript derived from indices[j], mapped through the term's
/// own section bounds. Shift and reduction intrinsic calls remain atomic.
/// Used by the lowerer to index reduction arguments and dim-reduction
/// bodies.
void index_elementwise(front::Expr& e, const std::vector<front::ForallIndex>& indices,
                       const front::SymbolTable& symbols);

}  // namespace hpf90d::compiler
