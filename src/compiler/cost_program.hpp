// cost_program.hpp — priced expressions flattened to register bytecode.
//
// The interpretation engine re-evaluates a small set of scalar expressions
// (assignment right-hand sides, loop bounds, branch conditions, shift
// amounts) at every sweep point. Walking the AST for each of them costs a
// virtual-free but still recursive tree traversal, per-node std::optional
// plumbing, and — for unannotated extent clones — a SymbolTable name lookup
// per Var. A CostProgram removes all of that at compile time: every priced
// expression is flattened once into a linear register program over symbol
// slots (variable ids resolved statically, PARAMETER fallbacks baked in,
// static size() calls folded to constants), and the engines execute that
// bytecode with no dispatch, no name lookups, and no exceptions.
//
// The instruction set mirrors compiler::eval_rec exactly — same operation
// order, same integer-division selection by static operand types, same
// failure points — so bytecode evaluation is bit-identical to the tree
// evaluator, including *when* it fails (an undefined critical variable, an
// array element probe, an integer division by zero). Expressions the
// flattener cannot prove equivalent (e.g. size() with a non-static dim
// argument) are left uncompiled (ExprCode::ok == false) and the engines
// fall back to the tree walker for just those expressions.
//
// Two evaluators share the bytecode:
//   * eval_code       — one environment (the scalar engine's hot path);
//   * eval_code_batch — a structure-of-arrays BatchEnv, values[slot][lane],
//     one instruction loop over all lanes of a sweep batch (core::BatchEngine).
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "compiler/eval.hpp"
#include "compiler/spmd_ir.hpp"

namespace hpf90d::compiler {

enum class CostOp : std::uint8_t {
  Const,     // dst = pool[a]
  Load,      // dst = env[a]; fails when slot a is undefined
  LoadDflt,  // dst = env[a], or pool[b] when undefined (PARAMETER fallback)
  Fail,      // unconditional failure (array probe, unpriceable intrinsic)
  Neg,       // dst = -r[a]
  Not,       // dst = r[a] == 0 ? 1 : 0
  Add, Sub, Mul, Div, Pow,          // dst = r[a] op r[b]
  IDiv,      // dst = (ll)r[a] / (ll)r[b]; fails on zero divisor
  Lt, Le, Gt, Ge, Eq, Ne,           // dst = r[a] op r[b] ? 1 : 0
  And, Or,   // non-short-circuit, as the tree evaluator
  FMod, IMod, Min2, Max2, Sign2,    // two-operand intrinsics
  Exp, Log, Sqrt, Abs, Sin, Cos, Atan, Trunc, Nint,  // one-operand intrinsics
  Merge,     // dst = r[c] != 0 ? r[a] : r[b]
};

struct CostInstr {
  CostOp op = CostOp::Fail;
  std::uint16_t dst = 0;
  std::uint16_t a = 0;
  std::uint16_t b = 0;
  std::uint16_t c = 0;
};

/// One flattened expression: a slice of CostProgram::code plus the register
/// holding its value. ok == false marks an expression the flattener could
/// not compile; consumers must use the tree evaluator for it.
struct ExprCode {
  std::uint32_t first = 0;
  std::uint32_t count = 0;
  std::uint16_t result = 0;
  std::uint16_t regs = 0;
  bool ok = false;
};

/// Per-SpmdNode indices into CostProgram::exprs (-1 = the node has no such
/// expression). Space dimensions are triples (lo, hi, step) stored
/// consecutively in CostProgram::space_codes; a -1 step means "constant 1"
/// (a null IterIndex::stride).
struct NodeCost {
  std::int32_t rhs = -1;         // ScalarAssign right-hand side
  std::int32_t cond = -1;        // IfBlock / WhileLoop condition
  std::int32_t do_lo = -1, do_hi = -1, do_step = -1;
  std::int32_t comm_amount = -1; // CShiftComm shift expression
  std::int32_t inner_lo = -1, inner_hi = -1;  // InnerReduce bounds
  std::int32_t space_first = -1; // first (lo,hi,step) triple in space_codes
  std::int32_t space_dims = 0;
  /// IfBlock speculation weight: total SPMD node count across both arms
  /// when every arm node is loop-free, -1 when an arm contains a DoLoop or
  /// WhileLoop (unbounded work — never worth pricing both sides). Lets the
  /// batch engine decide per branch, at zero walk-time cost, whether to
  /// walk both arms with per-lane subsets instead of evicting the minority.
  std::int32_t spec_nodes = -1;
};

/// The flattened cost program for one CompiledProgram, built by the
/// pipeline right after node numbering and shared (immutable) by every
/// engine. Hand-built programs that bypass the pipeline have none; the
/// engines then use the tree evaluator throughout.
struct CostProgram {
  std::vector<CostInstr> code;   // all expressions, concatenated
  std::vector<double> pool;      // deduplicated constants
  std::vector<ExprCode> exprs;
  std::vector<NodeCost> nodes;   // indexed by SpmdNode::id
  std::vector<std::int32_t> space_codes;  // (lo,hi,step) triples
  std::uint16_t max_regs = 0;    // register-file size covering every expr
  bool complete = true;          // every priced expression compiled
  std::size_t compiled_exprs = 0;
  std::size_t fallback_exprs = 0;  // left to the tree evaluator
};

/// Flattens every priced expression of `prog` (requires numbered nodes).
[[nodiscard]] std::shared_ptr<const CostProgram> compile_cost_program(
    const CompiledProgram& prog);

/// Lanes per SIMD stripe of the batch evaluator: one cache line of doubles,
/// the widest vector any mainstream ISA retires in one register (AVX-512)
/// and a whole-number multiple of SSE2/NEON/AVX2 widths. Column strides,
/// register files, and the out/ok spans of eval_code_batch are padded to
/// this width so every inner loop has a fixed, compile-time trip count.
inline constexpr std::size_t kBatchStripe = 8;

/// Structure-of-arrays scalar environment for lockstep batch evaluation:
/// values(slot)[lane] with a parallel defined mask. Lane count is fixed per
/// reset; slots mirror ScalarEnv symbol ids. Columns are padded to a
/// kBatchStripe multiple (stride()); padding lanes read as undefined zeros,
/// so stripe-major evaluation computes harmless garbage for them.
class BatchEnv {
 public:
  void reset(std::size_t symbol_count, std::size_t lanes) {
    lanes_ = lanes;
    stride_ = (lanes + kBatchStripe - 1) / kBatchStripe * kBatchStripe;
    values_.assign(symbol_count * stride_, 0.0);
    defined_.assign(symbol_count * stride_, 0);
  }

  [[nodiscard]] std::size_t lanes() const noexcept { return lanes_; }
  /// Column spacing: lanes() rounded up to a kBatchStripe multiple.
  [[nodiscard]] std::size_t stride() const noexcept { return stride_; }

  [[nodiscard]] const double* values(int slot) const {
    return values_.data() + static_cast<std::size_t>(slot) * stride_;
  }
  [[nodiscard]] const unsigned char* defined(int slot) const {
    return defined_.data() + static_cast<std::size_t>(slot) * stride_;
  }

  void define(int slot, std::size_t lane, double value) {
    values_[static_cast<std::size_t>(slot) * stride_ + lane] = value;
    defined_[static_cast<std::size_t>(slot) * stride_ + lane] = 1;
  }

 private:
  std::size_t lanes_ = 0;
  std::size_t stride_ = 0;
  std::vector<double> values_;
  std::vector<unsigned char> defined_;
};

/// Executes one compiled expression against a scalar environment. `regs`
/// must hold at least CostProgram::max_regs doubles. Returns nullopt on the
/// same inputs the tree evaluator fails on, with no exception and no
/// message formatting.
[[nodiscard]] std::optional<double> eval_code(const CostProgram& cp, const ExprCode& c,
                                              const ScalarEnv& env, double* regs);

/// Executes one compiled expression over every lane of `env` in lockstep.
/// Dispatch is instruction-major (one switch per instruction, amortized
/// over the whole batch) and every lane loop runs as whole 8-lane stripes
/// over stride-padded columns, so the vectorizer emits full-width bodies
/// with no runtime trip-count checks and no scalar epilogue.
///
/// `regs` must hold max_regs * env.stride() doubles, 64-byte aligned (the
/// stride is a kBatchStripe multiple, so every register column is then
/// cache-line aligned too); `out` and `ok` hold env.stride() entries
/// (ok[l] == 0 marks a lane whose evaluation failed; its out value is
/// unspecified, as are all entries past env.lanes()). Lane l's result is
/// bit-identical to eval_code against lane l's scalar environment: stripes
/// only regroup independent per-lane arithmetic, and no fast-math
/// reassociation is in play. Returns the number of stripes executed
/// (telemetry).
std::size_t eval_code_batch(const CostProgram& cp, const ExprCode& c,
                            const BatchEnv& env, double* regs, double* out,
                            unsigned char* ok);

}  // namespace hpf90d::compiler
