// pipeline.hpp — the compilation phase of the framework (paper §4.1):
// parse -> directive processing -> semantic analysis -> normalization
// (array assignment / where -> forall) -> partitioning + communication
// detection + SPMD generation.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "compiler/mapping.hpp"
#include "compiler/spmd_ir.hpp"

namespace hpf90d::compiler {

/// Compiles HPF/Fortran 90D source text into the loosely synchronous SPMD
/// node program. Throws support::CompileError on any front-end or lowering
/// failure.
[[nodiscard]] CompiledProgram compile(std::string_view source,
                                      const CompilerOptions& options = {});

/// Compiles with DISTRIBUTE/PROCESSORS directive lines replaced by
/// `directive_overrides` (the framework's "select directives from the
/// interface" workflow, §5.2.1). Each override is a full directive payload,
/// e.g. "distribute t(block,*)". Directives of kinds present in the
/// overrides are dropped from the source before the overrides are added.
[[nodiscard]] CompiledProgram compile_with_directives(
    std::string_view source, const std::vector<std::string>& directive_overrides,
    const CompilerOptions& options = {});

/// Builds the DataLayout for one configuration (problem bindings + machine
/// size + optional grid shape), replaying the compiler's shift-temporary
/// aliases so temps map like their source arrays.
[[nodiscard]] DataLayout make_layout(const CompiledProgram& prog,
                                     const front::Bindings& bindings,
                                     const LayoutOptions& options);

/// Serializes the layout-relevant program structure: the directive set,
/// every symbol's kind/type/extent expressions, and the shift-temporary
/// aliases. compile() stores the result in
/// CompiledProgram::structure_fingerprint so per-lookup fingerprints are
/// cheap.
[[nodiscard]] std::string structure_fingerprint(const CompiledProgram& prog);

/// Structural fingerprint of everything `make_layout` consumes: the
/// program structure (see structure_fingerprint) plus the bindings and the
/// layout options. Two programs with equal fingerprints produce
/// interchangeable layouts, even when compiled separately — this is the
/// session's content-addressed layout-cache key, so externally owned
/// programs share cache entries with session-owned ones.
[[nodiscard]] std::string layout_fingerprint(const CompiledProgram& prog,
                                             const front::Bindings& bindings,
                                             const LayoutOptions& options);

/// Same fingerprint, rebuilt into a caller-owned buffer (cleared first).
/// The sweep hot path computes one key per point; reusing a per-worker
/// buffer removes the last per-point allocation from the layout lookup.
void layout_fingerprint_into(std::string& out, const CompiledProgram& prog,
                             const front::Bindings& bindings,
                             const LayoutOptions& options);

/// 128-bit content digest of a layout fingerprint: two independent FNV-1a
/// style streams over the exact byte sequence layout_fingerprint produces,
/// so layout_fingerprint_digest(p, b, o) == layout_digest_of(
/// layout_fingerprint(p, b, o)) always — the string and streaming entry
/// points address the same cache entry. At 128 bits over machine-generated
/// (non-adversarial) keys, a collision is beyond-astronomical, which is
/// what lets the layout store index on the digest alone.
struct LayoutDigest {
  std::uint64_t a = 0;
  std::uint64_t b = 0;
  friend bool operator==(const LayoutDigest&, const LayoutDigest&) = default;
};

/// Streams the fingerprint bytes straight into a LayoutDigest — no string
/// is materialized. This is the per-point layout lookup of a warm sweep:
/// hashing ~tens of bytes replaces building, re-hashing, and comparing a
/// key string on every probe.
[[nodiscard]] LayoutDigest layout_fingerprint_digest(const CompiledProgram& prog,
                                                     const front::Bindings& bindings,
                                                     const LayoutOptions& options);

/// Digest of an already-built fingerprint string (the slow-path/string API
/// of the layout store funnels through this).
[[nodiscard]] LayoutDigest layout_digest_of(std::string_view fingerprint);

/// Captured mid-stream digest state after the (program, bindings) prefix of
/// the fingerprint byte sequence — everything except the layout options.
/// A sweep chunk holds (program, bindings) fixed across its nprocs axis, so
/// the prefix is hashed once per problem and finished per point instead of
/// re-hashing the whole binding set for every sweep point.
struct LayoutDigestState {
  std::uint64_t a = 0;
  std::uint64_t b = 0;
};

/// Digest state of the fingerprint's (program, bindings) prefix.
[[nodiscard]] LayoutDigestState layout_fingerprint_prefix(
    const CompiledProgram& prog, const front::Bindings& bindings);

/// Completes a prefix state with the layout options. For all inputs:
/// layout_fingerprint_finish(layout_fingerprint_prefix(p, b), o) ==
/// layout_fingerprint_digest(p, b, o).
[[nodiscard]] LayoutDigest layout_fingerprint_finish(const LayoutDigestState& state,
                                                     const LayoutOptions& options);

}  // namespace hpf90d::compiler
