#include "compiler/mapping.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "support/diagnostics.hpp"

namespace hpf90d::compiler {

using front::DistKind;
using support::CompileError;

int ProcGrid::linear(std::span<const int> coords) const {
  int id = 0;
  for (std::size_t d = 0; d < shape.size(); ++d) {
    id = id * shape[d] + (d < coords.size() ? coords[d] : 0);
  }
  return id;
}

std::vector<int> ProcGrid::coords(int linear_id) const {
  std::vector<int> c(shape.size(), 0);
  for (std::size_t d = shape.size(); d-- > 0;) {
    c[d] = linear_id % shape[d];
    linear_id /= shape[d];
  }
  return c;
}

ProcGrid ProcGrid::factorized(int nprocs, int rank) {
  ProcGrid grid;
  if (rank <= 1) {
    grid.shape = {nprocs};
    return grid;
  }
  // near-square factorization with the smaller factor first: 4 -> 2x2,
  // 8 -> 2x4, 2 -> 1x2
  int a = static_cast<int>(std::sqrt(static_cast<double>(nprocs)));
  while (a > 1 && nprocs % a != 0) --a;
  grid.shape = {a, nprocs / a};
  return grid;
}

int DimDist::owner_coord(long long g) const {
  if (kind == DistKind::Collapsed || nprocs <= 1) return 0;
  const long long t = g + align_offset;  // 1-based template index
  if (kind == DistKind::Block) {
    long long c = (t - 1) / block;
    return static_cast<int>(std::clamp<long long>(c, 0, nprocs - 1));
  }
  // cyclic
  return static_cast<int>(((t - 1) % nprocs + nprocs) % nprocs);
}

long long ArrayMap::local_elements(const ProcGrid& grid, int p) const {
  const std::vector<int> coords = grid.coords(p);
  long long total = 1;
  for (const auto& d : dims) {
    const int c = d.grid_dim >= 0 && d.grid_dim < static_cast<int>(coords.size())
                      ? coords[static_cast<std::size_t>(d.grid_dim)]
                      : 0;
    total *= d.local_count(c);
  }
  return total;
}

int ArrayMap::owner(const ProcGrid& grid, std::span<const long long> index) const {
  std::vector<int> coords(static_cast<std::size_t>(grid.rank()), 0);
  for (std::size_t k = 0; k < dims.size(); ++k) {
    const auto& d = dims[k];
    if (d.grid_dim >= 0) {
      coords[static_cast<std::size_t>(d.grid_dim)] = d.owner_coord(index[k]);
    }
  }
  return grid.linear(coords);
}

namespace {

/// Fold PARAMETER symbols into the binding environment so extents like
/// `n+11` resolve. User-supplied bindings take precedence over the source's
/// PARAMETER values (the framework's "vary problem size from the interface"
/// workflow, paper §5.3).
front::Bindings parameter_env(const front::SymbolTable& symbols,
                              const front::Bindings& user) {
  front::Bindings env;
  for (const auto& sym : symbols.symbols()) {
    if (sym.kind == front::SymbolKind::Param && sym.param_value) {
      if (user.contains(sym.name)) continue;
      if (const auto v = front::try_fold(*sym.param_value, env)) {
        env.set(sym.name, *v);
      }
    }
  }
  env.merge(user);
  // second pass: params defined in terms of other (possibly overridden) params
  for (const auto& sym : symbols.symbols()) {
    if (sym.kind == front::SymbolKind::Param && sym.param_value &&
        !env.contains(sym.name)) {
      if (const auto v = front::try_fold(*sym.param_value, env)) {
        env.set(sym.name, *v);
      }
    }
  }
  return env;
}

}  // namespace

DataLayout::DataLayout(const front::DirectiveSet& directives,
                       const front::SymbolTable& symbols, const front::Bindings& env,
                       const LayoutOptions& options)
    : env_(parameter_env(symbols, env)) {
  // Snapshot resolved extents for every symbol up front: the layout must
  // not reference the symbol table after construction (content-addressed
  // cache entries outlive the programs they were built from).
  extents_.reserve(symbols.size());
  for (const auto& sym : symbols.symbols()) {
    SymbolExtents se;
    se.name = sym.name;
    std::vector<long long> dims;
    dims.reserve(sym.dims.size());
    bool resolved = true;
    for (const auto& d : sym.dims) {
      try {
        dims.push_back(front::fold_int(*d, env_));
      } catch (const CompileError&) {
        resolved = false;
        break;
      }
    }
    if (resolved) se.dims = std::move(dims);
    extents_.push_back(std::move(se));
  }

  // --- resolve templates ---------------------------------------------------
  struct ResolvedTemplate {
    std::string name;
    std::vector<long long> extents;
    std::vector<DistKind> dist;   // per template dim; Collapsed by default
    std::vector<int> grid_dim;    // per template dim
  };
  std::vector<ResolvedTemplate> templates;
  for (const auto& t : directives.templates) {
    ResolvedTemplate rt;
    rt.name = t.name;
    for (const auto& e : t.extents) rt.extents.push_back(front::fold_int(*e, env_));
    rt.dist.assign(rt.extents.size(), DistKind::Collapsed);
    rt.grid_dim.assign(rt.extents.size(), -1);
    templates.push_back(std::move(rt));
    template_names_.push_back(t.name);
  }

  auto find_template = [&](std::string_view name) -> int {
    for (std::size_t i = 0; i < templates.size(); ++i) {
      if (templates[i].name == name) return static_cast<int>(i);
    }
    return -1;
  };

  // --- apply DISTRIBUTE to find distributed-dim count -----------------------
  int max_distributed_dims = 1;
  for (const auto& d : directives.distributes) {
    int count = 0;
    for (const auto k : d.pattern) {
      if (k != DistKind::Collapsed) ++count;
    }
    max_distributed_dims = std::max(max_distributed_dims, count);
  }

  // --- processor grid --------------------------------------------------------
  if (options.grid_shape) {
    grid_.shape = *options.grid_shape;
    if (grid_.total() != options.nprocs) {
      throw CompileError({}, "grid shape does not match processor count");
    }
  } else if (!directives.processors.empty()) {
    const auto& p = directives.processors.front();
    for (const auto& e : p.extents) {
      grid_.shape.push_back(static_cast<int>(front::fold_int(*e, env_)));
    }
    if (grid_.total() != options.nprocs) {
      // The PROCESSORS directive fixes the grid *rank*; the framework varies
      // the processor count per experiment, so refactor the same rank.
      grid_ = ProcGrid::factorized(options.nprocs, grid_.rank());
    }
  } else {
    grid_ = ProcGrid::factorized(options.nprocs, max_distributed_dims);
  }

  // --- apply DISTRIBUTE -------------------------------------------------------
  for (const auto& d : directives.distributes) {
    const int ti = find_template(d.target);
    if (ti < 0) {
      throw CompileError(d.loc, "DISTRIBUTE target '" + d.target +
                                    "' is not a declared TEMPLATE");
    }
    auto& rt = templates[static_cast<std::size_t>(ti)];
    if (d.pattern.size() != rt.extents.size()) {
      throw CompileError(d.loc, "DISTRIBUTE pattern rank mismatch for '" + d.target + "'");
    }
    int next_grid_dim = 0;
    for (std::size_t k = 0; k < d.pattern.size(); ++k) {
      rt.dist[k] = d.pattern[k];
      if (d.pattern[k] != DistKind::Collapsed) {
        if (next_grid_dim >= grid_.rank()) {
          throw CompileError(d.loc,
                             "more distributed dimensions than processor-grid rank");
        }
        rt.grid_dim[k] = next_grid_dim++;
      }
    }
  }

  // --- apply ALIGN: build per-array maps ---------------------------------------
  for (const auto& a : directives.aligns) {
    const int sym_id = symbols.find(a.array);
    if (sym_id < 0 || symbols.at(sym_id).kind != front::SymbolKind::Array) {
      throw CompileError(a.loc, "ALIGN of undeclared array '" + a.array + "'");
    }
    const front::Symbol& sym = symbols.at(sym_id);
    const int ti = find_template(a.target);
    if (ti < 0) {
      throw CompileError(a.loc, "ALIGN target '" + a.target + "' is not a TEMPLATE");
    }
    const auto& rt = templates[static_cast<std::size_t>(ti)];
    if (static_cast<int>(a.dummies.size()) != sym.rank()) {
      throw CompileError(a.loc, "ALIGN dummy count does not match rank of '" + a.array + "'");
    }
    if (a.target_subs.size() != rt.extents.size()) {
      throw CompileError(a.loc, "ALIGN target subscript count does not match template rank");
    }

    ArrayMap map;
    map.symbol = sym_id;
    map.name = a.array;
    map.template_id = ti;
    map.dims.resize(static_cast<std::size_t>(sym.rank()));
    for (std::size_t k = 0; k < map.dims.size(); ++k) {
      map.dims[k].extent = front::fold_int(*sym.dims[k], env_);
      map.dims[k].kind = DistKind::Collapsed;
    }
    // For each template dim subscripted by a dummy, connect the array dim.
    for (std::size_t td = 0; td < a.target_subs.size(); ++td) {
      const auto& ts = a.target_subs[td];
      if (ts.star || ts.dummy < 0) continue;
      auto& dd = map.dims[static_cast<std::size_t>(ts.dummy)];
      dd.kind = rt.dist[td];
      dd.grid_dim = rt.grid_dim[td];
      dd.align_offset = ts.offset;
      dd.tmpl_extent = rt.extents[td];
      if (dd.grid_dim >= 0) {
        dd.nprocs = grid_.shape[static_cast<std::size_t>(dd.grid_dim)];
      }
      if (dd.kind == DistKind::Block) {
        dd.block = (dd.tmpl_extent + dd.nprocs - 1) / dd.nprocs;
      }
    }
    maps_.push_back(std::move(map));
  }

  rebuild_derived_tables();
}

// Hot-path tables: per-processor grid coordinates (one allocation for the
// layout's lifetime instead of one per coords() call) and the symbol ->
// map index (map_for is asked per node visit). Also the deserialization
// tail: the serialized form carries only the primary state.
void DataLayout::rebuild_derived_tables() {
  const int total = grid_.total();
  const std::size_t rank = static_cast<std::size_t>(grid_.rank());
  coords_flat_.resize(static_cast<std::size_t>(total) * rank);
  for (int p = 0; p < total; ++p) {
    const std::vector<int> c = grid_.coords(p);
    std::copy(c.begin(), c.end(),
              coords_flat_.begin() + static_cast<std::size_t>(p) * rank);
  }
  std::size_t slots = extents_.size();
  for (const auto& m : maps_) {
    if (m.symbol >= 0) slots = std::max(slots, static_cast<std::size_t>(m.symbol) + 1);
  }
  map_index_.assign(slots, -1);
  for (std::size_t m = 0; m < maps_.size(); ++m) {
    map_index_.at(static_cast<std::size_t>(maps_[m].symbol)) = static_cast<int>(m);
  }
}

void DataLayout::add_alias(int temp_symbol, int like_symbol, std::string name) {
  const ArrayMap* base = map_for(like_symbol);
  if (base == nullptr) return;  // replicated source -> replicated temp
  ArrayMap copy = *base;
  copy.symbol = temp_symbol;
  copy.name = std::move(name);
  if (temp_symbol >= 0) {
    if (static_cast<std::size_t>(temp_symbol) >= map_index_.size()) {
      map_index_.resize(static_cast<std::size_t>(temp_symbol) + 1, -1);
    }
    map_index_[static_cast<std::size_t>(temp_symbol)] = static_cast<int>(maps_.size());
  }
  maps_.push_back(std::move(copy));
}

std::vector<long long> DataLayout::array_extents(int symbol) const {
  const SymbolExtents& se = extents_.at(static_cast<std::size_t>(symbol));
  if (!se.dims) {
    throw CompileError({}, "extents of '" + se.name +
                               "' are not resolvable in this configuration");
  }
  return *se.dims;
}

std::string DataLayout::ownership_picture(int symbol, int cell_rows, int cell_cols) const {
  const ArrayMap* map = map_for(symbol);
  std::ostringstream os;
  if (map == nullptr || map->rank() != 2) {
    os << "(replicated or non-2D)\n";
    return os.str();
  }
  const long long n1 = map->dims[0].extent;
  const long long n2 = map->dims[1].extent;
  for (int r = 0; r < cell_rows; ++r) {
    for (int c = 0; c < cell_cols; ++c) {
      const long long i = 1 + r * n1 / cell_rows;
      const long long j = 1 + c * n2 / cell_cols;
      const long long idx[2] = {i, j};
      os << " P" << map->owner(grid_, idx) + 1;
    }
    os << '\n';
  }
  return os.str();
}

}  // namespace hpf90d::compiler
