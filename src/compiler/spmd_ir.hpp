// spmd_ir.hpp — the loosely synchronous SPMD node-program representation.
//
// Phase 1 of the framework compiles HPF into a "loosely synchronous SPMD
// program structure ... consisting of alternating phases of local
// computation and global communication" (paper §4.1 step 5). This IR is
// that structure: a tree whose leaves are local-computation loops,
// replicated scalar operations, and communication operations, and whose
// interior nodes are the replicated control constructs (do / while / if).
//
// Both consumers execute the same IR:
//   * core/engine.hpp   — the interpretation engine (predicted time),
//   * sim/executor.hpp  — the functional simulator  (measured time).
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "compiler/opcount.hpp"
#include "hpf/ast.hpp"
#include "hpf/directives.hpp"
#include "hpf/sema.hpp"

namespace hpf90d::compiler {

enum class SpmdKind {
  Seq,            // ordered children (program body, loop bodies)
  ScalarAssign,   // replicated scalar computation
  LocalLoop,      // owner-computes data-parallel loop (from forall)
  OverlapComm,    // boundary exchange for subscript offsets (ghost cells)
  CShiftComm,     // cshift/tshift intrinsic: circular shift into a temporary
  GatherComm,     // irregular gather / regular remap prefetch
  ScatterComm,    // irregular scatter write-back (vector-subscripted LHS)
  SliceBroadcast, // loop-invariant slice of a distributed dim read by all
  Reduce,         // global reduction (sum/product/maxval/minval/maxloc)
  DoLoop,         // replicated counted loop
  WhileLoop,      // replicated while loop
  IfBlock,        // replicated branch
  HostIO,         // print *, ... — node 0 <-> host (SRM) traffic
};

[[nodiscard]] std::string_view spmd_kind_name(SpmdKind k) noexcept;

/// One dimension of a local iteration space (a forall index).
struct IterIndex {
  std::string name;
  int symbol = -1;
  front::ExprPtr lo, hi, stride;  // stride may be null (1)

  [[nodiscard]] IterIndex clone() const;
};

enum class GatherPattern {
  Irregular,  // vector subscript — runtime-resolved gather/scatter
  Remap,      // affine but non-unit / transposed — regular remap
};

struct SpmdNode;
using SpmdNodePtr = std::unique_ptr<SpmdNode>;

struct CostProgram;  // cost_program.hpp — flattened priced-expression bytecode

struct SpmdNode {
  SpmdKind kind = SpmdKind::Seq;
  front::SourceLoc loc;
  int id = -1;  // stable preorder id (assigned by the pipeline)

  // --- LocalLoop ---------------------------------------------------------
  std::vector<IterIndex> space;
  front::ExprPtr mask;   // LocalLoop mask; IfBlock / WhileLoop condition
  front::ExprPtr lhs;    // LocalLoop body assignment / ScalarAssign target
  front::ExprPtr rhs;
  int home_symbol = -1;  // array whose owner executes each iteration
  /// Which forall index (position in `space`) drives each home-array dim;
  /// -1 for dims subscripted by loop-invariant expressions. The paired
  /// offset is the constant c in `a(i+c)`.
  std::vector<int> home_driver;
  std::vector<long long> home_driver_offset;
  /// Inner sequential reduction for dim-reductions:
  /// lhs(space) = op over inner.index of inner_arg
  struct InnerReduce {
    std::string op;  // "sum" | "product" | "maxval" | "minval"
    IterIndex index;
    front::ExprPtr arg;
  };
  std::optional<InnerReduce> inner;

  // --- communication nodes -------------------------------------------------
  int comm_array = -1;       // source array symbol
  int comm_temp = -1;        // destination temporary (CShiftComm)
  int comm_dim = 0;          // 0-based array dimension
  long long comm_offset = 0; // OverlapComm ghost offset (signed)
  front::ExprPtr comm_amount;  // CShiftComm shift expression
  GatherPattern gather_pattern = GatherPattern::Irregular;
  std::string comm_note;     // classification note for reports/AAG
  bool per_element = false;  // true when message vectorization is disabled
  /// True when the communicated array is not written inside the innermost
  /// enclosing loop: after the first trip the (re-issued) exchange overlaps
  /// with computation, and the interpretation engine charges only its
  /// non-overlappable part (paper §3.3: "overlap between computation and
  /// communication" heuristic).
  bool comm_src_invariant = false;

  // --- Reduce ---------------------------------------------------------------
  std::string reduce_op;
  front::ExprPtr reduce_arg;       // element expression over `space`
  int reduce_result = -1;          // scalar symbol receiving the result

  // --- DoLoop ----------------------------------------------------------------
  std::string do_var;
  int do_symbol = -1;
  front::ExprPtr do_lo, do_hi, do_step;

  // --- HostIO ----------------------------------------------------------------
  std::vector<front::ExprPtr> io_args;

  // --- structure ---------------------------------------------------------------
  std::vector<SpmdNodePtr> children;
  std::vector<SpmdNodePtr> else_children;

  [[nodiscard]] std::string str(int indent = 0) const;
};

/// Compiler options (paper §4.2: "provisions to take into consideration a
/// set of compiler optimizations ... turned on/off by the user").
struct CompilerOptions {
  /// Hoist communication out of element loops into one aggregate message
  /// per array per forall (message vectorization). Off = one message per
  /// element, the unoptimized compiler behaviour.
  bool message_vectorization = true;
  /// Assumed probability that a forall mask evaluates true, used by the
  /// *predictor* when no better information exists. The simulator measures
  /// the actual fraction. Overridable per run via binding "mask__prob".
  double default_mask_probability = 1.0;
};

/// Static operation counts for one SPMD node, computed once at compile
/// time (paper §4.4: overheads "using instruction counts"). `body` prices
/// one element of the node's assignment/reduction work (including the
/// accumulate add for reductions), `cond` its mask / loop / branch
/// condition. Both are zero for kinds without priced expressions.
struct NodeOpCounts {
  OpCounts body;
  OpCounts cond;
  /// 1 + distinct array references in the node's priced expressions
  /// (count_array_refs over rhs / inner arg / reduce arg) — the `arrays`
  /// factor of the engine's working-set heuristic, hoisted out of the
  /// per-point hot path because it depends only on the node.
  long long ws_arrays = 1;
};

/// The complete output of compilation phase 1.
struct CompiledProgram {
  std::string name;
  front::Program ast;              // normalized AST (statement bodies)
  front::SymbolTable symbols;      // extended with compiler temporaries
  front::DirectiveSet directives;
  CompilerOptions options;
  SpmdNodePtr root;                // Seq over the program body
  /// Compiler-introduced array temporaries (shift destinations), each
  /// mapped like an existing array: (temp symbol, like symbol). DataLayout
  /// replays these as aliases when a configuration is resolved.
  std::vector<std::pair<int, int>> temp_aliases;
  int node_count = 0;
  /// Serialization of the layout-relevant structure (directives, symbols,
  /// temp aliases), filled by the pipeline so layout_fingerprint need not
  /// re-walk the program on every cache lookup. Empty for hand-built
  /// programs; layout_fingerprint then computes it on the fly.
  std::string structure_fingerprint;
  /// Compact rendering of structure_fingerprint — its fnv1a64 plus length —
  /// precomputed by the pipeline so layout_fingerprint appends a ready
  /// string instead of formatting one per cache lookup. Empty for
  /// hand-built programs.
  std::string structure_digest;
  /// Process-unique id stamped by the pipeline (0 for hand-built
  /// programs). Lets address-keyed consumers detect that a reused address
  /// holds a *different* compilation.
  std::uint64_t compile_id = 0;
  /// Per-node operation counts indexed by SpmdNode::id, filled by the
  /// pipeline (compute_node_ops). Computed once at compile time and shared
  /// by every consumer — all engine arenas and the simulator's cost model —
  /// instead of being re-derived per engine. Empty only for hand-built
  /// programs that bypassed lower_program; consumers then fall back to
  /// collect_node_ops.
  std::vector<NodeOpCounts> node_ops;
  /// Priced expressions flattened to register bytecode (cost_program.hpp),
  /// built by the pipeline alongside node_ops and shared immutably by every
  /// engine arena. Null for hand-built programs that bypassed
  /// lower_program; the engines then evaluate expression trees directly.
  std::shared_ptr<const CostProgram> cost_program;

  [[nodiscard]] std::string str() const { return root ? root->str() : std::string{}; }
};

/// Walks the SPMD tree and returns the per-node operation-count table
/// (indexed by SpmdNode::id; requires numbered nodes).
[[nodiscard]] std::vector<NodeOpCounts> collect_node_ops(const CompiledProgram& prog);

/// Fills prog.node_ops via collect_node_ops. Called by the pipeline after
/// node numbering; also the fix-up for hand-built programs.
void compute_node_ops(CompiledProgram& prog);

}  // namespace hpf90d::compiler
