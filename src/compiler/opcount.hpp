// opcount.hpp — static operation counts for expressions.
//
// The paper's system characterization computes iterative/conditional
// overheads "using instruction counts" (§4.4). Both cost models share this
// counter: the interpretation engine multiplies the counts by SAU
// per-operation parameters, while the simulator feeds them through a finer
// i860 issue/dependence model (sim/exec_cost.hpp).
#pragma once

#include <map>
#include <string>

#include "hpf/ast.hpp"

namespace hpf90d::compiler {

struct OpCounts {
  // floating-point operations
  int fadd = 0;   // add/sub/compare
  int fmul = 0;
  int fdiv = 0;
  int fpow = 0;
  // integer / address arithmetic (subscript evaluation, loop index math)
  int iops = 0;
  // memory traffic (array element accesses; scalars live in registers)
  int loads = 0;
  int stores = 0;
  // elemental intrinsic invocations by name (exp, sqrt, ...)
  std::map<std::string, int> intrinsics;
  // critical-path depth of the expression DAG (operations on the longest
  // dependence chain) — drives the simulator's pipeline model
  int depth = 0;

  void add(const OpCounts& other);
  [[nodiscard]] int total_flops() const noexcept { return fadd + fmul + fdiv + fpow; }
};

/// Counts the work of evaluating `e` once (one element of a data-parallel
/// operation, or one scalar evaluation). Array references count one load
/// plus one integer op per subscript dimension (address arithmetic);
/// whole-array / section terms are counted as a single element access —
/// callers multiply by the iteration count.
[[nodiscard]] OpCounts count_expr(const front::Expr& e);

/// Counts `lhs = rhs` for one element: rhs evaluation + one store + lhs
/// subscript arithmetic.
[[nodiscard]] OpCounts count_assignment(const front::Expr& lhs, const front::Expr& rhs);

/// Adds the number of ArrayRef nodes under `e` (subscripts included) to
/// `count`. Shared by the engine's and the simulator's working-set
/// heuristics — one definition so the two cost models cannot drift — and
/// deliberately plain recursion: it runs per node visit on the sweep hot
/// path.
void count_array_refs(const front::Expr& e, long long& count);

}  // namespace hpf90d::compiler
