#include "compiler/eval.hpp"

#include <cmath>

#include "hpf/fold.hpp"
#include "hpf/intrinsics.hpp"
#include "support/diagnostics.hpp"

namespace hpf90d::compiler {

using front::Expr;
using front::ExprKind;
using front::TypeBase;
using support::CompileError;

namespace {

bool both_int(const Expr& e) {
  return e.args.size() == 2 && e.args[0]->type == TypeBase::Integer &&
         e.args[1]->type == TypeBase::Integer;
}

/// Failure context for the throwing entry points. The evaluator itself is
/// exception-free: interpretation probes unavailable data values on every
/// sweep point (try_eval_scalar), and throwing/catching a CompileError —
/// with its diagnostic report and message formatting — made the *expected*
/// outcome the most expensive path in the engine's hot loop. Failures
/// instead propagate as nullopt; `err`, when non-null, captures where and
/// why so eval_scalar can still throw the precise curated diagnostic.
struct EvalError {
  front::SourceLoc loc;
  std::string message;
};

void fail(EvalError* err, const front::SourceLoc& loc, std::string message) {
  if (err != nullptr && err->message.empty()) {
    err->loc = loc;
    err->message = std::move(message);
  }
}

std::optional<double> eval_call(const Expr& e, const ScalarEnv& env,
                                ArrayAccess* arrays, const front::SymbolTable& symbols,
                                EvalError* err);

std::optional<double> eval_rec(const Expr& e, const ScalarEnv& env, ArrayAccess* arrays,
                               const front::SymbolTable& symbols, EvalError* err) {
  switch (e.kind) {
    case ExprKind::IntLit:
      return static_cast<double>(e.int_value);
    case ExprKind::RealLit:
      return e.real_value;
    case ExprKind::LogicalLit:
      return e.bool_value ? 1.0 : 0.0;
    case ExprKind::Var: {
      int id = e.symbol;
      if (id < 0) id = symbols.find(e.name);  // unannotated clones (extents)
      if (id >= 0 && env.is_defined(id)) return env.value(id);
      if (id >= 0) {
        const front::Symbol& sym = symbols.at(id);
        if (sym.kind == front::SymbolKind::Param && sym.const_value) {
          return *sym.const_value;
        }
      }
      fail(err, e.loc, "value of '" + e.name +
                           "' is not available (unresolved critical variable?)");
      return std::nullopt;
    }
    case ExprKind::ArrayRef: {
      if (arrays == nullptr) {
        fail(err, e.loc, "array element '" + e.name +
                             "' cannot be read during interpretation");
        return std::nullopt;
      }
      std::vector<long long> idx;
      idx.reserve(e.subs.size());
      for (const auto& sub : e.subs) {
        if (sub.kind != front::Subscript::Kind::Scalar) {
          fail(err, e.loc, "internal: section in scalar evaluation");
          return std::nullopt;
        }
        const std::optional<double> v = eval_rec(*sub.scalar, env, arrays, symbols, err);
        if (!v) return std::nullopt;
        idx.push_back(static_cast<long long>(std::llround(*v)));
      }
      return arrays->load(e.symbol, idx);
    }
    case ExprKind::Unary: {
      const std::optional<double> v = eval_rec(*e.args[0], env, arrays, symbols, err);
      if (!v) return std::nullopt;
      switch (e.un_op) {
        case front::UnOp::Neg: return -*v;
        case front::UnOp::Plus: return *v;
        case front::UnOp::Not: return *v == 0.0 ? 1.0 : 0.0;
      }
      return 0.0;
    }
    case ExprKind::Binary: {
      const std::optional<double> av = eval_rec(*e.args[0], env, arrays, symbols, err);
      if (!av) return std::nullopt;
      const std::optional<double> bv = eval_rec(*e.args[1], env, arrays, symbols, err);
      if (!bv) return std::nullopt;
      const double a = *av;
      const double b = *bv;
      switch (e.bin_op) {
        case front::BinOp::Add: return a + b;
        case front::BinOp::Sub: return a - b;
        case front::BinOp::Mul: return a * b;
        case front::BinOp::Div:
          if (both_int(e)) {
            const long long bi = static_cast<long long>(b);
            if (bi == 0) {
              fail(err, e.loc, "integer division by zero");
              return std::nullopt;
            }
            return static_cast<double>(static_cast<long long>(a) / bi);
          }
          return a / b;
        case front::BinOp::Pow: return std::pow(a, b);
        case front::BinOp::Lt: return a < b ? 1.0 : 0.0;
        case front::BinOp::Le: return a <= b ? 1.0 : 0.0;
        case front::BinOp::Gt: return a > b ? 1.0 : 0.0;
        case front::BinOp::Ge: return a >= b ? 1.0 : 0.0;
        case front::BinOp::Eq: return a == b ? 1.0 : 0.0;
        case front::BinOp::Ne: return a != b ? 1.0 : 0.0;
        case front::BinOp::And: return (a != 0.0 && b != 0.0) ? 1.0 : 0.0;
        case front::BinOp::Or: return (a != 0.0 || b != 0.0) ? 1.0 : 0.0;
      }
      return 0.0;
    }
    case ExprKind::Call:
      return eval_call(e, env, arrays, symbols, err);
  }
  return 0.0;
}

std::optional<double> eval_call(const Expr& e, const ScalarEnv& env,
                                ArrayAccess* arrays, const front::SymbolTable& symbols,
                                EvalError* err) {
  const std::string& n = e.name;
  if (n == "size") {
    if (arrays == nullptr) {
      // extents are static: fall back to folding the declared extent
      try {
        const front::Symbol& sym = symbols.at(e.args[0]->symbol);
        front::Bindings env2;
        for (const auto& s : symbols.symbols()) {
          if (s.kind == front::SymbolKind::Param && s.const_value) {
            env2.set(s.name, *s.const_value);
          }
        }
        if (e.args.size() == 2) {
          const std::optional<double> dv =
              eval_rec(*e.args[1], env, arrays, symbols, err);
          if (!dv) return std::nullopt;
          const long long d = static_cast<long long>(*dv);
          return static_cast<double>(
              front::fold_int(*sym.dims.at(static_cast<std::size_t>(d - 1)), env2));
        }
        long long total = 1;
        for (const auto& dim : sym.dims) total *= front::fold_int(*dim, env2);
        return static_cast<double>(total);
      } catch (const CompileError& fold_err) {
        // keep the fold failure's own location (the unfoldable declaration),
        // not the size() call site
        fail(err, fold_err.loc(), fold_err.what());
        return std::nullopt;
      }
    }
    const int sym = e.args[0]->symbol;
    if (e.args.size() == 2) {
      const std::optional<double> dv = eval_rec(*e.args[1], env, arrays, symbols, err);
      if (!dv) return std::nullopt;
      return static_cast<double>(
          arrays->extent(sym, static_cast<int>(static_cast<long long>(*dv) - 1)));
    }
    long long total = 1;
    const front::Symbol& s = symbols.at(sym);
    for (int d = 0; d < s.rank(); ++d) total *= arrays->extent(sym, d);
    return static_cast<double>(total);
  }

  std::vector<double> argv;
  argv.reserve(e.args.size());
  for (const auto& a : e.args) {
    const std::optional<double> v = eval_rec(*a, env, arrays, symbols, err);
    if (!v) return std::nullopt;
    argv.push_back(*v);
  }

  if (n == "exp") return std::exp(argv[0]);
  if (n == "log") return std::log(argv[0]);
  if (n == "sqrt") return std::sqrt(argv[0]);
  if (n == "abs") return std::fabs(argv[0]);
  if (n == "sin") return std::sin(argv[0]);
  if (n == "cos") return std::cos(argv[0]);
  if (n == "atan") return std::atan(argv[0]);
  if (n == "real" || n == "float" || n == "dble") return argv[0];
  if (n == "int") return std::trunc(argv[0]);
  if (n == "nint") return std::nearbyint(argv[0]);
  if (n == "sign") return argv[1] >= 0 ? std::fabs(argv[0]) : -std::fabs(argv[0]);
  if (n == "mod") {
    if (both_int(e)) {
      return static_cast<double>(static_cast<long long>(argv[0]) %
                                 static_cast<long long>(argv[1]));
    }
    return std::fmod(argv[0], argv[1]);
  }
  if (n == "min") {
    double v = argv[0];
    for (std::size_t i = 1; i < argv.size(); ++i) v = std::min(v, argv[i]);
    return v;
  }
  if (n == "max") {
    double v = argv[0];
    for (std::size_t i = 1; i < argv.size(); ++i) v = std::max(v, argv[i]);
    return v;
  }
  if (n == "merge") return argv[2] != 0.0 ? argv[0] : argv[1];
  fail(err, e.loc, "intrinsic '" + n + "' cannot be evaluated here");
  return std::nullopt;
}

}  // namespace

double eval_scalar(const Expr& e, const ScalarEnv& env, ArrayAccess* arrays,
                   const front::SymbolTable& symbols) {
  EvalError err;
  const std::optional<double> v = eval_rec(e, env, arrays, symbols, &err);
  if (!v) throw CompileError(err.loc, err.message);
  return *v;
}

long long eval_int(const Expr& e, const ScalarEnv& env, ArrayAccess* arrays,
                   const front::SymbolTable& symbols) {
  return static_cast<long long>(std::llround(eval_scalar(e, env, arrays, symbols)));
}

std::optional<double> try_eval_scalar(const Expr& e, const ScalarEnv& env,
                                      ArrayAccess* arrays,
                                      const front::SymbolTable& symbols) {
  // err = nullptr: probing an unavailable value costs nothing beyond the
  // walk itself — no message formatting, no exception, no diagnostic. The
  // catch covers throwing callees outside the evaluator (e.g. an
  // out-of-bounds ArrayAccess::load), preserving the old contract.
  try {
    return eval_rec(e, env, arrays, symbols, nullptr);
  } catch (const CompileError&) {
    return std::nullopt;
  }
}

namespace {

/// Shared fold behind seed_environment / seed_values: resolves PARAMETERs
/// against the bindings and hands every defined (id, value) to `define`.
template <class Define>
void fold_seeds(const front::SymbolTable& symbols, const front::Bindings& bindings,
                Define&& define) {
  front::Bindings fold_env;
  for (const auto& [name, value] : bindings.values()) fold_env.set(name, value);
  // params may reference earlier params and overridden names
  for (int pass = 0; pass < 3; ++pass) {
    for (const auto& sym : symbols.symbols()) {
      if (sym.kind != front::SymbolKind::Param || !sym.param_value) continue;
      if (fold_env.contains(sym.name)) continue;
      if (const auto v = front::try_fold(*sym.param_value, fold_env)) {
        fold_env.set(sym.name, *v);
      }
    }
  }
  for (const auto& sym : symbols.symbols()) {
    const int id = symbols.find(sym.name);
    if (const auto v = fold_env.get(sym.name)) define(id, *v);
  }
}

}  // namespace

void seed_environment(ScalarEnv& env, const front::SymbolTable& symbols,
                      const front::Bindings& bindings) {
  fold_seeds(symbols, bindings, [&](int id, double v) { env.define(id, v); });
}

SeededValues seed_values(const front::SymbolTable& symbols,
                         const front::Bindings& bindings) {
  SeededValues out;
  fold_seeds(symbols, bindings,
             [&](int id, double v) { out.defined.emplace_back(id, v); });
  return out;
}

}  // namespace hpf90d::compiler
