// lower.hpp — lowering of the normalized AST into the SPMD node program.
//
// Implements the three-level structure of paper Fig 2: each forall becomes
// a collective-communication level (ghost exchanges, shift temporaries,
// gathers), a local-computation level (LocalLoop under owner-computes
// partitioning), and — for vector-subscripted stores — a final
// communication level (ScatterComm). Scalar statements become replicated
// nodes; full reductions become Reduce nodes; dim-reductions become
// LocalLoops with inner sequential reduction.
#pragma once

#include "compiler/comm_analysis.hpp"
#include "compiler/spmd_ir.hpp"

namespace hpf90d::compiler {

/// Lowers `ast` (already analyzed and normalized; `symbols` will be
/// extended with compiler temporaries). Consumes its arguments.
[[nodiscard]] CompiledProgram lower_program(std::string name, front::Program ast,
                                            front::SymbolTable symbols,
                                            front::DirectiveSet directives,
                                            CompilerOptions options);

}  // namespace hpf90d::compiler
