#include "compiler/lower.hpp"

#include <functional>
#include <set>

#include "compiler/cost_program.hpp"
#include "compiler/normalize.hpp"
#include "hpf/fold.hpp"
#include "hpf/intrinsics.hpp"
#include "support/diagnostics.hpp"

namespace hpf90d::compiler {

using front::Expr;
using front::ExprKind;
using front::ExprPtr;
using front::Stmt;
using front::StmtKind;
using front::SymbolKind;
using support::CompileError;

namespace {

class Lowerer {
 public:
  Lowerer(CompiledProgram& out, const StructuralMaps& maps)
      : out_(out), maps_(maps) {}

  void run() {
    out_.root = std::make_unique<SpmdNode>();
    out_.root->kind = SpmdKind::Seq;
    for (auto& stmt : out_.ast.stmts) {
      lower_stmt(*stmt, out_.root->children);
    }
    mark_invariant_comm(*out_.root);
    number_nodes(*out_.root);
  }

  /// Post-pass: a comm node whose source array is never stored to inside
  /// the same loop body re-sends identical data every trip; flag it so the
  /// engine can apply the computation/communication overlap heuristic.
  static void collect_written(const SpmdNode& n, std::set<int>& written) {
    if (n.kind == SpmdKind::LocalLoop && n.lhs != nullptr) written.insert(n.lhs->symbol);
    if (n.kind == SpmdKind::CShiftComm) written.insert(n.comm_temp);
    if (n.kind == SpmdKind::ScatterComm) written.insert(n.comm_array);
    for (const auto& c : n.children) collect_written(*c, written);
    for (const auto& c : n.else_children) collect_written(*c, written);
  }

  static void mark_invariant_comm(SpmdNode& n) {
    if (n.kind == SpmdKind::DoLoop || n.kind == SpmdKind::WhileLoop) {
      std::set<int> written;
      for (const auto& c : n.children) collect_written(*c, written);
      for (auto& c : n.children) {
        if ((c->kind == SpmdKind::OverlapComm || c->kind == SpmdKind::CShiftComm ||
             c->kind == SpmdKind::GatherComm || c->kind == SpmdKind::SliceBroadcast) &&
            !written.contains(c->comm_array)) {
          c->comm_src_invariant = true;
        }
      }
    }
    for (auto& c : n.children) mark_invariant_comm(*c);
    for (auto& c : n.else_children) mark_invariant_comm(*c);
  }

 private:
  // ---------------------------------------------------------------------
  int new_temp_array(int like_symbol, front::SourceLoc loc) {
    const front::Symbol& like = out_.symbols.at(like_symbol);
    front::Symbol sym;
    sym.name = "t__" + std::to_string(++temp_counter_);
    sym.kind = SymbolKind::Array;
    sym.type = like.type;
    sym.loc = loc;
    for (const auto& d : like.dims) sym.dims.push_back(d->clone());
    const int id = out_.symbols.add(std::move(sym));
    out_.temp_aliases.emplace_back(id, like_symbol);
    return id;
  }

  int new_temp_scalar(front::TypeBase type, front::SourceLoc loc) {
    front::Symbol sym;
    sym.name = "r__" + std::to_string(++temp_counter_);
    sym.kind = SymbolKind::Scalar;
    sym.type = type;
    sym.loc = loc;
    return out_.symbols.add(std::move(sym));
  }

  int new_index_symbol(std::string& out_name) {
    out_name = "j__" + std::to_string(++temp_counter_);
    front::Symbol sym;
    sym.name = out_name;
    sym.kind = SymbolKind::LoopIndex;
    sym.type = front::TypeBase::Integer;
    return out_.symbols.add(std::move(sym));
  }

  // ---------------------------------------------------------------------
  void lower_stmt(Stmt& stmt, std::vector<SpmdNodePtr>& into) {
    switch (stmt.kind) {
      case StmtKind::Assign:
        lower_scalar_assign(stmt, into);
        break;
      case StmtKind::Forall:
        lower_forall(stmt, into);
        break;
      case StmtKind::Where:
        throw CompileError(stmt.loc, "internal: where survived normalization");
      case StmtKind::Do: {
        auto node = std::make_unique<SpmdNode>();
        node->kind = SpmdKind::DoLoop;
        node->loc = stmt.loc;
        node->do_var = stmt.do_var;
        node->do_symbol = stmt.do_symbol;
        node->do_lo = stmt.do_lo->clone();
        node->do_hi = stmt.do_hi->clone();
        if (stmt.do_step) node->do_step = stmt.do_step->clone();
        for (auto& s : stmt.body) lower_stmt(*s, node->children);
        into.push_back(std::move(node));
        break;
      }
      case StmtKind::DoWhile: {
        auto node = std::make_unique<SpmdNode>();
        node->kind = SpmdKind::WhileLoop;
        node->loc = stmt.loc;
        node->mask = stmt.mask->clone();
        for (auto& s : stmt.body) lower_stmt(*s, node->children);
        into.push_back(std::move(node));
        break;
      }
      case StmtKind::If: {
        auto node = std::make_unique<SpmdNode>();
        node->kind = SpmdKind::IfBlock;
        node->loc = stmt.loc;
        node->mask = stmt.mask->clone();
        for (auto& s : stmt.body) lower_stmt(*s, node->children);
        for (auto& s : stmt.else_body) lower_stmt(*s, node->else_children);
        into.push_back(std::move(node));
        break;
      }
      case StmtKind::Print: {
        auto node = std::make_unique<SpmdNode>();
        node->kind = SpmdKind::HostIO;
        node->loc = stmt.loc;
        for (auto& e : stmt.print_args) node->io_args.push_back(e->clone());
        into.push_back(std::move(node));
        break;
      }
    }
  }

  // --- scalar statements -------------------------------------------------
  void lower_scalar_assign(Stmt& stmt, std::vector<SpmdNodePtr>& into) {
    ExprPtr rhs = stmt.rhs->clone();
    extract_reductions(rhs, into, stmt.loc);
    auto node = std::make_unique<SpmdNode>();
    node->kind = SpmdKind::ScalarAssign;
    node->loc = stmt.loc;
    node->lhs = stmt.lhs->clone();
    node->rhs = std::move(rhs);
    into.push_back(std::move(node));
  }

  /// Replaces every full-reduction call in `e` with a reference to a fresh
  /// scalar temporary, emitting the Reduce nodes that compute them.
  void extract_reductions(ExprPtr& e, std::vector<SpmdNodePtr>& into,
                          front::SourceLoc loc) {
    const auto info = front::find_intrinsic(e->name);
    if (e->kind == ExprKind::Call && info &&
        (info->kind == front::IntrinsicKind::Reduction ||
         info->kind == front::IntrinsicKind::Location) &&
        e->rank == 0 && e->args.size() == 1) {
      into.push_back(make_reduce_node(*e, loc, into));
      const int result = into.back()->reduce_result;
      auto var = front::make_var(out_.symbols.at(result).name, loc);
      var->symbol = result;
      var->type = out_.symbols.at(result).type;
      e = std::move(var);
      return;
    }
    for (auto& a : e->args) extract_reductions(a, into, loc);
    for (auto& s : e->subs) {
      if (s.scalar) extract_reductions(s.scalar, into, loc);
    }
  }

  /// Builds a Reduce node for `call` = sum/product/maxval/minval/maxloc of
  /// an array-valued expression.
  SpmdNodePtr make_reduce_node(const Expr& call, front::SourceLoc loc,
                               std::vector<SpmdNodePtr>& into) {
    ExprPtr arg = call.args[0]->clone();

    // iteration space from the first array term's shape
    const Expr* shape_term = find_shape_term(*arg);
    if (shape_term == nullptr) {
      throw CompileError(loc, "cannot determine shape of reduction argument");
    }
    std::vector<front::ForallIndex> indices = build_indices_for(*shape_term, loc);
    index_elementwise(*arg, indices, out_.symbols);

    auto node = std::make_unique<SpmdNode>();
    node->kind = SpmdKind::Reduce;
    node->loc = loc;
    node->reduce_op = call.name;
    for (auto& idx : indices) {
      IterIndex it;
      it.name = idx.name;
      it.symbol = idx.symbol;
      it.lo = std::move(idx.lo);
      it.hi = std::move(idx.hi);
      if (idx.stride) it.stride = std::move(idx.stride);
      node->space.push_back(std::move(it));
    }

    // shifts inside the (now elementwise) argument
    extract_shifts(arg, node->space, into, loc);

    // home & comm analysis: partition by the first distributed term of the
    // argument (reductions compute where their data lives)
    const Expr* home_ref = find_distributed_ref(*arg);
    if (home_ref != nullptr) {
      CommAnalysis ca = analyze_forall(node->space, *home_ref, arg.get(), nullptr,
                                       nullptr, -1, maps_, out_.symbols);
      emit_requirements(ca.pre, into, loc, node->space);
      node->home_symbol = ca.partition.home_symbol;
      node->home_driver = ca.partition.home_driver;
      node->home_driver_offset = ca.partition.home_driver_offset;
    }

    node->reduce_arg = std::move(arg);
    node->reduce_result = new_temp_scalar(
        call.name == "maxloc" ? front::TypeBase::Integer : call.type, loc);
    return node;
  }

  const Expr* find_shape_term(const Expr& e) const {
    if ((e.kind == ExprKind::Var || e.kind == ExprKind::ArrayRef) && e.rank > 0) {
      return &e;
    }
    if (e.kind == ExprKind::Call) {
      const auto info = front::find_intrinsic(e.name);
      if (info && info->kind == front::IntrinsicKind::Shift) {
        return find_shape_term(*e.args[0]);
      }
    }
    for (const auto& a : e.args) {
      if (const Expr* t = find_shape_term(*a)) return t;
    }
    return nullptr;
  }

  const Expr* find_distributed_ref(const Expr& e) const {
    if (e.kind == ExprKind::ArrayRef && maps_.contains(e.symbol)) return &e;
    for (const auto& a : e.args) {
      if (const Expr* t = find_distributed_ref(*a)) return t;
    }
    for (const auto& s : e.subs) {
      if (s.scalar) {
        if (const Expr* t = find_distributed_ref(*s.scalar)) return t;
      }
    }
    return nullptr;
  }

  /// Builds fresh iteration indices covering `term`'s section shape.
  std::vector<front::ForallIndex> build_indices_for(const Expr& term,
                                                    front::SourceLoc loc) {
    std::vector<front::ForallIndex> indices;
    const front::Symbol& sym = out_.symbols.at(term.symbol);
    if (term.kind == ExprKind::Var) {
      for (const auto& d : sym.dims) {
        front::ForallIndex idx;
        idx.symbol = new_index_symbol(idx.name);
        idx.lo = front::make_int_lit(1, loc);
        idx.hi = d->clone();
        indices.push_back(std::move(idx));
      }
      return indices;
    }
    for (std::size_t k = 0; k < term.subs.size(); ++k) {
      const front::Subscript& sub = term.subs[k];
      if (sub.kind == front::Subscript::Kind::Scalar) continue;
      front::ForallIndex idx;
      idx.symbol = new_index_symbol(idx.name);
      if (sub.kind == front::Subscript::Kind::All) {
        idx.lo = front::make_int_lit(1, loc);
        idx.hi = sym.dims[k]->clone();
      } else {
        idx.lo = sub.lo ? sub.lo->clone() : front::make_int_lit(1, loc);
        idx.hi = sub.hi ? sub.hi->clone() : sym.dims[k]->clone();
        if (sub.stride) idx.stride = sub.stride->clone();
      }
      indices.push_back(std::move(idx));
    }
    return indices;
  }

  // --- forall -----------------------------------------------------------
  void lower_forall(Stmt& stmt, std::vector<SpmdNodePtr>& into) {
    // build the iteration space once; shared by every body assignment
    std::vector<IterIndex> space;
    for (const auto& fi : stmt.forall_indices) {
      IterIndex it;
      it.name = fi.name;
      it.symbol = fi.symbol;
      it.lo = fi.lo->clone();
      it.hi = fi.hi->clone();
      if (fi.stride) it.stride = fi.stride->clone();
      space.push_back(std::move(it));
    }

    for (auto& body_stmt : stmt.body) {
      if (body_stmt->kind != StmtKind::Assign) {
        throw CompileError(body_stmt->loc, "forall body must be assignments");
      }
      lower_forall_assignment(stmt, *body_stmt, space, into);
    }
  }

  void lower_forall_assignment(Stmt& forall, Stmt& assign,
                               const std::vector<IterIndex>& space,
                               std::vector<SpmdNodePtr>& into) {
    ExprPtr lhs = assign.lhs->clone();
    ExprPtr rhs = assign.rhs->clone();
    ExprPtr mask = forall.mask ? forall.mask->clone() : nullptr;

    auto node = std::make_unique<SpmdNode>();
    node->kind = SpmdKind::LocalLoop;
    node->loc = assign.loc;
    for (const auto& ix : space) node->space.push_back(ix.clone());

    // top-level dim-reduction RHS: p(i) = product(a, dim)
    const auto rinfo = front::find_intrinsic(rhs->name);
    if (rhs->kind == ExprKind::Call && rinfo &&
        rinfo->kind == front::IntrinsicKind::Reduction && rhs->args.size() == 2) {
      lower_dim_reduction(*node, std::move(rhs), space, into);
    } else {
      extract_shifts(rhs, space, into, assign.loc);
      if (mask) extract_shifts(mask, space, into, assign.loc);
      node->rhs = std::move(rhs);
    }
    if (mask) node->mask = std::move(mask);

    const Expr* inner_arg = node->inner ? node->inner->arg.get() : nullptr;
    const int inner_symbol = node->inner ? node->inner->index.symbol : -1;
    CommAnalysis ca = analyze_forall(node->space, *lhs, node->rhs.get(),
                                     node->mask.get(), inner_arg, inner_symbol,
                                     maps_, out_.symbols);
    emit_requirements(ca.pre, into, assign.loc, node->space);
    node->lhs = std::move(lhs);
    node->home_symbol = ca.partition.home_symbol;
    node->home_driver = ca.partition.home_driver;
    node->home_driver_offset = ca.partition.home_driver_offset;
    node->per_element = !out_.options.message_vectorization;
    into.push_back(std::move(node));
    emit_requirements(ca.post, into, assign.loc, into.back()->space);
  }

  void lower_dim_reduction(SpmdNode& node, ExprPtr call,
                           const std::vector<IterIndex>& space,
                           std::vector<SpmdNodePtr>& into) {
    const std::string op = call->name;
    ExprPtr arg = std::move(call->args[0]);
    const long long dim = require_const_int(*call->args[1]);
    const Expr* shape_term = find_shape_term(*arg);
    if (shape_term == nullptr) {
      throw CompileError(node.loc, "cannot determine shape of dim-reduction argument");
    }
    const front::Symbol& tsym = out_.symbols.at(shape_term->symbol);
    const int arg_rank = tsym.rank();
    if (dim < 1 || dim > arg_rank) {
      throw CompileError(node.loc, "DIM argument out of range");
    }

    // index list for the argument: result indices in order, inner index at
    // position dim-1
    SpmdNode::InnerReduce inner;
    inner.op = op;
    inner.index.symbol = new_index_symbol(inner.index.name);
    inner.index.lo = front::make_int_lit(1, node.loc);
    inner.index.hi = tsym.dims[static_cast<std::size_t>(dim - 1)]->clone();

    std::vector<front::ForallIndex> arg_indices;
    std::size_t next_space = 0;
    for (int k = 0; k < arg_rank; ++k) {
      front::ForallIndex idx;
      if (k == dim - 1) {
        idx.name = inner.index.name;
        idx.symbol = inner.index.symbol;
        idx.lo = inner.index.lo->clone();
        idx.hi = inner.index.hi->clone();
      } else {
        if (next_space >= space.size()) {
          throw CompileError(node.loc, "dim-reduction rank mismatch");
        }
        const IterIndex& s = space[next_space++];
        idx.name = s.name;
        idx.symbol = s.symbol;
        idx.lo = s.lo->clone();
        idx.hi = s.hi->clone();
        if (s.stride) idx.stride = s.stride->clone();
      }
      arg_indices.push_back(std::move(idx));
    }
    index_elementwise(*arg, arg_indices, out_.symbols);
    extract_shifts(arg, space, into, node.loc);
    inner.arg = std::move(arg);
    node.inner = std::move(inner);
  }

  long long require_const_int(const Expr& e) {
    front::Bindings empty;
    // allow PARAMETER names in DIM
    for (const auto& s : out_.symbols.symbols()) {
      if (s.kind == SymbolKind::Param && s.const_value) empty.set(s.name, *s.const_value);
    }
    return front::fold_int(e, empty);
  }

  /// Replaces cshift/tshift calls (atomic, conformable with the space) by
  /// references to shift temporaries filled by CShiftComm nodes.
  void extract_shifts(ExprPtr& e, const std::vector<IterIndex>& space,
                      std::vector<SpmdNodePtr>& into, front::SourceLoc loc) {
    const auto info = front::find_intrinsic(e->name);
    if (e->kind == ExprKind::Call && info &&
        info->kind == front::IntrinsicKind::Shift) {
      const Expr* src = e->args[0].get();
      if (src->kind != ExprKind::Var && src->kind != ExprKind::ArrayRef) {
        throw CompileError(e->loc, "shift argument must be an array name");
      }
      if (src->kind == ExprKind::ArrayRef && src->rank != 0) {
        // whole-section ref: require full extent (subset restriction)
        for (const auto& s : src->subs) {
          if (s.kind == front::Subscript::Kind::Triplet) {
            throw CompileError(e->loc, "shift of a partial section is not supported");
          }
        }
      }
      const int src_sym = src->symbol;
      const front::Symbol& ssym = out_.symbols.at(src_sym);
      const int temp = new_temp_array(src_sym, loc);

      auto comm = std::make_unique<SpmdNode>();
      comm->kind = SpmdKind::CShiftComm;
      comm->loc = loc;
      comm->comm_array = src_sym;
      comm->comm_temp = temp;
      comm->comm_amount = e->args[1]->clone();
      long long dim = 1;
      if (e->args.size() == 3) dim = require_const_int(*e->args[2]);
      if (dim < 1 || dim > ssym.rank()) {
        throw CompileError(e->loc, "shift DIM out of range");
      }
      comm->comm_dim = static_cast<int>(dim - 1);
      comm->comm_note = e->name + "(" + ssym.name + ")";
      into.push_back(std::move(comm));

      // replace call with temp element ref indexed by the space vars
      auto ref = std::make_unique<Expr>();
      ref->kind = ExprKind::ArrayRef;
      ref->loc = e->loc;
      ref->name = out_.symbols.at(temp).name;
      ref->symbol = temp;
      ref->type = ssym.type;
      ref->rank = 0;
      if (static_cast<int>(space.size()) != ssym.rank()) {
        throw CompileError(e->loc,
                           "shift result rank does not match iteration space");
      }
      for (const auto& ix : space) {
        front::Subscript sub;
        sub.kind = front::Subscript::Kind::Scalar;
        auto v = front::make_var(ix.name, e->loc);
        v->symbol = ix.symbol;
        v->type = front::TypeBase::Integer;
        sub.scalar = std::move(v);
        ref->subs.push_back(std::move(sub));
      }
      e = std::move(ref);
      return;
    }
    for (auto& a : e->args) extract_shifts(a, space, into, loc);
    for (auto& s : e->subs) {
      if (s.scalar) extract_shifts(s.scalar, space, into, loc);
    }
  }

  void emit_requirements(const std::vector<CommRequirement>& reqs,
                         std::vector<SpmdNodePtr>& into, front::SourceLoc loc,
                         const std::vector<IterIndex>& space) {
    for (const auto& req : reqs) {
      auto node = std::make_unique<SpmdNode>();
      node->loc = loc;
      node->comm_array = req.array;
      node->comm_dim = req.dim;
      node->comm_note = req.note;
      node->per_element = !out_.options.message_vectorization;
      for (const auto& ix : space) node->space.push_back(ix.clone());
      switch (req.type) {
        case CommRequirement::Type::Overlap:
          node->kind = SpmdKind::OverlapComm;
          node->comm_offset = req.offset;
          break;
        case CommRequirement::Type::Gather:
          node->kind = SpmdKind::GatherComm;
          node->gather_pattern = req.pattern;
          break;
        case CommRequirement::Type::Scatter:
          node->kind = SpmdKind::ScatterComm;
          node->gather_pattern = req.pattern;
          break;
        case CommRequirement::Type::SliceBroadcast:
          node->kind = SpmdKind::SliceBroadcast;
          break;
      }
      into.push_back(std::move(node));
    }
  }

  void number_nodes(SpmdNode& node) {
    node.id = out_.node_count++;
    for (auto& c : node.children) number_nodes(*c);
    for (auto& c : node.else_children) number_nodes(*c);
  }

  CompiledProgram& out_;
  const StructuralMaps& maps_;
  int temp_counter_ = 0;
};

}  // namespace

CompiledProgram lower_program(std::string name, front::Program ast,
                              front::SymbolTable symbols,
                              front::DirectiveSet directives, CompilerOptions options) {
  CompiledProgram out;
  out.name = std::move(name);
  out.ast = std::move(ast);
  out.symbols = std::move(symbols);
  out.directives = std::move(directives);
  out.options = options;
  const StructuralMaps maps = build_structural_maps(out.directives, out.symbols);
  Lowerer lowerer(out, maps);
  lowerer.run();
  // Operation counts and the flattened cost bytecode are part of the
  // compiled artifact: priced once here, shared by every engine arena and
  // the simulator's cost model.
  compute_node_ops(out);
  out.cost_program = compile_cost_program(out);
  return out;
}

}  // namespace hpf90d::compiler
