#include "compiler/normalize.hpp"

#include <functional>

#include "hpf/intrinsics.hpp"
#include "support/diagnostics.hpp"

namespace hpf90d::compiler {

using front::Expr;
using front::ExprKind;
using front::ExprPtr;
using front::Program;
using front::Stmt;
using front::StmtKind;
using front::StmtPtr;
using front::Subscript;
using front::SymbolKind;
using front::SymbolTable;
using support::CompileError;

namespace {

/// Description of one normalized section dimension of the LHS: the forall
/// index iterates lo:hi:stride directly in LHS index space.
struct SectionDim {
  ExprPtr lo, hi, stride;  // stride null => 1
};

/// Replaces each rank>0 term in `e` with its element under `indices`.
/// Section dim j of any term corresponds positionally to index j (Fortran
/// conformability); `dims` carries the iteration-space section (lo/stride)
/// that index j walks, so a term section `rlo:rhi:rst` maps to element
/// `rlo + ((i - lo)/stride)*rst`. Shift and reduction intrinsic calls stay
/// atomic for the lowerer.
void rewrite_terms(Expr& e, const std::vector<front::ForallIndex>& indices,
                   const std::vector<SectionDim>& dims, const SymbolTable& symbols) {
  switch (e.kind) {
    case ExprKind::IntLit:
    case ExprKind::RealLit:
    case ExprKind::LogicalLit:
      return;
    case ExprKind::Var: {
      if (e.rank == 0) return;
      const front::Symbol& sym = symbols.at(e.symbol);
      e.kind = ExprKind::ArrayRef;
      e.subs.resize(sym.dims.size());
      for (auto& s : e.subs) s.kind = Subscript::Kind::All;
      rewrite_terms(e, indices, dims, symbols);
      return;
    }
    case ExprKind::ArrayRef: {
      if (e.rank == 0) {
        for (auto& sub : e.subs) {
          if (sub.kind == Subscript::Kind::Scalar && sub.scalar->rank > 0) {
            rewrite_terms(*sub.scalar, indices, dims, symbols);
          }
        }
        return;
      }
      const front::Symbol& sym = symbols.at(e.symbol);
      std::size_t pos = 0;
      for (std::size_t k = 0; k < e.subs.size(); ++k) {
        Subscript& sub = e.subs[k];
        if (sub.kind == Subscript::Kind::Scalar) {
          if (sub.scalar->rank > 0) rewrite_terms(*sub.scalar, indices, dims, symbols);
          continue;
        }
        if (pos >= indices.size()) {
          throw CompileError(e.loc, "section rank exceeds assignment rank");
        }
        const front::ForallIndex& idx = indices[pos];
        const SectionDim& ld = dims[pos];

        ExprPtr rlo, rst;
        if (sub.kind == Subscript::Kind::All) {
          rlo = front::make_int_lit(1, e.loc);
        } else {
          rlo = sub.lo ? sub.lo->clone() : front::make_int_lit(1, e.loc);
          if (sub.stride) rst = sub.stride->clone();
        }

        auto iv = front::make_var(idx.name, e.loc);
        iv->symbol = idx.symbol;
        iv->type = front::TypeBase::Integer;
        ExprPtr elem;
        const bool same_lo = rlo->str() == ld.lo->str();
        const bool unit_strides = !ld.stride && !rst;
        const bool const_los = rlo->kind == ExprKind::IntLit &&
                               ld.lo->kind == ExprKind::IntLit;
        if (same_lo && unit_strides) {
          elem = std::move(iv);
        } else if (unit_strides && const_los) {
          // rlo + (i - llo) simplifies to i + c: keeps the subscript in the
          // affine-unit form the communication detector recognizes
          const long long c = rlo->int_value - ld.lo->int_value;
          if (c == 0) {
            elem = std::move(iv);
          } else if (c > 0) {
            elem = front::make_binary(front::BinOp::Add, std::move(iv),
                                      front::make_int_lit(c, e.loc));
            elem->type = front::TypeBase::Integer;
          } else {
            elem = front::make_binary(front::BinOp::Sub, std::move(iv),
                                      front::make_int_lit(-c, e.loc));
            elem->type = front::TypeBase::Integer;
          }
        } else {
          ExprPtr offset =
              front::make_binary(front::BinOp::Sub, std::move(iv), ld.lo->clone());
          if (ld.stride) {
            offset =
                front::make_binary(front::BinOp::Div, std::move(offset), ld.stride->clone());
          }
          if (rst) {
            offset = front::make_binary(front::BinOp::Mul, std::move(offset), std::move(rst));
          }
          elem = front::make_binary(front::BinOp::Add, std::move(rlo), std::move(offset));
          elem->type = front::TypeBase::Integer;
        }
        Subscript scalar;
        scalar.kind = Subscript::Kind::Scalar;
        scalar.scalar = std::move(elem);
        sub = std::move(scalar);
        ++pos;
      }
      e.rank = 0;
      (void)sym;
      return;
    }
    case ExprKind::Unary:
    case ExprKind::Binary:
      for (auto& a : e.args) rewrite_terms(*a, indices, dims, symbols);
      e.rank = 0;
      return;
    case ExprKind::Call: {
      const auto info = front::find_intrinsic(e.name);
      if (info && (info->kind == front::IntrinsicKind::Shift ||
                   info->kind == front::IntrinsicKind::Reduction ||
                   info->kind == front::IntrinsicKind::Location)) {
        // atomic terms: the lowerer extracts shifts into temporaries and
        // reductions into Reduce nodes / inner loops
        return;
      }
      for (auto& a : e.args) rewrite_terms(*a, indices, dims, symbols);
      e.rank = 0;
      return;
    }
  }
}

class Normalizer {
 public:
  Normalizer(Program& prog, SymbolTable& symbols) : prog_(prog), symbols_(symbols) {}

  void run() {
    for (auto& stmt : prog_.stmts) normalize_stmt(stmt);
  }

 private:
  int fresh_index_symbol(std::string& out_name) {
    out_name = "i__" + std::to_string(++counter_);
    const int found = symbols_.find(out_name);
    if (found >= 0) return found;
    front::Symbol sym;
    sym.name = out_name;
    sym.kind = SymbolKind::LoopIndex;
    sym.type = front::TypeBase::Integer;
    return symbols_.add(std::move(sym));
  }

  void normalize_stmt(StmtPtr& stmt) {
    switch (stmt->kind) {
      case StmtKind::Assign:
        if (stmt->lhs->rank > 0) {
          stmt = array_assign_to_forall(std::move(stmt), /*extra_mask=*/nullptr,
                                        /*negate_mask=*/false);
        }
        break;
      case StmtKind::Where: {
        // where (mask) body [elsewhere else_body]  ->  sequence of masked foralls
        auto seq = std::vector<StmtPtr>{};
        for (auto& s : stmt->body) {
          if (s->kind != StmtKind::Assign || s->lhs->rank == 0) {
            throw CompileError(s->loc, "where body must contain array assignments");
          }
          seq.push_back(array_assign_to_forall(std::move(s), stmt->mask.get(), false));
        }
        for (auto& s : stmt->else_body) {
          if (s->kind != StmtKind::Assign || s->lhs->rank == 0) {
            throw CompileError(s->loc, "elsewhere body must contain array assignments");
          }
          seq.push_back(array_assign_to_forall(std::move(s), stmt->mask.get(), true));
        }
        if (seq.size() == 1) {
          stmt = std::move(seq.front());
        } else {
          // splice: wrap in a 1-trip do loop? Instead, replace this
          // statement with the first and queue the rest via a container
          // statement. The subset keeps it simple: rebuild as an If(.true.)
          // block is ugly — use a Do loop with one iteration? Cleanest is
          // to allow Stmt replacement lists; we model it with a Forall-less
          // sequence carrier: an If with constant-true condition.
          auto carrier = std::make_unique<Stmt>();
          carrier->kind = StmtKind::If;
          carrier->loc = stmt->loc;
          auto cond = std::make_unique<Expr>();
          cond->kind = ExprKind::LogicalLit;
          cond->bool_value = true;
          cond->type = front::TypeBase::Logical;
          carrier->mask = std::move(cond);
          carrier->body = std::move(seq);
          stmt = std::move(carrier);
        }
        break;
      }
      case StmtKind::Forall:
        for (auto& s : stmt->body) {
          if (s->kind == StmtKind::Where) normalize_stmt(s);
        }
        break;
      case StmtKind::Do:
      case StmtKind::DoWhile:
        for (auto& s : stmt->body) normalize_stmt(s);
        break;
      case StmtKind::If:
        for (auto& s : stmt->body) normalize_stmt(s);
        for (auto& s : stmt->else_body) normalize_stmt(s);
        break;
      case StmtKind::Print:
        break;
    }
  }

  /// Canonicalizes an expression used as the assignment LHS into an
  /// ArrayRef with one subscript per dimension (whole arrays get All subs).
  static void canonicalize_lhs(Expr& e, const SymbolTable& symbols) {
    if (e.kind == ExprKind::Var && e.rank > 0) {
      const front::Symbol& sym = symbols.at(e.symbol);
      e.kind = ExprKind::ArrayRef;
      e.subs.resize(sym.dims.size());
      for (auto& s : e.subs) s.kind = Subscript::Kind::All;
    }
  }

  StmtPtr array_assign_to_forall(StmtPtr assign, const Expr* extra_mask, bool negate_mask) {
    canonicalize_lhs(*assign->lhs, symbols_);
    Expr& lhs = *assign->lhs;
    if (lhs.kind != ExprKind::ArrayRef) {
      throw CompileError(assign->loc, "unsupported array assignment target");
    }
    const front::Symbol& lsym = symbols_.at(lhs.symbol);

    // Build the forall header from the LHS sections (iteration runs over
    // actual LHS index values).
    auto forall = std::make_unique<Stmt>();
    forall->kind = StmtKind::Forall;
    forall->loc = assign->loc;

    // For each non-scalar LHS dim: create index and record its section so
    // RHS sections can be mapped positionally.
    std::vector<SectionDim> lhs_dims;
    for (std::size_t k = 0; k < lhs.subs.size(); ++k) {
      Subscript& sub = lhs.subs[k];
      if (sub.kind == Subscript::Kind::Scalar) continue;
      front::ForallIndex idx;
      int sym_id = fresh_index_symbol(idx.name);
      idx.symbol = sym_id;

      SectionDim sd;
      if (sub.kind == Subscript::Kind::All) {
        sd.lo = front::make_int_lit(1, assign->loc);
        sd.hi = lsym.dims[k]->clone();
      } else {
        sd.lo = sub.lo ? sub.lo->clone() : front::make_int_lit(1, assign->loc);
        sd.hi = sub.hi ? sub.hi->clone() : lsym.dims[k]->clone();
        if (sub.stride) sd.stride = sub.stride->clone();
      }
      idx.lo = sd.lo->clone();
      idx.hi = sd.hi->clone();
      if (sd.stride) idx.stride = sd.stride->clone();
      forall->forall_indices.push_back(std::move(idx));
      lhs_dims.push_back(std::move(sd));

      // replace the LHS section with the scalar index
      Subscript scalar;
      scalar.kind = Subscript::Kind::Scalar;
      auto v = front::make_var(forall->forall_indices.back().name, assign->loc);
      v->symbol = sym_id;
      v->type = front::TypeBase::Integer;
      scalar.scalar = std::move(v);
      sub = std::move(scalar);
    }
    lhs.rank = 0;

    // Rewrite RHS (and mask) sections elementwise.
    rewrite_terms(*assign->rhs, forall->forall_indices, lhs_dims, symbols_);
    assign->rhs->rank = 0;
    if (extra_mask != nullptr) {
      ExprPtr m = extra_mask->clone();
      rewrite_terms(*m, forall->forall_indices, lhs_dims, symbols_);
      m->rank = 0;
      if (negate_mask) m = front::make_unary(front::UnOp::Not, std::move(m));
      m->type = front::TypeBase::Logical;
      forall->mask = std::move(m);
    }

    forall->body.push_back(std::move(assign));
    return forall;
  }

  Program& prog_;
  SymbolTable& symbols_;
  int counter_ = 0;
};

}  // namespace

void index_elementwise(front::Expr& e, const std::vector<front::ForallIndex>& indices,
                       const front::SymbolTable& symbols) {
  std::vector<SectionDim> dims;
  dims.reserve(indices.size());
  for (const auto& idx : indices) {
    SectionDim sd;
    sd.lo = idx.lo->clone();
    sd.hi = idx.hi->clone();
    if (idx.stride) sd.stride = idx.stride->clone();
    dims.push_back(std::move(sd));
  }
  rewrite_terms(e, indices, dims, symbols);
}

void normalize(Program& prog, SymbolTable& symbols) {
  Normalizer n(prog, symbols);
  n.run();
}

}  // namespace hpf90d::compiler
