#include "compiler/spmd_ir.hpp"

#include <sstream>

namespace hpf90d::compiler {

std::string_view spmd_kind_name(SpmdKind k) noexcept {
  switch (k) {
    case SpmdKind::Seq: return "Seq";
    case SpmdKind::ScalarAssign: return "ScalarAssign";
    case SpmdKind::LocalLoop: return "LocalLoop";
    case SpmdKind::OverlapComm: return "OverlapComm";
    case SpmdKind::CShiftComm: return "CShiftComm";
    case SpmdKind::GatherComm: return "GatherComm";
    case SpmdKind::ScatterComm: return "ScatterComm";
    case SpmdKind::SliceBroadcast: return "SliceBroadcast";
    case SpmdKind::Reduce: return "Reduce";
    case SpmdKind::DoLoop: return "DoLoop";
    case SpmdKind::WhileLoop: return "WhileLoop";
    case SpmdKind::IfBlock: return "IfBlock";
    case SpmdKind::HostIO: return "HostIO";
  }
  return "?";
}

IterIndex IterIndex::clone() const {
  IterIndex out;
  out.name = name;
  out.symbol = symbol;
  if (lo) out.lo = lo->clone();
  if (hi) out.hi = hi->clone();
  if (stride) out.stride = stride->clone();
  return out;
}

std::string SpmdNode::str(int indent) const {
  const std::string pad(static_cast<std::size_t>(indent) * 2, ' ');
  std::ostringstream os;
  os << pad << '[' << id << "] " << spmd_kind_name(kind);
  switch (kind) {
    case SpmdKind::ScalarAssign:
      os << ": " << lhs->str() << " = " << rhs->str();
      break;
    case SpmdKind::LocalLoop: {
      os << " (";
      for (std::size_t i = 0; i < space.size(); ++i) {
        if (i) os << ", ";
        os << space[i].name << '=' << space[i].lo->str() << ':' << space[i].hi->str();
        if (space[i].stride) os << ':' << space[i].stride->str();
      }
      os << ")";
      if (mask) os << " mask=" << mask->str();
      if (inner) {
        os << " " << lhs->str() << " = " << inner->op << "(" << inner->index.name << '='
           << inner->index.lo->str() << ':' << inner->index.hi->str() << ") "
           << inner->arg->str();
      } else if (lhs && rhs) {
        os << " " << lhs->str() << " = " << rhs->str();
      }
      break;
    }
    case SpmdKind::OverlapComm:
      os << ": array#" << comm_array << " dim " << comm_dim << " offset " << comm_offset
         << " (" << comm_note << ")";
      break;
    case SpmdKind::CShiftComm:
      os << ": array#" << comm_array << " -> temp#" << comm_temp << " dim " << comm_dim
         << " shift " << (comm_amount ? comm_amount->str() : "?");
      break;
    case SpmdKind::GatherComm:
      os << ": array#" << comm_array
         << (gather_pattern == GatherPattern::Irregular ? " irregular" : " remap") << " ("
         << comm_note << ")";
      break;
    case SpmdKind::ScatterComm:
      os << ": array#" << comm_array << " irregular scatter (" << comm_note << ")";
      break;
    case SpmdKind::SliceBroadcast:
      os << ": array#" << comm_array << " dim " << comm_dim << " (" << comm_note << ")";
      break;
    case SpmdKind::Reduce:
      os << ": " << reduce_op << " -> sym#" << reduce_result << " of "
         << (reduce_arg ? reduce_arg->str() : "?");
      break;
    case SpmdKind::DoLoop:
      os << ": " << do_var << " = " << do_lo->str() << ", " << do_hi->str();
      if (do_step) os << ", " << do_step->str();
      break;
    case SpmdKind::WhileLoop:
      os << ": while (" << mask->str() << ")";
      break;
    case SpmdKind::IfBlock:
      os << ": if (" << mask->str() << ")";
      break;
    case SpmdKind::HostIO:
      os << ": print";
      break;
    case SpmdKind::Seq:
      break;
  }
  os << '\n';
  for (const auto& c : children) os << c->str(indent + 1);
  if (!else_children.empty()) {
    os << pad << "else:\n";
    for (const auto& c : else_children) os << c->str(indent + 1);
  }
  return os.str();
}

}  // namespace hpf90d::compiler
