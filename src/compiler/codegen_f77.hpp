// codegen_f77.hpp — renders the SPMD node program as the "Fortran 77 +
// Message Passing" code that phase 1 of the NPAC compiler emits (paper
// §4.1). This output is presentational: the framework interprets /
// simulates the SPMD IR directly, but developers (and the paper's Fig 2)
// reason about the node program in this form, so the tool can show it.
#pragma once

#include <string>

#include "compiler/spmd_ir.hpp"

namespace hpf90d::compiler {

/// Renders the loosely synchronous node program: local DO loops over
/// processor-owned bounds, collective-communication library calls
/// (exchange/gather/gsum/...), and replicated control flow.
[[nodiscard]] std::string codegen_f77(const CompiledProgram& prog);

}  // namespace hpf90d::compiler
