// mapping.hpp — resolution of the HPF two-level data mapping.
//
// HPF maps data objects to abstract processors in two steps (paper §2):
// array elements are ALIGNed with a TEMPLATE, and the template is
// DISTRIBUTEd (BLOCK / CYCLIC / collapsed `*`) onto a rectilinear processor
// arrangement. This module resolves the directive set against concrete
// extents (PARAMETERs + user bindings) and a processor-grid shape, yielding
// ownership and local-extent queries that the partitioner, the
// interpretation engine, and the simulator all share.
#pragma once

#include <algorithm>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "hpf/ast.hpp"
#include "hpf/directives.hpp"
#include "hpf/fold.hpp"
#include "hpf/sema.hpp"

namespace hpf90d::compiler {

/// Shape of the abstract processor arrangement (1-D or 2-D in the subset).
struct ProcGrid {
  std::vector<int> shape;

  [[nodiscard]] int rank() const noexcept { return static_cast<int>(shape.size()); }
  [[nodiscard]] int total() const noexcept {
    int t = 1;
    for (int s : shape) t *= s;
    return t;
  }
  /// Row-major linearization of grid coordinates.
  [[nodiscard]] int linear(std::span<const int> coords) const;
  [[nodiscard]] std::vector<int> coords(int linear_id) const;

  /// Near-square factorization of `nprocs` into `rank` grid dimensions,
  /// e.g. 4 -> 2x2, 8 -> 2x4 (matches the paper's Laplace grids).
  [[nodiscard]] static ProcGrid factorized(int nprocs, int rank);
};

/// Resolved distribution of one array dimension.
struct DimDist {
  front::DistKind kind = front::DistKind::Collapsed;
  int grid_dim = -1;          // processor-grid axis; -1 when collapsed
  int nprocs = 1;             // grid extent along grid_dim
  long long extent = 0;       // array extent in this dimension
  long long align_offset = 0; // template index = array index + align_offset
  long long tmpl_extent = 0;  // extent of the aligned template dimension
  long long block = 0;        // block size (BLOCK) = ceil(tmpl_extent/nprocs)

  /// Grid coordinate owning global (1-based) array index `g`.
  [[nodiscard]] int owner_coord(long long g) const;
  /// Number of elements of [1..extent] owned by grid coordinate `c`.
  [[nodiscard]] long long local_count(int c) const;
  /// Contiguous owned global-index range for BLOCK (empty when none);
  /// for CYCLIC returns the full span (ownership is strided).
  struct Range {
    long long lo = 1, hi = 0;
    [[nodiscard]] long long count() const noexcept { return hi >= lo ? hi - lo + 1 : 0; }
  };
  // Defined inline below: owned_range/local_count sit on the interpretation
  // engine's per-processor pricing loop (millions of calls per warm sweep),
  // where the cross-TU call cost is measurable.
  [[nodiscard]] Range owned_range(int c) const;
};

inline DimDist::Range DimDist::owned_range(int c) const {
  Range r;
  if (kind == front::DistKind::Collapsed || nprocs <= 1) {
    r.lo = 1;
    r.hi = extent;
    return r;
  }
  if (kind == front::DistKind::Block) {
    const long long t_lo = static_cast<long long>(c) * block + 1;
    const long long t_hi = std::min<long long>(t_lo + block - 1, tmpl_extent);
    r.lo = std::max<long long>(1, t_lo - align_offset);
    r.hi = std::min<long long>(extent, t_hi - align_offset);
    return r;
  }
  // cyclic ownership is strided; report the whole dimension as the span
  r.lo = 1;
  r.hi = extent;
  return r;
}

inline long long DimDist::local_count(int c) const {
  if (kind == front::DistKind::Collapsed || nprocs <= 1) return extent;
  if (kind == front::DistKind::Block) {
    return owned_range(c).count();
  }
  // cyclic: template indices t with (t-1) % nprocs == c intersected with
  // the aligned image [1+off, extent+off]
  long long count = 0;
  const long long t_lo = 1 + align_offset;
  const long long t_hi = extent + align_offset;
  // first t >= t_lo with (t-1) % nprocs == c
  long long first = ((c + 1 - t_lo) % nprocs + nprocs) % nprocs + t_lo;
  if (first <= t_hi) count = (t_hi - first) / nprocs + 1;
  return count;
}

/// Complete resolved mapping of one distributed array (or the note that it
/// is replicated).
struct ArrayMap {
  int symbol = -1;
  std::string name;
  int template_id = -1;  // index into DataLayout::template_names()
  std::vector<DimDist> dims;

  [[nodiscard]] int rank() const noexcept { return static_cast<int>(dims.size()); }
  [[nodiscard]] bool distributed() const noexcept {
    for (const auto& d : dims) {
      if (d.kind != front::DistKind::Collapsed) return true;
    }
    return false;
  }
  /// Total element count.
  [[nodiscard]] long long total_elements() const noexcept {
    long long t = 1;
    for (const auto& d : dims) t *= d.extent;
    return t;
  }
  /// Elements owned by linear processor `p` under `grid`.
  [[nodiscard]] long long local_elements(const ProcGrid& grid, int p) const;
  /// Linear owner of a (1-based) global index vector.
  [[nodiscard]] int owner(const ProcGrid& grid, std::span<const long long> index) const;
};

/// Options controlling layout resolution.
struct LayoutOptions {
  int nprocs = 1;
  /// Overrides the PROCESSORS directive / default factorization, e.g. to
  /// force a 2x2 grid at 4 processors.
  std::optional<std::vector<int>> grid_shape;
};

class DataLayout;

/// Serializes a layout into the versioned text form consumed by
/// deserialize_layout (see compiler/serialize.hpp). Declared here because
/// both need access to the layout's internals.
[[nodiscard]] std::string serialize_layout(const DataLayout& layout);

/// Rebuilds a layout from serialize_layout output. Hot-path tables
/// (processor coordinates, symbol->map index) are recomputed, not stored.
/// Throws std::invalid_argument on malformed or version-mismatched input.
[[nodiscard]] DataLayout deserialize_layout(std::string_view text);

/// Resolved mapping for every distributed array in a program.
///
/// A DataLayout is self-contained: construction snapshots everything it
/// needs from the symbol table (resolved array extents), so a layout stays
/// valid after the program it was built from is destroyed. That is what
/// lets the session cache layouts by *content* (structural fingerprint)
/// rather than by program identity, and lets cached entries survive
/// program eviction — and what makes the serialized form below a complete
/// artifact: a deserialized layout answers every query the original did.
class DataLayout {
 public:
  DataLayout(const front::DirectiveSet& directives, const front::SymbolTable& symbols,
             const front::Bindings& env, const LayoutOptions& options);

  [[nodiscard]] const ProcGrid& grid() const noexcept { return grid_; }
  [[nodiscard]] int nprocs() const noexcept { return grid_.total(); }

  /// Grid coordinates of linear processor `p`, precomputed at layout
  /// construction. The hot-path replacement for grid().coords(p), which
  /// allocates a vector per call — the interpretation engine and the
  /// simulator ask for coordinates once per (processor, node) visit.
  [[nodiscard]] std::span<const int> proc_coords(int p) const noexcept {
    const std::size_t rank = static_cast<std::size_t>(grid_.rank());
    return {coords_flat_.data() + static_cast<std::size_t>(p) * rank, rank};
  }

  /// Mapping for a symbol; nullptr when the symbol is replicated (scalars,
  /// arrays without directives). O(1): indexed by symbol id. Inline: the
  /// engine asks per node visit, millions of times per warm sweep.
  [[nodiscard]] const ArrayMap* map_for(int symbol) const noexcept {
    if (symbol < 0 || static_cast<std::size_t>(symbol) >= map_index_.size()) return nullptr;
    const int m = map_index_[static_cast<std::size_t>(symbol)];
    return m < 0 ? nullptr : &maps_[static_cast<std::size_t>(m)];
  }

  /// Registers `temp_symbol` with the same mapping as `like_symbol`
  /// (used for compiler-introduced shift temporaries).
  void add_alias(int temp_symbol, int like_symbol, std::string name);

  [[nodiscard]] const std::vector<ArrayMap>& maps() const noexcept { return maps_; }

  /// Resolved extents (from declarations) for any array symbol, mapped or
  /// not; used by the simulator's storage allocator. Throws
  /// support::CompileError when the symbol's extents did not resolve under
  /// this configuration's bindings.
  [[nodiscard]] std::vector<long long> array_extents(int symbol) const;

  /// Renders an ownership picture of a 2-D array for documentation and the
  /// Fig 3 bench (`P 1`..`P n` cells).
  [[nodiscard]] std::string ownership_picture(int symbol, int cell_rows = 8,
                                              int cell_cols = 8) const;

 private:
  /// Deserialization shell: fields are filled by deserialize_layout, which
  /// then recomputes the derived tables.
  DataLayout() = default;
  friend std::string serialize_layout(const DataLayout& layout);
  friend DataLayout deserialize_layout(std::string_view text);

  /// Recomputes coords_flat_ and map_index_ from grid_/maps_/extents_
  /// (shared by the constructor tail and deserialization).
  void rebuild_derived_tables();

  /// Per-symbol extent snapshot (index = symbol id). `dims` is nullopt when
  /// the declaration's extent expressions were not resolvable against this
  /// configuration's environment.
  struct SymbolExtents {
    std::string name;
    std::optional<std::vector<long long>> dims;
  };

  front::Bindings env_;
  ProcGrid grid_;
  std::vector<ArrayMap> maps_;
  std::vector<std::string> template_names_;
  std::vector<SymbolExtents> extents_;
  std::vector<int> coords_flat_;  // nprocs x rank, row per processor
  std::vector<int> map_index_;    // symbol id -> index into maps_ (-1 = replicated)
};

}  // namespace hpf90d::compiler
