// eval.hpp — scalar expression evaluation over a symbol environment.
//
// Two consumers share this evaluator:
//   * the functional simulator (sim/executor) supplies an ArrayAccess that
//     reads real distributed-array storage;
//   * the interpretation engine (core/engine) evaluates the replicated
//     scalar control flow of the SPMD program with *no* array access —
//     exactly the paper's critical-variable machinery: scalar definitions
//     are traced by executing them, user bindings override.
#pragma once

#include <span>
#include <utility>
#include <vector>

#include "hpf/ast.hpp"
#include "hpf/fold.hpp"
#include "hpf/sema.hpp"

namespace hpf90d::compiler {

/// Array element access interface; null means "no arrays available" (the
/// predictor), in which case ArrayRef evaluation throws CompileError.
class ArrayAccess {
 public:
  virtual ~ArrayAccess() = default;
  [[nodiscard]] virtual double load(int symbol, std::span<const long long> index) = 0;
  [[nodiscard]] virtual long long extent(int symbol, int dim) = 0;
};

/// Mutable scalar environment indexed by symbol id. Values are stored as
/// double; Fortran integer semantics are applied by the evaluator based on
/// static types.
class ScalarEnv {
 public:
  explicit ScalarEnv(std::size_t symbol_count)
      : values_(symbol_count, 0.0), defined_(symbol_count, 0) {}

  /// Re-initializes for a (possibly different) symbol count, reusing the
  /// existing buffers; equivalent to constructing a fresh environment.
  void reset(std::size_t symbol_count) {
    values_.assign(symbol_count, 0.0);
    defined_.assign(symbol_count, 0);
  }

  void define(int symbol, double value) {
    values_[static_cast<std::size_t>(symbol)] = value;
    defined_[static_cast<std::size_t>(symbol)] = 1;
  }
  [[nodiscard]] bool is_defined(int symbol) const {
    return defined_[static_cast<std::size_t>(symbol)] != 0;
  }
  [[nodiscard]] double value(int symbol) const {
    return values_[static_cast<std::size_t>(symbol)];
  }

 private:
  std::vector<double> values_;
  std::vector<char> defined_;
};

/// Evaluates a scalar (rank-0) expression. Throws support::CompileError on
/// an undefined scalar, an array access without accessor, or a construct
/// that cannot be evaluated (shift/reduction calls — those are lowered to
/// dedicated SPMD nodes before evaluation).
[[nodiscard]] double eval_scalar(const front::Expr& e, const ScalarEnv& env,
                                 ArrayAccess* arrays,
                                 const front::SymbolTable& symbols);

/// Convenience: evaluate and truncate to integer (checked).
[[nodiscard]] long long eval_int(const front::Expr& e, const ScalarEnv& env,
                                 ArrayAccess* arrays,
                                 const front::SymbolTable& symbols);

/// Non-throwing evaluation: nullopt when a value is unavailable (used by
/// the interpretation engine to trace scalar definitions best-effort).
[[nodiscard]] std::optional<double> try_eval_scalar(const front::Expr& e,
                                                    const ScalarEnv& env,
                                                    ArrayAccess* arrays,
                                                    const front::SymbolTable& symbols);

/// Seeds `env` with every PARAMETER symbol's folded value and then the
/// user `bindings` (which take precedence — the framework's problem-size
/// override mechanism).
void seed_environment(ScalarEnv& env, const front::SymbolTable& symbols,
                      const front::Bindings& bindings);

/// The (symbol id, value) pairs seed_environment would define, in symbol
/// order, as a replayable flat list. The parameter re-fold behind
/// seed_environment is pure in (symbols, bindings), so a caller running
/// repeated sweeps can compute this once per (program, problem) and scatter
/// it into any number of environments (see core::BatchLane::seed).
struct SeededValues {
  std::vector<std::pair<int, double>> defined;
};
[[nodiscard]] SeededValues seed_values(const front::SymbolTable& symbols,
                                       const front::Bindings& bindings);

}  // namespace hpf90d::compiler
