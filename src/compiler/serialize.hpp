// serialize.hpp — persistence format for compilation artifacts.
//
// The experiment service (src/serve) keeps a disk spill tier of the
// session's content-addressed caches so a restarted daemon answers warm.
// Layouts are the expensive, self-contained artifact: serialize_layout
// writes every piece of primary DataLayout state (grid, environment,
// template names, extent snapshot, array maps) into a versioned,
// line-oriented text form, and deserialize_layout rebuilds a layout that
// answers every query — map_for, proc_coords, array_extents,
// ownership_picture — identically to the original. Round trip is exact:
// serialize(deserialize(s)) == s.
//
// Programs are not serialized structurally (the SPMD IR carries AST
// expression trees); instead the service persists the *recipe* — source,
// directive overrides, compiler options — keyed by the program cache key,
// and recompiles on warm start (see api/spill.hpp). Compilation is cheap
// next to layout resolution and sweeping; determinism of the pipeline makes
// the recompiled program interchangeable with the original.
#pragma once

#include <string>
#include <string_view>

#include "compiler/mapping.hpp"
#include "compiler/spmd_ir.hpp"

namespace hpf90d::compiler {

// serialize_layout / deserialize_layout are declared in mapping.hpp
// (they are friends of DataLayout); this header is the conventional
// include for artifact persistence.

/// Serializes a program recipe (enough to deterministically recompile).
[[nodiscard]] std::string serialize_recipe(std::string_view source,
                                           const std::vector<std::string>& overrides,
                                           const CompilerOptions& options);

/// Parsed form of serialize_recipe output.
struct ParsedRecipe {
  std::string source;
  std::vector<std::string> overrides;
  CompilerOptions options;
};

/// Throws std::invalid_argument on malformed or version-mismatched input.
[[nodiscard]] ParsedRecipe deserialize_recipe(std::string_view text);

}  // namespace hpf90d::compiler
