#include "compiler/cost_program.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <map>

namespace hpf90d::compiler {

using front::Expr;
using front::ExprKind;
using front::TypeBase;

namespace {

bool both_int(const Expr& e) {
  return e.args.size() == 2 && e.args[0]->type == TypeBase::Integer &&
         e.args[1]->type == TypeBase::Integer;
}

/// Flattens one expression tree into a temporary instruction buffer.
/// Returns the result register, or -1 when the expression cannot be proved
/// equivalent under the bytecode model (the caller then leaves the tree
/// evaluator in charge of it).
class Flattener {
 public:
  Flattener(const CompiledProgram& prog, CostProgram& out)
      : prog_(prog), out_(out), probe_env_(prog.symbols.size()) {}

  /// Compiles `e`; on success appends the buffered instructions to the
  /// shared code vector and returns a ready ExprCode.
  [[nodiscard]] ExprCode compile(const Expr& e) {
    buf_.clear();
    next_reg_ = 0;
    int r = -1;
    try {
      r = emit(e);
    } catch (...) {
      // e.g. SymbolTable::at on a malformed hand-annotated node — exactly
      // the inputs the tree evaluator owns
      r = -1;
    }
    ExprCode code;
    if (r < 0) return code;  // ok == false
    code.first = static_cast<std::uint32_t>(out_.code.size());
    code.count = static_cast<std::uint32_t>(buf_.size());
    code.result = static_cast<std::uint16_t>(r);
    code.regs = static_cast<std::uint16_t>(next_reg_);
    code.ok = true;
    out_.code.insert(out_.code.end(), buf_.begin(), buf_.end());
    out_.max_regs = std::max<std::uint16_t>(out_.max_regs, code.regs);
    return code;
  }

 private:
  [[nodiscard]] int alloc() {
    if (next_reg_ >= 0xffff) throw std::length_error("cost program register file");
    return next_reg_++;
  }

  [[nodiscard]] std::uint16_t pool_id(double v) {
    std::uint64_t bits;
    std::memcpy(&bits, &v, sizeof bits);
    if (const auto it = pool_ids_.find(bits); it != pool_ids_.end()) return it->second;
    if (out_.pool.size() >= 0xffff) throw std::length_error("cost program pool");
    const auto id = static_cast<std::uint16_t>(out_.pool.size());
    out_.pool.push_back(v);
    pool_ids_.emplace(bits, id);
    return id;
  }

  int push(CostOp op, int dst, int a = 0, int b = 0, int c = 0) {
    buf_.push_back(CostInstr{op, static_cast<std::uint16_t>(dst),
                             static_cast<std::uint16_t>(a),
                             static_cast<std::uint16_t>(b),
                             static_cast<std::uint16_t>(c)});
    return dst;
  }

  int emit_const(double v) { return push(CostOp::Const, alloc(), pool_id(v)); }
  int emit_fail() { return push(CostOp::Fail, alloc()); }

  int emit(const Expr& e) {
    switch (e.kind) {
      case ExprKind::IntLit: return emit_const(static_cast<double>(e.int_value));
      case ExprKind::RealLit: return emit_const(e.real_value);
      case ExprKind::LogicalLit: return emit_const(e.bool_value ? 1.0 : 0.0);
      case ExprKind::Var: {
        // static resolution of what eval_rec resolves per evaluation:
        // unannotated clones by name, PARAMETER constants as fallback
        int id = e.symbol;
        if (id < 0) id = prog_.symbols.find(e.name);
        if (id < 0) return emit_fail();
        const front::Symbol& sym = prog_.symbols.at(id);
        if (sym.kind == front::SymbolKind::Param && sym.const_value) {
          return push(CostOp::LoadDflt, alloc(), id, pool_id(*sym.const_value));
        }
        return push(CostOp::Load, alloc(), id);
      }
      case ExprKind::ArrayRef:
        // the engines evaluate with no array access: always a failed probe
        return emit_fail();
      case ExprKind::Unary: {
        if (e.args.size() != 1) return -1;
        const int a = emit(*e.args[0]);
        if (a < 0) return a;
        switch (e.un_op) {
          case front::UnOp::Neg: return push(CostOp::Neg, alloc(), a);
          case front::UnOp::Plus: return a;
          case front::UnOp::Not: return push(CostOp::Not, alloc(), a);
        }
        return -1;
      }
      case ExprKind::Binary: {
        if (e.args.size() != 2) return -1;
        const int a = emit(*e.args[0]);
        if (a < 0) return a;
        const int b = emit(*e.args[1]);
        if (b < 0) return b;
        CostOp op;
        switch (e.bin_op) {
          case front::BinOp::Add: op = CostOp::Add; break;
          case front::BinOp::Sub: op = CostOp::Sub; break;
          case front::BinOp::Mul: op = CostOp::Mul; break;
          case front::BinOp::Div: op = both_int(e) ? CostOp::IDiv : CostOp::Div; break;
          case front::BinOp::Pow: op = CostOp::Pow; break;
          case front::BinOp::Lt: op = CostOp::Lt; break;
          case front::BinOp::Le: op = CostOp::Le; break;
          case front::BinOp::Gt: op = CostOp::Gt; break;
          case front::BinOp::Ge: op = CostOp::Ge; break;
          case front::BinOp::Eq: op = CostOp::Eq; break;
          case front::BinOp::Ne: op = CostOp::Ne; break;
          case front::BinOp::And: op = CostOp::And; break;
          case front::BinOp::Or: op = CostOp::Or; break;
          default: return -1;
        }
        return push(op, alloc(), a, b);
      }
      case ExprKind::Call: return emit_call(e);
    }
    return -1;
  }

  int emit_call(const Expr& e) {
    const std::string& n = e.name;
    if (n == "size") {
      // size() is static under the engine's array-free evaluation: the tree
      // evaluator folds declared extents against PARAMETER constants, with
      // only the dim argument read from the runtime environment. Fold the
      // whole call here against an empty environment; if that fails while
      // the dim argument is static, the call fails at runtime too.
      if (e.args.empty()) return -1;
      if (const auto v = try_eval_scalar(e, probe_env_, nullptr, prog_.symbols)) {
        return emit_const(*v);
      }
      if (e.args.size() >= 2 &&
          !try_eval_scalar(*e.args[1], probe_env_, nullptr, prog_.symbols)) {
        return -1;  // dim argument may resolve at runtime: tree evaluator
      }
      return emit_fail();
    }

    std::vector<int> argv;
    argv.reserve(e.args.size());
    for (const auto& a : e.args) {
      const int r = emit(*a);
      if (r < 0) return r;
      argv.push_back(r);
    }
    if (argv.empty()) return -1;

    if (n == "exp") return push(CostOp::Exp, alloc(), argv[0]);
    if (n == "log") return push(CostOp::Log, alloc(), argv[0]);
    if (n == "sqrt") return push(CostOp::Sqrt, alloc(), argv[0]);
    if (n == "abs") return push(CostOp::Abs, alloc(), argv[0]);
    if (n == "sin") return push(CostOp::Sin, alloc(), argv[0]);
    if (n == "cos") return push(CostOp::Cos, alloc(), argv[0]);
    if (n == "atan") return push(CostOp::Atan, alloc(), argv[0]);
    if (n == "real" || n == "float" || n == "dble") return argv[0];
    if (n == "int") return push(CostOp::Trunc, alloc(), argv[0]);
    if (n == "nint") return push(CostOp::Nint, alloc(), argv[0]);
    if (n == "sign") {
      if (argv.size() != 2) return -1;
      return push(CostOp::Sign2, alloc(), argv[0], argv[1]);
    }
    if (n == "mod") {
      if (argv.size() != 2) return -1;
      return push(both_int(e) ? CostOp::IMod : CostOp::FMod, alloc(), argv[0], argv[1]);
    }
    if (n == "min" || n == "max") {
      const CostOp op = n == "min" ? CostOp::Min2 : CostOp::Max2;
      int v = argv[0];
      for (std::size_t i = 1; i < argv.size(); ++i) v = push(op, alloc(), v, argv[i]);
      return v;
    }
    if (n == "merge") {
      if (argv.size() != 3) return -1;
      return push(CostOp::Merge, alloc(), argv[0], argv[1], argv[2]);
    }
    return emit_fail();  // unpriceable intrinsic: the tree evaluator fails too
  }

  const CompiledProgram& prog_;
  CostProgram& out_;
  ScalarEnv probe_env_;  // empty: static-foldability probe for size()
  std::vector<CostInstr> buf_;
  int next_reg_ = 0;
  std::map<std::uint64_t, std::uint16_t> pool_ids_;
};

class Builder {
 public:
  Builder(const CompiledProgram& prog, CostProgram& out)
      : prog_(prog), out_(out), flattener_(prog, out) {}

  void run() {
    out_.nodes.assign(static_cast<std::size_t>(prog_.node_count), NodeCost{});
    if (prog_.root) visit(*prog_.root);
  }

 private:
  /// Speculation weight of one IF arm: the SPMD node count when the arm is
  /// loop-free, -1 when it contains a DoLoop/WhileLoop anywhere (an
  /// unbounded amount of work that must not be priced twice).
  static std::int32_t arm_weight(const std::vector<SpmdNodePtr>& nodes) {
    std::int32_t total = 0;
    for (const auto& c : nodes) {
      if (c->kind == SpmdKind::DoLoop || c->kind == SpmdKind::WhileLoop) return -1;
      const std::int32_t tw = arm_weight(c->children);
      if (tw < 0) return -1;
      const std::int32_t ew = arm_weight(c->else_children);
      if (ew < 0) return -1;
      total += 1 + tw + ew;
    }
    return total;
  }

  std::int32_t add(const front::ExprPtr& e) {
    if (!e) return -1;
    const ExprCode code = flattener_.compile(*e);
    if (code.ok) {
      ++out_.compiled_exprs;
    } else {
      ++out_.fallback_exprs;
      out_.complete = false;
    }
    out_.exprs.push_back(code);
    return static_cast<std::int32_t>(out_.exprs.size() - 1);
  }

  void add_space(const SpmdNode& n, NodeCost& nc) {
    nc.space_first = static_cast<std::int32_t>(out_.space_codes.size());
    nc.space_dims = static_cast<std::int32_t>(n.space.size());
    for (const auto& ix : n.space) {
      out_.space_codes.push_back(add(ix.lo));
      out_.space_codes.push_back(add(ix.hi));
      out_.space_codes.push_back(add(ix.stride));  // -1 = unit step
    }
  }

  void visit(const SpmdNode& n) {
    if (n.id >= 0 && static_cast<std::size_t>(n.id) < out_.nodes.size()) {
      NodeCost& nc = out_.nodes[static_cast<std::size_t>(n.id)];
      switch (n.kind) {
        case SpmdKind::ScalarAssign:
          nc.rhs = add(n.rhs);
          break;
        case SpmdKind::DoLoop:
          nc.do_lo = add(n.do_lo);
          nc.do_hi = add(n.do_hi);
          nc.do_step = add(n.do_step);
          break;
        case SpmdKind::WhileLoop:
          nc.cond = add(n.mask);
          break;
        case SpmdKind::IfBlock: {
          nc.cond = add(n.mask);
          const std::int32_t tw = arm_weight(n.children);
          const std::int32_t ew = arm_weight(n.else_children);
          nc.spec_nodes = (tw < 0 || ew < 0) ? -1 : tw + ew;
          break;
        }
        case SpmdKind::LocalLoop:
          add_space(n, nc);
          if (n.inner) {
            nc.inner_lo = add(n.inner->index.lo);
            nc.inner_hi = add(n.inner->index.hi);
          }
          break;
        case SpmdKind::Reduce:
        case SpmdKind::GatherComm:
        case SpmdKind::ScatterComm:
          add_space(n, nc);
          break;
        case SpmdKind::CShiftComm:
          nc.comm_amount = add(n.comm_amount);
          break;
        default:
          break;
      }
    }
    for (const auto& c : n.children) visit(*c);
    for (const auto& c : n.else_children) visit(*c);
  }

  const CompiledProgram& prog_;
  CostProgram& out_;
  Flattener flattener_;
};

}  // namespace

std::shared_ptr<const CostProgram> compile_cost_program(const CompiledProgram& prog) {
  auto cp = std::make_shared<CostProgram>();
  Builder(prog, *cp).run();
  return cp;
}

// ---------------------------------------------------------------------------
// evaluators
// ---------------------------------------------------------------------------

std::optional<double> eval_code(const CostProgram& cp, const ExprCode& c,
                                const ScalarEnv& env, double* r) {
  const CostInstr* ip = cp.code.data() + c.first;
  const CostInstr* const end = ip + c.count;
  const double* pool = cp.pool.data();
  for (; ip != end; ++ip) {
    const CostInstr in = *ip;
    switch (in.op) {
      case CostOp::Const: r[in.dst] = pool[in.a]; break;
      case CostOp::Load:
        if (!env.is_defined(in.a)) return std::nullopt;
        r[in.dst] = env.value(in.a);
        break;
      case CostOp::LoadDflt:
        r[in.dst] = env.is_defined(in.a) ? env.value(in.a) : pool[in.b];
        break;
      case CostOp::Fail: return std::nullopt;
      case CostOp::Neg: r[in.dst] = -r[in.a]; break;
      case CostOp::Not: r[in.dst] = r[in.a] == 0.0 ? 1.0 : 0.0; break;
      case CostOp::Add: r[in.dst] = r[in.a] + r[in.b]; break;
      case CostOp::Sub: r[in.dst] = r[in.a] - r[in.b]; break;
      case CostOp::Mul: r[in.dst] = r[in.a] * r[in.b]; break;
      case CostOp::Div: r[in.dst] = r[in.a] / r[in.b]; break;
      case CostOp::Pow: r[in.dst] = std::pow(r[in.a], r[in.b]); break;
      case CostOp::IDiv: {
        const long long bi = static_cast<long long>(r[in.b]);
        if (bi == 0) return std::nullopt;
        r[in.dst] = static_cast<double>(static_cast<long long>(r[in.a]) / bi);
        break;
      }
      case CostOp::Lt: r[in.dst] = r[in.a] < r[in.b] ? 1.0 : 0.0; break;
      case CostOp::Le: r[in.dst] = r[in.a] <= r[in.b] ? 1.0 : 0.0; break;
      case CostOp::Gt: r[in.dst] = r[in.a] > r[in.b] ? 1.0 : 0.0; break;
      case CostOp::Ge: r[in.dst] = r[in.a] >= r[in.b] ? 1.0 : 0.0; break;
      case CostOp::Eq: r[in.dst] = r[in.a] == r[in.b] ? 1.0 : 0.0; break;
      case CostOp::Ne: r[in.dst] = r[in.a] != r[in.b] ? 1.0 : 0.0; break;
      case CostOp::And:
        r[in.dst] = (r[in.a] != 0.0 && r[in.b] != 0.0) ? 1.0 : 0.0;
        break;
      case CostOp::Or:
        r[in.dst] = (r[in.a] != 0.0 || r[in.b] != 0.0) ? 1.0 : 0.0;
        break;
      case CostOp::FMod: r[in.dst] = std::fmod(r[in.a], r[in.b]); break;
      case CostOp::IMod:
        r[in.dst] = static_cast<double>(static_cast<long long>(r[in.a]) %
                                        static_cast<long long>(r[in.b]));
        break;
      case CostOp::Min2: r[in.dst] = std::min(r[in.a], r[in.b]); break;
      case CostOp::Max2: r[in.dst] = std::max(r[in.a], r[in.b]); break;
      case CostOp::Sign2:
        r[in.dst] = r[in.b] >= 0 ? std::fabs(r[in.a]) : -std::fabs(r[in.a]);
        break;
      case CostOp::Exp: r[in.dst] = std::exp(r[in.a]); break;
      case CostOp::Log: r[in.dst] = std::log(r[in.a]); break;
      case CostOp::Sqrt: r[in.dst] = std::sqrt(r[in.a]); break;
      case CostOp::Abs: r[in.dst] = std::fabs(r[in.a]); break;
      case CostOp::Sin: r[in.dst] = std::sin(r[in.a]); break;
      case CostOp::Cos: r[in.dst] = std::cos(r[in.a]); break;
      case CostOp::Atan: r[in.dst] = std::atan(r[in.a]); break;
      case CostOp::Trunc: r[in.dst] = std::trunc(r[in.a]); break;
      case CostOp::Nint: r[in.dst] = std::nearbyint(r[in.a]); break;
      case CostOp::Merge: r[in.dst] = r[in.c] != 0.0 ? r[in.a] : r[in.b]; break;
    }
  }
  return r[c.result];
}

namespace {
/// Integer cast for the batch evaluator. Lanes evicted from lockstep keep
/// evaluating densely (their results are discarded), so operands can be
/// arbitrary garbage — clamp the out-of-range cast that would be UB. For
/// any value the tree evaluator handles without UB this is the plain cast.
inline long long batch_ll(double v) {
  return v >= -9.2e18 && v <= 9.2e18 ? static_cast<long long>(v) : 0;
}
}  // namespace

// Fixed-width stripe loop: the trip count is the compile-time kBatchStripe
// and every operand column is contiguous and disjoint from dst (registers
// are distinct slots; in-place dst==a is still elementwise independent), so
// the loop is vectorizable without intrinsics. HPF90D_SIMD_LOOP asks the
// compiler to vectorize it; HPF90D_DISABLE_SIMD (the CI A/B gate) drops the
// hint without changing results — elementwise IEEE arithmetic is
// bit-identical scalar or vectorized (no reassociation, no FMA contraction
// beyond what the scalar loop would also get).
#if defined(HPF90D_DISABLE_SIMD)
#define HPF90D_SIMD_LOOP
#elif defined(__clang__)
#define HPF90D_SIMD_LOOP _Pragma("clang loop vectorize(enable)")
#elif defined(__GNUC__)
#define HPF90D_SIMD_LOOP _Pragma("GCC ivdep")
#else
#define HPF90D_SIMD_LOOP
#endif

// Each instruction dispatches once (instruction-major, so the switch cost
// amortizes over the whole batch) and its lane loop runs as whole 8-lane
// stripes: the inner trip count is the compile-time kBatchStripe, so the
// vectorizer emits exactly one full-width body per stripe — no runtime
// trip-count checks, no scalar prologue or epilogue (columns are padded to
// the stripe width).
#define HPF90D_STRIPE(expr)                                \
  for (std::size_t s = 0; s < S; s += kBatchStripe) {      \
    HPF90D_SIMD_LOOP                                       \
    for (std::size_t l = s; l < s + kBatchStripe; ++l) {   \
      expr;                                                \
    }                                                      \
  }                                                        \
  break

std::size_t eval_code_batch(const CostProgram& cp, const ExprCode& c,
                            const BatchEnv& env, double* regs, double* out,
                            unsigned char* ok) {
  const std::size_t S = env.stride();
  std::fill(ok, ok + S, static_cast<unsigned char>(1));
  const CostInstr* ip = cp.code.data() + c.first;
  const CostInstr* const end = ip + c.count;
  const double* pool = cp.pool.data();
  for (; ip != end; ++ip) {
    const CostInstr in = *ip;
    double* dst = regs + static_cast<std::size_t>(in.dst) * S;
    const double* a = regs + static_cast<std::size_t>(in.a) * S;
    const double* b = regs + static_cast<std::size_t>(in.b) * S;
    switch (in.op) {
      case CostOp::Const: {
        const double v = pool[in.a];
        HPF90D_STRIPE(dst[l] = v);
      }
      case CostOp::Load: {
        const double* v = env.values(in.a);
        const unsigned char* d = env.defined(in.a);
        for (std::size_t s = 0; s < S; s += kBatchStripe) {
          HPF90D_SIMD_LOOP
          for (std::size_t l = s; l < s + kBatchStripe; ++l) {
            ok[l] = d[l] != 0 ? ok[l] : static_cast<unsigned char>(0);
            dst[l] = d[l] != 0 ? v[l] : 0.0;
          }
        }
        break;
      }
      case CostOp::LoadDflt: {
        const double* v = env.values(in.a);
        const unsigned char* d = env.defined(in.a);
        const double dflt = pool[in.b];
        HPF90D_STRIPE(dst[l] = d[l] != 0 ? v[l] : dflt);
      }
      case CostOp::Fail:
        std::fill(ok, ok + S, static_cast<unsigned char>(0));
        std::fill(dst, dst + S, 0.0);
        break;
      case CostOp::Neg: HPF90D_STRIPE(dst[l] = -a[l]);
      case CostOp::Not: HPF90D_STRIPE(dst[l] = a[l] == 0.0 ? 1.0 : 0.0);
      case CostOp::Add: HPF90D_STRIPE(dst[l] = a[l] + b[l]);
      case CostOp::Sub: HPF90D_STRIPE(dst[l] = a[l] - b[l]);
      case CostOp::Mul: HPF90D_STRIPE(dst[l] = a[l] * b[l]);
      case CostOp::Div: HPF90D_STRIPE(dst[l] = a[l] / b[l]);
      case CostOp::Pow:
        // libm calls stay scalar inside the stripe (no vector math lib)
        for (std::size_t l = 0; l < S; ++l) dst[l] = std::pow(a[l], b[l]);
        break;
      case CostOp::IDiv:
        for (std::size_t l = 0; l < S; ++l) {
          const long long bi = batch_ll(b[l]);
          if (bi == 0) {
            ok[l] = 0;
            dst[l] = 0.0;
          } else {
            dst[l] = static_cast<double>(batch_ll(a[l]) / bi);
          }
        }
        break;
      case CostOp::Lt: HPF90D_STRIPE(dst[l] = a[l] < b[l] ? 1.0 : 0.0);
      case CostOp::Le: HPF90D_STRIPE(dst[l] = a[l] <= b[l] ? 1.0 : 0.0);
      case CostOp::Gt: HPF90D_STRIPE(dst[l] = a[l] > b[l] ? 1.0 : 0.0);
      case CostOp::Ge: HPF90D_STRIPE(dst[l] = a[l] >= b[l] ? 1.0 : 0.0);
      case CostOp::Eq: HPF90D_STRIPE(dst[l] = a[l] == b[l] ? 1.0 : 0.0);
      case CostOp::Ne: HPF90D_STRIPE(dst[l] = a[l] != b[l] ? 1.0 : 0.0);
      case CostOp::And:
        HPF90D_STRIPE(dst[l] = (a[l] != 0.0 && b[l] != 0.0) ? 1.0 : 0.0);
      case CostOp::Or:
        HPF90D_STRIPE(dst[l] = (a[l] != 0.0 || b[l] != 0.0) ? 1.0 : 0.0);
      case CostOp::FMod:
        for (std::size_t l = 0; l < S; ++l) dst[l] = std::fmod(a[l], b[l]);
        break;
      case CostOp::IMod:
        for (std::size_t l = 0; l < S; ++l) {
          const long long bi = batch_ll(b[l]);
          if (bi == 0) {
            ok[l] = 0;
            dst[l] = 0.0;
          } else {
            dst[l] = static_cast<double>(batch_ll(a[l]) % bi);
          }
        }
        break;
      case CostOp::Min2: HPF90D_STRIPE(dst[l] = std::min(a[l], b[l]));
      case CostOp::Max2: HPF90D_STRIPE(dst[l] = std::max(a[l], b[l]));
      case CostOp::Sign2:
        HPF90D_STRIPE(dst[l] = b[l] >= 0 ? std::fabs(a[l]) : -std::fabs(a[l]));
      case CostOp::Exp:
        for (std::size_t l = 0; l < S; ++l) dst[l] = std::exp(a[l]);
        break;
      case CostOp::Log:
        for (std::size_t l = 0; l < S; ++l) dst[l] = std::log(a[l]);
        break;
      case CostOp::Sqrt: HPF90D_STRIPE(dst[l] = std::sqrt(a[l]));
      case CostOp::Abs: HPF90D_STRIPE(dst[l] = std::fabs(a[l]));
      case CostOp::Sin:
        for (std::size_t l = 0; l < S; ++l) dst[l] = std::sin(a[l]);
        break;
      case CostOp::Cos:
        for (std::size_t l = 0; l < S; ++l) dst[l] = std::cos(a[l]);
        break;
      case CostOp::Atan:
        for (std::size_t l = 0; l < S; ++l) dst[l] = std::atan(a[l]);
        break;
      case CostOp::Trunc: HPF90D_STRIPE(dst[l] = std::trunc(a[l]));
      case CostOp::Nint:
        for (std::size_t l = 0; l < S; ++l) dst[l] = std::nearbyint(a[l]);
        break;
      case CostOp::Merge: {
        const double* cc = regs + static_cast<std::size_t>(in.c) * S;
        HPF90D_STRIPE(dst[l] = cc[l] != 0.0 ? a[l] : b[l]);
      }
    }
  }
  const double* res = regs + static_cast<std::size_t>(c.result) * S;
  std::copy(res, res + S, out);
  return S / kBatchStripe;
}

#undef HPF90D_STRIPE
#undef HPF90D_SIMD_LOOP

}  // namespace hpf90d::compiler
