#include "compiler/comm_analysis.hpp"

#include <algorithm>
#include <cstdlib>

#include "support/diagnostics.hpp"

namespace hpf90d::compiler {

using front::DistKind;
using front::Expr;
using front::ExprKind;
using front::Subscript;
using support::CompileError;

StructuralMaps build_structural_maps(const front::DirectiveSet& directives,
                                     const front::SymbolTable& symbols) {
  // template name -> distribution pattern
  std::map<std::string, std::vector<DistKind>> tmpl_dist;
  for (const auto& t : directives.templates) {
    tmpl_dist[t.name] = std::vector<DistKind>(t.extents.size(), DistKind::Collapsed);
  }
  for (const auto& d : directives.distributes) {
    auto it = tmpl_dist.find(d.target);
    if (it == tmpl_dist.end()) {
      throw CompileError(d.loc, "DISTRIBUTE of unknown template '" + d.target + "'");
    }
    it->second = d.pattern;
  }

  StructuralMaps maps;
  for (const auto& a : directives.aligns) {
    const int sym = symbols.find(a.array);
    if (sym < 0) {
      throw CompileError(a.loc, "ALIGN of undeclared array '" + a.array + "'");
    }
    const auto it = tmpl_dist.find(a.target);
    if (it == tmpl_dist.end()) {
      throw CompileError(a.loc, "ALIGN with unknown template '" + a.target + "'");
    }
    std::vector<StructDim> dims(a.dummies.size());
    for (std::size_t td = 0; td < a.target_subs.size(); ++td) {
      const auto& ts = a.target_subs[td];
      if (ts.star || ts.dummy < 0) continue;
      auto& sd = dims[static_cast<std::size_t>(ts.dummy)];
      sd.kind = it->second[td];
      sd.tmpl_dim = static_cast<int>(td);
      sd.offset = ts.offset;
      sd.tmpl = a.target;
    }
    maps[sym] = std::move(dims);
  }
  return maps;
}

namespace {

/// Classification of one scalar subscript expression relative to the
/// iteration space.
struct SubClass {
  enum class Kind {
    Invariant,      // no space/inner variable appears
    AffineUnit,     // var + c  (coefficient 1)
    AffineNonUnit,  // linear-ish with coefficient != 1 or mixed indices
    Irregular,      // contains an array reference (vector subscript)
  } kind = Kind::Invariant;
  int space_pos = -1;  // AffineUnit: which space index; -2 = inner index
  long long c = 0;     // AffineUnit: constant offset
};

int find_space_pos(const std::vector<IterIndex>& space, int symbol, int inner_symbol) {
  if (symbol >= 0 && symbol == inner_symbol) return -2;
  for (std::size_t i = 0; i < space.size(); ++i) {
    if (space[i].symbol == symbol) return static_cast<int>(i);
  }
  return -1;
}

bool contains_array_ref(const Expr& e) {
  if (e.kind == ExprKind::ArrayRef) return true;
  for (const auto& a : e.args) {
    if (contains_array_ref(*a)) return true;
  }
  if (e.kind == ExprKind::ArrayRef) return true;
  for (const auto& s : e.subs) {
    if (s.scalar && contains_array_ref(*s.scalar)) return true;
  }
  return false;
}

void collect_index_uses(const Expr& e, const std::vector<IterIndex>& space,
                        int inner_symbol, int& count, int& pos) {
  if (e.kind == ExprKind::Var) {
    const int p = find_space_pos(space, e.symbol, inner_symbol);
    if (p != -1) {
      ++count;
      pos = p;
    }
    return;
  }
  for (const auto& a : e.args) collect_index_uses(*a, space, inner_symbol, count, pos);
  for (const auto& s : e.subs) {
    if (s.scalar) collect_index_uses(*s.scalar, space, inner_symbol, count, pos);
  }
}

SubClass classify_subscript(const Expr& e, const std::vector<IterIndex>& space,
                            int inner_symbol) {
  SubClass out;
  if (contains_array_ref(e)) {
    out.kind = SubClass::Kind::Irregular;
    return out;
  }
  int uses = 0;
  int pos = -1;
  collect_index_uses(e, space, inner_symbol, uses, pos);
  if (uses == 0) {
    out.kind = SubClass::Kind::Invariant;
    return out;
  }
  // exact affine-unit patterns: v | v+c | c+v | v-c
  if (e.kind == ExprKind::Var) {
    out.kind = SubClass::Kind::AffineUnit;
    out.space_pos = pos;
    out.c = 0;
    return out;
  }
  if (e.kind == ExprKind::Binary &&
      (e.bin_op == front::BinOp::Add || e.bin_op == front::BinOp::Sub)) {
    const Expr& a = *e.args[0];
    const Expr& b = *e.args[1];
    const auto as_index = [&](const Expr& x) {
      return x.kind == ExprKind::Var &&
             find_space_pos(space, x.symbol, inner_symbol) != -1;
    };
    const auto as_const = [](const Expr& x) { return x.kind == ExprKind::IntLit; };
    if (as_index(a) && as_const(b)) {
      out.kind = SubClass::Kind::AffineUnit;
      out.space_pos = find_space_pos(space, a.symbol, inner_symbol);
      out.c = e.bin_op == front::BinOp::Add ? b.int_value : -b.int_value;
      return out;
    }
    if (as_const(a) && as_index(b) && e.bin_op == front::BinOp::Add) {
      out.kind = SubClass::Kind::AffineUnit;
      out.space_pos = find_space_pos(space, b.symbol, inner_symbol);
      out.c = a.int_value;
      return out;
    }
  }
  out.kind = SubClass::Kind::AffineNonUnit;
  out.space_pos = pos;
  return out;
}

class Analyzer {
 public:
  Analyzer(const std::vector<IterIndex>& space, const StructuralMaps& maps,
           const front::SymbolTable& symbols, int inner_symbol)
      : space_(space), maps_(maps), symbols_(symbols), inner_symbol_(inner_symbol) {}

  CommAnalysis run(const Expr& lhs, const Expr* rhs, const Expr* mask,
                   const Expr* inner_arg) {
    derive_partition(lhs);
    if (rhs != nullptr) visit(*rhs);
    if (mask != nullptr) visit(*mask);
    if (inner_arg != nullptr) visit(*inner_arg);
    merge_overlaps();
    return std::move(result_);
  }

 private:
  [[nodiscard]] const std::vector<StructDim>* struct_of(int symbol) const {
    const auto it = maps_.find(symbol);
    return it == maps_.end() ? nullptr : &it->second;
  }

  void derive_partition(const Expr& lhs) {
    if (lhs.kind != ExprKind::ArrayRef) {
      // scalar LHS inside forall is rejected earlier; replicated otherwise
      result_.partition.home_symbol = -1;
      return;
    }
    const std::vector<StructDim>* sd = struct_of(lhs.symbol);
    auto& part = result_.partition;
    part.home_symbol = sd != nullptr ? lhs.symbol : -1;
    part.home_driver.assign(lhs.subs.size(), -1);
    part.home_driver_offset.assign(lhs.subs.size(), 0);

    bool irregular_lhs = false;
    for (std::size_t k = 0; k < lhs.subs.size(); ++k) {
      const Subscript& sub = lhs.subs[k];
      if (sub.kind != Subscript::Kind::Scalar) {
        throw CompileError(lhs.loc, "internal: non-normalized LHS section");
      }
      const SubClass cls = classify_subscript(*sub.scalar, space_, inner_symbol_);
      switch (cls.kind) {
        case SubClass::Kind::AffineUnit:
          if (cls.space_pos >= 0) {
            part.home_driver[k] = cls.space_pos;
            part.home_driver_offset[k] = cls.c;
          }
          break;
        case SubClass::Kind::Invariant:
          break;  // fixed slice — fine
        case SubClass::Kind::Irregular:
          irregular_lhs = true;
          break;
        case SubClass::Kind::AffineNonUnit:
          // owner-computes still possible but ownership is strided; treat
          // like an irregular store for cost purposes
          if (sd != nullptr && (*sd)[k].kind != DistKind::Collapsed) irregular_lhs = true;
          break;
      }
    }

    if (irregular_lhs && sd != nullptr) {
      // Vector-subscripted store to a distributed array: iterate where the
      // index vector lives and scatter the results (e.g. the PIC kernel's
      // deposit phase).
      CommRequirement scatter;
      scatter.type = CommRequirement::Type::Scatter;
      scatter.array = lhs.symbol;
      scatter.pattern = GatherPattern::Irregular;
      scatter.note = "vector-subscripted store to " + lhs.name;
      result_.post.push_back(std::move(scatter));
      // re-home onto the driving index array if one exists
      rehome_onto_subscript_array(lhs);
    }

    // If no distributed home dim is actually driven by the space the loop
    // degenerates to replicated computation.
    if (sd != nullptr) {
      bool any = false;
      for (std::size_t k = 0; k < part.home_driver.size(); ++k) {
        if (part.home_driver[k] >= 0 && (*sd)[k].kind != DistKind::Collapsed) any = true;
      }
      if (!any && result_.post.empty()) part.home_symbol = -1;
    }
  }

  /// For `grid(ir(k)) = ...`: iterate over the owner of ir's elements.
  void rehome_onto_subscript_array(const Expr& lhs) {
    for (const auto& sub : lhs.subs) {
      if (!sub.scalar) continue;
      const Expr* vec = find_vector_subscript(*sub.scalar);
      if (vec == nullptr) continue;
      const std::vector<StructDim>* sd = struct_of(vec->symbol);
      if (sd == nullptr) continue;
      auto& part = result_.partition;
      part.home_symbol = vec->symbol;
      part.home_driver.assign(vec->subs.size(), -1);
      part.home_driver_offset.assign(vec->subs.size(), 0);
      for (std::size_t k = 0; k < vec->subs.size(); ++k) {
        if (vec->subs[k].kind != Subscript::Kind::Scalar) continue;
        const SubClass cls = classify_subscript(*vec->subs[k].scalar, space_, inner_symbol_);
        if (cls.kind == SubClass::Kind::AffineUnit && cls.space_pos >= 0) {
          part.home_driver[k] = cls.space_pos;
          part.home_driver_offset[k] = cls.c;
        }
      }
      return;
    }
  }

  static const Expr* find_vector_subscript(const Expr& e) {
    if (e.kind == ExprKind::ArrayRef) return &e;
    for (const auto& a : e.args) {
      if (const Expr* f = find_vector_subscript(*a)) return f;
    }
    return nullptr;
  }

  // --- RHS traversal -------------------------------------------------------
  void visit(const Expr& e) {
    if (e.kind == ExprKind::ArrayRef) {
      classify_ref(e);
      for (const auto& s : e.subs) {
        if (s.scalar) visit(*s.scalar);  // vector subscripts reference arrays too
      }
      return;
    }
    for (const auto& a : e.args) visit(*a);
  }

  void classify_ref(const Expr& ref) {
    const std::vector<StructDim>* sd = struct_of(ref.symbol);
    if (sd == nullptr) return;  // replicated array: always local

    const auto& part = result_.partition;
    const std::vector<StructDim>* home_sd =
        part.home_symbol >= 0 ? struct_of(part.home_symbol) : nullptr;

    for (std::size_t k = 0; k < ref.subs.size(); ++k) {
      const StructDim& dim = (*sd)[k];
      if (dim.kind == DistKind::Collapsed) continue;  // dim not distributed
      const Subscript& sub = ref.subs[k];
      if (sub.kind != Subscript::Kind::Scalar) {
        throw CompileError(ref.loc, "internal: non-normalized RHS section");
      }
      const SubClass cls = classify_subscript(*sub.scalar, space_, inner_symbol_);
      switch (cls.kind) {
        case SubClass::Kind::Invariant: {
          CommRequirement req;
          req.type = CommRequirement::Type::SliceBroadcast;
          req.array = ref.symbol;
          req.dim = static_cast<int>(k);
          req.note = ref.name + " fixed subscript on distributed dim";
          push_unique(std::move(req));
          break;
        }
        case SubClass::Kind::AffineUnit: {
          if (cls.space_pos == -2) {
            // inner (dim-reduction) index sweeping a *distributed* dim:
            // whole-dimension access — regular remap
            CommRequirement req;
            req.type = CommRequirement::Type::Gather;
            req.array = ref.symbol;
            req.dim = static_cast<int>(k);
            req.pattern = GatherPattern::Remap;
            req.note = ref.name + " reduction sweep over distributed dim";
            push_unique(std::move(req));
            break;
          }
          // find the home dim driven by the same space index with matching
          // template alignment
          long long delta = 0;
          bool aligned = false;
          if (home_sd != nullptr) {
            for (std::size_t h = 0; h < part.home_driver.size(); ++h) {
              if (part.home_driver[h] != cls.space_pos) continue;
              const StructDim& hd = (*home_sd)[h];
              if (hd.tmpl == dim.tmpl && hd.tmpl_dim == dim.tmpl_dim &&
                  hd.kind == dim.kind) {
                aligned = true;
                delta = (cls.c + dim.offset) -
                        (part.home_driver_offset[h] + hd.offset);
              }
              break;
            }
          }
          if (!aligned) {
            CommRequirement req;
            req.type = CommRequirement::Type::Gather;
            req.array = ref.symbol;
            req.dim = static_cast<int>(k);
            req.pattern = GatherPattern::Remap;
            req.note = ref.name + " not aligned with loop home";
            push_unique(std::move(req));
          } else if (delta != 0) {
            CommRequirement req;
            req.type = CommRequirement::Type::Overlap;
            req.array = ref.symbol;
            req.dim = static_cast<int>(k);
            req.offset = delta;
            req.note = ref.name + " shifted reference";
            push_unique(std::move(req));
          }
          break;
        }
        case SubClass::Kind::AffineNonUnit: {
          CommRequirement req;
          req.type = CommRequirement::Type::Gather;
          req.array = ref.symbol;
          req.dim = static_cast<int>(k);
          req.pattern = GatherPattern::Remap;
          req.note = ref.name + " non-unit-stride subscript";
          push_unique(std::move(req));
          break;
        }
        case SubClass::Kind::Irregular: {
          CommRequirement req;
          req.type = CommRequirement::Type::Gather;
          req.array = ref.symbol;
          req.dim = static_cast<int>(k);
          req.pattern = GatherPattern::Irregular;
          req.note = ref.name + " vector subscript";
          push_unique(std::move(req));
          break;
        }
      }
    }
  }

  void push_unique(CommRequirement req) {
    for (const auto& r : result_.pre) {
      if (r.type == req.type && r.array == req.array && r.dim == req.dim &&
          r.offset == req.offset && r.pattern == req.pattern) {
        return;
      }
    }
    result_.pre.push_back(std::move(req));
  }

  /// Message vectorization merges same-direction overlaps on the same
  /// array/dim into one exchange of the maximal width: x(k+10) and x(k+11)
  /// need a single 11-element ghost strip, not two messages.
  void merge_overlaps() {
    std::vector<CommRequirement> merged;
    for (auto& req : result_.pre) {
      if (req.type != CommRequirement::Type::Overlap) {
        merged.push_back(std::move(req));
        continue;
      }
      bool absorbed = false;
      for (auto& m : merged) {
        if (m.type == CommRequirement::Type::Overlap && m.array == req.array &&
            m.dim == req.dim && (m.offset > 0) == (req.offset > 0)) {
          if (std::llabs(req.offset) > std::llabs(m.offset)) m.offset = req.offset;
          m.note += "; merged " + req.note;
          absorbed = true;
          break;
        }
      }
      if (!absorbed) merged.push_back(std::move(req));
    }
    result_.pre = std::move(merged);
  }

  const std::vector<IterIndex>& space_;
  const StructuralMaps& maps_;
  const front::SymbolTable& symbols_;
  int inner_symbol_;
  CommAnalysis result_;
};

}  // namespace

CommAnalysis analyze_forall(const std::vector<IterIndex>& space, const front::Expr& lhs,
                            const front::Expr* rhs, const front::Expr* mask,
                            const front::Expr* inner_arg, int inner_symbol,
                            const StructuralMaps& maps,
                            const front::SymbolTable& symbols) {
  Analyzer analyzer(space, maps, symbols, inner_symbol);
  return analyzer.run(lhs, rhs, mask, inner_arg);
}

}  // namespace hpf90d::compiler
