#include "machine/ipsc860.hpp"

namespace hpf90d::machine {

namespace {

ProcessingComponent i860_processing() {
  // 40 MHz => 25 ns cycle. Theoretical peak is 80/40 MFlop/s (SP/DP), but
  // compiled Fortran 77 sustains a few MFlop/s; the per-operation costs
  // below reflect compiled code with its load/store and pipeline stalls.
  ProcessingComponent p;
  const double cycle = 25e-9;
  p.t_fadd = 3.0 * cycle;
  p.t_fmul = 4.0 * cycle;
  p.t_fdiv = 38.0 * cycle;   // software-pipelined reciprocal refinement
  p.t_fpow = 160.0 * cycle;  // pow = exp(log) through libm
  p.t_iop = 1.2 * cycle;
  p.t_load = 2.0 * cycle;    // D-cache hit
  p.t_store = 2.0 * cycle;
  p.loop_overhead = 4.0 * cycle;   // decrement/compare/branch + induction
  p.loop_setup = 22.0 * cycle;     // prologue from instruction counts
  p.branch_overhead = 5.0 * cycle;
  p.call_overhead = 40.0 * cycle;
  p.intrinsic_cost = {
      {"exp", 120.0 * cycle},  {"log", 130.0 * cycle}, {"sqrt", 60.0 * cycle},
      {"sin", 140.0 * cycle},  {"cos", 140.0 * cycle}, {"atan", 160.0 * cycle},
      {"mod", 14.0 * cycle},
  };
  return p;
}

MemoryComponent i860_memory() {
  MemoryComponent m;
  m.dcache_bytes = 8 * 1024;
  m.icache_bytes = 4 * 1024;
  m.main_memory_bytes = 8LL * 1024 * 1024;
  m.line_bytes = 32;
  m.miss_penalty = 430e-9;  // line fill from DRAM
  m.mem_bandwidth = 80e6;
  return m;
}

CommComponent ipsc_comm() {
  // Published iPSC/860 message-passing characteristics: ~75 us latency for
  // short (<=100 byte) messages, ~136 us setup for long ones, sustained
  // ~2.8 MB/s per channel, ~11 us per extra hop (circuit establishment),
  // parameterized here exactly as the off-line benchmarking runs would.
  CommComponent c;
  c.latency_short = 75e-6;
  c.latency_long = 136e-6;
  c.short_threshold = 100;
  c.per_byte = 0.36e-6;
  c.per_hop = 11e-6;
  c.pack_per_byte = 0.045e-6;
  c.pack_strided_factor = 2.4;
  c.coll_stage_setup = 14e-6;     // collective library per-stage bookkeeping
  c.per_element_index = 0.95e-6;  // irregular comm index translation
  return c;
}

IOComponent srm_io() {
  IOComponent io;
  io.host_latency = 1.8e-3;   // SRM service request round trip
  io.host_per_byte = 1.1e-6;  // slow host channel
  return io;
}

}  // namespace

MachineModel make_ipsc860(int nodes) {
  MachineModel model;
  model.max_nodes = nodes;

  SAU system;
  system.name = "iPSC/860 system";
  const int root = model.sag.add_unit(system, -1);

  SAU host;
  host.name = "SRM host (80386)";
  host.io = srm_io();
  model.host_unit = model.sag.add_unit(host, root);

  SAU cube;
  cube.name = "i860 cube";
  cube.comm = ipsc_comm();
  const int cube_id = model.sag.add_unit(cube, root);

  SAU node;
  node.name = "i860 node";
  node.proc = i860_processing();
  node.mem = i860_memory();
  node.comm = ipsc_comm();
  node.io = srm_io();
  model.node_unit = model.sag.add_unit(node, cube_id);

  return model;
}

}  // namespace hpf90d::machine
