#include "machine/whatif.hpp"

#include <stdexcept>

#include "machine/ipsc860.hpp"

namespace hpf90d::machine {

namespace {

void scale_comm(CommComponent& c, const WhatIfParams& p) {
  c.latency_short *= p.latency_scale;
  c.latency_long *= p.latency_scale;
  c.per_hop *= p.latency_scale;
  c.coll_stage_setup *= p.latency_scale;
  c.per_byte /= p.bandwidth_scale;
  c.pack_per_byte /= p.bandwidth_scale;
  c.per_element_index /= p.bandwidth_scale;
}

void scale_proc(ProcessingComponent& pc, const WhatIfParams& p) {
  pc.t_fadd /= p.cpu_scale;
  pc.t_fmul /= p.cpu_scale;
  pc.t_fdiv /= p.cpu_scale;
  pc.t_fpow /= p.cpu_scale;
  pc.t_iop /= p.cpu_scale;
  pc.t_load /= p.cpu_scale;
  pc.t_store /= p.cpu_scale;
  pc.loop_overhead /= p.cpu_scale;
  pc.loop_setup /= p.cpu_scale;
  pc.branch_overhead /= p.cpu_scale;
  pc.call_overhead /= p.cpu_scale;
  for (auto& [name, cost] : pc.intrinsic_cost) cost /= p.cpu_scale;
}

}  // namespace

MachineModel apply_whatif(MachineModel base, const WhatIfParams& params) {
  if (params.latency_scale <= 0 || params.bandwidth_scale <= 0 ||
      params.cpu_scale <= 0) {
    throw std::invalid_argument("whatif machine scales must be > 0");
  }
  // The SAG is a value tree: rewrite the parameters of every SAU in place.
  // (Interconnect and node SAUs both carry comm parameters; the node SAU
  // carries the processing component.)
  for (std::size_t u = 0; u < base.sag.size(); ++u) {
    SAU sau = base.sag.unit(static_cast<int>(u));
    scale_comm(sau.comm, params);
    scale_proc(sau.proc, params);
    base.sag.replace_unit(static_cast<int>(u), std::move(sau));
  }
  return base;
}

MachineModel make_whatif(int nodes, const WhatIfParams& params) {
  MachineModel model = apply_whatif(make_ipsc860(nodes), params);
  SAU root = model.sag.unit(0);
  root.name = "what-if system (iPSC/860-derived)";
  model.sag.replace_unit(0, std::move(root));
  return model;
}

}  // namespace hpf90d::machine
