// whatif.hpp — a parameterized "what-if" machine abstraction (paper §7:
// "exploiting its potential as a system design evaluation tool").
//
// The SAG methodology makes design evaluation a matter of editing SAU
// parameters: "what if the interconnect had a quarter of the latency?"
// becomes a factory knob rather than new hardware. make_whatif scales the
// calibrated iPSC/860 abstraction's communication and processing
// parameters, so sweeps can bracket a design space ("2x bandwidth",
// "10x latency", "4x faster nodes") against the real testbed.
#pragma once

#include "machine/sag.hpp"

namespace hpf90d::machine {

/// Scale knobs applied on top of the calibrated iPSC/860 SAU parameters.
/// All default to 1.0 (= the stock cube).
struct WhatIfParams {
  /// Multiplies message setup costs (latency_short/latency_long/per_hop and
  /// the collective library's per-stage setup). 0.5 = twice as responsive.
  double latency_scale = 1.0;
  /// Divides per-byte transfer and packing costs. 2.0 = double bandwidth.
  double bandwidth_scale = 1.0;
  /// Divides every processing-component cost. 2.0 = nodes twice as fast.
  double cpu_scale = 1.0;
};

/// Applies the knobs to every SAU of an arbitrary abstraction (the SAG is
/// a value tree, so scaling is a rewrite of the copy). This is what makes
/// machine *families* base-agnostic: a knob grid derives from any
/// registered machine, not just the cube. Throws std::invalid_argument for
/// non-positive scales.
[[nodiscard]] MachineModel apply_whatif(MachineModel base, const WhatIfParams& params);

/// Builds an iPSC/860-derived abstraction with `params` applied to every
/// SAU carrying communication or processing parameters. Throws
/// std::invalid_argument for non-positive scales.
[[nodiscard]] MachineModel make_whatif(int nodes, const WhatIfParams& params = {});

}  // namespace hpf90d::machine
