#include "machine/fattree.hpp"

#include <cmath>
#include <stdexcept>

#include "support/text.hpp"

namespace hpf90d::machine {

namespace {

ProcessingComponent risc_processing() {
  // ~100 MHz superscalar RISC workstation node: per-op costs below the
  // cluster's 60 MHz SPARC, with the same structural-overhead shape.
  ProcessingComponent p;
  const double cycle = 10e-9;
  p.t_fadd = 2.0 * cycle;
  p.t_fmul = 2.0 * cycle;
  p.t_fdiv = 20.0 * cycle;
  p.t_fpow = 120.0 * cycle;
  p.t_iop = 1.0 * cycle;
  p.t_load = 1.5 * cycle;
  p.t_store = 1.5 * cycle;
  p.loop_overhead = 2.5 * cycle;
  p.loop_setup = 14.0 * cycle;
  p.branch_overhead = 3.0 * cycle;
  p.call_overhead = 28.0 * cycle;
  p.intrinsic_cost = {
      {"exp", 80.0 * cycle},  {"log", 90.0 * cycle},  {"sqrt", 40.0 * cycle},
      {"sin", 100.0 * cycle}, {"cos", 100.0 * cycle}, {"atan", 120.0 * cycle},
      {"mod", 8.0 * cycle},
  };
  return p;
}

MemoryComponent risc_memory() {
  MemoryComponent m;
  m.dcache_bytes = 512 * 1024;  // large external unified cache
  m.icache_bytes = 32 * 1024;
  m.main_memory_bytes = 128LL * 1024 * 1024;
  m.line_bytes = 64;
  m.miss_penalty = 300e-9;
  m.mem_bandwidth = 150e6;
  return m;
}

CommComponent fattree_comm(int nodes, const FatTreeParams& params) {
  const int tiers = fattree_tiers(nodes, params.radix);
  const double factor = fattree_bisection_factor(nodes, params);
  // A message crosses up to `tiers` switches up and `tiers` down; the
  // traversal time rides on the setup cost, and residual distance
  // sensitivity is carried by per_hop (one switch per extra hop).
  CommComponent c;
  c.latency_short = 120e-6 + 2.0 * tiers * params.switch_delay;
  c.latency_long = 180e-6 + 2.0 * tiers * params.switch_delay;
  c.short_threshold = 256;
  c.per_byte = factor / params.link_bandwidth;
  c.per_hop = params.switch_delay;
  c.pack_per_byte = 0.02e-6;
  c.pack_strided_factor = 2.0;
  c.coll_stage_setup = 30e-6;
  c.per_element_index = 0.5e-6;
  return c;
}

}  // namespace

int fattree_tiers(int nodes, int radix) {
  if (nodes < 1) throw std::invalid_argument("fat tree needs >= 1 node");
  if (radix < 2) throw std::invalid_argument("fat tree switch radix must be >= 2");
  int tiers = 1;
  long long reach = radix;  // nodes reachable from one tier-`tiers` subtree
  while (reach < nodes) {
    reach *= radix;
    ++tiers;
  }
  return tiers;
}

double fattree_bisection_factor(int nodes, const FatTreeParams& params) {
  if (params.taper < 1.0) {
    throw std::invalid_argument("fat tree taper must be >= 1 (1 = full bisection)");
  }
  const int tiers = fattree_tiers(nodes, params.radix);
  return std::pow(params.taper, tiers - 1);
}

MachineModel make_fattree(int nodes, const FatTreeParams& params) {
  if (params.link_bandwidth <= 0 || params.switch_delay < 0) {
    throw std::invalid_argument("fat tree link parameters must be positive");
  }
  const int tiers = fattree_tiers(nodes, params.radix);
  const CommComponent comm = fattree_comm(nodes, params);

  MachineModel model;
  model.max_nodes = nodes;

  SAU system;
  system.name = "fat-tree cluster";
  const int root = model.sag.add_unit(system, -1);

  SAU host;
  host.name = "front-end server";
  host.io.host_latency = 2e-3;
  host.io.host_per_byte = 0.8e-6;
  model.host_unit = model.sag.add_unit(host, root);

  // Switch tiers from the spine down to the leaves: the decomposition keeps
  // one SAU per tier so per-unit queries see the fabric's hierarchy.
  int parent = root;
  for (int tier = tiers; tier >= 1; --tier) {
    SAU sw;
    sw.name = tier == tiers
                  ? "spine switch tier"
                  : (tier == 1 ? "leaf switch tier"
                               : support::strfmt("switch tier %d", tier));
    sw.comm = comm;
    parent = model.sag.add_unit(sw, parent);
  }
  // A single-tier tree's one switch tier is both spine and leaf; make sure
  // the leaf name exists for structural queries either way.
  if (tiers == 1) {
    SAU leaf = model.sag.unit(parent);
    leaf.name = "leaf switch tier";
    model.sag.replace_unit(parent, std::move(leaf));
  }

  SAU node;
  node.name = "risc workstation";
  node.proc = risc_processing();
  node.mem = risc_memory();
  node.comm = comm;
  node.io = host.io;
  model.node_unit = model.sag.add_unit(node, parent);

  return model;
}

}  // namespace hpf90d::machine
