// cluster.hpp — a second machine abstraction (paper §7 future work: "moving
// it to high performance distributed computing systems and exploiting its
// potential as a system design evaluation tool").
//
// The SAG methodology is machine-independent: this factory abstracts a
// 1994-era workstation cluster — faster superscalar nodes (HyperSPARC
// class), bigger caches, but an Ethernet-class interconnect with millisecond
// software latency — so the same programs can be "moved" between machines
// by swapping the abstraction, and design questions ("would the Laplace
// solver still scale on a LAN?") can be answered by interpretation alone.
#pragma once

#include "machine/sag.hpp"

namespace hpf90d::machine {

/// Builds the abstraction of a `nodes`-workstation cluster connected by a
/// shared 10 Mb/s Ethernet-class network (modelled as a 1-hop fabric with
/// heavy per-message software overhead).
[[nodiscard]] MachineModel make_cluster(int nodes = 8);

}  // namespace hpf90d::machine
