#include "machine/cluster.hpp"

namespace hpf90d::machine {

namespace {

ProcessingComponent sparc_processing() {
  // ~60 MHz superscalar workstation node: faster per-op than the i860's
  // compiled Fortran, cheaper structural overheads.
  ProcessingComponent p;
  const double cycle = 16.7e-9;
  p.t_fadd = 2.0 * cycle;
  p.t_fmul = 2.5 * cycle;
  p.t_fdiv = 24.0 * cycle;
  p.t_fpow = 140.0 * cycle;
  p.t_iop = 1.0 * cycle;
  p.t_load = 1.5 * cycle;
  p.t_store = 1.5 * cycle;
  p.loop_overhead = 3.0 * cycle;
  p.loop_setup = 16.0 * cycle;
  p.branch_overhead = 4.0 * cycle;
  p.call_overhead = 30.0 * cycle;
  p.intrinsic_cost = {
      {"exp", 90.0 * cycle},  {"log", 100.0 * cycle}, {"sqrt", 45.0 * cycle},
      {"sin", 110.0 * cycle}, {"cos", 110.0 * cycle}, {"atan", 130.0 * cycle},
      {"mod", 10.0 * cycle},
  };
  return p;
}

MemoryComponent sparc_memory() {
  MemoryComponent m;
  m.dcache_bytes = 256 * 1024;  // large unified external cache
  m.icache_bytes = 20 * 1024;
  m.main_memory_bytes = 64LL * 1024 * 1024;
  m.line_bytes = 32;
  m.miss_penalty = 380e-9;
  m.mem_bandwidth = 90e6;
  return m;
}

CommComponent ethernet_comm() {
  // UDP/TCP-over-Ethernet message passing (PVM-class): ~1.5 ms software
  // latency, ~1 MB/s effective shared bandwidth, flat topology.
  CommComponent c;
  c.latency_short = 1.5e-3;
  c.latency_long = 1.9e-3;
  c.short_threshold = 512;
  c.per_byte = 1.0e-6;
  c.per_hop = 0.0;  // single shared segment
  c.pack_per_byte = 0.03e-6;
  c.pack_strided_factor = 2.0;
  c.coll_stage_setup = 200e-6;
  c.per_element_index = 0.6e-6;
  return c;
}

}  // namespace

MachineModel make_cluster(int nodes) {
  MachineModel model;
  model.max_nodes = nodes;

  SAU system;
  system.name = "workstation cluster";
  const int root = model.sag.add_unit(system, -1);

  SAU host;
  host.name = "file server";
  host.io.host_latency = 8e-3;
  host.io.host_per_byte = 1.2e-6;
  model.host_unit = model.sag.add_unit(host, root);

  SAU lan;
  lan.name = "ethernet segment";
  lan.comm = ethernet_comm();
  const int lan_id = model.sag.add_unit(lan, root);

  SAU node;
  node.name = "sparc workstation";
  node.proc = sparc_processing();
  node.mem = sparc_memory();
  node.comm = ethernet_comm();
  node.io = host.io;
  model.node_unit = model.sag.add_unit(node, lan_id);

  return model;
}

}  // namespace hpf90d::machine
