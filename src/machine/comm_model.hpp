// comm_model.hpp — closed-form communication cost functions.
//
// These are the interpretation functions' view of the machine: contention-
// free analytic costs built from the SAU communication component (paper
// §4.4: low-level primitives + the benchmarked collective library). The
// simulator implements the same operations over an event-driven network
// with link occupancy, so the *difference* between these formulas and the
// simulated times is exactly the abstraction error the paper studies.
#pragma once

#include <algorithm>
#include <cmath>

#include "machine/sau.hpp"

namespace hpf90d::machine {

/// Algorithm used by reduction/broadcast collectives. The iPSC library uses
/// recursive halving/doubling over cube dimensions; Linear exists for the
/// ablation bench.
enum class CollectiveAlgo { RecursiveTree, Linear };

class CommModel {
 public:
  explicit CommModel(const CommComponent& c) : c_(c) {}

  /// Point-to-point message time (send overhead + wire + per-hop routing).
  [[nodiscard]] double ptp(long long bytes, int hops = 1) const {
    const double setup = bytes <= c_.short_threshold ? c_.latency_short : c_.latency_long;
    return setup + c_.per_byte * static_cast<double>(bytes) +
           c_.per_hop * std::max(0, hops - 1);
  }

  /// Buffer packing cost for `bytes` of data; strided data (non-contiguous
  /// boundary, e.g. a row of a column-major / column of a row-major array)
  /// pays the strided factor.
  [[nodiscard]] double pack(long long bytes, bool strided) const {
    return c_.pack_per_byte * static_cast<double>(bytes) *
           (strided ? c_.pack_strided_factor : 1.0);
  }

  /// Ghost-cell overlap exchange with one neighbour in one direction:
  /// pack + send (pairwise exchanges proceed concurrently; the receive is
  /// covered by the partner's symmetric send).
  [[nodiscard]] double overlap_exchange(long long bytes, bool strided) const {
    return pack(bytes, strided) + ptp(bytes) + pack(bytes, strided);
  }

  /// cshift: every processor sends its boundary block to one neighbour and
  /// receives the complement; the shifted remainder is a local copy
  /// (charged via memcpy bandwidth through pack()).
  [[nodiscard]] double cshift(long long msg_bytes, long long local_copy_bytes,
                              bool strided) const {
    return pack(msg_bytes, strided) + ptp(msg_bytes) +
           pack(local_copy_bytes + msg_bytes, false);
  }

  /// Reduction combine of `bytes` (already locally reduced) across P
  /// processors. RecursiveTree: ceil(log2 P) exchange stages.
  [[nodiscard]] double reduce(int procs, long long bytes, double op_time,
                              CollectiveAlgo algo = CollectiveAlgo::RecursiveTree) const {
    if (procs <= 1) return 0.0;
    if (algo == CollectiveAlgo::Linear) {
      return (procs - 1) * (ptp(bytes) + op_time + c_.coll_stage_setup) +
             bcast(procs, bytes, CollectiveAlgo::Linear);
    }
    const double stages = std::ceil(std::log2(static_cast<double>(procs)));
    // recursive doubling leaves the result replicated (allreduce style)
    return stages * (ptp(bytes) + op_time + c_.coll_stage_setup);
  }

  /// Broadcast of `bytes` from one node to P-1 others.
  [[nodiscard]] double bcast(int procs, long long bytes,
                             CollectiveAlgo algo = CollectiveAlgo::RecursiveTree) const {
    if (procs <= 1) return 0.0;
    if (algo == CollectiveAlgo::Linear) return (procs - 1) * ptp(bytes);
    const double stages = std::ceil(std::log2(static_cast<double>(procs)));
    return stages * (ptp(bytes) + c_.coll_stage_setup);
  }

  /// Irregular gather/scatter: each processor exchanges ~count*(P-1)/P
  /// randomly-destined elements. Modelled as P-1 pipelined pairwise
  /// exchanges of the per-partner share plus per-element index translation.
  [[nodiscard]] double irregular(int procs, long long count, int elem_bytes) const {
    if (procs <= 1) {
      return c_.per_element_index * static_cast<double>(count);
    }
    const long long remote = count * (procs - 1) / procs;
    const long long per_partner = std::max<long long>(1, remote / (procs - 1));
    return c_.per_element_index * static_cast<double>(count) +
           (procs - 1) * (ptp(per_partner * elem_bytes) + c_.coll_stage_setup) +
           pack(remote * elem_bytes, true);
  }

  /// Regular remap (transpose / non-unit-stride redistribution): an
  /// all-to-all personalized exchange of `count` local elements.
  [[nodiscard]] double remap(int procs, long long count, int elem_bytes) const {
    if (procs <= 1) return 0.0;
    const long long per_partner =
        std::max<long long>(1, count / std::max(1, procs - 1));
    return (procs - 1) * (ptp(per_partner * elem_bytes) + c_.coll_stage_setup) +
           pack(count * elem_bytes, true);
  }

  [[nodiscard]] const CommComponent& component() const noexcept { return c_; }

 private:
  CommComponent c_;
};

}  // namespace hpf90d::machine
