// topology.hpp — the iPSC/860 hypercube interconnect.
//
// Processor-grid coordinates are embedded into the cube with (binary
// reflected) Gray codes so that grid neighbours are cube neighbours, and
// messages follow e-cube (dimension-ordered) routes. The simulator models
// per-link occupancy along these routes; the interpretation engine only
// needs hop counts.
#pragma once

#include <span>
#include <vector>

namespace hpf90d::machine {

/// Binary reflected Gray code of `i`.
[[nodiscard]] constexpr unsigned gray_code(unsigned i) noexcept { return i ^ (i >> 1); }

class Hypercube {
 public:
  /// `nodes` must be a power of two (iPSC cubes are).
  explicit Hypercube(int nodes);

  [[nodiscard]] int nodes() const noexcept { return nodes_; }
  [[nodiscard]] int dimension() const noexcept { return dim_; }

  /// Maps a row-major linear processor-grid id onto a physical cube node.
  /// For 2-D grids (r x c, both powers of two) the mapping is
  /// gray(row) concatenated with gray(col); 1-D grids use gray(p).
  [[nodiscard]] int grid_to_node(int linear_id, std::span<const int> grid_shape) const;

  /// Hamming distance between two physical node ids (= e-cube hop count).
  [[nodiscard]] static int hops(int a, int b) noexcept;

  /// e-cube route: the ordered list of nodes visited from `a` to `b`
  /// (inclusive of both endpoints), correcting dimensions lowest first.
  [[nodiscard]] std::vector<int> route(int a, int b) const;

  /// Directed link index for the hop `from` -> `to` (differ in one bit);
  /// used by the simulator's link-occupancy table.
  [[nodiscard]] int link_index(int from, int to) const;
  [[nodiscard]] int link_count() const noexcept { return nodes_ * dim_; }

 private:
  int nodes_;
  int dim_;
};

}  // namespace hpf90d::machine
