// fattree.hpp — System Abstraction Graph for a fat-tree switched cluster.
//
// The paper's §7 extension replaced the cube with an Ethernet LAN; the next
// design question a 1994 evaluator would ask is "what does a *switched*
// fabric buy us?". A fat tree answers it: nodes hang off leaf switches,
// switch tiers stack toward a spine, and the uplinks taper so the tree's
// bisection bandwidth — the paper's figure of merit for all-to-all-heavy
// codes — is an explicit parameter instead of an accident of the wiring.
//
// The SAU communication component is a flat parameter set, so the topology
// is folded in at factory time: message setup pays one switch traversal per
// tier up and down, and the per-byte transfer cost is inflated by the
// bisection contention factor (taper^(tiers-1)) that a tapered tree imposes
// on traffic crossing the spine. Both are deterministic functions of the
// node count, which keeps what-if sweeps over fat trees reproducible.
#pragma once

#include "machine/sag.hpp"

namespace hpf90d::machine {

/// Fabric design knobs. The defaults describe a mid-90s switched cluster:
/// 4-port leaf switches, 2:1 taper per tier (half the bandwidth survives
/// each level up), 40 MB/s links, 5 us per switch traversal.
struct FatTreeParams {
  int radix = 4;                 // node-facing ports per leaf switch
  double taper = 2.0;            // uplink bandwidth divisor per tier (1 = full bisection)
  double link_bandwidth = 40e6;  // bytes/s per link
  double switch_delay = 5e-6;    // store-and-forward time per switch
};

/// Switch tiers needed to connect `nodes` leaves with `radix`-port leaf
/// switches (>= 1; a single node still gets its leaf switch).
[[nodiscard]] int fattree_tiers(int nodes, int radix);

/// Contention factor the tapered tree imposes on bisection-crossing
/// traffic: taper^(tiers-1), i.e. 1.0 for a full-bisection (taper = 1)
/// tree or for a single-tier tree. The factory divides the effective
/// per-byte bandwidth by this.
[[nodiscard]] double fattree_bisection_factor(int nodes, const FatTreeParams& params = {});

/// Builds the fat-tree cluster abstraction: front-end server host, a chain
/// of switch-tier SAUs (spine down to leaf), and the compute node under the
/// leaf tier. Throws std::invalid_argument for non-positive parameters.
[[nodiscard]] MachineModel make_fattree(int nodes, const FatTreeParams& params = {});

}  // namespace hpf90d::machine
