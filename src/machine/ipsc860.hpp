// ipsc860.hpp — calibrated System Abstraction Graph for the Intel iPSC/860.
//
// The paper abstracts the iPSC/860 off-line "using a combination of
// assembly instruction counts, measured timings, and system specifications"
// (§4.4). Our parameter values come from the published machine
// specification (40 MHz i860XR nodes, 4 KB I-cache / 8 KB D-cache, 8 MB
// memory, ~75 us short-message latency, ~2.8 MB/s sustained link
// bandwidth) and from the usual compiled-Fortran derating of the i860's
// theoretical peak. DESIGN.md documents the substitution of a simulated
// cube for the real one.
#pragma once

#include "machine/sag.hpp"

namespace hpf90d::machine {

/// Builds the abstraction of an iPSC/860 with `nodes` i860 processors
/// (8 in the paper's configuration) connected to an 80386-based SRM host.
[[nodiscard]] MachineModel make_ipsc860(int nodes = 8);

}  // namespace hpf90d::machine
