// sag.hpp — the System Abstraction Graph (paper §3.1): a rooted tree of
// SAUs produced by hierarchically decomposing the HPC system. For the
// iPSC/860 the decomposition is
//
//     system ── SRM host
//            └─ i860 cube ── node 0..P-1
//
// Nodes are homogeneous, so the cube SAU carries the node parameters; the
// graph structure is kept (rather than a flat parameter set) because the
// paper's methodology is explicitly hierarchical and the framework exposes
// per-unit queries.
#pragma once

#include <string>
#include <vector>

#include "machine/sau.hpp"

namespace hpf90d::machine {

class SystemAbstractionGraph {
 public:
  /// Adds a SAU; parent = -1 for the root. Returns the unit's index.
  int add_unit(SAU sau, int parent);

  /// Replaces the SAU at `index`, keeping its place in the hierarchy (used
  /// by parameterized abstractions that derive from a calibrated SAG).
  void replace_unit(int index, SAU sau);

  [[nodiscard]] const SAU& unit(int index) const { return units_.at(static_cast<std::size_t>(index)).sau; }
  [[nodiscard]] int parent_of(int index) const { return units_.at(static_cast<std::size_t>(index)).parent; }
  [[nodiscard]] std::size_t size() const noexcept { return units_.size(); }

  /// Finds a unit by name (first match in preorder); -1 when absent.
  [[nodiscard]] int find(std::string_view name) const;

  /// Renders the decomposition for reports.
  [[nodiscard]] std::string str() const;

 private:
  struct Entry {
    SAU sau;
    int parent = -1;
  };
  std::vector<Entry> units_;
};

/// A fully configured abstract machine: the SAG plus the roles the
/// framework needs resolved (which SAU describes a compute node, which the
/// host) and the machine size.
struct MachineModel {
  SystemAbstractionGraph sag;
  int node_unit = -1;  // SAU index of a compute node
  int host_unit = -1;  // SAU index of the SRM host
  int max_nodes = 0;   // cube size

  [[nodiscard]] const SAU& node() const { return sag.unit(node_unit); }
  [[nodiscard]] const SAU& host() const { return sag.unit(host_unit); }
};

}  // namespace hpf90d::machine
