// sau.hpp — System Abstraction Units (paper §3.1).
//
// The systems module abstracts an HPC system by hierarchical decomposition
// into SAUs; each SAU parameterizes the performance of one system unit
// through four components: Processing (P), Memory (M), Communication /
// Synchronization (C/S) and Input/Output (I/O). The interpretation engine
// consumes exactly these parameters — nothing else about the machine is
// visible to it.
#pragma once

#include <map>
#include <string>

namespace hpf90d::machine {

/// Processing component: per-operation times (seconds) for compiled
/// Fortran 77 code on the node CPU, plus structural overheads obtained from
/// assembly instruction counts (paper §4.4).
struct ProcessingComponent {
  double t_fadd = 0;   // floating add/subtract/compare
  double t_fmul = 0;
  double t_fdiv = 0;
  double t_fpow = 0;   // x**y through the runtime library
  double t_iop = 0;    // integer/address operation
  double t_load = 0;   // cache-hit load
  double t_store = 0;  // cache-hit store
  double loop_overhead = 0;    // per-iteration branch + induction update
  double loop_setup = 0;       // loop prologue
  double branch_overhead = 0;  // per conditional evaluation
  double call_overhead = 0;    // runtime-library call
  std::map<std::string, double> intrinsic_cost;  // exp, log, sqrt, ...

  [[nodiscard]] double intrinsic(const std::string& name) const {
    const auto it = intrinsic_cost.find(name);
    return it == intrinsic_cost.end() ? call_overhead : it->second;
  }
};

/// Memory component: the node memory hierarchy (i860: 4 KB I-cache,
/// 8 KB D-cache, 32-byte lines, 8 MB main memory).
struct MemoryComponent {
  long long dcache_bytes = 0;
  long long icache_bytes = 0;
  long long main_memory_bytes = 0;
  int line_bytes = 32;
  double miss_penalty = 0;    // seconds per line fill
  double mem_bandwidth = 0;   // bytes/s streaming from main memory
};

/// Communication/synchronization component: point-to-point parameters and
/// the benchmarked collective-library constants (paper §4.4: low-level
/// primitives and the high-level collective communication library).
struct CommComponent {
  double latency_short = 0;       // message setup, <= short_threshold bytes
  double latency_long = 0;        // message setup above the threshold
  long long short_threshold = 100;
  double per_byte = 0;            // transfer time per byte (1/bandwidth)
  double per_hop = 0;             // additional time per extra hypercube hop
  double pack_per_byte = 0;       // contiguous buffer packing
  double pack_strided_factor = 1; // multiplier when packing strided data
  double coll_stage_setup = 0;    // per-stage overhead of the collective library
  double per_element_index = 0;   // per-element index translation (irregular comm)
};

/// I/O component: the SRM host link (cross-compiled executables are loaded
/// through it; print output travels back over it).
struct IOComponent {
  double host_latency = 0;
  double host_per_byte = 0;
};

/// One System Abstraction Unit.
struct SAU {
  std::string name;
  ProcessingComponent proc;
  MemoryComponent mem;
  CommComponent comm;
  IOComponent io;
};

}  // namespace hpf90d::machine
