#include "machine/paragon.hpp"

namespace hpf90d::machine {

namespace {

ProcessingComponent i860xp_processing() {
  // 50 MHz => 20 ns cycle. The XP core keeps the XR's pipeline structure,
  // so compiled-Fortran per-operation cycle counts track the iPSC/860
  // numbers with slightly better load/branch behaviour from the larger
  // caches and improved pairing.
  ProcessingComponent p;
  const double cycle = 20e-9;
  p.t_fadd = 3.0 * cycle;
  p.t_fmul = 3.5 * cycle;
  p.t_fdiv = 36.0 * cycle;
  p.t_fpow = 150.0 * cycle;
  p.t_iop = 1.1 * cycle;
  p.t_load = 1.8 * cycle;
  p.t_store = 1.8 * cycle;
  p.loop_overhead = 3.5 * cycle;
  p.loop_setup = 20.0 * cycle;
  p.branch_overhead = 4.0 * cycle;
  p.call_overhead = 36.0 * cycle;
  p.intrinsic_cost = {
      {"exp", 110.0 * cycle},  {"log", 120.0 * cycle}, {"sqrt", 55.0 * cycle},
      {"sin", 130.0 * cycle},  {"cos", 130.0 * cycle}, {"atan", 150.0 * cycle},
      {"mod", 12.0 * cycle},
  };
  return p;
}

MemoryComponent i860xp_memory() {
  MemoryComponent m;
  m.dcache_bytes = 16 * 1024;  // XP doubles the XR's on-chip caches
  m.icache_bytes = 16 * 1024;
  m.main_memory_bytes = 32LL * 1024 * 1024;
  m.line_bytes = 32;
  m.miss_penalty = 350e-9;  // faster DRAM path than the XR node board
  m.mem_bandwidth = 120e6;
  return m;
}

CommComponent paragon_comm() {
  // OSF/1 NX message passing over the 2-D wormhole mesh: ~72 us software
  // latency for short messages, ~110 us setup for long ones, ~90 MB/s
  // sustained user-level bandwidth (the 200 MB/s links are OS-limited),
  // and sub-microsecond per-hop routing — latency is software-, not
  // distance-, dominated, the opposite regime from the cube.
  CommComponent c;
  c.latency_short = 72e-6;
  c.latency_long = 110e-6;
  c.short_threshold = 128;
  c.per_byte = 0.011e-6;
  c.per_hop = 0.4e-6;
  c.pack_per_byte = 0.03e-6;
  c.pack_strided_factor = 2.2;
  c.coll_stage_setup = 10e-6;
  c.per_element_index = 0.7e-6;
  return c;
}

IOComponent service_io() {
  IOComponent io;
  io.host_latency = 1.2e-3;  // service-partition request round trip
  io.host_per_byte = 0.5e-6;
  return io;
}

}  // namespace

MachineModel make_paragon(int nodes) {
  MachineModel model;
  model.max_nodes = nodes;

  SAU system;
  system.name = "Paragon XP/S system";
  const int root = model.sag.add_unit(system, -1);

  SAU host;
  host.name = "service partition";
  host.io = service_io();
  model.host_unit = model.sag.add_unit(host, root);

  SAU mesh;
  mesh.name = "wormhole mesh";
  mesh.comm = paragon_comm();
  const int mesh_id = model.sag.add_unit(mesh, root);

  SAU node;
  node.name = "i860 XP node";
  node.proc = i860xp_processing();
  node.mem = i860xp_memory();
  node.comm = paragon_comm();
  node.io = service_io();
  model.node_unit = model.sag.add_unit(node, mesh_id);

  return model;
}

}  // namespace hpf90d::machine
