// paragon.hpp — System Abstraction Graph for the Intel Paragon XP/S.
//
// The Paragon is the iPSC/860's successor and the paper's natural §7
// "what-if" target: same i860 instruction set (so the compiled-Fortran
// operation costs carry over with a clock bump), but a 2-D wormhole mesh
// with dedicated message processors in place of the hypercube's
// circuit-switched channels. Parameters follow the published XP/S
// specification and the early OSF/1 NX timings: 50 MHz i860 XP nodes with
// 16 KB I/D caches and 16-32 MB memory, ~72 us short-message latency,
// ~90 MB/s sustained user-level bandwidth, sub-microsecond per-hop routing.
// Moving a program here is exactly the paper's methodology: swap the SAG,
// re-run the interpretation, compare.
#pragma once

#include "machine/sag.hpp"

namespace hpf90d::machine {

/// Builds the abstraction of a Paragon XP/S partition with `nodes` i860 XP
/// processors behind a service-partition host.
[[nodiscard]] MachineModel make_paragon(int nodes = 8);

}  // namespace hpf90d::machine
