#include "machine/topology.hpp"

#include <bit>
#include <stdexcept>

namespace hpf90d::machine {

Hypercube::Hypercube(int nodes) : nodes_(nodes) {
  if (nodes <= 0 || (nodes & (nodes - 1)) != 0) {
    throw std::invalid_argument("hypercube size must be a power of two");
  }
  dim_ = std::countr_zero(static_cast<unsigned>(nodes));
}

int Hypercube::grid_to_node(int linear_id, std::span<const int> grid_shape) const {
  if (grid_shape.size() <= 1) {
    return static_cast<int>(gray_code(static_cast<unsigned>(linear_id)));
  }
  // row-major: id = r * cols + c
  const int cols = grid_shape[1];
  const int r = linear_id / cols;
  const int c = linear_id % cols;
  int col_bits = 0;
  while ((1 << col_bits) < cols) ++col_bits;
  const unsigned node = (gray_code(static_cast<unsigned>(r)) << col_bits) |
                        gray_code(static_cast<unsigned>(c));
  return static_cast<int>(node);
}

int Hypercube::hops(int a, int b) noexcept {
  return std::popcount(static_cast<unsigned>(a ^ b));
}

std::vector<int> Hypercube::route(int a, int b) const {
  std::vector<int> path{a};
  int cur = a;
  unsigned diff = static_cast<unsigned>(a ^ b);
  for (int d = 0; d < dim_; ++d) {
    if (diff & (1u << d)) {
      cur ^= (1 << d);
      path.push_back(cur);
    }
  }
  return path;
}

int Hypercube::link_index(int from, int to) const {
  const unsigned diff = static_cast<unsigned>(from ^ to);
  const int d = std::countr_zero(diff);
  return from * dim_ + d;
}

}  // namespace hpf90d::machine
