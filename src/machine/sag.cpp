#include "machine/sag.hpp"

#include <sstream>

namespace hpf90d::machine {

int SystemAbstractionGraph::add_unit(SAU sau, int parent) {
  const int id = static_cast<int>(units_.size());
  units_.push_back(Entry{std::move(sau), parent});
  return id;
}

void SystemAbstractionGraph::replace_unit(int index, SAU sau) {
  units_.at(static_cast<std::size_t>(index)).sau = std::move(sau);
}

int SystemAbstractionGraph::find(std::string_view name) const {
  for (std::size_t i = 0; i < units_.size(); ++i) {
    if (units_[i].sau.name == name) return static_cast<int>(i);
  }
  return -1;
}

std::string SystemAbstractionGraph::str() const {
  std::ostringstream os;
  // render as an indented tree (children follow parents in insertion order)
  std::vector<int> depth(units_.size(), 0);
  for (std::size_t i = 0; i < units_.size(); ++i) {
    const int p = units_[i].parent;
    depth[i] = p >= 0 ? depth[static_cast<std::size_t>(p)] + 1 : 0;
    for (int d = 0; d < depth[i]; ++d) os << "  ";
    os << "- " << units_[i].sau.name << '\n';
  }
  return os.str();
}

}  // namespace hpf90d::machine
