#include "suite/suite.hpp"

#include <cmath>
#include <stdexcept>

namespace hpf90d::suite {

namespace {

front::Bindings bind_n(long long n) {
  front::Bindings b;
  b.set_int("n", n);
  return b;
}

long long identity_elements(long long n) { return n; }

// ---------------------------------------------------------------------------
// Livermore Fortran Kernels
// ---------------------------------------------------------------------------

const char* const kLfk1 = R"f90(
program lfk1
  parameter (n = 1024, niter = 10)
  real x(n), y(n), z(n)
  real q, r, t
!hpf$ template d(n)
!hpf$ align x(i) with d(i)
!hpf$ align y(i) with d(i)
!hpf$ align z(i) with d(i)
!hpf$ distribute d(block)
  q = 0.5
  r = 0.2
  t = 0.1
  do it = 1, niter
    forall (k = 1:n-11) x(k) = q + y(k)*(r*z(k+10) + t*z(k+11))
  end do
end program lfk1
)f90";

const char* const kLfk2 = R"f90(
program lfk2
  parameter (n = 1024, nlev = 10, m = 2*n)
  real x(m), v(m)
!hpf$ template d(m)
!hpf$ align x(i) with d(i)
!hpf$ align v(i) with d(i)
!hpf$ distribute d(block)
  integer ii, ipnt, ipntp
  ii = n
  ipntp = 0
  do lev = 1, nlev
    ipnt = ipntp
    ipntp = ipntp + ii
    ii = ii/2
    forall (k = 1:ii) x(ipntp + k) = x(ipnt + 2*k) - v(ipnt + 2*k)*x(ipnt + 2*k - 1)
  end do
end program lfk2
)f90";

const char* const kLfk3 = R"f90(
program lfk3
  parameter (n = 1024, niter = 10)
  real x(n), z(n)
  real q
!hpf$ template d(n)
!hpf$ align x(i) with d(i)
!hpf$ align z(i) with d(i)
!hpf$ distribute d(block)
  do it = 1, niter
    q = sum(z*x)
  end do
  print *, q
end program lfk3
)f90";

const char* const kLfk9 = R"f90(
program lfk9
  parameter (n = 1024, niter = 10)
  real px(n,13)
  real dm22, dm23, dm24, dm25, dm26, dm27, dm28, c0
!hpf$ template d(n)
!hpf$ align px(i,j) with d(i)
!hpf$ distribute d(block)
  dm22 = 0.141
  dm23 = 0.232
  dm24 = 0.323
  dm25 = 0.414
  dm26 = 0.505
  dm27 = 0.696
  dm28 = 0.787
  c0 = 0.375
  do it = 1, niter
    forall (i = 1:n) px(i,1) = dm28*px(i,13) + dm27*px(i,12) + dm26*px(i,11) + &
        dm25*px(i,10) + dm24*px(i,9) + dm23*px(i,8) + dm22*px(i,7) + &
        c0*(px(i,5) + px(i,6)) + px(i,3)
  end do
end program lfk9
)f90";

const char* const kLfk14 = R"f90(
program lfk14
  parameter (n = 1024, niter = 5)
  real vx(n), xx(n), ex(n), rh(n)
  real flx
  integer ix(n), ir(n)
!hpf$ template d(n)
!hpf$ align vx(i) with d(i)
!hpf$ align xx(i) with d(i)
!hpf$ align ex(i) with d(i)
!hpf$ align rh(i) with d(i)
!hpf$ align ix(i) with d(i)
!hpf$ align ir(i) with d(i)
!hpf$ distribute d(block)
  forall (i = 1:n) ix(i) = mod(i*7, n) + 1
  forall (i = 1:n) ir(i) = mod(i*13, n) + 1
  flx = 0.001
  do it = 1, niter
    forall (i = 1:n) vx(i) = vx(i) + ex(ix(i))
    forall (i = 1:n) xx(i) = xx(i) + vx(i)*flx
    forall (i = 1:n) rh(ir(i)) = rh(ir(i)) + vx(i)
  end do
end program lfk14
)f90";

const char* const kLfk22 = R"f90(
program lfk22
  parameter (n = 1024, niter = 10)
  real u(n), v(n), w(n), x(n), y(n)
!hpf$ template d(n)
!hpf$ align u(i) with d(i)
!hpf$ align v(i) with d(i)
!hpf$ align w(i) with d(i)
!hpf$ align x(i) with d(i)
!hpf$ align y(i) with d(i)
!hpf$ distribute d(block)
  do it = 1, niter
    forall (k = 1:n) y(k) = u(k)/v(k)
    forall (k = 1:n) w(k) = x(k)/(exp(y(k)) - 1.0)
  end do
end program lfk22
)f90";

// ---------------------------------------------------------------------------
// Purdue Benchmarking Set
// ---------------------------------------------------------------------------

const char* const kPbs1 = R"f90(
program pbs1
  parameter (n = 1024)
  real y(n)
  real a, b, h, t1, area
!hpf$ template d(n)
!hpf$ align y(i) with d(i)
!hpf$ distribute d(block)
  a = 0.0
  b = 1.0
  h = (b - a)/real(n - 1)
  forall (i = 1:n) y(i) = 1.0/(1.0 + (a + real(i - 1)*h)*(a + real(i - 1)*h))
  t1 = sum(y)
  area = h*(t1 - 0.5*y(1) - 0.5*y(n))
  print *, area
end program pbs1
)f90";

const char* const kPbs2 = R"f90(
program pbs2
  parameter (n = 256, m = 16)
  real a(n,m), p(n)
  real e
!hpf$ template d(n)
!hpf$ align a(i,j) with d(i)
!hpf$ align p(i) with d(i)
!hpf$ distribute d(block)
  forall (i = 1:n, j = 1:m) a(i,j) = 1.0/(0.5*abs(real(i - j)) + 1.001)
  p = product(a, 2)
  e = sum(p)
  print *, e
end program pbs2
)f90";

const char* const kPbs3 = R"f90(
program pbs3
  parameter (n = 256, m = 16)
  real a(n,m), p(n)
  real s
!hpf$ template d(n)
!hpf$ align a(i,j) with d(i)
!hpf$ align p(i) with d(i)
!hpf$ distribute d(block)
  forall (i = 1:n, j = 1:m) a(i,j) = 1.0 + 1.0/real(i + j)
  p = product(a, 2)
  s = sum(p)
  print *, s
end program pbs3
)f90";

const char* const kPbs4 = R"f90(
program pbs4
  parameter (n = 1024)
  real x(n), y(n)
  real r
!hpf$ template d(n)
!hpf$ align x(i) with d(i)
!hpf$ align y(i) with d(i)
!hpf$ distribute d(block)
  forall (i = 1:n) x(i) = 1.0 + real(i)/real(n)
  forall (i = 1:n) y(i) = 1.0/x(i)
  r = sum(y)
  print *, r
end program pbs4
)f90";

// ---------------------------------------------------------------------------
// Applications
// ---------------------------------------------------------------------------

const char* const kPi = R"f90(
program pi
  parameter (n = 1024)
  real f(n)
  real h, pival
!hpf$ template d(n)
!hpf$ align f(i) with d(i)
!hpf$ distribute d(block)
  h = 1.0/real(n)
  forall (i = 1:n) f(i) = 4.0/(1.0 + ((real(i) - 0.5)*h)*((real(i) - 0.5)*h))
  pival = h*sum(f)
  print *, pival
end program pi
)f90";

const char* const kNbody = R"f90(
program nbody
  parameter (n = 256)
  real x(n), m(n), f(n), qx(n), qm(n)
  real g, eps
!hpf$ template d(n)
!hpf$ align x(i) with d(i)
!hpf$ align m(i) with d(i)
!hpf$ align f(i) with d(i)
!hpf$ align qx(i) with d(i)
!hpf$ align qm(i) with d(i)
!hpf$ distribute d(block)
  g = 0.001
  eps = 0.01
  forall (i = 1:n) x(i) = real(i)
  forall (i = 1:n) m(i) = 1.0
  forall (i = 1:n) f(i) = 0.0
  qx = x
  qm = m
  do ks = 1, n - 1
    qx = cshift(qx, 1)
    qm = cshift(qm, 1)
    forall (i = 1:n) f(i) = f(i) + g*m(i)*qm(i)/((x(i) - qx(i))*(x(i) - qx(i)) + eps)
  end do
  print *, f(1)
end program nbody
)f90";

const char* const kFinance = R"f90(
program finance
  parameter (n = 256, nstep = 16)
  real s(n), c(n), w(n)
  real s0, u, k0, disc
!hpf$ template d(n)
!hpf$ align s(i) with d(i)
!hpf$ align c(i) with d(i)
!hpf$ align w(i) with d(i)
!hpf$ distribute d(block)
  s0 = 50.0
  u = 1.01
  k0 = 50.0
  disc = 0.95
  forall (i = 1:n) s(i) = s0
  do j = 1, nstep
    s = cshift(s, 1)
    forall (i = 1:n) s(i) = s(i)*u
  end do
  forall (i = 1:n) c(i) = max(s(i) - k0, 0.0)
  forall (i = 1:n) w(i) = c(i)*disc
  print *, w(1)
end program finance
)f90";

const char* const kLaplace = R"f90(
program laplace
  parameter (n = 64, niter = 10)
  real u(n,n), unew(n,n)
!hpf$ processors p(2,2)
!hpf$ template d(n,n)
!hpf$ align u(i,j) with d(i,j)
!hpf$ align unew(i,j) with d(i,j)
!hpf$ distribute d(block,block)
  forall (i = 1:n, j = 1:n) u(i,j) = 0.0
  forall (i = 1:n) u(i,1) = 1.0
  forall (i = 1:n) u(i,n) = 1.0
  do it = 1, niter
    forall (i = 2:n-1, j = 2:n-1) unew(i,j) = 0.25*(u(i-1,j) + u(i+1,j) + &
        u(i,j-1) + u(i,j+1))
    forall (i = 2:n-1, j = 2:n-1) u(i,j) = unew(i,j)
  end do
  print *, u(n/2, n/2)
end program laplace
)f90";

std::vector<BenchmarkApp> build_suite() {
  std::vector<BenchmarkApp> apps;

  auto add = [&](std::string id, std::string name, std::string description,
                 const char* source, std::vector<long long> sizes,
                 std::function<front::Bindings(long long)> bindings = bind_n,
                 std::function<long long(long long)> elements = identity_elements,
                 std::vector<std::string> overrides = {}) {
    BenchmarkApp app;
    app.id = std::move(id);
    app.name = std::move(name);
    app.description = std::move(description);
    app.source = source;
    app.problem_sizes = std::move(sizes);
    app.bindings = std::move(bindings);
    app.data_elements = std::move(elements);
    app.directive_overrides = std::move(overrides);
    apps.push_back(std::move(app));
  };

  const std::vector<long long> kernel_sizes{128, 256, 512, 1024, 2048, 4096};

  add("lfk1", "LFK 1", "Hydro Fragment", kLfk1, kernel_sizes);
  add("lfk2", "LFK 2", "ICCG Excerpt (Incomplete Cholesky; Conj. Grad.)", kLfk2,
      kernel_sizes, [](long long n) {
        front::Bindings b;
        b.set_int("n", n);
        b.set_int("m", 2 * n);
        b.set_int("nlev", static_cast<long long>(std::log2(static_cast<double>(n))));
        return b;
      });
  add("lfk3", "LFK 3", "Inner Product", kLfk3, kernel_sizes);
  add("lfk9", "LFK 9", "Integrate Predictors", kLfk9, kernel_sizes);
  add("lfk14", "LFK 14", "1-D PIC (Particle In Cell)", kLfk14, kernel_sizes);
  add("lfk22", "LFK 22", "Planckian Distribution", kLfk22, kernel_sizes);

  add("pbs1", "PBS 1", "Trapezoidal rule estimate of an integral of f(x)", kPbs1,
      kernel_sizes);
  // PBS 2/3 sweep data elements 256 - 65536 with m = 16 columns
  const std::vector<long long> pbs_rows{16, 64, 256, 1024, 4096};
  auto pbs_bind = [](long long n) {
    front::Bindings b;
    b.set_int("n", n);
    b.set_int("m", 16);
    return b;
  };
  auto pbs_elems = [](long long n) { return n * 16; };
  add("pbs2", "PBS 2", "Compute e = sum_i prod_j 1/(1 + 0.5|i-j| + 0.001)", kPbs2,
      pbs_rows, pbs_bind, pbs_elems);
  add("pbs3", "PBS 3", "Compute S = sum_i prod_j a(i,j)", kPbs3, pbs_rows, pbs_bind,
      pbs_elems);
  add("pbs4", "PBS 4", "Compute R = sum_i 1/x(i)", kPbs4, kernel_sizes);

  add("pi", "PI", "Approximation of pi by n-point quadrature", kPi, kernel_sizes);
  add("nbody", "N-Body", "Newtonian gravitational n-body simulation", kNbody,
      {16, 64, 256, 1024});
  add("finance", "Financial", "Parallel stock option pricing model", kFinance,
      {32, 64, 128, 256, 512});

  const std::vector<long long> laplace_sizes{16, 32, 64, 128, 256};
  add("laplace_bb", "Laplace (Blk-Blk)", "Laplace solver, (BLOCK,BLOCK) distribution",
      kLaplace, laplace_sizes, bind_n, [](long long n) { return n * n; },
      {"processors p(2,2)", "distribute d(block,block)"});
  add("laplace_bx", "Laplace (Blk-X)", "Laplace solver, (BLOCK,*) distribution",
      kLaplace, laplace_sizes, bind_n, [](long long n) { return n * n; },
      {"processors p(4)", "distribute d(block,*)"});
  add("laplace_xb", "Laplace (X-Blk)", "Laplace solver, (*,BLOCK) distribution",
      kLaplace, laplace_sizes, bind_n, [](long long n) { return n * n; },
      {"processors p(4)", "distribute d(*,block)"});

  return apps;
}

}  // namespace

const std::vector<BenchmarkApp>& validation_suite() {
  static const std::vector<BenchmarkApp> suite = build_suite();
  return suite;
}

const BenchmarkApp& app(std::string_view id) {
  for (const auto& a : validation_suite()) {
    if (a.id == id) return a;
  }
  throw std::out_of_range("unknown benchmark app: " + std::string(id));
}

}  // namespace hpf90d::suite
