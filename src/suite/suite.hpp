// suite.hpp — the NPAC HPF/Fortran 90D validation application set
// (paper Table 1): Livermore Fortran Kernels 1, 2, 3, 9, 14, 22; Purdue
// Benchmarking Set problems 1-4; PI quadrature; an N-body simulation; a
// parallel stock option pricing model; and the Laplace solver in three
// distributions.
#pragma once

#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "hpf/fold.hpp"

namespace hpf90d::suite {

struct BenchmarkApp {
  std::string id;           // short identifier, e.g. "lfk1"
  std::string name;         // paper row name, e.g. "LFK 1"
  std::string description;  // paper Table 1 description
  std::string source;       // HPF/Fortran 90D source text
  /// Sweep of problem sizes (value bound to the app's size parameter).
  std::vector<long long> problem_sizes;
  /// Data-element count the paper reports for a given size value (PBS 2/3
  /// count n*m elements).
  std::function<long long(long long)> data_elements;
  /// Bindings for one problem size (size parameter + derived parameters
  /// such as LFK 2's level count).
  std::function<front::Bindings(long long)> bindings;
  /// Directive overrides (Laplace distribution variants).
  std::vector<std::string> directive_overrides;
};

/// The full validation set in paper Table 1 order.
[[nodiscard]] const std::vector<BenchmarkApp>& validation_suite();

/// Lookup by id; throws std::out_of_range when unknown.
[[nodiscard]] const BenchmarkApp& app(std::string_view id);

/// The processor counts of the paper's experiments.
[[nodiscard]] inline std::vector<int> paper_system_sizes() { return {1, 2, 4, 8}; }

}  // namespace hpf90d::suite
