#include "support/diagnostics.hpp"

#include <sstream>

namespace hpf90d::support {

std::string SourceLoc::str() const {
  if (!valid()) return "<unknown>";
  std::ostringstream os;
  os << line << ':' << column;
  return os.str();
}

namespace {
std::string_view severity_name(Severity sev) {
  switch (sev) {
    case Severity::Note: return "note";
    case Severity::Warning: return "warning";
    case Severity::Error: return "error";
  }
  return "?";
}
}  // namespace

std::string Diagnostic::str() const {
  std::ostringstream os;
  os << loc.str() << ": " << severity_name(severity) << ": " << message;
  return os.str();
}

void DiagnosticEngine::report(Severity sev, SourceLoc loc, std::string message) {
  if (sev == Severity::Error) ++error_count_;
  diags_.push_back(Diagnostic{sev, loc, std::move(message)});
}

void DiagnosticEngine::check(std::string_view stage) const {
  if (!has_errors()) return;
  std::ostringstream os;
  os << stage << " failed with " << error_count_ << " error(s):\n" << str();
  throw CompileError(os.str());
}

std::string DiagnosticEngine::str() const {
  std::ostringstream os;
  for (const auto& d : diags_) os << d.str() << '\n';
  return os.str();
}

CompileError::CompileError(SourceLoc loc, const std::string& what)
    : std::runtime_error(loc.str() + ": " + what), loc_(loc) {}

}  // namespace hpf90d::support
