#include "support/table.hpp"

#include <algorithm>
#include <cctype>
#include <sstream>

namespace hpf90d::support {

namespace {
bool looks_numeric(const std::string& s) {
  if (s.empty()) return false;
  for (char c : s) {
    if (!std::isdigit(static_cast<unsigned char>(c)) && c != '.' && c != '-' &&
        c != '+' && c != '%' && c != 'e' && c != 'E' && c != 'x') {
      return false;
    }
  }
  return true;
}
}  // namespace

TextTable::TextTable(std::vector<std::string> header) : header_(std::move(header)) {}

void TextTable::add_row(std::vector<std::string> cells) {
  Row row;
  row.cells = std::move(cells);
  row.rule_before = pending_rule_;
  pending_rule_ = false;
  rows_.push_back(std::move(row));
}

void TextTable::add_rule() { pending_rule_ = true; }

std::string TextTable::str() const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t i = 0; i < header_.size(); ++i) widths[i] = header_[i].size();
  for (const auto& row : rows_) {
    for (std::size_t i = 0; i < row.cells.size() && i < widths.size(); ++i) {
      widths[i] = std::max(widths[i], row.cells[i].size());
    }
  }

  auto hrule = [&] {
    std::string s = "+";
    for (std::size_t w : widths) s += std::string(w + 2, '-') + "+";
    return s + "\n";
  };
  auto render_row = [&](const std::vector<std::string>& cells) {
    std::ostringstream os;
    os << "|";
    for (std::size_t i = 0; i < widths.size(); ++i) {
      const std::string& cell = i < cells.size() ? cells[i] : std::string{};
      const std::size_t pad = widths[i] - cell.size();
      if (looks_numeric(cell)) {
        os << ' ' << std::string(pad, ' ') << cell << " |";
      } else {
        os << ' ' << cell << std::string(pad, ' ') << " |";
      }
    }
    os << '\n';
    return os.str();
  };

  std::ostringstream os;
  os << hrule() << render_row(header_) << hrule();
  for (const auto& row : rows_) {
    if (row.rule_before) os << hrule();
    os << render_row(row.cells);
  }
  os << hrule();
  return os.str();
}

}  // namespace hpf90d::support
