// diagnostics.hpp — source locations, diagnostics and error reporting shared
// by every stage of the HPF/Fortran 90D pipeline (lexer through interpreter).
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace hpf90d::support {

/// A position in an HPF/Fortran 90D source file. Lines and columns are
/// 1-based; line 0 means "no location" (e.g. synthesized nodes).
struct SourceLoc {
  std::uint32_t line = 0;
  std::uint32_t column = 0;

  [[nodiscard]] bool valid() const noexcept { return line != 0; }
  [[nodiscard]] std::string str() const;

  friend bool operator==(const SourceLoc&, const SourceLoc&) = default;
};

enum class Severity { Note, Warning, Error };

/// One diagnostic message attached to a source location.
struct Diagnostic {
  Severity severity = Severity::Error;
  SourceLoc loc;
  std::string message;

  [[nodiscard]] std::string str() const;
};

/// Collects diagnostics across a compilation. Errors are recorded rather
/// than thrown so that a stage can report several problems per run; callers
/// check `has_errors()` (or call `check()` to throw) at stage boundaries.
class DiagnosticEngine {
 public:
  void report(Severity sev, SourceLoc loc, std::string message);
  void error(SourceLoc loc, std::string message) {
    report(Severity::Error, loc, std::move(message));
  }
  void warning(SourceLoc loc, std::string message) {
    report(Severity::Warning, loc, std::move(message));
  }
  void note(SourceLoc loc, std::string message) {
    report(Severity::Note, loc, std::move(message));
  }

  [[nodiscard]] bool has_errors() const noexcept { return error_count_ != 0; }
  [[nodiscard]] std::size_t error_count() const noexcept { return error_count_; }
  [[nodiscard]] const std::vector<Diagnostic>& diagnostics() const noexcept {
    return diags_;
  }

  /// Throws CompileError summarizing all errors if any were reported.
  void check(std::string_view stage) const;

  /// All diagnostics rendered one per line.
  [[nodiscard]] std::string str() const;

 private:
  std::vector<Diagnostic> diags_;
  std::size_t error_count_ = 0;
};

/// Thrown when a pipeline stage cannot proceed (syntax error, unsupported
/// construct, unresolved critical variable, ...).
class CompileError : public std::runtime_error {
 public:
  explicit CompileError(const std::string& what) : std::runtime_error(what) {}
  CompileError(SourceLoc loc, const std::string& what);

  [[nodiscard]] SourceLoc loc() const noexcept { return loc_; }

 private:
  SourceLoc loc_;
};

}  // namespace hpf90d::support
