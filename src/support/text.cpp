#include "support/text.hpp"

#include <cctype>
#include <cstdarg>
#include <cstdio>

namespace hpf90d::support {

std::string to_lower(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

std::string to_upper(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
  return out;
}

bool iequals(std::string_view a, std::string_view b) noexcept {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

std::string_view trim(std::string_view s) noexcept {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

std::vector<std::string> split(std::string_view s, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == sep) {
      out.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

bool starts_with_ci(std::string_view s, std::string_view prefix) noexcept {
  return s.size() >= prefix.size() && iequals(s.substr(0, prefix.size()), prefix);
}

std::string strfmt(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list copy;
  va_copy(copy, args);
  const int needed = std::vsnprintf(nullptr, 0, fmt, copy);
  va_end(copy);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<std::size_t>(needed));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args);
  }
  va_end(args);
  return out;
}

std::string format_seconds(double seconds) {
  if (seconds >= 1.0) return strfmt("%.3f s", seconds);
  if (seconds >= 1e-3) return strfmt("%.3f ms", seconds * 1e3);
  return strfmt("%.1f us", seconds * 1e6);
}

std::string format_bytes(double bytes) {
  if (bytes >= 1024.0 * 1024.0) return strfmt("%.2f MB", bytes / (1024.0 * 1024.0));
  if (bytes >= 1024.0) return strfmt("%.2f KB", bytes / 1024.0);
  return strfmt("%.0f B", bytes);
}

}  // namespace hpf90d::support
