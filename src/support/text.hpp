// text.hpp — small string utilities used throughout the pipeline. Fortran is
// case-insensitive, so case-folding helpers live here next to generic
// trimming/splitting/formatting.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace hpf90d::support {

/// Lower-cases ASCII; Fortran identifiers and keywords are case-insensitive
/// and the pipeline canonicalizes them to lower case.
[[nodiscard]] std::string to_lower(std::string_view s);
[[nodiscard]] std::string to_upper(std::string_view s);

/// Case-insensitive ASCII equality.
[[nodiscard]] bool iequals(std::string_view a, std::string_view b) noexcept;

[[nodiscard]] std::string_view trim(std::string_view s) noexcept;

/// Splits on a single character; empty fields are kept.
[[nodiscard]] std::vector<std::string> split(std::string_view s, char sep);

[[nodiscard]] bool starts_with_ci(std::string_view s, std::string_view prefix) noexcept;

/// printf-style helper returning std::string (format must be a literal-style
/// trusted string; used for report rendering only).
[[nodiscard]] std::string strfmt(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

/// Renders seconds with an auto-chosen unit (s / ms / us) for reports.
[[nodiscard]] std::string format_seconds(double seconds);

/// Renders a byte count with an auto-chosen unit (B / KB / MB).
[[nodiscard]] std::string format_bytes(double bytes);

/// FNV-1a 64-bit: cheap, stable content hash for cache keys. Keys built
/// from it should also embed the input length, so a collision needs
/// same-length inputs (the compaction posture of the session's program
/// key and of layout_fingerprint's structure digest).
[[nodiscard]] constexpr std::uint64_t fnv1a64(std::string_view s) noexcept {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

}  // namespace hpf90d::support
