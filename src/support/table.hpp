// table.hpp — fixed-width text tables used by the bench harness to print
// paper-style rows (Table 1, Table 2, and the figure series).
#pragma once

#include <string>
#include <vector>

namespace hpf90d::support {

/// Accumulates rows of string cells and renders them with aligned columns.
/// Numeric-looking cells are right-aligned, everything else left-aligned.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  void add_row(std::vector<std::string> cells);

  /// Adds a horizontal rule before the next row.
  void add_rule();

  [[nodiscard]] std::string str() const;

  [[nodiscard]] std::size_t rows() const noexcept { return rows_.size(); }

 private:
  struct Row {
    std::vector<std::string> cells;
    bool rule_before = false;
  };
  std::vector<std::string> header_;
  std::vector<Row> rows_;
  bool pending_rule_ = false;
};

}  // namespace hpf90d::support
