// executor.hpp — functional execution of the SPMD node program with
// discrete-event timing. This is the repository's stand-in for "run it on
// the iPSC/860 and measure": the same compiler output the interpretation
// engine prices is executed here with real data, per-processor clocks, an
// event-driven hypercube network, the fine i860 cost model, and seeded OS
// noise (see DESIGN.md's substitution table).
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "compiler/eval.hpp"
#include "compiler/mapping.hpp"
#include "compiler/spmd_ir.hpp"
#include "machine/sag.hpp"
#include "machine/comm_model.hpp"
#include "sim/exec_cost.hpp"
#include "sim/network.hpp"
#include "sim/noise.hpp"
#include "sim/values.hpp"

namespace hpf90d::sim {

struct SimOptions {
  std::uint64_t seed = 42;
  bool noise = true;
  bool contention = true;
  machine::CollectiveAlgo collective = machine::CollectiveAlgo::RecursiveTree;
  long long max_while_trips = 1000000;
};

/// Per-SPMD-node time attribution (averaged over processors on output).
struct NodeMetric {
  double comp = 0;
  double comm = 0;
  double overhead = 0;
  long long visits = 0;

  [[nodiscard]] double total() const noexcept { return comp + comm + overhead; }
};

struct SimResult {
  double total = 0;  // program time: max processor clock
  std::vector<double> proc_clock;
  std::vector<NodeMetric> per_node;  // indexed by SpmdNode::id
  double comp = 0, comm = 0, overhead = 0;
  /// Values produced by `print *` statements, keyed by expression text.
  std::map<std::string, double> printed;
  /// Final values of user scalars (numerical validation).
  std::map<std::string, double> scalars;
};

/// The executor is reusable: a default-constructed executor is an *arena*
/// that `rebind()` points at a new configuration before each `run()`.
/// Rebinding resets every piece of simulation state exactly as construction
/// would (storage contents, clocks, network occupancy, noise stream) while
/// reusing the large scratch allocations — per-worker executors replay
/// thousands of measurement runs without per-run heap churn.
class Executor {
 public:
  /// Arena construction: no state bound yet; call rebind() before run().
  Executor() = default;

  Executor(const compiler::CompiledProgram& prog, const compiler::DataLayout& layout,
           const machine::MachineModel& machine, const SimOptions& options,
           const front::Bindings& bindings);

  /// Re-targets the executor, producing bit-identical behaviour to a fresh
  /// Executor(prog, layout, machine, options, bindings). The referenced
  /// arguments must outlive the next run() call.
  void rebind(const compiler::CompiledProgram& prog, const compiler::DataLayout& layout,
              const machine::MachineModel& machine, const SimOptions& options,
              const front::Bindings& bindings);

  /// Re-run reset for repeated measurement of the *same* configuration
  /// under a new seed: resets exactly the state a run perturbs (written
  /// arrays, scalar environment, clocks, network occupancy, noise stream,
  /// metrics, pending result) and skips the configuration-derived work a
  /// full rebind() redoes (node-op tables, cost/comm models, layout
  /// retargeting, untouched operand arrays). Bit-identical to
  /// rebind(same args, options with `seed`): a subsequent run() produces
  /// the same result either way. Only valid after a rebind().
  void rebind_run(std::uint64_t seed);

  /// One-shot per rebind/construction: call rebind() again before the next
  /// run().
  [[nodiscard]] SimResult run();

  /// Like run(), but fills `out` in place, reusing its vectors and maps
  /// (previous contents are discarded). The measurement hot loop calls
  /// this with one scratch SimResult per worker, so a measurement-heavy
  /// sweep performs no per-run result allocation in steady state. Contents
  /// are identical to run().
  void run_into(SimResult& out);

 private:
  using SpmdNode = compiler::SpmdNode;

  // --- control flow ---------------------------------------------------------
  void exec_seq(const std::vector<compiler::SpmdNodePtr>& nodes);
  void exec(const SpmdNode& n);
  void exec_scalar_assign(const SpmdNode& n);
  void exec_do(const SpmdNode& n);
  void exec_while(const SpmdNode& n);
  void exec_if(const SpmdNode& n);
  void exec_hostio(const SpmdNode& n);
  void exec_local_loop(const SpmdNode& n);
  void exec_reduce(const SpmdNode& n);
  void exec_overlap(const SpmdNode& n);
  void exec_cshift(const SpmdNode& n);
  void exec_irregular(const SpmdNode& n);
  void exec_slice_bcast(const SpmdNode& n);

  // --- helpers ------------------------------------------------------------------
  struct ResolvedSpace {
    std::vector<long long> lo, hi, step;
    [[nodiscard]] long long points() const;
  };
  [[nodiscard]] ResolvedSpace resolve_space(const std::vector<compiler::IterIndex>& space);

  /// Owner (grid-linear processor) of one iteration point, or -1 when the
  /// loop is replicated.
  [[nodiscard]] int owner_of_point(const SpmdNode& n, const compiler::ArrayMap* home,
                                   std::span<const long long> point) const;

  [[nodiscard]] std::vector<AccessPattern> access_patterns(const SpmdNode& n) const;
  [[nodiscard]] long long working_set_bytes(const front::Expr& lhs,
                                            const front::Expr* rhs,
                                            const ResolvedSpace& space) const;

  void charge_comp(int node_id, int proc, double t);
  void charge_comm(int node_id, int proc, double t);
  void charge_overhead(int node_id, int proc, double t);
  void charge_all_comp(int node_id, double t);
  void charge_all_overhead(int node_id, double t);

  NodeMetric& metric(int node_id) { return metrics_.at(static_cast<std::size_t>(node_id)); }

  /// Compile-time operation counts for one node (the shared
  /// CompiledProgram::node_ops table; see engine.hpp for the same pattern,
  /// including the at() guard against unnumbered hand-built nodes).
  [[nodiscard]] const compiler::OpCounts& body_ops(const SpmdNode& n) const {
    return node_ops_->at(static_cast<std::size_t>(n.id)).body;
  }
  [[nodiscard]] const compiler::OpCounts& cond_ops(const SpmdNode& n) const {
    return node_ops_->at(static_cast<std::size_t>(n.id)).cond;
  }

  /// Pairwise recursive-doubling collective over all processors: per stage
  /// both partners exchange `bytes` and apply `per_stage_extra` time.
  void collective_stages(int node_id, long long bytes, double per_stage_extra);

  // Pointers (not references) so rebind() can re-target the executor; null
  // only between default construction and the first rebind.
  const compiler::CompiledProgram* prog_ = nullptr;
  // Points at prog_->node_ops, or at fallback_node_ops_ for hand-built
  // programs that bypassed the pipeline.
  const std::vector<compiler::NodeOpCounts>* node_ops_ = nullptr;
  std::vector<compiler::NodeOpCounts> fallback_node_ops_;
  const compiler::DataLayout* layout_ = nullptr;
  const machine::MachineModel* machine_ = nullptr;
  const front::Bindings* bindings_ = nullptr;  // for rebind_run's reseed
  SimOptions options_;
  int nprocs_ = 0;

  compiler::ScalarEnv env_{0};
  Storage storage_;
  // NodeCostModel and SimNetwork hold references/config, so retargeting is
  // an emplace rather than an assignment.
  std::optional<NodeCostModel> cost_;
  machine::CommModel comm_model_{machine::CommComponent{}};
  std::optional<SimNetwork> network_;
  NoiseModel noise_{0, false};

  std::vector<double> clock_;
  std::vector<NodeMetric> metrics_;
  SimResult result_;

  // Reused per-call scratch (mutable: owner_of_point is logically const):
  mutable std::vector<int> owner_coords_scratch_;
  std::vector<int> coords_scratch_;
};

}  // namespace hpf90d::sim
