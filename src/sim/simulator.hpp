// simulator.hpp — the "measurement" facade.
//
// The paper's measured timings are averages of 1000 runs on the real cube
// with the variance attributed to timing tolerance and system load (§5.1).
// Simulator::measure repeats the functional simulation with different noise
// seeds and reports the same statistics (mean / min / max / stddev) so the
// accuracy benches can test the paper's claim that interpreted times
// typically fall within the measured variance.
#pragma once

#include <span>

#include "compiler/mapping.hpp"
#include "compiler/pipeline.hpp"
#include "compiler/spmd_ir.hpp"
#include "machine/sag.hpp"
#include "sim/executor.hpp"

namespace hpf90d::sim {

struct RunStats {
  double mean = 0;
  double min = 0;
  double max = 0;
  double stddev = 0;
  std::vector<double> samples;
};

struct MeasuredResult {
  SimResult detail;  // the first run's full breakdown
  RunStats stats;    // total-time statistics across runs
};

class Simulator {
 public:
  explicit Simulator(const machine::MachineModel& machine) : machine_(machine) {}

  /// Runs the program `runs` times with derived seeds.
  [[nodiscard]] MeasuredResult measure(const compiler::CompiledProgram& prog,
                                       const front::Bindings& bindings,
                                       const compiler::LayoutOptions& layout_options,
                                       const SimOptions& options = {},
                                       int runs = 3) const;

  /// Same, against a prebuilt layout (the session API's memoized path).
  [[nodiscard]] MeasuredResult measure(const compiler::CompiledProgram& prog,
                                       const front::Bindings& bindings,
                                       const compiler::DataLayout& layout,
                                       const SimOptions& options = {},
                                       int runs = 3) const;

  /// Same, replaying the runs through a caller-owned executor arena: each
  /// run rebinds `arena` instead of constructing a fresh Executor, so a
  /// per-worker arena serves a whole sweep without per-run allocation. The
  /// statistics are bit-identical to the constructing overloads.
  [[nodiscard]] MeasuredResult measure(const compiler::CompiledProgram& prog,
                                       const front::Bindings& bindings,
                                       const compiler::DataLayout& layout,
                                       const SimOptions& options, int runs,
                                       Executor& arena) const;

  /// The fully reusing form behind all the overloads above: fills `out` in
  /// place (previous contents discarded, buffers recycled) and replays the
  /// runs through Executor::run_into, so a caller holding one
  /// MeasuredResult and one Executor per worker measures a whole sweep
  /// without per-point result allocation. Contents are bit-identical to
  /// measure().
  void measure_into(const compiler::CompiledProgram& prog,
                    const front::Bindings& bindings,
                    const compiler::DataLayout& layout, const SimOptions& options,
                    int runs, Executor& arena, MeasuredResult& out) const;

  /// Batched form for the lockstep sweep path: measures every lane of a
  /// same-program batch through one executor arena, filling out[i] with
  /// exactly what measure_into of (bindings[i], layouts[i]) produces.
  /// Unlike prediction, simulation materializes real array data per run,
  /// so this is a buffer-reusing lane loop rather than an SoA walk — but
  /// the per-run work is shared: within a lane, only the first run pays a
  /// full rebind (later runs go through Executor::rebind_run, refilling
  /// only the arrays the previous run wrote), and one SimResult scratch
  /// cycles through the whole batch. `out` is resized to the lane count.
  void measure_batch_into(const compiler::CompiledProgram& prog,
                          std::span<const front::Bindings* const> bindings,
                          std::span<const compiler::DataLayout* const> layouts,
                          const SimOptions& options, int runs, Executor& arena,
                          std::vector<MeasuredResult>& out) const;

 private:
  /// Shared-scratch core behind measure_into / measure_batch_into:
  /// `scratch` cycles buffers with the arena (and with out.detail via the
  /// first-run swap), so batch callers thread one SimResult through every
  /// lane. Run 0 fully rebinds the arena; runs >= 1 use rebind_run.
  void measure_into(const compiler::CompiledProgram& prog,
                    const front::Bindings& bindings,
                    const compiler::DataLayout& layout, const SimOptions& options,
                    int runs, Executor& arena, MeasuredResult& out,
                    SimResult& scratch) const;

  const machine::MachineModel& machine_;
};

}  // namespace hpf90d::sim
