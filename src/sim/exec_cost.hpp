// exec_cost.hpp — the simulator's fine-grained i860 node cost model.
//
// The interpretation engine prices a loop body as a flat sum of SAU
// per-operation parameters plus a coarse memory heuristic. Real machines
// (and this simulator) differ in exactly the ways the paper's validation
// exposes:
//
//   * dual-issue pairing  — wide expressions overlap core/FP instructions;
//     long dependence chains serialize (hurts wide kernels like LFK 9 in
//     the *predictor*, which charges flat costs);
//   * cache behaviour     — the abstraction assumes streaming unit-stride
//     misses; strided accesses (LFK 2's stride-2 ICCG) and irregular
//     gathers (LFK 14's PIC) touch a new line almost every access;
//   * conditional work    — masked bodies pay branch mispredict-like
//     penalties depending on the realized mask fraction.
//
// These mechanisms produce the systematic prediction error the experiments
// in bench/table2_accuracy measure; their magnitudes are calibrated so the
// error envelope matches the paper's Table 2 shape (see EXPERIMENTS.md).
#pragma once

#include <vector>

#include "compiler/opcount.hpp"
#include "machine/sau.hpp"

namespace hpf90d::sim {

/// Memory-access pattern of one array reference in a loop body.
struct AccessPattern {
  int symbol = -1;                // accessed array (for stream grouping)
  long long stride_elements = 1;  // innermost-loop stride; <0 = irregular
  int elem_bytes = 4;
  long long array_bytes = 0;      // total footprint of the accessed array
  bool is_store = false;
};

struct LoopBodyCost {
  double per_iteration = 0;  // seconds, excluding loop control
  double per_iter_overhead = 0;  // loop control (branch + induction)
  double setup = 0;          // loop prologue
};

class NodeCostModel {
 public:
  explicit NodeCostModel(const machine::SAU& sau) : sau_(sau) {}

  /// Cost of one iteration of a loop body with operation counts `ops` and
  /// the given access patterns. `working_set_bytes` is the loop's total
  /// traffic footprint (drives cache capacity behaviour); `mask_fraction`
  /// the realized fraction of iterations whose body executes.
  [[nodiscard]] LoopBodyCost body_cost(const compiler::OpCounts& ops,
                                       const std::vector<AccessPattern>& accesses,
                                       long long working_set_bytes,
                                       double mask_fraction = 1.0,
                                       const compiler::OpCounts* mask_ops = nullptr) const;

  /// Cost of one replicated scalar statement.
  [[nodiscard]] double scalar_cost(const compiler::OpCounts& ops) const;

  [[nodiscard]] const machine::SAU& sau() const noexcept { return sau_; }

 private:
  const machine::SAU& sau_;
};

}  // namespace hpf90d::sim
