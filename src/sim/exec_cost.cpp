#include "sim/exec_cost.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

namespace hpf90d::sim {

namespace {

/// Raw issue cost of the pipelined core/FP operations (library intrinsic
/// calls are priced separately — they do not dual-issue).
double core_op_time(const compiler::OpCounts& ops, const machine::ProcessingComponent& p) {
  return ops.fadd * p.t_fadd + ops.fmul * p.t_fmul + ops.fdiv * p.t_fdiv +
         ops.fpow * p.t_fpow + ops.iops * p.t_iop + ops.loads * p.t_load +
         ops.stores * p.t_store;
}

double intrinsic_time(const compiler::OpCounts& ops, const machine::ProcessingComponent& p) {
  double t = 0.0;
  for (const auto& [name, n] : ops.intrinsics) t += n * p.intrinsic(name);
  return t;
}

double flat_op_time(const compiler::OpCounts& ops, const machine::ProcessingComponent& p) {
  return core_op_time(ops, p) + intrinsic_time(ops, p);
}

}  // namespace

LoopBodyCost NodeCostModel::body_cost(const compiler::OpCounts& ops,
                                      const std::vector<AccessPattern>& accesses,
                                      long long working_set_bytes,
                                      double mask_fraction,
                                      const compiler::OpCounts* mask_ops) const {
  const auto& p = sau_.proc;
  const auto& m = sau_.mem;

  // --- issue/pairing model ------------------------------------------------
  // The i860 dual-issues a core and an FP instruction per cycle when the
  // schedule permits. Wide expressions (many independent ops) pair well;
  // chains as deep as the operation count serialize completely.
  const int nops = std::max(1, ops.total_flops() + ops.iops + ops.loads + ops.stores);
  const double chain_ratio =
      std::clamp(static_cast<double>(ops.depth) / static_cast<double>(nops), 0.0, 1.0);
  const double pairing = 0.78 + 0.22 * chain_ratio;  // 0.78 = best overlap
  double compute = core_op_time(ops, p) * pairing + intrinsic_time(ops, p);

  // --- cache model -----------------------------------------------------------
  // Streams are grouped per (array, stride class): several references into
  // the same row of an array share its cache lines (LFK 9 reads ten
  // columns of one 13-element row => ~1.6 line fills per iteration, not
  // ten). Unit-stride groups stream elem/line lines per access with
  // roughly one stream per pair of offsets; strided groups touch one row
  // span per iteration; irregular references miss almost every access.
  // Capacity reuse is judged against the *accessed array's* footprint
  // (small lookup tables stay resident) bounded by the loop working set.
  double mem = 0.0;
  // combined footprint of the distinct arrays the loop streams through:
  // several 8 KB streams evict each other even though each alone fits
  long long loop_footprint = 0;
  {
    std::vector<int> seen;
    for (const auto& a : accesses) {
      bool dup = false;
      for (int s : seen) dup = dup || s == a.symbol;
      if (!dup) {
        seen.push_back(a.symbol);
        loop_footprint += a.array_bytes;
      }
    }
    if (working_set_bytes > 0) {
      loop_footprint = std::min(loop_footprint, 4 * working_set_bytes);
    }
  }
  std::vector<char> used(accesses.size(), 0);
  for (std::size_t i = 0; i < accesses.size(); ++i) {
    if (used[i]) continue;
    const AccessPattern& a = accesses[i];
    int group_count = 1;
    for (std::size_t j = i + 1; j < accesses.size(); ++j) {
      if (!used[j] && accesses[j].symbol == a.symbol &&
          accesses[j].stride_elements == a.stride_elements) {
        used[j] = 1;
        ++group_count;
      }
    }
    double lines_per_iter;
    if (a.stride_elements < 0) {
      // irregular gathers retain partial line locality (index vectors
      // like 7i mod n stride within lines part of the time)
      lines_per_iter = 0.9 * group_count;
    } else {
      const double stride_bytes =
          static_cast<double>(a.stride_elements) * a.elem_bytes;
      if (stride_bytes < m.line_bytes) {
        const double per_access = std::max(stride_bytes, 1.0 * a.elem_bytes) /
                                  m.line_bytes;
        // a 5-point stencil reads one array through 3 distinct row streams
        // (i-1, i, i+1); same-row offsets share lines
        const double streams = std::max(1.0, static_cast<double>(group_count) - 1.0);
        lines_per_iter = streams * per_access;
      } else {
        // the group walks one row (span ~ stride elements) per iteration
        lines_per_iter = std::min<double>(group_count, stride_bytes / m.line_bytes);
      }
    }
    long long footprint = loop_footprint > 0 ? loop_footprint : working_set_bytes;
    double capacity = 1.0;
    if (footprint > 0 && footprint <= m.dcache_bytes) {
      capacity = 0.18;  // warm after first traversal
    } else if (footprint <= 4 * m.dcache_bytes) {
      capacity = 0.75;  // partial reuse
    }
    mem += lines_per_iter * capacity * m.miss_penalty;
  }

  // --- mask / conditional ------------------------------------------------------
  double mask_cost = 0.0;
  if (mask_ops != nullptr) {
    mask_cost = core_op_time(*mask_ops, p) * pairing + intrinsic_time(*mask_ops, p) +
                p.branch_overhead;
    // mispredict-like penalty maximal at 50% taken
    mask_cost += 4.0 * p.t_iop * (1.0 - std::fabs(2.0 * mask_fraction - 1.0));
  }

  LoopBodyCost out;
  out.per_iteration = (compute + mem) * mask_fraction + mask_cost;
  out.per_iter_overhead = p.loop_overhead;
  out.setup = p.loop_setup;
  return out;
}

double NodeCostModel::scalar_cost(const compiler::OpCounts& ops) const {
  return flat_op_time(ops, sau_.proc);
}

}  // namespace hpf90d::sim
