// values.hpp — runtime array storage for the functional simulator.
//
// The simulator executes the SPMD program with real data so that numerical
// results can be validated against serial evaluation (the environment's
// "functional interpreter" role, paper §1). Storage is global (the
// simulator sees all of memory) while *timing* attribution follows the
// DataLayout ownership maps; this keeps data movement exact without
// duplicating every block per processor.
//
// Local storage is row-major (last dimension contiguous) — see DESIGN.md:
// this mirrors (transposed) the Fortran column-major layout and preserves
// the (BLOCK,*) vs (*,BLOCK) packing asymmetry the paper's Laplace study
// depends on.
#pragma once

#include <span>
#include <vector>

#include "compiler/eval.hpp"
#include "compiler/mapping.hpp"
#include "hpf/sema.hpp"

namespace hpf90d::sim {

class Storage final : public compiler::ArrayAccess {
 public:
  /// Arena construction: no program bound yet; call rebind() before use.
  Storage() = default;

  Storage(const front::SymbolTable& symbols, const compiler::DataLayout& layout);

  /// Re-targets the storage at another (symbol table, layout) pair,
  /// invalidating every array exactly as fresh construction would while
  /// keeping the per-array buffers' capacity. The referenced arguments must
  /// outlive the next use.
  void rebind(const front::SymbolTable& symbols, const compiler::DataLayout& layout);

  /// ArrayAccess interface (1-based Fortran indices).
  [[nodiscard]] double load(int symbol, std::span<const long long> index) override;
  [[nodiscard]] long long extent(int symbol, int dim) override;

  void store(int symbol, std::span<const long long> index, double value);

  /// Linearized (0-based, row-major) offset of a 1-based index vector;
  /// bounds-checked; allocates the array on first touch.
  [[nodiscard]] std::size_t offset(int symbol, std::span<const long long> index);

  [[nodiscard]] std::span<double> raw(int symbol);
  [[nodiscard]] const std::vector<long long>& extents(int symbol) const;
  [[nodiscard]] long long total_elements(int symbol) const;

  /// Fortran cshift semantics into another array of identical shape:
  /// dst(..., i, ...) = src(..., 1 + mod(i - 1 + shift, n), ...) along
  /// `dim` (0-based).
  void cshift_into(int dst_symbol, int src_symbol, int dim, long long shift);

  /// Invalidates exactly the arrays a run wrote to (store / cshift_into /
  /// raw), leaving read-only operand arrays — and their deterministic fill —
  /// untouched. After this, every array reads back what a full rebind()
  /// would produce, at the cost of refilling only the mutated ones: the
  /// between-runs reset of a repeated measurement.
  void reset_written();

 private:
  struct ArrayStore {
    std::vector<long long> extents;
    std::vector<long long> strides;  // row-major element strides
    std::vector<double> data;
    bool allocated = false;
    bool written = false;  // mutated since the last (re)fill
  };

  ArrayStore& ensure(int symbol);

  // Pointers (not references) so rebind() can re-target the storage; null
  // only between default construction and the first rebind.
  const front::SymbolTable* symbols_ = nullptr;
  const compiler::DataLayout* layout_ = nullptr;
  std::vector<ArrayStore> arrays_;
};

}  // namespace hpf90d::sim
