#include "sim/network.hpp"

#include <algorithm>
#include <bit>

namespace hpf90d::sim {

namespace {
int pow2_at_least(int n) {
  int p = 1;
  while (p < n) p <<= 1;
  return p;
}
}  // namespace

SimNetwork::SimNetwork(int nprocs, std::span<const int> grid_shape,
                       const machine::CommComponent& comm, SimNetworkOptions options)
    : cube_(pow2_at_least(nprocs)), comm_(comm), options_(options) {
  proc_to_node_.resize(static_cast<std::size_t>(nprocs));
  for (int p = 0; p < nprocs; ++p) {
    proc_to_node_[static_cast<std::size_t>(p)] = cube_.grid_to_node(p, grid_shape);
  }
  link_free_.assign(static_cast<std::size_t>(cube_.link_count()), 0.0);
}

void SimNetwork::reset() {
  std::fill(link_free_.begin(), link_free_.end(), 0.0);
}

int SimNetwork::hops_between(int from, int to) const {
  return machine::Hypercube::hops(proc_to_node_[static_cast<std::size_t>(from)],
                                  proc_to_node_[static_cast<std::size_t>(to)]);
}

double SimNetwork::send(int from, int to, long long bytes, double depart,
                        NoiseModel& noise) {
  const int a = proc_to_node_[static_cast<std::size_t>(from)];
  const int b = proc_to_node_[static_cast<std::size_t>(to)];
  if (a == b) return depart;  // same node: no wire time

  const double setup =
      bytes <= comm_.short_threshold ? comm_.latency_short : comm_.latency_long;
  const double wire = comm_.per_byte * static_cast<double>(bytes) * noise.comm_factor();

  // Circuit-switched DCM routing: the header establishes the path hop by
  // hop (waiting for each link), then the payload streams through. Each
  // link on the path is held for the payload duration.
  const std::vector<int> path = cube_.route(a, b);
  double t = depart + setup;
  for (std::size_t h = 0; h + 1 < path.size(); ++h) {
    const int link = cube_.link_index(path[h], path[h + 1]);
    if (options_.contention) {
      t = std::max(t, link_free_[static_cast<std::size_t>(link)]);
    }
    if (h > 0) t += comm_.per_hop;
  }
  const double arrival = t + wire;
  if (options_.contention) {
    for (std::size_t h = 0; h + 1 < path.size(); ++h) {
      const int link = cube_.link_index(path[h], path[h + 1]);
      link_free_[static_cast<std::size_t>(link)] = arrival;
    }
  }
  return arrival;
}

}  // namespace hpf90d::sim
