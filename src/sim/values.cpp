#include "sim/values.hpp"

#include <cmath>

#include "support/diagnostics.hpp"

namespace hpf90d::sim {

using support::CompileError;

Storage::Storage(const front::SymbolTable& symbols, const compiler::DataLayout& layout) {
  rebind(symbols, layout);
}

void Storage::rebind(const front::SymbolTable& symbols,
                     const compiler::DataLayout& layout) {
  symbols_ = &symbols;
  layout_ = &layout;
  arrays_.resize(symbols.size());
  for (auto& store : arrays_) {
    // Invalidate without releasing: ensure() re-derives extents/strides and
    // overwrites every element, so the data vector's capacity is reused.
    store.allocated = false;
    store.written = false;
    store.extents.clear();
    store.strides.clear();
  }
}

void Storage::reset_written() {
  for (auto& store : arrays_) {
    if (!store.written) continue;
    // Same invalidation rebind() applies, limited to mutated arrays:
    // ensure() re-derives the geometry (unchanged — same layout) and
    // rewrites the deterministic fill, so the next read is bit-identical
    // to a fresh construction.
    store.allocated = false;
    store.written = false;
    store.extents.clear();
    store.strides.clear();
  }
}

Storage::ArrayStore& Storage::ensure(int symbol) {
  auto& store = arrays_.at(static_cast<std::size_t>(symbol));
  if (store.allocated) return store;
  store.extents = layout_->array_extents(symbol);
  store.strides.assign(store.extents.size(), 1);
  long long total = 1;
  for (std::size_t d = store.extents.size(); d-- > 0;) {
    store.strides[d] = total;
    total *= store.extents[d];
  }
  // Deterministic near-unity fill for data the program never initializes
  // (benchmark kernels read "existing" operand arrays). Values stay in
  // [0.9, 1.1] so divisions, products, and exponentials remain tame.
  store.data.resize(static_cast<std::size_t>(total));
  const double phase = static_cast<double>(symbol) * 0.7311;
  for (std::size_t i = 0; i < store.data.size(); ++i) {
    store.data[i] = 1.0 + 0.1 * std::sin(phase + 0.217 * static_cast<double>(i % 257));
  }
  store.allocated = true;
  return store;
}

std::size_t Storage::offset(int symbol, std::span<const long long> index) {
  const ArrayStore& store = ensure(symbol);
  std::size_t off = 0;
  for (std::size_t d = 0; d < store.extents.size(); ++d) {
    const long long i = index[d];
    if (i < 1 || i > store.extents[d]) {
      throw CompileError({}, "subscript out of bounds for '" +
                                 symbols_->at(symbol).name + "' dim " +
                                 std::to_string(d + 1) + ": " + std::to_string(i) +
                                 " not in 1.." + std::to_string(store.extents[d]));
    }
    off += static_cast<std::size_t>((i - 1) * store.strides[d]);
  }
  return off;
}

double Storage::load(int symbol, std::span<const long long> index) {
  ArrayStore& store = ensure(symbol);
  (void)store;
  return arrays_[static_cast<std::size_t>(symbol)].data[offset(symbol, index)];
}

void Storage::store(int symbol, std::span<const long long> index, double value) {
  ArrayStore& s = ensure(symbol);
  s.written = true;
  s.data[offset(symbol, index)] = value;
}

long long Storage::extent(int symbol, int dim) {
  ArrayStore& store = ensure(symbol);
  return store.extents.at(static_cast<std::size_t>(dim));
}

std::span<double> Storage::raw(int symbol) {
  ArrayStore& store = ensure(symbol);
  // Conservative: the span is a mutable write window, so assume it is used
  // as one. Costs at most a redundant refill in reset_written().
  store.written = true;
  return store.data;
}

const std::vector<long long>& Storage::extents(int symbol) const {
  const auto& store = arrays_.at(static_cast<std::size_t>(symbol));
  return store.extents;
}

long long Storage::total_elements(int symbol) const {
  const auto& store = arrays_.at(static_cast<std::size_t>(symbol));
  long long total = 1;
  for (long long e : store.extents) total *= e;
  return total;
}

void Storage::cshift_into(int dst_symbol, int src_symbol, int dim, long long shift) {
  ArrayStore& src = ensure(src_symbol);
  ArrayStore& dst = ensure(dst_symbol);
  dst.written = true;
  const std::size_t rank = src.extents.size();
  if (dst.extents != src.extents) {
    throw CompileError({}, "cshift shape mismatch");
  }
  const long long n = src.extents.at(static_cast<std::size_t>(dim));
  std::vector<long long> idx(rank, 1);
  const std::size_t total = src.data.size();
  std::vector<long long> src_idx(rank, 1);
  for (std::size_t linear = 0; linear < total; ++linear) {
    src_idx = idx;
    const long long i = idx[static_cast<std::size_t>(dim)];
    src_idx[static_cast<std::size_t>(dim)] = 1 + ((i - 1 + shift) % n + n) % n;
    dst.data[offset(dst_symbol, idx)] = src.data[offset(src_symbol, src_idx)];
    // increment odometer (row-major, last dim fastest)
    for (std::size_t d = rank; d-- > 0;) {
      if (++idx[d] <= src.extents[d]) break;
      idx[d] = 1;
    }
  }
}

}  // namespace hpf90d::sim
