// noise.hpp — system-load and timing-tolerance model.
//
// The paper attributes the residual prediction error to "the tolerance of
// the timing routines and fluctuations in the system load" (§5.1): measured
// times are 1000-run averages with a variance band. The simulator
// reproduces that phenomenon with a seeded multiplicative jitter: small
// lognormal-like perturbations on every computation phase plus occasional
// daemon-interference spikes.
#pragma once

#include <cstdint>
#include <random>

namespace hpf90d::sim {

class NoiseModel {
 public:
  NoiseModel(std::uint64_t seed, bool enabled)
      : rng_(seed), enabled_(enabled) {}

  /// Multiplicative factor for a compute phase (mean ~1.0).
  [[nodiscard]] double compute_factor() {
    if (!enabled_) return 1.0;
    const double g = gauss_(rng_);
    double f = 1.0 + 0.004 * g;
    if (spike_(rng_) < 0.01) f += 0.03 * spike_mag_(rng_);  // OS daemon hiccup
    return f < 0.995 ? 0.995 : f;
  }

  /// Multiplicative factor for a message (network/DMA variation).
  [[nodiscard]] double comm_factor() {
    if (!enabled_) return 1.0;
    return 1.0 + 0.006 * std::fabs(gauss_(rng_));
  }

  /// Per-processor skew at program start (loading / clock offsets).
  [[nodiscard]] double startup_skew() {
    if (!enabled_) return 0.0;
    return 4e-6 * std::fabs(gauss_(rng_));
  }

 private:
  std::mt19937_64 rng_;
  std::normal_distribution<double> gauss_{0.0, 1.0};
  std::uniform_real_distribution<double> spike_{0.0, 1.0};
  std::uniform_real_distribution<double> spike_mag_{0.0, 1.0};
  bool enabled_;
};

}  // namespace hpf90d::sim
