#include "sim/simulator.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

namespace hpf90d::sim {

MeasuredResult Simulator::measure(const compiler::CompiledProgram& prog,
                                  const front::Bindings& bindings,
                                  const compiler::LayoutOptions& layout_options,
                                  const SimOptions& options, int runs) const {
  const compiler::DataLayout layout = compiler::make_layout(prog, bindings, layout_options);
  return measure(prog, bindings, layout, options, runs);
}

MeasuredResult Simulator::measure(const compiler::CompiledProgram& prog,
                                  const front::Bindings& bindings,
                                  const compiler::DataLayout& layout,
                                  const SimOptions& options, int runs) const {
  Executor arena;
  return measure(prog, bindings, layout, options, runs, arena);
}

MeasuredResult Simulator::measure(const compiler::CompiledProgram& prog,
                                  const front::Bindings& bindings,
                                  const compiler::DataLayout& layout,
                                  const SimOptions& options, int runs,
                                  Executor& arena) const {
  MeasuredResult out;
  measure_into(prog, bindings, layout, options, runs, arena, out);
  return out;
}

void Simulator::measure_into(const compiler::CompiledProgram& prog,
                             const front::Bindings& bindings,
                             const compiler::DataLayout& layout,
                             const SimOptions& options, int runs, Executor& arena,
                             MeasuredResult& out) const {
  // `res` cycles buffers with the arena via run_into, and with out.detail
  // via the r == 0 swap, so the steady state allocates nothing per run.
  SimResult res;
  measure_into(prog, bindings, layout, options, runs, arena, out, res);
}

void Simulator::measure_into(const compiler::CompiledProgram& prog,
                             const front::Bindings& bindings,
                             const compiler::DataLayout& layout,
                             const SimOptions& options, int runs, Executor& arena,
                             MeasuredResult& out, SimResult& scratch) const {
  out.stats.samples.clear();
  out.stats.mean = 0.0;
  out.stats.stddev = 0.0;
  out.stats.min = 1e300;
  out.stats.max = 0.0;
  for (int r = 0; r < std::max(1, runs); ++r) {
    const std::uint64_t seed =
        options.seed + static_cast<std::uint64_t>(r) * 0x9e3779b97f4a7c15ULL;
    if (r == 0) {
      // Full rebind on the first run only; later runs share every piece of
      // configuration-derived state and reset just what the run perturbed.
      SimOptions run_opts = options;
      run_opts.seed = seed;
      arena.rebind(prog, layout, machine_, run_opts, bindings);
    } else {
      arena.rebind_run(seed);
    }
    arena.run_into(scratch);
    out.stats.samples.push_back(scratch.total);
    out.stats.mean += scratch.total;
    out.stats.min = std::min(out.stats.min, scratch.total);
    out.stats.max = std::max(out.stats.max, scratch.total);
    if (r == 0) std::swap(out.detail, scratch);
  }
  const double n = static_cast<double>(out.stats.samples.size());
  out.stats.mean /= n;
  double var = 0.0;
  for (double s : out.stats.samples) {
    var += (s - out.stats.mean) * (s - out.stats.mean);
  }
  out.stats.stddev = std::sqrt(var / n);
}

void Simulator::measure_batch_into(const compiler::CompiledProgram& prog,
                                   std::span<const front::Bindings* const> bindings,
                                   std::span<const compiler::DataLayout* const> layouts,
                                   const SimOptions& options, int runs, Executor& arena,
                                   std::vector<MeasuredResult>& out) const {
  out.resize(bindings.size());
  // One SimResult scratch for the whole batch: it cycles buffers with the
  // arena lane after lane, so a 64-lane measured chunk allocates (at most)
  // one result's worth of vectors instead of 64.
  SimResult scratch;
  for (std::size_t i = 0; i < bindings.size(); ++i) {
    measure_into(prog, *bindings[i], *layouts[i], options, runs, arena, out[i], scratch);
  }
}

}  // namespace hpf90d::sim
