#include "sim/executor.hpp"

#include <algorithm>
#include <cmath>
#include <span>
#include <utility>

#include "compiler/opcount.hpp"
#include "support/diagnostics.hpp"

namespace hpf90d::sim {

using compiler::SpmdKind;
using compiler::SpmdNode;
using front::Expr;
using front::ExprKind;
using support::CompileError;

Executor::Executor(const compiler::CompiledProgram& prog,
                   const compiler::DataLayout& layout,
                   const machine::MachineModel& machine, const SimOptions& options,
                   const front::Bindings& bindings) {
  rebind(prog, layout, machine, options, bindings);
}

void Executor::rebind(const compiler::CompiledProgram& prog,
                      const compiler::DataLayout& layout,
                      const machine::MachineModel& machine, const SimOptions& options,
                      const front::Bindings& bindings) {
  prog_ = &prog;
  if (prog.node_ops.size() == static_cast<std::size_t>(prog.node_count)) {
    node_ops_ = &prog.node_ops;
  } else {
    // Hand-built program that bypassed the pipeline: price it here.
    fallback_node_ops_ = compiler::collect_node_ops(prog);
    node_ops_ = &fallback_node_ops_;
  }
  layout_ = &layout;
  machine_ = &machine;
  bindings_ = &bindings;
  options_ = options;
  nprocs_ = layout.nprocs();
  env_.reset(prog.symbols.size());
  storage_.rebind(prog.symbols, layout);
  cost_.emplace(machine.node());
  comm_model_ = machine::CommModel(machine.node().comm);
  network_.emplace(nprocs_, layout.grid().shape, machine.node().comm,
                   SimNetworkOptions{options.contention});
  noise_ = NoiseModel(options.seed, options.noise);
  clock_.assign(static_cast<std::size_t>(nprocs_), 0.0);
  metrics_.assign(static_cast<std::size_t>(prog.node_count), NodeMetric{});
  // Capacity-preserving reset: run_into recycles the previous result's
  // buffers through this arena, so clearing (not reassigning) keeps the
  // steady state allocation-free.
  result_.total = result_.comp = result_.comm = result_.overhead = 0;
  result_.proc_clock.clear();
  result_.per_node.clear();
  result_.printed.clear();
  result_.scalars.clear();
  compiler::seed_environment(env_, prog_->symbols, bindings);
  for (int p = 0; p < nprocs_; ++p) {
    clock_[static_cast<std::size_t>(p)] = noise_.startup_skew();
  }
}

void Executor::rebind_run(std::uint64_t seed) {
  // Mirrors the run-variant tail of rebind(), in the same order. The pieces
  // skipped (node-op tables, cost_/comm_model_/network_ construction,
  // storage_.rebind) are pure functions of the configuration — network_
  // only needs its occupancy cleared, storage only its written arrays
  // (ensure() recreates the deterministic fill bit-identically).
  options_.seed = seed;
  env_.reset(prog_->symbols.size());
  storage_.reset_written();
  network_->reset();
  noise_ = NoiseModel(seed, options_.noise);
  metrics_.assign(static_cast<std::size_t>(prog_->node_count), NodeMetric{});
  result_.total = result_.comp = result_.comm = result_.overhead = 0;
  result_.proc_clock.clear();
  result_.per_node.clear();
  result_.printed.clear();
  result_.scalars.clear();
  compiler::seed_environment(env_, prog_->symbols, *bindings_);
  for (int p = 0; p < nprocs_; ++p) {
    clock_[static_cast<std::size_t>(p)] = noise_.startup_skew();
  }
}

SimResult Executor::run() {
  SimResult out;
  run_into(out);
  return out;
}

void Executor::run_into(SimResult& out) {
  exec_seq(prog_->root->children);

  result_.total = *std::max_element(clock_.begin(), clock_.end());
  result_.proc_clock = clock_;
  result_.per_node = metrics_;
  for (auto& m : result_.per_node) {
    m.comp /= nprocs_;
    m.comm /= nprocs_;
    m.overhead /= nprocs_;
  }
  for (const auto& m : result_.per_node) {
    result_.comp += m.comp;
    result_.comm += m.comm;
    result_.overhead += m.overhead;
  }
  for (const auto& sym : prog_->symbols.symbols()) {
    if (sym.kind == front::SymbolKind::Scalar ||
        sym.kind == front::SymbolKind::Param) {
      const int id = prog_->symbols.find(sym.name);
      if (env_.is_defined(id)) result_.scalars[sym.name] = env_.value(id);
    }
  }
  // Hand the result over and adopt the caller's old buffers as the next
  // rebind's scratch (rebind clears them capacity-preservingly).
  std::swap(out, result_);
}

// ---------------------------------------------------------------------------
// attribution helpers
// ---------------------------------------------------------------------------

void Executor::charge_comp(int node_id, int proc, double t) {
  clock_[static_cast<std::size_t>(proc)] += t;
  metric(node_id).comp += t;
}
void Executor::charge_comm(int node_id, int proc, double t) {
  clock_[static_cast<std::size_t>(proc)] += t;
  metric(node_id).comm += t;
}
void Executor::charge_overhead(int node_id, int proc, double t) {
  clock_[static_cast<std::size_t>(proc)] += t;
  metric(node_id).overhead += t;
}
void Executor::charge_all_comp(int node_id, double t) {
  for (int p = 0; p < nprocs_; ++p) charge_comp(node_id, p, t);
}
void Executor::charge_all_overhead(int node_id, double t) {
  for (int p = 0; p < nprocs_; ++p) charge_overhead(node_id, p, t);
}

// ---------------------------------------------------------------------------
// control flow
// ---------------------------------------------------------------------------

void Executor::exec_seq(const std::vector<compiler::SpmdNodePtr>& nodes) {
  for (const auto& n : nodes) exec(*n);
}

void Executor::exec(const SpmdNode& n) {
  metric(n.id).visits++;
  switch (n.kind) {
    case SpmdKind::Seq: exec_seq(n.children); break;
    case SpmdKind::ScalarAssign: exec_scalar_assign(n); break;
    case SpmdKind::LocalLoop: exec_local_loop(n); break;
    case SpmdKind::OverlapComm: exec_overlap(n); break;
    case SpmdKind::CShiftComm: exec_cshift(n); break;
    case SpmdKind::GatherComm:
    case SpmdKind::ScatterComm: exec_irregular(n); break;
    case SpmdKind::SliceBroadcast: exec_slice_bcast(n); break;
    case SpmdKind::Reduce: exec_reduce(n); break;
    case SpmdKind::DoLoop: exec_do(n); break;
    case SpmdKind::WhileLoop: exec_while(n); break;
    case SpmdKind::IfBlock: exec_if(n); break;
    case SpmdKind::HostIO: exec_hostio(n); break;
  }
}

void Executor::exec_scalar_assign(const SpmdNode& n) {
  const double v = compiler::eval_scalar(*n.rhs, env_, &storage_, prog_->symbols);
  double stored = v;
  if (n.lhs->type == front::TypeBase::Integer) stored = std::trunc(v);
  env_.define(n.lhs->symbol, stored);
  const double t = cost_->scalar_cost(body_ops(n)) + machine_->node().proc.t_store;
  // replicated computation: every node executes the same statement
  for (int p = 0; p < nprocs_; ++p) {
    charge_comp(n.id, p, t * noise_.compute_factor());
  }
}

void Executor::exec_do(const SpmdNode& n) {
  const long long lo = compiler::eval_int(*n.do_lo, env_, &storage_, prog_->symbols);
  const long long hi = compiler::eval_int(*n.do_hi, env_, &storage_, prog_->symbols);
  const long long step =
      n.do_step ? compiler::eval_int(*n.do_step, env_, &storage_, prog_->symbols) : 1;
  if (step == 0) throw CompileError(n.loc, "do loop step is zero");
  charge_all_overhead(n.id, machine_->node().proc.loop_setup);
  for (long long v = lo; step > 0 ? v <= hi : v >= hi; v += step) {
    env_.define(n.do_symbol, static_cast<double>(v));
    charge_all_overhead(n.id, machine_->node().proc.loop_overhead);
    exec_seq(n.children);
  }
}

void Executor::exec_while(const SpmdNode& n) {
  long long trips = 0;
  while (true) {
    const double c = compiler::eval_scalar(*n.mask, env_, &storage_, prog_->symbols);
    charge_all_overhead(n.id, machine_->node().proc.branch_overhead +
                                  cost_->scalar_cost(cond_ops(n)));
    if (c == 0.0) break;
    if (++trips > options_.max_while_trips) {
      throw CompileError(n.loc, "do while exceeded the simulation trip limit");
    }
    exec_seq(n.children);
  }
}

void Executor::exec_if(const SpmdNode& n) {
  const double c = compiler::eval_scalar(*n.mask, env_, &storage_, prog_->symbols);
  charge_all_overhead(n.id, machine_->node().proc.branch_overhead);
  if (c != 0.0) {
    exec_seq(n.children);
  } else {
    exec_seq(n.else_children);
  }
}

void Executor::exec_hostio(const SpmdNode& n) {
  long long bytes = 16;  // service request framing
  for (const auto& arg : n.io_args) {
    if (arg->rank == 0) {
      const double v = compiler::eval_scalar(*arg, env_, &storage_, prog_->symbols);
      result_.printed[arg->str()] = v;
      bytes += 16;
    } else {
      bytes += storage_.total_elements(arg->symbol) *
               front::type_size_bytes(arg->type);
    }
  }
  const auto& io = machine_->node().io;
  charge_comm(n.id, 0, io.host_latency + io.host_per_byte * static_cast<double>(bytes));
}

// ---------------------------------------------------------------------------
// iteration helpers
// ---------------------------------------------------------------------------

long long Executor::ResolvedSpace::points() const {
  long long total = 1;
  for (std::size_t d = 0; d < lo.size(); ++d) {
    const long long count =
        step[d] > 0 ? (hi[d] >= lo[d] ? (hi[d] - lo[d]) / step[d] + 1 : 0)
                    : (lo[d] >= hi[d] ? (lo[d] - hi[d]) / (-step[d]) + 1 : 0);
    total *= count;
  }
  return total;
}

Executor::ResolvedSpace Executor::resolve_space(
    const std::vector<compiler::IterIndex>& space) {
  ResolvedSpace out;
  for (const auto& ix : space) {
    out.lo.push_back(compiler::eval_int(*ix.lo, env_, &storage_, prog_->symbols));
    out.hi.push_back(compiler::eval_int(*ix.hi, env_, &storage_, prog_->symbols));
    out.step.push_back(
        ix.stride ? compiler::eval_int(*ix.stride, env_, &storage_, prog_->symbols) : 1);
  }
  return out;
}

int Executor::owner_of_point(const SpmdNode& n, const compiler::ArrayMap* home,
                             std::span<const long long> point) const {
  if (home == nullptr) return -1;
  std::vector<int>& coords = owner_coords_scratch_;
  coords.assign(static_cast<std::size_t>(layout_->grid().rank()), 0);
  for (std::size_t h = 0; h < n.home_driver.size(); ++h) {
    const int drv = n.home_driver[h];
    if (drv < 0) continue;
    const auto& dd = home->dims[h];
    if (dd.grid_dim < 0) continue;
    const long long g = point[static_cast<std::size_t>(drv)] + n.home_driver_offset[h];
    coords[static_cast<std::size_t>(dd.grid_dim)] = dd.owner_coord(g);
  }
  return layout_->grid().linear(coords);
}

namespace {

void scan_subscript(const Expr& x, int inner_symbol, bool& uses_inner, bool& has_ref) {
  if (x.kind == ExprKind::Var && x.symbol == inner_symbol) uses_inner = true;
  if (x.kind == ExprKind::ArrayRef) has_ref = true;
  for (const auto& a : x.args) scan_subscript(*a, inner_symbol, uses_inner, has_ref);
  for (const auto& ss : x.subs) {
    if (ss.scalar) scan_subscript(*ss.scalar, inner_symbol, uses_inner, has_ref);
  }
}

/// Collects the memory-access patterns of every array reference in `e`.
/// `inner_symbol` is the innermost loop index; the stride is the distance
/// (in elements, row-major) between consecutive accesses.
void collect_accesses(const Expr& e, int inner_symbol, const Storage& storage,
                      const front::SymbolTable& symbols,
                      std::vector<AccessPattern>& out, bool store_ctx) {
  if (e.kind == ExprKind::ArrayRef) {
    AccessPattern ap;
    ap.symbol = e.symbol;
    ap.elem_bytes = front::type_size_bytes(e.type);
    ap.is_store = store_ctx;
    const auto& extents = storage.extents(e.symbol);
    ap.array_bytes = ap.elem_bytes;
    for (long long ext : extents) ap.array_bytes *= ext;
    long long stride = 0;
    bool irregular = false;
    long long dim_stride = 1;
    for (std::size_t d = e.subs.size(); d-- > 0;) {
      const auto& sub = e.subs[d];
      if (sub.kind == front::Subscript::Kind::Scalar) {
        const Expr& s = *sub.scalar;
        bool uses_inner = false;
        bool has_ref = false;
        scan_subscript(s, inner_symbol, uses_inner, has_ref);
        if (has_ref && uses_inner) irregular = true;
        else if (uses_inner) stride += dim_stride;  // coefficient ~1 dominant case
      }
      if (d < extents.size()) dim_stride *= extents[d];
    }
    ap.stride_elements = irregular ? -1 : std::max<long long>(stride, 0);
    if (ap.stride_elements == 0 && !irregular) ap.stride_elements = 0;  // loop invariant
    out.push_back(ap);
  }
  for (const auto& a : e.args) collect_accesses(*a, inner_symbol, storage, symbols, out, false);
  for (const auto& s : e.subs) {
    if (s.scalar) collect_accesses(*s.scalar, inner_symbol, storage, symbols, out, false);
  }
}

}  // namespace

std::vector<AccessPattern> Executor::access_patterns(const SpmdNode& n) const {
  std::vector<AccessPattern> out;
  const int inner = n.inner          ? n.inner->index.symbol
                    : !n.space.empty() ? n.space.back().symbol
                                       : -1;
  if (n.inner) {
    collect_accesses(*n.inner->arg, inner, storage_, prog_->symbols, out, false);
  } else if (n.rhs) {
    collect_accesses(*n.rhs, inner, storage_, prog_->symbols, out, false);
  }
  if (n.mask) collect_accesses(*n.mask, inner, storage_, prog_->symbols, out, false);
  if (n.lhs && n.lhs->kind == ExprKind::ArrayRef) {
    collect_accesses(*n.lhs, inner, storage_, prog_->symbols, out, true);
  }
  if (n.reduce_arg) collect_accesses(*n.reduce_arg, inner, storage_, prog_->symbols, out, false);
  return out;
}

long long Executor::working_set_bytes(const Expr& lhs, const Expr* rhs,
                                      const ResolvedSpace& space) const {
  // footprint ~ iteration count x (distinct arrays touched) x element size
  long long arrays = 1;
  if (rhs != nullptr) compiler::count_array_refs(*rhs, arrays);
  const long long iters = std::max<long long>(1, space.points());
  return iters * arrays * front::type_size_bytes(lhs.type) / std::max(1, nprocs_);
}

// ---------------------------------------------------------------------------
// local computation
// ---------------------------------------------------------------------------

void Executor::exec_local_loop(const SpmdNode& n) {
  const ResolvedSpace space = resolve_space(n.space);
  if (space.points() <= 0) return;
  const compiler::ArrayMap* home =
      n.home_symbol >= 0 ? layout_->map_for(n.home_symbol) : nullptr;

  // per-proc iteration and mask-true counts (slot 0 used when replicated)
  const bool replicated = home == nullptr;
  std::vector<long long> iters(static_cast<std::size_t>(nprocs_), 0);
  std::vector<long long> trues(static_cast<std::size_t>(nprocs_), 0);

  // inner-reduction resolved bounds (loop-invariant by construction)
  long long inner_lo = 0, inner_hi = -1;
  if (n.inner) {
    inner_lo = compiler::eval_int(*n.inner->index.lo, env_, &storage_, prog_->symbols);
    inner_hi = compiler::eval_int(*n.inner->index.hi, env_, &storage_, prog_->symbols);
  }

  // functional pass: evaluate all RHS first (forall semantics), then commit
  struct PendingStore {
    std::size_t offset;
    double value;
  };
  std::vector<PendingStore> pending;
  pending.reserve(static_cast<std::size_t>(std::min<long long>(space.points(), 1 << 20)));
  const int lhs_symbol = n.lhs->symbol;
  (void)storage_.raw(lhs_symbol);  // ensure allocated

  const std::size_t rank = space.lo.size();
  std::vector<long long> point = space.lo;
  std::vector<long long> lhs_idx(n.lhs->subs.size());
  bool done = space.points() == 0;
  while (!done) {
    for (std::size_t d = 0; d < rank; ++d) {
      env_.define(n.space[d].symbol, static_cast<double>(point[d]));
    }
    const int owner = replicated ? -1 : owner_of_point(n, home, point);
    if (owner >= 0) {
      ++iters[static_cast<std::size_t>(owner)];
    }
    bool mask_true = true;
    if (n.mask) {
      mask_true =
          compiler::eval_scalar(*n.mask, env_, &storage_, prog_->symbols) != 0.0;
    }
    if (mask_true) {
      if (owner >= 0) ++trues[static_cast<std::size_t>(owner)];
      double value;
      if (n.inner) {
        const bool is_prod = n.inner->op == "product";
        double acc = is_prod ? 1.0 : n.inner->op == "maxval" ? -1e300
                               : n.inner->op == "minval"     ? 1e300
                                                             : 0.0;
        for (long long j = inner_lo; j <= inner_hi; ++j) {
          env_.define(n.inner->index.symbol, static_cast<double>(j));
          const double v =
              compiler::eval_scalar(*n.inner->arg, env_, &storage_, prog_->symbols);
          if (n.inner->op == "sum") acc += v;
          else if (is_prod) acc *= v;
          else if (n.inner->op == "maxval") acc = std::max(acc, v);
          else acc = std::min(acc, v);
        }
        value = acc;
      } else {
        value = compiler::eval_scalar(*n.rhs, env_, &storage_, prog_->symbols);
      }
      if (n.lhs->type == front::TypeBase::Integer) value = std::trunc(value);
      for (std::size_t d = 0; d < lhs_idx.size(); ++d) {
        lhs_idx[d] = compiler::eval_int(*n.lhs->subs[d].scalar, env_, &storage_,
                                        prog_->symbols);
      }
      pending.push_back(PendingStore{storage_.offset(lhs_symbol, lhs_idx), value});
    }
    // odometer
    done = true;
    for (std::size_t d = rank; d-- > 0;) {
      point[d] += space.step[d];
      const bool in_range =
          space.step[d] > 0 ? point[d] <= space.hi[d] : point[d] >= space.hi[d];
      if (in_range) {
        done = false;
        break;
      }
      point[d] = space.lo[d];
    }
  }
  auto raw = storage_.raw(lhs_symbol);
  for (const auto& st : pending) raw[st.offset] = st.value;

  // --- timing -----------------------------------------------------------------
  const compiler::OpCounts& ops = body_ops(n);
  const compiler::OpCounts& mask_ops = cond_ops(n);
  std::vector<AccessPattern> accesses = access_patterns(n);
  for (auto& a : accesses) a.array_bytes /= std::max(1, nprocs_);
  const long long ws = working_set_bytes(*n.lhs, n.rhs ? n.rhs.get() : n.inner->arg.get(),
                                         space);
  const auto& p = machine_->node().proc;

  const long long total_pts = space.points();
  for (int proc = 0; proc < nprocs_; ++proc) {
    const long long it = replicated ? total_pts : iters[static_cast<std::size_t>(proc)];
    if (it == 0) continue;
    const long long tr = replicated ? total_pts : trues[static_cast<std::size_t>(proc)];
    const double frac = n.mask ? static_cast<double>(tr) / static_cast<double>(it) : 1.0;
    const LoopBodyCost body =
        cost_->body_cost(ops, accesses, ws, frac, n.mask ? &mask_ops : nullptr);
    double per_iter = body.per_iteration;
    if (n.inner) {
      const long long m = std::max<long long>(0, inner_hi - inner_lo + 1);
      per_iter = body.setup + static_cast<double>(m) * (body.per_iteration + body.per_iter_overhead) +
                 p.t_store;
    }
    const double comp_t = static_cast<double>(it) * per_iter * noise_.compute_factor();
    const double ovhd_t = body.setup + static_cast<double>(it) * body.per_iter_overhead;
    charge_comp(n.id, proc, comp_t);
    charge_overhead(n.id, proc, ovhd_t);
  }
}

// ---------------------------------------------------------------------------
// reductions
// ---------------------------------------------------------------------------

void Executor::exec_reduce(const SpmdNode& n) {
  const ResolvedSpace space = resolve_space(n.space);
  const compiler::ArrayMap* home =
      n.home_symbol >= 0 ? layout_->map_for(n.home_symbol) : nullptr;
  const bool replicated = home == nullptr;
  std::vector<long long> iters(static_cast<std::size_t>(nprocs_), 0);

  const bool is_prod = n.reduce_op == "product";
  const bool is_max = n.reduce_op == "maxval" || n.reduce_op == "maxloc";
  const bool is_min = n.reduce_op == "minval";
  double acc = is_prod ? 1.0 : is_max ? -1e300 : is_min ? 1e300 : 0.0;
  long long arg_at = 0;

  const std::size_t rank = space.lo.size();
  std::vector<long long> point = space.lo;
  bool done = space.points() <= 0;
  while (!done) {
    for (std::size_t d = 0; d < rank; ++d) {
      env_.define(n.space[d].symbol, static_cast<double>(point[d]));
    }
    if (!replicated) {
      const int owner = owner_of_point(n, home, point);
      if (owner >= 0) ++iters[static_cast<std::size_t>(owner)];
    }
    const double v =
        compiler::eval_scalar(*n.reduce_arg, env_, &storage_, prog_->symbols);
    if (n.reduce_op == "sum") acc += v;
    else if (is_prod) acc *= v;
    else if (is_max) {
      if (v > acc) {
        acc = v;
        arg_at = point[0];
      }
    } else if (is_min) acc = std::min(acc, v);

    done = true;
    for (std::size_t d = rank; d-- > 0;) {
      point[d] += space.step[d];
      const bool in_range =
          space.step[d] > 0 ? point[d] <= space.hi[d] : point[d] >= space.hi[d];
      if (in_range) {
        done = false;
        break;
      }
      point[d] = space.lo[d];
    }
  }
  env_.define(n.reduce_result,
              n.reduce_op == "maxloc" ? static_cast<double>(arg_at) : acc);

  // --- timing: local partial reduction ------------------------------------
  const compiler::OpCounts& ops = body_ops(n);
  std::vector<AccessPattern> accesses = access_patterns(n);
  for (auto& a : accesses) a.array_bytes /= std::max(1, nprocs_);
  const long long ws = working_set_bytes(*n.reduce_arg, n.reduce_arg.get(), space);
  const LoopBodyCost body = cost_->body_cost(ops, accesses, ws);
  const long long total_pts = std::max<long long>(space.points(), 0);
  for (int proc = 0; proc < nprocs_; ++proc) {
    const long long it = replicated ? total_pts : iters[static_cast<std::size_t>(proc)];
    if (it == 0) continue;
    charge_comp(n.id, proc,
                static_cast<double>(it) * body.per_iteration * noise_.compute_factor());
    charge_overhead(n.id, proc,
                    body.setup + static_cast<double>(it) * body.per_iter_overhead);
  }

  // --- combine across the cube ------------------------------------------------
  if (!replicated && nprocs_ > 1) {
    const int elem = n.reduce_op == "maxloc" ? 12 : 8;  // value (+ index)
    const double op_t = machine_->node().proc.t_fadd +
                        machine_->node().comm.coll_stage_setup;
    collective_stages(n.id, elem, op_t);
  }
}

void Executor::collective_stages(int node_id, long long bytes, double per_stage_extra) {
  if (nprocs_ <= 1) return;
  int stages = 0;
  while ((1 << stages) < nprocs_) ++stages;
  if (options_.collective == machine::CollectiveAlgo::Linear) {
    // everyone sends to node 0, then node 0 broadcasts back
    for (int p = 1; p < nprocs_; ++p) {
      const double t0 = clock_[static_cast<std::size_t>(p)];
      const double arr = network_->send(p, 0, bytes, t0, noise_);
      const double before = clock_[0];
      clock_[0] = std::max(clock_[0], arr) + per_stage_extra;
      metric(node_id).comm += (clock_[0] - before) + (arr - t0);
      clock_[static_cast<std::size_t>(p)] = t0 + machine_->node().comm.latency_short;
    }
    for (int p = 1; p < nprocs_; ++p) {
      const double arr = network_->send(0, p, bytes, clock_[0], noise_);
      const double before = clock_[static_cast<std::size_t>(p)];
      clock_[static_cast<std::size_t>(p)] = std::max(before, arr);
      metric(node_id).comm += clock_[static_cast<std::size_t>(p)] - before;
    }
    return;
  }
  for (int s = 0; s < stages; ++s) {
    for (int p = 0; p < nprocs_; ++p) {
      const int q = p ^ (1 << s);
      if (q <= p || q >= nprocs_) continue;
      const double t = std::max(clock_[static_cast<std::size_t>(p)],
                                clock_[static_cast<std::size_t>(q)]);
      const double arr_q = network_->send(p, q, bytes, t, noise_);
      const double arr_p = network_->send(q, p, bytes, t, noise_);
      const double end = std::max(arr_p, arr_q) + per_stage_extra;
      metric(node_id).comm += (end - clock_[static_cast<std::size_t>(p)]) +
                              (end - clock_[static_cast<std::size_t>(q)]);
      clock_[static_cast<std::size_t>(p)] = end;
      clock_[static_cast<std::size_t>(q)] = end;
    }
  }
}

// ---------------------------------------------------------------------------
// communication nodes
// ---------------------------------------------------------------------------

void Executor::exec_overlap(const SpmdNode& n) {
  const compiler::ArrayMap* map = layout_->map_for(n.comm_array);
  if (map == nullptr) return;
  const auto& dd = map->dims[static_cast<std::size_t>(n.comm_dim)];
  if (dd.grid_dim < 0 || dd.nprocs <= 1) return;  // dimension is serial here

  // A re-issued exchange of unchanged data finds last iteration's message
  // already buffered at the receiver: in steady state only packing and wire
  // occupancy remain (message queues absorb the latency).
  if (n.comm_src_invariant && metric(n.id).visits > 1) {
    const int elem_sz = front::type_size_bytes(prog_->symbols.at(n.comm_array).type);
    const bool strided_slab = n.comm_dim != 0;
    const long long width_s = std::min<long long>(std::llabs(n.comm_offset),
                                                  std::max<long long>(dd.block, 1));
    for (int p = 0; p < nprocs_; ++p) {
      const std::span<const int> coords = layout_->proc_coords(p);
      const int k = coords[static_cast<std::size_t>(dd.grid_dim)];
      const int dir0 = n.comm_offset > 0 ? +1 : -1;
      const bool has_partner = dir0 > 0 ? k + 1 < dd.nprocs : k > 0;
      if (!has_partner) continue;
      long long perp = 1;
      for (std::size_t j = 0; j < map->dims.size(); ++j) {
        if (static_cast<int>(j) == n.comm_dim) continue;
        const auto& od = map->dims[j];
        const int c = od.grid_dim >= 0 ? coords[static_cast<std::size_t>(od.grid_dim)] : 0;
        perp *= od.local_count(c);
      }
      const long long bytes = perp * width_s * elem_sz;
      const double t = 2.0 * comm_model_.pack(bytes, strided_slab) +
                       machine_->node().comm.per_byte * static_cast<double>(bytes);
      charge_comm(n.id, p, t * noise_.comm_factor());
    }
    return;
  }

  const int elem = front::type_size_bytes(prog_->symbols.at(n.comm_array).type);
  const bool strided = n.comm_dim != 0;  // row-major: outermost dim slabs are contiguous

  // snapshot departures, then apply arrivals
  std::vector<double> depart(static_cast<std::size_t>(nprocs_), -1.0);
  std::vector<long long> send_bytes(static_cast<std::size_t>(nprocs_), 0);
  const int dir = n.comm_offset > 0 ? +1 : -1;

  auto slab_elements = [&](int proc) -> long long {
    const std::span<const int> coords = layout_->proc_coords(proc);
    long long perp = 1;
    for (std::size_t j = 0; j < map->dims.size(); ++j) {
      if (static_cast<int>(j) == n.comm_dim) continue;
      const auto& od = map->dims[j];
      const int c = od.grid_dim >= 0 ? coords[static_cast<std::size_t>(od.grid_dim)] : 0;
      perp *= od.local_count(c);
    }
    const int cc = coords[static_cast<std::size_t>(dd.grid_dim)];
    const long long width =
        dd.kind == front::DistKind::Cyclic
            ? dd.local_count(cc)
            : std::min<long long>(std::llabs(n.comm_offset),
                                  std::max<long long>(dd.block, 1));
    return perp * width;
  };

  // sender q (coord k) sends to receiver p (coord k-dir): receiver needs
  // elements offset `dir` beyond its boundary
  for (int q = 0; q < nprocs_; ++q) {
    const std::span<const int> coords = layout_->proc_coords(q);
    const int k = coords[static_cast<std::size_t>(dd.grid_dim)];
    const int kr = k - dir;
    if (kr < 0 || kr >= dd.nprocs) continue;
    const long long bytes = slab_elements(q) * elem;
    if (bytes == 0) continue;
    const double pack = comm_model_.pack(bytes, strided);
    send_bytes[static_cast<std::size_t>(q)] = bytes;
    depart[static_cast<std::size_t>(q)] = clock_[static_cast<std::size_t>(q)] + pack;
  }
  std::vector<double> new_clock = clock_;
  for (int q = 0; q < nprocs_; ++q) {
    if (depart[static_cast<std::size_t>(q)] < 0) continue;
    const std::span<const int> qc = layout_->proc_coords(q);
    std::vector<int>& coords = coords_scratch_;
    coords.assign(qc.begin(), qc.end());
    coords[static_cast<std::size_t>(dd.grid_dim)] -= dir;
    const int p = layout_->grid().linear(coords);
    const double arr = network_->send(q, p, send_bytes[static_cast<std::size_t>(q)],
                                     depart[static_cast<std::size_t>(q)], noise_);
    const double unpack =
        comm_model_.pack(send_bytes[static_cast<std::size_t>(q)], strided);
    new_clock[static_cast<std::size_t>(p)] =
        std::max(new_clock[static_cast<std::size_t>(p)], arr + unpack);
    new_clock[static_cast<std::size_t>(q)] = std::max(
        new_clock[static_cast<std::size_t>(q)], depart[static_cast<std::size_t>(q)]);
  }
  for (int p = 0; p < nprocs_; ++p) {
    const double dt = new_clock[static_cast<std::size_t>(p)] -
                      clock_[static_cast<std::size_t>(p)];
    if (dt > 0) charge_comm(n.id, p, dt);
  }
}

void Executor::exec_cshift(const SpmdNode& n) {
  const long long shift =
      compiler::eval_int(*n.comm_amount, env_, &storage_, prog_->symbols);
  storage_.cshift_into(n.comm_temp, n.comm_array, n.comm_dim, shift);
  if (shift == 0) return;

  const compiler::ArrayMap* map = layout_->map_for(n.comm_array);
  const int elem = front::type_size_bytes(prog_->symbols.at(n.comm_array).type);
  const auto& mem = machine_->node().mem;

  if (map == nullptr || map->dims[static_cast<std::size_t>(n.comm_dim)].grid_dim < 0 ||
      map->dims[static_cast<std::size_t>(n.comm_dim)].nprocs <= 1) {
    // serial dimension: local circular copy only
    const long long total = storage_.total_elements(n.comm_array) /
                            std::max(1LL, static_cast<long long>(nprocs_));
    const double t = static_cast<double>(total * elem) / mem.mem_bandwidth;
    for (int p = 0; p < nprocs_; ++p) charge_comm(n.id, p, t);
    return;
  }

  const auto& dd = map->dims[static_cast<std::size_t>(n.comm_dim)];
  const bool strided = n.comm_dim != 0;
  const long long w = std::min<long long>(std::llabs(shift), dd.block);
  const int dir = shift > 0 ? +1 : -1;

  std::vector<double> depart(static_cast<std::size_t>(nprocs_), -1.0);
  std::vector<long long> msg_bytes(static_cast<std::size_t>(nprocs_), 0);
  std::vector<long long> local_bytes(static_cast<std::size_t>(nprocs_), 0);
  for (int q = 0; q < nprocs_; ++q) {
    const std::span<const int> coords = layout_->proc_coords(q);
    long long perp = 1;
    for (std::size_t j = 0; j < map->dims.size(); ++j) {
      if (static_cast<int>(j) == n.comm_dim) continue;
      const auto& od = map->dims[j];
      const int c = od.grid_dim >= 0 ? coords[static_cast<std::size_t>(od.grid_dim)] : 0;
      perp *= od.local_count(c);
    }
    const long long own =
        dd.local_count(coords[static_cast<std::size_t>(dd.grid_dim)]);
    msg_bytes[static_cast<std::size_t>(q)] = perp * w * elem;
    local_bytes[static_cast<std::size_t>(q)] = perp * std::max<long long>(own - w, 0) * elem;
    depart[static_cast<std::size_t>(q)] =
        clock_[static_cast<std::size_t>(q)] +
        comm_model_.pack(msg_bytes[static_cast<std::size_t>(q)], strided);
  }
  std::vector<double> new_clock = clock_;
  for (int q = 0; q < nprocs_; ++q) {
    if (msg_bytes[static_cast<std::size_t>(q)] == 0) continue;
    // circular: wrap at the grid edges
    const std::span<const int> qc = layout_->proc_coords(q);
    std::vector<int>& coords = coords_scratch_;
    coords.assign(qc.begin(), qc.end());
    int& k = coords[static_cast<std::size_t>(dd.grid_dim)];
    k = (k - dir % dd.nprocs + dd.nprocs) % dd.nprocs;
    const int p = layout_->grid().linear(coords);
    const double arr = network_->send(q, p, msg_bytes[static_cast<std::size_t>(q)],
                                     depart[static_cast<std::size_t>(q)], noise_);
    const double local_copy =
        static_cast<double>(local_bytes[static_cast<std::size_t>(p)]) / mem.mem_bandwidth;
    new_clock[static_cast<std::size_t>(p)] =
        std::max(new_clock[static_cast<std::size_t>(p)] + local_copy, arr);
    new_clock[static_cast<std::size_t>(q)] =
        std::max(new_clock[static_cast<std::size_t>(q)],
                 depart[static_cast<std::size_t>(q)]);
  }
  for (int p = 0; p < nprocs_; ++p) {
    const double dt =
        new_clock[static_cast<std::size_t>(p)] - clock_[static_cast<std::size_t>(p)];
    if (dt > 0) charge_comm(n.id, p, dt);
  }
}

void Executor::exec_irregular(const SpmdNode& n) {
  if (nprocs_ <= 1) return;
  const ResolvedSpace space = resolve_space(n.space);
  const long long total = std::max<long long>(space.points(), 0);
  if (total == 0) return;
  const int elem = front::type_size_bytes(prog_->symbols.at(n.comm_array).type);
  const auto& comm = machine_->node().comm;

  // per-processor share (block partition of the iteration space)
  const long long share = (total + nprocs_ - 1) / nprocs_;
  const long long remote = share * (nprocs_ - 1) / nprocs_;
  const long long per_partner = std::max<long long>(1, remote / (nprocs_ - 1));

  // index translation + pack
  for (int p = 0; p < nprocs_; ++p) {
    charge_comm(n.id, p,
                comm.per_element_index * static_cast<double>(share) +
                    comm_model_.pack(remote * elem, true));
  }
  // staged pairwise exchange rounds
  for (int r = 1; r < nprocs_; ++r) {
    std::vector<double> snapshot = clock_;
    for (int p = 0; p < nprocs_; ++p) {
      const int q = (p + r) % nprocs_;
      const double arr = network_->send(p, q, per_partner * elem,
                                       snapshot[static_cast<std::size_t>(p)], noise_);
      const double before = clock_[static_cast<std::size_t>(q)];
      clock_[static_cast<std::size_t>(q)] = std::max(before, arr);
      metric(n.id).comm += clock_[static_cast<std::size_t>(q)] - before;
    }
  }
}

void Executor::exec_slice_bcast(const SpmdNode& n) {
  const compiler::ArrayMap* map = layout_->map_for(n.comm_array);
  if (map == nullptr || nprocs_ <= 1) return;
  const int elem = front::type_size_bytes(prog_->symbols.at(n.comm_array).type);
  const long long total = storage_.total_elements(n.comm_array);
  const long long dim_extent = map->dims[static_cast<std::size_t>(n.comm_dim)].extent;
  const long long slice = total / std::max<long long>(dim_extent, 1);
  collective_stages(n.id, slice * elem, machine_->node().comm.coll_stage_setup);
}

}  // namespace hpf90d::sim
