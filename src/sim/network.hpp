// network.hpp — event-driven hypercube network.
//
// Messages follow e-cube routes; every directed link has an availability
// time, so concurrent traffic through shared links queues (contention) —
// one of the second-order effects the interpretation engine's contention-
// free formulas abstract away.
#pragma once

#include <vector>

#include "machine/comm_model.hpp"
#include "machine/topology.hpp"
#include "sim/noise.hpp"

namespace hpf90d::sim {

struct SimNetworkOptions {
  bool contention = true;
};

class SimNetwork {
 public:
  SimNetwork(int nprocs, std::span<const int> grid_shape,
             const machine::CommComponent& comm, SimNetworkOptions options);

  /// Sends `bytes` from grid-linear processor `from` at time `depart`;
  /// returns arrival time at `to`. Updates link occupancy.
  double send(int from, int to, long long bytes, double depart, NoiseModel& noise);

  [[nodiscard]] int hops_between(int from, int to) const;

  void reset();

 private:
  machine::Hypercube cube_;
  machine::CommComponent comm_;
  std::vector<int> proc_to_node_;   // grid-linear id -> physical cube node
  std::vector<double> link_free_;   // directed link -> next availability
  SimNetworkOptions options_;
};

}  // namespace hpf90d::sim
