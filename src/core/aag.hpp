// aag.hpp — the Application Abstraction Graph and Synchronized AAG.
//
// The abstraction parse (paper §4.2) intercepts the SPMD program structure
// from compilation phase 1 and abstracts its execution and communication
// structure: AAUs for every construct, a communication table recording the
// specification and status of every communication operation, and
// synchronization edges superimposed on the control structure (SAAG).
#pragma once

#include <map>
#include <string>
#include <vector>

#include "core/aau.hpp"

namespace hpf90d::core {

struct AAU {
  int id = -1;  // == SpmdNode::id (stable mapping back to the IR)
  AAUKind kind = AAUKind::Seq;
  front::SourceLoc loc;
  std::string label;
  const compiler::SpmdNode* node = nullptr;
  int parent = -1;
  std::vector<int> children;  // AAU ids in execution order
};

/// One entry of the communication table (specification and status of each
/// communication/synchronization operation).
struct CommTableEntry {
  int aau = -1;
  std::string operation;  // "overlap exchange", "cshift", "gsum", ...
  std::string pattern;    // "nearest neighbour", "recursive tree", ...
  int array_symbol = -1;
  std::string note;
};

/// Synchronization edge of the SAAG: communication AAU `comm` synchronizes
/// the computation AAUs before and after it.
struct SyncEdge {
  int from = -1;  // producing computation AAU (-1 = program start)
  int comm = -1;  // the communication AAU
  int to = -1;    // consuming computation AAU (-1 = program end)
};

class SynchronizedAAG {
 public:
  /// Abstraction parse: builds the AAG/SAAG from the compiled program.
  explicit SynchronizedAAG(const compiler::CompiledProgram& prog);

  [[nodiscard]] const std::vector<AAU>& aaus() const noexcept { return aaus_; }
  [[nodiscard]] const AAU& at(int id) const { return aaus_.at(static_cast<std::size_t>(id)); }
  [[nodiscard]] int root() const noexcept { return root_; }
  [[nodiscard]] const std::vector<CommTableEntry>& comm_table() const noexcept {
    return comm_table_;
  }
  [[nodiscard]] const std::vector<SyncEdge>& sync_edges() const noexcept {
    return edges_;
  }

  /// AAU ids attached to a source line (per-line metric queries, §4.2).
  [[nodiscard]] std::vector<int> aaus_on_line(std::uint32_t line) const;

  /// All AAU ids in the subtree rooted at `id` (sub-AAG queries).
  [[nodiscard]] std::vector<int> subtree(int id) const;

  [[nodiscard]] std::string str() const;

 private:
  void build(const compiler::SpmdNode& node, int parent);

  std::vector<AAU> aaus_;
  std::vector<CommTableEntry> comm_table_;
  std::vector<SyncEdge> edges_;
  std::map<std::uint32_t, std::vector<int>> by_line_;
  int root_ = 0;
};

}  // namespace hpf90d::core
