#include "core/critical.hpp"

#include <algorithm>

namespace hpf90d::core {

using compiler::SpmdKind;
using compiler::SpmdNode;
using front::Expr;
using front::ExprKind;

namespace {

void collect_vars(const Expr& e, std::set<int>& out) {
  if (e.kind == ExprKind::Var && e.symbol >= 0) out.insert(e.symbol);
  for (const auto& a : e.args) collect_vars(*a, out);
  for (const auto& s : e.subs) {
    if (s.scalar) collect_vars(*s.scalar, out);
  }
}

/// Abstract forward execution: which scalar symbols acquire traceable
/// values, and which symbols steer control flow.
class Walker {
 public:
  Walker(const compiler::CompiledProgram& prog, const front::Bindings& bindings)
      : prog_(prog) {
    for (const auto& sym : prog.symbols.symbols()) {
      const int id = prog.symbols.find(sym.name);
      if (bindings.contains(sym.name)) {
        known_.insert(id);
        bound_.insert(id);
      } else if (sym.kind == front::SymbolKind::Param) {
        known_.insert(id);
      }
    }
  }

  void walk(const SpmdNode& n) {
    switch (n.kind) {
      case SpmdKind::Seq:
        for (const auto& c : n.children) walk(*c);
        break;
      case SpmdKind::ScalarAssign: {
        std::set<int> used;
        collect_vars(*n.rhs, used);
        const bool traceable =
            std::all_of(used.begin(), used.end(),
                        [&](int s) { return known_.contains(s); }) &&
            !contains_array(*n.rhs);
        if (traceable) {
          known_.insert(n.lhs->symbol);
        } else {
          known_.erase(n.lhs->symbol);  // overwritten with a data value
        }
        break;
      }
      case SpmdKind::LocalLoop:
        for (const auto& ix : n.space) {
          mark_critical(*ix.lo);
          mark_critical(*ix.hi);
          if (ix.stride) mark_critical(*ix.stride);
          known_.insert(ix.symbol);
        }
        if (n.inner) {
          mark_critical(*n.inner->index.lo);
          mark_critical(*n.inner->index.hi);
          known_.insert(n.inner->index.symbol);
        }
        break;
      case SpmdKind::Reduce:
        for (const auto& ix : n.space) {
          mark_critical(*ix.lo);
          mark_critical(*ix.hi);
          known_.insert(ix.symbol);
        }
        // reduction results are data values, not traceable constants
        known_.erase(n.reduce_result);
        break;
      case SpmdKind::DoLoop:
        mark_critical(*n.do_lo);
        mark_critical(*n.do_hi);
        if (n.do_step) mark_critical(*n.do_step);
        known_.insert(n.do_symbol);
        for (const auto& c : n.children) walk(*c);
        break;
      case SpmdKind::WhileLoop:
        mark_critical(*n.mask);
        for (const auto& c : n.children) walk(*c);
        break;
      case SpmdKind::IfBlock:
        mark_critical(*n.mask);
        for (const auto& c : n.children) walk(*c);
        for (const auto& c : n.else_children) walk(*c);
        break;
      default:
        break;
    }
  }

  [[nodiscard]] CriticalVariableReport report() const {
    CriticalVariableReport out;
    for (int s : critical_order_) {
      const std::string& name = prog_.symbols.at(s).name;
      out.critical.push_back(name);
      if (bound_.contains(s)) {
        out.bound.push_back(name);
      } else if (known_at_use_.contains(s)) {
        out.traced.push_back(name);
      } else {
        out.unresolved.push_back(name);
      }
    }
    return out;
  }

 private:
  static bool contains_array(const Expr& e) {
    if (e.kind == ExprKind::ArrayRef) return true;
    for (const auto& a : e.args) {
      if (contains_array(*a)) return true;
    }
    return false;
  }

  void mark_critical(const Expr& e) {
    std::set<int> used;
    collect_vars(e, used);
    for (int s : used) {
      const auto& sym = prog_.symbols.at(s);
      if (sym.kind == front::SymbolKind::LoopIndex) continue;
      if (!critical_.contains(s)) {
        critical_.insert(s);
        critical_order_.push_back(s);
      }
      if (known_.contains(s)) known_at_use_.insert(s);
    }
  }

  const compiler::CompiledProgram& prog_;
  std::set<int> known_;
  std::set<int> bound_;
  std::set<int> critical_;
  std::vector<int> critical_order_;
  std::set<int> known_at_use_;
};

}  // namespace

CriticalVariableReport analyze_critical(const compiler::CompiledProgram& prog,
                                        const front::Bindings& bindings) {
  Walker walker(prog, bindings);
  walker.walk(*prog.root);
  return walker.report();
}

}  // namespace hpf90d::core
