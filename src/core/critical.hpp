// critical.hpp — critical variable identification and resolution.
//
// The abstraction parse "identifies all critical variables in the
// application description; a critical variable being defined as a variable
// whose value effects the flow of execution, e.g. a loop limit. The
// critical variables are then resolved either by tracing their definition
// paths or by allowing the user to explicitly specify their values"
// (paper §4.2).
#pragma once

#include <set>
#include <string>
#include <vector>

#include "compiler/spmd_ir.hpp"
#include "hpf/fold.hpp"

namespace hpf90d::core {

struct CriticalVariableReport {
  /// Variables controlling execution flow (loop limits, conditions, space
  /// bounds), in first-appearance order.
  std::vector<std::string> critical;
  /// Resolved by tracing constant definition paths through the program.
  std::vector<std::string> traced;
  /// Resolved because the user supplied an explicit binding.
  std::vector<std::string> bound;
  /// Not resolvable: prediction requires a binding for these.
  std::vector<std::string> unresolved;

  [[nodiscard]] bool complete() const noexcept { return unresolved.empty(); }
};

/// Analyzes the program's critical variables against `bindings`.
[[nodiscard]] CriticalVariableReport analyze_critical(
    const compiler::CompiledProgram& prog, const front::Bindings& bindings);

}  // namespace hpf90d::core
