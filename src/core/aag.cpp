#include "core/aag.hpp"

#include <sstream>

namespace hpf90d::core {

using compiler::SpmdKind;
using compiler::SpmdNode;

std::string_view aau_kind_name(AAUKind k) noexcept {
  switch (k) {
    case AAUKind::Seq: return "Seq";
    case AAUKind::Iter: return "Iter";
    case AAUKind::IterD: return "IterD";
    case AAUKind::Condt: return "Condt";
    case AAUKind::CondtD: return "CondtD";
    case AAUKind::Comm: return "Comm";
    case AAUKind::Reduct: return "Reduct";
    case AAUKind::IO: return "IO";
  }
  return "?";
}

AAUKind classify_spmd_node(const SpmdNode& node) noexcept {
  switch (node.kind) {
    case SpmdKind::Seq:
    case SpmdKind::ScalarAssign:
      return AAUKind::Seq;
    case SpmdKind::LocalLoop:
      return node.mask ? AAUKind::CondtD : AAUKind::IterD;
    case SpmdKind::OverlapComm:
    case SpmdKind::CShiftComm:
    case SpmdKind::GatherComm:
    case SpmdKind::ScatterComm:
    case SpmdKind::SliceBroadcast:
      return AAUKind::Comm;
    case SpmdKind::Reduce:
      return AAUKind::Reduct;
    case SpmdKind::DoLoop:
    case SpmdKind::WhileLoop:
      return AAUKind::Iter;
    case SpmdKind::IfBlock:
      return AAUKind::Condt;
    case SpmdKind::HostIO:
      return AAUKind::IO;
  }
  return AAUKind::Seq;
}

namespace {

std::string label_of(const SpmdNode& node, const front::SymbolTable& symbols) {
  auto sym_name = [&](int id) {
    return id >= 0 ? symbols.at(id).name : std::string("?");
  };
  switch (node.kind) {
    case SpmdKind::ScalarAssign:
      return node.lhs->str() + " = " + node.rhs->str();
    case SpmdKind::LocalLoop:
      return node.inner ? node.lhs->str() + " = " + node.inner->op + "(...)"
                        : node.lhs->str() + " = " + node.rhs->str();
    case SpmdKind::OverlapComm:
      return "overlap exchange " + sym_name(node.comm_array);
    case SpmdKind::CShiftComm:
      return "cshift " + sym_name(node.comm_array) + " -> " + sym_name(node.comm_temp);
    case SpmdKind::GatherComm:
      return (node.gather_pattern == compiler::GatherPattern::Irregular
                  ? "irregular gather "
                  : "remap gather ") +
             sym_name(node.comm_array);
    case SpmdKind::ScatterComm:
      return "irregular scatter " + sym_name(node.comm_array);
    case SpmdKind::SliceBroadcast:
      return "slice broadcast " + sym_name(node.comm_array);
    case SpmdKind::Reduce:
      return node.reduce_op + " reduction";
    case SpmdKind::DoLoop:
      return "do " + node.do_var;
    case SpmdKind::WhileLoop:
      return "do while";
    case SpmdKind::IfBlock:
      return "if";
    case SpmdKind::HostIO:
      return "print";
    case SpmdKind::Seq:
      return "program";
  }
  return "?";
}

std::string pattern_of(const SpmdNode& node) {
  switch (node.kind) {
    case SpmdKind::OverlapComm:
    case SpmdKind::CShiftComm:
      return "nearest neighbour";
    case SpmdKind::GatherComm:
    case SpmdKind::ScatterComm:
      return node.gather_pattern == compiler::GatherPattern::Irregular
                 ? "runtime resolved"
                 : "all-to-all remap";
    case SpmdKind::SliceBroadcast:
      return "broadcast tree";
    case SpmdKind::Reduce:
      return "recursive halving/doubling";
    default:
      return "";
  }
}

}  // namespace

SynchronizedAAG::SynchronizedAAG(const compiler::CompiledProgram& prog) {
  aaus_.resize(static_cast<std::size_t>(prog.node_count));
  build(*prog.root, -1);
  root_ = prog.root->id;

  // label + comm table + per-line index
  for (auto& aau : aaus_) {
    if (aau.node == nullptr) continue;
    aau.label = label_of(*aau.node, prog.symbols);
    if (aau.loc.valid()) by_line_[aau.loc.line].push_back(aau.id);
    if (aau.kind == AAUKind::Comm || aau.kind == AAUKind::Reduct) {
      CommTableEntry entry;
      entry.aau = aau.id;
      entry.operation = aau.label;
      entry.pattern = pattern_of(*aau.node);
      entry.array_symbol = aau.node->comm_array;
      entry.note = aau.node->comm_note;
      comm_table_.push_back(std::move(entry));
    }
  }

  // synchronization edges: each comm AAU connects its neighbouring
  // computation AAUs inside the same sequence
  for (const auto& aau : aaus_) {
    if (aau.node == nullptr) continue;
    for (std::size_t i = 0; i < aau.children.size(); ++i) {
      const AAU& child = at(aau.children[i]);
      if (child.kind != AAUKind::Comm && child.kind != AAUKind::Reduct) continue;
      SyncEdge edge;
      edge.comm = child.id;
      for (std::size_t j = i; j-- > 0;) {
        const AAU& prev = at(aau.children[j]);
        if (prev.kind == AAUKind::IterD || prev.kind == AAUKind::CondtD ||
            prev.kind == AAUKind::Seq) {
          edge.from = prev.id;
          break;
        }
      }
      for (std::size_t j = i + 1; j < aau.children.size(); ++j) {
        const AAU& next = at(aau.children[j]);
        if (next.kind == AAUKind::IterD || next.kind == AAUKind::CondtD ||
            next.kind == AAUKind::Seq) {
          edge.to = next.id;
          break;
        }
      }
      edges_.push_back(edge);
    }
  }
}

void SynchronizedAAG::build(const SpmdNode& node, int parent) {
  AAU aau;
  aau.id = node.id;
  aau.kind = classify_spmd_node(node);
  aau.loc = node.loc;
  aau.node = &node;
  aau.parent = parent;
  for (const auto& c : node.children) aau.children.push_back(c->id);
  for (const auto& c : node.else_children) aau.children.push_back(c->id);
  aaus_.at(static_cast<std::size_t>(node.id)) = std::move(aau);
  for (const auto& c : node.children) build(*c, node.id);
  for (const auto& c : node.else_children) build(*c, node.id);
}

std::vector<int> SynchronizedAAG::aaus_on_line(std::uint32_t line) const {
  const auto it = by_line_.find(line);
  return it == by_line_.end() ? std::vector<int>{} : it->second;
}

std::vector<int> SynchronizedAAG::subtree(int id) const {
  std::vector<int> out;
  std::vector<int> stack{id};
  while (!stack.empty()) {
    const int cur = stack.back();
    stack.pop_back();
    out.push_back(cur);
    for (int c : at(cur).children) stack.push_back(c);
  }
  return out;
}

std::string SynchronizedAAG::str() const {
  std::ostringstream os;
  std::vector<std::pair<int, int>> stack{{root_, 0}};
  while (!stack.empty()) {
    const auto [id, depth] = stack.back();
    stack.pop_back();
    const AAU& aau = at(id);
    for (int d = 0; d < depth; ++d) os << "  ";
    os << '[' << aau.id << "] " << aau_kind_name(aau.kind);
    if (!aau.label.empty()) os << ": " << aau.label;
    if (aau.loc.valid()) os << "  (line " << aau.loc.line << ')';
    os << '\n';
    for (std::size_t i = aau.children.size(); i-- > 0;) {
      stack.emplace_back(aau.children[i], depth + 1);
    }
  }
  os << "comm table: " << comm_table_.size() << " entries, sync edges: "
     << edges_.size() << '\n';
  return os.str();
}

}  // namespace hpf90d::core
