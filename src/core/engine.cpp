#include "core/engine.hpp"

#include <algorithm>
#include <cmath>
#include <span>

#include "compiler/opcount.hpp"
#include "compiler/pipeline.hpp"
#include "support/diagnostics.hpp"

namespace hpf90d::core {

using compiler::SpmdKind;
using compiler::SpmdNode;
using front::Expr;
using front::ExprKind;
using support::CompileError;

InterpretationEngine::InterpretationEngine(const compiler::CompiledProgram& prog,
                                           const compiler::DataLayout& layout,
                                           const machine::MachineModel& machine,
                                           const PredictOptions& options,
                                           const front::Bindings& bindings) {
  rebind(prog, layout, machine, options, bindings);
}

void InterpretationEngine::rebind_common(const compiler::CompiledProgram& prog,
                                         const compiler::DataLayout& layout,
                                         const machine::MachineModel& machine,
                                         const PredictOptions& options,
                                         const front::Bindings& bindings) {
  if (prog.node_ops.size() == static_cast<std::size_t>(prog.node_count)) {
    node_ops_ = &prog.node_ops;
  } else {
    // Hand-built program that bypassed the pipeline: price it here.
    fallback_node_ops_ = compiler::collect_node_ops(prog);
    node_ops_ = &fallback_node_ops_;
  }
  cost_ = prog.cost_program.get();
  regs_.resize(cost_ ? cost_->max_regs : 0);
  prog_ = &prog;
  layout_ = &layout;
  options_ = options;
  bindings_ = &bindings;
  const auto mp = bindings.get("mask__prob");
  mask_prob_ = mp ? *mp : options.mask_probability;
  nprocs_ = layout.nprocs();
  // fn_ holds references into the machine's SAU; re-targeting is only
  // needed when the machine actually changes (lane engines are rebound per
  // window, almost always to the same machine).
  if (machine_ != &machine) {
    machine_ = &machine;
    fn_.emplace(machine.node());
  }
  clock_.assign(static_cast<std::size_t>(nprocs_), 0.0);
  metrics_.assign(static_cast<std::size_t>(prog.node_count), AAUMetric{});
  trace_.clear();
}

void InterpretationEngine::rebind(const compiler::CompiledProgram& prog,
                                  const compiler::DataLayout& layout,
                                  const machine::MachineModel& machine,
                                  const PredictOptions& options,
                                  const front::Bindings& bindings) {
  rebind_common(prog, layout, machine, options, bindings);
  env_.reset(prog.symbols.size());
  compiler::seed_environment(env_, prog_->symbols, bindings);
}

void InterpretationEngine::rebind_lane(const compiler::CompiledProgram& prog,
                                       const compiler::DataLayout& layout,
                                       const machine::MachineModel& machine,
                                       const PredictOptions& options,
                                       const front::Bindings& bindings) {
  rebind_common(prog, layout, machine, options, bindings);
}

PredictionResult InterpretationEngine::interpret() {
  PredictionResult out;
  interpret_into(out);
  return out;
}

void InterpretationEngine::interpret_into(PredictionResult& out) {
  walk_seq(prog_->root->children);
  finalize_into(out);
}

void InterpretationEngine::finalize_into(PredictionResult& out) {
  out.total = *std::max_element(clock_.begin(), clock_.end());
  out.comp = out.comm = out.overhead = out.wait = 0;
  if (!options_.detailed) {
    // sweep hot path: same divide-then-accumulate order as below, so the
    // phase sums are bit-identical — only the table copies are skipped
    out.proc_clock.clear();
    out.per_aau.clear();
    out.trace.clear();
    for (const auto& m : metrics_) {
      out.comp += m.comp / nprocs_;
      out.comm += m.comm / nprocs_;
      out.overhead += m.overhead / nprocs_;
      out.wait += m.wait / nprocs_;
    }
    trace_.clear();
    return;
  }
  out.proc_clock = clock_;
  out.per_aau = metrics_;
  for (auto& m : out.per_aau) {
    m.comp /= nprocs_;
    m.comm /= nprocs_;
    m.overhead /= nprocs_;
    m.wait /= nprocs_;
  }
  for (const auto& m : out.per_aau) {
    out.comp += m.comp;
    out.comm += m.comm;
    out.overhead += m.overhead;
    out.wait += m.wait;
  }
  out.trace = std::move(trace_);
  trace_.clear();
}

void InterpretationEngine::charge(int aau, int proc, double t, char category) {
  if (t <= 0) return;
  const double begin = clock_[static_cast<std::size_t>(proc)];
  clock_[static_cast<std::size_t>(proc)] += t;
  AAUMetric& m = metric(aau);
  switch (category) {
    case 'C': m.comp += t; break;
    case 'M': m.comm += t; break;
    case 'O': m.overhead += t; break;
    case 'W': m.wait += t; break;
    case 'I': m.comm += t; break;
    default: m.comp += t; break;
  }
  if (options_.trace && trace_.size() < options_.max_trace_events) {
    trace_.push_back(TraceEvent{begin, begin + t, proc, aau, category});
  }
}

void InterpretationEngine::charge_all(int aau, double t, char category) {
  // Same charges as per-proc charge() calls, with the category switch and
  // trace test hoisted out of the loop: the clock update becomes a tight
  // vectorizable add and the metric accumulates through the identical
  // dependent-add chain (never t * nprocs, which would round differently).
  if (t <= 0) return;
  if (options_.trace) {
    for (int p = 0; p < nprocs_; ++p) charge(aau, p, t, category);
    return;
  }
  double* const clk = clock_.data();
  const int n = nprocs_;
  for (int p = 0; p < n; ++p) clk[p] += t;
  AAUMetric& m = metric(aau);
  double* acc;
  switch (category) {
    case 'C': acc = &m.comp; break;
    case 'M': acc = &m.comm; break;
    case 'O': acc = &m.overhead; break;
    case 'W': acc = &m.wait; break;
    case 'I': acc = &m.comm; break;
    default: acc = &m.comp; break;
  }
  double s = *acc;
  for (int p = 0; p < n; ++p) s += t;
  *acc = s;
}

// ---------------------------------------------------------------------------
// bytecode fast path
// ---------------------------------------------------------------------------

namespace {
const compiler::NodeCost kNoCost{};
}

const compiler::NodeCost& InterpretationEngine::ncost(const SpmdNode& n) const {
  return cost_ ? cost_->nodes[static_cast<std::size_t>(n.id)] : kNoCost;
}

std::optional<double> InterpretationEngine::eval_opt(std::int32_t expr_id,
                                                     const front::Expr& e) {
  if (expr_id >= 0) {
    const compiler::ExprCode& c = cost_->exprs[static_cast<std::size_t>(expr_id)];
    if (c.ok) return compiler::eval_code(*cost_, c, env_, regs_.data());
  }
  return compiler::try_eval_scalar(e, env_, nullptr, prog_->symbols);
}

long long InterpretationEngine::eval_int_fast(std::int32_t expr_id, const front::Expr& e) {
  if (expr_id >= 0) {
    const compiler::ExprCode& c = cost_->exprs[static_cast<std::size_t>(expr_id)];
    if (c.ok) {
      if (const auto v = compiler::eval_code(*cost_, c, env_, regs_.data())) {
        return static_cast<long long>(std::llround(*v));
      }
      // failure: re-run the tree evaluator for its curated diagnostic
    }
  }
  return compiler::eval_int(e, env_, nullptr, prog_->symbols);
}

// ---------------------------------------------------------------------------

void InterpretationEngine::walk_seq(const std::vector<compiler::SpmdNodePtr>& nodes) {
  for (const auto& n : nodes) walk(*n);
}

void InterpretationEngine::walk(const SpmdNode& n) {
  metric(n.id).visits++;
  switch (n.kind) {
    case SpmdKind::Seq: walk_seq(n.children); break;
    case SpmdKind::ScalarAssign: walk_scalar_assign(n); break;
    case SpmdKind::LocalLoop: walk_local_loop(n); break;
    case SpmdKind::OverlapComm: walk_overlap(n); break;
    case SpmdKind::CShiftComm: walk_cshift(n); break;
    case SpmdKind::GatherComm:
    case SpmdKind::ScatterComm: walk_irregular(n); break;
    case SpmdKind::SliceBroadcast: walk_slice_bcast(n); break;
    case SpmdKind::Reduce: walk_reduce(n); break;
    case SpmdKind::DoLoop: walk_do(n); break;
    case SpmdKind::WhileLoop: walk_while(n); break;
    case SpmdKind::IfBlock: walk_if(n); break;
    case SpmdKind::HostIO: walk_hostio(n); break;
  }
}

void InterpretationEngine::walk_scalar_assign(const SpmdNode& n) {
  // trace the definition path: scalar control values are evaluated, data
  // values (reduction results, array elements) stay unknown
  const std::optional<double> v = eval_opt(ncost(n).rhs, *n.rhs);
  if (v) {
    env_.define(n.lhs->symbol,
                n.lhs->type == front::TypeBase::Integer ? std::trunc(*v) : *v);
  }
  charge_all(n.id, seq_cost(n), 'C');
}

void InterpretationEngine::walk_do(const SpmdNode& n) {
  const compiler::NodeCost& nc = ncost(n);
  long long lo, hi, step;
  try {
    lo = eval_int_fast(nc.do_lo, *n.do_lo);
    hi = eval_int_fast(nc.do_hi, *n.do_hi);
    step = n.do_step ? eval_int_fast(nc.do_step, *n.do_step) : 1;
  } catch (const CompileError& e) {
    throw CompileError(n.loc, std::string("unresolved critical variable in do bounds: ") +
                                  e.what());
  }
  if (step == 0) throw CompileError(n.loc, "do loop step is zero");
  charge_all(n.id, fn_->iter_setup(), 'O');
  for (long long v = lo; step > 0 ? v <= hi : v >= hi; v += step) {
    env_.define(n.do_symbol, static_cast<double>(v));
    charge_all(n.id, fn_->iter_overhead(), 'O');
    walk_seq(n.children);
  }
}

void InterpretationEngine::walk_while(const SpmdNode& n) {
  const compiler::NodeCost& nc = ncost(n);
  long long trips = 0;
  while (true) {
    const std::optional<double> c = eval_opt(nc.cond, *n.mask);
    if (!c) {
      throw CompileError(n.loc,
                         "do while condition depends on data values; supply an "
                         "explicit binding for its critical variables");
    }
    charge_all(n.id, branch_cost(n), 'O');
    if (*c == 0.0) break;
    if (++trips > 1000000) {
      throw CompileError(n.loc, "do while exceeded the interpretation trip limit");
    }
    walk_seq(n.children);
  }
}

void InterpretationEngine::walk_if(const SpmdNode& n) {
  const std::optional<double> c = eval_opt(ncost(n).cond, *n.mask);
  charge_all(n.id, branch_cost(n), 'O');
  if (!c || *c != 0.0) {
    walk_seq(n.children);  // unresolved conditions assume the then-branch
  } else {
    walk_seq(n.else_children);
  }
}

void InterpretationEngine::walk_hostio(const SpmdNode& n) {
  long long bytes = 16;
  for (const auto& arg : n.io_args) {
    bytes += arg->rank == 0 ? 16 : 64;  // arrays: abstraction charges a block
  }
  charge(n.id, 0, fn_->host_io(bytes), 'I');
}

// ---------------------------------------------------------------------------
// iteration machinery
// ---------------------------------------------------------------------------

long long InterpretationEngine::ResolvedSpace::dim_count(std::size_t d) const {
  if (step[d] > 0) return hi[d] >= lo[d] ? (hi[d] - lo[d]) / step[d] + 1 : 0;
  return lo[d] >= hi[d] ? (lo[d] - hi[d]) / (-step[d]) + 1 : 0;
}

long long InterpretationEngine::ResolvedSpace::points() const {
  long long total = 1;
  for (std::size_t d = 0; d < lo.size(); ++d) total *= dim_count(d);
  return total;
}

InterpretationEngine::ResolvedSpace InterpretationEngine::resolve_space(const SpmdNode& n) {
  const compiler::NodeCost& nc = ncost(n);
  ResolvedSpace out;
  for (std::size_t d = 0; d < n.space.size(); ++d) {
    const auto& ix = n.space[d];
    const std::int32_t* sc =
        nc.space_first >= 0
            ? cost_->space_codes.data() + nc.space_first + 3 * static_cast<std::int32_t>(d)
            : nullptr;
    try {
      out.lo.push_back(eval_int_fast(sc ? sc[0] : -1, *ix.lo));
      out.hi.push_back(eval_int_fast(sc ? sc[1] : -1, *ix.hi));
      out.step.push_back(ix.stride ? eval_int_fast(sc ? sc[2] : -1, *ix.stride) : 1);
    } catch (const CompileError& e) {
      throw CompileError(ix.lo->loc,
                         std::string("unresolved critical variable in forall bounds: ") +
                             e.what());
    }
  }
  return out;
}

const std::vector<long long>& InterpretationEngine::local_iterations(
    const SpmdNode& n, const ResolvedSpace& space, long long replicated_pts) {
  std::vector<long long>& iters = iters_scratch_;
  iters.resize(static_cast<std::size_t>(nprocs_));  // every slot written below
  if (nprocs_ == 1) {
    // a lone processor always owns the whole space, home array or not —
    // the general loop below reduces to space.points() (= replicated_pts
    // when the caller precomputed it)
    iters[0] = replicated_pts >= 0 ? replicated_pts : space.points();
    return iters;
  }
  const compiler::ArrayMap* home =
      n.home_symbol >= 0 ? layout_->map_for(n.home_symbol) : nullptr;
  if (home == nullptr) {
    std::fill(iters.begin(), iters.end(),
              replicated_pts >= 0 ? replicated_pts : space.points());
    return iters;
  }
  // which home dim each space index drives is a property of the node, not
  // of the processor: resolve the driver map once, outside the proc loop
  // (first matching driver wins, as the former inner search did)
  std::vector<int>& hd = home_dim_scratch_;
  hd.assign(space.lo.size(), -1);
  for (std::size_t h = 0; h < n.home_driver.size(); ++h) {
    const int d = n.home_driver[h];
    if (d >= 0 && static_cast<std::size_t>(d) < hd.size() && hd[static_cast<std::size_t>(d)] < 0) {
      hd[static_cast<std::size_t>(d)] = static_cast<int>(h);
    }
  }
  // Dims-outer accumulation: the distribution (kind, block, offsets) is a
  // per-dim constant, so it is resolved once here and only the grid
  // coordinate varies in the per-processor inner loop. All-integer math, so
  // the per-proc product is exact in any accumulation order.
  std::fill(iters.begin(), iters.end(), 1LL);
  for (std::size_t d = 0; d < space.lo.size(); ++d) {
    const int home_dim = hd[d];
    const long long base = space.dim_count(d);
    const compiler::DimDist* dd = nullptr;
    if (home_dim >= 0) {
      const auto& cand = home->dims[static_cast<std::size_t>(home_dim)];
      if (cand.grid_dim >= 0 && cand.nprocs > 1) dd = &cand;
    }
    if (dd == nullptr) {
      for (int p = 0; p < nprocs_; ++p) iters[static_cast<std::size_t>(p)] *= base;
    } else if (dd->kind == front::DistKind::Block) {
      const long long off = n.home_driver_offset[static_cast<std::size_t>(home_dim)];
      const long long lo = space.lo[d];
      const long long hi = space.hi[d];
      const long long st = space.step[d];
      const auto gd = static_cast<std::size_t>(dd->grid_dim);
      for (int p = 0; p < nprocs_; ++p) {
        const auto range = dd->owned_range(layout_->proc_coords(p)[gd]);
        const long long a = std::max(lo, range.lo - off);
        const long long b = std::min(hi, range.hi - off);
        long long dim_iters;
        if (b < a) {
          dim_iters = 0;
        } else if (st == 1) {
          // unit stride — the dominant case — needs no division:
          // first = a-lo, last = b-lo, so the count is just b-a+1
          dim_iters = b - a + 1;
        } else {
          const long long first = (a - lo + st - 1) / st;
          const long long last = (b - lo) / st;
          dim_iters = last >= first ? last - first + 1 : 0;
        }
        iters[static_cast<std::size_t>(p)] *= dim_iters;
      }
    } else {
      // cyclic: proportional share of the iteration range
      const long long ext = std::max<long long>(dd->extent, 1);
      const auto gd = static_cast<std::size_t>(dd->grid_dim);
      for (int p = 0; p < nprocs_; ++p) {
        const long long owned = dd->local_count(layout_->proc_coords(p)[gd]);
        iters[static_cast<std::size_t>(p)] *= base * owned / ext;
      }
    }
  }
  return iters;
}

long long InterpretationEngine::slab_elements(const compiler::ArrayMap& map, int proc,
                                              int dim, long long width) const {
  const std::span<const int> coords = layout_->proc_coords(proc);
  long long perp = 1;
  for (std::size_t j = 0; j < map.dims.size(); ++j) {
    if (static_cast<int>(j) == dim) continue;
    const auto& od = map.dims[j];
    const int c = od.grid_dim >= 0 ? coords[static_cast<std::size_t>(od.grid_dim)] : 0;
    perp *= od.local_count(c);
  }
  return perp * width;
}

double InterpretationEngine::mask_probability() const { return mask_prob_; }

long long InterpretationEngine::working_set_estimate(const SpmdNode& n,
                                                     const ResolvedSpace& space) const {
  return working_set_estimate(n, space.points());
}

long long InterpretationEngine::working_set_estimate(const SpmdNode& n,
                                                     long long space_points) const {
  // the array-ref factor is precomputed per node (NodeOpCounts::ws_arrays)
  const long long arrays = node_ops_->at(static_cast<std::size_t>(n.id)).ws_arrays;
  const int elem = n.lhs ? front::type_size_bytes(n.lhs->type) : 4;
  return std::max<long long>(1, space_points) * arrays * elem /
         std::max(1, nprocs_);
}

// ---------------------------------------------------------------------------
// computation AAUs
// ---------------------------------------------------------------------------

IterCost InterpretationEngine::local_loop_cost(const SpmdNode& n, const ResolvedSpace& space,
                                               long long inner_m) const {
  const compiler::OpCounts& ops = body_ops(n);
  const int elem = front::type_size_bytes(n.lhs->type);
  const long long ws = working_set_estimate(n, space);
  return n.mask ? fn_->condt_cost(ops, cond_ops(n), mask_probability(), elem, ws, inner_m)
                : fn_->iter_cost(ops, elem, ws, inner_m);
}

IterCost InterpretationEngine::reduce_cost(const SpmdNode& n,
                                           const ResolvedSpace& space) const {
  return fn_->iter_cost(body_ops(n), front::type_size_bytes(n.reduce_arg->type),
                        working_set_estimate(n, space));
}

void InterpretationEngine::price_iters_on(const SpmdNode& n, const IterCost& cost,
                                          const std::vector<long long>& iters) {
  // one pricing per node; processors differ only in their iteration count —
  // and under an even decomposition most of them don't even do that, so the
  // estimate is recomputed only when the count changes (cost.at is a pure
  // function of the count, so reuse is bit-identical)
  long long prev_it = 0;
  ComputeEstimate est{};
  if (options_.trace) {
    for (int p = 0; p < nprocs_; ++p) {
      const long long it = iters[static_cast<std::size_t>(p)];
      if (it == 0) continue;
      if (it != prev_it) {
        est = cost.at(it);
        prev_it = it;
      }
      charge(n.id, p, est.comp, 'C');
      charge(n.id, p, est.overhead, 'O');
    }
    return;
  }
  // untraced: the same per-proc charge sequence with the charge() call
  // overhead (category dispatch, trace test) hoisted out of the loop
  AAUMetric& m = metric(n.id);
  double* const clk = clock_.data();
  double mc = m.comp, mo = m.overhead;
  for (int p = 0; p < nprocs_; ++p) {
    const long long it = iters[static_cast<std::size_t>(p)];
    if (it == 0) continue;
    if (it != prev_it) {
      est = cost.at(it);
      prev_it = it;
    }
    if (est.comp > 0) {
      clk[p] += est.comp;
      mc += est.comp;
    }
    if (est.overhead > 0) {
      clk[p] += est.overhead;
      mo += est.overhead;
    }
  }
  m.comp = mc;
  m.overhead = mo;
}

void InterpretationEngine::price_iters(const SpmdNode& n, const ResolvedSpace& space,
                                       const IterCost& cost) {
  price_iters_on(n, cost, local_iterations(n, space));
}

void InterpretationEngine::price_iters_batch(const SpmdNode& n,
                                             InterpretationEngine* engines,
                                             const int* lanes, std::size_t count,
                                             const ResolvedSpace* const* spaces,
                                             const long long* pts,
                                             const IterCost* costs) {
  // lanes are independent (distinct clocks and metrics), so charging them
  // inside one loop is charge-for-charge identical to one call per lane
  for (std::size_t i = 0; i < count; ++i) {
    InterpretationEngine& e = engines[lanes[i]];
    e.price_iters_on(n, costs[i], e.local_iterations(n, *spaces[i], pts[i]));
  }
}

void InterpretationEngine::sync_then_charge_comm_batch(const SpmdNode& n,
                                                       InterpretationEngine* engines,
                                                       const int* lanes,
                                                       std::size_t count,
                                                       const double* cost_per_lane) {
  for (std::size_t i = 0; i < count; ++i) {
    InterpretationEngine& e = engines[lanes[i]];
    const double c = cost_per_lane[i];
    const double tmax = *std::max_element(e.clock_.begin(), e.clock_.end());
    if (e.options_.trace) {
      for (int p = 0; p < e.nprocs_; ++p) {
        const double idle = tmax - e.clock_[static_cast<std::size_t>(p)];
        if (idle > 0) e.charge(n.id, p, idle, 'W');
        if (c > 0) e.charge(n.id, p, c, 'M');
      }
      continue;
    }
    // untraced: identical charge sequence with the per-charge dispatch
    // hoisted (the 'M' cost is proc-invariant, the 'W' idle is not)
    AAUMetric& m = e.metric(n.id);
    double* const clk = e.clock_.data();
    double mw = m.wait, mm = m.comm;
    const bool comm = c > 0;
    for (int p = 0; p < e.nprocs_; ++p) {
      const double idle = tmax - clk[p];
      if (idle > 0) {
        clk[p] += idle;
        mw += idle;
      }
      if (comm) {
        clk[p] += c;
        mm += c;
      }
    }
    m.wait = mw;
    m.comm = mm;
  }
}

void InterpretationEngine::price_reduce_comm_batch(const SpmdNode& n,
                                                   InterpretationEngine* engines,
                                                   const int* lanes,
                                                   std::size_t count) {
  // For a fixed node the reduce cost is a pure function of (machine, nprocs,
  // collective); a lockstep batch interleaves a handful of nprocs values over
  // one machine, so a tiny memo replaces the per-lane analytic tree walk.
  struct Memo {
    const machine::MachineModel* mach;
    int nprocs;
    machine::CollectiveAlgo collective;
    double cost;
  };
  Memo memo[8];
  std::size_t memo_n = 0;
  const long long bytes = n.reduce_op == "maxloc" ? 12 : 8;
  for (std::size_t i = 0; i < count; ++i) {
    InterpretationEngine& e = engines[lanes[i]];
    const compiler::ArrayMap* home =
        n.home_symbol >= 0 ? e.layout_->map_for(n.home_symbol) : nullptr;
    if (home == nullptr || e.nprocs_ <= 1) continue;
    double comm_cost = -1.0;
    for (std::size_t m = 0; m < memo_n; ++m) {
      if (memo[m].nprocs == e.nprocs_ && memo[m].mach == e.machine_ &&
          memo[m].collective == e.options_.collective) {
        comm_cost = memo[m].cost;
        break;
      }
    }
    if (comm_cost < 0) {
      comm_cost = e.fn_->comm().reduce(e.nprocs_, bytes,
                                       e.machine_->node().proc.t_fadd,
                                       e.options_.collective);
      if (memo_n < sizeof memo / sizeof memo[0]) {
        memo[memo_n++] = Memo{e.machine_, e.nprocs_, e.options_.collective, comm_cost};
      }
    }
    sync_then_charge_comm_batch(n, engines, lanes + i, 1, &comm_cost);
  }
}

void InterpretationEngine::walk_local_loop(const SpmdNode& n) {
  const ResolvedSpace space = resolve_space(n);
  if (space.points() <= 0) return;
  long long inner_m = 0;
  if (n.inner) {
    const compiler::NodeCost& nc = ncost(n);
    inner_m = std::max<long long>(0, eval_int_fast(nc.inner_hi, *n.inner->index.hi) -
                                         eval_int_fast(nc.inner_lo, *n.inner->index.lo) + 1);
  }
  price_iters(n, space, local_loop_cost(n, space, inner_m));
}

void InterpretationEngine::price_reduce_comm(const SpmdNode& n) {
  // the reduction result is a data value: it stays unknown to the engine
  const compiler::ArrayMap* home =
      n.home_symbol >= 0 ? layout_->map_for(n.home_symbol) : nullptr;
  if (home != nullptr && nprocs_ > 1) {
    const long long bytes = n.reduce_op == "maxloc" ? 12 : 8;
    const double comm_cost = fn_->comm().reduce(nprocs_, bytes,
                                                machine_->node().proc.t_fadd,
                                                options_.collective);
    cost_scratch_.assign(static_cast<std::size_t>(nprocs_), comm_cost);
    sync_then_charge_comm(n, cost_scratch_);
  }
}

void InterpretationEngine::walk_reduce(const SpmdNode& n) {
  const ResolvedSpace space = resolve_space(n);
  price_iters(n, space, reduce_cost(n, space));
  price_reduce_comm(n);
}

// ---------------------------------------------------------------------------
// communication AAUs
// ---------------------------------------------------------------------------

void InterpretationEngine::sync_then_charge_comm(const SpmdNode& n,
                                                 const std::vector<double>& cost) {
  // loosely synchronous model: a global communication phase synchronizes
  // its participants — idle time becomes wait, then the analytic cost is
  // charged
  const double tmax = *std::max_element(clock_.begin(), clock_.end());
  for (int p = 0; p < nprocs_; ++p) {
    const double idle = tmax - clock_[static_cast<std::size_t>(p)];
    if (idle > 0) charge(n.id, p, idle, 'W');
    if (cost[static_cast<std::size_t>(p)] > 0) {
      charge(n.id, p, cost[static_cast<std::size_t>(p)], 'M');
    }
  }
}

void InterpretationEngine::walk_overlap(const SpmdNode& n) {
  const compiler::ArrayMap* map = layout_->map_for(n.comm_array);
  if (map == nullptr) return;
  const auto& dd = map->dims[static_cast<std::size_t>(n.comm_dim)];
  if (dd.grid_dim < 0 || dd.nprocs <= 1) return;
  const int elem = front::type_size_bytes(prog_->symbols.at(n.comm_array).type);
  const bool strided = n.comm_dim != 0;
  std::vector<double>& cost = cost_scratch_;
  cost.assign(static_cast<std::size_t>(nprocs_), 0.0);
  for (int p = 0; p < nprocs_; ++p) {
    const int c = layout_->proc_coords(p)[static_cast<std::size_t>(dd.grid_dim)];
    const bool has_partner = n.comm_offset > 0 ? c + 1 < dd.nprocs : c > 0;
    if (!has_partner) continue;
    // BLOCK: only the ghost strip crosses; CYCLIC: every owned element's
    // neighbour lives on another processor
    const long long width =
        dd.kind == front::DistKind::Cyclic
            ? dd.local_count(c)
            : std::min<long long>(std::llabs(n.comm_offset),
                                  std::max<long long>(dd.block, 1));
    const long long bytes = slab_elements(*map, p, n.comm_dim, width) * elem;
    double t = fn_->comm().overlap_exchange(bytes, strided);
    if (n.per_element) {
      // message vectorization disabled: one message per boundary element
      const long long elems = std::max<long long>(1, bytes / elem);
      t = static_cast<double>(elems) * fn_->comm().ptp(elem);
    }
    if (n.comm_src_invariant && metric(n.id).visits > 1) {
      // overlap heuristic: a re-issued exchange of unchanged data hides its
      // setup latency behind the surrounding computation; only packing and
      // wire occupancy remain on the critical path
      t = 2.0 * fn_->comm().pack(bytes, strided) +
          fn_->comm().component().per_byte * static_cast<double>(bytes);
    }
    cost[static_cast<std::size_t>(p)] = t;
  }
  sync_then_charge_comm(n, cost);
}

void InterpretationEngine::walk_cshift(const SpmdNode& n) {
  long long shift = 1;
  if (const auto v = eval_opt(ncost(n).comm_amount, *n.comm_amount)) {
    shift = static_cast<long long>(std::llround(*v));
  }
  price_cshift(n, shift);
}

void InterpretationEngine::price_cshift(const SpmdNode& n, long long shift) {
  const compiler::ArrayMap* map = layout_->map_for(n.comm_array);
  const int elem = front::type_size_bytes(prog_->symbols.at(n.comm_array).type);
  std::vector<double>& cost = cost_scratch_;
  cost.assign(static_cast<std::size_t>(nprocs_), 0.0);
  if (map == nullptr ||
      map->dims[static_cast<std::size_t>(n.comm_dim)].grid_dim < 0 ||
      map->dims[static_cast<std::size_t>(n.comm_dim)].nprocs <= 1) {
    // serial dimension: local circular copy
    long long total_local = 0;
    if (map != nullptr) {
      total_local = map->local_elements(layout_->grid(), 0);
    } else {
      total_local = 1;
      for (long long e : layout_->array_extents(n.comm_array)) total_local *= e;
    }
    const double t =
        static_cast<double>(total_local * elem) / machine_->node().mem.mem_bandwidth;
    std::fill(cost.begin(), cost.end(), t);
    sync_then_charge_comm(n, cost);
    return;
  }
  const auto& dd = map->dims[static_cast<std::size_t>(n.comm_dim)];
  const bool strided = n.comm_dim != 0;
  const long long w = std::min<long long>(std::llabs(shift), dd.block);
  for (int p = 0; p < nprocs_; ++p) {
    const int c = layout_->proc_coords(p)[static_cast<std::size_t>(dd.grid_dim)];
    const long long own = dd.local_count(c);
    const long long msg = slab_elements(*map, p, n.comm_dim, w) * elem;
    const long long local = slab_elements(*map, p, n.comm_dim,
                                          std::max<long long>(own - w, 0)) * elem;
    cost[static_cast<std::size_t>(p)] = fn_->comm().cshift(msg, local, strided);
  }
  sync_then_charge_comm(n, cost);
}

void InterpretationEngine::walk_irregular(const SpmdNode& n) {
  if (nprocs_ <= 1) return;
  const ResolvedSpace space = resolve_space(n);
  price_irregular(n, space);
}

void InterpretationEngine::price_irregular(const SpmdNode& n, const ResolvedSpace& space) {
  const long long total = std::max<long long>(space.points(), 0);
  if (total == 0) return;
  const int elem = front::type_size_bytes(prog_->symbols.at(n.comm_array).type);
  const long long share = (total + nprocs_ - 1) / nprocs_;
  double cost = n.gather_pattern == compiler::GatherPattern::Irregular
                    ? fn_->comm().irregular(nprocs_, share, elem)
                    : fn_->comm().remap(nprocs_, share, elem);
  if (n.comm_src_invariant && metric(n.id).visits > 1) {
    cost = fn_->comm().pack(share * elem, true) +
           fn_->comm().component().per_byte * static_cast<double>(share * elem);
  }
  cost_scratch_.assign(static_cast<std::size_t>(nprocs_), cost);
  sync_then_charge_comm(n, cost_scratch_);
}

void InterpretationEngine::walk_slice_bcast(const SpmdNode& n) {
  const compiler::ArrayMap* map = layout_->map_for(n.comm_array);
  if (map == nullptr || nprocs_ <= 1) return;
  const int elem = front::type_size_bytes(prog_->symbols.at(n.comm_array).type);
  const long long total = map->total_elements();
  const long long dim_extent = map->dims[static_cast<std::size_t>(n.comm_dim)].extent;
  const long long slice = total / std::max<long long>(dim_extent, 1);
  const double cost = fn_->comm().bcast(nprocs_, slice * elem, options_.collective);
  cost_scratch_.assign(static_cast<std::size_t>(nprocs_), cost);
  sync_then_charge_comm(n, cost_scratch_);
}

// ---------------------------------------------------------------------------

void require_critical_complete(const compiler::CompiledProgram& prog,
                               const front::Bindings& bindings) {
  const CriticalVariableReport report = analyze_critical(prog, bindings);
  if (!report.complete()) {
    std::string names;
    for (const auto& n : report.unresolved) names += (names.empty() ? "" : ", ") + n;
    throw CompileError({}, "unresolved critical variables: " + names +
                               " (supply bindings for them)");
  }
}

PredictionResult predict(const compiler::CompiledProgram& prog,
                         const front::Bindings& bindings,
                         const compiler::LayoutOptions& layout_options,
                         const machine::MachineModel& machine,
                         const PredictOptions& options) {
  // Check critical variables before layout resolution so missing bindings
  // surface as the curated diagnostic, not a raw extent-fold error.
  require_critical_complete(prog, bindings);
  const compiler::DataLayout layout = compiler::make_layout(prog, bindings, layout_options);
  return predict(prog, bindings, layout, machine, options);
}

PredictionResult predict(const compiler::CompiledProgram& prog,
                         const front::Bindings& bindings,
                         const compiler::DataLayout& layout,
                         const machine::MachineModel& machine,
                         const PredictOptions& options) {
  require_critical_complete(prog, bindings);
  InterpretationEngine engine(prog, layout, machine, options, bindings);
  return engine.interpret();
}

}  // namespace hpf90d::core
