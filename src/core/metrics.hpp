// metrics.hpp — performance metrics maintained per AAU (paper §4.2:
// "Performance metrics maintained at each AAU are its computation,
// communication and overheads times, and the value of the global clock. In
// addition, cumulative metrics are also maintained for the entire SAAG.")
#pragma once

#include <string>

namespace hpf90d::core {

struct AAUMetric {
  double comp = 0;      // local computation
  double comm = 0;      // communication / synchronization
  double overhead = 0;  // loop / branch / call overheads
  double wait = 0;      // idle time at synchronization points
  long long visits = 0;

  [[nodiscard]] double total() const noexcept { return comp + comm + overhead + wait; }

  void add(const AAUMetric& other) noexcept {
    comp += other.comp;
    comm += other.comm;
    overhead += other.overhead;
    wait += other.wait;
    visits += other.visits;
  }
};

}  // namespace hpf90d::core
