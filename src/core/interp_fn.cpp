#include "core/interp_fn.hpp"

#include <algorithm>

namespace hpf90d::core {

double InterpretationFunctions::flat_ops(const compiler::OpCounts& ops) const {
  const auto& p = sau_.proc;
  const double core = ops.fadd * p.t_fadd + ops.fmul * p.t_fmul + ops.fdiv * p.t_fdiv +
                      ops.fpow * p.t_fpow + ops.iops * p.t_iop + ops.loads * p.t_load +
                      ops.stores * p.t_store;
  double lib = 0.0;
  for (const auto& [name, n] : ops.intrinsics) lib += n * p.intrinsic(name);
  // Calibration from the off-line benchmarking runs (paper §4.4): compiled
  // code dual-issues core and FP instructions part of the time, so the
  // effective per-operation cost sits below the serial-issue sum; library
  // intrinsic calls do not pair. The abstraction applies the *average*
  // pairing factor; per-expression deviation from it (deep chains vs wide
  // expressions) is exactly what the validation experiments expose as
  // prediction error.
  constexpr double kAveragePairing = 0.87;
  return core * kAveragePairing + lib;
}

double InterpretationFunctions::memory_per_iteration(int accesses, int elem_bytes,
                                                     long long working_set) const {
  const auto& m = sau_.mem;
  // abstraction: every access streams unit-stride => elem/line of a miss
  const double lines_per_access =
      static_cast<double>(elem_bytes) / static_cast<double>(m.line_bytes);
  double capacity = 1.0;
  if (working_set > 0 && working_set <= m.dcache_bytes) {
    capacity = 0.2;
  } else if (working_set <= 4 * m.dcache_bytes) {
    capacity = 0.8;
  }
  return accesses * lines_per_access * capacity * m.miss_penalty;
}

IterCost InterpretationFunctions::iter_cost(const compiler::OpCounts& ops,
                                            int elem_bytes, long long working_set,
                                            long long inner_m) const {
  IterCost out;
  const double body = flat_ops(ops) +
                      memory_per_iteration(ops.loads + ops.stores, elem_bytes,
                                           working_set);
  out.per_iter_comp = body;
  out.per_iter_overhead = sau_.proc.loop_overhead;
  out.setup = sau_.proc.loop_setup;
  if (inner_m > 0) {
    out.per_iter_comp = sau_.proc.loop_setup +
                        static_cast<double>(inner_m) * (body + sau_.proc.loop_overhead) +
                        sau_.proc.t_store;
  }
  return out;
}

IterCost InterpretationFunctions::condt_cost(const compiler::OpCounts& body_ops,
                                             const compiler::OpCounts& mask_ops,
                                             double mask_prob, int elem_bytes,
                                             long long working_set,
                                             long long inner_m) const {
  mask_prob = std::clamp(mask_prob, 0.0, 1.0);
  IterCost out = iter_cost(body_ops, elem_bytes, working_set, inner_m);
  out.per_iter_comp = out.per_iter_comp * mask_prob +
                      (flat_ops(mask_ops) + sau_.proc.branch_overhead);
  return out;
}

ComputeEstimate InterpretationFunctions::iter_d(const compiler::OpCounts& ops,
                                                long long iters, int elem_bytes,
                                                long long working_set,
                                                long long inner_m) const {
  return iter_cost(ops, elem_bytes, working_set, inner_m).at(iters);
}

ComputeEstimate InterpretationFunctions::condt_d(const compiler::OpCounts& body_ops,
                                                 const compiler::OpCounts& mask_ops,
                                                 double mask_prob, long long iters,
                                                 int elem_bytes, long long working_set,
                                                 long long inner_m) const {
  return condt_cost(body_ops, mask_ops, mask_prob, elem_bytes, working_set, inner_m)
      .at(iters);
}

void InterpretationFunctions::iter_costs(const compiler::OpCounts& ops, int elem_bytes,
                                         std::span<const long long> working_set,
                                         std::span<const long long> inner_m,
                                         std::span<IterCost> out) const {
  for (std::size_t i = 0; i < out.size(); ++i) {
    out[i] = iter_cost(ops, elem_bytes, working_set[i], inner_m[i]);
  }
}

void InterpretationFunctions::condt_costs(const compiler::OpCounts& body_ops,
                                          const compiler::OpCounts& mask_ops,
                                          std::span<const double> mask_prob, int elem_bytes,
                                          std::span<const long long> working_set,
                                          std::span<const long long> inner_m,
                                          std::span<IterCost> out) const {
  for (std::size_t i = 0; i < out.size(); ++i) {
    out[i] = condt_cost(body_ops, mask_ops, mask_prob[i], elem_bytes, working_set[i],
                        inner_m[i]);
  }
}

}  // namespace hpf90d::core
