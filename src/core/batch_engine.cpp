#include "core/batch_engine.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <numeric>

#include "obs/obs.hpp"
#include "support/diagnostics.hpp"

namespace hpf90d::core {

using compiler::SpmdKind;
using support::CompileError;

namespace {

/// hash_combine-style mixer for the control-path hash. Quality only
/// affects re-compaction grouping (a collision re-evicts), never results.
std::uint64_t mix(std::uint64_t h, std::uint64_t v) {
  return (h ^ (v + 0x9e3779b97f4a7c15ULL + (h << 12) + (h >> 4))) *
         0x2545f4914f6cdd1dULL;
}

/// Largest both-arm node count batch_if will speculate on. Walking both
/// arms doubles the visit cost of the branch body for every lane, so the
/// trade only wins when the arms are a handful of cheap nodes; anything
/// bigger falls back to evicting the minority.
constexpr std::int32_t kSpeculateMaxArmNodes = 16;

}  // namespace

template <class Pred, class Outcome>
void BatchEngine::evict_unless(Pred keep, Outcome outcome, bool rebatchable) {
  const std::uint64_t base = path_hash_;
  const auto key_of = [&](int l) {
    return mix(base, static_cast<std::uint64_t>(static_cast<long long>(outcome(l))));
  };
  std::size_t w = 0;
  for (const int l : active_) {
    if (keep(l)) {
      active_[w++] = l;
    } else {
      evicted_.push_back(EvictedLane{l, key_of(l), rebatchable});
    }
  }
  active_.resize(w);
  // Every site folds the kept outcome in — even when nothing evicted — so
  // the hash encodes the whole decision sequence, not just divergences.
  if (w > 0) path_hash_ = key_of(active_[0]);
}

bool BatchEngine::interpret(const compiler::CompiledProgram& prog,
                            const machine::MachineModel& machine,
                            const PredictOptions& options,
                            std::span<const BatchLane> lanes, PredictionResult* results,
                            BatchRunStats& stats, std::vector<EvictedLane>* deferred) {
  if (options.trace || lanes.size() < 2) return false;
  const compiler::CostProgram* cp = prog.cost_program.get();
  // An incomplete bytecode would need per-lane tree evaluation — i.e. a
  // per-lane ScalarEnv — mid-batch; those programs stay on the scalar path.
  if (cp == nullptr || !cp->complete || prog.root == nullptr) return false;
  if (prog.node_ops.size() != static_cast<std::size_t>(prog.node_count)) return false;

  const obs::Span window_span(obs_sink_, obs::Phase::LockstepWindow, lanes.size());

  prog_ = &prog;
  cost_ = cp;
  lanes_ = lanes;
  stats_ = {};
  speculate_ = options.speculate_branches;
  if_depth_ = 0;

  const std::size_t L = lanes.size();
  if (engines_.size() < L) engines_.resize(L);
  for (std::size_t l = 0; l < L; ++l) {
    engines_[l].rebind_lane(prog, *lanes[l].layout, machine, options, *lanes[l].bindings);
  }

  // Seed the SoA environment: one seed_environment fold per distinct
  // bindings object (sweep order keeps equal bindings adjacent), scattered
  // into each lane's column.
  const std::size_t symbols = prog.symbols.size();
  env_.reset(symbols, L);
  const front::Bindings* seeded = nullptr;
  for (std::size_t l = 0; l < L; ++l) {
    if (const compiler::SeededValues* sv = lanes[l].seed) {
      // Precomputed fold: scatter only the defined symbols.
      for (const auto& [s, v] : sv->defined) env_.define(s, l, v);
      continue;
    }
    if (lanes[l].bindings != seeded) {
      seed_env_.reset(symbols);
      compiler::seed_environment(seed_env_, prog.symbols, *lanes[l].bindings);
      seeded = lanes[l].bindings;
    }
    for (std::size_t s = 0; s < symbols; ++s) {
      if (seed_env_.is_defined(static_cast<int>(s))) {
        env_.define(static_cast<int>(s), l, seed_env_.value(static_cast<int>(s)));
      }
    }
  }

  // Register columns are stride-padded; align the file to a cache line so
  // every column starts on an aligned 8-double boundary.
  regs_.resize(static_cast<std::size_t>(cp->max_regs) * env_.stride() + 8);
  const auto raw = reinterpret_cast<std::uintptr_t>(regs_.data());
  regs_aligned_ = reinterpret_cast<double*>((raw + 63) & ~std::uintptr_t{63});
  vals_.resize(env_.stride());
  ok_.resize(env_.stride());
  pts_.resize(L);
  b_lo_.resize(L);
  b_hi_.resize(L);
  b_step_.resize(L);
  b_fail_.resize(L);
  active_.resize(L);
  std::iota(active_.begin(), active_.end(), 0);
  evicted_.clear();
  path_hash_ = 0xcbf29ce484222325ULL;

  walk_seq(prog.root->children);

  for (const int l : active_) {
    engines_[static_cast<std::size_t>(l)].finalize_into(results[l]);
  }
  stats_.evicted_lanes = evicted_.size();
  std::sort(evicted_.begin(), evicted_.end(),
            [](const EvictedLane& a, const EvictedLane& b) { return a.lane < b.lane; });
  if (deferred != nullptr) {
    // Eviction-export mode: the caller's re-compaction scheduler regroups
    // equal-key lanes into fresh lockstep batches; their results[] slots
    // stay untouched here.
    deferred->insert(deferred->end(), evicted_.begin(), evicted_.end());
  } else {
    // Divergent lanes replay from scratch on the scalar path (lane order,
    // so any exception surfaces deterministically).
    stats_.replayed_lanes = evicted_.size();
    for (const EvictedLane& ev : evicted_) {
      const auto u = static_cast<std::size_t>(ev.lane);
      auto& e = engines_[u];
      e.rebind(prog, *lanes[u].layout, machine, options, *lanes[u].bindings);
      e.interpret_into(results[ev.lane]);
    }
  }
  stats = stats_;
  return true;
}

void BatchEngine::walk_seq(const std::vector<compiler::SpmdNodePtr>& nodes) {
  for (const auto& n : nodes) walk(*n);
}

void BatchEngine::walk(const SpmdNode& n) {
  if (active_.empty()) return;
  stats_.ir_visits++;
  stats_.lane_visits += active_.size();
  for (const int l : active_) engines_[static_cast<std::size_t>(l)].note_visit(n);
  switch (n.kind) {
    case SpmdKind::Seq: walk_seq(n.children); break;
    case SpmdKind::ScalarAssign: batch_scalar_assign(n); break;
    case SpmdKind::LocalLoop: batch_local_loop(n); break;
    case SpmdKind::OverlapComm:
      for (const int l : active_) engines_[static_cast<std::size_t>(l)].walk_overlap(n);
      break;
    case SpmdKind::CShiftComm: batch_cshift(n); break;
    case SpmdKind::GatherComm:
    case SpmdKind::ScatterComm: batch_irregular(n); break;
    case SpmdKind::SliceBroadcast:
      for (const int l : active_) engines_[static_cast<std::size_t>(l)].walk_slice_bcast(n);
      break;
    case SpmdKind::Reduce: batch_reduce(n); break;
    case SpmdKind::DoLoop: batch_do(n); break;
    case SpmdKind::WhileLoop: batch_while(n); break;
    case SpmdKind::IfBlock: batch_if(n); break;
    case SpmdKind::HostIO:
      for (const int l : active_) engines_[static_cast<std::size_t>(l)].walk_hostio(n);
      break;
  }
}

void BatchEngine::eval(std::int32_t expr_id) {
  stats_.simd_stripes += compiler::eval_code_batch(
      *cost_, cost_->exprs[static_cast<std::size_t>(expr_id)], env_, regs_aligned_,
      vals_.data(), ok_.data());
}

void BatchEngine::batch_scalar_assign(const SpmdNode& n) {
  const compiler::NodeCost& nc = cost_->nodes[static_cast<std::size_t>(n.id)];
  eval(nc.rhs);
  const bool int_lhs = n.lhs->type == front::TypeBase::Integer;
  const int sym = n.lhs->symbol;
  for (const int l : active_) {
    if (ok_[static_cast<std::size_t>(l)]) {
      const double v = vals_[static_cast<std::size_t>(l)];
      env_.define(sym, static_cast<std::size_t>(l), int_lhs ? std::trunc(v) : v);
    }
  }
  // lanes share the machine, so the Seq cost is lane-invariant
  const double t = engines_[static_cast<std::size_t>(active_[0])].seq_cost(n);
  for (const int l : active_) engines_[static_cast<std::size_t>(l)].charge_all(n.id, t, 'C');
}

void BatchEngine::batch_do(const SpmdNode& n) {
  const compiler::NodeCost& nc = cost_->nodes[static_cast<std::size_t>(n.id)];
  for (const int l : active_) b_fail_[static_cast<std::size_t>(l)] = 0;
  eval(nc.do_lo);
  for (const int l : active_) {
    const auto u = static_cast<std::size_t>(l);
    if (!ok_[u]) b_fail_[u] = 1;
    else b_lo_[u] = std::llround(vals_[u]);
  }
  eval(nc.do_hi);
  for (const int l : active_) {
    const auto u = static_cast<std::size_t>(l);
    if (!ok_[u]) b_fail_[u] = 1;
    else b_hi_[u] = std::llround(vals_[u]);
  }
  if (n.do_step) {
    eval(nc.do_step);
    for (const int l : active_) {
      const auto u = static_cast<std::size_t>(l);
      if (!ok_[u]) b_fail_[u] = 1;
      else b_step_[u] = std::llround(vals_[u]);
    }
  } else {
    for (const int l : active_) b_step_[static_cast<std::size_t>(l)] = 1;
  }
  // a failing bound or zero step throws on the scalar path: evict
  const auto bound_ok = [&](int l) {
    const auto u = static_cast<std::size_t>(l);
    return b_fail_[u] == 0 && b_step_[u] != 0;
  };
  evict_unless(bound_ok, [&](int l) { return bound_ok(l) ? 0 : 1; }, false);
  if (active_.empty()) return;

  const auto trips_of = [&](int l) {
    const auto u = static_cast<std::size_t>(l);
    const long long lo = b_lo_[u], hi = b_hi_[u], st = b_step_[u];
    if (st > 0) return hi >= lo ? (hi - lo) / st + 1 : 0;
    return lo >= hi ? (lo - hi) / (-st) + 1 : 0;
  };
  const long long trips = trips_of(active_[0]);
  // benign divergence: lanes sharing a trip count re-batch in lockstep
  evict_unless([&](int l) { return trips_of(l) == trips; }, trips_of, true);
  if (active_.empty()) return;

  auto& fn = *engines_[static_cast<std::size_t>(active_[0])].fn_;
  const double setup = fn.iter_setup();
  const double over = fn.iter_overhead();
  for (const int l : active_) engines_[static_cast<std::size_t>(l)].charge_all(n.id, setup, 'O');
  for (long long t = 0; t < trips; ++t) {
    for (const int l : active_) {
      const auto u = static_cast<std::size_t>(l);
      env_.define(n.do_symbol, u, static_cast<double>(b_lo_[u] + t * b_step_[u]));
    }
    for (const int l : active_) engines_[static_cast<std::size_t>(l)].charge_all(n.id, over, 'O');
    walk_seq(n.children);
    if (active_.empty()) return;
  }
}

void BatchEngine::batch_while(const SpmdNode& n) {
  const compiler::NodeCost& nc = cost_->nodes[static_cast<std::size_t>(n.id)];
  long long trips = 0;
  while (true) {
    if (active_.empty()) return;
    eval(nc.cond);
    // a data-dependent condition throws on the scalar path: evict
    evict_unless([&](int l) { return ok_[static_cast<std::size_t>(l)] != 0; },
                 [&](int l) { return ok_[static_cast<std::size_t>(l)] != 0 ? 0 : 1; },
                 false);
    if (active_.empty()) return;
    const bool taken = vals_[static_cast<std::size_t>(active_[0])] != 0.0;
    const auto taken_of = [&](int l) {
      return vals_[static_cast<std::size_t>(l)] != 0.0 ? 1 : 0;
    };
    evict_unless([&](int l) { return (taken_of(l) != 0) == taken; }, taken_of, true);
    const double t = engines_[static_cast<std::size_t>(active_[0])].branch_cost(n);
    for (const int l : active_) engines_[static_cast<std::size_t>(l)].charge_all(n.id, t, 'O');
    if (!taken) return;
    if (++trips > 1000000) {
      throw CompileError(n.loc, "do while exceeded the interpretation trip limit");
    }
    walk_seq(n.children);
  }
}

void BatchEngine::batch_if(const SpmdNode& n) {
  const compiler::NodeCost& nc = cost_->nodes[static_cast<std::size_t>(n.id)];
  eval(nc.cond);
  // unresolved conditions assume the then-branch (no eviction on failure)
  const auto then_of = [&](int l) {
    const auto u = static_cast<std::size_t>(l);
    return ok_[u] == 0 || vals_[u] != 0.0;
  };
  if (speculate_ && nc.spec_nodes >= 0 && nc.spec_nodes <= kSpeculateMaxArmNodes) {
    const std::size_t depth = if_depth_;
    if (if_pool_.size() <= depth) if_pool_.resize(depth + 1);
    if_pool_[depth].then_lanes.clear();
    if_pool_[depth].else_lanes.clear();
    for (const int l : active_) {
      (then_of(l) ? if_pool_[depth].then_lanes : if_pool_[depth].else_lanes)
          .push_back(l);
    }
    if (!if_pool_[depth].then_lanes.empty() && !if_pool_[depth].else_lanes.empty()) {
      // Both sides populated and the arms are cheap: walk BOTH arms, each
      // with the lane subset that takes it, instead of evicting the
      // minority. Each lane still prices exactly the nodes its scalar
      // interpretation would — the split changes scheduling, never results.
      ++stats_.speculated_branches;
      stats_.speculated_lanes += active_.size();
      const double t = engines_[static_cast<std::size_t>(active_[0])].branch_cost(n);
      for (const int l : active_) {
        engines_[static_cast<std::size_t>(l)].charge_all(n.id, t, 'O');
      }
      const std::uint64_t saved = path_hash_;
      ++if_depth_;
      // Per-arm hashes use the same outcome encoding evict_unless would
      // (then = 1, else = 0), so a lane evicted inside an arm carries the
      // key it would have in a unanimous window and regroups with those.
      // Nested speculation can grow if_pool_, so re-index after each walk.
      path_hash_ = mix(saved, 1);
      active_.swap(if_pool_[depth].then_lanes);
      walk_seq(n.children);
      active_.swap(if_pool_[depth].then_lanes);  // then-arm survivors
      path_hash_ = mix(saved, 0);
      active_.swap(if_pool_[depth].else_lanes);
      walk_seq(n.else_children);
      active_.swap(if_pool_[depth].else_lanes);  // else-arm survivors
      --if_depth_;
      // Merge the survivors (each subset kept its ascending lane order) so
      // lane order — and with it every later active_[0] representative
      // choice — matches a window that never split.
      IfScratch& sc = if_pool_[depth];
      sc.merged.clear();
      std::merge(sc.then_lanes.begin(), sc.then_lanes.end(), sc.else_lanes.begin(),
                 sc.else_lanes.end(), std::back_inserter(sc.merged));
      active_.swap(sc.merged);
      // Join marker: survivors of both arms share one downstream hash,
      // distinct from either arm's (2 is not a then/else outcome).
      path_hash_ = mix(saved, 2);
      return;
    }
  }
  const bool taken = then_of(active_[0]);
  evict_unless([&](int l) { return then_of(l) == taken; },
               [&](int l) { return then_of(l) ? 1 : 0; }, true);
  const double t = engines_[static_cast<std::size_t>(active_[0])].branch_cost(n);
  for (const int l : active_) engines_[static_cast<std::size_t>(l)].charge_all(n.id, t, 'O');
  walk_seq(taken ? n.children : n.else_children);
}

void BatchEngine::resolve_space_batch(const SpmdNode& n, const compiler::NodeCost& nc) {
  const std::size_t L = lanes_.size();
  const std::size_t dims = n.space.size();
  sp_lo_.resize(dims * L);
  sp_hi_.resize(dims * L);
  sp_step_.resize(dims * L);
  sp_fail_.assign(L, 0);
  for (std::size_t d = 0; d < dims; ++d) {
    const std::int32_t* sc = cost_->space_codes.data() + nc.space_first + 3 * d;
    eval(sc[0]);
    for (const int l : active_) {
      const auto u = static_cast<std::size_t>(l);
      if (!ok_[u]) sp_fail_[u] = 1;
      else sp_lo_[d * L + u] = std::llround(vals_[u]);
    }
    eval(sc[1]);
    for (const int l : active_) {
      const auto u = static_cast<std::size_t>(l);
      if (!ok_[u]) sp_fail_[u] = 1;
      else sp_hi_[d * L + u] = std::llround(vals_[u]);
    }
    if (sc[2] >= 0) {
      eval(sc[2]);
      for (const int l : active_) {
        const auto u = static_cast<std::size_t>(l);
        if (!ok_[u]) sp_fail_[u] = 1;
        else sp_step_[d * L + u] = std::llround(vals_[u]);
      }
    } else {
      for (const int l : active_) sp_step_[d * L + static_cast<std::size_t>(l)] = 1;
    }
  }
}

void BatchEngine::fill_space(int l, std::size_t dims, Space& sp) const {
  const std::size_t L = lanes_.size();
  sp.lo.resize(dims);
  sp.hi.resize(dims);
  sp.step.resize(dims);
  for (std::size_t d = 0; d < dims; ++d) {
    sp.lo[d] = sp_lo_[d * L + static_cast<std::size_t>(l)];
    sp.hi[d] = sp_hi_[d * L + static_cast<std::size_t>(l)];
    sp.step[d] = sp_step_[d * L + static_cast<std::size_t>(l)];
  }
}

void BatchEngine::resolve_lane_spaces(const std::vector<int>& which, std::size_t dims) {
  const std::size_t P = which.size();
  const std::size_t L = lanes_.size();
  space_ptrs_.resize(P);
  bool uniform = true;
  const auto u0 = static_cast<std::size_t>(which[0]);
  for (std::size_t d = 0; d < dims && uniform; ++d) {
    for (std::size_t i = 1; i < P; ++i) {
      const auto u = static_cast<std::size_t>(which[i]);
      if (sp_lo_[d * L + u] != sp_lo_[d * L + u0] ||
          sp_hi_[d * L + u] != sp_hi_[d * L + u0] ||
          sp_step_[d * L + u] != sp_step_[d * L + u0]) {
        uniform = false;
        break;
      }
    }
  }
  res_pts_.resize(P);
  if (uniform) {
    fill_space(which[0], dims, sp_scratch_);
    const long long pts = sp_scratch_.points();
    for (std::size_t i = 0; i < P; ++i) {
      space_ptrs_[i] = &sp_scratch_;
      res_pts_[i] = pts;
    }
    return;
  }
  spaces_.resize(P);
  for (std::size_t i = 0; i < P; ++i) {
    fill_space(which[i], dims, spaces_[i]);
    space_ptrs_[i] = &spaces_[i];
    res_pts_[i] = spaces_[i].points();
  }
}

void BatchEngine::batch_local_loop(const SpmdNode& n) {
  const compiler::NodeCost& nc = cost_->nodes[static_cast<std::size_t>(n.id)];
  resolve_space_batch(n, nc);
  // a failing bound throws on the scalar path: evict
  evict_unless([&](int l) { return sp_fail_[static_cast<std::size_t>(l)] == 0; },
               [&](int l) { return sp_fail_[static_cast<std::size_t>(l)]; }, false);
  if (active_.empty()) return;

  const std::size_t dims = n.space.size();
  resolve_lane_spaces(active_, dims);
  for (std::size_t i = 0; i < active_.size(); ++i) {
    pts_[static_cast<std::size_t>(active_[i])] = res_pts_[i];
  }
  if (n.inner) {
    // inner reduce bounds: the scalar walk evaluates them only after the
    // points()>0 check, so a failing bound evicts only lanes that price
    eval(nc.inner_hi);
    for (const int l : active_) {
      const auto u = static_cast<std::size_t>(l);
      b_fail_[u] = ok_[u] ? 0 : 1;
      if (ok_[u]) b_hi_[u] = std::llround(vals_[u]);
    }
    eval(nc.inner_lo);
    for (const int l : active_) {
      const auto u = static_cast<std::size_t>(l);
      if (!ok_[u]) b_fail_[u] = 1;
      else b_lo_[u] = std::llround(vals_[u]);
    }
    const auto inner_ok = [&](int l) {
      const auto u = static_cast<std::size_t>(l);
      return pts_[u] <= 0 || b_fail_[u] == 0;
    };
    evict_unless(inner_ok, [&](int l) { return inner_ok(l) ? 0 : 1; }, false);
    if (active_.empty()) return;
  }

  priced_.clear();
  for (const int l : active_) {
    if (pts_[static_cast<std::size_t>(l)] > 0) priced_.push_back(l);
  }
  if (priced_.empty()) return;

  const std::size_t P = priced_.size();
  ws_.resize(P);
  im_.resize(P);
  mp_.resize(P);
  costs_.resize(P);
  resolve_lane_spaces(priced_, dims);
  for (std::size_t i = 0; i < P; ++i) {
    const auto u = static_cast<std::size_t>(priced_[i]);
    ws_[i] = engines_[u].working_set_estimate(n, res_pts_[i]);
    im_[i] = n.inner ? std::max<long long>(0, b_hi_[u] - b_lo_[u] + 1) : 0;
    mp_[i] = engines_[u].mask_probability();
  }
  const InterpretationEngine& e0 = engines_[static_cast<std::size_t>(priced_[0])];
  const int elem = front::type_size_bytes(n.lhs->type);
  if (n.mask) {
    e0.fn_->condt_costs(e0.body_ops(n), e0.cond_ops(n), mp_, elem, ws_, im_, costs_);
  } else {
    e0.fn_->iter_costs(e0.body_ops(n), elem, ws_, im_, costs_);
  }
  InterpretationEngine::price_iters_batch(n, engines_.data(), priced_.data(), P,
                                          space_ptrs_.data(), res_pts_.data(),
                                          costs_.data());
}

void BatchEngine::batch_reduce(const SpmdNode& n) {
  const compiler::NodeCost& nc = cost_->nodes[static_cast<std::size_t>(n.id)];
  resolve_space_batch(n, nc);
  evict_unless([&](int l) { return sp_fail_[static_cast<std::size_t>(l)] == 0; },
               [&](int l) { return sp_fail_[static_cast<std::size_t>(l)]; }, false);
  if (active_.empty()) return;

  const std::size_t dims = n.space.size();
  const std::size_t P = active_.size();
  ws_.resize(P);
  im_.assign(P, 0);
  costs_.resize(P);
  resolve_lane_spaces(active_, dims);
  for (std::size_t i = 0; i < P; ++i) {
    ws_[i] = engines_[static_cast<std::size_t>(active_[i])].working_set_estimate(
        n, res_pts_[i]);
  }
  const InterpretationEngine& e0 = engines_[static_cast<std::size_t>(active_[0])];
  e0.fn_->iter_costs(e0.body_ops(n), front::type_size_bytes(n.reduce_arg->type), ws_, im_,
                     costs_);
  // lanes are independent, so batching all price_iters charges ahead of all
  // reduce-comm charges leaves every lane's own charge order unchanged
  InterpretationEngine::price_iters_batch(n, engines_.data(), active_.data(), P,
                                          space_ptrs_.data(), res_pts_.data(),
                                          costs_.data());
  InterpretationEngine::price_reduce_comm_batch(n, engines_.data(), active_.data(), P);
}

void BatchEngine::batch_cshift(const SpmdNode& n) {
  const compiler::NodeCost& nc = cost_->nodes[static_cast<std::size_t>(n.id)];
  eval(nc.comm_amount);
  for (const int l : active_) {
    const auto u = static_cast<std::size_t>(l);
    // an unevaluable shift amount defaults to 1 (no eviction), as scalar
    const long long shift = ok_[u] ? std::llround(vals_[u]) : 1;
    engines_[u].price_cshift(n, shift);
  }
}

void BatchEngine::batch_irregular(const SpmdNode& n) {
  const compiler::NodeCost& nc = cost_->nodes[static_cast<std::size_t>(n.id)];
  // the scalar walk returns before resolving the space on one processor:
  // a 1-proc lane must neither price nor evict on a failing bound
  resolve_space_batch(n, nc);
  const auto irr_ok = [&](int l) {
    const auto u = static_cast<std::size_t>(l);
    return engines_[u].nprocs_ <= 1 || sp_fail_[u] == 0;
  };
  evict_unless(irr_ok, [&](int l) { return irr_ok(l) ? 0 : 1; }, false);
  const std::size_t dims = n.space.size();
  for (const int l : active_) {
    const auto u = static_cast<std::size_t>(l);
    if (engines_[u].nprocs_ <= 1) continue;
    fill_space(l, dims, sp_scratch_);
    engines_[u].price_irregular(n, sp_scratch_);
  }
}

}  // namespace hpf90d::core
