// output.hpp — the output module (paper §3.4, §4.2 "output parse").
//
// Three forms of output:
//  1. a generic performance profile of the entire application broken into
//     communication / computation / overhead components, with the same
//     measures available for individual AAUs and sub-graphs of the AAG;
//  2. per-source-line metric queries;
//  3. an interpretation trace usable as input to the ParaGraph
//     visualization package.
#pragma once

#include <string>

#include "core/aag.hpp"
#include "core/engine.hpp"

namespace hpf90d::core {

class OutputModule {
 public:
  OutputModule(const SynchronizedAAG& saag, const PredictionResult& result)
      : saag_(saag), result_(result) {}

  /// Cumulative metrics for the whole application.
  [[nodiscard]] AAUMetric whole_program() const;

  /// Metrics of a single AAU.
  [[nodiscard]] AAUMetric aau(int id) const;

  /// Cumulative metrics of the sub-AAG rooted at `id`.
  [[nodiscard]] AAUMetric sub_aag(int id) const;

  /// Metrics attached to a source line.
  [[nodiscard]] AAUMetric line(std::uint32_t line_no) const;

  /// Human-readable profile: whole program plus the top AAUs by time.
  [[nodiscard]] std::string profile(int top = 12) const;

  /// ParaGraph-compatible event trace. The format follows ParaGraph's
  /// tracefile records: one event per line,
  ///   <type> <proc> <time-us> <aau> <category>
  /// with type -3/-4 marking compute begin/end and -21/-22 send/recv-like
  /// communication phases.
  [[nodiscard]] std::string paragraph_trace() const;

 private:
  const SynchronizedAAG& saag_;
  const PredictionResult& result_;
};

}  // namespace hpf90d::core
