#include "core/output.hpp"

#include <algorithm>
#include <sstream>

#include "support/table.hpp"
#include "support/text.hpp"

namespace hpf90d::core {

AAUMetric OutputModule::whole_program() const {
  AAUMetric total;
  for (const auto& m : result_.per_aau) total.add(m);
  return total;
}

AAUMetric OutputModule::aau(int id) const {
  return result_.per_aau.at(static_cast<std::size_t>(id));
}

AAUMetric OutputModule::sub_aag(int id) const {
  AAUMetric total;
  for (int a : saag_.subtree(id)) total.add(result_.per_aau.at(static_cast<std::size_t>(a)));
  return total;
}

AAUMetric OutputModule::line(std::uint32_t line_no) const {
  AAUMetric total;
  for (int a : saag_.aaus_on_line(line_no)) {
    // include nested work (a forall's comm nodes share its source line
    // already; loops accumulate their subtree)
    total.add(sub_aag(a));
  }
  return total;
}

std::string OutputModule::profile(int top) const {
  using support::format_seconds;
  const AAUMetric total = whole_program();
  std::ostringstream os;
  os << "predicted execution time: " << format_seconds(result_.total) << '\n';
  os << "  computation:   " << format_seconds(total.comp) << '\n';
  os << "  communication: " << format_seconds(total.comm) << '\n';
  os << "  overheads:     " << format_seconds(total.overhead) << '\n';
  os << "  wait:          " << format_seconds(total.wait) << '\n';

  std::vector<int> ids;
  for (const auto& a : saag_.aaus()) {
    if (a.node == nullptr || a.kind == AAUKind::Seq) continue;
    ids.push_back(a.id);
  }
  std::sort(ids.begin(), ids.end(), [&](int a, int b) {
    return result_.per_aau[static_cast<std::size_t>(a)].total() >
           result_.per_aau[static_cast<std::size_t>(b)].total();
  });
  if (static_cast<int>(ids.size()) > top) ids.resize(static_cast<std::size_t>(top));

  support::TextTable table({"AAU", "kind", "line", "comp", "comm", "ovhd", "wait"});
  for (int id : ids) {
    const AAU& a = saag_.at(id);
    const AAUMetric& m = result_.per_aau[static_cast<std::size_t>(id)];
    table.add_row({std::to_string(id) + " " + a.label,
                   std::string(aau_kind_name(a.kind)),
                   a.loc.valid() ? std::to_string(a.loc.line) : "-",
                   format_seconds(m.comp), format_seconds(m.comm),
                   format_seconds(m.overhead), format_seconds(m.wait)});
  }
  os << table.str();
  return os.str();
}

std::string OutputModule::paragraph_trace() const {
  std::ostringstream os;
  os << "# ParaGraph-style interpretation trace\n";
  os << "# <type> <proc> <time-us> <aau> <category>\n";
  for (const auto& ev : result_.trace) {
    int begin_type = -3, end_type = -4;  // compute block
    if (ev.category == 'M' || ev.category == 'I') {
      begin_type = -21;  // send/comm begin
      end_type = -22;
    } else if (ev.category == 'W') {
      begin_type = -11;  // idle
      end_type = -12;
    }
    os << begin_type << ' ' << ev.proc << ' '
       << static_cast<long long>(ev.t_begin * 1e6) << ' ' << ev.aau << ' '
       << ev.category << '\n';
    os << end_type << ' ' << ev.proc << ' '
       << static_cast<long long>(ev.t_end * 1e6) << ' ' << ev.aau << ' '
       << ev.category << '\n';
  }
  return os.str();
}

}  // namespace hpf90d::core
