// engine.hpp — the interpretation engine (paper §3.3, §4.2).
//
// The interpretation parse walks the SAAG and applies the per-AAU
// interpretation functions against the SAU parameters, maintaining
// computation / communication / overhead / wait times per AAU plus the
// global clock. Replicated scalar control flow is traced by actually
// evaluating it (the critical-variable machinery); data values are never
// touched — iteration counts come from the data-mapping formulas, mask
// effects from probabilities, and communication volumes from the layout.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "compiler/cost_program.hpp"
#include "compiler/eval.hpp"
#include "compiler/mapping.hpp"
#include "compiler/spmd_ir.hpp"
#include "core/aag.hpp"
#include "core/critical.hpp"
#include "core/interp_fn.hpp"
#include "core/metrics.hpp"
#include "machine/sag.hpp"

namespace hpf90d::core {

struct PredictOptions {
  /// Assumed forall-mask truth probability when the binding "mask__prob"
  /// is absent.
  double mask_probability = 1.0;
  machine::CollectiveAlgo collective = machine::CollectiveAlgo::RecursiveTree;
  /// Record a ParaGraph-style event trace (see output.hpp).
  bool trace = false;
  std::size_t max_trace_events = 200000;
  /// Fill PredictionResult::per_aau / proc_clock / trace. The sweep hot
  /// path clears this: totals and the phase sums (comp/comm/overhead/wait)
  /// are always filled with identical arithmetic, but the per-AAU and
  /// per-processor tables — which RunReport never reads — are skipped, so
  /// finalize costs O(nodes) instead of two vector copies per point.
  bool detailed = true;
  /// Batch-path only: when an IF splits the lanes of a lockstep window and
  /// both arms are cheap (loop-free, few nodes), walk BOTH arms — each with
  /// the lane subset that takes it — instead of evicting the minority.
  /// Every lane still prices exactly the nodes its scalar interpretation
  /// would, so results are bit-identical either way; the knob trades a
  /// second arm walk for keeping divergent lanes in lockstep. Ignored by
  /// the scalar interpreter.
  bool speculate_branches = false;
};

/// One interpreted event for the trace output (ParaGraph-compatible
/// rendering is done by the output module).
struct TraceEvent {
  double t_begin = 0;
  double t_end = 0;
  int proc = 0;
  int aau = -1;
  char category = 'C';  // 'C'ompute, 'M'essage, 'O'verhead, 'I'/O
};

struct PredictionResult {
  double total = 0;  // predicted execution time (global clock)
  std::vector<double> proc_clock;
  std::vector<AAUMetric> per_aau;  // indexed by AAU id, averaged over procs
  double comp = 0, comm = 0, overhead = 0, wait = 0;
  std::vector<TraceEvent> trace;
};

/// The engine is reusable: a default-constructed engine is an *arena* that
/// `rebind()` points at a new (program, layout, machine, options, bindings)
/// tuple before each `interpret()`/`interpret_into()` call. Rebinding reuses
/// the clock/metric/environment scratch buffers, so a per-worker engine
/// interprets thousands of sweep points without per-point heap churn while
/// producing bit-identical results to a freshly constructed engine.
class InterpretationEngine {
 public:
  /// Arena construction: no state bound yet; call rebind() before use.
  InterpretationEngine() = default;

  InterpretationEngine(const compiler::CompiledProgram& prog,
                       const compiler::DataLayout& layout,
                       const machine::MachineModel& machine,
                       const PredictOptions& options, const front::Bindings& bindings);

  /// Re-targets the engine, resetting all interpretation state exactly as
  /// construction would while reusing scratch allocations. Every referenced
  /// argument (including `bindings`) must outlive the next interpret call.
  void rebind(const compiler::CompiledProgram& prog, const compiler::DataLayout& layout,
              const machine::MachineModel& machine, const PredictOptions& options,
              const front::Bindings& bindings);

  /// Runs the interpretation algorithm over the whole SAAG. One-shot per
  /// rebind/construction: call rebind() again before the next run.
  [[nodiscard]] PredictionResult interpret();

  /// Same, assigning into `out` so its vectors' capacity is reused across
  /// sweep points (the arena hot path).
  void interpret_into(PredictionResult& out);

 private:
  using SpmdNode = compiler::SpmdNode;

  /// The batch engine drives lockstep interpretation through this engine's
  /// per-lane pricing methods (price_* / charge_all / walk_<comm>), which
  /// never read env_: expression values always arrive pre-evaluated from
  /// the shared SoA BatchEnv, so the batch and scalar paths share one
  /// pricing implementation and stay bit-identical by construction.
  friend class BatchEngine;

  /// rebind() minus the scalar environment reset/seed: in batch mode the
  /// BatchEngine's BatchEnv is the only environment, so per-lane engines
  /// skip the seed_environment fold entirely.
  void rebind_lane(const compiler::CompiledProgram& prog, const compiler::DataLayout& layout,
                   const machine::MachineModel& machine, const PredictOptions& options,
                   const front::Bindings& bindings);

  /// Shared tail of rebind()/rebind_lane().
  void rebind_common(const compiler::CompiledProgram& prog,
                     const compiler::DataLayout& layout,
                     const machine::MachineModel& machine, const PredictOptions& options,
                     const front::Bindings& bindings);

  /// Aggregation tail of interpret_into: turns the accumulated clocks and
  /// metrics into a PredictionResult without walking anything (the batch
  /// engine finalizes lanes it walked itself).
  void finalize_into(PredictionResult& out);

  void walk_seq(const std::vector<compiler::SpmdNodePtr>& nodes);
  void walk(const SpmdNode& n);
  void walk_scalar_assign(const SpmdNode& n);
  void walk_do(const SpmdNode& n);
  void walk_while(const SpmdNode& n);
  void walk_if(const SpmdNode& n);
  void walk_local_loop(const SpmdNode& n);
  void walk_reduce(const SpmdNode& n);
  void walk_overlap(const SpmdNode& n);
  void walk_cshift(const SpmdNode& n);
  void walk_irregular(const SpmdNode& n);
  void walk_slice_bcast(const SpmdNode& n);
  void walk_hostio(const SpmdNode& n);

  struct ResolvedSpace {
    std::vector<long long> lo, hi, step;
    [[nodiscard]] long long points() const;
    [[nodiscard]] long long dim_count(std::size_t d) const;
  };
  [[nodiscard]] ResolvedSpace resolve_space(const SpmdNode& n);

  // --- bytecode fast path ----------------------------------------------------
  // Priced expressions evaluate through the program's flattened CostProgram
  // when one exists (expr_id >= 0 and the expression compiled); otherwise
  // through the tree walker. Results are bit-identical either way,
  // including the failure set.
  [[nodiscard]] const compiler::NodeCost& ncost(const SpmdNode& n) const;
  [[nodiscard]] std::optional<double> eval_opt(std::int32_t expr_id, const front::Expr& e);
  /// eval_int through the bytecode; a bytecode failure re-runs the tree
  /// evaluator so the thrown CompileError carries the curated diagnostic.
  [[nodiscard]] long long eval_int_fast(std::int32_t expr_id, const front::Expr& e);

  // --- per-lane pricing (shared scalar/batch; never reads env_) -------------
  void note_visit(const SpmdNode& n) { metric(n.id).visits++; }
  void charge_all(int aau, double t, char category);
  [[nodiscard]] double seq_cost(const SpmdNode& n) const { return fn_->seq(body_ops(n)); }
  [[nodiscard]] double branch_cost(const SpmdNode& n) const { return fn_->condt(cond_ops(n)); }
  [[nodiscard]] IterCost local_loop_cost(const SpmdNode& n, const ResolvedSpace& space,
                                         long long inner_m) const;
  [[nodiscard]] IterCost reduce_cost(const SpmdNode& n, const ResolvedSpace& space) const;
  void price_iters(const SpmdNode& n, const ResolvedSpace& space, const IterCost& cost);
  void price_reduce_comm(const SpmdNode& n);
  void price_cshift(const SpmdNode& n, long long shift);
  void price_irregular(const SpmdNode& n, const ResolvedSpace& space);

  /// Charging tail of price_iters against precomputed per-proc counts.
  void price_iters_on(const SpmdNode& n, const IterCost& cost,
                      const std::vector<long long>& iters);

  // --- batched pricing (BatchEngine: all lanes of a node in one pass) -------
  // Each engines[lanes[i]] is charged exactly what the scalar call sequence
  // would charge it (lanes are independent — distinct clocks and metrics —
  // so looping lanes inside one call is bit-identical to one call per
  // lane), but the node's dispatch, space plumbing, and cost fetches happen
  // once per node instead of once per lane.
  /// price_iters for lanes[0..count): spaces[i] points at lane i's resolved
  /// space (uniform lanes may all point at one shared space) and pts[i]
  /// carries its precomputed points() so replicated nodes never recount.
  static void price_iters_batch(const SpmdNode& n, InterpretationEngine* engines,
                                const int* lanes, std::size_t count,
                                const ResolvedSpace* const* spaces,
                                const long long* pts, const IterCost* costs);
  /// sync_then_charge_comm with a lane-uniform per-proc cost for each lane
  /// (cost_per_lane[i] <= 0 skips lane i's 'M' charges but still syncs).
  static void sync_then_charge_comm_batch(const SpmdNode& n,
                                          InterpretationEngine* engines,
                                          const int* lanes, std::size_t count,
                                          const double* cost_per_lane);
  /// price_reduce_comm for every lane in one pass (skips lanes it does not
  /// apply to, exactly like the scalar predicate).
  static void price_reduce_comm_batch(const SpmdNode& n, InterpretationEngine* engines,
                                      const int* lanes, std::size_t count);

  /// Analytic per-processor iteration counts under owner-computes; the
  /// result lives in iters_scratch_ (valid until the next call).
  /// `replicated_pts` >= 0 supplies a precomputed space.points() used when
  /// the node has no home array (every processor runs the whole space).
  const std::vector<long long>& local_iterations(const SpmdNode& n,
                                                 const ResolvedSpace& space,
                                                 long long replicated_pts = -1);

  /// Boundary-slab elements of `map` at `proc` for an exchange of `width`
  /// along array dim `dim`.
  [[nodiscard]] long long slab_elements(const compiler::ArrayMap& map, int proc, int dim,
                                        long long width) const;

  [[nodiscard]] double mask_probability() const;
  [[nodiscard]] long long working_set_estimate(const SpmdNode& n,
                                               const ResolvedSpace& space) const;
  /// Same estimate from a precomputed space.points() (batch hot path).
  [[nodiscard]] long long working_set_estimate(const SpmdNode& n,
                                               long long space_points) const;

  void charge(int aau, int proc, double t, char category);
  void sync_then_charge_comm(const SpmdNode& n, const std::vector<double>& cost_per_proc);
  AAUMetric& metric(int aau) { return metrics_.at(static_cast<std::size_t>(aau)); }

  /// Per-node operation counts: computed once at compile time and carried
  /// by CompiledProgram::node_ops, so every arena and rebind shares one
  /// table (no per-engine cache to invalidate). at(): a hand-built program
  /// with unnumbered nodes (id -1) fails with std::out_of_range, exactly
  /// like the pre-hoist per-engine cache did.
  [[nodiscard]] const compiler::OpCounts& body_ops(const SpmdNode& n) const {
    return node_ops_->at(static_cast<std::size_t>(n.id)).body;
  }
  [[nodiscard]] const compiler::OpCounts& cond_ops(const SpmdNode& n) const {
    return node_ops_->at(static_cast<std::size_t>(n.id)).cond;
  }

  // Pointers (not references) so rebind() can re-target the engine; null
  // only between default construction and the first rebind.
  const compiler::CompiledProgram* prog_ = nullptr;
  const compiler::DataLayout* layout_ = nullptr;
  const machine::MachineModel* machine_ = nullptr;
  PredictOptions options_;
  const front::Bindings* bindings_ = nullptr;
  int nprocs_ = 0;
  /// mask_probability() resolved once per rebind — the "mask__prob" binding
  /// lookup is a hash probe that otherwise runs per priced masked node.
  double mask_prob_ = 1.0;

  compiler::ScalarEnv env_{0};
  // InterpretationFunctions holds SAU references, so retargeting is an
  // emplace rather than an assignment.
  std::optional<InterpretationFunctions> fn_;

  std::vector<double> clock_;
  std::vector<AAUMetric> metrics_;
  std::vector<TraceEvent> trace_;

  // Compile-time op counts for the bound program; points at
  // prog_->node_ops, or at fallback_node_ops_ for hand-built programs that
  // bypassed the pipeline (recomputed per rebind, never on the sweep path).
  const std::vector<compiler::NodeOpCounts>* node_ops_ = nullptr;
  std::vector<compiler::NodeOpCounts> fallback_node_ops_;

  // Flattened cost bytecode of the bound program (null for hand-built
  // programs — every priced expression then walks its tree) and the
  // engine's register file for it.
  const compiler::CostProgram* cost_ = nullptr;
  std::vector<double> regs_;

  // Worker-owned scratch (reused across points, overwritten per node):
  std::vector<long long> iters_scratch_;  // local_iterations result
  std::vector<double> cost_scratch_;      // per-processor comm costs
  std::vector<int> home_dim_scratch_;     // space dim -> home dim driver map
};

/// Throws support::CompileError listing every unresolved critical variable
/// (as the interactive tool would) when `bindings` leaves the program's
/// critical-variable set incomplete.
void require_critical_complete(const compiler::CompiledProgram& prog,
                               const front::Bindings& bindings);

/// Convenience wrapper: layout construction + critical-variable check +
/// interpretation in one call. Throws support::CompileError when a critical
/// variable is unresolved (listing it, as the interactive tool would).
[[nodiscard]] PredictionResult predict(const compiler::CompiledProgram& prog,
                                       const front::Bindings& bindings,
                                       const compiler::LayoutOptions& layout_options,
                                       const machine::MachineModel& machine,
                                       const PredictOptions& options = {});

/// Same, against a prebuilt layout (the session's content-addressed cache
/// path). Pure: reads the program, layout, and machine without mutating
/// shared state, so concurrent calls over the same arguments are safe.
[[nodiscard]] PredictionResult predict(const compiler::CompiledProgram& prog,
                                       const front::Bindings& bindings,
                                       const compiler::DataLayout& layout,
                                       const machine::MachineModel& machine,
                                       const PredictOptions& options = {});

}  // namespace hpf90d::core
