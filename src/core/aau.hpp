// aau.hpp — Application Abstraction Units (paper §3.2).
//
// Machine-independent application abstraction characterizes the application
// into AAUs, each representing a standard programming construct or a
// communication/synchronization operation. AAUs combine into the
// Application Abstraction Graph (AAG); superimposing the communication /
// synchronization structure yields the Synchronized AAG (SAAG).
#pragma once

#include <string>
#include <string_view>

#include "compiler/spmd_ir.hpp"

namespace hpf90d::core {

enum class AAUKind {
  Seq,     // sequential composition / straight-line computation
  Iter,    // replicated iterative construct (do / do while)
  IterD,   // distributed (data-parallel) iterative construct
  Condt,   // replicated conditional
  CondtD,  // data-parallel conditional (forall mask)
  Comm,    // communication operation
  Reduct,  // global reduction (communication + combining computation)
  IO,      // host input/output
};

[[nodiscard]] std::string_view aau_kind_name(AAUKind k) noexcept;

/// Classification of one SPMD node into its AAU kind.
[[nodiscard]] AAUKind classify_spmd_node(const compiler::SpmdNode& node) noexcept;

}  // namespace hpf90d::core
