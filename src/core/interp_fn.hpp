// interp_fn.hpp — the interpretation functions (paper §3.3).
//
// "An interpretation function is defined for each AAU type to compute its
// performance in terms of parameters exported by the associated SAU."
// These are *analytic* costs: flat per-operation pricing from the SAU's
// processing component, a coarse streaming memory heuristic from the memory
// component, and the contention-free communication formulas of
// machine::CommModel. Everything the abstraction does NOT know (pipeline
// pairing, access strides, realized mask fractions, network contention, OS
// noise) is precisely the prediction error the validation experiments
// measure.
#pragma once

#include <span>

#include "compiler/opcount.hpp"
#include "machine/comm_model.hpp"
#include "machine/sau.hpp"

namespace hpf90d::core {

struct ComputeEstimate {
  double comp = 0;
  double overhead = 0;

  [[nodiscard]] double total() const noexcept { return comp + overhead; }
};

/// Per-iteration decomposition of an IterD/CondtD estimate. The engine
/// charges processors with different local iteration counts from ONE of
/// these (comp = iters * per_iter_comp, overhead = setup + iters *
/// per_iter_overhead) instead of re-deriving the whole operation pricing
/// per processor — the unit costs depend only on the node, not on the
/// processor.
struct IterCost {
  double setup = 0;
  double per_iter_comp = 0;
  double per_iter_overhead = 0;

  [[nodiscard]] ComputeEstimate at(long long iters) const noexcept {
    return {static_cast<double>(iters) * per_iter_comp,
            setup + static_cast<double>(iters) * per_iter_overhead};
  }
};

class InterpretationFunctions {
 public:
  explicit InterpretationFunctions(const machine::SAU& sau)
      : sau_(sau), comm_(sau.comm) {}

  /// Seq AAU: straight-line replicated computation.
  [[nodiscard]] double seq(const compiler::OpCounts& ops) const {
    return flat_ops(ops) + sau_.proc.t_store;
  }

  /// IterD AAU: `iters` local iterations of a body with `ops` per element.
  /// `elem_bytes` sizes the streaming memory heuristic; `working_set` the
  /// capacity heuristic; `inner_m` > 0 adds a sequential inner reduction of
  /// m elements per iteration.
  [[nodiscard]] ComputeEstimate iter_d(const compiler::OpCounts& ops, long long iters,
                                       int elem_bytes, long long working_set,
                                       long long inner_m = 0) const;

  /// CondtD AAU: masked IterD; the mask is evaluated every iteration, the
  /// body executes with probability `mask_prob`.
  [[nodiscard]] ComputeEstimate condt_d(const compiler::OpCounts& body_ops,
                                        const compiler::OpCounts& mask_ops,
                                        double mask_prob, long long iters,
                                        int elem_bytes, long long working_set,
                                        long long inner_m = 0) const;

  /// Iteration-count-independent decompositions of iter_d / condt_d (the
  /// engine's per-processor hot path).
  [[nodiscard]] IterCost iter_cost(const compiler::OpCounts& ops, int elem_bytes,
                                   long long working_set, long long inner_m = 0) const;
  [[nodiscard]] IterCost condt_cost(const compiler::OpCounts& body_ops,
                                    const compiler::OpCounts& mask_ops,
                                    double mask_prob, int elem_bytes,
                                    long long working_set, long long inner_m = 0) const;

  /// Batch entry points (core::BatchEngine): price one loop node for every
  /// lane of a lockstep batch at once. Lanes share the program and machine,
  /// so ops/elem_bytes are lane-invariant; only the working set, inner trip
  /// count, and mask probability vary per lane. out[i] is exactly
  /// iter_cost/condt_cost of lane i's parameters.
  void iter_costs(const compiler::OpCounts& ops, int elem_bytes,
                  std::span<const long long> working_set, std::span<const long long> inner_m,
                  std::span<IterCost> out) const;
  void condt_costs(const compiler::OpCounts& body_ops, const compiler::OpCounts& mask_ops,
                   std::span<const double> mask_prob, int elem_bytes,
                   std::span<const long long> working_set, std::span<const long long> inner_m,
                   std::span<IterCost> out) const;

  /// Memory-hierarchy heuristic (paper §3.3: "models and heuristics are
  /// defined to handle accesses to the memory hierarchy"): unit-stride
  /// streaming misses, discounted when the working set fits in cache.
  [[nodiscard]] double memory_per_iteration(int accesses, int elem_bytes,
                                            long long working_set) const;

  /// Replicated conditional overhead (Condt AAU).
  [[nodiscard]] double condt(const compiler::OpCounts& cond_ops) const {
    return flat_ops(cond_ops) + sau_.proc.branch_overhead;
  }

  /// Iter AAU per-trip overhead / setup.
  [[nodiscard]] double iter_overhead() const { return sau_.proc.loop_overhead; }
  [[nodiscard]] double iter_setup() const { return sau_.proc.loop_setup; }

  /// Comm AAUs: delegate to the analytic communication model.
  [[nodiscard]] const machine::CommModel& comm() const noexcept { return comm_; }

  /// IO AAU: host service request.
  [[nodiscard]] double host_io(long long bytes) const {
    return sau_.io.host_latency + sau_.io.host_per_byte * static_cast<double>(bytes);
  }

  [[nodiscard]] double flat_ops(const compiler::OpCounts& ops) const;

  [[nodiscard]] const machine::SAU& sau() const noexcept { return sau_; }

 private:
  const machine::SAU& sau_;
  machine::CommModel comm_;
};

}  // namespace hpf90d::core
