// batch_engine.hpp — lockstep interpretation of sweep-point batches.
//
// Sweep points that share a CompiledProgram and machine differ only in
// their scalar bindings and layout, so the SPMD tree can be visited once
// per *batch* instead of once per point: every priced expression runs
// through the flattened cost bytecode over a structure-of-arrays BatchEnv
// (values[slot][lane], lane = sweep point), and per-lane pricing goes
// through the same InterpretationEngine methods the scalar walk uses —
// results are bit-identical to interpreting each lane alone, by
// construction.
//
// Lockstep requires the replicated control flow to agree across lanes:
// equal DO trip counts (bounds may differ), the same IF decision, the same
// WHILE test outcome on every trip. Lanes that diverge — different trip
// counts from per-lane critical variables, a failing bound that would make
// the scalar walk throw — are *evicted* and replayed from scratch with the
// plain scalar interpreter, so divergence costs only the divergent lanes.
#pragma once

#include <span>

#include "core/engine.hpp"

namespace hpf90d::obs {
class Sink;
}  // namespace hpf90d::obs

namespace hpf90d::core {

/// One sweep point of a batch. All lanes of one interpret() call must share
/// the CompiledProgram and MachineModel; layout and bindings are per-lane.
struct BatchLane {
  const compiler::DataLayout* layout = nullptr;
  const front::Bindings* bindings = nullptr;
  /// Optional precomputed seed_environment fold for `bindings` (see
  /// compiler::seed_values). When set, the lane's environment column is
  /// scattered from this list instead of re-folding the parameters — the
  /// values are identical by construction, it is purely a warm-path
  /// memoization owned by the caller (must cover the same program/bindings
  /// and outlive the interpret() call).
  const compiler::SeededValues* seed = nullptr;
};

/// Batch effectiveness counters for one interpret() call.
struct BatchRunStats {
  std::uint64_t ir_visits = 0;      // SPMD nodes visited by the batch walk
  std::uint64_t lane_visits = 0;    // sum of active lanes over those visits
  std::uint64_t replayed_lanes = 0; // lanes evicted to scalar replay
  std::uint64_t evicted_lanes = 0;  // lanes that left lockstep mid-walk
  std::uint64_t simd_stripes = 0;   // 8-lane stripes the bytecode evaluated
  std::uint64_t speculated_branches = 0;  // IFs where both arms were walked
  std::uint64_t speculated_lanes = 0;     // lanes kept in lockstep by those IFs
};

/// One lane exported by interpret()'s eviction-export mode: the lane left
/// lockstep at a divergence point identified by `key` — a running hash of
/// every control decision on the walk path up to the divergence, combined
/// with the lane's own divergent outcome. Two lanes with equal keys took
/// identical control paths and then diverged the same way, so a re-batch
/// of equal-key lanes stays in lockstep at least through the point where
/// they left (and usually to the end). The key is only a grouping hint:
/// a collision costs a second eviction, never a wrong result.
/// `rebatchable` is false for evictions the scalar walk turns into a
/// throw (failing bounds, unresolved conditions) — those must replay
/// scalar so the diagnostic surfaces.
struct EvictedLane {
  int lane = 0;
  std::uint64_t key = 0;
  bool rebatchable = false;
};

/// Reusable arena (like InterpretationEngine): one per worker, interpret()
/// per batch. Not thread-safe; distinct workers use distinct engines.
class BatchEngine {
 public:
  /// Interprets every lane in lockstep, filling results[l] for lane l with
  /// exactly what a scalar InterpretationEngine bound to that lane would
  /// produce. Returns false — touching neither results nor stats — when
  /// batch mode cannot run (tracing on, fewer than two lanes, or a program
  /// without a complete cost bytecode); the caller then prices each lane
  /// with the scalar engine. Exceptions the scalar walk would throw (trip
  /// limits, unresolved critical variables) propagate from here too.
  ///
  /// `deferred` selects the eviction-export mode (the session's lane
  /// re-compaction scheduler): when non-null, evicted lanes are appended to
  /// it — keyed for regrouping — instead of being replayed internally,
  /// their results[] slots are left untouched, and stats.replayed_lanes
  /// stays 0 (the caller owns the replay decision). When null, evicted
  /// lanes replay from scratch on the scalar path before returning, as
  /// before.
  bool interpret(const compiler::CompiledProgram& prog,
                 const machine::MachineModel& machine, const PredictOptions& options,
                 std::span<const BatchLane> lanes, PredictionResult* results,
                 BatchRunStats& stats, std::vector<EvictedLane>* deferred = nullptr);

  /// Attaches a tracing sink (nullptr detaches): each lockstep walk is
  /// recorded as one obs::Phase::LockstepWindow span (arg = lane count).
  /// Results are unchanged — only timings are observed.
  void set_trace(obs::Sink* sink) noexcept { obs_sink_ = sink; }

 private:
  using SpmdNode = compiler::SpmdNode;
  using Space = InterpretationEngine::ResolvedSpace;

  void walk_seq(const std::vector<compiler::SpmdNodePtr>& nodes);
  void walk(const SpmdNode& n);
  void batch_scalar_assign(const SpmdNode& n);
  void batch_do(const SpmdNode& n);
  void batch_while(const SpmdNode& n);
  void batch_if(const SpmdNode& n);
  void batch_local_loop(const SpmdNode& n);
  void batch_reduce(const SpmdNode& n);
  void batch_cshift(const SpmdNode& n);
  void batch_irregular(const SpmdNode& n);

  /// Evaluates compiled expression `expr_id` over all lanes into
  /// vals_/ok_ (dense: evicted lanes compute too, their results are noise).
  void eval(std::int32_t expr_id);
  /// Evaluates a node's iteration space for all lanes into sp_*_.
  void resolve_space_batch(const SpmdNode& n, const compiler::NodeCost& nc);
  /// Loads lane `l`'s resolved space from sp_*_ into `sp`.
  void fill_space(int l, std::size_t dims, Space& sp) const;
  /// Materializes each lane of `which` exactly once into space_ptrs_[i]:
  /// when every lane resolved the same bounds (replicated loop bounds — the
  /// common case) all pointers share one Space built once per node instead
  /// of rebuilding sp_scratch_ per lane per use.
  void resolve_lane_spaces(const std::vector<int>& which, std::size_t dims);
  /// Drops active lanes failing `keep` into the eviction set, keying each
  /// with the current path hash combined with its own `outcome(l)` (any
  /// integral). The kept lanes' shared outcome is then folded into
  /// path_hash_, so the hash encodes the full control-decision history —
  /// including trip counts, which change how many times later sites
  /// execute. `rebatchable` tags whether the evicted lanes may rejoin a
  /// lockstep batch or must replay scalar (failure evictions).
  template <class Pred, class Outcome>
  void evict_unless(Pred keep, Outcome outcome, bool rebatchable);

  const compiler::CompiledProgram* prog_ = nullptr;
  const compiler::CostProgram* cost_ = nullptr;
  std::span<const BatchLane> lanes_;
  obs::Sink* obs_sink_ = nullptr;  // lockstep-window span destination

  std::vector<InterpretationEngine> engines_;  // per-lane clocks/metrics/pricing
  compiler::BatchEnv env_;                     // the single source of scalar values
  compiler::ScalarEnv seed_env_{0};            // per-bindings seed, scattered to lanes

  std::vector<double> regs_;        // max_regs * kBatchStripe file (+ alignment slack)
  double* regs_aligned_ = nullptr;  // regs_ rounded up to a 64-byte boundary
  std::vector<double> vals_;        // per-lane expression results (stride-padded)
  std::vector<unsigned char> ok_;   // per-lane expression success (stride-padded)
  std::vector<int> active_;          // lanes still in lockstep
  std::vector<EvictedLane> evicted_; // lanes that left lockstep, keyed
  std::uint64_t path_hash_ = 0;      // running control-path hash (divergence keys)
  bool speculate_ = false;           // PredictOptions::speculate_branches

  /// Per-nesting-depth scratch for speculative IFs (see batch_if): the lane
  /// subsets of the two arms plus the merge buffer. Indexed by if_depth_ so
  /// nested speculations never share or reallocate a level's buffers.
  struct IfScratch {
    std::vector<int> then_lanes, else_lanes, merged;
  };
  std::vector<IfScratch> if_pool_;
  std::size_t if_depth_ = 0;

  // per-node scratch (sized lanes / dims*lanes, reused across nodes)
  std::vector<long long> b_lo_, b_hi_, b_step_, pts_;
  std::vector<unsigned char> b_fail_;
  std::vector<long long> sp_lo_, sp_hi_, sp_step_;
  std::vector<unsigned char> sp_fail_;
  std::vector<long long> ws_, im_;
  std::vector<double> mp_;
  std::vector<IterCost> costs_;
  std::vector<int> priced_;
  Space sp_scratch_;
  std::vector<Space> spaces_;            // per-lane spaces when lanes disagree
  std::vector<const Space*> space_ptrs_; // one entry per priced lane
  std::vector<long long> res_pts_;       // points() of each resolved space

  BatchRunStats stats_{};
};

}  // namespace hpf90d::core
