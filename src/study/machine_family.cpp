#include "study/machine_family.hpp"

#include <stdexcept>

#include "support/text.hpp"

namespace hpf90d::study {

std::string_view knob_name(Knob k) noexcept {
  switch (k) {
    case Knob::Latency: return "latency";
    case Knob::Bandwidth: return "bandwidth";
    case Knob::Cpu: return "cpu";
  }
  return "?";
}

namespace {

void apply_knob(machine::WhatIfParams& p, Knob k, double value) {
  switch (k) {
    case Knob::Latency: p.latency_scale = value; break;
    case Knob::Bandwidth: p.bandwidth_scale = value; break;
    case Knob::Cpu: p.cpu_scale = value; break;
  }
}

}  // namespace

MachineFamily& MachineFamily::axis(Knob knob, std::vector<double> values) {
  for (auto& a : axes_) {
    if (a.knob == knob) {
      a.values = std::move(values);
      return *this;
    }
  }
  axes_.push_back(KnobAxis{knob, std::move(values)});
  return *this;
}

std::size_t MachineFamily::size() const {
  std::size_t n = 1;
  for (const auto& a : axes_) n *= a.values.size();
  return n;
}

std::vector<MachinePoint> MachineFamily::points() const {
  validate();
  std::vector<MachinePoint> out;
  out.reserve(size());
  // Odometer over the axes, earlier axes slowest — the grid order is part
  // of the subsystem's determinism contract.
  std::vector<std::size_t> idx(axes_.size(), 0);
  for (;;) {
    MachinePoint pt;
    pt.name = name_;
    for (std::size_t a = 0; a < axes_.size(); ++a) {
      const double v = axes_[a].values[idx[a]];
      apply_knob(pt.params, axes_[a].knob, v);
      // '+' between knob pairs keeps the names CSV-safe (no comma escaping
      // in exports)
      pt.name += (a == 0 ? '/' : '+');
      pt.name += knob_name(axes_[a].knob);
      pt.name += support::strfmt("=%g", v);
    }
    out.push_back(std::move(pt));
    std::size_t a = axes_.size();
    for (; a-- > 0;) {
      if (++idx[a] < axes_[a].values.size()) break;
      idx[a] = 0;
    }
    if (a == static_cast<std::size_t>(-1)) break;  // every axis wrapped: done
  }
  return out;
}

std::vector<std::string> MachineFamily::register_into(
    api::MachineRegistry& registry) const {
  validate();
  if (!registry.contains(base_)) {
    throw std::out_of_range("machine family \"" + name_ + "\": base machine \"" +
                            base_ + "\" is not registered");
  }
  std::vector<std::string> names;
  api::MachineRegistry* reg = &registry;
  const std::string base = base_;
  std::vector<MachinePoint> pts = points();
  for (MachinePoint& pt : pts) {
    registry.register_machine(
        pt.name,
        [reg, base, params = pt.params](int nodes) {
          return machine::apply_whatif(machine::MachineModel(reg->get(base, nodes)),
                                       params);
        },
        support::strfmt("family %s point (base %s)", name_.c_str(), base.c_str()));
    names.push_back(std::move(pt.name));
  }
  return names;
}

void MachineFamily::validate() const {
  if (name_.empty()) throw std::invalid_argument("machine family name must be non-empty");
  if (base_.empty()) {
    throw std::invalid_argument("machine family \"" + name_ + "\": empty base name");
  }
  bool seen[3] = {false, false, false};
  for (const auto& a : axes_) {
    if (a.values.empty()) {
      throw std::invalid_argument("machine family \"" + name_ + "\": axis " +
                                  std::string(knob_name(a.knob)) + " has no values");
    }
    for (const double v : a.values) {
      if (!(v > 0)) {
        throw std::invalid_argument("machine family \"" + name_ + "\": axis " +
                                    std::string(knob_name(a.knob)) +
                                    " values must be > 0");
      }
    }
    bool& flag = seen[static_cast<int>(a.knob)];
    if (flag) {
      throw std::invalid_argument("machine family \"" + name_ + "\": duplicate axis " +
                                  std::string(knob_name(a.knob)));
    }
    flag = true;
  }
}

}  // namespace hpf90d::study
