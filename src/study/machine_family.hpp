// machine_family.hpp — named machine families over what-if knob grids.
//
// The paper's §7 design evaluation sweeps machine parameters ("what if the
// interconnect had a quarter of the latency?"). PR 2 made a single what-if
// point registrable; a MachineFamily makes the whole *grid* declarative:
// pick a base machine from the registry ("ipsc860", "fattree", ...), attach
// value axes to the WhatIfParams knobs, and the family generates one
// deterministically named machine point per grid cell, each auto-registered
// as a registry factory that derives from the base via
// machine::apply_whatif. Studies then sweep machine names like any other
// ExperimentPlan axis — no manual register_whatif calls.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "api/machine_registry.hpp"
#include "machine/whatif.hpp"

namespace hpf90d::study {

/// One design knob of machine::WhatIfParams.
enum class Knob { Latency, Bandwidth, Cpu };

/// Stable lower-case knob label used in generated machine names and
/// exports: "latency" | "bandwidth" | "cpu".
[[nodiscard]] std::string_view knob_name(Knob k) noexcept;

/// One value axis of the family grid.
struct KnobAxis {
  Knob knob = Knob::Latency;
  std::vector<double> values;
};

/// One generated machine point: the registry name plus the knob settings
/// it stands for.
struct MachinePoint {
  std::string name;
  machine::WhatIfParams params;
};

class MachineFamily {
 public:
  /// `base` names the registry machine the knobs derive from; it is
  /// resolved when the family is registered, so user-registered machines
  /// work as bases too.
  explicit MachineFamily(std::string name, std::string base = "ipsc860")
      : name_(std::move(name)), base_(std::move(base)) {}

  /// Sets (or replaces) the value axis for one knob. Axis order is the
  /// order of first appearance; re-setting a knob keeps its position.
  MachineFamily& axis(Knob knob, std::vector<double> values);

  /// Re-targets the family at a different base machine, keeping the axes.
  void set_base(std::string base) { base_ = std::move(base); }

  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] const std::string& base() const noexcept { return base_; }
  [[nodiscard]] const std::vector<KnobAxis>& axes() const noexcept { return axes_; }

  /// Grid size: the product of the axis lengths (1 with no axes — the
  /// bare base point).
  [[nodiscard]] std::size_t size() const;

  /// The full grid in deterministic order: earlier axes vary slowest,
  /// values in the order given. Names are
  /// "<family>/<knob>=<value>[+<knob>=<value>...]" (values rendered with
  /// %g), stable across runs, worker counts, and platforms — and free of
  /// commas, so CSV exports carry them verbatim.
  [[nodiscard]] std::vector<MachinePoint> points() const;

  /// Registers every grid point into `registry` (same-named entries are
  /// replaced) and returns the registered names in grid order. The point
  /// factories resolve base() through `registry` itself — the registry
  /// lock is recursive, and composition with builtins or user machines
  /// comes for free — so `registry` must outlive the registrations.
  /// Throws std::out_of_range when base() is not registered.
  std::vector<std::string> register_into(api::MachineRegistry& registry) const;

  /// Throws std::invalid_argument on an empty family/base name, an empty
  /// or non-positive value axis, or a duplicate knob.
  void validate() const;

 private:
  std::string name_;
  std::string base_;
  std::vector<KnobAxis> axes_;
};

}  // namespace hpf90d::study
