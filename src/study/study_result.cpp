#include "study/study_result.hpp"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <functional>
#include <map>
#include <set>
#include <stdexcept>
#include <tuple>

#include "support/table.hpp"
#include "support/text.hpp"

namespace hpf90d::study {

namespace {

constexpr const char* kCsvHeader =
    "machine,variant,problem,nprocs,measured,estimated,measured_mean,"
    "measured_min,measured_max,measured_stddev,comp,comm,overhead,wait";

std::string csv_field(const std::string& s) {
  std::string out = s;
  std::replace(out.begin(), out.end(), ',', ';');
  return out;
}

/// First-appearance orders of the sweep axes plus a point lookup — the
/// shared scaffolding of every analysis pass.
struct SweepIndex {
  std::vector<std::string> machines, variants, problems;
  std::vector<int> nprocs;  // ascending
  std::map<std::tuple<std::string_view, std::string_view, std::string_view, int>,
           const api::RunRecord*>
      by_key;

  explicit SweepIndex(const api::RunReport& report) {
    std::set<std::string_view> seen_m, seen_v, seen_p;
    std::set<int> seen_np;
    for (const auto& r : report.records) {
      if (seen_m.insert(r.machine).second) machines.push_back(r.machine);
      if (seen_v.insert(r.variant).second) variants.push_back(r.variant);
      if (seen_p.insert(r.problem).second) problems.push_back(r.problem);
      seen_np.insert(r.nprocs);
      by_key.emplace(std::make_tuple(std::string_view(r.machine),
                                     std::string_view(r.variant),
                                     std::string_view(r.problem), r.nprocs),
                     &r);
    }
    nprocs.assign(seen_np.begin(), seen_np.end());
  }

  [[nodiscard]] const api::RunRecord* find(std::string_view m, std::string_view v,
                                           std::string_view p, int np) const {
    const auto it = by_key.find(std::make_tuple(m, v, p, np));
    return it == by_key.end() ? nullptr : it->second;
  }
};

/// Scans one competitor pair along the ascending nprocs axis and appends a
/// Crossover wherever the estimated-time ordering strictly flips.
void scan_pair(const SweepIndex& ix, std::string_view axis, std::string_view a_name,
               std::string_view b_name, std::string_view context,
               std::string_view problem,
               const std::function<const api::RunRecord*(std::string_view, int)>& get,
               std::vector<Crossover>& out) {
  int prev_sign = 0;
  int prev_np = 0;
  double prev_a = 0, prev_b = 0;
  for (const int np : ix.nprocs) {
    const api::RunRecord* ra = get(a_name, np);
    const api::RunRecord* rb = get(b_name, np);
    if (ra == nullptr || rb == nullptr) continue;
    const double ta = ra->comparison.estimated;
    const double tb = rb->comparison.estimated;
    const int sign = ta < tb ? -1 : (ta > tb ? 1 : 0);
    // Ties are not crossings, and they do not move the anchor either: a
    // flip spanning a tie is reported between the two *decisive* points,
    // so the "before" side always names a real winner.
    if (sign == 0) continue;
    if (prev_sign != 0 && sign != prev_sign) {
      Crossover x;
      x.axis = std::string(axis);
      x.a = std::string(a_name);
      x.b = std::string(b_name);
      x.context = std::string(context);
      x.problem = std::string(problem);
      x.nprocs_before = prev_np;
      x.nprocs_after = np;
      x.a_before = prev_a;
      x.b_before = prev_b;
      x.a_after = ta;
      x.b_after = tb;
      out.push_back(std::move(x));
    }
    prev_sign = sign;
    prev_np = np;
    prev_a = ta;
    prev_b = tb;
  }
}

void json_escape(std::string& out, std::string_view s) {
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        // RFC 8259 forbids raw control characters inside strings.
        if (static_cast<unsigned char>(c) < 0x20) {
          out += support::strfmt("\\u%04x", c);
        } else {
          out += c;
        }
    }
  }
}

std::string jnum(double v) { return support::strfmt("%.17g", v); }

/// Strict CSV numeric parsing: the whole cell must be a number, and range
/// errors surface as the documented std::invalid_argument (bare std::stod
/// would throw std::out_of_range and accept trailing junk).
double csv_double(const std::string& cell) {
  try {
    std::size_t used = 0;
    const double v = std::stod(cell, &used);
    if (used == cell.size()) return v;
  } catch (const std::exception&) {
  }
  throw std::invalid_argument("StudyResult::from_csv: malformed number \"" + cell +
                              "\"");
}

int csv_int(const std::string& cell) {
  try {
    std::size_t used = 0;
    const int v = std::stoi(cell, &used);
    if (used == cell.size()) return v;
  } catch (const std::exception&) {
  }
  throw std::invalid_argument("StudyResult::from_csv: malformed integer \"" + cell +
                              "\"");
}

// --- a minimal JSON reader for the schema json() emits -----------------------

class JsonReader {
 public:
  explicit JsonReader(std::string_view text) : text_(text) {}

  void expect(char c) {
    skip_ws();
    if (pos_ >= text_.size() || text_[pos_] != c) {
      fail(std::string("expected '") + c + "'");
    }
    ++pos_;
  }

  [[nodiscard]] bool consume(char c) {
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  [[nodiscard]] std::string string() {
    expect('"');
    std::string out;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      char c = text_[pos_++];
      if (c == '\\') {
        if (pos_ >= text_.size()) fail("dangling escape");
        const char esc = text_[pos_++];
        switch (esc) {
          case 'n': c = '\n'; break;
          case 't': c = '\t'; break;
          case '"': c = '"'; break;
          case '\\': c = '\\'; break;
          case 'u': {
            // json_escape only emits \u00xx for control bytes; accept the
            // full ASCII range and reject anything wider.
            if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              const char h = text_[pos_++];
              code <<= 4;
              if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
              else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
              else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
              else fail("malformed \\u escape");
            }
            if (code > 0x7f) fail("non-ASCII \\u escape unsupported");
            c = static_cast<char>(code);
            break;
          }
          default: fail("unsupported escape");
        }
      }
      out += c;
    }
    if (pos_ >= text_.size()) fail("unterminated string");
    ++pos_;  // closing quote
    return out;
  }

  [[nodiscard]] double number() {
    skip_ws();
    const std::size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '-' || text_[pos_] == '+' || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E' || text_[pos_] == 'i' ||
            text_[pos_] == 'n' || text_[pos_] == 'f' || text_[pos_] == 'a')) {
      ++pos_;
    }
    if (pos_ == start) fail("expected number");
    try {
      return std::stod(std::string(text_.substr(start, pos_ - start)));
    } catch (const std::exception&) {
      fail("malformed number");
    }
    return 0;  // unreachable
  }

  [[nodiscard]] bool boolean() {
    skip_ws();
    if (text_.substr(pos_, 4) == "true") {
      pos_ += 4;
      return true;
    }
    if (text_.substr(pos_, 5) == "false") {
      pos_ += 5;
      return false;
    }
    fail("expected boolean");
    return false;  // unreachable
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\n' || text_[pos_] == '\t' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  void end() {
    skip_ws();
    if (pos_ != text_.size()) fail("trailing content");
  }

  [[noreturn]] void fail(const std::string& why) const {
    throw std::invalid_argument("StudyResult::from_json: " + why + " at offset " +
                                std::to_string(pos_));
  }

 private:
  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

std::string Crossover::str() const {
  // Which side is ahead on each side of the flip reads better than raw
  // sign bookkeeping: "X wins below, Y wins at/after".
  const std::string& before_winner = a_before < b_before ? a : b;
  const std::string& after_winner = a_after < b_after ? a : b;
  return support::strfmt(
      "%s crossover on %s, %s: %s wins at P=%d (%s vs %s), %s wins at P=%d (%s vs %s)",
      axis.c_str(), context.c_str(), problem.c_str(), before_winner.c_str(),
      nprocs_before, support::format_seconds(a_before).c_str(),
      support::format_seconds(b_before).c_str(), after_winner.c_str(), nprocs_after,
      support::format_seconds(a_after).c_str(),
      support::format_seconds(b_after).c_str());
}

const machine::WhatIfParams* StudyResult::params_for(std::string_view machine) const {
  for (const auto& pt : machine_points) {
    if (pt.name == machine) return &pt.params;
  }
  return nullptr;
}

std::vector<Crossover> StudyResult::crossovers() const {
  const SweepIndex ix(report);
  std::vector<Crossover> out;
  // variant-vs-variant flips, machine and problem held fixed
  for (const auto& m : ix.machines) {
    for (const auto& p : ix.problems) {
      for (std::size_t i = 0; i < ix.variants.size(); ++i) {
        for (std::size_t j = i + 1; j < ix.variants.size(); ++j) {
          scan_pair(ix, "variant", ix.variants[i], ix.variants[j], m, p,
                    [&](std::string_view v, int np) { return ix.find(m, v, p, np); },
                    out);
        }
      }
    }
  }
  // machine-vs-machine flips, variant and problem held fixed
  for (const auto& v : ix.variants) {
    for (const auto& p : ix.problems) {
      for (std::size_t i = 0; i < ix.machines.size(); ++i) {
        for (std::size_t j = i + 1; j < ix.machines.size(); ++j) {
          scan_pair(ix, "machine", ix.machines[i], ix.machines[j], v, p,
                    [&](std::string_view m, int np) { return ix.find(m, v, p, np); },
                    out);
        }
      }
    }
  }
  return out;
}

std::vector<ScalabilityCurve> StudyResult::scalability() const {
  const SweepIndex ix(report);
  std::vector<ScalabilityCurve> out;
  for (const auto& m : ix.machines) {
    for (const auto& v : ix.variants) {
      for (const auto& p : ix.problems) {
        ScalabilityCurve curve;
        curve.machine = m;
        curve.variant = v;
        curve.problem = p;
        for (const int np : ix.nprocs) {
          if (const api::RunRecord* r = ix.find(m, v, p, np)) {
            curve.points.push_back(
                ScalabilityPoint{np, r->comparison.estimated, 1.0, 1.0});
          }
        }
        if (curve.points.empty()) continue;
        const ScalabilityPoint base = curve.points.front();
        for (auto& pt : curve.points) {
          pt.speedup = pt.estimated > 0 ? base.estimated / pt.estimated : 0.0;
          pt.efficiency =
              pt.nprocs > 0 ? pt.speedup * base.nprocs / pt.nprocs : 0.0;
        }
        out.push_back(std::move(curve));
      }
    }
  }
  return out;
}

std::string PointDelta::str() const {
  return support::strfmt("%s %s %s P=%d: %s -> %s (%+.1f%%)", machine.c_str(),
                         variant.c_str(), problem.c_str(), nprocs,
                         support::format_seconds(estimated_before).c_str(),
                         support::format_seconds(estimated_after).c_str(),
                         100.0 * rel_change);
}

namespace {

/// Identity of a crossover conclusion — two studies "agree" on a flip when
/// the same competitors flip at the same place, whatever the exact times.
std::string crossover_key(const Crossover& x) {
  return x.axis + '\x1f' + x.a + '\x1f' + x.b + '\x1f' + x.context + '\x1f' +
         x.problem + '\x1f' + std::to_string(x.nprocs_before) + '\x1f' +
         std::to_string(x.nprocs_after);
}

}  // namespace

StudyDiff StudyResult::diff(const StudyResult& candidate, double threshold) const {
  StudyDiff out;
  out.title_before = title;
  out.title_after = candidate.title;
  out.threshold = threshold;

  // --- crossover conclusions gained/lost --------------------------------------
  const std::vector<Crossover> before = crossovers();
  const std::vector<Crossover> after = candidate.crossovers();
  std::set<std::string> before_keys, after_keys;
  for (const auto& x : before) before_keys.insert(crossover_key(x));
  for (const auto& x : after) after_keys.insert(crossover_key(x));
  for (const auto& x : after) {
    if (before_keys.count(crossover_key(x)) == 0) out.gained.push_back(x);
  }
  for (const auto& x : before) {
    if (after_keys.count(crossover_key(x)) == 0) out.lost.push_back(x);
  }

  // --- per-point estimated-time deltas ----------------------------------------
  const SweepIndex after_ix(candidate.report);
  std::size_t matched = 0;
  for (const auto& r : report.records) {
    const api::RunRecord* c = after_ix.find(r.machine, r.variant, r.problem, r.nprocs);
    if (c == nullptr) {
      ++out.only_in_before;
      continue;
    }
    ++matched;
    const double a = r.comparison.estimated;
    const double b = c->comparison.estimated;
    const double rel = a != 0.0 ? (b - a) / a : 0.0;
    const bool significant = a != 0.0 ? std::abs(rel) >= threshold : b != 0.0;
    if (significant) {
      out.deltas.push_back(
          PointDelta{r.machine, r.variant, r.problem, r.nprocs, a, b, rel});
    }
  }
  out.only_in_after = candidate.report.records.size() - matched;
  return out;
}

std::string StudyDiff::ascii() const {
  std::string out = support::strfmt("# study diff: %s -> %s (threshold %.0f%%)\n",
                                    title_before.c_str(), title_after.c_str(),
                                    100.0 * threshold);
  if (identical_conclusions()) {
    out += "identical conclusions: no crossover flips, no significant deltas\n";
    return out;
  }
  if (only_in_before > 0 || only_in_after > 0) {
    out += support::strfmt("point sets differ: %zu only in before, %zu only in after\n",
                           only_in_before, only_in_after);
  }
  out += support::strfmt("crossovers gained: %zu\n", gained.size());
  for (const auto& x : gained) out += "  + " + x.str() + "\n";
  out += support::strfmt("crossovers lost: %zu\n", lost.size());
  for (const auto& x : lost) out += "  - " + x.str() + "\n";
  out += support::strfmt("significant deltas: %zu\n", deltas.size());
  for (const auto& d : deltas) out += "  ~ " + d.str() + "\n";
  return out;
}

std::string StudyDiff::csv() const {
  // kind-discriminated rows so one file carries all three change classes:
  //   crossover,<gained|lost>,axis,a,b,context,problem,np_before,np_after
  //   delta,machine,variant,problem,nprocs,before,after,rel_change
  std::string out = "kind,f1,f2,f3,f4,f5,f6,f7,f8\n";
  const auto crossover_row = [&](const char* tag, const Crossover& x) {
    out += support::strfmt("crossover,%s,%s,%s,%s,%s,%s,%d,%d\n", tag,
                           csv_field(x.axis).c_str(), csv_field(x.a).c_str(),
                           csv_field(x.b).c_str(), csv_field(x.context).c_str(),
                           csv_field(x.problem).c_str(), x.nprocs_before,
                           x.nprocs_after);
  };
  for (const auto& x : gained) crossover_row("gained", x);
  for (const auto& x : lost) crossover_row("lost", x);
  for (const auto& d : deltas) {
    out += support::strfmt("delta,%s,%s,%s,%d,%.17g,%.17g,%.17g,\n",
                           csv_field(d.machine).c_str(), csv_field(d.variant).c_str(),
                           csv_field(d.problem).c_str(), d.nprocs, d.estimated_before,
                           d.estimated_after, d.rel_change);
  }
  return out;
}

std::vector<BottleneckRecord> StudyResult::bottlenecks() const {
  std::vector<BottleneckRecord> out;
  out.reserve(report.records.size());
  for (const auto& r : report.records) {
    out.push_back(BottleneckRecord{r.machine, r.variant, r.problem, r.nprocs, r.phases});
  }
  return out;
}

std::string StudyResult::ascii() const {
  std::string out;
  if (!title.empty()) out += "# " + title + "\n";
  if (!machine_points.empty()) {
    out += support::strfmt("base machine: %s | %zu knob-grid machine points\n",
                           base_machine.c_str(), machine_points.size());
  }

  support::TextTable table({"machine", "variant", "problem", "P", "estimated",
                            "measured", "error", "bottleneck"});
  for (const auto& r : report.records) {
    table.add_row(
        {r.machine, r.variant, r.problem, std::to_string(r.nprocs),
         support::format_seconds(r.comparison.estimated),
         r.measured ? support::format_seconds(r.comparison.measured_mean)
                    : std::string("-"),
         r.measured ? support::strfmt("%.2f%%", r.comparison.abs_error_pct())
                    : std::string("-"),
         support::strfmt("%s %.0f%%", r.phases.dominant(),
                         100.0 * r.phases.dominant_fraction())});
  }
  out += table.str();

  const std::vector<Crossover> flips = crossovers();
  out += support::strfmt("\ncrossovers: %zu\n", flips.size());
  for (const auto& x : flips) out += "  " + x.str() + "\n";

  const std::vector<ScalabilityCurve> curves = scalability();
  if (!curves.empty()) {
    out += "\nscalability (vs smallest P):\n";
    support::TextTable sc({"machine", "variant", "problem", "P*", "speedup", "eff"});
    for (const auto& c : curves) {
      const ScalabilityPoint& last = c.points.back();
      sc.add_row({c.machine, c.variant, c.problem, std::to_string(last.nprocs),
                  support::strfmt("%.2fx", last.speedup),
                  support::strfmt("%.0f%%", 100.0 * last.efficiency)});
    }
    out += sc.str();
  }

  out += support::strfmt(
      "\n%zu points | compile cache %zu hit / %zu miss | layout cache %zu hit "
      "/ %zu miss",
      report.records.size(), report.cache.compile_hits, report.cache.compile_misses,
      report.cache.layout_hits, report.cache.layout_misses);
  if (report.cache.layout_evictions > 0) {
    out += support::strfmt(" / %zu evicted", report.cache.layout_evictions);
  }
  if (report.cache.layout_capacity > 0) {
    out += support::strfmt(" (cap %zu)", report.cache.layout_capacity);
  }
  out += '\n';
  return out;
}

std::string StudyResult::csv() const {
  std::string out;
  out += "# study," + csv_field(title) + "," + csv_field(base_machine) + "\n";
  for (const auto& pt : machine_points) {
    out += support::strfmt("# machine_point,%s,%.17g,%.17g,%.17g\n",
                           csv_field(pt.name).c_str(), pt.params.latency_scale,
                           pt.params.bandwidth_scale, pt.params.cpu_scale);
  }
  out += kCsvHeader;
  out += '\n';
  for (const auto& r : report.records) {
    out += support::strfmt(
        "%s,%s,%s,%d,%d,%.17g,%.17g,%.17g,%.17g,%.17g,%.17g,%.17g,%.17g,%.17g\n",
        csv_field(r.machine).c_str(), csv_field(r.variant).c_str(),
        csv_field(r.problem).c_str(), r.nprocs, r.measured ? 1 : 0,
        r.comparison.estimated, r.comparison.measured_mean, r.comparison.measured_min,
        r.comparison.measured_max, r.comparison.measured_stddev, r.phases.comp,
        r.phases.comm, r.phases.overhead, r.phases.wait);
  }
  return out;
}

StudyResult StudyResult::from_csv(std::string_view text) {
  StudyResult result;
  bool saw_header = false;
  bool saw_study_line = false;
  std::size_t pos = 0;
  while (pos < text.size()) {
    std::size_t eol = text.find('\n', pos);
    if (eol == std::string_view::npos) eol = text.size();
    const std::string_view line = support::trim(text.substr(pos, eol - pos));
    pos = eol + 1;
    if (line.empty()) continue;
    if (line.front() == '#') {
      const auto cells = support::split(support::trim(line.substr(1)), ',');
      if (cells.empty()) continue;
      if (cells[0] == "study") {
        if (cells.size() != 3) {
          throw std::invalid_argument("StudyResult::from_csv: malformed study line");
        }
        result.title = cells[1];
        result.base_machine = cells[2];
        saw_study_line = true;
      } else if (cells[0] == "machine_point") {
        if (cells.size() != 5) {
          throw std::invalid_argument(
              "StudyResult::from_csv: malformed machine_point line");
        }
        MachinePoint pt;
        pt.name = cells[1];
        pt.params.latency_scale = csv_double(cells[2]);
        pt.params.bandwidth_scale = csv_double(cells[3]);
        pt.params.cpu_scale = csv_double(cells[4]);
        result.machine_points.push_back(std::move(pt));
      }
      continue;
    }
    if (!saw_header) {
      if (line != kCsvHeader) {
        throw std::invalid_argument("StudyResult::from_csv: unrecognized header: " +
                                    std::string(line));
      }
      saw_header = true;
      continue;
    }
    const auto cells = support::split(line, ',');
    if (cells.size() != 14) {
      throw std::invalid_argument("StudyResult::from_csv: expected 14 fields, got " +
                                  std::to_string(cells.size()) + " in: " +
                                  std::string(line));
    }
    api::RunRecord r;
    r.machine = cells[0];
    r.variant = cells[1];
    r.problem = cells[2];
    r.nprocs = csv_int(cells[3]);
    r.measured = csv_int(cells[4]) != 0;
    r.comparison.estimated = csv_double(cells[5]);
    r.comparison.measured_mean = csv_double(cells[6]);
    r.comparison.measured_min = csv_double(cells[7]);
    r.comparison.measured_max = csv_double(cells[8]);
    r.comparison.measured_stddev = csv_double(cells[9]);
    r.phases.comp = csv_double(cells[10]);
    r.phases.comm = csv_double(cells[11]);
    r.phases.overhead = csv_double(cells[12]);
    r.phases.wait = csv_double(cells[13]);
    result.report.records.push_back(std::move(r));
  }
  if (!saw_study_line || !saw_header) {
    throw std::invalid_argument("StudyResult::from_csv: missing study line or header");
  }
  result.report.title = result.title;
  return result;
}

std::string StudyResult::json() const {
  std::string out = "{\n";
  out += "  \"title\": \"";
  json_escape(out, title);
  out += "\",\n  \"base_machine\": \"";
  json_escape(out, base_machine);
  out += "\",\n  \"machine_points\": [";
  for (std::size_t i = 0; i < machine_points.size(); ++i) {
    const MachinePoint& pt = machine_points[i];
    out += i == 0 ? "\n" : ",\n";
    out += "    {\"name\": \"";
    json_escape(out, pt.name);
    out += "\", \"latency_scale\": " + jnum(pt.params.latency_scale) +
           ", \"bandwidth_scale\": " + jnum(pt.params.bandwidth_scale) +
           ", \"cpu_scale\": " + jnum(pt.params.cpu_scale) + "}";
  }
  out += machine_points.empty() ? "],\n" : "\n  ],\n";
  out += "  \"records\": [";
  for (std::size_t i = 0; i < report.records.size(); ++i) {
    const api::RunRecord& r = report.records[i];
    out += i == 0 ? "\n" : ",\n";
    out += "    {\"machine\": \"";
    json_escape(out, r.machine);
    out += "\", \"variant\": \"";
    json_escape(out, r.variant);
    out += "\", \"problem\": \"";
    json_escape(out, r.problem);
    out += "\", \"nprocs\": " + std::to_string(r.nprocs) +
           ", \"measured\": " + (r.measured ? "true" : "false") +
           ", \"estimated\": " + jnum(r.comparison.estimated) +
           ", \"measured_mean\": " + jnum(r.comparison.measured_mean) +
           ", \"measured_min\": " + jnum(r.comparison.measured_min) +
           ", \"measured_max\": " + jnum(r.comparison.measured_max) +
           ", \"measured_stddev\": " + jnum(r.comparison.measured_stddev) +
           ", \"comp\": " + jnum(r.phases.comp) + ", \"comm\": " + jnum(r.phases.comm) +
           ", \"overhead\": " + jnum(r.phases.overhead) +
           ", \"wait\": " + jnum(r.phases.wait) + "}";
  }
  out += report.records.empty() ? "]\n" : "\n  ]\n";
  out += "}\n";
  return out;
}

StudyResult StudyResult::from_json(std::string_view text) {
  StudyResult result;
  JsonReader in(text);
  in.expect('{');
  bool first_key = true;
  while (!in.consume('}')) {
    if (!first_key) in.expect(',');
    first_key = false;
    const std::string key = in.string();
    in.expect(':');
    if (key == "title") {
      result.title = in.string();
    } else if (key == "base_machine") {
      result.base_machine = in.string();
    } else if (key == "machine_points") {
      in.expect('[');
      while (!in.consume(']')) {
        if (!result.machine_points.empty()) in.expect(',');
        in.expect('{');
        MachinePoint pt;
        bool first = true;
        while (!in.consume('}')) {
          if (!first) in.expect(',');
          first = false;
          const std::string field = in.string();
          in.expect(':');
          if (field == "name") pt.name = in.string();
          else if (field == "latency_scale") pt.params.latency_scale = in.number();
          else if (field == "bandwidth_scale") pt.params.bandwidth_scale = in.number();
          else if (field == "cpu_scale") pt.params.cpu_scale = in.number();
          else in.fail("unknown machine_point field \"" + field + "\"");
        }
        result.machine_points.push_back(std::move(pt));
      }
    } else if (key == "records") {
      in.expect('[');
      while (!in.consume(']')) {
        if (!result.report.records.empty()) in.expect(',');
        in.expect('{');
        api::RunRecord r;
        bool first = true;
        while (!in.consume('}')) {
          if (!first) in.expect(',');
          first = false;
          const std::string field = in.string();
          in.expect(':');
          if (field == "machine") r.machine = in.string();
          else if (field == "variant") r.variant = in.string();
          else if (field == "problem") r.problem = in.string();
          else if (field == "nprocs") r.nprocs = static_cast<int>(in.number());
          else if (field == "measured") r.measured = in.boolean();
          else if (field == "estimated") r.comparison.estimated = in.number();
          else if (field == "measured_mean") r.comparison.measured_mean = in.number();
          else if (field == "measured_min") r.comparison.measured_min = in.number();
          else if (field == "measured_max") r.comparison.measured_max = in.number();
          else if (field == "measured_stddev") r.comparison.measured_stddev = in.number();
          else if (field == "comp") r.phases.comp = in.number();
          else if (field == "comm") r.phases.comm = in.number();
          else if (field == "overhead") r.phases.overhead = in.number();
          else if (field == "wait") r.phases.wait = in.number();
          else in.fail("unknown record field \"" + field + "\"");
        }
        result.report.records.push_back(std::move(r));
      }
    } else {
      in.fail("unknown field \"" + key + "\"");
    }
  }
  in.end();
  result.report.title = result.title;
  return result;
}

}  // namespace hpf90d::study
