// study.hpp — umbrella header for the hpf90d::study subsystem: declarative
// §7 design studies on top of the experiment-session machinery.
//
//   api::Session session;
//   study::StudyPlan plan("latency what-if");
//   plan.source(source)
//       .add_reference_machine("ipsc860")          // the stock testbed
//       .knob_axis(study::Knob::Latency, {0.25, 1, 4})
//       .knob_axis(study::Knob::Bandwidth, {1, 4})
//       .add_variant("(block,*)", overrides)
//       .nprocs({4, 8})
//       .runs(0);                                  // predict-only
//   study::StudyResult result = study::run_study(session, plan);
//   std::puts(result.ascii().c_str());             // crossovers, scaling, bottlenecks
//   save(result.csv());                            // committable artifact
#pragma once

#include "study/machine_family.hpp"
#include "study/study_plan.hpp"
#include "study/study_result.hpp"
