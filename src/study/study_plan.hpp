// study_plan.hpp — the declarative face of a §7 design study.
//
// A StudyPlan is an ExperimentPlan whose machine axis may be *generated*:
// next to explicitly named reference machines it sweeps WhatIfParams knob
// axes over a base machine (a MachineFamily grid). Lowering registers the
// family's points into the session's MachineRegistry and produces ONE
// batched ExperimentPlan, so a whole design study — machine knobs x
// directive variants x problem sizes x processor counts — runs through a
// single Session::run and inherits the worker pool, per-worker engine
// arenas, and the LRU layout store unchanged. No manual register_whatif
// calls, no ad-hoc bench code: the study is a declarative, reproducible
// artifact.
#pragma once

#include <string>
#include <vector>

#include "api/experiment_plan.hpp"
#include "api/run_report.hpp"
#include "api/session.hpp"
#include "study/machine_family.hpp"
#include "study/study_result.hpp"

namespace hpf90d::study {

class StudyPlan {
 public:
  /// The title labels the report; the family's generated machine names are
  /// prefixed with a slug of it, so two studies in one session do not
  /// collide unless their titles do.
  explicit StudyPlan(std::string title = "study");

  // --- builder (mirrors ExperimentPlan, plus the machine-knob axes) ----------
  StudyPlan& source(std::string hpf_source);
  /// Base machine the knob axes derive from (default "ipsc860"; any
  /// registered name, e.g. "fattree", works).
  StudyPlan& base_machine(std::string registry_name);
  /// Adds (or replaces) a machine-knob sweep axis, e.g.
  /// `knob_axis(Knob::Latency, {0.25, 1, 4})`.
  StudyPlan& knob_axis(Knob knob, std::vector<double> values);
  /// Reference machines swept alongside the generated family points (e.g.
  /// the stock testbed as a baseline). Swept first, in the given order.
  StudyPlan& add_reference_machine(std::string name);
  StudyPlan& add_variant(api::DirectiveVariant v);
  StudyPlan& add_variant(std::string name, std::vector<std::string> overrides,
                         std::optional<int> grid_rank = std::nullopt);
  StudyPlan& add_problem(std::string name, front::Bindings bindings);
  StudyPlan& problems_from(const std::vector<long long>& sizes,
                           const std::function<front::Bindings(long long)>& make_bindings,
                           std::string_view label_prefix = "n=");
  /// Weak-scaling axis: couples the problem size to the swept processor
  /// count (see ExperimentPlan::problems_scaled_by_nprocs). Call nprocs()
  /// first; mutually exclusive with add_problem/problems_from.
  StudyPlan& problems_scaled_by_nprocs(
      const std::vector<long long>& base_sizes,
      const std::function<front::Bindings(long long scaled)>& make_bindings,
      std::string_view label_prefix = "n=");
  StudyPlan& nprocs(std::vector<int> counts);
  StudyPlan& runs(int n);
  StudyPlan& compiler_options(compiler::CompilerOptions opts);
  StudyPlan& predict_options(core::PredictOptions opts);
  StudyPlan& sim_options(sim::SimOptions opts);

  // --- accessors --------------------------------------------------------------
  [[nodiscard]] const std::string& title() const noexcept { return title_; }
  [[nodiscard]] const std::string& base() const noexcept { return family_.base(); }
  [[nodiscard]] const MachineFamily& family() const noexcept { return family_; }
  [[nodiscard]] const std::vector<std::string>& reference_machines() const noexcept {
    return references_;
  }
  [[nodiscard]] bool has_knob_axes() const noexcept { return !family_.axes().empty(); }
  /// Machines the lowered plan sweeps: references + family grid points.
  [[nodiscard]] std::size_t machine_count() const;
  /// Sweep points the lowered plan executes through Session::run.
  [[nodiscard]] std::size_t point_count() const;

  /// The variant/problem/nprocs/options plumbing the study delegates to
  /// (the lowered plan minus the machine axis). The study/service plan
  /// codec reads the swept axes through this.
  [[nodiscard]] const api::ExperimentPlan& inner() const noexcept { return inner_; }

  /// Installs a decoded inner plan verbatim (the plan-transport decoder's
  /// entry, pairing with inner(); the builder methods above are the
  /// programmatic route). Whatever machine axis the plan carries is
  /// overwritten by lower().
  StudyPlan& replace_inner(api::ExperimentPlan inner) {
    inner_ = std::move(inner);
    return *this;
  }

  /// Throws std::invalid_argument when the study cannot run (no source, no
  /// machine at all, invalid family axis, inner-plan violations).
  void validate() const;

  /// Lowers to the single batched ExperimentPlan: registers the family's
  /// machine points into session.machines() and returns the plan whose
  /// machine axis is [references..., family points...].
  [[nodiscard]] api::ExperimentPlan lower(api::Session& session) const;

 private:
  std::string title_;
  MachineFamily family_;
  std::vector<std::string> references_;
  /// Variant/problem/nprocs/options plumbing delegates to an inner
  /// ExperimentPlan; lower() copies it and fills in the machine axis.
  api::ExperimentPlan inner_;
};

/// Executes the study through one batched Session::run and wraps the
/// report with the analysis surface. The family's machine points are
/// registered on the way in — zero manual machine registration — and the
/// result's exports are byte-identical for any RunOptions::workers.
[[nodiscard]] StudyResult run_study(api::Session& session, const StudyPlan& plan,
                                    const api::RunOptions& options = {});

}  // namespace hpf90d::study
