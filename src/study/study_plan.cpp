#include "study/study_plan.hpp"

#include <stdexcept>

namespace hpf90d::study {

namespace {

/// Registry-friendly slug of a study title: lower-case alphanumerics with
/// single dashes, "study" when nothing survives. Deterministic, so the
/// generated machine names are stable across runs.
std::string slug_of(std::string_view title) {
  std::string out;
  bool dash = false;
  for (const char c : title) {
    if ((c >= 'a' && c <= 'z') || (c >= '0' && c <= '9')) {
      out += c;
      dash = false;
    } else if (c >= 'A' && c <= 'Z') {
      out += static_cast<char>(c - 'A' + 'a');
      dash = false;
    } else if (!out.empty() && !dash) {
      out += '-';
      dash = true;
    }
  }
  while (!out.empty() && out.back() == '-') out.pop_back();
  return out.empty() ? std::string("study") : out;
}

}  // namespace

StudyPlan::StudyPlan(std::string title)
    : title_(std::move(title)), family_(slug_of(title_)), inner_(title_) {}

StudyPlan& StudyPlan::source(std::string hpf_source) {
  inner_.source(std::move(hpf_source));
  return *this;
}

StudyPlan& StudyPlan::base_machine(std::string registry_name) {
  family_.set_base(std::move(registry_name));
  return *this;
}

StudyPlan& StudyPlan::knob_axis(Knob knob, std::vector<double> values) {
  family_.axis(knob, std::move(values));
  return *this;
}

StudyPlan& StudyPlan::add_reference_machine(std::string name) {
  references_.push_back(std::move(name));
  return *this;
}

StudyPlan& StudyPlan::add_variant(api::DirectiveVariant v) {
  inner_.add_variant(std::move(v));
  return *this;
}

StudyPlan& StudyPlan::add_variant(std::string name, std::vector<std::string> overrides,
                                  std::optional<int> grid_rank) {
  inner_.add_variant(std::move(name), std::move(overrides), grid_rank);
  return *this;
}

StudyPlan& StudyPlan::add_problem(std::string name, front::Bindings bindings) {
  inner_.add_problem(std::move(name), std::move(bindings));
  return *this;
}

StudyPlan& StudyPlan::problems_from(
    const std::vector<long long>& sizes,
    const std::function<front::Bindings(long long)>& make_bindings,
    std::string_view label_prefix) {
  inner_.problems_from(sizes, make_bindings, label_prefix);
  return *this;
}

StudyPlan& StudyPlan::problems_scaled_by_nprocs(
    const std::vector<long long>& base_sizes,
    const std::function<front::Bindings(long long)>& make_bindings,
    std::string_view label_prefix) {
  inner_.problems_scaled_by_nprocs(base_sizes, make_bindings, label_prefix);
  return *this;
}

StudyPlan& StudyPlan::nprocs(std::vector<int> counts) {
  inner_.nprocs(std::move(counts));
  return *this;
}

StudyPlan& StudyPlan::runs(int n) {
  inner_.runs(n);
  return *this;
}

StudyPlan& StudyPlan::compiler_options(compiler::CompilerOptions opts) {
  inner_.compiler_options(opts);
  return *this;
}

StudyPlan& StudyPlan::predict_options(core::PredictOptions opts) {
  inner_.predict_options(opts);
  return *this;
}

StudyPlan& StudyPlan::sim_options(sim::SimOptions opts) {
  inner_.sim_options(opts);
  return *this;
}

std::size_t StudyPlan::machine_count() const {
  return references_.size() + (has_knob_axes() ? family_.size() : 0);
}

std::size_t StudyPlan::point_count() const {
  const std::size_t machines = machine_count() > 0 ? machine_count() : 1;
  if (inner_.scaled_by_nprocs()) {
    return machines * inner_.variants().size() * inner_.scaled_cases_list().size();
  }
  return machines * inner_.variants().size() * inner_.problems().size() *
         inner_.nprocs_list().size();
}

void StudyPlan::validate() const {
  // A study without knob axes and without references still runs: the
  // lowered plan falls back to the base machine alone.
  if (has_knob_axes()) family_.validate();
  inner_.validate();
}

api::ExperimentPlan StudyPlan::lower(api::Session& session) const {
  validate();
  api::ExperimentPlan plan = inner_;
  std::vector<std::string> machines = references_;
  if (has_knob_axes()) {
    std::vector<std::string> generated = family_.register_into(session.machines());
    machines.insert(machines.end(), std::make_move_iterator(generated.begin()),
                    std::make_move_iterator(generated.end()));
  }
  if (machines.empty()) machines.push_back(base());  // knob-less study: the base alone
  plan.machines(std::move(machines));
  return plan;
}

StudyResult run_study(api::Session& session, const StudyPlan& plan,
                      const api::RunOptions& options) {
  const api::ExperimentPlan lowered = plan.lower(session);
  StudyResult out;
  out.title = plan.title();
  out.base_machine = plan.has_knob_axes() ? plan.base() : std::string{};
  if (plan.has_knob_axes()) out.machine_points = plan.family().points();
  out.report = session.run(lowered, options);
  return out;
}

}  // namespace hpf90d::study
