// study_result.hpp — the analysis surface of a design study.
//
// The paper reads its §7 sweeps off as crossovers ("below n=512 the
// (block,*) mapping wins"), scalability trends (speedup/efficiency per
// machine), and bottleneck attribution (which cost category dominates
// where). StudyResult computes all three from the batched RunReport — the
// per-phase decomposition rides on every record — and exports the study as
// a committable artifact: deterministic ASCII for humans, CSV and JSON
// (with round-trip parsers) for tooling. Exports contain no wall-clock
// times, so a study re-run on any worker count reproduces them byte for
// byte.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "api/run_report.hpp"
#include "study/machine_family.hpp"

namespace hpf90d::study {

/// An ordering flip between two competitors along the nprocs axis: `a` is
/// estimated faster than `b` at nprocs_before, slower at nprocs_after.
struct Crossover {
  std::string axis;     // "variant" | "machine" — what kind of competitors flip
  std::string a, b;     // competitor names
  std::string context;  // the held-fixed machine (variant axis) or variant (machine axis)
  std::string problem;
  int nprocs_before = 0;
  int nprocs_after = 0;
  double a_before = 0, b_before = 0;  // estimated seconds at nprocs_before
  double a_after = 0, b_after = 0;    // estimated seconds at nprocs_after

  /// One-line rendering for reports.
  [[nodiscard]] std::string str() const;
};

/// One point of a scalability curve.
struct ScalabilityPoint {
  int nprocs = 0;
  double estimated = 0;
  double speedup = 1.0;     // t(P_min) / t(P)
  double efficiency = 1.0;  // speedup * P_min / P
};

/// Estimated scaling of one (machine, variant, problem) over the nprocs
/// axis, relative to the smallest swept processor count.
struct ScalabilityCurve {
  std::string machine, variant, problem;
  std::vector<ScalabilityPoint> points;  // nprocs ascending
};

/// Bottleneck attribution for one sweep point: the predicted per-phase
/// decomposition plus the dominant category.
struct BottleneckRecord {
  std::string machine, variant, problem;
  int nprocs = 0;
  api::PhaseBreakdown phases;

  [[nodiscard]] const char* dominant() const noexcept { return phases.dominant(); }
};

/// One sweep point whose estimated time moved significantly between two
/// studies (baseline -> candidate).
struct PointDelta {
  std::string machine, variant, problem;
  int nprocs = 0;
  double estimated_before = 0, estimated_after = 0;
  /// (after - before) / before; +inf-free: before == 0 reports 0 and the
  /// point is still included when after != 0.
  double rel_change = 0;

  [[nodiscard]] std::string str() const;
};

/// The semantic difference between two studies: which crossover conclusions
/// appeared or disappeared, and which individual points moved by more than
/// the threshold. Produced by StudyResult::diff.
struct StudyDiff {
  std::string title_before, title_after;
  double threshold = 0;  // relative significance floor for deltas
  /// Crossovers present in the candidate but not the baseline, matched on
  /// (axis, a, b, context, problem, nprocs_before, nprocs_after).
  std::vector<Crossover> gained;
  /// Crossovers present in the baseline but not the candidate.
  std::vector<Crossover> lost;
  /// Common sweep points with |rel_change| >= threshold, in the baseline's
  /// record order.
  std::vector<PointDelta> deltas;
  /// Sweep points with no counterpart on the other side (axis mismatch).
  std::size_t only_in_before = 0, only_in_after = 0;

  /// True when the two studies agree: no flips changed, no significant
  /// deltas, identical point sets.
  [[nodiscard]] bool identical_conclusions() const noexcept {
    return gained.empty() && lost.empty() && deltas.empty() &&
           only_in_before == 0 && only_in_after == 0;
  }

  /// Human-readable summary (deterministic, no wall time).
  [[nodiscard]] std::string ascii() const;

  /// One row per change: kind,axis/machine,... Deterministic; %.17g.
  [[nodiscard]] std::string csv() const;
};

struct StudyResult {
  std::string title;
  std::string base_machine;  // the family's base ("" when no knob axes)
  /// Knob settings per generated machine name (empty for studies without
  /// knob axes; reference machines are absent — their knobs are unity).
  std::vector<MachinePoint> machine_points;
  api::RunReport report;  // records carry the per-phase decomposition

  /// The knob settings behind a machine name; nullptr for reference
  /// machines (and anything else outside the family grid).
  [[nodiscard]] const machine::WhatIfParams* params_for(std::string_view machine) const;

  // --- analysis ---------------------------------------------------------------
  /// Variant-vs-variant flips (per machine and problem) followed by
  /// machine-vs-machine flips (per variant and problem), both along the
  /// nprocs axis, in deterministic sweep order. Ties are not crossings.
  [[nodiscard]] std::vector<Crossover> crossovers() const;

  /// One curve per (machine, variant, problem) in sweep order, points
  /// sorted by nprocs ascending.
  [[nodiscard]] std::vector<ScalabilityCurve> scalability() const;

  /// Per-record bottleneck attribution, in report order.
  [[nodiscard]] std::vector<BottleneckRecord> bottlenecks() const;

  /// Compares this study (the baseline) against `candidate`: crossover
  /// flips gained/lost plus per-point estimated-time deltas at least
  /// `threshold` (relative, default 5%). Points are matched on
  /// (machine, variant, problem, nprocs).
  [[nodiscard]] StudyDiff diff(const StudyResult& candidate,
                               double threshold = 0.05) const;

  // --- deterministic exports --------------------------------------------------
  /// Paper-style tables plus crossover and scalability summaries. No wall
  /// time; cache stats appear in the footer (deterministic across worker
  /// counts while the layout store is unbounded — see RunOptions).
  [[nodiscard]] std::string ascii() const;

  /// "#"-prefixed study/machine-point header lines, then one row per
  /// record including the per-phase decomposition. %.17g throughout, so
  /// from_csv round-trips byte-identically.
  [[nodiscard]] std::string csv() const;

  /// Single JSON object: title, base machine, machine points, records.
  /// Deterministic; from_json round-trips byte-identically.
  [[nodiscard]] std::string json() const;

  /// Parses the output of csv(). Cache statistics and wall time are not
  /// part of the payload and come back zero. Throws std::invalid_argument
  /// on malformed input.
  [[nodiscard]] static StudyResult from_csv(std::string_view text);

  /// Parses the output of json(). Throws std::invalid_argument on
  /// malformed input.
  [[nodiscard]] static StudyResult from_json(std::string_view text);
};

}  // namespace hpf90d::study
