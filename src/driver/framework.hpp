// framework.hpp — the HPF/Fortran 90D application development environment
// facade: compiler + interpretation framework + simulated testbed in one
// object (paper §1: "the environment integrates a HPF/Fortran 90D compiler,
// a functional interpreter and the source based performance prediction
// tool").
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "compiler/pipeline.hpp"
#include "core/aag.hpp"
#include "core/engine.hpp"
#include "core/output.hpp"
#include "machine/ipsc860.hpp"
#include "sim/simulator.hpp"

namespace hpf90d::driver {

/// One experiment configuration: problem bindings + machine size.
struct ExperimentConfig {
  int nprocs = 1;
  std::optional<std::vector<int>> grid_shape;  // e.g. {2,2}
  front::Bindings bindings;
  int runs = 3;  // simulated "measurement" repetitions
  core::PredictOptions predict;
  sim::SimOptions sim;
};

/// Estimated-vs-measured comparison for one configuration.
struct Comparison {
  double estimated = 0;
  double measured_mean = 0;
  double measured_min = 0;
  double measured_max = 0;
  double measured_stddev = 0;

  /// Absolute error as a percentage of the measured time (Table 2 metric).
  [[nodiscard]] double abs_error_pct() const {
    if (measured_mean <= 0) return 0;
    return 100.0 * std::abs(estimated - measured_mean) / measured_mean;
  }
  /// Paper §5.1: interpreted performance typically lies within the
  /// measured variance band.
  [[nodiscard]] bool within_variance() const {
    const double slack = 1e-9 + 3.0 * measured_stddev +
                         0.25 * (measured_max - measured_min);
    return estimated >= measured_min - slack && estimated <= measured_max + slack;
  }
};

class Framework {
 public:
  explicit Framework(int max_nodes = 8)
      : machine_(machine::make_ipsc860(max_nodes)) {}

  [[nodiscard]] const machine::MachineModel& machine() const noexcept { return machine_; }

  /// Phase 1: compilation.
  [[nodiscard]] compiler::CompiledProgram compile(
      std::string_view source, const compiler::CompilerOptions& options = {}) const {
    return compiler::compile(source, options);
  }
  [[nodiscard]] compiler::CompiledProgram compile_with_directives(
      std::string_view source, const std::vector<std::string>& overrides,
      const compiler::CompilerOptions& options = {}) const {
    return compiler::compile_with_directives(source, overrides, options);
  }

  /// Phase 2: interpretation (source-driven performance prediction).
  [[nodiscard]] core::PredictionResult predict(const compiler::CompiledProgram& prog,
                                               const ExperimentConfig& config) const;

  /// "Measurement" on the simulated iPSC/860.
  [[nodiscard]] sim::MeasuredResult measure(const compiler::CompiledProgram& prog,
                                            const ExperimentConfig& config) const;

  /// Predict + measure + compare.
  [[nodiscard]] Comparison compare(const compiler::CompiledProgram& prog,
                                   const ExperimentConfig& config) const;

 private:
  [[nodiscard]] compiler::LayoutOptions layout_options(const ExperimentConfig& c) const {
    compiler::LayoutOptions lo;
    lo.nprocs = c.nprocs;
    lo.grid_shape = c.grid_shape;
    return lo;
  }

  machine::MachineModel machine_;
};

}  // namespace hpf90d::driver
