// framework.hpp — backward-compatibility shim over the experiment-session
// API (api::Session). The original facade (paper §1: "the environment
// integrates a HPF/Fortran 90D compiler, a functional interpreter and the
// source based performance prediction tool") predates named machines and
// batched sweeps; new code should use hpf90d::api directly. This header
// preserves the old single-machine, one-config-at-a-time surface:
// Framework is a Session pinned to the "ipsc860" registry entry, and
// ExperimentConfig / Comparison are aliases of the api types.
#pragma once

#include <string_view>
#include <vector>

#include "api/session.hpp"

namespace hpf90d::driver {

/// One experiment configuration: problem bindings + machine size. The
/// `machine` field (added by the session API) defaults to "ipsc860", which
/// is the only machine Framework ever addressed.
using ExperimentConfig = api::RunConfig;

/// Estimated-vs-measured comparison for one configuration.
using Comparison = api::Comparison;

class Framework {
 public:
  explicit Framework(int max_nodes = 8) : session_(max_nodes) {}

  [[nodiscard]] const machine::MachineModel& machine() const {
    return session_.machine("ipsc860");
  }

  /// The underlying experiment session (registry, caches, statistics).
  [[nodiscard]] api::Session& session() noexcept { return session_; }
  [[nodiscard]] const api::Session& session() const noexcept { return session_; }

  /// Phase 1: compilation. CompiledProgram is move-only, so the historical
  /// by-value surface cannot hand out the session's cached programs; it
  /// compiles fresh. Use api::Session::compile for memoized handles.
  [[nodiscard]] compiler::CompiledProgram compile(
      std::string_view source, const compiler::CompilerOptions& options = {}) const {
    return compiler::compile(source, options);
  }
  [[nodiscard]] compiler::CompiledProgram compile_with_directives(
      std::string_view source, const std::vector<std::string>& overrides,
      const compiler::CompilerOptions& options = {}) const {
    return compiler::compile_with_directives(source, overrides, options);
  }

  /// Phase 2: interpretation (source-driven performance prediction).
  [[nodiscard]] core::PredictionResult predict(const compiler::CompiledProgram& prog,
                                               const ExperimentConfig& config) const {
    return session_.predict(prog, pinned(config));
  }

  /// "Measurement" on the simulated iPSC/860.
  [[nodiscard]] sim::MeasuredResult measure(const compiler::CompiledProgram& prog,
                                            const ExperimentConfig& config) const {
    return session_.measure(prog, pinned(config));
  }

  /// Predict + measure + compare.
  [[nodiscard]] Comparison compare(const compiler::CompiledProgram& prog,
                                   const ExperimentConfig& config) const {
    return session_.compare(prog, pinned(config));
  }

 private:
  /// Framework predates machine selection: every call goes to the cube.
  [[nodiscard]] static ExperimentConfig pinned(ExperimentConfig config) {
    config.machine = "ipsc860";
    return config;
  }

  // mutable: compilation memoization is invisible to the historical
  // const-qualified surface.
  mutable api::Session session_;
};

}  // namespace hpf90d::driver
