// report.hpp — sweep aggregation for the validation experiments: per-app
// min/max absolute error across problem and system sizes (the paper's
// Table 2 rows) and estimated/measured series for the figures.
#pragma once

#include <string>
#include <vector>

#include "driver/framework.hpp"

namespace hpf90d::driver {

/// One (problem size, processor count) comparison within a sweep.
struct SweepPoint {
  long long problem_size = 0;
  int nprocs = 0;
  Comparison comparison;
};

/// Table 2 row: accuracy envelope of one application over its sweep.
struct AccuracyRow {
  std::string name;
  std::string sizes;   // e.g. "128 - 4096"
  std::string procs;   // e.g. "1 - 8"
  double min_abs_error_pct = 0;
  double max_abs_error_pct = 0;
  int points = 0;
  int within_variance = 0;  // §5.1 claim support

  [[nodiscard]] static AccuracyRow from_sweep(std::string name,
                                              const std::vector<SweepPoint>& sweep);
};

/// Renders a series of (x, estimated, measured) rows, one per line, for the
/// figure benches (gnuplot-ready columns).
[[nodiscard]] std::string render_series(
    const std::string& title,
    const std::vector<std::pair<long long, Comparison>>& series);

}  // namespace hpf90d::driver
