#include "driver/framework.hpp"

namespace hpf90d::driver {

core::PredictionResult Framework::predict(const compiler::CompiledProgram& prog,
                                          const ExperimentConfig& config) const {
  return core::predict(prog, config.bindings, layout_options(config), machine_,
                       config.predict);
}

sim::MeasuredResult Framework::measure(const compiler::CompiledProgram& prog,
                                       const ExperimentConfig& config) const {
  const sim::Simulator simulator(machine_);
  return simulator.measure(prog, config.bindings, layout_options(config), config.sim,
                           config.runs);
}

Comparison Framework::compare(const compiler::CompiledProgram& prog,
                              const ExperimentConfig& config) const {
  Comparison out;
  out.estimated = predict(prog, config).total;
  const sim::MeasuredResult measured = measure(prog, config);
  out.measured_mean = measured.stats.mean;
  out.measured_min = measured.stats.min;
  out.measured_max = measured.stats.max;
  out.measured_stddev = measured.stats.stddev;
  return out;
}

}  // namespace hpf90d::driver
