#include "driver/report.hpp"

#include <algorithm>
#include <sstream>

#include "support/text.hpp"

namespace hpf90d::driver {

AccuracyRow AccuracyRow::from_sweep(std::string name,
                                    const std::vector<SweepPoint>& sweep) {
  AccuracyRow row;
  row.name = std::move(name);
  row.min_abs_error_pct = 1e300;
  row.max_abs_error_pct = 0;
  long long min_size = 0, max_size = 0;
  int min_procs = 0, max_procs = 0;
  for (const auto& pt : sweep) {
    const double err = pt.comparison.abs_error_pct();
    row.min_abs_error_pct = std::min(row.min_abs_error_pct, err);
    row.max_abs_error_pct = std::max(row.max_abs_error_pct, err);
    if (row.points == 0) {
      min_size = max_size = pt.problem_size;
      min_procs = max_procs = pt.nprocs;
    } else {
      min_size = std::min(min_size, pt.problem_size);
      max_size = std::max(max_size, pt.problem_size);
      min_procs = std::min(min_procs, pt.nprocs);
      max_procs = std::max(max_procs, pt.nprocs);
    }
    if (pt.comparison.within_variance()) ++row.within_variance;
    ++row.points;
  }
  if (row.points == 0) row.min_abs_error_pct = 0;
  row.sizes = std::to_string(min_size) + " - " + std::to_string(max_size);
  row.procs = std::to_string(min_procs) + " - " + std::to_string(max_procs);
  return row;
}

std::string render_series(const std::string& title,
                          const std::vector<std::pair<long long, Comparison>>& series) {
  std::ostringstream os;
  os << "# " << title << '\n';
  os << "# size  estimated(s)  measured(s)  err(%)\n";
  for (const auto& [size, cmp] : series) {
    os << support::strfmt("%8lld  %12.6f  %12.6f  %6.2f\n", size, cmp.estimated,
                          cmp.measured_mean, cmp.abs_error_pct());
  }
  return os.str();
}

}  // namespace hpf90d::driver
