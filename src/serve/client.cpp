#include "serve/client.hpp"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <stdexcept>
#include <thread>

#include "serve/wire.hpp"

namespace hpf90d::serve {

ServeClient::ServeClient(std::string socket_path, std::string tenant)
    : socket_path_(std::move(socket_path)), tenant_(std::move(tenant)) {}

ServeClient::~ServeClient() { close(); }

void ServeClient::connect() {
  const int attempts = retry_.attempts < 1 ? 1 : retry_.attempts;
  for (int i = 0;; ++i) {
    try {
      connect_once();
      return;
    } catch (const WireError&) {
      if (i + 1 >= attempts) throw;
      std::this_thread::sleep_for(
          std::chrono::milliseconds(static_cast<long long>(retry_.backoff_ms) << i));
    }
  }
}

void ServeClient::connect_once() {
  if (fd_ >= 0) return;
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (socket_path_.size() >= sizeof addr.sun_path) {
    throw WireError("socket path too long: " + socket_path_);
  }
  std::memcpy(addr.sun_path, socket_path_.c_str(), socket_path_.size() + 1);
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    throw WireError(std::string("socket: ") + std::strerror(errno));
  }
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) < 0) {
    const std::string why = std::strerror(errno);
    ::close(fd);
    throw WireError("cannot connect to " + socket_path_ + ": " + why);
  }
  fd_ = fd;
  try {
    const Frame ack = roundtrip({MsgType::Hello, tenant_});
    if (ack.type != MsgType::HelloAck) {
      throw WireError("handshake refused: " + ack.payload);
    }
  } catch (...) {
    close();
    throw;
  }
}

void ServeClient::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Frame ServeClient::roundtrip(const Frame& request) {
  if (fd_ < 0) throw WireError("not connected");
  write_frame(fd_, request);
  return read_frame(fd_);
}

Frame ServeClient::roundtrip_retrying(const Frame& request) {
  // Transport failure (daemon restarted, socket gone) drops the dead
  // socket and re-handshakes on a fresh one before re-sending. Requests
  // routed here are idempotent or coalesced server-side, so a re-send
  // after a lost reply is safe.
  const int attempts = retry_.attempts < 1 ? 1 : retry_.attempts;
  for (int i = 0;; ++i) {
    try {
      if (fd_ < 0) connect_once();
      return roundtrip(request);
    } catch (const WireError&) {
      close();
      if (i + 1 >= attempts) throw;
      std::this_thread::sleep_for(
          std::chrono::milliseconds(static_cast<long long>(retry_.backoff_ms) << i));
    }
  }
}

namespace {

std::uint64_t expect_submitted(const Frame& reply) {
  if (reply.type == MsgType::Error) throw std::runtime_error(reply.payload);
  if (reply.type != MsgType::Submitted) {
    throw WireError("unexpected reply to submit");
  }
  try {
    return std::stoull(reply.payload);
  } catch (const std::exception&) {
    throw WireError("malformed job id: " + reply.payload);
  }
}

}  // namespace

std::uint64_t ServeClient::submit(const api::ExperimentPlan& plan) {
  return expect_submitted(roundtrip_retrying({MsgType::SubmitPlan, encode_plan(plan)}));
}

std::uint64_t ServeClient::submit(const study::StudyPlan& plan) {
  return expect_submitted(roundtrip_retrying({MsgType::SubmitStudy, encode_study(plan)}));
}

JobResult ServeClient::wait(std::uint64_t job_id) {
  const Frame reply = roundtrip({MsgType::Wait, std::to_string(job_id)});
  if (reply.type == MsgType::Error) throw std::runtime_error(reply.payload);
  if (reply.type != MsgType::Result) throw WireError("unexpected reply to wait");
  const JobOutcome outcome = decode_outcome(reply.payload);

  JobResult result;
  result.state = outcome.state;
  result.is_study = outcome.is_study;
  result.error = outcome.error;
  result.wall_seconds = outcome.wall_seconds;
  if (outcome.state == "done") {
    if (outcome.is_study) {
      result.study = study::StudyResult::from_csv(outcome.body_csv);
      result.study.report.cache = outcome.cache;
      result.study.report.wall_seconds = outcome.wall_seconds;
    } else {
      result.report = api::RunReport::from_csv(outcome.body_csv);
      result.report.title = outcome.title;
      result.report.cache = outcome.cache;
      result.report.wall_seconds = outcome.wall_seconds;
    }
  }
  return result;
}

std::string ServeClient::status(std::uint64_t job_id) {
  const Frame reply = roundtrip_retrying({MsgType::Status, std::to_string(job_id)});
  if (reply.type == MsgType::Error) throw std::runtime_error(reply.payload);
  if (reply.type != MsgType::StatusReply) throw WireError("unexpected status reply");
  return reply.payload;
}

bool ServeClient::cancel(std::uint64_t job_id) {
  const Frame reply = roundtrip({MsgType::Cancel, std::to_string(job_id)});
  if (reply.type != MsgType::CancelReply) throw WireError("unexpected cancel reply");
  return reply.payload == "cancelled";
}

ServerStats ServeClient::stats() {
  const Frame reply = roundtrip_retrying({MsgType::Stats, {}});
  if (reply.type != MsgType::StatsReply) throw WireError("unexpected stats reply");
  return decode_stats(reply.payload);
}

std::string ServeClient::metrics() {
  const Frame reply = roundtrip_retrying({MsgType::Metrics, {}});
  if (reply.type != MsgType::MetricsReply) throw WireError("unexpected metrics reply");
  return reply.payload;
}

std::vector<ServerStats> ServeClient::stats_stream(int count, int interval_ms,
                                                   bool on_change) {
  // The request itself retries; once the burst starts, a mid-stream
  // failure propagates (a retry would double snapshots already consumed).
  if (fd_ < 0) connect();
  std::string request =
      std::to_string(count) + ' ' + std::to_string(interval_ms);
  if (on_change) request += " changed";
  write_frame(fd_, Frame{MsgType::StatsStream, request});
  std::vector<ServerStats> out;
  for (;;) {
    const Frame frame = read_frame(fd_);
    if (frame.type == MsgType::StatsStreamEnd) return out;
    if (frame.type == MsgType::Error) throw std::runtime_error(frame.payload);
    if (frame.type != MsgType::StatsReply) {
      throw WireError("unexpected frame in stats stream");
    }
    out.push_back(decode_stats(frame.payload));
  }
}

void ServeClient::shutdown_server() {
  const Frame reply = roundtrip({MsgType::Shutdown, {}});
  if (reply.type != MsgType::ShutdownAck) throw WireError("unexpected shutdown reply");
}

}  // namespace hpf90d::serve
