// client.hpp — thin synchronous client for the experiment daemon.
//
// A ServeClient is one tenant's connection: connect() performs the Hello
// handshake, submit() ships a plan or study (encoded by plan_codec) and
// returns the job id, wait() blocks until the job is terminal and
// reassembles the result — RunReport::from_csv / StudyResult::from_csv on
// the deterministic CSV body, plus the cache stats and wall time carried
// alongside — so a served report is the same object a local Session::run
// would have returned, byte-identical CSV included.
//
// The client stays synchronous — one in-flight request per connection,
// blocking replies — but it survives daemon restarts: connect(), submit(),
// status(), stats() and metrics() retry transport failures with bounded
// exponential backoff (RetryPolicy), re-handshaking on a fresh socket each
// attempt. Retries are transport-level only: a server refusal (Error
// frame) is never retried, and wait()/cancel() never retry a send that may
// already have been acted on. A restarted daemon forgets job ids, so a
// retried status() for a pre-restart job surfaces "unknown job" — callers
// resubmit (submit() is safe to retry: a duplicate submit is coalesced
// server-side by content address). Not thread-safe; use one ServeClient
// per thread (tenants are free to open many connections).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "api/experiment_plan.hpp"
#include "api/run_report.hpp"
#include "serve/plan_codec.hpp"
#include "serve/wire.hpp"
#include "study/study_plan.hpp"
#include "study/study_result.hpp"

namespace hpf90d::serve {

/// Terminal result of a served job, reassembled client-side.
struct JobResult {
  std::string state;  // "done" | "failed" | "cancelled"
  bool is_study = false;
  std::string error;          // failed jobs
  double wall_seconds = 0;    // server-side sweep wall time
  api::RunReport report;      // plan jobs (empty otherwise)
  study::StudyResult study;   // study jobs (empty otherwise)

  [[nodiscard]] bool ok() const noexcept { return state == "done"; }
};

/// Bounded reconnect policy for transport failures (WireError): up to
/// `attempts` tries total, sleeping backoff_ms * 2^i between them.
/// attempts <= 1 restores the old fail-fast behaviour.
struct RetryPolicy {
  int attempts = 3;
  int backoff_ms = 50;
};

class ServeClient {
 public:
  /// Does not connect; call connect().
  ServeClient(std::string socket_path, std::string tenant);
  ~ServeClient();

  ServeClient(const ServeClient&) = delete;
  ServeClient& operator=(const ServeClient&) = delete;

  /// Connects and performs the Hello handshake, retrying per the policy.
  /// Throws WireError when every attempt fails.
  void connect();

  void set_retry(RetryPolicy policy) noexcept { retry_ = policy; }
  [[nodiscard]] const RetryPolicy& retry() const noexcept { return retry_; }
  [[nodiscard]] bool connected() const noexcept { return fd_ >= 0; }
  void close();

  /// Submits; returns the job id. Throws WireError on transport errors
  /// and std::runtime_error when the server refuses (queue full).
  std::uint64_t submit(const api::ExperimentPlan& plan);
  std::uint64_t submit(const study::StudyPlan& plan);

  /// Blocks until the job is terminal and reassembles the outcome.
  [[nodiscard]] JobResult wait(std::uint64_t job_id);

  /// "queued" | "running" | "done" | "failed" | "cancelled"; throws
  /// std::runtime_error for unknown ids.
  [[nodiscard]] std::string status(std::uint64_t job_id);

  /// True when the job was still queued and is now cancelled.
  bool cancel(std::uint64_t job_id);

  [[nodiscard]] ServerStats stats();

  /// Prometheus text exposition of the daemon's live metrics (queue depth,
  /// lockstep occupancy, spill hit ratio, per-job wall-time histograms —
  /// see the README's Observability section).
  [[nodiscard]] std::string metrics();

  /// Polls `count` ServerStats snapshots spaced `interval_ms` apart over
  /// one StatsStream request (count 1..1000, interval <= 10000ms; the
  /// server rejects more). With `on_change` the daemon still samples
  /// `count` times but pushes only snapshots whose activity counters moved
  /// since the last push (the first always arrives), so an idle daemon
  /// returns a single snapshot. A daemon shutting down mid-stream may
  /// return fewer snapshots than requested.
  [[nodiscard]] std::vector<ServerStats> stats_stream(int count, int interval_ms,
                                                      bool on_change = false);

  /// Asks the daemon to shut down (acknowledged before it stops).
  void shutdown_server();

 private:
  /// One request/reply round trip (no retry — a dead peer throws).
  [[nodiscard]] Frame roundtrip(const Frame& request);
  /// roundtrip with bounded reconnect-and-retry on transport failure.
  /// Only used for requests that are safe to re-send (see file comment).
  [[nodiscard]] Frame roundtrip_retrying(const Frame& request);
  /// One socket + handshake attempt (the old connect()).
  void connect_once();

  std::string socket_path_;
  std::string tenant_;
  RetryPolicy retry_;
  int fd_ = -1;
};

}  // namespace hpf90d::serve
