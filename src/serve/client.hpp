// client.hpp — thin synchronous client for the experiment daemon.
//
// A ServeClient is one tenant's connection: connect() performs the Hello
// handshake, submit() ships a plan or study (encoded by plan_codec) and
// returns the job id, wait() blocks until the job is terminal and
// reassembles the result — RunReport::from_csv / StudyResult::from_csv on
// the deterministic CSV body, plus the cache stats and wall time carried
// alongside — so a served report is the same object a local Session::run
// would have returned, byte-identical CSV included.
//
// The client is deliberately dumb: one in-flight request per connection,
// blocking replies, no reconnection. Anything smarter belongs in the
// caller. Not thread-safe; use one ServeClient per thread (tenants are
// free to open many connections).
#pragma once

#include <cstdint>
#include <string>

#include "api/experiment_plan.hpp"
#include "api/run_report.hpp"
#include "serve/plan_codec.hpp"
#include "serve/wire.hpp"
#include "study/study_plan.hpp"
#include "study/study_result.hpp"

namespace hpf90d::serve {

/// Terminal result of a served job, reassembled client-side.
struct JobResult {
  std::string state;  // "done" | "failed" | "cancelled"
  bool is_study = false;
  std::string error;          // failed jobs
  double wall_seconds = 0;    // server-side sweep wall time
  api::RunReport report;      // plan jobs (empty otherwise)
  study::StudyResult study;   // study jobs (empty otherwise)

  [[nodiscard]] bool ok() const noexcept { return state == "done"; }
};

class ServeClient {
 public:
  /// Does not connect; call connect().
  ServeClient(std::string socket_path, std::string tenant);
  ~ServeClient();

  ServeClient(const ServeClient&) = delete;
  ServeClient& operator=(const ServeClient&) = delete;

  /// Connects and performs the Hello handshake. Throws WireError when the
  /// daemon is unreachable or answers garbage.
  void connect();
  [[nodiscard]] bool connected() const noexcept { return fd_ >= 0; }
  void close();

  /// Submits; returns the job id. Throws WireError on transport errors
  /// and std::runtime_error when the server refuses (queue full).
  std::uint64_t submit(const api::ExperimentPlan& plan);
  std::uint64_t submit(const study::StudyPlan& plan);

  /// Blocks until the job is terminal and reassembles the outcome.
  [[nodiscard]] JobResult wait(std::uint64_t job_id);

  /// "queued" | "running" | "done" | "failed" | "cancelled"; throws
  /// std::runtime_error for unknown ids.
  [[nodiscard]] std::string status(std::uint64_t job_id);

  /// True when the job was still queued and is now cancelled.
  bool cancel(std::uint64_t job_id);

  [[nodiscard]] ServerStats stats();

  /// Asks the daemon to shut down (acknowledged before it stops).
  void shutdown_server();

 private:
  /// One request/reply round trip.
  [[nodiscard]] Frame roundtrip(const Frame& request);

  std::string socket_path_;
  std::string tenant_;
  int fd_ = -1;
};

}  // namespace hpf90d::serve
