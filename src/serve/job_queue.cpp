#include "serve/job_queue.hpp"

#include <stdexcept>

#include "obs/obs.hpp"

namespace hpf90d::serve {

const char* job_state_name(JobState s) noexcept {
  switch (s) {
    case JobState::Queued: return "queued";
    case JobState::Running: return "running";
    case JobState::Done: return "done";
    case JobState::Failed: return "failed";
    case JobState::Cancelled: return "cancelled";
  }
  return "unknown";
}

JobQueue::JobQueue(std::size_t tenant_inflight, std::size_t tenant_queued)
    : tenant_inflight_(tenant_inflight < 1 ? 1 : tenant_inflight),
      tenant_queued_(tenant_queued < 1 ? 1 : tenant_queued) {}

std::uint64_t JobQueue::submit(std::string tenant, bool is_study,
                               std::string payload) {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (shutdown_) throw std::runtime_error("job queue is shut down");
  auto [it, inserted] = tenants_.try_emplace(tenant);
  if (inserted) rotation_.push_back(tenant);
  if (it->second.fifo.size() >= tenant_queued_) {
    throw std::runtime_error("tenant \"" + tenant + "\" queue is full (" +
                             std::to_string(tenant_queued_) + " jobs)");
  }
  const std::uint64_t id = next_id_++;
  Job job;
  job.id = id;
  job.tenant = std::move(tenant);
  job.is_study = is_study;
  job.payload = std::move(payload);
  job.submitted_ns = obs::now_ns();
  jobs_.emplace(id, std::move(job));
  it->second.fifo.push_back(id);
  ++counters_.submitted;
  runnable_.notify_one();
  return id;
}

std::optional<Job> JobQueue::pop() {
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    if (shutdown_) return std::nullopt;
    // One rotation starting after the last-served tenant: the first
    // tenant with queued work and spare in-flight budget wins.
    const std::size_t n = rotation_.size();
    for (std::size_t step = 0; step < n; ++step) {
      const std::size_t slot = (next_tenant_ + step) % n;
      Tenant& tenant = tenants_[rotation_[slot]];
      if (tenant.fifo.empty() || tenant.inflight >= tenant_inflight_) continue;
      const std::uint64_t id = tenant.fifo.front();
      tenant.fifo.pop_front();
      ++tenant.inflight;
      next_tenant_ = (slot + 1) % n;
      Job& job = jobs_.at(id);
      job.state = JobState::Running;
      return job;  // copy taken under the lock
    }
    runnable_.wait(lock);
  }
}

void JobQueue::complete(std::uint64_t id, JobState terminal, std::string result) {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    const auto it = jobs_.find(id);
    if (it == jobs_.end() || it->second.state != JobState::Running) return;
    it->second.state = terminal;
    it->second.result = std::move(result);
    Tenant& tenant = tenants_[it->second.tenant];
    if (tenant.inflight > 0) --tenant.inflight;
    if (terminal == JobState::Done) ++counters_.done;
    else if (terminal == JobState::Failed) ++counters_.failed;
    else ++counters_.cancelled;
  }
  // A tenant at its cap may have runnable work again, and waiters want
  // the terminal state.
  runnable_.notify_all();
  terminal_.notify_all();
}

bool JobQueue::cancel(std::uint64_t id) {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    const auto it = jobs_.find(id);
    if (it == jobs_.end() || it->second.state != JobState::Queued) return false;
    it->second.state = JobState::Cancelled;
    ++counters_.cancelled;
    Tenant& tenant = tenants_[it->second.tenant];
    for (auto q = tenant.fifo.begin(); q != tenant.fifo.end(); ++q) {
      if (*q == id) {
        tenant.fifo.erase(q);
        break;
      }
    }
  }
  terminal_.notify_all();
  return true;
}

std::optional<JobState> JobQueue::status(std::uint64_t id) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = jobs_.find(id);
  if (it == jobs_.end()) return std::nullopt;
  return it->second.state;
}

std::optional<Job> JobQueue::wait(std::uint64_t id) {
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    const auto it = jobs_.find(id);
    if (it == jobs_.end()) return std::nullopt;
    const JobState s = it->second.state;
    if (s == JobState::Done || s == JobState::Failed || s == JobState::Cancelled) {
      return it->second;
    }
    if (shutdown_) return std::nullopt;
    terminal_.wait(lock);
  }
}

void JobQueue::shutdown() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    shutdown_ = true;
    for (auto& [name, tenant] : tenants_) {
      for (const std::uint64_t id : tenant.fifo) {
        Job& job = jobs_.at(id);
        job.state = JobState::Cancelled;
        ++counters_.cancelled;
      }
      tenant.fifo.clear();
    }
  }
  runnable_.notify_all();
  terminal_.notify_all();
}

std::size_t JobQueue::queued() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::size_t n = 0;
  for (const auto& [name, tenant] : tenants_) n += tenant.fifo.size();
  return n;
}

std::size_t JobQueue::running() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::size_t n = 0;
  for (const auto& [name, tenant] : tenants_) n += tenant.inflight;
  return n;
}

JobQueue::Counters JobQueue::counters() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return counters_;
}

}  // namespace hpf90d::serve
