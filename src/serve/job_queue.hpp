// job_queue.hpp — the daemon's multi-tenant job scheduler.
//
// Requirements (tentpole spec): FIFO order *within* a tenant, fair
// round-robin *across* tenants, a per-tenant in-flight cap so one chatty
// client cannot monopolize the executor pool, and cancel/status on every
// job. The queue is the synchronization point between connection threads
// (submit/cancel/status/wait) and executor threads (pop/complete); it
// holds opaque payloads — the server decodes and runs them — so it is
// testable without sockets or sessions.
//
// Fairness model: tenants are rotated in first-appearance order. pop()
// scans one full rotation starting after the last-served tenant and takes
// the head of the first tenant queue whose in-flight count is under the
// cap. A tenant at its cap is skipped, not blocked on — other tenants'
// work proceeds.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

namespace hpf90d::serve {

enum class JobState { Queued, Running, Done, Failed, Cancelled };

[[nodiscard]] const char* job_state_name(JobState s) noexcept;

struct Job {
  std::uint64_t id = 0;
  std::string tenant;
  bool is_study = false;     // SubmitStudy vs SubmitPlan
  std::string payload;       // encoded plan (opaque to the queue)
  JobState state = JobState::Queued;
  std::string result;        // encoded outcome once terminal
  /// Steady-clock nanoseconds at submit — the server turns pop-minus-submit
  /// into an obs::Phase::QueueWait span and the slow-job log's wait column.
  std::uint64_t submitted_ns = 0;
};

class JobQueue {
 public:
  /// `tenant_inflight`: max jobs of one tenant running at once (>= 1).
  /// `tenant_queued`: max jobs of one tenant waiting (submit beyond it
  /// throws std::runtime_error — backpressure surfaces to the client as
  /// an Error frame).
  explicit JobQueue(std::size_t tenant_inflight = 1, std::size_t tenant_queued = 64);

  /// Enqueues and returns the job id (ids are dense, starting at 1).
  std::uint64_t submit(std::string tenant, bool is_study, std::string payload);

  /// Blocks until a job is runnable under the fairness policy or the
  /// queue shuts down (nullopt). The returned copy is already marked
  /// Running.
  [[nodiscard]] std::optional<Job> pop();

  /// Marks a Running job terminal and publishes its encoded outcome.
  void complete(std::uint64_t id, JobState terminal, std::string result);

  /// Cancels a Queued job (removes it from its tenant's queue). Returns
  /// false when the job is already running or terminal — cancellation is
  /// not preemptive.
  bool cancel(std::uint64_t id);

  [[nodiscard]] std::optional<JobState> status(std::uint64_t id) const;

  /// Blocks until the job reaches a terminal state and returns it;
  /// nullopt for unknown ids or when the queue shuts down first.
  [[nodiscard]] std::optional<Job> wait(std::uint64_t id);

  /// Wakes all waiters; pop() returns nullopt from now on. Queued jobs
  /// are marked Cancelled.
  void shutdown();

  [[nodiscard]] std::size_t queued() const;
  [[nodiscard]] std::size_t running() const;
  /// submitted/done/failed/cancelled lifetime counters.
  struct Counters {
    std::size_t submitted = 0, done = 0, failed = 0, cancelled = 0;
  };
  [[nodiscard]] Counters counters() const;

 private:
  struct Tenant {
    std::deque<std::uint64_t> fifo;  // queued job ids, submit order
    std::size_t inflight = 0;
  };

  const std::size_t tenant_inflight_;
  const std::size_t tenant_queued_;

  mutable std::mutex mutex_;
  std::condition_variable runnable_;   // pop() waiters
  std::condition_variable terminal_;   // wait() waiters
  std::map<std::uint64_t, Job> jobs_;
  std::map<std::string, Tenant> tenants_;
  std::vector<std::string> rotation_;  // tenants in first-appearance order
  std::size_t next_tenant_ = 0;        // rotation cursor (last served + 1)
  std::uint64_t next_id_ = 1;
  bool shutdown_ = false;
  Counters counters_;
};

}  // namespace hpf90d::serve
