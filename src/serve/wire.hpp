// wire.hpp — the experiment service's framed wire protocol.
//
// The daemon (server.hpp) and its clients speak length-prefixed frames
// over a Unix-domain stream socket. A frame is a fixed 12-byte header —
// magic "HPFD", a protocol version, a message type, a payload length, all
// little-endian — followed by the payload bytes. Payloads are the plan
// codec's (plan_codec.hpp) deterministic text encodings, so the protocol
// stays debuggable with `xxd` while the framing keeps message boundaries
// exact under arbitrary kernel segmentation.
//
// Robustness contract: decode_frame never reads past the buffer, rejects
// bad magic / unsupported versions / oversized payloads with WireError
// (the connection is then dropped — framing cannot be resynchronized),
// and reports short buffers as "need more bytes" rather than errors, so a
// reader can accumulate from a stream of arbitrary chunk sizes.
#pragma once

#include <cstdint>
#include <optional>
#include <stdexcept>
#include <string>
#include <string_view>

namespace hpf90d::serve {

/// Protocol violation, I/O failure, or peer disconnect.
class WireError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

constexpr char kMagic[4] = {'H', 'P', 'F', 'D'};
constexpr std::uint16_t kWireVersion = 1;
/// Upper bound on a payload; a header announcing more is a protocol
/// violation (protects the reader from hostile/corrupt length fields).
constexpr std::uint32_t kMaxPayload = 64u << 20;
constexpr std::size_t kHeaderSize = 12;

enum class MsgType : std::uint16_t {
  Hello = 1,      // client -> server: tenant name
  HelloAck = 2,   // server -> client: server banner
  SubmitPlan = 3, // client -> server: encoded ExperimentPlan
  SubmitStudy = 4,// client -> server: encoded StudyPlan
  Submitted = 5,  // server -> client: job id (decimal)
  Status = 6,     // client -> server: job id
  StatusReply = 7,// server -> client: job state name
  Wait = 8,       // client -> server: job id; blocks until terminal
  Result = 9,     // server -> client: encoded JobOutcome
  Cancel = 10,    // client -> server: job id
  CancelReply = 11, // server -> client: "cancelled" | "late" | "unknown"
  Stats = 12,     // client -> server: empty
  StatsReply = 13,// server -> client: encoded ServerStats
  Shutdown = 14,  // client -> server: empty; server stops after ack
  ShutdownAck = 15,
  Error = 16,     // server -> client: human-readable refusal
  // telemetry endpoint (stats codec v4)
  Metrics = 17,       // client -> server: empty; asks for Prometheus text
  MetricsReply = 18,  // server -> client: Prometheus exposition (metrics.hpp)
  StatsStream = 19,   // client -> server: "<count> <interval_ms> [changed]";
                      // the server pushes up to `count` StatsReply frames at
                      // the interval — all of them, or with the "changed"
                      // flag only snapshots whose activity counters moved
                      // since the last push (the first is always pushed)
  StatsStreamEnd = 20,// server -> client: terminates a StatsStream burst
};

struct Frame {
  MsgType type = MsgType::Error;
  std::string payload;
};

/// Serializes header + payload. Throws WireError when the payload exceeds
/// kMaxPayload.
[[nodiscard]] std::string encode_frame(const Frame& frame);

/// Decodes one frame starting at `offset`. On success advances `offset`
/// past the frame and returns it; returns nullopt (offset untouched) when
/// the buffer ends mid-header or mid-payload; throws WireError on bad
/// magic, unsupported version, or an oversized length field.
[[nodiscard]] std::optional<Frame> decode_frame(std::string_view buffer,
                                                std::size_t& offset);

/// Blocking frame write on a connected socket (MSG_NOSIGNAL — a dead peer
/// raises WireError, not SIGPIPE).
void write_frame(int fd, const Frame& frame);

enum class ReadStatus { Ok, Eof, Timeout };

/// Reads exactly one frame. `timeout_ms` < 0 blocks indefinitely; the
/// timeout applies per poll wait, and Eof is only reported on a clean
/// close at a frame boundary (mid-frame EOF is a WireError). Protocol
/// violations throw WireError.
[[nodiscard]] ReadStatus try_read_frame(int fd, Frame& out, int timeout_ms = -1);

/// try_read_frame that treats Eof/Timeout as errors — the client-side
/// convenience (a request was sent; a reply is owed).
[[nodiscard]] Frame read_frame(int fd, int timeout_ms = -1);

}  // namespace hpf90d::serve
