#include "serve/plan_codec.hpp"

#include <cstdlib>
#include <string>
#include <vector>

#include "support/text.hpp"

namespace hpf90d::serve {

namespace {

// --- writer helpers -----------------------------------------------------------

/// Length-prefixed string: "<tag> <len>\n<bytes>\n" — arbitrary bytes
/// round-trip, including newlines and tabs.
void emit_str(std::string& out, const char* tag, std::string_view value) {
  out += tag;
  out += ' ';
  out += std::to_string(value.size());
  out += '\n';
  out += value;
  out += '\n';
}

std::string fnum(double v) { return support::strfmt("%.17g", v); }

void emit_bindings(std::string& out, const front::Bindings& bindings) {
  for (const auto& [name, value] : bindings.values()) {
    out += "bind " + fnum(value) + " " + std::to_string(name.size()) + '\n';
    out += name;
    out += '\n';
  }
}

// --- reader -------------------------------------------------------------------

class Reader {
 public:
  explicit Reader(std::string_view text) : text_(text) {}

  /// Next newline-terminated line (the final line may omit the newline).
  [[nodiscard]] std::string_view next_line() {
    if (at_end()) fail("unexpected end of input");
    std::size_t eol = text_.find('\n', pos_);
    if (eol == std::string_view::npos) eol = text_.size();
    const std::string_view line = text_.substr(pos_, eol - pos_);
    pos_ = eol + 1 > text_.size() ? text_.size() : eol + 1;
    return line;
  }

  /// Exactly `n` raw bytes followed by a newline (the str payload form).
  [[nodiscard]] std::string take_bytes(std::size_t n) {
    if (text_.size() - pos_ < n) fail("truncated payload");
    std::string out(text_.substr(pos_, n));
    pos_ += n;
    if (pos_ < text_.size() && text_[pos_] == '\n') ++pos_;
    else if (pos_ != text_.size()) fail("missing payload terminator");
    return out;
  }

  [[nodiscard]] bool at_end() const noexcept { return pos_ >= text_.size(); }

  [[noreturn]] void fail(const std::string& why) const {
    throw CodecError("plan codec: " + why + " at offset " + std::to_string(pos_));
  }

 private:
  std::string_view text_;
  std::size_t pos_ = 0;
};

std::vector<std::string> fields_of(std::string_view line) {
  std::vector<std::string> out;
  for (const auto& f : support::split(line, ' ')) {
    if (!f.empty()) out.push_back(f);
  }
  return out;
}

long long to_ll(Reader& in, const std::string& cell) {
  try {
    std::size_t used = 0;
    const long long v = std::stoll(cell, &used);
    if (used == cell.size()) return v;
  } catch (const std::exception&) {
  }
  in.fail("malformed integer \"" + cell + "\"");
}

unsigned long long to_ull(Reader& in, const std::string& cell) {
  try {
    // stoull accepts (and wraps) "-1"; an unsigned field must not.
    if (!cell.empty() && cell[0] != '-') {
      std::size_t used = 0;
      const unsigned long long v = std::stoull(cell, &used);
      if (used == cell.size()) return v;
    }
  } catch (const std::exception&) {
  }
  in.fail("malformed unsigned integer \"" + cell + "\"");
}

double to_d(Reader& in, const std::string& cell) {
  try {
    std::size_t used = 0;
    const double v = std::stod(cell, &used);
    if (used == cell.size()) return v;
  } catch (const std::exception&) {
  }
  in.fail("malformed number \"" + cell + "\"");
}

/// Parses a "<tag> <len>" line already read and returns the payload.
std::string read_str_payload(Reader& in, const std::vector<std::string>& f,
                             const char* tag) {
  if (f.size() != 2 || f[0] != tag) in.fail(std::string("expected ") + tag + " line");
  return in.take_bytes(static_cast<std::size_t>(to_ll(in, f[1])));
}

std::string expect_str(Reader& in, const char* tag) {
  return read_str_payload(in, fields_of(in.next_line()), tag);
}

front::Bindings read_bindings(Reader& in, std::size_t count) {
  front::Bindings b;
  for (std::size_t i = 0; i < count; ++i) {
    const auto f = fields_of(in.next_line());
    if (f.size() != 3 || f[0] != "bind") in.fail("expected bind line");
    const double value = to_d(in, f[1]);
    b.set(in.take_bytes(static_cast<std::size_t>(to_ll(in, f[2]))), value);
  }
  return b;
}

machine::CollectiveAlgo to_collective(Reader& in, const std::string& cell) {
  const long long v = to_ll(in, cell);
  switch (v) {
    case 0: return machine::CollectiveAlgo::RecursiveTree;
    case 1: return machine::CollectiveAlgo::Linear;
    default: in.fail("unknown collective algorithm " + cell);
  }
}

void encode_plan_body(std::string& out, const api::ExperimentPlan& plan) {
  out += "hpf90d-plan 1\n";
  emit_str(out, "title", plan.title());
  emit_str(out, "source", plan.program_source());
  for (const auto& m : plan.machine_names()) emit_str(out, "machine", m);
  out += "nprocs";
  for (const int np : plan.nprocs_list()) out += " " + std::to_string(np);
  out += '\n';
  out += "runs " + std::to_string(plan.measure_runs()) + '\n';
  const auto& co = plan.compiler_opts();
  out += support::strfmt("copts %d %s\n", co.message_vectorization ? 1 : 0,
                         fnum(co.default_mask_probability).c_str());
  const auto& po = plan.predict_opts();
  out += support::strfmt("popts %s %d %d %zu\n", fnum(po.mask_probability).c_str(),
                         static_cast<int>(po.collective), po.trace ? 1 : 0,
                         po.max_trace_events);
  const auto& so = plan.sim_opts();
  out += support::strfmt("sopts %llu %d %d %d %lld\n",
                         static_cast<unsigned long long>(so.seed), so.noise ? 1 : 0,
                         so.contention ? 1 : 0, static_cast<int>(so.collective),
                         so.max_while_trips);
  for (const auto& v : plan.variants()) {
    out += support::strfmt("variant %s %zu %zu\n",
                           v.grid_rank ? std::to_string(*v.grid_rank).c_str() : "-",
                           v.overrides.size(), v.name.size());
    out += v.name;
    out += '\n';
    for (const auto& o : v.overrides) emit_str(out, "override", o);
  }
  if (plan.scaled_by_nprocs()) {
    for (const auto& sc : plan.scaled_cases_list()) {
      out += support::strfmt("scaled %d %zu %zu\n", sc.nprocs,
                             sc.problem.bindings.values().size(),
                             sc.problem.name.size());
      out += sc.problem.name;
      out += '\n';
      emit_bindings(out, sc.problem.bindings);
    }
  } else {
    for (const auto& p : plan.problems()) {
      out += support::strfmt("problem %zu %zu\n", p.bindings.values().size(),
                             p.name.size());
      out += p.name;
      out += '\n';
      emit_bindings(out, p.bindings);
    }
  }
  out += "end\n";
}

api::ExperimentPlan decode_plan_body(Reader& in) {
  {
    const auto header = fields_of(in.next_line());
    if (header.size() != 2 || header[0] != "hpf90d-plan") {
      in.fail("not an hpf90d-plan payload");
    }
    if (header[1] != "1") in.fail("unsupported plan version " + header[1]);
  }
  api::ExperimentPlan plan(expect_str(in, "title"));
  plan.source(expect_str(in, "source"));

  std::vector<std::string> machines;
  std::vector<api::ScaledCase> scaled;
  bool saw_end = false;
  while (!saw_end) {
    const auto f = fields_of(in.next_line());
    if (f.empty()) in.fail("empty directive line");
    if (f[0] == "machine") {
      machines.push_back(read_str_payload(in, f, "machine"));
    } else if (f[0] == "nprocs") {
      std::vector<int> counts;
      for (std::size_t i = 1; i < f.size(); ++i) {
        counts.push_back(static_cast<int>(to_ll(in, f[i])));
      }
      plan.nprocs(std::move(counts));
    } else if (f[0] == "runs") {
      if (f.size() != 2) in.fail("malformed runs line");
      plan.runs(static_cast<int>(to_ll(in, f[1])));
    } else if (f[0] == "copts") {
      if (f.size() != 3) in.fail("malformed copts line");
      compiler::CompilerOptions co;
      co.message_vectorization = to_ll(in, f[1]) != 0;
      co.default_mask_probability = to_d(in, f[2]);
      plan.compiler_options(co);
    } else if (f[0] == "popts") {
      if (f.size() != 5) in.fail("malformed popts line");
      core::PredictOptions po;
      po.mask_probability = to_d(in, f[1]);
      po.collective = to_collective(in, f[2]);
      po.trace = to_ll(in, f[3]) != 0;
      po.max_trace_events = static_cast<std::size_t>(to_ll(in, f[4]));
      plan.predict_options(po);
    } else if (f[0] == "sopts") {
      if (f.size() != 6) in.fail("malformed sopts line");
      sim::SimOptions so;
      so.seed = to_ull(in, f[1]);
      so.noise = to_ll(in, f[2]) != 0;
      so.contention = to_ll(in, f[3]) != 0;
      so.collective = to_collective(in, f[4]);
      so.max_while_trips = to_ll(in, f[5]);
      plan.sim_options(so);
    } else if (f[0] == "variant") {
      if (f.size() != 4) in.fail("malformed variant line");
      api::DirectiveVariant v;
      if (f[1] != "-") v.grid_rank = static_cast<int>(to_ll(in, f[1]));
      const auto noverrides = static_cast<std::size_t>(to_ll(in, f[2]));
      v.name = in.take_bytes(static_cast<std::size_t>(to_ll(in, f[3])));
      for (std::size_t i = 0; i < noverrides; ++i) {
        v.overrides.push_back(expect_str(in, "override"));
      }
      plan.add_variant(std::move(v));
    } else if (f[0] == "problem") {
      if (f.size() != 3) in.fail("malformed problem line");
      const auto nbind = static_cast<std::size_t>(to_ll(in, f[1]));
      std::string name = in.take_bytes(static_cast<std::size_t>(to_ll(in, f[2])));
      plan.add_problem(std::move(name), read_bindings(in, nbind));
    } else if (f[0] == "scaled") {
      if (f.size() != 4) in.fail("malformed scaled line");
      api::ScaledCase sc;
      sc.nprocs = static_cast<int>(to_ll(in, f[1]));
      const auto nbind = static_cast<std::size_t>(to_ll(in, f[2]));
      sc.problem.name = in.take_bytes(static_cast<std::size_t>(to_ll(in, f[3])));
      sc.problem.bindings = read_bindings(in, nbind);
      scaled.push_back(std::move(sc));
    } else if (f[0] == "end") {
      saw_end = true;
    } else {
      in.fail("unknown directive \"" + f[0] + "\"");
    }
  }
  if (!machines.empty()) plan.machines(std::move(machines));
  if (!scaled.empty()) plan.scaled_cases(std::move(scaled));
  return plan;
}

}  // namespace

std::string encode_plan(const api::ExperimentPlan& plan) {
  std::string out;
  encode_plan_body(out, plan);
  return out;
}

api::ExperimentPlan decode_plan(std::string_view text) {
  Reader in(text);
  api::ExperimentPlan plan = decode_plan_body(in);
  return plan;
}

std::string encode_study(const study::StudyPlan& plan) {
  std::string out = "hpf90d-study 1\n";
  emit_str(out, "title", plan.title());
  emit_str(out, "base", plan.base());
  for (const auto& axis : plan.family().axes()) {
    out += "axis " + std::to_string(static_cast<int>(axis.knob));
    for (const double v : axis.values) out += " " + fnum(v);
    out += '\n';
  }
  for (const auto& r : plan.reference_machines()) emit_str(out, "reference", r);
  emit_str(out, "plan", encode_plan(plan.inner()));
  out += "end\n";
  return out;
}

study::StudyPlan decode_study(std::string_view text) {
  Reader in(text);
  {
    const auto header = fields_of(in.next_line());
    if (header.size() != 2 || header[0] != "hpf90d-study") {
      in.fail("not an hpf90d-study payload");
    }
    if (header[1] != "1") in.fail("unsupported study version " + header[1]);
  }
  study::StudyPlan plan(expect_str(in, "title"));
  plan.base_machine(expect_str(in, "base"));
  for (;;) {
    const auto f = fields_of(in.next_line());
    if (f.empty()) in.fail("empty directive line");
    if (f[0] == "axis") {
      if (f.size() < 2) in.fail("malformed axis line");
      const long long knob = to_ll(in, f[1]);
      if (knob < 0 || knob > 2) in.fail("unknown knob " + f[1]);
      std::vector<double> values;
      for (std::size_t i = 2; i < f.size(); ++i) values.push_back(to_d(in, f[i]));
      plan.knob_axis(static_cast<study::Knob>(knob), std::move(values));
    } else if (f[0] == "reference") {
      plan.add_reference_machine(read_str_payload(in, f, "reference"));
    } else if (f[0] == "plan") {
      plan.replace_inner(decode_plan(read_str_payload(in, f, "plan")));
    } else if (f[0] == "end") {
      break;
    } else {
      in.fail("unknown directive \"" + f[0] + "\"");
    }
  }
  return plan;
}

std::string encode_outcome(const JobOutcome& outcome) {
  std::string out = "hpf90d-result 1\n";
  out += "state " + outcome.state + '\n';
  out += std::string("kind ") + (outcome.is_study ? "study" : "plan") + '\n';
  emit_str(out, "title", outcome.title);
  emit_str(out, "error", outcome.error);
  out += "wall " + fnum(outcome.wall_seconds) + '\n';
  const api::CacheStats& c = outcome.cache;
  out += support::strfmt("cache %zu %zu %zu %zu %zu %zu %zu\n", c.compile_hits,
                         c.compile_misses, c.layout_hits, c.layout_misses,
                         c.layout_evictions, c.layout_spill_hits, c.layout_capacity);
  emit_str(out, "body", outcome.body_csv);
  return out;
}

JobOutcome decode_outcome(std::string_view text) {
  Reader in(text);
  {
    const auto header = fields_of(in.next_line());
    if (header.size() != 2 || header[0] != "hpf90d-result" || header[1] != "1") {
      in.fail("not an hpf90d-result payload");
    }
  }
  JobOutcome out;
  {
    const auto f = fields_of(in.next_line());
    if (f.size() != 2 || f[0] != "state") in.fail("expected state line");
    out.state = f[1];
  }
  {
    const auto f = fields_of(in.next_line());
    if (f.size() != 2 || f[0] != "kind") in.fail("expected kind line");
    out.is_study = f[1] == "study";
  }
  out.title = expect_str(in, "title");
  out.error = expect_str(in, "error");
  {
    const auto f = fields_of(in.next_line());
    if (f.size() != 2 || f[0] != "wall") in.fail("expected wall line");
    out.wall_seconds = to_d(in, f[1]);
  }
  {
    const auto f = fields_of(in.next_line());
    if (f.size() != 8 || f[0] != "cache") in.fail("expected cache line");
    out.cache.compile_hits = static_cast<std::size_t>(to_ll(in, f[1]));
    out.cache.compile_misses = static_cast<std::size_t>(to_ll(in, f[2]));
    out.cache.layout_hits = static_cast<std::size_t>(to_ll(in, f[3]));
    out.cache.layout_misses = static_cast<std::size_t>(to_ll(in, f[4]));
    out.cache.layout_evictions = static_cast<std::size_t>(to_ll(in, f[5]));
    out.cache.layout_spill_hits = static_cast<std::size_t>(to_ll(in, f[6]));
    out.cache.layout_capacity = static_cast<std::size_t>(to_ll(in, f[7]));
  }
  out.body_csv = expect_str(in, "body");
  return out;
}

std::string encode_stats(const ServerStats& s) {
  const api::CacheStats& c = s.cache;
  // version 5: widens the batch line with cross-chunk pool + speculation
  // counters. v4 added the spilldir and queue lines (disk usage, live
  // queue occupancy, slow-job count); v3 widened the batch line with
  // re-compaction + SIMD telemetry; v2 added the batch line itself.
  std::string out = "hpf90d-stats 5\n";
  out += support::strfmt("cache %zu %zu %zu %zu %zu %zu %zu\n", c.compile_hits,
                         c.compile_misses, c.layout_hits, c.layout_misses,
                         c.layout_evictions, c.layout_spill_hits, c.layout_capacity);
  out += support::strfmt("session %zu %zu %zu\n", s.cached_programs, s.cached_layouts,
                         s.warmed_programs);
  out += support::strfmt("jobs %zu %zu %zu %zu\n", s.jobs_submitted, s.jobs_done,
                         s.jobs_failed, s.jobs_cancelled);
  out += support::strfmt("spill %zu %zu %zu\n", s.spill_layouts_stored,
                         s.spill_layouts_loaded, s.spill_programs_stored);
  out += support::strfmt("spilldir %llu %llu\n",
                         static_cast<unsigned long long>(s.spill_dir_bytes),
                         static_cast<unsigned long long>(s.spill_dir_files));
  out += support::strfmt("queue %zu %zu %zu\n", s.queue_depth, s.jobs_running,
                         s.slow_jobs);
  out += support::strfmt("batch %zu %zu %zu %zu %llu %llu %llu %llu %llu %llu %llu %llu\n",
                         s.jobs_coalesced, s.points_batched, s.points_scalar,
                         s.points_replayed,
                         static_cast<unsigned long long>(s.batch_ir_visits),
                         static_cast<unsigned long long>(s.batch_lane_visits),
                         static_cast<unsigned long long>(s.lanes_evicted),
                         static_cast<unsigned long long>(s.lanes_refilled),
                         static_cast<unsigned long long>(s.simd_stripes),
                         static_cast<unsigned long long>(s.lanes_pooled),
                         static_cast<unsigned long long>(s.branches_speculated),
                         static_cast<unsigned long long>(s.lanes_speculated));
  return out;
}

ServerStats decode_stats(std::string_view text) {
  Reader in(text);
  {
    const auto header = fields_of(in.next_line());
    if (header.size() != 2 || header[0] != "hpf90d-stats") {
      in.fail("not an hpf90d-stats payload");
    }
    // Version-strict: a v4 daemon's payload is a hard error, not a partial
    // decode — mixed-version deployments must fail loudly.
    if (header[1] != "5") in.fail("unsupported stats version " + header[1]);
  }
  ServerStats s;
  const auto cache = fields_of(in.next_line());
  if (cache.size() != 8 || cache[0] != "cache") in.fail("expected cache line");
  s.cache.compile_hits = static_cast<std::size_t>(to_ll(in, cache[1]));
  s.cache.compile_misses = static_cast<std::size_t>(to_ll(in, cache[2]));
  s.cache.layout_hits = static_cast<std::size_t>(to_ll(in, cache[3]));
  s.cache.layout_misses = static_cast<std::size_t>(to_ll(in, cache[4]));
  s.cache.layout_evictions = static_cast<std::size_t>(to_ll(in, cache[5]));
  s.cache.layout_spill_hits = static_cast<std::size_t>(to_ll(in, cache[6]));
  s.cache.layout_capacity = static_cast<std::size_t>(to_ll(in, cache[7]));
  const auto session = fields_of(in.next_line());
  if (session.size() != 4 || session[0] != "session") in.fail("expected session line");
  s.cached_programs = static_cast<std::size_t>(to_ll(in, session[1]));
  s.cached_layouts = static_cast<std::size_t>(to_ll(in, session[2]));
  s.warmed_programs = static_cast<std::size_t>(to_ll(in, session[3]));
  const auto jobs = fields_of(in.next_line());
  if (jobs.size() != 5 || jobs[0] != "jobs") in.fail("expected jobs line");
  s.jobs_submitted = static_cast<std::size_t>(to_ll(in, jobs[1]));
  s.jobs_done = static_cast<std::size_t>(to_ll(in, jobs[2]));
  s.jobs_failed = static_cast<std::size_t>(to_ll(in, jobs[3]));
  s.jobs_cancelled = static_cast<std::size_t>(to_ll(in, jobs[4]));
  const auto spill = fields_of(in.next_line());
  if (spill.size() != 4 || spill[0] != "spill") in.fail("expected spill line");
  s.spill_layouts_stored = static_cast<std::size_t>(to_ll(in, spill[1]));
  s.spill_layouts_loaded = static_cast<std::size_t>(to_ll(in, spill[2]));
  s.spill_programs_stored = static_cast<std::size_t>(to_ll(in, spill[3]));
  const auto spilldir = fields_of(in.next_line());
  if (spilldir.size() != 3 || spilldir[0] != "spilldir") in.fail("expected spilldir line");
  s.spill_dir_bytes = static_cast<std::uint64_t>(to_ull(in, spilldir[1]));
  s.spill_dir_files = static_cast<std::uint64_t>(to_ull(in, spilldir[2]));
  const auto queue = fields_of(in.next_line());
  if (queue.size() != 4 || queue[0] != "queue") in.fail("expected queue line");
  s.queue_depth = static_cast<std::size_t>(to_ll(in, queue[1]));
  s.jobs_running = static_cast<std::size_t>(to_ll(in, queue[2]));
  s.slow_jobs = static_cast<std::size_t>(to_ll(in, queue[3]));
  const auto batch = fields_of(in.next_line());
  if (batch.size() != 13 || batch[0] != "batch") in.fail("expected batch line");
  s.jobs_coalesced = static_cast<std::size_t>(to_ll(in, batch[1]));
  s.points_batched = static_cast<std::size_t>(to_ll(in, batch[2]));
  s.points_scalar = static_cast<std::size_t>(to_ll(in, batch[3]));
  s.points_replayed = static_cast<std::size_t>(to_ll(in, batch[4]));
  s.batch_ir_visits = static_cast<std::uint64_t>(to_ll(in, batch[5]));
  s.batch_lane_visits = static_cast<std::uint64_t>(to_ll(in, batch[6]));
  s.lanes_evicted = static_cast<std::uint64_t>(to_ll(in, batch[7]));
  s.lanes_refilled = static_cast<std::uint64_t>(to_ll(in, batch[8]));
  s.simd_stripes = static_cast<std::uint64_t>(to_ll(in, batch[9]));
  s.lanes_pooled = static_cast<std::uint64_t>(to_ll(in, batch[10]));
  s.branches_speculated = static_cast<std::uint64_t>(to_ll(in, batch[11]));
  s.lanes_speculated = static_cast<std::uint64_t>(to_ll(in, batch[12]));
  return s;
}

}  // namespace hpf90d::serve
