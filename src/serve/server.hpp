// server.hpp — the long-lived multi-tenant experiment daemon.
//
// One ExperimentServer owns ONE api::Session — one hot program cache, one
// content-addressed layout store, one machine registry — shared by every
// tenant, which is the point of the service: the second tenant to sweep a
// Laplace plan hits the layouts the first one built. Around the session it
// runs
//
//   * an accept loop on a Unix-domain socket, one handler thread per
//     connection, speaking the framed protocol (wire.hpp / plan_codec.hpp),
//   * a JobQueue scheduling submitted plans fairly across tenants
//     (per-tenant FIFO, round-robin, in-flight caps), and
//   * a pool of executor threads running jobs through Session::run — each
//     job itself fans out on the session's worker pool.
//
// When ServerOptions::artifact_dir is set, an ArtifactStore is attached as
// the session's spill tier and warm_start() runs before the first accept:
// a killed-and-restarted daemon recompiles persisted program recipes and
// lazily reloads layouts from disk, so a previously-seen plan is served
// with cache hits — and a byte-identical report — instead of cold builds.
//
// The server never trusts payload bytes: malformed frames drop the
// connection, malformed plans fail the job with an Error/Failed outcome,
// and both leave the daemon serving other tenants.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "api/session.hpp"
#include "obs/metrics.hpp"
#include "obs/obs.hpp"
#include "serve/artifact_store.hpp"
#include "serve/job_queue.hpp"
#include "serve/plan_codec.hpp"

namespace hpf90d::serve {

struct ServerOptions {
  std::string socket_path;  // required; unlinked+rebound on start
  /// Artifact spill root; empty disables persistence.
  std::string artifact_dir;
  /// Executor threads (concurrent jobs). Tenant fairness is decided by the
  /// queue; this is raw job parallelism.
  int executors = 2;
  /// RunOptions::workers for each job's sweep (0 = hardware concurrency).
  /// The default 1 keeps per-job determinism obvious; large sweeps want 0.
  int job_workers = 1;
  /// RunOptions::batch_size for each job's sweep: same-program sweep points
  /// are priced in lockstep through the cost bytecode (see session.hpp).
  /// Reports are byte-identical for every value; <= 1 disables batching.
  int batch_size = 64;
  /// JobQueue per-tenant caps.
  std::size_t tenant_inflight = 1;
  std::size_t tenant_queued = 64;
  /// Session machine-model size (max simulated nodes).
  int max_nodes = 64;
  /// Tracing: when true (the default) the daemon keeps an obs::Tracer
  /// attached to its session, recording compile/layout/lockstep/queue/job
  /// spans into a bounded ring of `trace_capacity` spans (oldest
  /// overwritten — fixed memory forever). Reports are byte-identical
  /// either way; tracing only observes timings.
  bool trace = true;
  std::size_t trace_capacity = 1 << 14;
  /// Slow-job log: a job whose sweep wall time reaches this threshold is
  /// remembered (most recent `slow_job_capacity` kept) and counted in
  /// ServerStats::slow_jobs. 0 disables the log.
  int slow_job_ms = 0;
  std::size_t slow_job_capacity = 64;
};

/// One entry of the daemon's slow-job log (ServerOptions::slow_job_ms).
struct SlowJob {
  std::uint64_t id = 0;
  std::string tenant;
  bool is_study = false;
  double wall_seconds = 0;   // sweep execution time
  double wait_seconds = 0;   // time spent queued before an executor popped it
};

class ExperimentServer {
 public:
  explicit ExperimentServer(ServerOptions options);
  /// stop()s if still running.
  ~ExperimentServer();

  ExperimentServer(const ExperimentServer&) = delete;
  ExperimentServer& operator=(const ExperimentServer&) = delete;

  /// Binds the socket, warm-starts from the artifact store, spawns the
  /// accept loop and executors. Throws std::runtime_error on bind
  /// failures. Idempotent while running.
  void start();

  /// Stops accepting, shuts the queue down (queued jobs cancel, running
  /// jobs finish), joins every thread, removes the socket. Idempotent.
  void stop();

  [[nodiscard]] bool running() const noexcept { return running_.load(); }
  /// True once a Shutdown frame (or stop()) was seen. The daemon's main
  /// loop polls this and then calls stop() — a connection thread cannot
  /// join itself.
  [[nodiscard]] bool stop_requested() const noexcept { return stopping_.load(); }
  /// Programs recompiled from persisted recipes during start().
  [[nodiscard]] std::size_t warmed_programs() const noexcept { return warmed_; }
  [[nodiscard]] api::Session& session() noexcept { return session_; }
  [[nodiscard]] JobQueue& queue() noexcept { return queue_; }
  [[nodiscard]] const ServerOptions& options() const noexcept { return options_; }

  /// Snapshot of the daemon counters (the StatsReply payload).
  [[nodiscard]] ServerStats stats() const;

  /// The daemon's span ring (always constructed; only attached to the
  /// session when ServerOptions::trace is set) and metrics registry.
  [[nodiscard]] obs::Tracer& tracer() noexcept { return tracer_; }
  [[nodiscard]] obs::Registry& metrics() noexcept { return metrics_; }

  /// Prometheus text exposition for the MetricsReply frame: refreshes the
  /// snapshot gauges (queue depth, occupancy, spill hit ratio, ...) from
  /// stats() and renders the registry. Deterministic for equal daemon
  /// state.
  [[nodiscard]] std::string metrics_text();

  /// Most recent slow jobs, oldest first (empty when slow_job_ms == 0).
  [[nodiscard]] std::vector<SlowJob> slow_jobs() const;

 private:
  /// A job currently executing, keyed by its content address (the encoded
  /// payload — encode_plan is a fixpoint, so byte equality means plan
  /// equality). Executors popping an identical payload wait here and share
  /// the leader's outcome instead of re-running the sweep: different
  /// tenants submitting the same plan cost one run.
  struct Inflight {
    std::mutex m;
    std::condition_variable cv;
    bool done = false;
    JobState terminal = JobState::Done;
    std::string result;
  };

  void accept_loop();
  void executor_loop();
  void handle_connection(int fd);
  /// Decodes and runs one job, producing its encoded outcome.
  [[nodiscard]] std::string execute(const Job& job, JobState& terminal);
  /// Streams `count` StatsReply frames at `interval_ms` spacing, then
  /// StatsStreamEnd (the StatsStream frame handler). With the optional
  /// `changed` flag in the request, samples `count` times but only pushes
  /// snapshots whose activity counters moved since the last push (the
  /// first snapshot is always pushed), so an idle daemon costs one frame.
  void stream_stats(int fd, const std::string& request);

  ServerOptions options_;
  api::Session session_;
  std::shared_ptr<ArtifactStore> store_;  // null without artifact_dir
  JobQueue queue_;
  std::size_t warmed_ = 0;

  std::atomic<bool> running_{false};
  std::atomic<bool> stopping_{false};
  int listen_fd_ = -1;
  std::thread acceptor_;
  std::vector<std::thread> executors_;
  std::mutex conn_mutex_;
  std::vector<std::thread> connections_;

  std::mutex inflight_mutex_;
  std::map<std::string, std::shared_ptr<Inflight>> inflight_;

  // batch telemetry, summed over every job this daemon ran (ServerStats)
  std::atomic<std::size_t> jobs_coalesced_{0};
  std::atomic<std::size_t> points_batched_{0};
  std::atomic<std::size_t> points_scalar_{0};
  std::atomic<std::size_t> points_replayed_{0};
  std::atomic<std::uint64_t> batch_ir_visits_{0};
  std::atomic<std::uint64_t> batch_lane_visits_{0};
  std::atomic<std::uint64_t> lanes_evicted_{0};
  std::atomic<std::uint64_t> lanes_refilled_{0};
  std::atomic<std::uint64_t> simd_stripes_{0};
  std::atomic<std::uint64_t> lanes_pooled_{0};
  std::atomic<std::uint64_t> branches_speculated_{0};
  std::atomic<std::uint64_t> lanes_speculated_{0};

  // observability: span ring, metrics registry, slow-job log
  obs::Tracer tracer_;
  obs::Registry metrics_;
  std::atomic<std::size_t> slow_jobs_{0};
  mutable std::mutex slow_mutex_;
  std::deque<SlowJob> slow_log_;  // bounded at slow_job_capacity
};

}  // namespace hpf90d::serve
