// plan_codec.hpp — deterministic text encodings for the service protocol.
//
// The wire layer (wire.hpp) moves opaque payloads; this module defines
// them. Plans travel as line-oriented text: fixed fields are space/tab
// separated, every user-controlled string (titles, names, directive
// overrides, program source) is length-prefixed so arbitrary bytes
// round-trip, and doubles are rendered with %.17g so decode(encode(p))
// reproduces the exact IEEE values — which is what lets a served run
// produce a byte-identical report to a local run of the same plan.
//
// encode is a fixpoint over decode: encode(decode(encode(p))) ==
// encode(p), with axis defaults applied, so the encoding can double as a
// content address for job dedup.
//
// Decoders throw CodecError on malformed input (syntax only — plan
// semantics are checked by ExperimentPlan::validate at execution time).
#pragma once

#include <stdexcept>
#include <string>
#include <string_view>

#include "api/experiment_plan.hpp"
#include "api/run_report.hpp"
#include "study/study_plan.hpp"

namespace hpf90d::serve {

class CodecError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

[[nodiscard]] std::string encode_plan(const api::ExperimentPlan& plan);
[[nodiscard]] api::ExperimentPlan decode_plan(std::string_view text);

[[nodiscard]] std::string encode_study(const study::StudyPlan& plan);
[[nodiscard]] study::StudyPlan decode_study(std::string_view text);

/// Terminal result of a served job, as carried by a Result frame. For
/// "done" plan jobs `body_csv` is RunReport::csv(); for study jobs it is
/// StudyResult::csv() (which embeds title and machine points). Cache
/// stats and wall time ride alongside because the CSV bodies are
/// deliberately deterministic and exclude them.
struct JobOutcome {
  std::string state;  // "done" | "failed" | "cancelled"
  bool is_study = false;
  std::string title;
  std::string error;  // non-empty iff state == "failed"
  double wall_seconds = 0;
  api::CacheStats cache;
  std::string body_csv;
};

[[nodiscard]] std::string encode_outcome(const JobOutcome& outcome);
[[nodiscard]] JobOutcome decode_outcome(std::string_view text);

/// Daemon-level counters, served to any tenant on a Stats frame.
struct ServerStats {
  api::CacheStats cache;          // session-lifetime cache counters
  std::size_t cached_programs = 0;
  std::size_t cached_layouts = 0;
  std::size_t warmed_programs = 0;  // recipes recompiled at startup
  std::size_t jobs_submitted = 0;
  std::size_t jobs_done = 0;
  std::size_t jobs_failed = 0;
  std::size_t jobs_cancelled = 0;
  std::size_t spill_layouts_stored = 0;
  std::size_t spill_layouts_loaded = 0;
  std::size_t spill_programs_stored = 0;
  /// Batched-interpretation effectiveness across every job the daemon ran
  /// (sums of RunReport::batch), plus content-address coalescing: a job
  /// whose payload byte-matched one already executing is served the
  /// in-flight result instead of re-running the sweep.
  std::size_t jobs_coalesced = 0;
  std::size_t points_batched = 0;
  std::size_t points_scalar = 0;
  std::size_t points_replayed = 0;
  std::uint64_t batch_ir_visits = 0;
  std::uint64_t batch_lane_visits = 0;
  /// Re-compaction and SIMD telemetry (stats codec v3): evictions across
  /// every lockstep walk, evicted lanes re-batched into keyed refill
  /// windows, and 8-lane stripes the vectorized cost evaluator priced.
  std::uint64_t lanes_evicted = 0;
  std::uint64_t lanes_refilled = 0;
  std::uint64_t simd_stripes = 0;
  /// Cross-chunk lockstep telemetry (stats codec v5): lanes re-batched by
  /// the session-wide divergence pool, IFs priced both-sides instead of
  /// evicting, and lanes those speculative IFs kept in lockstep.
  std::uint64_t lanes_pooled = 0;
  std::uint64_t branches_speculated = 0;
  std::uint64_t lanes_speculated = 0;
  /// Live queue occupancy and slow-job telemetry (stats codec v4): jobs
  /// waiting, jobs executing right now, and jobs whose sweep exceeded
  /// ServerOptions::slow_job_threshold_ms since the daemon started.
  std::size_t queue_depth = 0;
  std::size_t jobs_running = 0;
  std::size_t slow_jobs = 0;
  /// On-disk artifact spill usage (stats codec v4): bytes and files under
  /// the store root. Zero when no artifact_dir is attached.
  std::uint64_t spill_dir_bytes = 0;
  std::uint64_t spill_dir_files = 0;

  /// Mean lanes priced per bytecode visit across all jobs (0 before any
  /// batched run).
  [[nodiscard]] double mean_lanes_per_visit() const {
    return batch_ir_visits == 0 ? 0.0
                                : static_cast<double>(batch_lane_visits) /
                                      static_cast<double>(batch_ir_visits);
  }
};

[[nodiscard]] std::string encode_stats(const ServerStats& stats);
[[nodiscard]] ServerStats decode_stats(std::string_view text);

}  // namespace hpf90d::serve
