#include "serve/server.hpp"

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <array>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <stdexcept>

#include "serve/wire.hpp"
#include "study/study_plan.hpp"

namespace hpf90d::serve {

namespace {

/// Parses a decimal job id; 0 (never issued) on malformed input.
std::uint64_t parse_job_id(const std::string& payload) {
  try {
    std::size_t used = 0;
    const std::uint64_t id = std::stoull(payload, &used);
    if (used == payload.size()) return id;
  } catch (const std::exception&) {
  }
  return 0;
}

}  // namespace

ExperimentServer::ExperimentServer(ServerOptions options)
    : options_(std::move(options)),
      session_(options_.max_nodes),
      queue_(options_.tenant_inflight, options_.tenant_queued),
      tracer_(options_.trace_capacity) {}

ExperimentServer::~ExperimentServer() { stop(); }

void ExperimentServer::start() {
  if (running_.load()) return;
  if (options_.socket_path.empty()) {
    throw std::runtime_error("ExperimentServer: socket_path is required");
  }

  // The tracer outlives every session operation (both are daemon members),
  // so attaching here is safe; with trace off the session keeps a null sink
  // and every span stays a predicted branch.
  session_.set_trace_sink(options_.trace ? &tracer_ : nullptr);

  if (!options_.artifact_dir.empty()) {
    store_ = std::make_shared<ArtifactStore>(options_.artifact_dir);
    session_.set_artifact_spill(store_);
    // Recompile persisted recipes before the first client connects: a
    // previously-seen plan then compile-hits on every variant, and its
    // layouts stream back from the spill on first touch.
    warmed_ = session_.warm_start();
  }

  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (options_.socket_path.size() >= sizeof addr.sun_path) {
    throw std::runtime_error("ExperimentServer: socket path too long: " +
                             options_.socket_path);
  }
  std::memcpy(addr.sun_path, options_.socket_path.c_str(),
              options_.socket_path.size() + 1);

  listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    throw std::runtime_error(std::string("ExperimentServer: socket: ") +
                             std::strerror(errno));
  }
  ::unlink(options_.socket_path.c_str());  // stale socket from a kill -9
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) < 0 ||
      ::listen(listen_fd_, 16) < 0) {
    const std::string why = std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw std::runtime_error("ExperimentServer: cannot listen on " +
                             options_.socket_path + ": " + why);
  }

  stopping_.store(false);
  running_.store(true);
  acceptor_ = std::thread([this] { accept_loop(); });
  const int n = options_.executors < 1 ? 1 : options_.executors;
  executors_.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    executors_.emplace_back([this] { executor_loop(); });
  }
}

void ExperimentServer::stop() {
  if (!running_.load() && !acceptor_.joinable()) return;
  stopping_.store(true);
  queue_.shutdown();
  if (acceptor_.joinable()) acceptor_.join();
  for (auto& t : executors_) {
    if (t.joinable()) t.join();
  }
  executors_.clear();
  {
    const std::lock_guard<std::mutex> lock(conn_mutex_);
    for (auto& t : connections_) {
      if (t.joinable()) t.join();
    }
    connections_.clear();
  }
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  ::unlink(options_.socket_path.c_str());
  running_.store(false);
}

void ExperimentServer::accept_loop() {
  while (!stopping_.load()) {
    pollfd pfd{listen_fd_, POLLIN, 0};
    const int rc = ::poll(&pfd, 1, 100);
    if (rc < 0 && errno != EINTR) break;
    if (rc <= 0) continue;
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) continue;
    const std::lock_guard<std::mutex> lock(conn_mutex_);
    connections_.emplace_back([this, fd] { handle_connection(fd); });
  }
}

void ExperimentServer::handle_connection(int fd) {
  std::string tenant = "anonymous";
  try {
    while (!stopping_.load()) {
      Frame request;
      const ReadStatus st = try_read_frame(fd, request, 200);
      if (st == ReadStatus::Timeout) continue;  // re-check stopping_
      if (st == ReadStatus::Eof) break;

      Frame reply;
      switch (request.type) {
        case MsgType::Hello: {
          if (!request.payload.empty()) tenant = request.payload;
          reply.type = MsgType::HelloAck;
          reply.payload = "hpf90d-serve 1";
          break;
        }
        case MsgType::SubmitPlan:
        case MsgType::SubmitStudy: {
          const bool is_study = request.type == MsgType::SubmitStudy;
          try {
            const std::uint64_t id =
                queue_.submit(tenant, is_study, std::move(request.payload));
            reply.type = MsgType::Submitted;
            reply.payload = std::to_string(id);
          } catch (const std::exception& e) {
            reply.type = MsgType::Error;
            reply.payload = e.what();
          }
          break;
        }
        case MsgType::Status: {
          const auto state = queue_.status(parse_job_id(request.payload));
          if (state) {
            reply.type = MsgType::StatusReply;
            reply.payload = job_state_name(*state);
          } else {
            reply.type = MsgType::Error;
            reply.payload = "unknown job " + request.payload;
          }
          break;
        }
        case MsgType::Wait: {
          const auto job = queue_.wait(parse_job_id(request.payload));
          if (!job) {
            reply.type = MsgType::Error;
            reply.payload = "unknown job or server shutting down";
          } else if (job->result.empty()) {
            // cancelled while queued: no executor produced an outcome
            JobOutcome outcome;
            outcome.state = job_state_name(job->state);
            outcome.is_study = job->is_study;
            reply.type = MsgType::Result;
            reply.payload = encode_outcome(outcome);
          } else {
            reply.type = MsgType::Result;
            reply.payload = job->result;
          }
          break;
        }
        case MsgType::Cancel: {
          const std::uint64_t id = parse_job_id(request.payload);
          reply.type = MsgType::CancelReply;
          if (queue_.cancel(id)) {
            reply.payload = "cancelled";
          } else {
            reply.payload = queue_.status(id) ? "late" : "unknown";
          }
          break;
        }
        case MsgType::Stats: {
          reply.type = MsgType::StatsReply;
          reply.payload = encode_stats(stats());
          break;
        }
        case MsgType::Metrics: {
          reply.type = MsgType::MetricsReply;
          reply.payload = metrics_text();
          break;
        }
        case MsgType::StatsStream: {
          // stream_stats writes its own frames (a burst of StatsReply ending
          // in StatsStreamEnd), so skip the single-reply write below.
          stream_stats(fd, request.payload);
          continue;
        }
        case MsgType::Shutdown: {
          reply.type = MsgType::ShutdownAck;
          write_frame(fd, reply);
          stopping_.store(true);
          queue_.shutdown();
          ::close(fd);
          return;
        }
        default: {
          reply.type = MsgType::Error;
          reply.payload = "unexpected message type";
          break;
        }
      }
      write_frame(fd, reply);
    }
  } catch (const WireError&) {
    // protocol violation or peer death: drop this connection, keep serving
  }
  ::close(fd);
}

void ExperimentServer::executor_loop() {
  obs::Sink* const trace = options_.trace ? &tracer_ : nullptr;
  for (;;) {
    std::optional<Job> job = queue_.pop();
    if (!job) return;  // queue shut down

    // The queue wait straddles threads (submitted on a connection thread,
    // popped here), so it cannot be an RAII span — reconstruct the record
    // from the submit timestamp instead.
    const std::uint64_t popped_ns = obs::now_ns();
    if (trace != nullptr && job->submitted_ns != 0) {
      obs::SpanRecord wait;
      wait.phase = obs::Phase::QueueWait;
      wait.start_ns = job->submitted_ns;
      wait.dur_ns = popped_ns > job->submitted_ns ? popped_ns - job->submitted_ns : 0;
      wait.arg = job->id;
      trace->record(wait);
    }

    // Content-address coalescing: the payload *is* the plan (encode is a
    // decode fixpoint), so a byte-identical payload already executing means
    // this job's sweep is redundant — wait for the leader and share its
    // outcome. A leader always publishes (execute() reports errors
    // in-band), so followers cannot hang.
    const std::string key = (job->is_study ? "S" : "P") + job->payload;
    std::shared_ptr<Inflight> mine;
    std::shared_ptr<Inflight> leader;
    {
      const std::lock_guard<std::mutex> lock(inflight_mutex_);
      const auto it = inflight_.find(key);
      if (it != inflight_.end()) {
        leader = it->second;
      } else {
        mine = std::make_shared<Inflight>();
        inflight_.emplace(key, mine);
      }
    }
    if (leader) {
      std::unique_lock<std::mutex> lk(leader->m);
      leader->cv.wait(lk, [&] { return leader->done; });
      jobs_coalesced_.fetch_add(1, std::memory_order_relaxed);
      metrics_
          .counter("hpf90d_tenant_jobs", "Jobs finished, by tenant and terminal state",
                   {{"tenant", job->tenant}, {"state", job_state_name(leader->terminal)}})
          .add();
      queue_.complete(job->id, leader->terminal, std::string(leader->result));
      continue;
    }

    JobState terminal = JobState::Done;
    std::string result;
    const std::uint64_t exec_start_ns = obs::now_ns();
    try {
      const obs::Span exec_span(trace, obs::Phase::JobExecute, job->id);
      result = execute(*job, terminal);
    } catch (...) {
      // execute() reports job errors in-band; this is a belt for bugs
      JobOutcome outcome;
      outcome.state = "failed";
      outcome.is_study = job->is_study;
      outcome.error = "internal executor error";
      terminal = JobState::Failed;
      result = encode_outcome(outcome);
    }
    {
      // unregister first: jobs arriving from here on run fresh
      const std::lock_guard<std::mutex> lock(inflight_mutex_);
      inflight_.erase(key);
    }
    {
      const std::lock_guard<std::mutex> lk(mine->m);
      mine->terminal = terminal;
      mine->result = result;
      mine->done = true;
    }
    mine->cv.notify_all();

    const double wall_s =
        static_cast<double>(obs::now_ns() - exec_start_ns) / 1e9;
    const double wait_s =
        job->submitted_ns != 0 && popped_ns > job->submitted_ns
            ? static_cast<double>(popped_ns - job->submitted_ns) / 1e9
            : 0.0;
    metrics_
        .counter("hpf90d_tenant_jobs", "Jobs finished, by tenant and terminal state",
                 {{"tenant", job->tenant}, {"state", job_state_name(terminal)}})
        .add();
    metrics_.histogram("hpf90d_job_wall_seconds", "Per-job sweep execution time",
                       {0.001, 0.01, 0.1, 1.0, 10.0, 60.0, 600.0})
        .observe(wall_s);
    metrics_.histogram("hpf90d_job_queue_wait_seconds", "Per-job time spent queued",
                       {0.0001, 0.001, 0.01, 0.1, 1.0, 10.0, 60.0})
        .observe(wait_s);
    if (options_.slow_job_ms > 0 &&
        wall_s * 1000.0 >= static_cast<double>(options_.slow_job_ms)) {
      slow_jobs_.fetch_add(1, std::memory_order_relaxed);
      const std::lock_guard<std::mutex> lock(slow_mutex_);
      slow_log_.push_back(SlowJob{job->id, job->tenant, job->is_study, wall_s, wait_s});
      const std::size_t cap = options_.slow_job_capacity < 1 ? 1 : options_.slow_job_capacity;
      while (slow_log_.size() > cap) slow_log_.pop_front();
    }

    queue_.complete(job->id, terminal, std::move(result));
  }
}

std::string ExperimentServer::execute(const Job& job, JobState& terminal) {
  JobOutcome outcome;
  outcome.is_study = job.is_study;
  api::RunOptions run_options;
  run_options.workers = options_.job_workers;
  run_options.batch_size = options_.batch_size;
  const auto note_batch = [this](const api::BatchStats& b) {
    points_batched_.fetch_add(b.batched_points, std::memory_order_relaxed);
    points_scalar_.fetch_add(b.scalar_points, std::memory_order_relaxed);
    points_replayed_.fetch_add(b.replayed_points, std::memory_order_relaxed);
    batch_ir_visits_.fetch_add(b.ir_visits, std::memory_order_relaxed);
    batch_lane_visits_.fetch_add(b.lane_visits, std::memory_order_relaxed);
    lanes_evicted_.fetch_add(b.evicted_lanes, std::memory_order_relaxed);
    lanes_refilled_.fetch_add(b.refilled_lanes, std::memory_order_relaxed);
    simd_stripes_.fetch_add(b.simd_stripes, std::memory_order_relaxed);
    lanes_pooled_.fetch_add(b.pooled_lanes, std::memory_order_relaxed);
    branches_speculated_.fetch_add(b.speculated_branches, std::memory_order_relaxed);
    lanes_speculated_.fetch_add(b.speculated_lanes, std::memory_order_relaxed);
  };
  try {
    if (job.is_study) {
      const study::StudyPlan plan = decode_study(job.payload);
      const study::StudyResult result = run_study(session_, plan, run_options);
      outcome.state = "done";
      outcome.title = result.title;
      outcome.wall_seconds = result.report.wall_seconds;
      outcome.cache = result.report.cache;
      outcome.body_csv = result.csv();
      note_batch(result.report.batch);
    } else {
      const api::ExperimentPlan plan = decode_plan(job.payload);
      const api::RunReport report = session_.run(plan, run_options);
      outcome.state = "done";
      outcome.title = report.title;
      outcome.wall_seconds = report.wall_seconds;
      outcome.cache = report.cache;
      outcome.body_csv = report.csv();
      note_batch(report.batch);
    }
    terminal = JobState::Done;
  } catch (const std::exception& e) {
    outcome.state = "failed";
    outcome.error = e.what();
    terminal = JobState::Failed;
  }
  return encode_outcome(outcome);
}

void ExperimentServer::stream_stats(int fd, const std::string& request) {
  // Payload: "<count> <interval_ms> [changed]". Both numbers bounded — a
  // stream is a burst a client polls with, not a subscription the daemon
  // must carry forever. The optional "changed" flag switches to push-on-
  // change: the daemon still samples `count` times at the interval, but a
  // snapshot is only written when its activity counters (queue occupancy,
  // job terminals, batch telemetry) moved since the last pushed one.
  std::uint64_t count = 0;
  std::uint64_t interval_ms = 0;
  bool on_change = false;
  {
    std::size_t used = 0;
    try {
      count = std::stoull(request, &used);
      std::size_t used2 = 0;
      const std::string rest = request.substr(used);
      interval_ms = std::stoull(rest, &used2);
      std::string flag = rest.substr(used2);
      flag.erase(0, flag.find_first_not_of(' '));
      if (flag == "changed") {
        on_change = true;
      } else if (!flag.empty()) {
        throw std::invalid_argument("unknown stats stream flag");
      }
    } catch (const std::exception&) {
      write_frame(fd, Frame{MsgType::Error, "malformed stats stream request"});
      return;
    }
  }
  if (count < 1 || count > 1000 || interval_ms > 10000) {
    write_frame(fd, Frame{MsgType::Error, "stats stream bounds: count 1..1000, interval <= 10000ms"});
    return;
  }
  // The change signature deliberately excludes ambient state (spill-dir
  // disk usage, cache capacity): only work the daemon did since the last
  // push should wake a changed-mode subscriber.
  const auto signature = [](const ServerStats& s) {
    return std::array<std::uint64_t, 12>{
        s.queue_depth,    s.jobs_running,     s.jobs_submitted,
        s.jobs_done,      s.jobs_failed,      s.jobs_cancelled,
        s.points_batched, s.points_scalar,    s.points_replayed,
        s.lanes_evicted + s.lanes_refilled,
        s.lanes_pooled,   s.branches_speculated};
  };
  bool pushed_any = false;
  std::array<std::uint64_t, 12> last{};
  for (std::uint64_t i = 0; i < count; ++i) {
    if (i > 0) {
      // sleep in 50ms slices so shutdown is never blocked on a stream
      for (std::uint64_t slept = 0; slept < interval_ms && !stopping_.load();
           slept += 50) {
        const std::uint64_t slice = std::min<std::uint64_t>(50, interval_ms - slept);
        std::this_thread::sleep_for(std::chrono::milliseconds(slice));
      }
      if (stopping_.load()) break;
    }
    const ServerStats snapshot = stats();
    const auto sig = signature(snapshot);
    if (on_change && pushed_any && sig == last) continue;
    last = sig;
    pushed_any = true;
    write_frame(fd, Frame{MsgType::StatsReply, encode_stats(snapshot)});
  }
  write_frame(fd, Frame{MsgType::StatsStreamEnd, {}});
}

std::string ExperimentServer::metrics_text() {
  // Snapshot gauges refresh from stats() on every exposition; counters and
  // histograms (job wall/wait) accumulate live on the executor threads.
  const ServerStats s = stats();
  metrics_.gauge("hpf90d_queue_depth", "Jobs queued, all tenants").set(
      static_cast<double>(s.queue_depth));
  metrics_.gauge("hpf90d_jobs_running", "Jobs executing right now").set(
      static_cast<double>(s.jobs_running));
  metrics_.gauge("hpf90d_jobs_submitted", "Jobs submitted since daemon start")
      .set(static_cast<double>(s.jobs_submitted));
  metrics_.gauge("hpf90d_jobs_done", "Jobs completed successfully")
      .set(static_cast<double>(s.jobs_done));
  metrics_.gauge("hpf90d_jobs_failed", "Jobs that failed")
      .set(static_cast<double>(s.jobs_failed));
  metrics_.gauge("hpf90d_jobs_cancelled", "Jobs cancelled")
      .set(static_cast<double>(s.jobs_cancelled));
  metrics_.gauge("hpf90d_jobs_coalesced", "Jobs served a coalesced in-flight result")
      .set(static_cast<double>(s.jobs_coalesced));
  metrics_.gauge("hpf90d_slow_jobs", "Jobs over the slow-job threshold")
      .set(static_cast<double>(s.slow_jobs));
  metrics_.gauge("hpf90d_lockstep_occupancy",
                 "Mean active lanes per batch IR visit, daemon lifetime")
      .set(s.mean_lanes_per_visit());
  metrics_.gauge("hpf90d_lanes_evicted", "Lanes evicted from lockstep windows")
      .set(static_cast<double>(s.lanes_evicted));
  metrics_.gauge("hpf90d_lanes_refilled", "Evicted lanes re-batched by compaction")
      .set(static_cast<double>(s.lanes_refilled));
  metrics_.gauge("hpf90d_lanes_pooled", "Lanes re-batched by the cross-chunk pool")
      .set(static_cast<double>(s.lanes_pooled));
  metrics_.gauge("hpf90d_branches_speculated", "IF branches priced both-sides")
      .set(static_cast<double>(s.branches_speculated));
  const std::size_t probes = s.cache.layout_misses;
  metrics_.gauge("hpf90d_spill_hit_ratio",
                 "Layout-store misses answered by the artifact spill")
      .set(probes == 0 ? 0.0
                       : static_cast<double>(s.cache.layout_spill_hits) /
                             static_cast<double>(probes));
  metrics_.gauge("hpf90d_spill_dir_bytes", "Artifact spill directory size")
      .set(static_cast<double>(s.spill_dir_bytes));
  metrics_.gauge("hpf90d_spill_dir_files", "Artifact spill directory file count")
      .set(static_cast<double>(s.spill_dir_files));
  metrics_.gauge("hpf90d_trace_spans_recorded", "Spans recorded by the daemon tracer")
      .set(static_cast<double>(tracer_.recorded()));
  metrics_.gauge("hpf90d_trace_spans_dropped", "Spans overwritten by ring wrap-around")
      .set(static_cast<double>(tracer_.dropped()));
  return metrics_.prometheus();
}

std::vector<SlowJob> ExperimentServer::slow_jobs() const {
  const std::lock_guard<std::mutex> lock(slow_mutex_);
  return {slow_log_.begin(), slow_log_.end()};
}

ServerStats ExperimentServer::stats() const {
  ServerStats s;
  s.cache = session_.cache_stats();
  s.cached_programs = session_.cached_programs();
  s.cached_layouts = session_.cached_layouts();
  s.warmed_programs = warmed_;
  const JobQueue::Counters jobs = queue_.counters();
  s.jobs_submitted = jobs.submitted;
  s.jobs_done = jobs.done;
  s.jobs_failed = jobs.failed;
  s.jobs_cancelled = jobs.cancelled;
  if (store_) {
    s.spill_layouts_stored = store_->layouts_stored();
    s.spill_layouts_loaded = store_->layouts_loaded();
    s.spill_programs_stored = store_->programs_stored();
  }
  s.jobs_coalesced = jobs_coalesced_.load();
  s.points_batched = points_batched_.load();
  s.points_scalar = points_scalar_.load();
  s.points_replayed = points_replayed_.load();
  s.batch_ir_visits = batch_ir_visits_.load();
  s.batch_lane_visits = batch_lane_visits_.load();
  s.lanes_evicted = lanes_evicted_.load();
  s.lanes_refilled = lanes_refilled_.load();
  s.simd_stripes = simd_stripes_.load();
  s.lanes_pooled = lanes_pooled_.load();
  s.branches_speculated = branches_speculated_.load();
  s.lanes_speculated = lanes_speculated_.load();
  s.queue_depth = queue_.queued();
  s.jobs_running = queue_.running();
  s.slow_jobs = slow_jobs_.load();
  if (store_) {
    const ArtifactStore::DiskUsage usage = store_->disk_usage();
    s.spill_dir_bytes = usage.bytes;
    s.spill_dir_files = usage.files;
  }
  return s;
}

}  // namespace hpf90d::serve
