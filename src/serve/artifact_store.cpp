#include "serve/artifact_store.hpp"

#include <unistd.h>

#include <algorithm>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string_view>

#include "compiler/serialize.hpp"
#include "support/text.hpp"

namespace hpf90d::serve {

namespace fs = std::filesystem;

namespace {

std::uint64_t fnv1a64(std::string_view s) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (unsigned char c : s) {
    h ^= c;
    h *= 0x100000001b3ULL;
  }
  return h;
}

std::string artifact_name(std::string_view key) {
  return support::strfmt("%016llx.art", static_cast<unsigned long long>(fnv1a64(key)));
}

std::optional<std::string> slurp(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return std::nullopt;
  std::ostringstream buf;
  buf << in.rdbuf();
  if (!in.good() && !in.eof()) return std::nullopt;
  return std::move(buf).str();
}

/// Artifact framing: "hpf90d-artifact 1 <keylen>\n<key>\n<body>". Returns
/// the body, or nullopt when the frame is malformed or (when `key` is
/// non-null) the embedded key mismatches.
std::optional<std::string> unwrap(const std::string& text, const std::string* key) {
  constexpr std::string_view kTag = "hpf90d-artifact 1 ";
  if (text.compare(0, kTag.size(), kTag) != 0) return std::nullopt;
  std::size_t pos = kTag.size();
  const std::size_t eol = text.find('\n', pos);
  if (eol == std::string::npos) return std::nullopt;
  std::size_t keylen = 0;
  try {
    keylen = static_cast<std::size_t>(std::stoull(text.substr(pos, eol - pos)));
  } catch (const std::exception&) {
    return std::nullopt;
  }
  pos = eol + 1;
  if (text.size() - pos < keylen + 1 || text[pos + keylen] != '\n') return std::nullopt;
  if (key != nullptr && text.compare(pos, keylen, *key) != 0) return std::nullopt;
  return text.substr(pos + keylen + 1);
}

std::string wrap(const std::string& key, std::string_view body) {
  std::string out = "hpf90d-artifact 1 " + std::to_string(key.size()) + '\n';
  out += key;
  out += '\n';
  out += body;
  return out;
}

}  // namespace

ArtifactStore::ArtifactStore(std::string root) : root_(std::move(root)) {
  std::error_code ec;
  fs::create_directories(fs::path(root_) / "layouts", ec);
  fs::create_directories(fs::path(root_) / "programs", ec);
  if (ec) {
    throw std::runtime_error("ArtifactStore: cannot create " + root_ + ": " +
                             ec.message());
  }
}

std::optional<compiler::DataLayout> ArtifactStore::load_layout(const std::string& key) {
  const fs::path path = fs::path(root_) / "layouts" / artifact_name(key);
  const auto text = slurp(path);
  if (!text) return std::nullopt;
  const auto body = unwrap(*text, &key);
  if (!body) return std::nullopt;
  try {
    compiler::DataLayout layout = compiler::deserialize_layout(*body);
    ++layouts_loaded_;
    return layout;
  } catch (const std::exception&) {
    return std::nullopt;  // corrupt artifact: a miss, the session rebuilds
  }
}

void ArtifactStore::store_layout(const std::string& key,
                                 const compiler::DataLayout& layout) {
  write_artifact("layouts", key, compiler::serialize_layout(layout));
  ++layouts_stored_;
}

void ArtifactStore::store_program(const std::string& key,
                                  const api::ProgramRecipe& recipe) {
  write_artifact("programs", key,
                 compiler::serialize_recipe(recipe.source, recipe.overrides,
                                            recipe.options));
  ++programs_stored_;
}

std::vector<api::ProgramRecipe> ArtifactStore::load_programs() {
  std::vector<api::ProgramRecipe> out;
  std::error_code ec;
  std::vector<fs::path> files;
  for (const auto& entry : fs::directory_iterator(fs::path(root_) / "programs", ec)) {
    if (entry.is_regular_file()) files.push_back(entry.path());
  }
  // Deterministic warm-start order regardless of directory enumeration.
  std::sort(files.begin(), files.end());
  for (const auto& path : files) {
    const auto text = slurp(path);
    if (!text) continue;
    const auto body = unwrap(*text, nullptr);
    if (!body) continue;
    try {
      compiler::ParsedRecipe recipe = compiler::deserialize_recipe(*body);
      out.push_back(api::ProgramRecipe{std::move(recipe.source),
                                       std::move(recipe.overrides), recipe.options});
    } catch (const std::exception&) {
      // corrupt recipe: skip — warm start is best-effort
    }
  }
  return out;
}

ArtifactStore::DiskUsage ArtifactStore::disk_usage() const {
  DiskUsage usage;
  for (const char* dir : {"layouts", "programs"}) {
    std::error_code ec;
    for (const auto& entry : fs::directory_iterator(fs::path(root_) / dir, ec)) {
      std::error_code file_ec;
      if (!entry.is_regular_file(file_ec) || file_ec) continue;
      const std::uintmax_t size = entry.file_size(file_ec);
      if (file_ec) continue;
      usage.bytes += static_cast<std::uint64_t>(size);
      ++usage.files;
    }
  }
  return usage;
}

void ArtifactStore::write_artifact(const std::string& dir, const std::string& key,
                                   std::string_view body) {
  const fs::path target = fs::path(root_) / dir / artifact_name(key);
  const fs::path tmp =
      target.parent_path() /
      support::strfmt(".tmp.%ld.%llu", static_cast<long>(::getpid()),
                      static_cast<unsigned long long>(tmp_seq_.fetch_add(1)));
  const std::string payload = wrap(key, body);
  const std::lock_guard<std::mutex> lock(write_mutex_);
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) throw std::runtime_error("ArtifactStore: cannot write " + tmp.string());
    out.write(payload.data(), static_cast<std::streamsize>(payload.size()));
    if (!out.good()) {
      throw std::runtime_error("ArtifactStore: short write to " + tmp.string());
    }
  }
  std::error_code ec;
  fs::rename(tmp, target, ec);
  if (ec) {
    fs::remove(tmp, ec);
    throw std::runtime_error("ArtifactStore: cannot publish " + target.string());
  }
}

}  // namespace hpf90d::serve
